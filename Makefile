# Developer workflow. `make ci` is the gate a change must pass: vet plus
# the full test suite under the race detector.
GO ?= go

.PHONY: build test vet race fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run of the packages with real concurrency (transports,
# collectives, training loops) plus everything else.
race:
	$(GO) test -race ./...

# Short fuzzing pass over the wire-frame decoder; the checked-in seed
# corpus in internal/tcpfabric/testdata runs on every plain `make test`.
fuzz:
	$(GO) test ./internal/tcpfabric -run FuzzFrameDecode -fuzz FuzzFrameDecode -fuzztime 30s

ci: vet race
