# Developer workflow. `make ci` is the gate a change must pass: vet plus
# the full test suite under the race detector.
GO ?= go

.PHONY: build test vet race fuzz bench bench3 bench4 bench5 bench7 bench8 bench9 bench10 benchdiff benchsmoke chaostest ckptsmoke obssmoke healthtest simtest elastictest soaktest tunetest ci

# The hot-kernel benchmarks behind the bench/BENCH_2.json speedup report.
BENCH_PATTERN = BenchmarkMatMul|BenchmarkConvForwardBackward|BenchmarkCodecCompress|BenchmarkCodecDecompress|BenchmarkRingTrainingE2E
# The checkpoint write/restore latency benchmarks behind bench/BENCH_3.json.
BENCH3_PATTERN = BenchmarkCheckpointWrite|BenchmarkCheckpointRestore
# The observability-overhead pair behind bench/BENCH_4.json.
BENCH4_PATTERN = BenchmarkObsOverhead
# The trace-collection benchmarks behind bench/BENCH_5.json.
BENCH5_PATTERN = BenchmarkCollectorMerge|BenchmarkObsOverhead

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run of the packages with real concurrency (transports,
# collectives, training loops) plus everything else. The training
# convergence suite alone runs ~30 min under -race on a single core,
# hence the generous timeout.
race:
	$(GO) test -race -timeout 60m ./...

# Short fuzzing pass over the wire-frame decoder; the checked-in seed
# corpus in internal/tcpfabric/testdata runs on every plain `make test`.
fuzz:
	$(GO) test ./internal/tcpfabric -run FuzzFrameDecode -fuzz FuzzFrameDecode -fuzztime 30s

# Hot-kernel benchmark report: run the kernel/codec/training benchmarks
# once pinned to a single core and once with the default parallelism, then
# emit bench/BENCH_2.json with per-benchmark ns/op, B/op, and the
# multi-core speedup. On a single-core machine both runs coincide
# (speedup ≈ 1).
bench:
	GOMAXPROCS=1 $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | tee bench/bench_single.txt
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | tee bench/bench_multi.txt
	$(GO) run ./cmd/benchjson -single bench/bench_single.txt -multi bench/bench_multi.txt -out bench/BENCH_2.json

# Checkpoint write/restore latency report (elastic training durability).
bench3:
	$(GO) test -run '^$$' -bench '$(BENCH3_PATTERN)' -benchmem . | tee bench/bench_ckpt.txt
	$(GO) run ./cmd/benchjson -multi bench/bench_ckpt.txt -out bench/BENCH_3.json

# Observability-overhead report: the same end-to-end training run with the
# recorder detached and attached; bench/BENCH_4.json fails the build when
# the recorder costs more than 2% wall clock.
bench4:
	$(GO) test -run '^$$' -bench '$(BENCH4_PATTERN)' -benchtime 5x -count 1 . | tee bench/bench_obs.txt
	$(GO) run ./cmd/benchjson -multi bench/bench_obs.txt \
		-overhead-off 'BenchmarkObsOverhead/recorderOff' \
		-overhead-on 'BenchmarkObsOverhead/recorderOn' \
		-max-overhead-pct 2 -out bench/BENCH_4.json

# Trace-collection report: the cross-node merge must sustain its
# throughput floor and the recorder must stay under the 2% overhead
# bound; bench/BENCH_5.json fails the build otherwise.
bench5:
	$(GO) test -run '^$$' -bench 'BenchmarkCollectorMerge' -benchmem . | tee bench/bench_collect.txt
	$(GO) test -run '^$$' -bench 'BenchmarkObsOverhead' -benchtime 5x -count 1 . | tee -a bench/bench_collect.txt
	$(GO) run ./cmd/benchjson -multi bench/bench_collect.txt \
		-overhead-off 'BenchmarkObsOverhead/recorderOff' \
		-overhead-on 'BenchmarkObsOverhead/recorderOn' \
		-max-overhead-pct 2 \
		-min-mb-per-s 'BenchmarkCollectorMerge:50' \
		-out bench/BENCH_5.json

# One-iteration smoke run of the same benchmarks, to keep them compiling
# and executing under CI without paying for a full measurement.
benchsmoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)|$(BENCH3_PATTERN)' -benchtime=1x .

# Crash-recovery chaos gate: a 4-node elastic run with an injected
# mid-step crash must shrink to 3 survivors and the post-recovery
# checkpoint must resume bit-identically.
chaostest:
	$(GO) test ./internal/train -run 'TestElasticCrashRecovery' -count=1

# Checkpoint round-trip smoke: durable stop/resume equals the
# uninterrupted run, and corrupt checkpoints are rejected with fallback.
ckptsmoke:
	$(GO) test ./internal/train -run 'TestElasticStopResumeMatchesUninterrupted|TestRunCheckpointRoundTripAndCorruptFallback' -count=1

# Observability smoke, in three acts:
#  1. legacy single-file path — a traced run must render a non-empty
#     per-node breakdown (inctrace exits nonzero on an empty trace);
#  2. collect→merge→blame round trip — a 3-worker run with an injected
#     straggler writes per-node trace files, `inctrace merge` aligns
#     them on their meta epochs, and `inctrace blame` must attribute the
#     critical path to the straggler;
#  3. the live-endpoint collector test (clock handshake + skew
#     correction) against real HTTP servers.
obssmoke:
	$(GO) run ./cmd/inctrain -model hdc-small -workers 4 -iters 30 -eval 30 -compress \
		-trace-out bench/obssmoke_trace.jsonl
	$(GO) run ./cmd/inctrace -no-timeline bench/obssmoke_trace.jsonl | grep -q 'trace wall clock'
	$(GO) run ./cmd/inctrain -model hdc-small -workers 3 -iters 20 -eval 20 \
		-straggle 1:25ms -trace-dir bench/obssmoke_nodes
	$(GO) run ./cmd/inctrace merge -out bench/obssmoke_merged.jsonl bench/obssmoke_nodes/trace_node*.jsonl
	$(GO) run ./cmd/inctrace blame -min-gap 2ms bench/obssmoke_merged.jsonl | grep -q 'gating: node 1'
	$(GO) test ./internal/obs -run 'TestCollectorLiveEndpoints' -count=1

# Simulator/collective correctness gate, under the race detector: the
# closed-form network model, the event-driven simulator, and the MPI-style
# collectives (including the switch all-reduce's bit-exactness-with-ring
# and the uneven-partition regression suites) in one focused run.
simtest:
	$(GO) test -race ./internal/netsim ./internal/eventsim ./internal/mpi

# In-network switch aggregation report: closed-form WA vs ring vs switch
# exchange times at 4/8/16 nodes. The run fails unless the switch beats
# the worker aggregator's incast at every scale >= 8 nodes.
bench7:
	$(GO) run ./cmd/incbench -bench7 bench/BENCH_7.json

# Elastic scale-out acceptance gate, under the race detector: a 4-node
# TCP ring loses a worker to a chaos crash, the replacement rejoins from
# the newest checkpoint and the post-join trail resumes bit-identically;
# and a control-link partition must evict, fail the minority closed, and
# heal back to full membership. Several minutes under -race, hence the
# headroom on the timeout.
elastictest:
	$(GO) test ./internal/train -run 'TestElasticTCPJoin|TestElasticTCPPartitionHeal|TestGCCheckpointsKeepsNewestValid' -count=1 -race -timeout 20m

# Switch->ring fallback cost report: the fluid-flow model's and the
# measured runner's degraded (post-fallback) iteration must stay within
# 1.15x a plain ring iteration, and a silently stalled switch must be
# detected within 2x the step deadline. Writes bench/BENCH_8.json and
# fails the build on any gate.
bench8:
	$(GO) run ./cmd/incbench -bench8 bench/BENCH_8.json

# Health-engine overhead report: the same end-to-end training run with the
# recorder attached in both variants, plus the streaming health engine
# (detectors + flight recorder + poller) in the second. bench/BENCH_9.json
# fails the build when the engine costs more than 2% wall clock.
bench9:
	$(GO) test -run '^$$' -bench 'BenchmarkHealthOverhead' -benchtime 10x -count 1 . | tee bench/bench_health.txt
	$(GO) run ./cmd/benchjson -multi bench/bench_health.txt \
		-overhead-off 'BenchmarkHealthOverhead/healthOff' \
		-overhead-on 'BenchmarkHealthOverhead/healthOn' \
		-max-overhead-pct 2 -out bench/BENCH_9.json

# Auto-tuner acceptance gate: the tune package's unit suite under the
# race detector (the strict timing gate skips itself there — the race
# runtime's ~30x slowdown changes the machine the probes measure), then
# the end-to-end probe→fit→validate loop without -race with the timing
# gate armed: the fitted model must track a pooled 3-run measured holdout's
# communication phases within 15% (one refit retry on a miss).
tunetest:
	$(GO) test -race ./internal/tune -count=1
	TUNE_STRICT=1 $(GO) test ./internal/tune -run 'TestAutoTuneEndToEnd' -count=1 -timeout 15m

# Auto-tuner pick-quality report: AutoTune probes and plans on the
# in-process fabric, then every ranked candidate is brute-force measured.
# bench/BENCH_10.json fails the build unless the tuner's pick measures
# within 1.10x of the brute-force best and the fitted model tracks a
# pooled measured holdout within 15%.
bench10:
	$(GO) run ./cmd/incbench -bench10 bench/BENCH_10.json

# Bench regression gate: re-measure the health-overhead pair and the
# auto-tuner plan sweep, then diff each fresh report against its
# checked-in baseline (bench/BENCH_9.json, bench/BENCH_10.json); any
# shared benchmark regressing beyond its bound (fractional) fails CI.
# Widen the bounds (e.g. MAX_REGRESS=0.35) on noisy shared hardware.
# BENCH10's bound is wide by design: its entries are ~15ms end-to-end
# training iterations whose absolute times swing with machine load — the
# pick-vs-best and holdout gates inside bench10 are the real acceptance
# criteria, the diff only catches order-of-magnitude collapses.
MAX_REGRESS ?= 0.10
BENCH10_MAX_REGRESS ?= 0.60
benchdiff:
	$(GO) test -run '^$$' -bench 'BenchmarkHealthOverhead' -benchtime 10x -count 1 . | tee bench/bench_health_ci.txt
	$(GO) run ./cmd/benchjson -multi bench/bench_health_ci.txt \
		-overhead-off 'BenchmarkHealthOverhead/healthOff' \
		-overhead-on 'BenchmarkHealthOverhead/healthOn' \
		-out bench/BENCH_9_ci.json
	$(GO) run ./cmd/benchjson -diff -max-regress $(MAX_REGRESS) bench/BENCH_9.json bench/BENCH_9_ci.json
	$(GO) run ./cmd/incbench -bench10 bench/BENCH_10_ci.json
	$(GO) run ./cmd/benchjson -diff -max-regress $(BENCH10_MAX_REGRESS) bench/BENCH_10.json bench/BENCH_10_ci.json

# Health-engine gate: the streaming detectors' seeded incident-injection
# suite under the race detector (stragglers, degraded links, counter
# bursts, fallback/eviction pushes, flight-recorder round trips) plus the
# end-to-end runner wiring tests (injected straggler and switch stall each
# open exactly one correctly-blamed incident; a clean run opens none).
# The end-to-end runs stay off -race: like the existing blame acceptance
# test, their ≥90%-attribution bounds measure real scheduling gaps that
# the race detector's 10-20x timing distortion swamps.
healthtest:
	$(GO) test -race ./internal/obs/health -count=1
	$(GO) test ./internal/train -run 'TestHealth' -count=1 -timeout 10m

# Randomized chaos soak, under the race detector: 20 seeded trials of
# switch kills, mid-stream partitions, lossy links, and worker crashes
# against the self-healing switch runner (in-process and TCP) and the
# elastic TCP runner. Every trial must finish bit-exact with a fault-free
# ring reference or fail closed with a gradeable error; the wall-clock
# budget keeps a pathological trial from eating the CI slot. Override
# SOAK_TRIALS / SOAK_SEED to widen or replay a run.
SOAK_TRIALS ?= 20
SOAK_SEED ?= 1
soaktest:
	$(GO) test -race -timeout 30m ./internal/soak -run 'TestSoak$$' -count=1 -v \
		-soak-trials=$(SOAK_TRIALS) -soak-seed=$(SOAK_SEED) -soak-budget=20m

ci: vet simtest chaostest ckptsmoke obssmoke healthtest tunetest elastictest soaktest race benchsmoke benchdiff
