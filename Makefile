# Developer workflow. `make ci` is the gate a change must pass: vet plus
# the full test suite under the race detector.
GO ?= go

.PHONY: build test vet race fuzz bench bench3 bench4 benchsmoke chaostest ckptsmoke obssmoke ci

# The hot-kernel benchmarks behind the BENCH_2.json speedup report.
BENCH_PATTERN = BenchmarkMatMul|BenchmarkConvForwardBackward|BenchmarkCodecCompress|BenchmarkCodecDecompress|BenchmarkRingTrainingE2E
# The checkpoint write/restore latency benchmarks behind BENCH_3.json.
BENCH3_PATTERN = BenchmarkCheckpointWrite|BenchmarkCheckpointRestore
# The observability-overhead pair behind BENCH_4.json.
BENCH4_PATTERN = BenchmarkObsOverhead

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run of the packages with real concurrency (transports,
# collectives, training loops) plus everything else. The training
# convergence suite alone runs ~30 min under -race on a single core,
# hence the generous timeout.
race:
	$(GO) test -race -timeout 60m ./...

# Short fuzzing pass over the wire-frame decoder; the checked-in seed
# corpus in internal/tcpfabric/testdata runs on every plain `make test`.
fuzz:
	$(GO) test ./internal/tcpfabric -run FuzzFrameDecode -fuzz FuzzFrameDecode -fuzztime 30s

# Hot-kernel benchmark report: run the kernel/codec/training benchmarks
# once pinned to a single core and once with the default parallelism, then
# emit BENCH_2.json with per-benchmark ns/op, B/op, and the multi-core
# speedup. On a single-core machine both runs coincide (speedup ≈ 1).
bench:
	GOMAXPROCS=1 $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | tee bench/bench_single.txt
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | tee bench/bench_multi.txt
	$(GO) run ./cmd/benchjson -single bench/bench_single.txt -multi bench/bench_multi.txt -out BENCH_2.json

# Checkpoint write/restore latency report (elastic training durability).
bench3:
	$(GO) test -run '^$$' -bench '$(BENCH3_PATTERN)' -benchmem . | tee bench/bench_ckpt.txt
	$(GO) run ./cmd/benchjson -multi bench/bench_ckpt.txt -out BENCH_3.json

# Observability-overhead report: the same end-to-end training run with the
# recorder detached and attached; BENCH_4.json fails the build when the
# recorder costs more than 2% wall clock.
bench4:
	$(GO) test -run '^$$' -bench '$(BENCH4_PATTERN)' -benchtime 5x -count 1 . | tee bench/bench_obs.txt
	$(GO) run ./cmd/benchjson -multi bench/bench_obs.txt \
		-overhead-off 'BenchmarkObsOverhead/recorderOff' \
		-overhead-on 'BenchmarkObsOverhead/recorderOn' \
		-max-overhead-pct 2 -out BENCH_4.json

# One-iteration smoke run of the same benchmarks, to keep them compiling
# and executing under CI without paying for a full measurement.
benchsmoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)|$(BENCH3_PATTERN)' -benchtime=1x .

# Crash-recovery chaos gate: a 4-node elastic run with an injected
# mid-step crash must shrink to 3 survivors and the post-recovery
# checkpoint must resume bit-identically.
chaostest:
	$(GO) test ./internal/train -run 'TestElasticCrashRecovery' -count=1

# Checkpoint round-trip smoke: durable stop/resume equals the
# uninterrupted run, and corrupt checkpoints are rejected with fallback.
ckptsmoke:
	$(GO) test ./internal/train -run 'TestElasticStopResumeMatchesUninterrupted|TestRunCheckpointRoundTripAndCorruptFallback' -count=1

# Observability smoke: a short traced training run must produce a span
# trace that inctrace renders into a non-empty per-node breakdown
# (inctrace exits nonzero on an empty trace).
obssmoke:
	$(GO) run ./cmd/inctrain -model hdc-small -workers 4 -iters 30 -eval 30 -compress \
		-trace-out bench/obssmoke_trace.jsonl
	$(GO) run ./cmd/inctrace -no-timeline bench/obssmoke_trace.jsonl | grep -q 'trace wall clock'

ci: vet chaostest ckptsmoke obssmoke race benchsmoke
