package obs

import (
	"fmt"
	"testing"
	"time"
)

// skewedProbe fakes a remote whose clock runs skew ahead of ours, with a
// per-probe random-ish network delay in [minDelay, minDelay+jitter].
func skewedProbe(skew, minDelay, jitter time.Duration) func() (ClockDoc, error) {
	i := 0
	return func() (ClockDoc, error) {
		i++
		// Deterministic jitter pattern: varies per probe, bounded.
		d := minDelay + time.Duration(int64(i*7919)%int64(jitter+1))
		time.Sleep(d)
		now := time.Now()
		return ClockDoc{
			UnixNs:      now.Add(skew).UnixNano(),
			TraceNs:     0,
			EpochUnixNs: now.Add(skew).UnixNano(),
		}, nil
	}
}

func TestEstimateClockRecoversInjectedSkew(t *testing.T) {
	for _, skew := range []time.Duration{
		250 * time.Millisecond,
		-3 * time.Second,
		0,
	} {
		t.Run(fmt.Sprintf("skew=%s", skew), func(t *testing.T) {
			est, err := EstimateClock(9, skewedProbe(skew, 200*time.Microsecond, 2*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			if est.Samples != 9 {
				t.Fatalf("samples = %d, want 9", est.Samples)
			}
			errNs := est.OffsetNs - skew.Nanoseconds()
			if errNs < 0 {
				errNs = -errNs
			}
			// The midpoint estimate must recover the injected skew within
			// its own claimed uncertainty (±RTT/2 of the best sample).
			if errNs > est.UncertaintyNs {
				t.Fatalf("offset error %dns exceeds claimed uncertainty %dns (offset=%dns, want≈%dns)",
					errNs, est.UncertaintyNs, est.OffsetNs, skew.Nanoseconds())
			}
			if est.UncertaintyNs <= 0 {
				t.Fatalf("uncertainty must be positive, got %d", est.UncertaintyNs)
			}
			if est.RTTNs < (200 * time.Microsecond).Nanoseconds() {
				t.Fatalf("rtt %dns below injected minimum delay", est.RTTNs)
			}
		})
	}
}

func TestEstimateClockKeepsMinRTTSample(t *testing.T) {
	// Probe 3 answers instantly; the rest sleep. The min-RTT sample's
	// tight bound must win over the sloppy ones.
	i := 0
	probe := func() (ClockDoc, error) {
		i++
		if i != 3 {
			time.Sleep(5 * time.Millisecond)
		}
		return ClockDoc{UnixNs: time.Now().UnixNano()}, nil
	}
	est, err := EstimateClock(5, probe)
	if err != nil {
		t.Fatal(err)
	}
	if est.UncertaintyNs > (5 * time.Millisecond).Nanoseconds()/2 {
		t.Fatalf("uncertainty %dns: min-RTT sample not selected", est.UncertaintyNs)
	}
}

func TestEstimateClockAllProbesFail(t *testing.T) {
	_, err := EstimateClock(3, func() (ClockDoc, error) {
		return ClockDoc{}, fmt.Errorf("connection refused")
	})
	if err == nil {
		t.Fatal("want error when every probe fails")
	}
}

func TestEstimateClockPartialFailure(t *testing.T) {
	i := 0
	est, err := EstimateClock(4, func() (ClockDoc, error) {
		i++
		if i%2 == 0 {
			return ClockDoc{}, fmt.Errorf("flake")
		}
		return ClockDoc{UnixNs: time.Now().UnixNano()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 2 {
		t.Fatalf("samples = %d, want 2 (failed probes must not count)", est.Samples)
	}
}
