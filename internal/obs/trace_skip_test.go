package obs

import (
	"strings"
	"testing"
)

func TestReadTraceSkipsTuneMeta(t *testing.T) {
	trace := `{"trace_meta":1,"node":-1,"epoch_unix_ns":0,"source":"run"}
{"tune_meta":1,"workload":{"workers":4,"model_bytes":1024,"strategy":"ring"}}
{"node":0,"iter":0,"phase":"send","start_ns":0,"dur_ns":1000}
`
	spans, metas, err := ReadTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(metas) != 1 {
		t.Fatalf("metas = %d, want 1", len(metas))
	}
	if len(spans) != 1 || spans[0].Phase != PhaseSend {
		t.Fatalf("spans = %+v, want one send span", spans)
	}
}
