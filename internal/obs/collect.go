package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Key identifies one cell of the merged cluster timeline: which node
// spent time in which phase of which training iteration. It is the unit
// the critical-path attribution and the calibration diff operate on.
type Key struct {
	Node  int
	Iter  int
	Phase Phase
}

// IndexSpans sums span durations per {node, iter, phase} — the merged
// timeline as a queryable map.
func IndexSpans(spans []Span) map[Key]time.Duration {
	idx := make(map[Key]time.Duration)
	for _, s := range spans {
		idx[Key{Node: s.Node, Iter: s.Iter, Phase: s.Phase}] += time.Duration(s.Dur)
	}
	return idx
}

// Source is one node's (or one process's) contribution to a merged
// cluster trace: its spans, the wall-clock anchor of their timebase, and
// — for live endpoints — the clock handshake that corrects for the
// source's clock running ahead of or behind the collector's.
type Source struct {
	// Name labels the source in reports (the file path or endpoint addr).
	Name string
	// Node forces every span to this node id; -1 keeps the node ids the
	// spans carry (a whole-process trace).
	Node int
	// Spans is the raw span list, timestamps on the source's own timebase.
	Spans []Span
	// EpochUnixNs anchors the span timebase to the source's wall clock
	// (from the trace meta line); 0 = unknown.
	EpochUnixNs int64
	// Clock, when non-nil, is the live handshake estimate for this
	// source's wall clock relative to the collector's.
	Clock *ClockEstimate
	// Metrics is the source's /metrics snapshot, when scraped.
	Metrics map[string]interface{}
}

// SourceInfo reports how one source was aligned during a merge.
type SourceInfo struct {
	Name          string
	Node          int
	Spans         int
	OffsetNs      int64 // clock correction applied (remote minus collector)
	UncertaintyNs int64 // ± bound on that correction (0 = wall-clock trust)
	Aligned       bool  // false: no epoch known, spans kept on their own base
}

// Merged is the offset-corrected, cluster-wide timeline a Collector
// produces: all sources' spans on one timebase, sorted by start,
// rebased so the earliest span starts at 0.
type Merged struct {
	Spans   []Span
	Sources []SourceInfo
	// BaseUnixNs is the collector-frame wall time of merged t=0 (0 when
	// no source carried a wall-clock anchor).
	BaseUnixNs int64
}

// Nodes returns the sorted distinct node ids in the merged trace.
func (m *Merged) Nodes() []int {
	seen := make(map[int]bool)
	for _, s := range m.Spans {
		seen[s.Node] = true
	}
	nodes := make([]int, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}

// Collector gathers per-node observability state — Registry snapshots and
// Tracer spans — from every worker of a multi-node run, estimates each
// source's clock offset, and merges everything into one global,
// offset-corrected timeline. Sources are added from JSONL trace files
// (AddFile), live -metrics-addr endpoints (AddEndpoint, which also runs
// the /clock handshake and scrapes /metrics), or directly (AddSpans).
//
// The collector owns a Registry of its own: per-source clock offset and
// uncertainty gauges plus merge totals, so the alignment quality is
// itself a first-class, renderable metric.
type Collector struct {
	// Probes is the number of /clock handshakes per endpoint (min-RTT
	// sample wins); 0 means the default of 7.
	Probes int
	// Client is the HTTP client for AddEndpoint (nil = 5s-timeout default).
	Client *http.Client

	sources []*Source
	reg     *Registry
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{reg: NewRegistry()}
}

// Registry exposes the collector's own metrics (clock offsets, merge
// totals).
func (c *Collector) Registry() *Registry { return c.reg }

// Sources returns the sources added so far.
func (c *Collector) Sources() []*Source { return c.sources }

// AddSpans adds an in-memory source. node -1 keeps span-carried node ids;
// epochUnixNs 0 marks the timebase anchor unknown.
func (c *Collector) AddSpans(name string, node int, epochUnixNs int64, spans []Span) *Source {
	src := &Source{Name: name, Node: node, Spans: spans, EpochUnixNs: epochUnixNs}
	c.sources = append(c.sources, src)
	return src
}

// AddFile ingests a JSONL trace file. The file's TraceMeta line (when
// present) supplies the node scope and the wall-clock epoch used for
// alignment; without one the source merges unaligned.
func (c *Collector) AddFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, metas, err := ReadTrace(f)
	if err != nil {
		return fmt.Errorf("obs: collect %s: %w", path, err)
	}
	src := c.AddSpans(filepath.Base(path), -1, 0, spans)
	if len(metas) > 0 {
		src.Node = metas[0].Node
		src.EpochUnixNs = metas[0].EpochUnixNs
	}
	return nil
}

// AddEndpoint scrapes a live obs endpoint: /trace for the spans, /metrics
// for the registry snapshot, and a /clock handshake (Probes rounds,
// min-RTT midpoint) for the clock offset. A server without /clock (or
// without a tracer) falls back to the trace meta epoch.
func (c *Collector) AddEndpoint(addr string) error {
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	get := func(path string) ([]byte, error) {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s%s: %s", addr, path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}

	body, err := get("/trace")
	if err != nil {
		return fmt.Errorf("obs: collect %s: %w", addr, err)
	}
	spans, metas, err := ReadTrace(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("obs: collect %s: %w", addr, err)
	}
	src := c.AddSpans(addr, -1, 0, spans)
	if len(metas) > 0 {
		src.Node = metas[0].Node
		src.EpochUnixNs = metas[0].EpochUnixNs
	}

	probes := c.Probes
	if probes <= 0 {
		probes = 7
	}
	if est, err := EstimateClock(probes, HTTPClockProbe(client, addr)); err == nil && est.EpochUnixNs != 0 {
		src.Clock = &est
	}

	if body, err := get("/metrics"); err == nil {
		if snap, err := ParseSnapshot(body); err == nil {
			src.Metrics = snap
		}
	}
	return nil
}

// Merge aligns every source onto the collector's timebase and returns the
// global timeline. Alignment per source, best evidence first:
//
//  1. A live clock handshake: epoch_collector = Clock.EpochUnixNs −
//     Clock.OffsetNs (the remote epoch translated into collector wall
//     time, good to ±UncertaintyNs).
//  2. A trace-meta epoch: trusted as-is (assumes wall clocks are synced —
//     same host, or NTP-disciplined).
//  3. Neither: the source merges on its own base from 0 and is flagged
//     unaligned.
//
// The merged spans are sorted by corrected start time — out-of-order
// input (a wrapped ring buffer read mid-write, concatenated files) is
// normalized here — and rebased so the earliest span starts at zero. The
// per-source offsets and uncertainties are recorded as gauges in the
// collector's Registry.
func (c *Collector) Merge() (*Merged, error) {
	if len(c.sources) == 0 {
		return nil, fmt.Errorf("obs: nothing to merge: no sources added")
	}
	m := &Merged{}
	type placed struct {
		src   *Source
		epoch int64 // source timebase origin in collector wall ns
		info  SourceInfo
	}
	var ps []placed
	anyAligned := false
	for _, src := range c.sources {
		p := placed{src: src, info: SourceInfo{Name: src.Name, Node: src.Node, Spans: len(src.Spans)}}
		switch {
		case src.Clock != nil && src.Clock.EpochUnixNs != 0:
			p.epoch = src.Clock.EpochUnixNs - src.Clock.OffsetNs
			p.info.OffsetNs = src.Clock.OffsetNs
			p.info.UncertaintyNs = src.Clock.UncertaintyNs
			p.info.Aligned = true
		case src.EpochUnixNs != 0:
			p.epoch = src.EpochUnixNs
			p.info.Aligned = true
		}
		if p.info.Aligned {
			anyAligned = true
		}
		ps = append(ps, p)
	}

	for _, p := range ps {
		gaugeBase := fmt.Sprintf("collector_clock_%s", promName(p.src.Name))
		c.reg.Gauge(gaugeBase + "_offset_s").Set(float64(p.info.OffsetNs) / 1e9)
		c.reg.Gauge(gaugeBase + "_uncertainty_s").Set(float64(p.info.UncertaintyNs) / 1e9)
		epoch := p.epoch
		for _, s := range p.src.Spans {
			if p.src.Node >= 0 {
				s.Node = p.src.Node
			}
			s.Start += epoch
			m.Spans = append(m.Spans, s)
		}
		m.Sources = append(m.Sources, p.info)
	}
	sort.SliceStable(m.Spans, func(i, j int) bool { return m.Spans[i].Start < m.Spans[j].Start })
	if len(m.Spans) > 0 {
		base := m.Spans[0].Start
		for i := range m.Spans {
			m.Spans[i].Start -= base
		}
		if anyAligned {
			m.BaseUnixNs = base
		}
	}
	c.reg.Counter("collector_spans_merged").Add(int64(len(m.Spans)))
	c.reg.Gauge("collector_sources").Set(float64(len(m.Sources)))
	return m, nil
}

// WriteJSONL writes the merged timeline in the standard trace format: a
// meta line anchoring merged t=0 to the collector's wall clock, then the
// spans. The result is consumable by every inctrace mode.
func (m *Merged) WriteJSONL(w io.Writer) error {
	meta := TraceMeta{Version: 1, Node: -1, EpochUnixNs: m.BaseUnixNs, Source: "merged"}
	return WriteSpansJSONL(w, meta, m.Spans)
}
