package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMergeOutOfOrderAndWrapped(t *testing.T) {
	// A wrapped ring buffer read mid-write hands the collector spans whose
	// record order no longer matches time order. Feed a deliberately
	// shuffled source plus a second source with a later epoch and check
	// the merged timeline is monotone, offset-corrected, and rebased.
	c := NewCollector()
	c.AddSpans("shuffled", 0, 1_000_000, []Span{
		{Node: 9, Iter: 2, Phase: PhaseSend, Start: 500, Dur: 10},
		{Node: 9, Iter: 0, Phase: PhaseSend, Start: 100, Dur: 10},
		{Node: 9, Iter: 1, Phase: PhaseSend, Start: 300, Dur: 10},
	})
	// Epoch 700ns later: its span at local 100 lands at global 800.
	c.AddSpans("later", 1, 1_000_700, []Span{
		{Node: 1, Iter: 0, Phase: PhaseRecv, Start: 100, Dur: 5},
	})
	m, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spans) != 4 {
		t.Fatalf("merged %d spans, want 4", len(m.Spans))
	}
	for i := 1; i < len(m.Spans); i++ {
		if m.Spans[i].Start < m.Spans[i-1].Start {
			t.Fatalf("merged spans not sorted: %v", m.Spans)
		}
	}
	if m.Spans[0].Start != 0 {
		t.Fatalf("timeline not rebased to 0: first start %d", m.Spans[0].Start)
	}
	// Node forcing: source "shuffled" is scoped to node 0.
	if m.Spans[0].Node != 0 {
		t.Fatalf("node not forced by source scope: got %d", m.Spans[0].Node)
	}
	// Expected global order: 100, 300, 500 (node 0) then 800 (node 1).
	wantStarts := []int64{0, 200, 400, 700}
	for i, w := range wantStarts {
		if m.Spans[i].Start != w {
			t.Fatalf("span %d start = %d, want %d", i, m.Spans[i].Start, w)
		}
	}
	if m.BaseUnixNs != 1_000_100 {
		t.Fatalf("BaseUnixNs = %d, want 1000100", m.BaseUnixNs)
	}
}

func TestMergeTracerWrapAround(t *testing.T) {
	// Drive a real tracer past capacity so its buffer physically wraps,
	// then merge the snapshot. Snapshot order is record order; the merge
	// must still emit time-sorted output even if a raw-span source
	// recorded out of time order around the wrap.
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		// Descending starts make record order the reverse of time order.
		tr.RecordRaw(0, i, PhaseCompute, int64(1000-i*100), 50)
	}
	c := NewCollector()
	c.AddSpans("wrap", -1, tr.EpochUnixNs(), tr.Snapshot())
	m, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(m.Spans))
	}
	for i := 1; i < len(m.Spans); i++ {
		if m.Spans[i].Start < m.Spans[i-1].Start {
			t.Fatalf("wrapped merge not sorted: %+v", m.Spans)
		}
	}
	// The 4 retained spans are iters 6..9 (starts 400,300,200,100);
	// sorted and rebased they begin at 0 with iter 9 first.
	if m.Spans[0].Iter != 9 || m.Spans[0].Start != 0 {
		t.Fatalf("first merged span = %+v, want iter 9 at 0", m.Spans[0])
	}
}

func TestMergeNoSources(t *testing.T) {
	if _, err := NewCollector().Merge(); err == nil {
		t.Fatal("want error merging with no sources")
	}
}

func TestCollectorFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(64)
	tr.RecordRaw(0, 0, PhaseCompute, 10, 100)
	tr.RecordRaw(1, 0, PhaseCompute, 20, 100)
	for node := 0; node < 2; node++ {
		var buf bytes.Buffer
		if err := tr.WriteNodeJSONL(&buf, node); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "trace_"+string(rune('0'+node))+".jsonl")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector()
	for node := 0; node < 2; node++ {
		if err := c.AddFile(filepath.Join(dir, "trace_"+string(rune('0'+node))+".jsonl")); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spans) != 2 {
		t.Fatalf("merged %d spans, want 2", len(m.Spans))
	}
	for _, si := range m.Sources {
		if !si.Aligned {
			t.Fatalf("file source %s not aligned despite meta epoch", si.Name)
		}
	}
	// Same-tracer epochs: relative spacing must survive the round trip.
	if d := m.Spans[1].Start - m.Spans[0].Start; d != 10 {
		t.Fatalf("span spacing %dns, want 10ns", d)
	}

	// The merged timeline re-exports in the standard format.
	var out bytes.Buffer
	if err := m.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	spans, metas, err := ReadTrace(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || len(metas) != 1 || metas[0].Source != "merged" {
		t.Fatalf("re-exported trace: %d spans, metas %+v", len(spans), metas)
	}
}

// skewedObsServer serves the obs endpoint surface (/trace, /metrics,
// /clock) for a tracer whose host clock runs `skew` away from the test's
// — the cross-machine scenario the clock handshake exists for.
func skewedObsServer(t *testing.T, reg *Registry, tr *Tracer, skew time.Duration) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		// The skewed host stamps its meta epoch with its own wall clock.
		meta := tr.Meta(-1)
		meta.EpochUnixNs += skew.Nanoseconds()
		WriteSpansJSONL(w, meta, tr.Snapshot())
	})
	mux.HandleFunc("/clock", func(w http.ResponseWriter, _ *http.Request) {
		doc := clockDocNow(tr)
		doc.UnixNs += skew.Nanoseconds()
		doc.EpochUnixNs += skew.Nanoseconds()
		json.NewEncoder(w).Encode(doc)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestCollectorLiveEndpoints(t *testing.T) {
	// Three "nodes": two honest clocks behind the real obs handler, one
	// skewed 2 seconds into the future behind the simulated remote host.
	// All three record one compute span at (nearly) the same true instant;
	// after the /clock handshake the merged timeline must put them
	// together, skew corrected away.
	const skew = 2 * time.Second
	var addrs []string
	var tracers []*Tracer
	for node := 0; node < 3; node++ {
		reg := NewRegistry()
		reg.Counter("iterations_total").Add(int64(10 + node))
		tr := NewTracer(128)
		tracers = append(tracers, tr)
		var srv *httptest.Server
		if node == 2 {
			srv = skewedObsServer(t, reg, tr, skew)
		} else {
			srv = httptest.NewServer(NewHTTPHandler(reg, tr))
			t.Cleanup(srv.Close)
		}
		addrs = append(addrs, strings.TrimPrefix(srv.URL, "http://"))
	}

	// One shared true instant, expressed on each tracer's own timebase.
	now := time.Now().UnixNano()
	for node, tr := range tracers {
		tr.RecordRaw(node, 0, PhaseCompute, now-tr.EpochUnixNs(), 1000)
	}

	c := NewCollector()
	c.Probes = 5
	for _, addr := range addrs {
		if err := c.AddEndpoint(addr); err != nil {
			t.Fatal(err)
		}
	}
	for i, src := range c.Sources() {
		if src.Clock == nil {
			t.Fatalf("source %d: no clock handshake", i)
		}
		if len(src.Metrics) == 0 {
			t.Fatalf("source %d: /metrics not scraped", i)
		}
	}
	// The skewed endpoint's handshake must report ≈+2s offset.
	est := c.Sources()[2].Clock
	offErr := est.OffsetNs - skew.Nanoseconds()
	if offErr < 0 {
		offErr = -offErr
	}
	if offErr > est.UncertaintyNs+int64(50*time.Millisecond) {
		t.Fatalf("skewed endpoint offset %dns, want ≈%dns (±%dns)", est.OffsetNs, skew.Nanoseconds(), est.UncertaintyNs)
	}

	m, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spans) != 3 {
		t.Fatalf("merged %d spans, want 3", len(m.Spans))
	}
	// All three spans marked the same true instant: after correction the
	// spread must be far below the injected 2s skew — bounded by the
	// handshake uncertainty plus loopback scheduling slop.
	spread := m.Spans[2].Start - m.Spans[0].Start
	if spread > (100 * time.Millisecond).Nanoseconds() {
		t.Fatalf("corrected spread %s: skew not removed", time.Duration(spread))
	}
	// And the collector's own registry carries the alignment gauges.
	snap := c.Registry().Snapshot()
	if v, ok := snap["collector_spans_merged"].(int64); !ok || v != 3 {
		t.Fatalf("collector_spans_merged = %v", snap["collector_spans_merged"])
	}
	found := false
	for k := range snap {
		if strings.HasPrefix(k, "collector_clock_") && strings.HasSuffix(k, "_offset_s") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no per-source clock offset gauges in %v", snap)
	}
}
