package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewHTTPHandler serves the observability surface:
//
//	/metrics        expvar-style JSON snapshot of the registry
//	/metrics?format=prom  the same snapshot in Prometheus text exposition
//	/trace          the retained span ring as JSONL (meta line + spans)
//	/clock          the clock document the Collector's offset handshake reads
//	/debug/pprof/*  the standard Go profiler endpoints
//
// Either reg or tr may be nil; the corresponding endpoint then serves
// an empty document.
//
// Extra mounts extend the surface with endpoints obs itself cannot know
// about (the health engine's /health, for one) without reversing the
// dependency direction: obs stays import-free within the repo.
func NewHTTPHandler(reg *Registry, tr *Tracer, extra ...Mount) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if snap == nil {
			snap = map[string]interface{}{}
		}
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WriteProm(w, snap)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if tr != nil {
			tr.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/clock", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(clockDocNow(tr))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range extra {
		if m.Pattern != "" && m.Handler != nil {
			mux.Handle(m.Pattern, m.Handler)
		}
	}
	return mux
}

// Mount attaches an extra handler to the observability mux.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Serve starts the observability endpoint on addr (":0" picks a free
// port) in a background goroutine and returns the bound address. The
// server lives until the process exits — it is a diagnostics side-car,
// not a managed service.
func Serve(addr string, reg *Registry, tr *Tracer, extra ...Mount) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: NewHTTPHandler(reg, tr, extra...)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
