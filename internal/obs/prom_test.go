package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromNameEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"tcp_retransmits", "tcp_retransmits"},
		{"9abc", "_abc"},                   // leading digit is invalid
		{"abc9", "abc9"},                   // trailing digit is fine
		{"a-b.c", "a_b_c"},                 // punctuation flattens to '_'
		{"ns:sub:metric", "ns:sub:metric"}, // colons are part of the charset
		{"латентность", "___________"},     // non-ASCII flattens rune by rune
		{"a b\tc", "a_b_c"},
		{"", ""},
	}
	for _, c := range cases {
		if got := promName(c.in); got != c.want {
			t.Errorf("promName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWritePromNaNInf pins how non-finite gauges render: Prometheus'
// text format accepts NaN/+Inf/-Inf literals, and %g produces exactly
// those spellings — a scraper must never see "%!g" noise or a panic.
func TestWritePromNaNInf(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("ratio_nan").Set(math.NaN())
	reg.Gauge("ratio_posinf").Set(math.Inf(1))
	reg.Gauge("ratio_neginf").Set(math.Inf(-1))
	reg.Counter("9starts_with_digit").Add(7)

	var buf bytes.Buffer
	WriteProm(&buf, reg.Snapshot())
	out := buf.String()
	for _, want := range []string{
		"# TYPE ratio_nan gauge\nratio_nan NaN\n",
		"# TYPE ratio_posinf gauge\nratio_posinf +Inf\n",
		"# TYPE ratio_neginf gauge\nratio_neginf -Inf\n",
		"# TYPE _starts_with_digit counter\n_starts_with_digit 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "9starts_with_digit") {
		t.Errorf("unsanitized metric name leaked:\n%s", out)
	}
}

// TestWritePromHistogramCumulative pins the cumulative-le contract: each
// bucket line carries the running total, and the +Inf bucket equals
// _count.
func TestWritePromHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("step_seconds")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Hour) // lands beyond every finite bound

	var buf bytes.Buffer
	WriteProm(&buf, reg.Snapshot())
	out := buf.String()
	if !strings.Contains(out, "# TYPE step_seconds histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `step_seconds_bucket{le="+Inf"} 3`) {
		t.Errorf("+Inf bucket should count all 3 observations:\n%s", out)
	}
	if !strings.Contains(out, "step_seconds_count 3") {
		t.Errorf("missing _count 3:\n%s", out)
	}
	// Cumulative counts never decrease across bucket lines.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "step_seconds_bucket{") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, last)
		}
		last = n
	}
}

// TestRenderTimelineDegenerateWidths: widths below the 10-bucket floor
// (0, 1, negative) clamp up rather than divide by zero, even when the
// trace holds more spans than buckets; empty and zero-duration traces
// render nothing at all.
func TestRenderTimelineDegenerateWidths(t *testing.T) {
	tr := NewTracer(256)
	// 20 spans per node — more spans than the clamped 10 buckets.
	for it := 0; it < 20; it++ {
		start := int64(it) * int64(time.Millisecond)
		tr.RecordRaw(0, it, PhaseCompute, start, int64(time.Millisecond))
		tr.RecordRaw(1, it, PhaseRecv, start, int64(time.Millisecond))
	}
	spans := tr.Snapshot()

	for _, width := range []int{0, 1, 9, -5} {
		var buf bytes.Buffer
		RenderTimeline(&buf, spans, width)
		out := buf.String()
		if !strings.Contains(out, "10 buckets") {
			t.Errorf("width %d: want clamp to 10 buckets, got:\n%s", width, out)
		}
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "node ") {
				continue
			}
			lo, hi := strings.IndexByte(line, '|'), strings.LastIndexByte(line, '|')
			if hi-lo-1 != 10 {
				t.Errorf("width %d: row has %d cells, want 10: %q", width, hi-lo-1, line)
			}
		}
	}

	var buf bytes.Buffer
	RenderTimeline(&buf, nil, 0)
	if buf.Len() != 0 {
		t.Errorf("empty trace rendered output: %q", buf.String())
	}
	buf.Reset()
	// A single zero-duration span: EndNs == StartNs, nothing to draw.
	RenderTimeline(&buf, []Span{{Node: 0, Phase: PhaseCompute, Start: 100, Dur: 0}}, 0)
	if buf.Len() != 0 {
		t.Errorf("zero-duration trace rendered output: %q", buf.String())
	}
}

// TestTracerTailSince pins the incremental-drain contract the health
// engine's flight recorder depends on: each span is seen exactly once
// while polling keeps up, and a lapped cursor returns only the retained
// tail (newest spans) rather than duplicating or blocking.
func TestTracerTailSince(t *testing.T) {
	tr := NewTracer(8)
	for it := 0; it < 5; it++ {
		tr.RecordRaw(0, it, PhaseCompute, int64(it), 1)
	}
	spans, cur := tr.TailSince(0)
	if len(spans) != 5 || cur != 5 {
		t.Fatalf("first drain: %d spans cursor %d, want 5 and 5", len(spans), cur)
	}
	if spans[0].Iter != 0 || spans[4].Iter != 4 {
		t.Fatalf("first drain out of order: %+v", spans)
	}

	// No growth: nothing new, cursor unchanged.
	spans, cur = tr.TailSince(cur)
	if len(spans) != 0 || cur != 5 {
		t.Fatalf("idle drain: %d spans cursor %d, want 0 and 5", len(spans), cur)
	}

	// Lap the ring: 10 more spans into a cap-8 ring evicts iters 5,6.
	for it := 5; it < 15; it++ {
		tr.RecordRaw(0, it, PhaseCompute, int64(it), 1)
	}
	spans, cur = tr.TailSince(cur)
	if cur != 15 {
		t.Fatalf("lapped cursor = %d, want 15", cur)
	}
	if len(spans) != 8 || spans[0].Iter != 7 || spans[7].Iter != 14 {
		t.Fatalf("lapped drain = %d spans (%+v), want retained iters 7..14", len(spans), spans)
	}
}
