// Package obs is the runtime observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket latency histograms
// with atomic hot paths), a bounded-ring-buffer step tracer that records
// phase-level span events streamable as JSONL, and an optional HTTP
// endpoint serving an expvar-style JSON snapshot plus net/http/pprof.
//
// It is the software analogue of the paper's evaluation methodology:
// Figs. 12–14 are *time breakdowns* — computation vs. communication, and
// inside communication the compress/transport/reduce/decompress phases —
// and every hot path of the runtime (the ring exchange, the transports,
// the codec, the elastic membership layer, the training loops) reports
// into this package so a live run can be broken down the same way.
//
// The package is stdlib-only and imports nothing else from this
// repository, so any layer may depend on it without cycles. All
// instrumentation goes through the nil-safe *Recorder: a nil recorder
// (the zero value of every Obs option field) makes every call a
// pointer-compare no-op, so uninstrumented runs pay nothing.
package obs

import (
	"fmt"
	"time"
)

// Phase identifies one class of work inside a training step. The set
// mirrors the paper's Fig. 13/14 breakdown: computation, the
// compress/transport/reduce/decompress legs of communication, plus the
// elastic-layer activities (checkpoint, replay) added by PR 3.
type Phase uint8

// Span phases, in breakdown-table order.
const (
	PhaseCompute Phase = iota
	PhaseCompress
	PhaseSend
	PhaseRecv
	PhaseReduce
	PhaseDecompress
	PhaseCheckpoint
	PhaseReplay
	// PhaseFallback marks a mid-run collective degradation: the span's
	// node is the component that failed (the switch), its duration the
	// detection latency from fault onset to confirmation. Critical-path
	// attribution treats it as overriding evidence — an iteration
	// containing a fallback span is gated by that node, full stop.
	PhaseFallback
	NumPhases // sentinel: number of phases
)

var phaseNames = [NumPhases]string{
	"compute", "compress", "send", "recv",
	"reduce", "decompress", "checkpoint", "replay", "fallback",
}

// String returns the phase's wire name (used in trace JSONL).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// ParsePhase inverts String for the trace reader.
func ParsePhase(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// MarshalJSON encodes the phase as its name.
func (p Phase) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON decodes a phase name.
func (p *Phase) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("obs: invalid phase %s", b)
	}
	v, ok := ParsePhase(string(b[1 : len(b)-1]))
	if !ok {
		return fmt.Errorf("obs: unknown phase %q", b[1:len(b)-1])
	}
	*p = v
	return nil
}

// Span is one timed phase event on one node. Start is nanoseconds since
// the tracer's epoch (its construction time), Dur the span length in
// nanoseconds. Iter is the training iteration, or -1 for work that is
// not attributable to a specific iteration (transport-internal codec
// runs, for example).
type Span struct {
	Node  int   `json:"node"`
	Iter  int   `json:"iter"`
	Phase Phase `json:"phase"`
	Start int64 `json:"start_ns"`
	Dur   int64 `json:"dur_ns"`
}

// End returns the span's end offset in nanoseconds since the epoch.
func (s Span) End() int64 { return s.Start + s.Dur }

// Recorder bundles a registry and a tracer behind a nil-safe handle: the
// instrumented hot paths call methods on a possibly-nil *Recorder, and
// every method (and every method of the metric handles it returns)
// treats nil as "observability off". Handles returned by Counter, Gauge
// and Histogram should be looked up once per exchange or per run, not
// per event — the handle methods themselves are single atomic ops.
type Recorder struct {
	reg *Registry
	tr  *Tracer
}

// NewRecorder returns a recorder over the given registry and tracer;
// either may be nil to disable that half.
func NewRecorder(reg *Registry, tr *Tracer) *Recorder {
	return &Recorder{reg: reg, tr: tr}
}

// Registry returns the underlying registry (nil when off).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Tracer returns the underlying tracer (nil when off).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tr
}

// Counter returns the named counter handle, or nil when the recorder is
// off; the nil handle's Add is a no-op.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil || r.reg == nil {
		return nil
	}
	return r.reg.Counter(name)
}

// Gauge returns the named gauge handle (nil-safe like Counter).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil || r.reg == nil {
		return nil
	}
	return r.reg.Gauge(name)
}

// Histogram returns the named latency histogram (nil-safe like Counter).
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil || r.reg == nil {
		return nil
	}
	return r.reg.Histogram(name)
}

// ActiveSpan is an in-flight phase measurement; call End (or EndAt) to
// record it. The zero value (from a nil recorder) ends as a no-op, and
// the struct is returned by value, so starting a span never allocates.
type ActiveSpan struct {
	tr    *Tracer
	start time.Time
	node  int32
	iter  int32
	phase Phase
}

// Span starts a phase span for (node, iter). Use iter -1 for work not
// tied to a training iteration.
func (r *Recorder) Span(node, iter int, phase Phase) ActiveSpan {
	if r == nil || r.tr == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{tr: r.tr, start: time.Now(), node: int32(node), iter: int32(iter), phase: phase}
}

// End records the span with duration now-start.
func (s ActiveSpan) End() {
	if s.tr == nil {
		return
	}
	s.tr.record(int(s.node), int(s.iter), s.phase, s.start, time.Since(s.start))
}

// EndWith records the span with an explicit duration (for phases whose
// active time was accumulated across interleaved chunks rather than
// spanning wall-clock start→end).
func (s ActiveSpan) EndWith(d time.Duration) {
	if s.tr == nil || d < 0 {
		return
	}
	s.tr.record(int(s.node), int(s.iter), s.phase, s.start, d)
}

// RecordSpan records a fully-formed span measurement directly.
func (r *Recorder) RecordSpan(node, iter int, phase Phase, start time.Time, d time.Duration) {
	if r == nil || r.tr == nil || d < 0 {
		return
	}
	r.tr.record(node, iter, phase, start, d)
}

// RecordRaw records a span with explicit timeline offsets, bypassing the
// tracer's wall-clock epoch. The simulators (eventsim, netsim) use it to
// emit virtual-time spans in the identical schema as measured runs, so
// inctrace can aggregate, blame, and calibrate both the same way.
func (r *Recorder) RecordRaw(node, iter int, phase Phase, startNs, durNs int64) {
	if r == nil || r.tr == nil || durNs < 0 {
		return
	}
	r.tr.RecordRaw(node, iter, phase, startNs, durNs)
}
