package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// synthRing emits spans for a p-node ring where `slow` (if ≥0) computes
// `delay` longer than the rest each iteration. Recv waits follow the ring
// cascade: the straggler's data is always ready (minimal wait), everyone
// else stalls by the delay.
func synthRing(p, iters, slow int, delay time.Duration) []Span {
	var spans []Span
	var t int64
	base := 1 * time.Millisecond
	for it := 0; it < iters; it++ {
		for n := 0; n < p; n++ {
			comp := base
			if n == slow {
				comp += delay
			}
			spans = append(spans, Span{Node: n, Iter: it, Phase: PhaseCompute, Start: t, Dur: comp.Nanoseconds()})
			wait := 50 * time.Microsecond // baseline pipeline wait
			if slow >= 0 && n != slow {
				wait += delay
			}
			spans = append(spans, Span{Node: n, Iter: it, Phase: PhaseRecv, Start: t + comp.Nanoseconds(), Dur: wait.Nanoseconds()})
			spans = append(spans, Span{Node: n, Iter: it, Phase: PhaseSend, Start: t, Dur: (200 * time.Microsecond).Nanoseconds()})
		}
		t += (10 * time.Millisecond).Nanoseconds()
	}
	return spans
}

func TestAttributeCriticalPathStraggler(t *testing.T) {
	const p, iters, slow = 4, 20, 2
	r := AttributeCriticalPath(synthRing(p, iters, slow, 5*time.Millisecond), 0)
	if len(r.Nodes) != p || len(r.Iters) != iters {
		t.Fatalf("nodes=%v iters=%d", r.Nodes, len(r.Iters))
	}
	node, share := r.Gating()
	if node != slow {
		t.Fatalf("gating node %d, want %d", node, slow)
	}
	if share < 0.9 {
		t.Fatalf("gating share %.2f, want ≥0.90", share)
	}
	// The straggler's excuse is its compute phase.
	for _, ia := range r.Iters {
		if ia.Gating == slow && ia.GatingPhase != PhaseCompute {
			t.Fatalf("iter %d gating phase %s, want compute", ia.Iter, ia.GatingPhase)
		}
	}
	// Blame lands on each waiter's left neighbor; the straggler itself
	// (minimum wait) charges nothing.
	slowIdx := slow
	for i := range r.Nodes {
		left := (i - 1 + p) % p
		for j := range r.Nodes {
			got := r.Blame[i][j]
			switch {
			case i == slowIdx:
				if got != 0 {
					t.Fatalf("straggler row blames %v at col %d", got, j)
				}
			case j == left:
				if got <= 0 {
					t.Fatalf("node %d should blame its left neighbor %d", r.Nodes[i], r.Nodes[left])
				}
			default:
				if got != 0 {
					t.Fatalf("off-neighbor blame cell [%d][%d] = %v", i, j, got)
				}
			}
		}
	}
}

func TestAttributeCriticalPathBalanced(t *testing.T) {
	r := AttributeCriticalPath(synthRing(4, 10, -1, 0), 100*time.Microsecond)
	if r.Attributed != 0 {
		t.Fatalf("balanced ring attributed %d iterations", r.Attributed)
	}
	if node, _ := r.Gating(); node != -1 {
		t.Fatalf("balanced ring names straggler %d", node)
	}
	for _, ia := range r.Iters {
		if !ia.Balanced || ia.Gating != -1 {
			t.Fatalf("iteration %+v not marked balanced", ia)
		}
	}
}

func TestRenderBlame(t *testing.T) {
	r := AttributeCriticalPath(synthRing(3, 5, 1, 3*time.Millisecond), 0)
	var buf bytes.Buffer
	r.RenderBlame(&buf)
	out := buf.String()
	for _, want := range []string{"blame matrix", "straggler: node 1", "dominant phase: compute"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blame report missing %q:\n%s", want, out)
		}
	}
}

func TestCalibrate(t *testing.T) {
	// Measured: 10ms compute per cell; sim: 12ms → +20% relative error.
	var measured, sim []Span
	for it := 0; it < 4; it++ {
		for n := 0; n < 2; n++ {
			measured = append(measured, Span{Node: n, Iter: it, Phase: PhaseCompute, Dur: (10 * time.Millisecond).Nanoseconds()})
			sim = append(sim, Span{Node: n, Iter: it, Phase: PhaseCompute, Dur: (12 * time.Millisecond).Nanoseconds()})
			sim = append(sim, Span{Node: n, Iter: it, Phase: PhaseSend, Dur: (1 * time.Millisecond).Nanoseconds()})
		}
	}
	c := Calibrate(measured, sim)
	var comp, send *PhaseCal
	for i := range c.Phases {
		switch c.Phases[i].Phase {
		case PhaseCompute:
			comp = &c.Phases[i]
		case PhaseSend:
			send = &c.Phases[i]
		}
	}
	if comp == nil || send == nil {
		t.Fatalf("phases missing: %+v", c.Phases)
	}
	if comp.RelErr < 0.199 || comp.RelErr > 0.201 {
		t.Fatalf("compute rel err %.4f, want 0.20", comp.RelErr)
	}
	if comp.MeasuredCells != 8 || comp.SimCells != 8 {
		t.Fatalf("cells %d/%d, want 8/8", comp.MeasuredCells, comp.SimCells)
	}
	// Send exists only in sim: no relative error claimed.
	if send.RelErr != 0 || send.MeasuredCells != 0 {
		t.Fatalf("sim-only phase: %+v", send)
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "+20.0%") {
		t.Fatalf("render missing rel err:\n%s", buf.String())
	}
}
