package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WriteProm renders a Registry.Snapshot in the Prometheus text exposition
// format (version 0.0.4), so any standard scraper pointed at
// `-metrics-addr` with `/metrics?format=prom` works out of the box.
// Counters expose as counters, gauges and func metrics as gauges, and
// latency histograms as native Prometheus histograms (cumulative `le`
// buckets in seconds, plus _sum and _count).
func WriteProm(w io.Writer, snap map[string]interface{}) {
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		name := promName(k)
		switch v := snap[k].(type) {
		case int64:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
		case float64:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v)
		case HistSnapshot:
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum int64
			for _, b := range v.Buckets {
				cum += b.N
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b.LESeconds), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, v.Count)
			fmt.Fprintf(w, "%s_sum %g\n", name, v.SumSeconds)
			fmt.Fprintf(w, "%s_count %d\n", name, v.Count)
		default:
			fmt.Fprintf(w, "# TYPE %s untyped\n%s %v\n", name, name, v)
		}
	}
}
