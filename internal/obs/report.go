package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ParseSnapshot decodes a /metrics JSON document into the flat map shape
// Registry.Snapshot produces (histograms become generic maps, which
// RenderMetrics understands).
func ParseSnapshot(body []byte) (map[string]interface{}, error) {
	var snap map[string]interface{}
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("obs: metrics snapshot: %w", err)
	}
	return snap, nil
}

// NodeBreakdown is one node's per-phase time totals over a trace.
type NodeBreakdown struct {
	Node    int
	Phase   [NumPhases]time.Duration
	Iters   int // distinct iterations observed (iter ≥ 0 spans)
	MinIter int
	MaxIter int
}

// Total returns the node's summed phase time.
func (n *NodeBreakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range n.Phase {
		t += d
	}
	return t
}

// Comm returns the node's communication time: everything except the
// compute phase (the paper's computation-vs-communication split, with
// checkpoint/replay counted as overhead on the communication side).
func (n *NodeBreakdown) Comm() time.Duration {
	return n.Total() - n.Phase[PhaseCompute]
}

// Breakdown aggregates a trace into per-node phase totals — the data
// behind the paper's Fig. 13/14 time-breakdown bars.
type Breakdown struct {
	Nodes   []NodeBreakdown // sorted by node id
	StartNs int64           // earliest span start in the trace
	EndNs   int64           // latest span end
}

// Aggregate builds the breakdown from raw spans.
func Aggregate(spans []Span) *Breakdown {
	byNode := make(map[int]*NodeBreakdown)
	b := &Breakdown{}
	first := true
	for _, s := range spans {
		nb := byNode[s.Node]
		if nb == nil {
			nb = &NodeBreakdown{Node: s.Node, MinIter: -1, MaxIter: -1}
			byNode[s.Node] = nb
		}
		if s.Phase < NumPhases {
			nb.Phase[s.Phase] += time.Duration(s.Dur)
		}
		if s.Iter >= 0 {
			if nb.MinIter < 0 || s.Iter < nb.MinIter {
				nb.MinIter = s.Iter
			}
			if s.Iter > nb.MaxIter {
				nb.MaxIter = s.Iter
			}
		}
		if first || s.Start < b.StartNs {
			b.StartNs = s.Start
		}
		if first || s.End() > b.EndNs {
			b.EndNs = s.End()
		}
		first = false
	}
	for _, nb := range byNode {
		if nb.MinIter >= 0 {
			nb.Iters = nb.MaxIter - nb.MinIter + 1
		}
		b.Nodes = append(b.Nodes, *nb)
	}
	sort.Slice(b.Nodes, func(i, j int) bool { return b.Nodes[i].Node < b.Nodes[j].Node })
	return b
}

// Wall returns the trace's wall-clock extent.
func (b *Breakdown) Wall() time.Duration {
	return time.Duration(b.EndNs - b.StartNs)
}

// RenderTable writes the per-node time-breakdown table (Fig. 13/14
// style): one row per node with absolute seconds and the share of that
// node's accounted time spent in each phase.
func (b *Breakdown) RenderTable(w io.Writer) {
	fmt.Fprintf(w, "%-5s %6s", "node", "iters")
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(w, " %14s", p.String())
	}
	fmt.Fprintf(w, " %12s %7s\n", "total", "comm%")
	for i := range b.Nodes {
		nb := &b.Nodes[i]
		total := nb.Total()
		fmt.Fprintf(w, "%-5d %6d", nb.Node, nb.Iters)
		for p := Phase(0); p < NumPhases; p++ {
			d := nb.Phase[p]
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(d) / float64(total)
			}
			fmt.Fprintf(w, " %9.3fs %3.0f%%", d.Seconds(), pct)
		}
		commPct := 0.0
		if total > 0 {
			commPct = 100 * float64(nb.Comm()) / float64(total)
		}
		fmt.Fprintf(w, " %11.3fs %6.1f%%\n", total.Seconds(), commPct)
	}
	fmt.Fprintf(w, "trace wall clock: %.3fs\n", b.Wall().Seconds())
}

// timelineChars maps each phase to its timeline glyph.
var timelineChars = [NumPhases]byte{'c', 'z', 's', 'r', '+', 'd', 'K', 'R', 'F'}

// RenderTimeline writes an ASCII step timeline: one row per node, the
// trace's wall-clock extent divided into width buckets, each bucket
// showing the phase that dominated it ('.' = idle):
//
//	c compute   z compress   s send   r recv
//	+ reduce    d decompress K checkpoint R replay F fallback
func RenderTimeline(w io.Writer, spans []Span, width int) {
	if width < 10 {
		width = 10
	}
	b := Aggregate(spans)
	if len(b.Nodes) == 0 || b.EndNs <= b.StartNs {
		return
	}
	bucketNs := float64(b.EndNs-b.StartNs) / float64(width)
	// occupancy[node][bucket][phase] = overlapped nanoseconds
	occ := make(map[int][][NumPhases]float64, len(b.Nodes))
	for _, nb := range b.Nodes {
		occ[nb.Node] = make([][NumPhases]float64, width)
	}
	for _, s := range spans {
		row := occ[s.Node]
		if row == nil || s.Phase >= NumPhases || s.Dur <= 0 {
			continue
		}
		lo := float64(s.Start - b.StartNs)
		hi := float64(s.End() - b.StartNs)
		for bi := int(lo / bucketNs); bi < width; bi++ {
			blo, bhi := float64(bi)*bucketNs, float64(bi+1)*bucketNs
			if blo >= hi {
				break
			}
			ov := math_min(hi, bhi) - math_max(lo, blo)
			if ov > 0 {
				row[bi][s.Phase] += ov
			}
		}
	}
	fmt.Fprintf(w, "timeline (%.3fs wall, %d buckets of %.1fms; c=compute z=compress s=send r=recv +=reduce d=decompress K=checkpoint R=replay .=idle)\n",
		b.Wall().Seconds(), width, bucketNs/1e6)
	for _, nb := range b.Nodes {
		row := occ[nb.Node]
		line := make([]byte, width)
		for bi := 0; bi < width; bi++ {
			best, bestV := byte('.'), 0.0
			for p := Phase(0); p < NumPhases; p++ {
				if v := row[bi][p]; v > bestV {
					best, bestV = timelineChars[p], v
				}
			}
			line[bi] = best
		}
		fmt.Fprintf(w, "node %-3d |%s|\n", nb.Node, string(line))
	}
}

// jnum renders an optional JSON number ("-" when absent — omitempty drops
// zero quantiles from empty histograms).
func jnum(v interface{}) string {
	switch n := v.(type) {
	case nil:
		return "-"
	case float64:
		return fmt.Sprintf("%.6f", n)
	default:
		return fmt.Sprintf("%v", v)
	}
}

func math_min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func math_max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RenderMetrics writes a flat metric snapshot (from Registry.Snapshot or
// a decoded /metrics document) in sorted name order, for CLI display.
func RenderMetrics(w io.Writer, snap map[string]interface{}) {
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		switch v := snap[k].(type) {
		case HistSnapshot:
			fmt.Fprintf(w, "%-40s count=%d sum=%.3fs p50=%.6fs p90=%.6fs p99=%.6fs max=%.3fs\n",
				k, v.Count, v.SumSeconds, v.P50Seconds, v.P90Seconds, v.P99Seconds, v.MaxSeconds)
		case map[string]interface{}:
			// A histogram that went through a JSON round trip.
			fmt.Fprintf(w, "%-40s count=%v sum=%vs p50=%vs p90=%vs p99=%vs max=%vs\n",
				k, v["count"], v["sum_s"], jnum(v["p50_s"]), jnum(v["p90_s"]), jnum(v["p99_s"]), v["max_s"])
		case float64:
			if v == float64(int64(v)) && !strings.Contains(k, "ratio") {
				fmt.Fprintf(w, "%-40s %d\n", k, int64(v))
			} else {
				fmt.Fprintf(w, "%-40s %.4f\n", k, v)
			}
		default:
			fmt.Fprintf(w, "%-40s %v\n", k, v)
		}
	}
}
