package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceMeta is the optional header line of a JSONL trace: it names the
// trace's node scope and anchors the span timebase (nanoseconds since the
// tracer's construction) to the writer's wall clock, which is what lets
// the Collector merge traces from processes with different epochs.
type TraceMeta struct {
	// Version is the schema version (currently 1). Its JSON key doubles
	// as the marker that distinguishes a meta line from a span line.
	Version int `json:"trace_meta"`
	// Node scopes the file to one node id, or -1 when the spans carry
	// their own node ids (a whole-process trace).
	Node int `json:"node"`
	// EpochUnixNs is the span timebase origin in the writer's wall clock
	// (UnixNano at tracer construction); 0 when unknown.
	EpochUnixNs int64 `json:"epoch_unix_ns"`
	// Source labels the producer: "run" for measured traces, "sim" for
	// simulator-generated ones, or free-form.
	Source string `json:"source,omitempty"`
}

// metaMarker identifies a meta line without a full JSON parse.
var metaMarker = []byte(`"trace_meta"`)

// blackboxMarker identifies an auxiliary line written by the health
// flight recorder (incident records, metric snapshots) embedded in a
// black-box dump. ReadTrace skips such lines so a dump replays through
// the span-based reports unchanged.
var blackboxMarker = []byte(`"blackbox"`)

// tuneMarker identifies the auto-tuner's self-description aux line
// (workload, chosen plan, fitted parameters — see internal/tune.Meta).
// ReadTrace skips it the same way, so tuned traces replay through the
// span-based reports unchanged.
var tuneMarker = []byte(`"tune_meta"`)

// Tracer records phase spans into a bounded ring buffer: once capacity
// is reached the oldest spans are overwritten, so a tracer's memory is
// fixed no matter how long the run. Span timestamps are nanoseconds
// since the tracer's construction (one shared epoch per process, so
// spans from different nodes align on one timeline).
type Tracer struct {
	epoch     time.Time
	epochUnix int64 // epoch as wall-clock UnixNano (for TraceMeta)

	mu    sync.Mutex
	buf   []Span
	next  int   // next write position
	total int64 // spans ever recorded (≥ len(buf) once wrapped)
}

// NewTracer returns a tracer retaining at most capacity spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	now := time.Now()
	return &Tracer{epoch: now, epochUnix: now.UnixNano(), buf: make([]Span, 0, capacity)}
}

// EpochUnixNs returns the tracer's epoch — the zero point of every span's
// Start — as wall-clock UnixNano (0 for the nil tracer).
func (t *Tracer) EpochUnixNs() int64 {
	if t == nil {
		return 0
	}
	return t.epochUnix
}

// SinceEpochNs returns the current offset on the tracer's span timeline
// (what a span started right now would carry as Start).
func (t *Tracer) SinceEpochNs() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Meta returns the trace header for this tracer scoped to node (-1 for a
// whole-process trace).
func (t *Tracer) Meta(node int) TraceMeta {
	return TraceMeta{Version: 1, Node: node, EpochUnixNs: t.EpochUnixNs(), Source: "run"}
}

// record appends one span, overwriting the oldest once full.
func (t *Tracer) record(node, iter int, phase Phase, start time.Time, d time.Duration) {
	t.RecordRaw(node, iter, phase, start.Sub(t.epoch).Nanoseconds(), d.Nanoseconds())
}

// RecordRaw appends a span with explicit timeline offsets (the simulator
// path; measured spans go through record, which derives the offset from
// the tracer's epoch).
func (t *Tracer) RecordRaw(node, iter int, phase Phase, startNs, durNs int64) {
	if t == nil {
		return
	}
	s := Span{Node: node, Iter: iter, Phase: phase, Start: startNs, Dur: durNs}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Total returns how many spans were ever recorded (including ones the
// ring has since evicted).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans in record order (oldest first).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Tracer) snapshotLocked() []Span {
	out := make([]Span, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}

// TailSince returns the spans recorded after the cursor (a Total value
// from a previous call, or 0 for "from the beginning") along with the
// new cursor. If the ring has already evicted some of those spans only
// the retained tail is returned — callers polling faster than the ring
// wraps see every span exactly once.
func (t *Tracer) TailSince(cursor int64) ([]Span, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	missed := t.total - cursor
	if missed <= 0 {
		return nil, t.total
	}
	n := missed
	if n > int64(len(t.buf)) {
		n = int64(len(t.buf))
	}
	// Copy only the n newest spans (the slot before t.next is the
	// newest): a frequent poller must not pay a full-ring snapshot —
	// with the ring warm that would memcpy the whole capacity under the
	// lock on every drain, stalling concurrent RecordRaw callers.
	out := make([]Span, 0, n)
	start := int64(t.next) - n
	if start >= 0 {
		out = append(out, t.buf[start:int64(t.next)]...)
	} else {
		out = append(out, t.buf[int64(len(t.buf))+start:]...)
		out = append(out, t.buf[:t.next]...)
	}
	return out, t.total
}

// WriteJSONL streams the trace to w — a leading TraceMeta line anchoring
// the timebase, then the retained spans one JSON object per line. This is
// the trace format cmd/inctrace consumes; ReadSpans skips the meta line,
// so pre-meta consumers keep working.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteSpansJSONL(w, t.Meta(-1), t.Snapshot())
}

// WriteNodeJSONL streams only the given node's spans, with a meta line
// scoped to that node — the per-node trace files a multi-node collector
// merges (inctrain -trace-dir).
func (t *Tracer) WriteNodeJSONL(w io.Writer, node int) error {
	all := t.Snapshot()
	spans := make([]Span, 0, len(all))
	for _, s := range all {
		if s.Node == node {
			spans = append(spans, s)
		}
	}
	return WriteSpansJSONL(w, t.Meta(node), spans)
}

// WriteSpansJSONL writes an explicit meta header and span list in the
// trace JSONL format. A zero-Version meta suppresses the header line.
func WriteSpansJSONL(w io.Writer, meta TraceMeta, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	if meta.Version != 0 {
		if err := enc.Encode(meta); err != nil {
			return err
		}
	}
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans parses a JSONL trace stream (blank lines and TraceMeta
// header lines ignored).
func ReadSpans(r io.Reader) ([]Span, error) {
	spans, _, err := ReadTrace(r)
	return spans, err
}

// ReadTrace parses a JSONL trace stream, returning the spans and any
// TraceMeta header lines encountered (concatenated per-node files carry
// several).
func ReadTrace(r io.Reader) ([]Span, []TraceMeta, error) {
	var out []Span
	var metas []TraceMeta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if bytes.Contains(b, metaMarker) {
			var m TraceMeta
			if err := json.Unmarshal(b, &m); err == nil && m.Version != 0 {
				metas = append(metas, m)
				continue
			}
		}
		if bytes.Contains(b, blackboxMarker) {
			var aux struct {
				Version int `json:"blackbox"`
			}
			if err := json.Unmarshal(b, &aux); err == nil && aux.Version != 0 {
				continue
			}
		}
		if bytes.Contains(b, tuneMarker) {
			var aux struct {
				Version int `json:"tune_meta"`
			}
			if err := json.Unmarshal(b, &aux); err == nil && aux.Version != 0 {
				continue
			}
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, metas, nil
}
