package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer records phase spans into a bounded ring buffer: once capacity
// is reached the oldest spans are overwritten, so a tracer's memory is
// fixed no matter how long the run. Span timestamps are nanoseconds
// since the tracer's construction (one shared epoch per process, so
// spans from different nodes align on one timeline).
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	buf   []Span
	next  int   // next write position
	total int64 // spans ever recorded (≥ len(buf) once wrapped)
}

// NewTracer returns a tracer retaining at most capacity spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{epoch: time.Now(), buf: make([]Span, 0, capacity)}
}

// record appends one span, overwriting the oldest once full.
func (t *Tracer) record(node, iter int, phase Phase, start time.Time, d time.Duration) {
	s := Span{
		Node:  node,
		Iter:  iter,
		Phase: phase,
		Start: start.Sub(t.epoch).Nanoseconds(),
		Dur:   d.Nanoseconds(),
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Total returns how many spans were ever recorded (including ones the
// ring has since evicted).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans in record order (oldest first).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}

// WriteJSONL streams the retained spans to w, one JSON object per line
// — the trace format cmd/inctrace consumes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, s := range t.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans parses a JSONL trace stream (blank lines ignored).
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
