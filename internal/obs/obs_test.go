package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from many goroutines —
// concurrent creation of the same names plus concurrent handle use —
// and checks the totals. Run under -race this is the concurrency-safety
// proof for the metric hot paths.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("shared_counter").Add(1)
				reg.Gauge("shared_gauge").Set(float64(g))
				reg.Histogram("shared_hist").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("shared_counter").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Histogram("shared_hist").Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	gv := reg.Gauge("shared_gauge").Value()
	if gv < 0 || gv >= goroutines {
		t.Errorf("gauge = %v, want a goroutine id in [0,%d)", gv, goroutines)
	}
}

// TestNilSafety verifies the entire disabled path: a nil recorder and
// the nil handles it yields must all be no-ops, not panics.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Second)
	r.Span(0, 0, PhaseCompute).End()
	r.Span(0, 0, PhaseSend).EndWith(time.Second)
	r.RecordSpan(0, 0, PhaseRecv, time.Now(), time.Second)
	if r.Registry() != nil || r.Tracer() != nil {
		t.Error("nil recorder should expose nil registry/tracer")
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.Snapshot() != nil {
		t.Error("nil registry should yield nil handles")
	}
	var tr *Tracer
	if tr.Snapshot() != nil || tr.Total() != 0 {
		t.Error("nil tracer should be empty")
	}
	// Half-enabled recorders.
	NewRecorder(NewRegistry(), nil).Span(0, 0, PhaseCompute).End()
	NewRecorder(nil, NewTracer(4)).Counter("x").Add(1)
}

// TestTracerWraparound fills a small ring past capacity and checks that
// Snapshot returns exactly the last cap spans, oldest first.
func TestTracerWraparound(t *testing.T) {
	const capacity = 8
	const total = 27 // not a multiple of capacity, to land mid-ring
	tr := NewTracer(capacity)
	rec := NewRecorder(nil, tr)
	base := time.Now()
	for i := 0; i < total; i++ {
		rec.RecordSpan(0, i, PhaseCompute, base.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	if got := tr.Total(); got != total {
		t.Fatalf("Total = %d, want %d", got, total)
	}
	snap := tr.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), capacity)
	}
	for i, s := range snap {
		want := total - capacity + i
		if s.Iter != want {
			t.Errorf("snap[%d].Iter = %d, want %d (oldest-first order broken)", i, s.Iter, want)
		}
	}
}

// TestTracerJSONLRoundTrip streams a trace and parses it back.
func TestTracerJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	rec := NewRecorder(nil, tr)
	base := time.Now()
	for i := 0; i < 5; i++ {
		rec.RecordSpan(i%2, i, Phase(i%int(NumPhases)), base.Add(time.Duration(i)*time.Millisecond), 2*time.Millisecond)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"phase":"compute"`) {
		t.Errorf("JSONL should name phases, got: %s", buf.String())
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Snapshot()
	if len(spans) != len(want) {
		t.Fatalf("round trip: %d spans, want %d", len(spans), len(want))
	}
	for i := range spans {
		if spans[i] != want[i] {
			t.Errorf("span %d: %+v != %+v", i, spans[i], want[i])
		}
	}
}

// TestReadSpansBadLine checks the reader reports line numbers.
func TestReadSpansBadLine(t *testing.T) {
	in := `{"node":0,"iter":0,"phase":"compute","start_ns":0,"dur_ns":10}
not json`
	_, err := ReadSpans(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want a line-2 error, got %v", err)
	}
}

func TestPhaseRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := ParsePhase(p.String())
		if !ok || got != p {
			t.Errorf("ParsePhase(%q) = %v,%v", p.String(), got, ok)
		}
	}
	if _, ok := ParsePhase("bogus"); ok {
		t.Error("ParsePhase should reject unknown names")
	}
}

// TestHistogramBounds checks bucketing, overflow and snapshot shape.
func TestHistogramBounds(t *testing.T) {
	h := newHistogram([]time.Duration{time.Millisecond, time.Second})
	h.Observe(time.Microsecond)       // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive bound)
	h.Observe(100 * time.Millisecond) // bucket 1
	h.Observe(time.Minute)            // overflow
	h.Observe(-time.Second)           // clamped to 0 → bucket 0
	s := h.snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	if s.MaxSeconds != 60 {
		t.Errorf("max = %v, want 60", s.MaxSeconds)
	}
	var n int64
	for _, b := range s.Buckets {
		n += b.N
	}
	if n+s.Overflow != s.Count {
		t.Errorf("bucket sum %d + overflow %d != count %d", n, s.Overflow, s.Count)
	}
}

// TestHTTPHandler exercises /metrics and /trace end to end.
func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(8)
	rec := NewRecorder(reg, tr)
	rec.Counter("wire_bytes_compressed").Add(1234)
	reg.Func("codec_values", func() float64 { return 42 })
	rec.RecordSpan(0, 0, PhaseSend, time.Now(), time.Millisecond)

	srv := httptest.NewServer(NewHTTPHandler(reg, tr))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v, _ := snap["wire_bytes_compressed"].(float64); v != 1234 {
		t.Errorf("wire_bytes_compressed = %v, want 1234", snap["wire_bytes_compressed"])
	}
	if v, _ := snap["codec_values"].(float64); v != 42 {
		t.Errorf("codec_values = %v, want 42", snap["codec_values"])
	}

	resp, err = srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Phase != PhaseSend {
		t.Errorf("trace endpoint returned %+v, want one send span", spans)
	}
}

// TestAggregateAndRender builds a synthetic 2-node trace and checks the
// breakdown math plus that both renderers produce the expected shape.
func TestAggregateAndRender(t *testing.T) {
	mk := func(node, iter int, p Phase, startMs, durMs int64) Span {
		return Span{Node: node, Iter: iter, Phase: p, Start: startMs * 1e6, Dur: durMs * 1e6}
	}
	spans := []Span{
		mk(0, 0, PhaseCompute, 0, 30),
		mk(0, 0, PhaseSend, 30, 10),
		mk(0, 1, PhaseCompute, 40, 30),
		mk(1, 0, PhaseCompute, 0, 20),
		mk(1, 0, PhaseRecv, 20, 40),
	}
	b := Aggregate(spans)
	if len(b.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(b.Nodes))
	}
	n0 := b.Nodes[0]
	if n0.Node != 0 || n0.Phase[PhaseCompute] != 60*time.Millisecond || n0.Phase[PhaseSend] != 10*time.Millisecond {
		t.Errorf("node0 breakdown wrong: %+v", n0)
	}
	if n0.Iters != 2 {
		t.Errorf("node0 iters = %d, want 2", n0.Iters)
	}
	if b.Nodes[1].Comm() != 40*time.Millisecond {
		t.Errorf("node1 comm = %v, want 40ms", b.Nodes[1].Comm())
	}
	if b.Wall() != 70*time.Millisecond {
		t.Errorf("wall = %v, want 70ms", b.Wall())
	}

	var tbl bytes.Buffer
	b.RenderTable(&tbl)
	out := tbl.String()
	for _, want := range []string{"node", "compute", "send", "comm%", "trace wall clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	var tl bytes.Buffer
	RenderTimeline(&tl, spans, 40)
	lines := strings.Split(strings.TrimSpace(tl.String()), "\n")
	if len(lines) != 3 { // header + 2 node rows
		t.Fatalf("timeline has %d lines, want 3:\n%s", len(lines), tl.String())
	}
	if !strings.Contains(lines[1], "c") || !strings.Contains(lines[2], "r") {
		t.Errorf("timeline glyphs wrong:\n%s", tl.String())
	}
}

// TestRenderMetrics smoke-tests the CLI snapshot printer on both native
// and JSON-round-tripped shapes.
func TestRenderMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tcp_retransmits").Add(3)
	reg.Gauge("compression_ratio").Set(2.5)
	reg.Histogram("ring_step_seconds").Observe(time.Millisecond)
	var buf bytes.Buffer
	RenderMetrics(&buf, reg.Snapshot())
	out := buf.String()
	for _, want := range []string{"tcp_retransmits", "compression_ratio", "2.5000", "ring_step_seconds", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderMetrics missing %q:\n%s", want, out)
		}
	}
}
