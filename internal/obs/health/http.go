package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Handler serves the engine's /health document: JSON by default,
// Prometheus text exposition with ?format=prom. A nil engine serves the
// empty healthy document, so callers can mount unconditionally.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := e.Status()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writeStatusProm(w, s)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	})
}

// writeStatusProm renders the health document as Prometheus text
// exposition, one health_incidents series per detector+severity pair.
func writeStatusProm(w http.ResponseWriter, s Status) {
	healthy := 0
	if s.Healthy {
		healthy = 1
	}
	fmt.Fprintf(w, "# TYPE health_healthy gauge\nhealth_healthy %d\n", healthy)
	fmt.Fprintf(w, "# TYPE health_incidents_open gauge\nhealth_incidents_open %d\n", s.Open)
	fmt.Fprintf(w, "# TYPE health_incidents_total counter\nhealth_incidents_total %d\n", s.Total)
	fmt.Fprintf(w, "# TYPE health_blackbox_dumps counter\nhealth_blackbox_dumps %d\n", s.Dumps)
	if len(s.Incidents) > 0 {
		bySeries := make(map[string]int)
		for _, inc := range s.Incidents {
			bySeries[`detector="`+escapeLabel(inc.Detector)+
				`",severity="`+escapeLabel(inc.Severity.String())+`"`]++
		}
		fmt.Fprintf(w, "# TYPE health_incidents counter\n")
		for labels, n := range bySeries {
			fmt.Fprintf(w, "health_incidents{%s} %d\n", labels, n)
		}
	}
}

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline — the exposition-format escape set).
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
