package health

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inceptionn/internal/obs"
)

// testOptions shrinks warmup/strike windows so unit tests confirm
// quickly, without touching the statistical thresholds under test.
func testOptions() Options {
	return Options{Warmup: 2, Consecutive: 2}
}

// feedIter pushes one iteration of synthetic step latencies.
func feedIter(e *Engine, iter int, lat map[int]time.Duration) {
	for n, d := range lat {
		e.ObserveStep(n, iter, d)
	}
}

func TestStepLatencyOpensExactlyOneIncident(t *testing.T) {
	e := New(nil, testOptions())
	base := 10 * time.Millisecond
	for it := 0; it < 20; it++ {
		feedIter(e, it, map[int]time.Duration{
			0: base, 1: base + time.Millisecond, 2: base + 25*time.Millisecond, 3: base,
		})
	}
	e.Close()
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %+v, want exactly 1", incs)
	}
	inc := incs[0]
	if inc.Detector != "step_latency" || inc.Node != 2 {
		t.Fatalf("incident = %+v, want step_latency at node 2", inc)
	}
	if inc.ClosedNs != 0 {
		t.Fatalf("incident closed at %d while the slow node persists", inc.ClosedNs)
	}
	if e.Healthy() {
		t.Fatal("engine reports healthy with an open step_latency incident")
	}
}

// TestStragglerInversionOpensAndCloses drives the synchronous-collective
// scenario: every node's wall clock is identical (the exchange equalizes
// them), and the only tell is the recv-wait inversion — the straggler
// waits least while its peers' waits balloon.
func TestStragglerInversionOpensAndCloses(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 12)
	rec := obs.NewRecorder(reg, tr)
	e := New(rec, testOptions())
	step := 35 * time.Millisecond
	for it := 0; it < 20; it++ {
		for n := 0; n < 4; n++ {
			wait := 25 * time.Millisecond
			if n == 2 || it >= 12 { // the straggler waits least; fixed at iter 12
				wait = time.Millisecond
			}
			tr.RecordRaw(n, it, obs.PhaseRecv, int64(it)*1e6, wait.Nanoseconds())
		}
		feedIter(e, it, map[int]time.Duration{0: step, 1: step, 2: step, 3: step})
	}
	e.Close()
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %+v, want exactly 1", incs)
	}
	inc := incs[0]
	if inc.Detector != "straggler" || inc.Node != 2 {
		t.Fatalf("incident = %+v, want straggler at node 2", inc)
	}
	if inc.ClosedNs == 0 {
		t.Fatal("straggler incident still open after the cohort rebalanced")
	}
	if !e.Healthy() {
		t.Fatal("engine unhealthy after the straggler recovered")
	}
}

func TestStepLatencyIncidentClosesWhenNodeRecovers(t *testing.T) {
	e := New(nil, testOptions())
	base := 10 * time.Millisecond
	lat := func(extra time.Duration) map[int]time.Duration {
		return map[int]time.Duration{0: base, 1: base, 2: base + extra, 3: base}
	}
	for it := 0; it < 10; it++ {
		feedIter(e, it, lat(25*time.Millisecond))
	}
	for it := 10; it < 30; it++ {
		feedIter(e, it, lat(0))
	}
	e.Close()
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %+v, want 1", incs)
	}
	if incs[0].ClosedNs == 0 {
		t.Fatal("incident still open after the node recovered")
	}
	if !e.Healthy() {
		t.Fatal("engine unhealthy after recovery")
	}
}

func TestCleanCohortOpensNothing(t *testing.T) {
	e := New(nil, testOptions())
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 50; it++ {
		lat := make(map[int]time.Duration, 4)
		for n := 0; n < 4; n++ {
			// Balanced cohort with ±1ms jitter — under both the absolute
			// floor and the z threshold.
			lat[n] = 10*time.Millisecond + time.Duration(rng.Intn(2_000_000)-1_000_000)
		}
		feedIter(e, it, lat)
	}
	e.Close()
	if incs := e.Incidents(); len(incs) != 0 {
		t.Fatalf("clean cohort opened incidents: %+v", incs)
	}
	if !e.Healthy() {
		t.Fatal("clean engine not healthy")
	}
}

func TestSingleHiccupDoesNotConfirm(t *testing.T) {
	e := New(nil, testOptions())
	base := 10 * time.Millisecond
	for it := 0; it < 20; it++ {
		extra := time.Duration(0)
		if it == 10 {
			extra = 100 * time.Millisecond // one GC-style pause
		}
		feedIter(e, it, map[int]time.Duration{0: base, 1: base, 2: base + extra, 3: base})
	}
	e.Close()
	if incs := e.Incidents(); len(incs) != 0 {
		t.Fatalf("single hiccup confirmed an incident: %+v", incs)
	}
}

func TestRecvWaitDetectorBlamesSlowLink(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 12)
	rec := obs.NewRecorder(reg, tr)
	e := New(rec, testOptions())
	base := 10 * time.Millisecond
	for it := 0; it < 20; it++ {
		for n := 0; n < 4; n++ {
			wait := time.Millisecond
			if n == 1 {
				wait = 30 * time.Millisecond // degraded inbound link
			}
			tr.RecordRaw(n, it, obs.PhaseRecv, int64(it)*1e6, wait.Nanoseconds())
		}
		feedIter(e, it, map[int]time.Duration{0: base, 1: base, 2: base, 3: base})
	}
	e.Close()
	var recv []Incident
	for _, inc := range e.Incidents() {
		if inc.Detector == "recv_wait" {
			recv = append(recv, inc)
		}
	}
	if len(recv) != 1 || recv[0].Node != 1 || recv[0].Phase != obs.PhaseRecv {
		t.Fatalf("recv_wait incidents = %+v, want one at node 1 phase recv", recv)
	}
}

func TestRetransmitRateDetector(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	e := New(rec, testOptions())
	// One burst window never pages (connection setup looks like this)...
	reg.Counter("tcp_retransmits").Add(10_000)
	e.Poll()
	if len(e.Incidents()) != 0 {
		t.Fatalf("single burst window opened an incident: %+v", e.Incidents())
	}
	// ...but a second consecutive hot window confirms.
	reg.Counter("tcp_retransmits").Add(10_000)
	e.Poll()
	var found *Incident
	for _, inc := range e.Incidents() {
		if inc.Detector == "retransmit_rate" {
			in := inc
			found = &in
		}
	}
	if found == nil {
		t.Fatalf("no retransmit_rate incident after two sustained bursts: %+v", e.Incidents())
	}
	if found.Severity != SevWarn || found.Node != -1 {
		t.Fatalf("incident = %+v, want warn at node -1", found)
	}
	// A quiet stretch closes it.
	time.Sleep(5 * time.Millisecond)
	e.Poll()
	if !e.Healthy() {
		t.Fatalf("rate incident still open after a quiet poll: %+v", e.Incidents())
	}
}

func TestFallbackPushIsNotDoubledByCounterPoll(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, obs.NewTracer(256))
	e := New(rec, testOptions())
	// The gate's trip() order: counter, span, then the push.
	reg.Counter("collective_fallbacks").Add(1)
	e.NotifyFallback(4, 7, "stall: switch stream stalled", 1500*time.Millisecond)
	e.Poll()
	e.Close()
	var fb []Incident
	for _, inc := range e.Incidents() {
		if inc.Detector == "fallback" {
			fb = append(fb, inc)
		}
	}
	if len(fb) != 1 {
		t.Fatalf("fallback incidents = %+v, want exactly 1", fb)
	}
	inc := fb[0]
	if inc.Node != 4 || inc.Phase != obs.PhaseFallback || inc.Severity != SevCritical {
		t.Fatalf("incident = %+v, want critical fallback at node 4", inc)
	}
	if inc.ClosedNs != inc.OpenedNs {
		t.Fatalf("point incident not closed at open: %+v", inc)
	}
	if inc.IterLo != 7 || inc.IterHi != 7 {
		t.Fatalf("incident window = %d..%d, want 7..7", inc.IterLo, inc.IterHi)
	}
}

func TestEvictionCounterOpensCriticalIncident(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	e := New(rec, testOptions())
	reg.Counter("elastic_evictions").Add(1)
	e.Poll()
	e.Poll() // no growth — must not duplicate
	var ev []Incident
	for _, inc := range e.Incidents() {
		if inc.Detector == "eviction" {
			ev = append(ev, inc)
		}
	}
	if len(ev) != 1 || ev[0].Severity != SevCritical {
		t.Fatalf("eviction incidents = %+v, want one critical", ev)
	}
}

func TestHeartbeatGapDetector(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	o := testOptions()
	o.HeartbeatGap = 10 * time.Millisecond
	e := New(rec, o)
	reg.Gauge("elastic_members").Set(3)
	reg.Counter("elastic_heartbeats").Add(5)
	e.Poll() // heartbeat moved: baseline
	time.Sleep(25 * time.Millisecond)
	e.Poll() // stalled past the gap
	if e.Healthy() {
		t.Fatalf("no heartbeat_gap incident: %+v", e.Incidents())
	}
	reg.Counter("elastic_heartbeats").Add(1)
	e.Poll()
	if !e.Healthy() {
		t.Fatalf("heartbeat_gap still open after progress: %+v", e.Incidents())
	}
	found := false
	for _, inc := range e.Incidents() {
		if inc.Detector == "heartbeat_gap" {
			found = true
		}
	}
	if !found {
		t.Fatal("heartbeat_gap incident missing from history")
	}
}

func TestCompressionDriftDetector(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	e := New(rec, testOptions())
	ratio := reg.Gauge("compression_ratio")
	ratio.Set(3.0)
	for i := 0; i < 6; i++ {
		e.Poll() // settle the baseline
	}
	ratio.Set(1.2) // ratio collapse
	e.Poll()
	var drift []Incident
	for _, inc := range e.Incidents() {
		if inc.Detector == "compression_drift" {
			drift = append(drift, inc)
		}
	}
	if len(drift) != 1 {
		t.Fatalf("compression_drift incidents = %+v, want 1", drift)
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	e.ObserveStep(0, 0, time.Second)
	e.NotifyFallback(1, 2, "x", time.Second)
	e.NotifyEviction(1, "x")
	e.Poll()
	e.Start(time.Millisecond)
	e.Close()
	if !e.Healthy() || e.OpenCount() != 0 || e.Incidents() != nil {
		t.Fatal("nil engine not healthy/empty")
	}
	if s := e.Status(); !s.Healthy {
		t.Fatal("nil engine status unhealthy")
	}
	// The nil engine's handler still serves a healthy document.
	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/health", nil))
	if !strings.Contains(rr.Body.String(), `"healthy": true`) {
		t.Fatalf("nil handler body: %s", rr.Body.String())
	}
}

func TestHandlerJSONAndProm(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	e := New(rec, testOptions())
	e.NotifyFallback(4, 3, "stall", time.Second)
	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/health", nil))
	body := rr.Body.String()
	for _, want := range []string{`"healthy": true`, `"detector": "fallback"`, `"severity": "critical"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("JSON body missing %q:\n%s", want, body)
		}
	}
	rr = httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/health?format=prom", nil))
	body = rr.Body.String()
	for _, want := range []string{
		"health_healthy 1",
		"health_incidents_total 1",
		`health_incidents{detector="fallback",severity="critical"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom body missing %q:\n%s", want, body)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	got := escapeLabel("a\\b\"c\nd")
	want := `a\\b\"c\nd`
	if got != want {
		t.Fatalf("escapeLabel = %q, want %q", got, want)
	}
}

func TestStartPollsInBackground(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	e := New(rec, testOptions())
	e.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("health_polls").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background poller never ran")
		}
		time.Sleep(time.Millisecond)
	}
	e.Close()
	e.Close() // idempotent
}

func TestRenderIncidentsTable(t *testing.T) {
	var b strings.Builder
	RenderIncidents(&b, nil)
	if !strings.Contains(b.String(), "no incidents") {
		t.Fatalf("empty render: %q", b.String())
	}
	b.Reset()
	now := time.Now().UnixNano()
	RenderIncidents(&b, []Incident{
		{ID: 2, Detector: "fallback", Severity: SevCritical, Node: 4, Phase: obs.PhaseFallback,
			IterLo: 7, IterHi: 7, OpenedNs: now + 1e9, ClosedNs: now + 1e9, Cause: "switch died", Blackbox: "/tmp/bb.jsonl"},
		{ID: 1, Detector: "straggler", Severity: SevWarn, Node: 2, Phase: obs.PhaseCompute,
			IterLo: 5, IterHi: 19, OpenedNs: now, Cause: "slow node"},
	})
	out := b.String()
	for _, want := range []string{"straggler", "fallback", "switch died", "blackbox: /tmp/bb.jsonl", "5..19"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Oldest first regardless of input order.
	if strings.Index(out, "straggler") > strings.Index(out, "fallback") {
		t.Fatalf("incidents not sorted oldest-first:\n%s", out)
	}
}
