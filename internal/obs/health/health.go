// Package health is the online anomaly layer over obs: a streaming
// engine that watches a run's Recorder (step latencies, per-link recv
// waits, transport/elastic counters, codec gauges) with robust online
// detectors and emits typed Incident records the moment something
// degrades, instead of leaving anomalies to a post-mortem trace read.
//
// Detector families (DESIGN.md §15 has the math):
//
//   - straggler: the recv-wait inversion. In a lock-step collective a
//     slow node never shows in its own wall clock (every member's step
//     takes equally long), and not as a high recv wait either: its
//     peers' waits balloon while its own collapses, because it arrives
//     at the exchange last and waits least. The detector watches the
//     gap between the cohort's median recv wait and its minimum; when
//     the gap is sustained, the minimum-wait node is the straggler —
//     the same rule obs.AttributeCriticalPath applies post-mortem, and
//     the confirmed incident's phase is named through it.
//   - step_latency: per-iteration cross-node median + MAD z-score on
//     step latency, EWMA-smoothed, strike-confirmed. Catches nodes
//     whose wall clock diverges from the cohort's — a signal only in
//     loosely-coupled paths (the synchronous collectives equalize it).
//   - recv_wait: the same robust statistic on per-node recv wait, but
//     striking only high-side outliers — a minority node waiting far
//     longer than its peers marks a degraded inbound link (a uniform
//     wait rise is the straggler cascade, which the straggler family
//     already names via the inversion).
//   - retransmit_rate / crc_rate / suspect: rate-of-change thresholds on
//     the transport and membership counters, polled.
//   - fallback / eviction: point incidents (opened closed) for the
//     self-healing events — a confirmed switch death or a member
//     eviction — pushed by the runners or caught from the counters.
//   - heartbeat_gap: the elastic heartbeat counter stalling while the
//     membership gauge says the ring is populated.
//   - compression_drift: EWMA drift of the codec's compression-ratio
//     gauge (a ratio collapse means the gradient distribution shifted or
//     a codec config regressed mid-run).
//
// The engine pairs detection with a flight recorder: an always-on
// bounded buffer of full-fidelity spans and recent metric snapshots
// that is dumped to a JSONL "black box" file the moment an incident
// opens, so the expensive evidence exists exactly when it matters and
// replays through the existing inctrace blame/breakdown reports.
//
// Like the rest of obs, every method on a nil *Engine is a no-op, so
// runners thread an optional engine at zero cost when health is off.
package health

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"inceptionn/internal/obs"
)

// Options tunes the detectors. The zero value means "use the default"
// for every field; defaults are chosen so a fault-free run on a noisy
// shared host opens zero incidents.
type Options struct {
	// Warmup is how many analyzed iterations pass before the latency
	// detectors may strike (EWMAs still settle during warmup). Default 5.
	Warmup int
	// ZThreshold is the robust z-score (deviation over MAD-derived
	// sigma) a smoothed deviation must exceed to strike. Default 4.
	ZThreshold float64
	// Consecutive is how many consecutive striking iterations confirm an
	// incident — single-iteration hiccups (GC, scheduler) never page.
	// Default 3.
	Consecutive int
	// MinStepGap is the absolute deviation floor: however small the
	// cohort's spread, a deviation under this is never anomalous.
	// Default 2ms.
	MinStepGap time.Duration
	// MADFloor is the lower bound on the MAD-derived robust sigma, so a
	// freakishly tight cohort cannot make microsecond jitter look like a
	// 10-sigma event. Default 500µs.
	MADFloor time.Duration
	// EWMAAlpha smooths per-node deviations and the cohort sigma across
	// iterations. Default 0.3.
	EWMAAlpha float64
	// Window is how many recent iterations of flight-recorder spans feed
	// the critical-path naming of a confirmed straggler. Default 16.
	Window int

	// RetransRate / CRCRate are the polled counter rates (events/s) that
	// open a transport incident once sustained for two consecutive
	// polls. Defaults 200/s and 20/s — a clean loopback run's retry
	// timers already churn a few dozen retransmits/s, so the bound sits
	// well above that baseline.
	RetransRate float64
	CRCRate     float64

	// HeartbeatGap is how long the elastic heartbeat counter may stall
	// (with members present) before an incident opens. Default 5s.
	HeartbeatGap time.Duration

	// RatioDriftPct is the relative drift of the compression-ratio gauge
	// from its EWMA baseline that opens an incident. Default 0.25.
	RatioDriftPct float64

	// BlackboxDir, when set, enables flight-recorder dumps: every opened
	// incident writes one JSONL black-box file into this directory.
	BlackboxDir string
	// BlackboxSpans bounds the flight recorder's span ring. Default 8192.
	BlackboxSpans int
	// BlackboxSnaps bounds the retained pre-incident metric snapshots.
	// Default 4.
	BlackboxSnaps int
	// MaxIncidents bounds the retained incident history. Default 256.
	MaxIncidents int
}

func (o Options) withDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 5
	}
	if o.ZThreshold == 0 {
		o.ZThreshold = 4
	}
	if o.Consecutive == 0 {
		o.Consecutive = 3
	}
	if o.MinStepGap == 0 {
		o.MinStepGap = 2 * time.Millisecond
	}
	if o.MADFloor == 0 {
		o.MADFloor = 500 * time.Microsecond
	}
	if o.EWMAAlpha == 0 {
		o.EWMAAlpha = 0.3
	}
	if o.Window == 0 {
		o.Window = 16
	}
	if o.RetransRate == 0 {
		o.RetransRate = 200
	}
	if o.CRCRate == 0 {
		o.CRCRate = 20
	}
	if o.HeartbeatGap == 0 {
		o.HeartbeatGap = 5 * time.Second
	}
	if o.RatioDriftPct == 0 {
		o.RatioDriftPct = 0.25
	}
	if o.BlackboxSpans == 0 {
		o.BlackboxSpans = 8192
	}
	if o.BlackboxSnaps == 0 {
		o.BlackboxSnaps = 4
	}
	if o.MaxIncidents == 0 {
		o.MaxIncidents = 256
	}
	return o
}

// Engine is the streaming health monitor for one run. Runners push step
// completions (ObserveStep) and self-healing events (NotifyFallback);
// Poll — called periodically by Start's goroutine, or explicitly —
// drains the tracer tail and checks the counter/gauge detectors. All
// methods are safe on a nil receiver and safe for concurrent use.
type Engine struct {
	rec *obs.Recorder
	o   Options

	mIncidents *obs.Counter
	mOpen      *obs.Gauge
	mPolls     *obs.Counter
	mDumps     *obs.Counter

	started time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu     sync.Mutex
	cursor int64 // tracer tail cursor
	flight *flightRecorder

	steps        map[int]map[int]time.Duration // iter → node → step latency
	recvW        map[int]map[int]time.Duration // iter → node → recv wait
	maxIter      int
	lastAnalyzed int
	itersSeen    int
	nodes        map[int]struct{} // every node that ever reported a step

	devStep     map[int]float64 // smoothed deviation from cohort median, ns
	devRecv     map[int]float64
	sigStep     float64 // smoothed robust sigma, ns
	sigRecv     float64
	strikesStep map[int]int
	strikesRecv map[int]int

	devInv     float64 // smoothed recv-wait inversion gap (median − min), ns
	invNode    int     // current minimum-wait node under suspicion, -1 none
	invStrikes int     // consecutive striking iterations on invNode
	invCalm    int     // consecutive balanced iterations against a confirmed incident
	invFlip    int     // consecutive iterations a different node waited least

	prevCnt         map[string]int64
	rateStrikes     map[string]int // rate family → consecutive polls above threshold
	lastPoll        time.Time
	hbLastCount     int64
	hbLastChange    time.Time
	ratioEwma       float64
	ratioN          int
	fallbackHandled int64
	evictHandled    int64

	nextID    int
	open      map[string]*Incident
	incidents []*Incident
	dumps     int
}

// New returns an engine over rec (which may be nil: the push-path
// detectors still run, the span/counter ones idle). The engine registers
// its own health_* metrics into rec's registry.
func New(rec *obs.Recorder, o Options) *Engine {
	o = o.withDefaults()
	e := &Engine{
		rec:          rec,
		o:            o,
		mIncidents:   rec.Counter("health_incidents_total"),
		mOpen:        rec.Gauge("health_incidents_open"),
		mPolls:       rec.Counter("health_polls"),
		mDumps:       rec.Counter("health_blackbox_dumps"),
		started:      time.Now(),
		flight:       newFlightRecorder(o.BlackboxSpans, o.BlackboxSnaps),
		steps:        make(map[int]map[int]time.Duration),
		recvW:        make(map[int]map[int]time.Duration),
		maxIter:      -1,
		lastAnalyzed: -1,
		devStep:      make(map[int]float64),
		devRecv:      make(map[int]float64),
		strikesStep:  make(map[int]int),
		strikesRecv:  make(map[int]int),
		invNode:      -1,
		nodes:        make(map[int]struct{}),
		prevCnt:      make(map[string]int64),
		rateStrikes:  make(map[string]int),
		open:         make(map[string]*Incident),
	}
	// Baseline the point-event counters at construction, so the first
	// poll sees deltas relative to engine start, not absolute totals.
	if reg := rec.Registry(); reg != nil {
		for _, name := range pollCounters {
			e.prevCnt[name] = reg.Counter(name).Value()
		}
		e.hbLastCount = reg.Counter("elastic_heartbeats").Value()
		e.fallbackHandled = reg.Counter("collective_fallbacks").Value()
		e.evictHandled = reg.Counter("elastic_evictions").Value()
	}
	e.hbLastChange = e.started
	return e
}

// pollCounters are the registry counters the rate detectors watch.
var pollCounters = []string{
	"tcp_retransmits", "tcp_crc_failures", "elastic_suspects",
	"collective_fallbacks", "elastic_evictions", "elastic_heartbeats",
}

// Start launches the background poll loop (interval ≤ 0 means 500ms).
// Call Close to stop it; Start on a nil engine is a no-op.
func (e *Engine) Start(interval time.Duration) {
	if e == nil || e.stop != nil {
		return
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Poll()
			case <-e.stop:
				return
			}
		}
	}()
}

// Close stops the poll loop (if started), analyzes any still-pending
// iterations, and runs one final poll so point events (evictions,
// fallbacks) recorded after the last tick are not lost. Idempotent and
// nil-safe. Incidents still anomalous at close stay open.
func (e *Engine) Close() {
	if e == nil {
		return
	}
	e.stopOnce.Do(func() {
		if e.stop != nil {
			close(e.stop)
			<-e.done
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		e.drainLocked(e.maxIter + 1)
		e.pollLocked(time.Now())
	})
}

// ObserveStep reports one node's completed training iteration. The
// engine analyzes iteration i once every cohort member has reported it
// (a node records its spans before reporting the step, so by then the
// whole cohort's evidence for i is in), or once the run has moved two
// iterations past it — the ±1-skew chunked collectives never leave a
// healthy node two behind, so a missing member is dead or evicted.
// Waiting for just *some* node to report i+1 is not enough: the chunked
// ring lets workers skew by a full iteration, and judging i before the
// slowest member's recv spans land makes its peers look balanced —
// exactly the straggler evidence going missing. Close analyzes the tail.
func (e *Engine) ObserveStep(node, iter int, d time.Duration) {
	if e == nil || iter < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nodes[node] = struct{}{}
	if iter <= e.lastAnalyzed {
		return // replayed iteration — already judged
	}
	byNode := e.steps[iter]
	if byNode == nil {
		byNode = make(map[int]time.Duration)
		e.steps[iter] = byNode
	}
	byNode[node] = d
	if iter > e.maxIter {
		e.maxIter = iter
	}
	e.drainReadyLocked()
}

// NotifyFallback reports a confirmed collective fallback (the switch
// died and the run degraded to the ring): a critical point incident
// naming the dead component, plus a black-box dump.
func (e *Engine) NotifyFallback(node, iter int, cause string, detect time.Duration) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pullSpansLocked()
	e.fallbackHandled++
	e.openLocked(incidentSpec{
		detector: "fallback", point: true,
		node: node, phase: obs.PhaseFallback, sev: SevCritical,
		iterLo: iter, iterHi: iter,
		value: detect.Seconds(),
		cause: fmt.Sprintf("collective fallback: %s (detected in %s)", cause, detect),
	})
}

// NotifyEviction reports a membership eviction as a critical point
// incident (the poll path also catches evictions via the counter; a
// pushed event is attributed to the node and deduplicated there).
func (e *Engine) NotifyEviction(node int, cause string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pullSpansLocked()
	e.evictHandled++
	e.openLocked(incidentSpec{
		detector: "eviction", point: true,
		node: node, phase: obs.PhaseReplay, sev: SevCritical,
		cause: "member evicted: " + cause,
	})
}

// Poll runs one detector pass over the tracer tail and the registry
// counters/gauges. Start calls it on a timer; tests and Close call it
// directly.
func (e *Engine) Poll() {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pollLocked(time.Now())
}

// ---- streaming internals (all called with e.mu held) ----

// pullSpansLocked drains new spans from the tracer into the flight
// recorder and the per-iteration recv-wait accumulators.
func (e *Engine) pullSpansLocked() {
	tr := e.rec.Tracer()
	if tr == nil {
		return
	}
	spans, cur := tr.TailSince(e.cursor)
	e.cursor = cur
	for _, s := range spans {
		e.flight.addSpan(s)
		if s.Phase == obs.PhaseRecv && s.Iter > e.lastAnalyzed {
			byNode := e.recvW[s.Iter]
			if byNode == nil {
				byNode = make(map[int]time.Duration)
				e.recvW[s.Iter] = byNode
			}
			byNode[s.Node] += time.Duration(s.Dur)
		}
	}
}

// drainReadyLocked analyzes every iteration whose evidence is complete:
// all known cohort members reported it, or the run is two iterations
// past it (see ObserveStep).
func (e *Engine) drainReadyLocked() {
	cohort := len(e.nodes)
	pending := make([]int, 0, len(e.steps))
	for it, byNode := range e.steps {
		if it <= e.maxIter-2 || len(byNode) >= cohort {
			pending = append(pending, it)
		}
	}
	if len(pending) == 0 {
		return
	}
	sort.Ints(pending)
	e.pullSpansLocked()
	for _, it := range pending {
		e.analyzeIterLocked(it)
	}
}

// drainLocked analyzes every pending iteration ≤ through, in order.
func (e *Engine) drainLocked(through int) {
	pending := make([]int, 0, len(e.steps))
	for it := range e.steps {
		if it <= through {
			pending = append(pending, it)
		}
	}
	if len(pending) == 0 {
		return
	}
	sort.Ints(pending)
	e.pullSpansLocked()
	for _, it := range pending {
		e.analyzeIterLocked(it)
	}
}

func (e *Engine) analyzeIterLocked(it int) {
	stepVals := e.steps[it]
	recvVals := e.recvW[it]
	delete(e.steps, it)
	delete(e.recvW, it)
	if it > e.lastAnalyzed {
		e.lastAnalyzed = it
	}
	e.itersSeen++
	warmup := e.itersSeen <= e.o.Warmup

	e.latencyFamilyLocked(familyStep, stepVals, it, warmup)
	e.latencyFamilyLocked(familyRecv, recvVals, it, warmup)
	e.inversionLocked(recvVals, it, warmup)
}

type latencyFamily int

const (
	familyStep latencyFamily = iota
	familyRecv
)

// latencyFamilyLocked runs the robust cross-node detector for one
// iteration of one signal (step latency or recv wait).
func (e *Engine) latencyFamilyLocked(f latencyFamily, vals map[int]time.Duration, it int, warmup bool) {
	if len(vals) < 2 {
		return // nothing to compare against
	}
	med, sigma := robustStats(vals, float64(e.o.MADFloor))
	dev, strikes, sig := e.devStep, e.strikesStep, &e.sigStep
	if f == familyRecv {
		dev, strikes, sig = e.devRecv, e.strikesRecv, &e.sigRecv
	}
	if *sig == 0 {
		*sig = sigma
	} else {
		*sig = e.o.EWMAAlpha*sigma + (1-e.o.EWMAAlpha)**sig
	}
	minGap := float64(e.o.MinStepGap)
	for n, v := range vals {
		d := float64(v) - med
		sm := e.o.EWMAAlpha*d + (1-e.o.EWMAAlpha)*dev[n]
		dev[n] = sm
		if warmup {
			continue
		}
		// The recv family only strikes high-side outliers: a node waiting
		// far longer than its peers has a degraded inbound link. (A slow
		// node drags everyone ELSE's wait up uniformly and its own DOWN —
		// the straggler inversion — so it is the step family's catch.)
		//
		// Both the raw and the smoothed deviation must exceed the gates:
		// requiring the raw one stops a single large hiccup from striking
		// for several iterations while its EWMA tail decays; requiring the
		// smoothed one stops a burst of small independent wobbles.
		anomalous := d > minGap && sm > minGap && sm > e.o.ZThreshold**sig
		if !anomalous {
			strikes[n] = 0
			e.closeLocked(e.familyName(f), n)
			continue
		}
		strikes[n]++
		if strikes[n] < e.o.Consecutive {
			continue
		}
		spec := incidentSpec{
			detector: e.familyName(f),
			node:     n, sev: SevWarn,
			iterLo: it - e.o.Consecutive + 1, iterHi: it,
			value: time.Duration(v).Seconds(), baseline: time.Duration(med).Seconds(),
			score: sm / *sig,
		}
		if f == familyStep {
			spec.phase = obs.PhaseCompute
			// Let critical-path attribution over the flight window name
			// the culprit and its dominant phase, exactly as `inctrace
			// blame` would post-mortem.
			if bn, bp, ok := e.blameLocked(it); ok {
				spec.node, spec.phase = bn, bp
			}
			spec.cause = fmt.Sprintf("step latency %.1fms vs cohort median %.1fms (z=%.1f)",
				1e3*spec.value, 1e3*spec.baseline, spec.score)
		} else {
			spec.phase = obs.PhaseRecv
			spec.cause = fmt.Sprintf("inbound-link recv wait %.1fms vs cohort median %.1fms (z=%.1f)",
				1e3*spec.value, 1e3*spec.baseline, spec.score)
		}
		e.openLocked(spec)
	}
}

func (e *Engine) familyName(f latencyFamily) string {
	if f == familyRecv {
		return "recv_wait"
	}
	return "step_latency"
}

// inversionLocked is the synchronous-collective straggler detector: the
// gap between the cohort's median recv wait and its minimum. A slow node
// cannot be seen in its own wall clock (the collective equalizes every
// member's step) or as a high recv wait (it arrives at the exchange last
// and waits least, while its peers' waits balloon) — so a sustained
// inversion gap convicts the minimum-wait node, exactly the rule
// obs.AttributeCriticalPath applies post-mortem.
func (e *Engine) inversionLocked(vals map[int]time.Duration, it int, warmup bool) {
	if len(vals) < 2 {
		return
	}
	med, _ := robustStats(vals, float64(e.o.MADFloor))
	minN, minV := -1, time.Duration(0)
	for n, v := range vals {
		if minN < 0 || v < minV || (v == minV && n < minN) {
			minN, minV = n, v
		}
	}
	gap := med - float64(minV)
	sm := e.o.EWMAAlpha*gap + (1-e.o.EWMAAlpha)*e.devInv
	e.devInv = sm
	if warmup {
		return
	}
	minGap := float64(e.o.MinStepGap)
	confirmed := e.invNode >= 0 && e.open[incidentKey("straggler", e.invNode)] != nil
	if gap <= minGap || sm <= minGap {
		// Balanced iteration. A mere suspect is cleared at once, but a
		// *confirmed* incident takes the same Consecutive evidence to
		// close as it took to open — one calm dip amid scheduler noise
		// must not close-and-reopen the same conviction.
		e.invStrikes = 0
		if e.invNode < 0 {
			return
		}
		if confirmed {
			e.invCalm++
			if e.invCalm < e.o.Consecutive {
				return
			}
		}
		e.closeLocked("straggler", e.invNode)
		e.invNode, e.invCalm, e.invFlip = -1, 0, 0
		return
	}
	e.invCalm = 0
	if minN != e.invNode {
		if confirmed {
			// Contrary evidence against a confirmed straggler: sustained
			// for Consecutive iterations it re-points the conviction;
			// a single noisy minimum leaves the incident standing.
			e.invFlip++
			if e.invFlip < e.o.Consecutive {
				return
			}
		}
		if e.invNode >= 0 {
			e.closeLocked("straggler", e.invNode)
		}
		e.invNode, e.invStrikes, e.invFlip = minN, 0, 0
	} else {
		e.invFlip = 0
	}
	e.invStrikes++
	if e.invStrikes < e.o.Consecutive {
		return
	}
	spec := incidentSpec{
		detector: "straggler",
		node:     minN, sev: SevWarn, phase: obs.PhaseCompute,
		iterLo: it - e.o.Consecutive + 1, iterHi: it,
		value: time.Duration(med).Seconds(), baseline: minV.Seconds(),
		score: gap / minGap,
		cause: fmt.Sprintf("cohort recv wait %.1fms vs this node's %.1fms (straggler inversion)",
			med/1e6, 1e3*minV.Seconds()),
	}
	// Let critical-path attribution over the flight window confirm the
	// culprit's dominant phase, as `inctrace blame` would post-mortem.
	if bn, bp, ok := e.blameLocked(it); ok && bn == minN {
		spec.phase = bp
	}
	e.openLocked(spec)
}

// blameLocked runs critical-path attribution over the flight recorder's
// recent-iteration window and returns the gating node and phase, if the
// verdict is decisive (majority share).
func (e *Engine) blameLocked(it int) (int, obs.Phase, bool) {
	lo := it - e.o.Window
	var win []obs.Span
	for _, s := range e.flight.spans() {
		if s.Iter >= lo {
			win = append(win, s)
		}
	}
	if len(win) == 0 {
		return 0, 0, false
	}
	r := obs.AttributeCriticalPath(win, e.o.MinStepGap)
	node, share := r.Gating()
	if node < 0 || share < 0.5 {
		return 0, 0, false
	}
	var phaseTot [obs.NumPhases]time.Duration
	for _, ia := range r.Iters {
		if ia.Gating == node {
			phaseTot[ia.GatingPhase] += ia.Gap
		}
	}
	best := obs.PhaseCompute
	for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
		if phaseTot[ph] > phaseTot[best] {
			best = ph
		}
	}
	return node, best, true
}

// pollLocked is one pass of the polled detectors.
func (e *Engine) pollLocked(now time.Time) {
	e.mPolls.Add(1)
	e.pullSpansLocked()
	reg := e.rec.Registry()
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	e.flight.addSnap(now.UnixNano(), snap)

	cnt := func(name string) int64 {
		v, _ := snap[name].(int64)
		return v
	}
	gauge := func(name string) float64 {
		v, _ := snap[name].(float64)
		return v
	}
	dt := now.Sub(e.lastPoll).Seconds()
	if e.lastPoll.IsZero() {
		dt = now.Sub(e.started).Seconds()
	}
	if dt <= 0 {
		dt = 1e-9
	}
	e.lastPoll = now

	// Rate-of-change families on the transport counters.
	e.rateLocked("retransmit_rate", "tcp_retransmits", cnt, dt, e.o.RetransRate, obs.PhaseSend)
	e.rateLocked("crc_rate", "tcp_crc_failures", cnt, dt, e.o.CRCRate, obs.PhaseRecv)

	// Membership suspects: any growth is worth an incident (a fault-free
	// run never suspects anyone).
	if d := cnt("elastic_suspects") - e.prevCnt["elastic_suspects"]; d > 0 {
		e.openLocked(incidentSpec{
			detector: "suspect", node: -1, sev: SevWarn, phase: obs.PhaseRecv,
			value: float64(d),
			cause: fmt.Sprintf("%d new membership suspect(s)", d),
		})
	} else if _, isOpen := e.open[incidentKey("suspect", -1)]; isOpen {
		e.closeLocked("suspect", -1)
	}

	// Point events the push path may not have seen (counter-only
	// producers): confirmed fallbacks and evictions.
	if total := cnt("collective_fallbacks"); total > e.fallbackHandled {
		d := total - e.fallbackHandled
		e.fallbackHandled = total
		e.openLocked(incidentSpec{
			detector: "fallback", point: true, node: -1,
			phase: obs.PhaseFallback, sev: SevCritical, value: float64(d),
			cause: fmt.Sprintf("%d collective fallback(s) observed via counter", d),
		})
	}
	if total := cnt("elastic_evictions"); total > e.evictHandled {
		d := total - e.evictHandled
		e.evictHandled = total
		e.openLocked(incidentSpec{
			detector: "eviction", point: true, node: -1,
			phase: obs.PhaseReplay, sev: SevCritical, value: float64(d),
			cause: fmt.Sprintf("%d member(s) evicted", d),
		})
	}

	// Heartbeat gap: the elastic heartbeat counter must keep moving while
	// the membership gauge says the ring is populated.
	if hb := cnt("elastic_heartbeats"); hb != e.hbLastCount {
		e.hbLastCount = hb
		e.hbLastChange = now
		e.closeLocked("heartbeat_gap", -1)
	} else if gauge("elastic_members") > 0 && now.Sub(e.hbLastChange) > e.o.HeartbeatGap {
		e.openLocked(incidentSpec{
			detector: "heartbeat_gap", node: -1, sev: SevWarn, phase: obs.PhaseRecv,
			value: now.Sub(e.hbLastChange).Seconds(),
			cause: fmt.Sprintf("no heartbeat progress for %s with members present",
				now.Sub(e.hbLastChange).Round(time.Millisecond)),
		})
	}

	// Compression-ratio drift against an EWMA baseline.
	if ratio := gauge("compression_ratio"); ratio > 0 {
		if e.ratioN < 5 {
			// Baseline still settling.
			if e.ratioN == 0 {
				e.ratioEwma = ratio
			} else {
				e.ratioEwma = e.o.EWMAAlpha*ratio + (1-e.o.EWMAAlpha)*e.ratioEwma
			}
			e.ratioN++
		} else if drift := math.Abs(ratio-e.ratioEwma) / e.ratioEwma; drift > e.o.RatioDriftPct {
			e.openLocked(incidentSpec{
				detector: "compression_drift", node: -1, sev: SevInfo, phase: obs.PhaseCompress,
				value: ratio, baseline: e.ratioEwma, score: drift,
				cause: fmt.Sprintf("compression ratio %.2f drifted %.0f%% from baseline %.2f",
					ratio, 100*drift, e.ratioEwma),
			})
		} else {
			e.ratioEwma = e.o.EWMAAlpha*ratio + (1-e.o.EWMAAlpha)*e.ratioEwma
			if drift < e.o.RatioDriftPct/2 {
				e.closeLocked("compression_drift", -1)
			}
		}
	}

	for _, name := range pollCounters {
		e.prevCnt[name] = cnt(name)
	}
}

// rateLocked opens/extends a rate incident when counter's growth rate
// exceeds perSec for two consecutive polls (a single window's burst —
// connection setup, a one-off timeout storm — never pages), and closes
// it when the rate falls below half the threshold.
func (e *Engine) rateLocked(family, counter string, cnt func(string) int64, dt, perSec float64, phase obs.Phase) {
	d := cnt(counter) - e.prevCnt[counter]
	rate := float64(d) / dt
	switch {
	case rate > perSec:
		e.rateStrikes[family]++
		if e.rateStrikes[family] < 2 {
			return
		}
		e.openLocked(incidentSpec{
			detector: family, node: -1, sev: SevWarn, phase: phase,
			value: rate, baseline: perSec, score: rate / perSec,
			cause: fmt.Sprintf("%s at %.0f/s (threshold %.0f/s)", counter, rate, perSec),
		})
	case rate < perSec/2:
		e.rateStrikes[family] = 0
		e.closeLocked(family, -1)
	default:
		e.rateStrikes[family] = 0
	}
}

// ---- incident lifecycle ----

type incidentSpec struct {
	detector        string
	point           bool // instantaneous event: opened already closed, never deduplicated away
	node            int
	phase           obs.Phase
	sev             Severity
	iterLo, iterHi  int
	value, baseline float64
	score           float64
	cause           string
}

func incidentKey(detector string, node int) string {
	return fmt.Sprintf("%s/%d", detector, node)
}

// openLocked opens an incident (or extends the already-open one for the
// same detector+node) and triggers the black-box dump.
func (e *Engine) openLocked(spec incidentSpec) {
	if !spec.point {
		if inc := e.open[incidentKey(spec.detector, spec.node)]; inc != nil {
			if spec.iterHi > inc.IterHi {
				inc.IterHi = spec.iterHi
			}
			inc.Value, inc.Score = spec.value, spec.score
			return
		}
	}
	e.nextID++
	now := time.Now().UnixNano()
	inc := &Incident{
		ID:       e.nextID,
		Detector: spec.detector,
		Severity: spec.sev,
		Node:     spec.node,
		Phase:    spec.phase,
		IterLo:   spec.iterLo,
		IterHi:   spec.iterHi,
		OpenedNs: now,
		Value:    spec.value,
		Baseline: spec.baseline,
		Score:    spec.score,
		Cause:    spec.cause,
	}
	if spec.point {
		inc.ClosedNs = now
	} else {
		e.open[incidentKey(spec.detector, spec.node)] = inc
	}
	e.incidents = append(e.incidents, inc)
	if len(e.incidents) > e.o.MaxIncidents {
		e.incidents = e.incidents[len(e.incidents)-e.o.MaxIncidents:]
	}
	e.mIncidents.Add(1)
	e.mOpen.Set(float64(len(e.open)))
	if e.o.BlackboxDir != "" {
		if path, err := e.dumpLocked(inc); err == nil {
			inc.Blackbox = path
			e.dumps++
			e.mDumps.Add(1)
		} else {
			inc.Cause += " (blackbox dump failed: " + err.Error() + ")"
		}
	}
}

func (e *Engine) closeLocked(detector string, node int) {
	key := incidentKey(detector, node)
	inc := e.open[key]
	if inc == nil {
		return
	}
	inc.ClosedNs = time.Now().UnixNano()
	delete(e.open, key)
	e.mOpen.Set(float64(len(e.open)))
}

// dumpLocked writes the flight recorder's contents plus the opening
// incident as one black-box JSONL file and returns its path.
func (e *Engine) dumpLocked(inc *Incident) (string, error) {
	if err := os.MkdirAll(e.o.BlackboxDir, 0o755); err != nil {
		return "", err
	}
	scope := fmt.Sprintf("node%d", inc.Node)
	if inc.Node < 0 {
		scope = "global"
	}
	path := filepath.Join(e.o.BlackboxDir,
		fmt.Sprintf("blackbox-%03d-%s-%s.jsonl", inc.ID, inc.Detector, scope))
	meta := obs.TraceMeta{
		Version:     1,
		Node:        -1,
		EpochUnixNs: e.rec.Tracer().EpochUnixNs(),
		Source:      "blackbox",
	}
	snaps := e.flight.snapshots()
	if reg := e.rec.Registry(); reg != nil {
		// One fresh snapshot at dump time, so the file carries the state
		// of the metrics at the incident itself.
		snaps = append(snaps, metricSnap{UnixNs: time.Now().UnixNano(), Metrics: reg.Snapshot()})
	}
	return path, writeDump(path, meta, *inc, snaps, e.flight.spans())
}

// ---- status surface ----

// Incidents returns a copy of the retained incident history, oldest
// first (nil engine: nil).
func (e *Engine) Incidents() []Incident {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Incident, len(e.incidents))
	for i, inc := range e.incidents {
		out[i] = *inc
	}
	return out
}

// OpenCount returns how many incidents are currently open.
func (e *Engine) OpenCount() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.open)
}

// Healthy reports whether no incident is currently open.
func (e *Engine) Healthy() bool { return e.OpenCount() == 0 }

// Status is the /health document.
type Status struct {
	Healthy    bool           `json:"healthy"`
	Open       int            `json:"open"`
	Total      int            `json:"total"`
	Dumps      int            `json:"blackbox_dumps"`
	Polls      int64          `json:"polls"`
	UptimeSecs float64        `json:"uptime_s"`
	ByDetector map[string]int `json:"by_detector,omitempty"`
	Incidents  []Incident     `json:"incidents,omitempty"`
}

// Status returns the current health document (a nil engine is healthy
// and empty).
func (e *Engine) Status() Status {
	if e == nil {
		return Status{Healthy: true}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Status{
		Healthy:    len(e.open) == 0,
		Open:       len(e.open),
		Total:      len(e.incidents),
		Dumps:      e.dumps,
		Polls:      e.mPolls.Value(),
		UptimeSecs: time.Since(e.started).Seconds(),
	}
	if len(e.incidents) > 0 {
		s.ByDetector = make(map[string]int)
		for _, inc := range e.incidents {
			s.ByDetector[inc.Detector]++
		}
		n := len(e.incidents)
		if n > 32 {
			n = 32 // the document stays small however long the run
		}
		s.Incidents = make([]Incident, n)
		for i, inc := range e.incidents[len(e.incidents)-n:] {
			s.Incidents[i] = *inc
		}
	}
	return s
}

// ---- robust statistics ----

// robustStats returns the median and the MAD-derived robust sigma
// (1.4826·MAD, floored) of the cohort, in nanoseconds.
func robustStats(vals map[int]time.Duration, floor float64) (med, sigma float64) {
	xs := make([]float64, 0, len(vals))
	for _, v := range vals {
		xs = append(xs, float64(v))
	}
	med = median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	sigma = 1.4826 * median(devs)
	if sigma < floor {
		sigma = floor
	}
	return med, sigma
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
