package health

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"inceptionn/internal/obs"
)

// The black-box dump is a JSONL file in the trace format plus auxiliary
// lines, so it replays through every existing span consumer unchanged:
//
//	{"trace_meta":1,"node":-1,"epoch_unix_ns":...,"source":"blackbox"}
//	{"blackbox":1,"kind":"incident","incident":{...}}
//	{"blackbox":1,"kind":"metrics","unix_ns":...,"metrics":{...}}
//	{"node":0,"iter":12,"phase":"recv","start_ns":...,"dur_ns":...}
//	...
//
// obs.ReadTrace skips the "blackbox"-keyed lines the same way it skips
// the meta header, so `inctrace blame <dump>` and `inctrace breakdown
// <dump>` work on a dump file directly; ReadDump parses the full
// document including incidents and metric snapshots.

// auxLine is one non-span line of a dump. The "blackbox" key doubles as
// the marker that tells span readers to skip the line.
type auxLine struct {
	Blackbox int                    `json:"blackbox"`
	Kind     string                 `json:"kind"`
	UnixNs   int64                  `json:"unix_ns,omitempty"`
	Incident *Incident              `json:"incident,omitempty"`
	Metrics  map[string]interface{} `json:"metrics,omitempty"`
}

// metricSnap is one retained point-in-time registry snapshot.
type metricSnap struct {
	UnixNs  int64
	Metrics map[string]interface{}
}

// flightRecorder is the always-on pre-incident evidence buffer: a
// bounded ring of full-fidelity spans plus the last few metric
// snapshots. It costs a fixed amount of memory no matter how long the
// run; the expensive serialization happens only when an incident dumps.
type flightRecorder struct {
	spanBuf  []obs.Span
	spanNext int
	snaps    []metricSnap
	maxSnaps int
}

func newFlightRecorder(spanCap, snapCap int) *flightRecorder {
	if spanCap < 1 {
		spanCap = 1
	}
	if snapCap < 1 {
		snapCap = 1
	}
	return &flightRecorder{spanBuf: make([]obs.Span, 0, spanCap), maxSnaps: snapCap}
}

func (f *flightRecorder) addSpan(s obs.Span) {
	if len(f.spanBuf) < cap(f.spanBuf) {
		f.spanBuf = append(f.spanBuf, s)
	} else {
		f.spanBuf[f.spanNext] = s
	}
	f.spanNext = (f.spanNext + 1) % cap(f.spanBuf)
}

// spans returns the retained spans oldest-first.
func (f *flightRecorder) spans() []obs.Span {
	out := make([]obs.Span, 0, len(f.spanBuf))
	if len(f.spanBuf) == cap(f.spanBuf) {
		out = append(out, f.spanBuf[f.spanNext:]...)
	}
	out = append(out, f.spanBuf[:f.spanNext]...)
	return out
}

func (f *flightRecorder) addSnap(unixNs int64, m map[string]interface{}) {
	f.snaps = append(f.snaps, metricSnap{UnixNs: unixNs, Metrics: m})
	if len(f.snaps) > f.maxSnaps {
		f.snaps = f.snaps[len(f.snaps)-f.maxSnaps:]
	}
}

func (f *flightRecorder) snapshots() []metricSnap {
	return append([]metricSnap(nil), f.snaps...)
}

// writeDump serializes one black-box document to path.
func writeDump(path string, meta obs.TraceMeta, inc Incident, snaps []metricSnap, spans []obs.Span) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(file)
	enc := json.NewEncoder(bw)
	err = enc.Encode(meta)
	if err == nil {
		err = enc.Encode(auxLine{Blackbox: 1, Kind: "incident", UnixNs: inc.OpenedNs, Incident: &inc})
	}
	for _, s := range snaps {
		if err != nil {
			break
		}
		err = enc.Encode(auxLine{Blackbox: 1, Kind: "metrics", UnixNs: s.UnixNs, Metrics: s.Metrics})
	}
	for _, s := range spans {
		if err != nil {
			break
		}
		err = enc.Encode(s)
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dump is a parsed black-box file.
type Dump struct {
	Metas     []obs.TraceMeta
	Incidents []Incident
	Snapshots []metricSnap
	Spans     []obs.Span
}

var (
	bbMarker   = []byte(`"blackbox"`)
	metaMarker = []byte(`"trace_meta"`)
)

// ReadDump parses a black-box JSONL stream.
func ReadDump(r io.Reader) (*Dump, error) {
	d := &Dump{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if bytes.Contains(b, metaMarker) {
			var m obs.TraceMeta
			if err := json.Unmarshal(b, &m); err == nil && m.Version != 0 {
				d.Metas = append(d.Metas, m)
				continue
			}
		}
		if bytes.Contains(b, bbMarker) {
			var aux auxLine
			if err := json.Unmarshal(b, &aux); err == nil && aux.Blackbox != 0 {
				switch aux.Kind {
				case "incident":
					if aux.Incident != nil {
						d.Incidents = append(d.Incidents, *aux.Incident)
					}
				case "metrics":
					d.Snapshots = append(d.Snapshots, metricSnap{UnixNs: aux.UnixNs, Metrics: aux.Metrics})
				}
				continue
			}
		}
		var s obs.Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("health: blackbox line %d: %w", line, err)
		}
		d.Spans = append(d.Spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadDumpFile parses the black-box file at path.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(f)
}
