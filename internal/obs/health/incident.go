package health

import (
	"fmt"
	"io"
	"sort"
	"time"

	"inceptionn/internal/obs"
)

// Severity grades an incident: info (worth a look), warn (degradation),
// critical (a component failed).
type Severity uint8

// Severity levels, ascending.
const (
	SevInfo Severity = iota
	SevWarn
	SevCritical
)

var sevNames = [...]string{"info", "warn", "critical"}

// String returns the severity's wire name.
func (s Severity) String() string {
	if int(s) < len(sevNames) {
		return sevNames[s]
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("health: invalid severity %s", b)
	}
	name := string(b[1 : len(b)-1])
	for i, n := range sevNames {
		if n == name {
			*s = Severity(i)
			return nil
		}
	}
	return fmt.Errorf("health: unknown severity %q", name)
}

// Incident is one typed anomaly record: which detector fired, which
// node and phase are blamed, over which iteration window, and the
// evidence (observed value vs baseline, robust score, the black-box
// dump path when flight recording is on). ClosedNs is zero while the
// anomaly persists; point events carry ClosedNs == OpenedNs.
type Incident struct {
	ID       int      `json:"id"`
	Detector string   `json:"detector"`
	Severity Severity `json:"severity"`
	// Node is the blamed component (a logical switch id for fallbacks),
	// or -1 when the anomaly is not attributable to one node.
	Node  int       `json:"node"`
	Phase obs.Phase `json:"phase"`
	// IterLo..IterHi is the iteration window the evidence covers.
	IterLo   int     `json:"iter_lo"`
	IterHi   int     `json:"iter_hi"`
	OpenedNs int64   `json:"opened_unix_ns"`
	ClosedNs int64   `json:"closed_unix_ns,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Baseline float64 `json:"baseline,omitempty"`
	Score    float64 `json:"score,omitempty"`
	Cause    string  `json:"cause"`
	Blackbox string  `json:"blackbox,omitempty"`
}

// OpenFor returns how long the incident has been (or was) open.
func (i Incident) OpenFor(now time.Time) time.Duration {
	end := i.ClosedNs
	if end == 0 {
		end = now.UnixNano()
	}
	d := time.Duration(end - i.OpenedNs)
	if d < 0 {
		d = 0
	}
	return d
}

// RenderIncidents writes the incident table, oldest first: the timeline
// view `inctrace incidents` and inctrain's end-of-run report share.
func RenderIncidents(w io.Writer, incs []Incident) {
	if len(incs) == 0 {
		fmt.Fprintln(w, "no incidents")
		return
	}
	sorted := append([]Incident(nil), incs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].OpenedNs < sorted[b].OpenedNs })
	epoch := sorted[0].OpenedNs
	now := time.Now()
	fmt.Fprintf(w, "%-4s %-18s %-8s %5s %-10s %-11s %9s %9s  %s\n",
		"id", "detector", "sev", "node", "phase", "iters", "t+", "open", "cause")
	for _, inc := range sorted {
		state := inc.OpenFor(now).Round(time.Millisecond).String()
		if inc.ClosedNs == 0 {
			state += "+"
		}
		iters := fmt.Sprintf("%d..%d", inc.IterLo, inc.IterHi)
		if inc.IterLo == inc.IterHi {
			iters = fmt.Sprintf("%d", inc.IterLo)
		}
		fmt.Fprintf(w, "%-4d %-18s %-8s %5d %-10s %-11s %8.3fs %9s  %s\n",
			inc.ID, inc.Detector, inc.Severity, inc.Node, inc.Phase,
			iters, float64(inc.OpenedNs-epoch)/1e9, state, inc.Cause)
		if inc.Blackbox != "" {
			fmt.Fprintf(w, "     blackbox: %s\n", inc.Blackbox)
		}
	}
}
