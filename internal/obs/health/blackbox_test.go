package health

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"inceptionn/internal/obs"
)

// buildStragglerEngine drives a synthetic 4-node synchronous cohort with
// node 2 straggling, over a real recorder so the flight recorder fills
// with spans, and returns the engine after Close. Wall clocks are
// uniform (the collective equalizes them); the evidence is in the spans:
// the straggler's compute runs 25ms longer, and the recv waits show the
// inversion (the straggler waits least).
func buildStragglerEngine(t *testing.T, dir string) (*Engine, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 12)
	rec := obs.NewRecorder(reg, tr)
	o := testOptions()
	o.BlackboxDir = dir
	e := New(rec, o)
	base := 10 * time.Millisecond
	step := base + 25*time.Millisecond
	for it := 0; it < 20; it++ {
		start := int64(it) * int64(40*time.Millisecond)
		for n := 0; n < 4; n++ {
			extra := int64(0)
			if n == 2 {
				extra = int64(25 * time.Millisecond)
			}
			tr.RecordRaw(n, it, obs.PhaseCompute, start, int64(base)+extra)
			wait := int64(25 * time.Millisecond)
			if n == 2 {
				wait = int64(time.Millisecond)
			}
			tr.RecordRaw(n, it, obs.PhaseRecv, start+int64(base)+extra, wait)
		}
		feedIter(e, it, map[int]time.Duration{0: step, 1: step, 2: step, 3: step})
	}
	e.Close()
	return e, tr
}

func TestBlackboxDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, _ := buildStragglerEngine(t, dir)

	incs := e.Incidents()
	var straggler *Incident
	for i := range incs {
		if incs[i].Detector == "straggler" {
			straggler = &incs[i]
		}
	}
	if straggler == nil {
		t.Fatalf("no straggler incident: %+v", incs)
	}
	if straggler.Node != 2 {
		t.Fatalf("straggler blamed node %d, want 2 (%+v)", straggler.Node, straggler)
	}
	if straggler.Blackbox == "" {
		t.Fatal("incident carries no blackbox path")
	}

	// The dump parses fully: meta, the incident, metric snapshots, spans.
	d, err := ReadDumpFile(straggler.Blackbox)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Metas) != 1 || d.Metas[0].Source != "blackbox" {
		t.Fatalf("metas = %+v, want one blackbox meta", d.Metas)
	}
	if len(d.Incidents) != 1 || d.Incidents[0].Detector != "straggler" {
		t.Fatalf("dump incidents = %+v", d.Incidents)
	}
	if len(d.Snapshots) == 0 {
		t.Fatal("dump carries no metric snapshots")
	}
	if _, ok := d.Snapshots[len(d.Snapshots)-1].Metrics["health_incidents_total"]; !ok {
		t.Fatalf("dump-time snapshot missing engine metrics: %v", d.Snapshots[len(d.Snapshots)-1].Metrics)
	}
	if len(d.Spans) == 0 {
		t.Fatal("dump carries no spans")
	}

	// The same file replays through the plain trace reader — aux lines
	// skipped — and critical-path attribution blames the injected
	// straggler, exactly what `inctrace blame <dump>` runs.
	spans, metas, err := readTraceFile(straggler.Blackbox)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || len(spans) != len(d.Spans) {
		t.Fatalf("ReadTrace: %d metas %d spans, want 1 and %d", len(metas), len(spans), len(d.Spans))
	}
	r := obs.AttributeCriticalPath(spans, 2*time.Millisecond)
	node, share := r.Gating()
	if node != 2 || share < 0.9 {
		t.Fatalf("dump replay blames node %d share %.2f, want node 2 ≥ 0.9", node, share)
	}
}

func readTraceFile(path string) ([]obs.Span, []obs.TraceMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return obs.ReadTrace(f)
}

func TestOneDumpPerIncident(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, obs.NewTracer(256))
	o := testOptions()
	o.BlackboxDir = dir
	e := New(rec, o)
	e.NotifyFallback(4, 3, "stall", time.Second)
	e.Poll()
	e.Close()
	files, err := filepath.Glob(filepath.Join(dir, "blackbox-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("dumps = %v, want exactly 1", files)
	}
}

func TestFlightRecorderBounds(t *testing.T) {
	f := newFlightRecorder(4, 2)
	for i := 0; i < 10; i++ {
		f.addSpan(obs.Span{Iter: i})
		f.addSnap(int64(i), map[string]interface{}{"i": i})
	}
	spans := f.spans()
	if len(spans) != 4 || spans[0].Iter != 6 || spans[3].Iter != 9 {
		t.Fatalf("span ring = %+v, want iters 6..9", spans)
	}
	if snaps := f.snapshots(); len(snaps) != 2 || snaps[1].UnixNs != 9 {
		t.Fatalf("snaps = %+v, want the last 2", f.snapshots())
	}
}
