package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil handle (from a
// disabled recorder) is a valid no-op target, so hot paths can hold one
// unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 for the nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric (nil-safe like Counter).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 for the nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultBuckets are the fixed latency-histogram bucket upper bounds:
// exponential decades from 10µs to 10s, 1-2-5 spaced. Latencies above
// the last bound land in an implicit overflow bucket.
var DefaultBuckets = []time.Duration{
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observe is a bucket
// scan plus three atomic adds — no locks — so it is safe on hot paths.
type Histogram struct {
	bounds  []time.Duration // sorted upper bounds; len(buckets) = len(bounds)+1
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds (peak observed)
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	b := append([]time.Duration(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations (0 for the nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time (0 for the nil handle).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// HistBucket is one histogram bucket in a snapshot: the count of
// observations at or below LESeconds. Observations above the last bound
// are reported in HistSnapshot.Overflow rather than as a +Inf bucket
// (infinities do not survive a JSON round trip).
type HistBucket struct {
	LESeconds float64 `json:"le_s"`
	N         int64   `json:"n"`
}

// HistSnapshot is the JSON-friendly view of a histogram. P50/P90/P99 are
// quantile estimates interpolated from the 1-2-5 buckets: exact to within
// one bucket's width (≤2.5× at the 1-2-5 spacing), which is plenty for the
// tail-latency questions the breakdown answers.
type HistSnapshot struct {
	Count      int64        `json:"count"`
	SumSeconds float64      `json:"sum_s"`
	MaxSeconds float64      `json:"max_s"`
	P50Seconds float64      `json:"p50_s,omitempty"`
	P90Seconds float64      `json:"p90_s,omitempty"`
	P99Seconds float64      `json:"p99_s,omitempty"`
	Buckets    []HistBucket `json:"buckets,omitempty"`
	Overflow   int64        `json:"overflow,omitempty"`
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation inside the containing bucket. Observations in the
// overflow bucket interpolate between the last bound and the observed max.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q >= 1 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	lo := 0.0
	for _, b := range s.Buckets {
		next := cum + float64(b.N)
		if rank <= next {
			frac := (rank - cum) / float64(b.N)
			return lo + frac*(b.LESeconds-lo)
		}
		cum = next
		lo = b.LESeconds
	}
	// Overflow bucket: bounded above by the observed max.
	if s.Overflow > 0 && s.MaxSeconds > lo {
		frac := (rank - cum) / float64(s.Overflow)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + frac*(s.MaxSeconds-lo)
	}
	return s.MaxSeconds
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:      h.count.Load(),
		SumSeconds: time.Duration(h.sum.Load()).Seconds(),
		MaxSeconds: time.Duration(h.max.Load()).Seconds(),
	}
	for i := range h.bounds {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{LESeconds: h.bounds[i].Seconds(), N: n})
		}
	}
	s.Overflow = h.buckets[len(h.bounds)].Load()
	s.P50Seconds = s.Quantile(0.50)
	s.P90Seconds = s.Quantile(0.90)
	s.P99Seconds = s.Quantile(0.99)
	return s
}

// Registry is the concurrency-safe metric namespace. Metric creation
// (the first lookup of a name) takes a mutex; the returned handles are
// lock-free. Look handles up once and hold them across a hot loop.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram with DefaultBuckets,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets returns the named histogram, creating it with the
// given bucket upper bounds on first use (nil bounds = DefaultBuckets;
// bounds of an existing histogram are not changed).
func (r *Registry) HistogramBuckets(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Func registers a callback gauge: Snapshot calls f for the current
// value. Use it to surface counters owned by other packages (the codec's
// stream totals, for example) without plumbing a recorder through them.
func (r *Registry) Func(name string, f func() float64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = f
}

// Snapshot returns a point-in-time flat view of every metric, keyed by
// name: counters as int64, gauges and func metrics as float64,
// histograms as HistSnapshot. The map is JSON-marshalable and is what
// the /metrics endpoint serves.
func (r *Registry) Snapshot() map[string]interface{} {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	out := make(map[string]interface{}, len(counters)+len(gauges)+len(hists)+len(funcs))
	for k, v := range counters {
		out[k] = v.Value()
	}
	for k, v := range gauges {
		out[k] = v.Value()
	}
	for k, v := range hists {
		out[k] = v.snapshot()
	}
	for k, f := range funcs {
		out[k] = f()
	}
	return out
}
