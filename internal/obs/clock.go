package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// ClockDoc is the document the /clock endpoint serves: the server's wall
// clock and its span timebase sampled at the same instant. It is the
// server half of the Collector's offset handshake.
type ClockDoc struct {
	// UnixNs is the server's wall clock at serve time.
	UnixNs int64 `json:"unix_ns"`
	// TraceNs is the position on the server tracer's span timeline at the
	// same instant (what a span starting now would carry as Start), or -1
	// when the server has no tracer.
	TraceNs int64 `json:"trace_ns"`
	// EpochUnixNs is the tracer's epoch in the server's wall clock (so
	// span wall time = EpochUnixNs + Start), or 0 without a tracer.
	EpochUnixNs int64 `json:"epoch_unix_ns"`
}

// clockDocNow samples the server clock for /clock.
func clockDocNow(tr *Tracer) ClockDoc {
	doc := ClockDoc{UnixNs: time.Now().UnixNano(), TraceNs: -1}
	if tr != nil {
		doc.TraceNs = tr.SinceEpochNs()
		doc.EpochUnixNs = tr.EpochUnixNs()
	}
	return doc
}

// ClockEstimate is a handshake-based estimate of a remote clock relative
// to the local one — the simplified-NTP midpoint method: for a probe sent
// at local time t0, answered with remote time tr, and received at local
// time t1, the offset estimate is tr − (t0+t1)/2, exact for a symmetric
// path and wrong by at most ±RTT/2 otherwise. EstimateClock keeps the
// minimum-RTT sample, whose error bound is tightest.
type ClockEstimate struct {
	// OffsetNs is the remote wall clock minus the local wall clock at the
	// same instant: local time = remote time − OffsetNs.
	OffsetNs int64
	// UncertaintyNs bounds the offset error: ± half the best sample's
	// round trip.
	UncertaintyNs int64
	// RTTNs is the best sample's round-trip time.
	RTTNs int64
	// EpochUnixNs is the remote tracer's span-timebase origin in the
	// remote wall clock (0 when the remote has no tracer).
	EpochUnixNs int64
	// Samples is how many probes succeeded.
	Samples int
}

// EstimateClock runs n probes (minimum 1) against a remote clock source
// and returns the minimum-RTT midpoint estimate. probe must return the
// remote's ClockDoc; the transport is the caller's (HTTP for live
// collection, an in-process fake under test).
func EstimateClock(n int, probe func() (ClockDoc, error)) (ClockEstimate, error) {
	if n < 1 {
		n = 1
	}
	var best ClockEstimate
	var lastErr error
	for i := 0; i < n; i++ {
		t0 := time.Now()
		doc, err := probe()
		t1 := time.Now()
		if err != nil {
			lastErr = err
			continue
		}
		rtt := t1.Sub(t0).Nanoseconds()
		if rtt < 0 {
			rtt = 0
		}
		mid := t0.UnixNano() + rtt/2
		est := ClockEstimate{
			OffsetNs:      doc.UnixNs - mid,
			UncertaintyNs: rtt/2 + 1, // never claim perfect knowledge
			RTTNs:         rtt,
			EpochUnixNs:   doc.EpochUnixNs,
		}
		if best.Samples == 0 || rtt < best.RTTNs {
			samples := best.Samples
			best = est
			best.Samples = samples
		}
		best.Samples++
	}
	if best.Samples == 0 {
		return ClockEstimate{}, fmt.Errorf("obs: clock handshake failed: %w", lastErr)
	}
	return best, nil
}

// HTTPClockProbe returns a probe for EstimateClock that GETs /clock from
// an obs HTTP endpoint.
func HTTPClockProbe(client *http.Client, addr string) func() (ClockDoc, error) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	url := "http://" + addr + "/clock"
	return func() (ClockDoc, error) {
		resp, err := client.Get(url)
		if err != nil {
			return ClockDoc{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ClockDoc{}, fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		var doc ClockDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return ClockDoc{}, fmt.Errorf("GET %s: %w", url, err)
		}
		return doc, nil
	}
}
