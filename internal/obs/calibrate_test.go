package obs

import (
	"strings"
	"testing"
	"time"
)

func span(node, iter int, phase Phase, durMs int64) Span {
	return Span{Node: node, Iter: iter, Phase: phase, Start: 0, Dur: durMs * int64(time.Millisecond)}
}

func phaseCal(c *Calibration, p Phase) (PhaseCal, bool) {
	for _, pc := range c.Phases {
		if pc.Phase == p {
			return pc, true
		}
	}
	return PhaseCal{}, false
}

func TestCalibrateBasicRelErr(t *testing.T) {
	measured := []Span{span(0, 0, PhaseSend, 10), span(0, 1, PhaseSend, 10)}
	sim := []Span{span(0, 0, PhaseSend, 12), span(0, 1, PhaseSend, 12)}
	c := Calibrate(measured, sim)
	pc, ok := phaseCal(c, PhaseSend)
	if !ok {
		t.Fatal("send phase missing from calibration")
	}
	if got, want := pc.RelErr, 0.2; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("RelErr = %v, want %v", got, want)
	}
	if pc.MeasuredCells != 2 || pc.SimCells != 2 {
		t.Fatalf("cells = %d/%d, want 2/2", pc.MeasuredCells, pc.SimCells)
	}
	if got := c.MaxAbsRelErr(); got < 0.2-1e-9 || got > 0.2+1e-9 {
		t.Fatalf("MaxAbsRelErr = %v, want 0.2", got)
	}
	if c.Comparable() != 1 {
		t.Fatalf("Comparable = %d, want 1", c.Comparable())
	}
}

func TestCalibrateZeroDurationSpans(t *testing.T) {
	// Zero-duration spans still create a cell (the phase happened, it was
	// just immeasurably fast) but the zero measured mean disables RelErr —
	// the guard mMean > 0 — so the phase must not trip MaxAbsRelErr.
	measured := []Span{span(0, 0, PhaseRecv, 0)}
	sim := []Span{span(0, 0, PhaseRecv, 5)}
	c := Calibrate(measured, sim)
	pc, ok := phaseCal(c, PhaseRecv)
	if !ok {
		t.Fatal("recv phase missing")
	}
	if pc.MeasuredCells != 1 {
		t.Fatalf("MeasuredCells = %d, want 1", pc.MeasuredCells)
	}
	if pc.RelErr != 0 {
		t.Fatalf("RelErr = %v, want 0 (zero measured mean disables it)", pc.RelErr)
	}
	if got := c.MaxAbsRelErr(); got != 0 {
		t.Fatalf("MaxAbsRelErr = %v, want 0", got)
	}
	if c.Comparable() != 0 {
		t.Fatalf("Comparable = %d, want 0", c.Comparable())
	}
}

func TestCalibrateNegativeIterFiltered(t *testing.T) {
	// Iter -1 marks transport-owned spans (codec work on the wire path);
	// they must not contribute calibration cells.
	measured := []Span{
		span(0, -1, PhaseCompress, 50),
		span(0, 0, PhaseSend, 10),
	}
	sim := []Span{span(0, 0, PhaseSend, 10)}
	c := Calibrate(measured, sim)
	if _, ok := phaseCal(c, PhaseCompress); ok {
		t.Fatal("compress phase from iter -1 spans must be filtered")
	}
	pc, _ := phaseCal(c, PhaseSend)
	if pc.MeasuredCells != 1 {
		t.Fatalf("send MeasuredCells = %d, want 1", pc.MeasuredCells)
	}
}

func TestCalibrateOneSidedPhases(t *testing.T) {
	measured := []Span{
		span(0, 0, PhaseSend, 10),
		span(0, 0, PhaseCheckpoint, 30), // measured-only
	}
	sim := []Span{
		span(0, 0, PhaseSend, 11),
		span(0, 0, PhaseReduce, 4), // sim-only
	}
	c := Calibrate(measured, sim)

	ck, ok := phaseCal(c, PhaseCheckpoint)
	if !ok || ck.OneSided() != "m-only" {
		t.Fatalf("checkpoint OneSided = %q, want m-only", ck.OneSided())
	}
	if ck.RelErr != 0 {
		t.Fatalf("m-only RelErr = %v, want 0 (sCells guard)", ck.RelErr)
	}
	rd, ok := phaseCal(c, PhaseReduce)
	if !ok || rd.OneSided() != "s-only" {
		t.Fatalf("reduce OneSided = %q, want s-only", rd.OneSided())
	}
	sd, _ := phaseCal(c, PhaseSend)
	if sd.OneSided() != "" {
		t.Fatalf("send OneSided = %q, want empty", sd.OneSided())
	}

	// One-sided phases must not contribute to the gate value.
	if got := c.MaxAbsRelErr(); got > 0.11 {
		t.Fatalf("MaxAbsRelErr = %v, want ~0.1 (send only)", got)
	}
	if c.Comparable() != 1 {
		t.Fatalf("Comparable = %d, want 1", c.Comparable())
	}

	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "m-only") || !strings.Contains(out, "s-only") {
		t.Fatalf("Render must flag one-sided phases, got:\n%s", out)
	}
}

func TestCalibrateEmptyTraces(t *testing.T) {
	c := Calibrate(nil, nil)
	if len(c.Phases) != 0 {
		t.Fatalf("empty traces produced %d phases", len(c.Phases))
	}
	if c.MaxAbsRelErr() != 0 || c.Comparable() != 0 {
		t.Fatal("empty calibration must gate at zero")
	}
}

func TestPhaseMeansMultipleSpansPerCell(t *testing.T) {
	// Two spans in the same {node, iter, phase} cell sum before averaging.
	spans := []Span{
		span(0, 0, PhaseSend, 10),
		span(0, 0, PhaseSend, 20),
		span(1, 0, PhaseSend, 30),
	}
	mean, cells := phaseMeans(spans)
	if cells[PhaseSend] != 2 {
		t.Fatalf("send cells = %d, want 2", cells[PhaseSend])
	}
	if got, want := mean[PhaseSend], 0.030; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("send mean = %v, want %v", got, want)
	}
}
