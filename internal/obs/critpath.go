package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Critical-path attribution for ring allreduce iterations.
//
// The signal is recv wait. In a ring, every node's step k receive is
// gated by its left neighbor's step k send, which is in turn gated by
// that node's own step k−1 receive — delay cascades all the way around.
// The inversion that makes attribution possible: the straggler itself
// waits the LEAST (by the time it asks for data, the data has long been
// queued by its punctual neighbor), while everyone downstream waits for
// the wavefront it launched. So per iteration the gating node is the one
// with the minimum total recv wait, and the iteration's cost of the
// imbalance ("gap") is how much extra the worst-off node waited relative
// to that minimum.

// IterAttribution is the critical-path verdict for one iteration.
type IterAttribution struct {
	Iter int
	// Gating is the node the iteration's critical path runs through
	// (minimum recv wait), or -1 when the iteration is balanced.
	Gating int
	// GatingPhase is where the gating node spent most of its non-recv
	// time that iteration — the activity that made everyone wait
	// (compute for a slow worker, compress for a slow codec, ...).
	GatingPhase Phase
	// Wait is each node's total recv wait this iteration.
	Wait map[int]time.Duration
	// Gap is the worst excess wait over the gating node's — what the
	// iteration would save if the straggler kept pace.
	Gap time.Duration
	// Balanced marks iterations whose gap is under the attribution
	// threshold; their Gating is -1.
	Balanced bool
}

// BlameReport is the per-iteration attribution plus its aggregates: how
// often each node gated the ring, and the recv-wait "blame matrix" —
// for each waiting node, how much excess stall it charged to the ring
// neighbor it receives from.
type BlameReport struct {
	// Nodes is the ring membership in ring order (sorted ids — the
	// fabric assigns ring position by id).
	Nodes []int
	// Iters is the per-iteration attribution, in iteration order.
	Iters []IterAttribution
	// GatingCount[node] is how many attributed (non-balanced)
	// iterations each node gated.
	GatingCount map[int]int
	// Attributed is the number of non-balanced iterations.
	Attributed int
	// Blame[i][j] is the excess recv wait node Nodes[i] accumulated on
	// its inbound link — blamed on Nodes[j], its left neighbor, the only
	// node it ever receives from. Cells off the left-neighbor diagonal
	// are zero; the matrix form keeps the report shape stable if
	// non-ring topologies ever feed it.
	Blame [][]time.Duration
	// MinGap is the balance threshold that was applied.
	MinGap time.Duration
}

// AttributeCriticalPath runs critical-path attribution over a merged
// trace. minGap is the balance threshold: iterations whose max−min recv
// wait falls under it are counted as balanced rather than attributed to
// a node (0 means the 100µs default). Spans with iter < 0 (background
// activity) are ignored.
func AttributeCriticalPath(spans []Span, minGap time.Duration) *BlameReport {
	if minGap <= 0 {
		minGap = 100 * time.Microsecond
	}
	// wait[iter][node] and busy[iter][node][phase] accumulators.
	type nodeIter struct {
		wait time.Duration
		busy [NumPhases]time.Duration
	}
	acc := make(map[int]map[int]*nodeIter)
	nodeSet := make(map[int]bool)
	// fallback[iter] is the node a collective-fallback span charged the
	// iteration to (the dead switch). It overrides the recv-wait verdict:
	// the iteration's stall was a component failure, not a straggler, and
	// recv waits during a timeout-bounded detection window would otherwise
	// point at an arbitrary worker.
	fallback := make(map[int]int)
	for _, s := range spans {
		if s.Iter < 0 || s.Phase >= NumPhases {
			continue
		}
		if s.Phase == PhaseFallback {
			if _, seen := fallback[s.Iter]; !seen {
				fallback[s.Iter] = s.Node
			}
		}
		nodeSet[s.Node] = true
		byNode := acc[s.Iter]
		if byNode == nil {
			byNode = make(map[int]*nodeIter)
			acc[s.Iter] = byNode
		}
		ni := byNode[s.Node]
		if ni == nil {
			ni = &nodeIter{}
			byNode[s.Node] = ni
		}
		if s.Phase == PhaseRecv {
			ni.wait += time.Duration(s.Dur)
		} else {
			ni.busy[s.Phase] += time.Duration(s.Dur)
		}
	}

	r := &BlameReport{GatingCount: make(map[int]int), MinGap: minGap}
	for n := range nodeSet {
		r.Nodes = append(r.Nodes, n)
	}
	sort.Ints(r.Nodes)
	pos := make(map[int]int, len(r.Nodes))
	for i, n := range r.Nodes {
		pos[n] = i
	}
	p := len(r.Nodes)
	r.Blame = make([][]time.Duration, p)
	for i := range r.Blame {
		r.Blame[i] = make([]time.Duration, p)
	}

	iters := make([]int, 0, len(acc))
	for it := range acc {
		iters = append(iters, it)
	}
	sort.Ints(iters)

	for _, it := range iters {
		byNode := acc[it]
		ia := IterAttribution{Iter: it, Gating: -1, Wait: make(map[int]time.Duration, len(byNode))}
		first := true
		var minWait, maxWait time.Duration
		for _, n := range r.Nodes {
			ni := byNode[n]
			if ni == nil {
				continue
			}
			ia.Wait[n] = ni.wait
			if first || ni.wait < minWait {
				minWait = ni.wait
				ia.Gating = n
			}
			if first || ni.wait > maxWait {
				maxWait = ni.wait
			}
			first = false
		}
		if first {
			continue
		}
		ia.Gap = maxWait - minWait
		if fbNode, ok := fallback[it]; ok {
			// Component failure: the fallback span names the culprit
			// directly. No blame-matrix entries — the dead node is not a
			// ring member, and the survivors' waits are detection time,
			// not neighbor-induced stall.
			ia.Balanced = false
			ia.Gating = fbNode
			ia.GatingPhase = PhaseFallback
			r.GatingCount[fbNode]++
			r.Attributed++
			r.Iters = append(r.Iters, ia)
			continue
		}
		if ia.Gap < minGap || len(ia.Wait) < 2 {
			ia.Balanced = true
			ia.Gating = -1
		} else {
			// The gating node's dominant non-recv phase explains the stall.
			g := byNode[ia.Gating]
			for ph := Phase(0); ph < NumPhases; ph++ {
				if g.busy[ph] > g.busy[ia.GatingPhase] {
					ia.GatingPhase = ph
				}
			}
			r.GatingCount[ia.Gating]++
			r.Attributed++
			// Blame matrix: each node's excess wait lands on its left ring
			// neighbor — the node it was actually blocked receiving from.
			for n, w := range ia.Wait {
				excess := w - minWait
				if excess <= 0 {
					continue
				}
				i := pos[n]
				left := r.Nodes[(i-1+p)%p]
				r.Blame[i][pos[left]] += excess
			}
		}
		r.Iters = append(r.Iters, ia)
	}
	return r
}

// Gating returns the node that gated the most iterations and its share
// of attributed iterations (node -1, share 0 when nothing attributed).
func (r *BlameReport) Gating() (node int, share float64) {
	node = -1
	best := 0
	for _, n := range r.Nodes {
		if c := r.GatingCount[n]; c > best {
			best, node = c, n
		}
	}
	if r.Attributed > 0 && node >= 0 {
		share = float64(best) / float64(r.Attributed)
	}
	return node, share
}

// RenderBlame writes the straggler report: the per-node gating summary,
// the blame matrix, and the per-iteration tail.
func (r *BlameReport) RenderBlame(w io.Writer) {
	balanced := len(r.Iters) - r.Attributed
	fmt.Fprintf(w, "critical-path attribution: %d iterations, %d attributed, %d balanced (gap < %s)\n",
		len(r.Iters), r.Attributed, balanced, r.MinGap)
	if len(r.Nodes) == 0 {
		return
	}

	fmt.Fprintf(w, "\n%-6s %8s %7s %14s\n", "node", "gated", "share", "blamed wait")
	blamedOn := make([]time.Duration, len(r.Nodes))
	for i := range r.Blame {
		for j, d := range r.Blame[i] {
			blamedOn[j] += d
		}
	}
	for i, n := range r.Nodes {
		share := 0.0
		if r.Attributed > 0 {
			share = 100 * float64(r.GatingCount[n]) / float64(r.Attributed)
		}
		fmt.Fprintf(w, "%-6d %8d %6.1f%% %13.3fs\n", n, r.GatingCount[n], share, blamedOn[i].Seconds())
	}

	fmt.Fprintf(w, "\nblame matrix (rows wait on columns, excess recv wait):\n%-8s", "")
	for _, n := range r.Nodes {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("on %d", n))
	}
	fmt.Fprintln(w)
	for i, n := range r.Nodes {
		fmt.Fprintf(w, "node %-3d", n)
		for j := range r.Nodes {
			fmt.Fprintf(w, " %8.3fs", r.Blame[i][j].Seconds())
		}
		fmt.Fprintln(w)
	}

	if node, share := r.Gating(); node >= 0 {
		fmt.Fprintf(w, "\nstraggler: node %d gates %.0f%% of attributed iterations", node, 100*share)
		// Dominant explanation across that node's gated iterations.
		var phaseTot [NumPhases]time.Duration
		for _, ia := range r.Iters {
			if ia.Gating == node {
				phaseTot[ia.GatingPhase] += ia.Gap
			}
		}
		bestPh, bestD := Phase(0), time.Duration(-1)
		for ph := Phase(0); ph < NumPhases; ph++ {
			if phaseTot[ph] > bestD {
				bestPh, bestD = ph, phaseTot[ph]
			}
		}
		fmt.Fprintf(w, " (dominant phase: %s)\n", bestPh)
	} else {
		fmt.Fprintf(w, "\nstraggler: none — ring is balanced\n")
	}
}
