package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Calibration is a per-phase comparison of two traces in the shared span
// schema — one measured (a real run), one simulated (eventsim/netsim/nic
// emitting virtual-time spans via RecordRaw). It answers the co-design
// loop's question: where does the model diverge from the machine?

// PhaseCal is the calibration result for one phase.
type PhaseCal struct {
	Phase Phase
	// MeasuredMean / SimMean are mean seconds of this phase per
	// node-iteration (span durations summed per {node, iter}, averaged
	// over the cells where the phase appears).
	MeasuredMean float64
	SimMean      float64
	// MeasuredCells / SimCells are how many {node, iter} cells carried
	// the phase in each trace.
	MeasuredCells int
	SimCells      int
	// RelErr is (sim − measured) / measured: positive when the simulator
	// is pessimistic, NaN-free (0 when either side has no data).
	RelErr float64
}

// Calibration is the full per-phase table.
type Calibration struct {
	Phases []PhaseCal // only phases present in at least one trace
}

func phaseMeans(spans []Span) (mean [NumPhases]float64, cells [NumPhases]int) {
	return phaseMeansTrimmed(spans, 0)
}

// phaseMeansTrimmed computes per-phase mean seconds per {node, iter}
// cell, dropping the slowest ceil(trim·n) cells of each phase first.
// A trim of 0 is the plain mean.
func phaseMeansTrimmed(spans []Span, trim float64) (mean [NumPhases]float64, cells [NumPhases]int) {
	idx := IndexSpans(spans)
	var byPhase [NumPhases][]time.Duration
	for k, d := range idx {
		if k.Iter < 0 || k.Phase >= NumPhases {
			continue
		}
		byPhase[k.Phase] = append(byPhase[k.Phase], d)
	}
	for p := range byPhase {
		ds := byPhase[p]
		cells[p] = len(ds)
		if len(ds) == 0 {
			continue
		}
		if trim > 0 {
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			drop := int(math.Ceil(trim * float64(len(ds))))
			if drop >= len(ds) {
				drop = len(ds) - 1
			}
			ds = ds[:len(ds)-drop]
		}
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		mean[p] = total.Seconds() / float64(len(ds))
	}
	return mean, cells
}

// Calibrate diffs a simulated trace against a measured one, phase by
// phase.
func Calibrate(measured, sim []Span) *Calibration {
	return CalibrateTrimmed(measured, sim, 0)
}

// CalibrateTrimmed is Calibrate with the slowest trim-fraction of the
// *measured* cells of each phase dropped before averaging. Measured
// traces on a shared machine carry rare giant outlier cells (a GC pause
// or scheduler preemption lands inside one span and inflates it 50×);
// a small trim compares the simulator against the machine's typical
// behavior instead of letting one pause dominate the phase mean. The
// simulated side is deterministic and is never trimmed. Cell counts
// still report the untrimmed population.
func CalibrateTrimmed(measured, sim []Span, trim float64) *Calibration {
	mMean, mCells := phaseMeansTrimmed(measured, trim)
	sMean, sCells := phaseMeans(sim)
	c := &Calibration{}
	for p := Phase(0); p < NumPhases; p++ {
		if mCells[p] == 0 && sCells[p] == 0 {
			continue
		}
		pc := PhaseCal{
			Phase:         p,
			MeasuredMean:  mMean[p],
			SimMean:       sMean[p],
			MeasuredCells: mCells[p],
			SimCells:      sCells[p],
		}
		if mMean[p] > 0 && sCells[p] > 0 {
			pc.RelErr = (sMean[p] - mMean[p]) / mMean[p]
		}
		c.Phases = append(c.Phases, pc)
	}
	return c
}

// OneSided labels a phase present in only one of the two traces:
// "m-only" (measured only), "s-only" (sim only), or "" when both (or
// neither) side carries it. One-sided phases have no meaningful RelErr;
// rendering them as a silent zero mean used to hide coverage gaps.
func (pc PhaseCal) OneSided() string {
	switch {
	case pc.MeasuredCells > 0 && pc.SimCells == 0:
		return "m-only"
	case pc.SimCells > 0 && pc.MeasuredCells == 0:
		return "s-only"
	}
	return ""
}

// MaxAbsRelErr returns the largest |RelErr| across the phases both
// traces cover (one-sided phases and phases with a zero measured mean
// carry no meaningful error and are skipped). Zero when no phase is
// comparable — callers gating on drift should also check Comparable.
func (c *Calibration) MaxAbsRelErr() float64 {
	max := 0.0
	for _, pc := range c.Phases {
		if pc.OneSided() != "" || pc.MeasuredMean <= 0 {
			continue
		}
		e := pc.RelErr
		if e < 0 {
			e = -e
		}
		if e > max {
			max = e
		}
	}
	return max
}

// Comparable reports how many phases carry a meaningful RelErr.
func (c *Calibration) Comparable() int {
	n := 0
	for _, pc := range c.Phases {
		if pc.OneSided() == "" && pc.MeasuredMean > 0 {
			n++
		}
	}
	return n
}

// Render writes the per-phase relative-error table. Phases present in
// only one trace are flagged m-only/s-only instead of rendering a
// silent zero mean on the missing side.
func (c *Calibration) Render(w io.Writer) {
	fmt.Fprintf(w, "%-12s %14s %14s %10s %8s %8s\n",
		"phase", "measured/iter", "sim/iter", "rel err", "m cells", "s cells")
	for _, pc := range c.Phases {
		rel := "n/a"
		if side := pc.OneSided(); side != "" {
			rel = side
		} else if pc.MeasuredMean > 0 {
			rel = fmt.Sprintf("%+.1f%%", 100*pc.RelErr)
		}
		fmt.Fprintf(w, "%-12s %13.6fs %13.6fs %10s %8d %8d\n",
			pc.Phase.String(), pc.MeasuredMean, pc.SimMean, rel, pc.MeasuredCells, pc.SimCells)
	}
}
