package obs

import (
	"fmt"
	"io"
	"time"
)

// Calibration is a per-phase comparison of two traces in the shared span
// schema — one measured (a real run), one simulated (eventsim/netsim/nic
// emitting virtual-time spans via RecordRaw). It answers the co-design
// loop's question: where does the model diverge from the machine?

// PhaseCal is the calibration result for one phase.
type PhaseCal struct {
	Phase Phase
	// MeasuredMean / SimMean are mean seconds of this phase per
	// node-iteration (span durations summed per {node, iter}, averaged
	// over the cells where the phase appears).
	MeasuredMean float64
	SimMean      float64
	// MeasuredCells / SimCells are how many {node, iter} cells carried
	// the phase in each trace.
	MeasuredCells int
	SimCells      int
	// RelErr is (sim − measured) / measured: positive when the simulator
	// is pessimistic, NaN-free (0 when either side has no data).
	RelErr float64
}

// Calibration is the full per-phase table.
type Calibration struct {
	Phases []PhaseCal // only phases present in at least one trace
}

func phaseMeans(spans []Span) (mean [NumPhases]float64, cells [NumPhases]int) {
	idx := IndexSpans(spans)
	var total [NumPhases]time.Duration
	for k, d := range idx {
		if k.Iter < 0 || k.Phase >= NumPhases {
			continue
		}
		total[k.Phase] += d
		cells[k.Phase]++
	}
	for p := range total {
		if cells[p] > 0 {
			mean[p] = total[p].Seconds() / float64(cells[p])
		}
	}
	return mean, cells
}

// Calibrate diffs a simulated trace against a measured one, phase by
// phase.
func Calibrate(measured, sim []Span) *Calibration {
	mMean, mCells := phaseMeans(measured)
	sMean, sCells := phaseMeans(sim)
	c := &Calibration{}
	for p := Phase(0); p < NumPhases; p++ {
		if mCells[p] == 0 && sCells[p] == 0 {
			continue
		}
		pc := PhaseCal{
			Phase:         p,
			MeasuredMean:  mMean[p],
			SimMean:       sMean[p],
			MeasuredCells: mCells[p],
			SimCells:      sCells[p],
		}
		if mMean[p] > 0 && sCells[p] > 0 {
			pc.RelErr = (sMean[p] - mMean[p]) / mMean[p]
		}
		c.Phases = append(c.Phases, pc)
	}
	return c
}

// Render writes the per-phase relative-error table.
func (c *Calibration) Render(w io.Writer) {
	fmt.Fprintf(w, "%-12s %14s %14s %10s %8s %8s\n",
		"phase", "measured/iter", "sim/iter", "rel err", "m cells", "s cells")
	for _, pc := range c.Phases {
		rel := "n/a"
		if pc.MeasuredCells > 0 && pc.SimCells > 0 && pc.MeasuredMean > 0 {
			rel = fmt.Sprintf("%+.1f%%", 100*pc.RelErr)
		}
		fmt.Fprintf(w, "%-12s %13.6fs %13.6fs %10s %8d %8d\n",
			pc.Phase.String(), pc.MeasuredMean, pc.SimMean, rel, pc.MeasuredCells, pc.SimCells)
	}
}
