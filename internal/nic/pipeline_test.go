package nic

import (
	"math"
	"testing"
)

// TestEngineBottleneckThreshold: the engine ingests raw data at 25.6 Gb/s,
// so it becomes the pipelined bottleneck exactly when the compression
// ratio exceeds 25.6/10 = 2.56 — and is never one below that. Either way
// the compressed path beats the uncompressed wire (see the slowdown test).
func TestEngineBottleneckThreshold(t *testing.T) {
	for _, n := range []int{8, 1000, 1 << 20} {
		for _, ratio := range []float64{1, 2, 2.5} {
			bits := int64(float64(32*int64(n)) / ratio)
			if timing := EgressTime(n, bits); timing.EngineBound {
				t.Errorf("n=%d ratio=%g: engine bound below the 2.56 threshold", n, ratio)
			}
		}
	}
	for _, ratio := range []float64{3, 10, 16} {
		n := 1 << 20
		bits := int64(float64(32*int64(n)) / ratio)
		if timing := EgressTime(n, bits); !timing.EngineBound {
			t.Errorf("ratio=%g: engine should bind above the 2.56 threshold", ratio)
		}
	}
}

func TestEgressTimeDominatedByWire(t *testing.T) {
	n := 1 << 20          // 4 MB payload
	bits := int64(32 * n) // uncompressed
	timing := EgressTime(n, bits)
	wantWire := float64(bits) / LineRateBitsPerSec
	if math.Abs(timing.WireSeconds-wantWire) > 1e-12 {
		t.Errorf("wire = %g, want %g", timing.WireSeconds, wantWire)
	}
	// Total exceeds the wire time by exactly one engine cycle of latency.
	if math.Abs(timing.TotalSeconds-(wantWire+1.0/ClockHz)) > 1e-12 {
		t.Errorf("total = %g", timing.TotalSeconds)
	}
	if timing.EngineSeconds >= timing.WireSeconds {
		t.Errorf("engine %g not faster than wire %g", timing.EngineSeconds, timing.WireSeconds)
	}
}

// TestEngineSlowdownIsActuallySpeedup: relative to an uncompressed wire,
// the compressed pipeline is min(ratio, 2.56)x faster and never slower.
func TestEngineSlowdownIsActuallySpeedup(t *testing.T) {
	for _, ratio := range []float64{2, 5, 10, 15} {
		s := EngineSlowdown(1<<20, ratio)
		if s > 1 {
			t.Errorf("ratio %g: slowdown %g > 1", ratio, s)
		}
		want := 1 / ratio
		if floor := 10.0 / 25.6; want < floor {
			want = floor
		}
		if math.Abs(s-want) > 0.01 {
			t.Errorf("ratio %g: slowdown %g, want ~%g", ratio, s, want)
		}
	}
	// Ratio 1 (incompressible traffic): at worst one cycle of latency.
	if s := EngineSlowdown(1<<20, 1); s > 1.001 {
		t.Errorf("incompressible slowdown %g", s)
	}
}

func TestEgressTinyPayload(t *testing.T) {
	timing := EgressTime(4, 16) // half a burst, nearly empty
	if timing.TotalSeconds <= 0 {
		t.Errorf("total = %g", timing.TotalSeconds)
	}
}
