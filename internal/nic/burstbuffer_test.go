package nic

import (
	"testing"
	"testing/quick"

	"inceptionn/internal/bitio"
	"inceptionn/internal/fpcodec"
)

// TestBurstDecompressorBitExact: the Burst Buffer state machine must decode
// exactly what the abstract stream decoder does.
func TestBurstDecompressorBitExact(t *testing.T) {
	for _, e := range []int{6, 8, 10} {
		bound := fpcodec.MustBound(e)
		for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 1000} {
			payload := gradientVector(n, int64(100*e+n))
			ce := NewCompressionEngine(bound)
			data, bits := ce.CompressPayload(payload)

			bd := NewBurstDecompressor(bound, data, bits)
			got, err := bd.DecompressAll(n)
			if err != nil {
				t.Fatalf("E=%d n=%d: %v", e, n, err)
			}
			want := make([]float32, n)
			if err := fpcodec.DecompressStream(bitio.NewReader(data, bits), want, bound); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("E=%d n=%d value %d: burst %g vs stream %g", e, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBurstDecompressorStraddling: groups with 34-bit lanes straddle burst
// boundaries (a full group can reach 272 > 256 bits), exactly the case the
// 512-bit Burst Buffer exists for.
func TestBurstDecompressorStraddling(t *testing.T) {
	bound := fpcodec.MustBound(10)
	// All values >= 1.0: every lane is a 34-bit no-compress encoding, so
	// every group is 16 + 8x32 = 272 bits — guaranteed straddling.
	payload := make([]float32, 64)
	for i := range payload {
		payload[i] = 1.5 + float32(i)
	}
	ce := NewCompressionEngine(bound)
	data, bits := ce.CompressPayload(payload)
	if bits != 8*272 {
		t.Fatalf("compressed to %d bits, want %d", bits, 8*272)
	}
	bd := NewBurstDecompressor(bound, data, bits)
	got, err := bd.DecompressAll(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("value %d: %g != %g", i, got[i], payload[i])
		}
	}
	if bd.Stalls() == 0 {
		t.Error("straddling groups should stall the buffer at least once")
	}
}

func TestBurstDecompressorCycleAccounting(t *testing.T) {
	bound := fpcodec.MustBound(10)
	payload := make([]float32, 80) // all below bound: 16-bit groups
	ce := NewCompressionEngine(bound)
	data, bits := ce.CompressPayload(payload)
	bd := NewBurstDecompressor(bound, data, bits)
	if _, err := bd.DecompressAll(len(payload)); err != nil {
		t.Fatal(err)
	}
	// 10 groups of 16 bits each: 160 bits arrive in one refill; 10 emit
	// cycles plus 1 stall/refill cycle.
	if bd.Cycles() != 11 || bd.Stalls() != 1 {
		t.Errorf("cycles=%d stalls=%d, want 11/1", bd.Cycles(), bd.Stalls())
	}
}

func TestBurstDecompressorTruncatedStream(t *testing.T) {
	bound := fpcodec.MustBound(10)
	payload := gradientVector(100, 1)
	ce := NewCompressionEngine(bound)
	data, bits := ce.CompressPayload(payload)
	bd := NewBurstDecompressor(bound, data, bits/2)
	if _, err := bd.DecompressAll(100); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func TestBurstDecompressorRejectsOversizedDeclaration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBurstDecompressor(fpcodec.MustBound(10), []byte{1, 2}, 100)
}

func TestQuickBurstEqualsStream(t *testing.T) {
	f := func(seed int64, nRaw uint16, eRaw uint8) bool {
		n := int(nRaw)%300 + 1
		e := int(eRaw)%15 + 1
		bound := fpcodec.MustBound(e)
		payload := gradientVector(n, seed)
		ce := NewCompressionEngine(bound)
		data, bits := ce.CompressPayload(payload)
		bd := NewBurstDecompressor(bound, data, bits)
		got, err := bd.DecompressAll(n)
		if err != nil {
			return false
		}
		want := make([]float32, n)
		if err := fpcodec.DecompressStream(bitio.NewReader(data, bits), want, bound); err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBurstDecompressor(b *testing.B) {
	bound := fpcodec.MustBound(10)
	payload := gradientVector(64*1024, 1)
	ce := NewCompressionEngine(bound)
	data, bits := ce.CompressPayload(payload)
	b.SetBytes(int64(4 * len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := NewBurstDecompressor(bound, data, bits)
		if _, err := bd.DecompressAll(len(payload)); err != nil {
			b.Fatal(err)
		}
	}
}
