// Package nic models the paper's FPGA NIC datapath (Figs. 8–10): a
// Compression Engine and a Decompression Engine inserted between the
// packet DMA and the 10G Ethernet MACs, processing packets in 256-bit AXI
// bursts at 100 MHz.
//
// The Compression Engine inspects the ToS field of each packet at the
// first burst; packets tagged 0x28 have their payload routed through a
// Compression Unit of eight parallel Compression Blocks (CBs), each
// encoding one 32-bit float per cycle into a {0, 8, 16, 32}-bit vector
// plus a 2-bit tag. An Alignment Unit concatenates the eight variable-size
// vectors behind the 16-bit tag word, producing 16–272 bits per input
// burst, and re-packs the result into outgoing 256-bit bursts.
//
// The Decompression Engine mirrors this with a 512-bit Burst Buffer (a
// compressed group may straddle two bursts), a Tag Decoder that computes
// the eight lane sizes, and eight Decompression Blocks (DBs).
//
// The engines here are bit-exact against the reference stream codec in
// internal/fpcodec (cross-checked by tests) and additionally account
// cycles, giving the latency/throughput numbers used by the simulator.
package nic

import (
	"fmt"

	"inceptionn/internal/bitio"
	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/obs"
)

// Hardware constants from the paper's Sec. VI/VII.
const (
	// BurstBits is the AXI-stream width: bits delivered per cycle.
	BurstBits = 256
	// BurstBytes is the burst width in bytes.
	BurstBytes = BurstBits / 8
	// LanesPerBurst is the number of CBs/DBs: 32-bit values per burst.
	LanesPerBurst = BurstBits / 32
	// ClockHz is the engine clock: 100 MHz.
	ClockHz = 100_000_000
)

// CompressionEngine is the burst-level compressor (paper Fig. 9).
type CompressionEngine struct {
	Bound fpcodec.Bound
	// Obs, when set, accumulates the engine's burst/size counters
	// (nic_compress_bursts, nic_compress_in_bytes, nic_compress_out_bits)
	// — the same registry schema measured runs export.
	Obs *obs.Recorder

	// Alignment Unit state: pending output bits not yet a full burst.
	acc *bitio.Writer

	// Cycle accounting.
	cycles int64
}

// NewCompressionEngine returns an engine with the given error bound.
func NewCompressionEngine(bound fpcodec.Bound) *CompressionEngine {
	return &CompressionEngine{Bound: bound, acc: bitio.NewWriter(4 * BurstBytes)}
}

// Cycles returns the total engine cycles consumed so far.
func (e *CompressionEngine) Cycles() int64 { return e.cycles }

// CompressPayload runs a full packet payload (a float32 vector) through
// the engine: one cycle per input burst of eight values. It returns the
// compressed byte stream and its exact bit length. The engine is flushed
// per packet (hardware emits the final partial burst zero-padded when the
// packet ends).
func (e *CompressionEngine) CompressPayload(payload []float32) (data []byte, bits int) {
	e.acc.Reset()
	for off := 0; off < len(payload); off += LanesPerBurst {
		hi := off + LanesPerBurst
		if hi > len(payload) {
			hi = len(payload)
		}
		e.compressBurst(payload[off:hi])
	}
	if e.Obs != nil {
		e.Obs.Counter("nic_compress_bursts").Add(CompressionCycles(len(payload)))
		e.Obs.Counter("nic_compress_in_bytes").Add(4 * int64(len(payload)))
		e.Obs.Counter("nic_compress_out_bits").Add(int64(e.acc.Len()))
	}
	return e.acc.Bytes(), e.acc.Len()
}

// compressBurst feeds one burst (≤8 lanes) through the Compression Unit
// and Alignment Unit: 16-bit tag vector + 0–256 data bits.
func (e *CompressionEngine) compressBurst(lanes []float32) {
	fpcodec.CompressGroup(e.acc, lanes, e.Bound)
	e.cycles++
}

// DecompressionEngine is the burst-level decompressor (paper Fig. 10).
type DecompressionEngine struct {
	Bound fpcodec.Bound
	// Obs, when set, accumulates nic_decompress_cycles and
	// nic_decompress_out_bytes.
	Obs *obs.Recorder

	cycles int64
}

// NewDecompressionEngine returns an engine with the given error bound.
func NewDecompressionEngine(bound fpcodec.Bound) *DecompressionEngine {
	return &DecompressionEngine{Bound: bound}
}

// Cycles returns the total engine cycles consumed so far.
func (e *DecompressionEngine) Cycles() int64 { return e.cycles }

// DecompressPayload decodes a compressed packet payload back into count
// float32 values. The Burst Buffer semantics — a compressed group may
// straddle two 256-bit bursts, so the decoder holds up to 512 bits before
// emitting — cost one cycle per produced output burst plus one fill cycle.
func (e *DecompressionEngine) DecompressPayload(data []byte, bits, count int) ([]float32, error) {
	r := bitio.NewReader(data, bits)
	out := make([]float32, count)
	for off := 0; off < count; off += LanesPerBurst {
		hi := off + LanesPerBurst
		if hi > count {
			hi = count
		}
		if err := fpcodec.DecompressGroup(r, out[off:hi], e.Bound); err != nil {
			return nil, fmt.Errorf("nic: burst at value %d: %w", off, err)
		}
		e.cycles++
	}
	e.cycles++ // initial Burst Buffer fill
	if e.Obs != nil {
		e.Obs.Counter("nic_decompress_cycles").Add(int64((count+LanesPerBurst-1)/LanesPerBurst) + 1)
		e.Obs.Counter("nic_decompress_out_bytes").Add(4 * int64(count))
	}
	return out, nil
}

// CompressionCycles returns the cycles needed to compress n float32 values
// (one per input burst), without running data through an engine.
func CompressionCycles(n int) int64 {
	return int64((n + LanesPerBurst - 1) / LanesPerBurst)
}

// EngineSeconds converts engine cycles to seconds at the 100 MHz clock.
func EngineSeconds(cycles int64) float64 {
	return float64(cycles) / ClockHz
}

// Processor is a comm.WireProcessor backed by the hardware engine models:
// the full NIC datapath of Fig. 8. Payloads tagged comm.ToSCompress are
// compressed by a CompressionEngine on the sender NIC and decompressed by
// a DecompressionEngine on the receiver NIC; all other traffic bypasses
// the engines, exactly as the ToS comparator in the paper routes packets.
type Processor struct {
	Bound fpcodec.Bound
	// Obs, when set, is handed to the engines so every processed payload
	// lands in the nic_* burst/size counters, plus the datapath totals
	// nic_offload_payloads and nic_offload_bypass.
	Obs *obs.Recorder
}

// Process implements comm.WireProcessor.
func (p Processor) Process(payload []float32, tos uint8) ([]float32, int64) {
	if tos != comm.ToSCompress {
		p.Obs.Counter("nic_offload_bypass").Add(1)
		return payload, 4 * int64(len(payload))
	}
	p.Obs.Counter("nic_offload_payloads").Add(1)
	ce := NewCompressionEngine(p.Bound)
	ce.Obs = p.Obs
	data, bits := ce.CompressPayload(payload)
	de := NewDecompressionEngine(p.Bound)
	de.Obs = p.Obs
	out, err := de.DecompressPayload(data, bits, len(payload))
	if err != nil {
		panic(fmt.Sprintf("nic: engine roundtrip failed: %v", err))
	}
	// On the wire the payload occupies whole bytes of compressed stream.
	return out, int64(len(data))
}

var _ comm.WireProcessor = Processor{}
