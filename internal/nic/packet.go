package nic

import (
	"encoding/binary"
	"fmt"
	"math"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
)

func floatBits(f float32) uint32     { return math.Float32bits(f) }
func floatFromBits(b uint32) float32 { return math.Float32frombits(b) }

// Packet is a simplified TCP/IP packet as seen by the NIC datapath: the
// ToS byte (the only header field the engines inspect, via the comparator
// of Fig. 11) and the payload bytes.
type Packet struct {
	ToS     uint8
	Payload []byte
	// Compressed marks packets whose payload was replaced by engine
	// output; the receiving NIC uses the embedded frame header to decode.
	Compressed bool
}

// WireBytes returns the packet's on-wire size including headers.
func (p Packet) WireBytes() int64 {
	return int64(len(p.Payload)) + comm.HeaderBytes
}

// frameHeaderBytes prefixes each compressed payload: the float32 count and
// the exact bit length of the compressed stream. The real hardware learns
// these from the TCP stream framing; carrying them in-band keeps each
// packet self-describing in this model.
const frameHeaderBytes = 8

// PacketizeFloats splits a float32 vector into MSS-sized packets with the
// given ToS, little-endian encoded — the host-side DMA path of Fig. 8.
func PacketizeFloats(vals []float32, tos uint8) []Packet {
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[4*i:], floatBits(v))
	}
	var pkts []Packet
	for off := 0; off < len(raw); off += comm.MSS {
		hi := off + comm.MSS
		if hi > len(raw) {
			hi = len(raw)
		}
		pkts = append(pkts, Packet{ToS: tos, Payload: raw[off:hi]})
	}
	if len(pkts) == 0 {
		pkts = []Packet{{ToS: tos}}
	}
	return pkts
}

// DepacketizeFloats reassembles float32 values from uncompressed packets.
func DepacketizeFloats(pkts []Packet) ([]float32, error) {
	var raw []byte
	for _, p := range pkts {
		if p.Compressed {
			return nil, fmt.Errorf("nic: cannot depacketize compressed packet")
		}
		raw = append(raw, p.Payload...)
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("nic: payload of %d bytes is not float32-aligned", len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = floatFromBits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// NIC is the full egress/ingress datapath of Fig. 8: packets tagged
// comm.ToSCompress pass through the engines; everything else bypasses.
type NIC struct {
	CE *CompressionEngine
	DE *DecompressionEngine
}

// New returns a NIC with both engines configured for bound.
func New(bound fpcodec.Bound) *NIC {
	return &NIC{CE: NewCompressionEngine(bound), DE: NewDecompressionEngine(bound)}
}

// Egress processes outgoing packets: the comparator checks ToS at the
// first burst; matching packets have their float payload compressed and
// re-framed. Non-float-aligned tagged payloads are passed through (the
// engines only understand 32-bit lanes).
func (n *NIC) Egress(pkts []Packet) []Packet {
	out := make([]Packet, 0, len(pkts))
	for _, p := range pkts {
		if p.ToS != comm.ToSCompress || len(p.Payload)%4 != 0 || len(p.Payload) == 0 {
			out = append(out, p)
			continue
		}
		count := len(p.Payload) / 4
		vals := make([]float32, count)
		for i := range vals {
			vals[i] = floatFromBits(binary.LittleEndian.Uint32(p.Payload[4*i:]))
		}
		data, bits := n.CE.CompressPayload(vals)
		framed := make([]byte, frameHeaderBytes+len(data))
		binary.LittleEndian.PutUint32(framed, uint32(count))
		binary.LittleEndian.PutUint32(framed[4:], uint32(bits))
		copy(framed[frameHeaderBytes:], data)
		out = append(out, Packet{ToS: p.ToS, Payload: framed, Compressed: true})
	}
	return out
}

// Ingress processes incoming packets: compressed ones are decoded back to
// float payloads; others bypass to the host untouched.
func (n *NIC) Ingress(pkts []Packet) ([]Packet, error) {
	out := make([]Packet, 0, len(pkts))
	for i, p := range pkts {
		if !p.Compressed {
			out = append(out, p)
			continue
		}
		if p.ToS != comm.ToSCompress {
			return nil, fmt.Errorf("nic: packet %d compressed but not ToS-tagged", i)
		}
		if len(p.Payload) < frameHeaderBytes {
			return nil, fmt.Errorf("nic: packet %d compressed frame too short", i)
		}
		count := int(binary.LittleEndian.Uint32(p.Payload))
		bits := int(binary.LittleEndian.Uint32(p.Payload[4:]))
		if bits > 8*(len(p.Payload)-frameHeaderBytes) {
			return nil, fmt.Errorf("nic: packet %d declares %d bits with %d payload bytes",
				i, bits, len(p.Payload)-frameHeaderBytes)
		}
		vals, err := n.DE.DecompressPayload(p.Payload[frameHeaderBytes:], bits, count)
		if err != nil {
			return nil, fmt.Errorf("nic: packet %d: %w", i, err)
		}
		raw := make([]byte, 4*count)
		for j, v := range vals {
			binary.LittleEndian.PutUint32(raw[4*j:], floatBits(v))
		}
		out = append(out, Packet{ToS: p.ToS, Payload: raw})
	}
	return out, nil
}

// TotalWire returns the summed wire bytes of a packet train.
func TotalWire(pkts []Packet) int64 {
	var total int64
	for _, p := range pkts {
		total += p.WireBytes()
	}
	return total
}
