package nic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inceptionn/internal/bitio"
	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/obs"
)

func gradientVector(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = float32(rng.NormFloat64()) // occasional large value
		default:
			out[i] = float32(rng.NormFloat64() * 0.002)
		}
	}
	return out
}

// TestEngineBitExactAgainstReferenceCodec: the hardware engine model and
// the software stream codec must produce identical bit streams — the
// central cross-check between the two independent implementations.
func TestEngineBitExactAgainstReferenceCodec(t *testing.T) {
	for _, e := range []int{6, 8, 10} {
		bound := fpcodec.MustBound(e)
		for _, n := range []int{1, 7, 8, 9, 64, 1000} {
			payload := gradientVector(n, int64(e*1000+n))
			ce := NewCompressionEngine(bound)
			data, bits := ce.CompressPayload(payload)

			w := bitio.NewWriter(4 * n)
			fpcodec.CompressStream(w, payload, bound)
			if bits != w.Len() {
				t.Fatalf("E=%d n=%d: engine %d bits, codec %d bits", e, n, bits, w.Len())
			}
			ref := w.Bytes()
			for i := range ref {
				if data[i] != ref[i] {
					t.Fatalf("E=%d n=%d: byte %d differs: %02x vs %02x", e, n, i, data[i], ref[i])
				}
			}
		}
	}
}

func TestEngineRoundtrip(t *testing.T) {
	bound := fpcodec.MustBound(10)
	payload := gradientVector(1000, 1)
	ce := NewCompressionEngine(bound)
	data, bits := ce.CompressPayload(payload)
	de := NewDecompressionEngine(bound)
	out, err := de.DecompressPayload(data, bits, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		want := fpcodec.Roundtrip(payload[i], bound)
		if out[i] != want {
			t.Fatalf("value %d: engine %g, codec roundtrip %g", i, out[i], want)
		}
	}
}

func TestEngineCycleAccounting(t *testing.T) {
	bound := fpcodec.MustBound(10)
	ce := NewCompressionEngine(bound)
	ce.CompressPayload(make([]float32, 64)) // 8 bursts
	if ce.Cycles() != 8 {
		t.Errorf("compress cycles = %d, want 8", ce.Cycles())
	}
	ce.CompressPayload(make([]float32, 65)) // 9 bursts (one partial)
	if ce.Cycles() != 17 {
		t.Errorf("cumulative cycles = %d, want 17", ce.Cycles())
	}
	if CompressionCycles(65) != 9 {
		t.Errorf("CompressionCycles(65) = %d", CompressionCycles(65))
	}
	if got := EngineSeconds(ClockHz); got != 1.0 {
		t.Errorf("EngineSeconds(1s of cycles) = %g", got)
	}
}

// TestEngineThroughputMatchesLineRate: 8 floats (256 bits) per 100 MHz
// cycle is 25.6 Gb/s of uncompressed input — comfortably above the 10 GbE
// line rate, the paper's requirement that the engines never throttle the
// NIC.
func TestEngineThroughputMatchesLineRate(t *testing.T) {
	const floats = 1_000_000
	cycles := CompressionCycles(floats)
	seconds := EngineSeconds(cycles)
	inputBits := float64(floats * 32)
	gbps := inputBits / seconds / 1e9
	if gbps < 10 {
		t.Fatalf("engine input bandwidth %.1f Gb/s < 10 GbE line rate", gbps)
	}
	if math.Abs(gbps-25.6) > 0.1 {
		t.Fatalf("engine bandwidth %.2f Gb/s, expected 25.6 (256b @ 100MHz)", gbps)
	}
}

func TestPacketizeDepacketize(t *testing.T) {
	vals := gradientVector(2000, 2) // 8000 bytes -> 6 packets
	pkts := PacketizeFloats(vals, 0)
	wantPkts := (4*2000 + comm.MSS - 1) / comm.MSS
	if len(pkts) != wantPkts {
		t.Fatalf("%d packets, want %d", len(pkts), wantPkts)
	}
	back, err := DepacketizeFloats(pkts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestNICPassThroughUntagged(t *testing.T) {
	n := New(fpcodec.MustBound(10))
	vals := gradientVector(500, 3)
	pkts := PacketizeFloats(vals, 0) // untagged
	egress := n.Egress(pkts)
	if TotalWire(egress) != TotalWire(pkts) {
		t.Fatal("untagged packets were modified on egress")
	}
	ingress, err := n.Ingress(egress)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DepacketizeFloats(ingress)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatal("untagged payload not exact")
		}
	}
	if n.CE.Cycles() != 0 {
		t.Errorf("compression engine ran %d cycles on bypass traffic", n.CE.Cycles())
	}
}

func TestNICCompressedPath(t *testing.T) {
	bound := fpcodec.MustBound(10)
	nicDev := New(bound)
	vals := gradientVector(5000, 4)
	pkts := PacketizeFloats(vals, comm.ToSCompress)
	egress := nicDev.Egress(pkts)
	if TotalWire(egress) >= TotalWire(pkts) {
		t.Fatalf("compression increased wire bytes: %d vs %d", TotalWire(egress), TotalWire(pkts))
	}
	recv := New(bound)
	ingress, err := recv.Ingress(egress)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DepacketizeFloats(ingress)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(vals) {
		t.Fatalf("got %d values, want %d", len(back), len(vals))
	}
	for i := range vals {
		if math.Abs(float64(back[i])-float64(vals[i])) > bound.MaxError() &&
			fpcodec.TagOf(vals[i], bound) != fpcodec.TagNone {
			t.Fatalf("value %d: %g -> %g exceeds bound", i, vals[i], back[i])
		}
	}
}

func TestNICHeaderOnlyPacket(t *testing.T) {
	n := New(fpcodec.MustBound(10))
	pkts := []Packet{{ToS: comm.ToSCompress}} // empty payload
	egress := n.Egress(pkts)
	if egress[0].Compressed {
		t.Fatal("empty payload must bypass the engines")
	}
}

func TestNICIngressRejectsCorruptFrames(t *testing.T) {
	n := New(fpcodec.MustBound(10))
	_, err := n.Ingress([]Packet{{ToS: comm.ToSCompress, Payload: []byte{1, 2}, Compressed: true}})
	if err == nil {
		t.Fatal("expected error on short frame")
	}
	_, err = n.Ingress([]Packet{{ToS: 0, Payload: make([]byte, 16), Compressed: true}})
	if err == nil {
		t.Fatal("expected error on untagged compressed packet")
	}
	// Declared bit length exceeding the payload must be rejected.
	bad := make([]byte, 12)
	bad[0] = 8    // count=8
	bad[4] = 0xFF // bits huge
	bad[5] = 0xFF
	_, err = n.Ingress([]Packet{{ToS: comm.ToSCompress, Payload: bad, Compressed: true}})
	if err == nil {
		t.Fatal("expected error on overlong bit declaration")
	}
}

func TestProcessorIsWireProcessor(t *testing.T) {
	bound := fpcodec.MustBound(8)
	p := Processor{Bound: bound}
	payload := gradientVector(1024, 5)
	out, bytes := p.Process(payload, comm.ToSCompress)
	if bytes >= 4*1024 {
		t.Errorf("processor did not compress: %d bytes", bytes)
	}
	for i := range payload {
		want := fpcodec.Roundtrip(payload[i], bound)
		if out[i] != want {
			t.Fatalf("value %d: %g, want %g", i, out[i], want)
		}
	}
	out2, bytes2 := p.Process(payload, 0)
	if bytes2 != 4*1024 || &out2[0] != &payload[0] {
		t.Error("untagged traffic must bypass unchanged")
	}
}

// TestQuickEngineCodecEquivalence is the property-based version of the
// bit-exactness cross-check.
func TestQuickEngineCodecEquivalence(t *testing.T) {
	f := func(seed int64, nRaw uint16, eRaw uint8) bool {
		n := int(nRaw)%500 + 1
		e := int(eRaw)%15 + 1
		bound := fpcodec.MustBound(e)
		payload := gradientVector(n, seed)
		ce := NewCompressionEngine(bound)
		data, bits := ce.CompressPayload(payload)
		w := bitio.NewWriter(4 * n)
		fpcodec.CompressStream(w, payload, bound)
		if bits != w.Len() {
			return false
		}
		ref := w.Bytes()
		for i := range ref {
			if data[i] != ref[i] {
				return false
			}
		}
		de := NewDecompressionEngine(bound)
		out, err := de.DecompressPayload(data, bits, n)
		if err != nil {
			return false
		}
		for i := range payload {
			if out[i] != fpcodec.Roundtrip(payload[i], bound) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineCompress64K(b *testing.B) {
	bound := fpcodec.MustBound(10)
	payload := gradientVector(64*1024, 1)
	ce := NewCompressionEngine(bound)
	b.SetBytes(int64(4 * len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ce.CompressPayload(payload)
	}
}

// TestProcessorObsCounters: an attached recorder must see the datapath
// totals and the engines' burst/byte/cycle accounting; a detached
// processor (nil Obs) must keep working through the nil-safe handles.
func TestProcessorObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	p := Processor{Bound: fpcodec.MustBound(8), Obs: obs.NewRecorder(reg, nil)}
	payload := gradientVector(1024, 5)
	p.Process(payload, comm.ToSCompress)
	p.Process(payload, 0)

	snap := reg.Snapshot()
	want := map[string]int64{
		"nic_offload_payloads":     1,
		"nic_offload_bypass":       1,
		"nic_compress_bursts":      CompressionCycles(len(payload)),
		"nic_compress_in_bytes":    4 * 1024,
		"nic_decompress_out_bytes": 4 * 1024,
	}
	for name, v := range want {
		if got, _ := snap[name].(int64); got != v {
			t.Errorf("%s = %v, want %d", name, snap[name], v)
		}
	}
	for _, name := range []string{"nic_compress_out_bits", "nic_decompress_cycles"} {
		if got, _ := snap[name].(int64); got <= 0 {
			t.Errorf("%s = %v, want > 0", name, snap[name])
		}
	}

	// Detached: same path, no recorder.
	p2 := Processor{Bound: fpcodec.MustBound(8)}
	if out, _ := p2.Process(payload, comm.ToSCompress); len(out) != len(payload) {
		t.Fatal("nil-Obs processor broke the datapath")
	}
}
