package nic

// Pipeline timing model for the NIC datapath of Fig. 8: packet DMA →
// Compression Engine → virtual FIFO → 10G Ethernet MAC (egress), and the
// mirror for ingress. The engines process one 256-bit burst per 100 MHz
// cycle (25.6 Gb/s), while the MAC drains at the 10 GbE line rate — so the
// engine is never the bottleneck and only adds pipeline latency, which is
// the paper's integration requirement ("do not affect the operating
// frequency and bandwidth").

// LineRateBitsPerSec is the 10 GbE MAC drain rate.
const LineRateBitsPerSec = 10e9

// EgressTiming describes one packet payload's trip through the egress path.
type EgressTiming struct {
	// EngineSeconds is the time the Compression Engine needs to ingest the
	// whole payload (one burst per cycle).
	EngineSeconds float64
	// WireSeconds is the time the MAC needs to serialize the compressed
	// payload at line rate.
	WireSeconds float64
	// TotalSeconds is the pipelined completion time: the slower stage
	// dominates, the faster adds only its first-burst latency.
	TotalSeconds float64
	// EngineBound reports whether the engine (rather than the wire) was
	// the pipelined bottleneck. This happens exactly when the compression
	// ratio exceeds 25.6/10 = 2.56: the wire then wants raw input faster
	// than the engine's 25.6 Gb/s. The path is still strictly faster than
	// an uncompressed wire — throughput saturates at 2.56x line rate
	// rather than growing with the ratio, which is one more reason the
	// paper observes diminishing returns from relaxed error bounds.
	EngineBound bool
}

// EgressTime models compressing and transmitting a payload of n float32
// values that compresses to compressedBits.
func EgressTime(n int, compressedBits int64) EgressTiming {
	engine := EngineSeconds(CompressionCycles(n))
	wire := float64(compressedBits) / LineRateBitsPerSec
	t := EgressTiming{EngineSeconds: engine, WireSeconds: wire}
	// Stages stream burst by burst: completion = max stage time + one
	// burst of latency through the other stage.
	burstLatency := 1.0 / ClockHz
	if engine > wire {
		t.EngineBound = true
		t.TotalSeconds = engine + float64(BurstBits)/LineRateBitsPerSec
	} else {
		t.TotalSeconds = wire + burstLatency
	}
	return t
}

// EngineSlowdown returns the compressed path's completion time relative to
// an uncompressed-wire baseline for a payload of n floats compressing by
// ratio (<1 means faster). It approaches 1/ratio for small ratios and
// saturates at 10/25.6 ≈ 0.39 once the engine's ingest rate binds.
func EngineSlowdown(n int, ratio float64) float64 {
	raw := float64(32*int64(n)) / LineRateBitsPerSec
	compressedBits := int64(float64(32*int64(n)) / ratio)
	return EgressTime(n, compressedBits).TotalSeconds / raw
}
