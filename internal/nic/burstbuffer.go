package nic

import (
	"fmt"

	"inceptionn/internal/fpcodec"
)

// BurstDecompressor is the cycle-faithful model of the Decompression
// Engine's front end (paper Fig. 10): input arrives as 256-bit bursts; a
// Burst Buffer holds up to two bursts (512 bits) because one compressed
// group (16-bit tag vector + 0–256 data bits, i.e. 16–272 bits) can
// straddle a burst boundary. Each cycle in which the buffer holds enough
// bits for the next group, the Tag Decoder computes the eight lane sizes,
// the eight DBs emit one 256-bit output burst, and the consumed bits are
// shifted away; otherwise the engine stalls for one cycle to refill.
//
// Its output is bit-exact with fpcodec.DecompressStream (verified by
// tests); what it adds over DecompressionEngine is the cycle-level
// buffer-occupancy behaviour.
type BurstDecompressor struct {
	Bound fpcodec.Bound

	// Burst Buffer: up to 512 bits, LSB-first like the wire format.
	buf  [8]uint64 // bit i of the buffer = buf[i/64]>>(i%64)&1
	fill int       // occupied bits

	input    []byte // compressed stream
	inputPos int    // next unread bit
	inputEnd int    // total stream bits

	cycles int64
	stalls int64
}

// NewBurstDecompressor returns a decompressor for one packet payload of
// `bits` compressed bits.
func NewBurstDecompressor(bound fpcodec.Bound, data []byte, bits int) *BurstDecompressor {
	if bits > 8*len(data) {
		panic(fmt.Sprintf("nic: %d bits declared in %d bytes", bits, len(data)))
	}
	return &BurstDecompressor{Bound: bound, input: data, inputEnd: bits}
}

// Cycles returns the consumed engine cycles (including stalls).
func (d *BurstDecompressor) Cycles() int64 { return d.cycles }

// Stalls returns the cycles spent refilling the Burst Buffer.
func (d *BurstDecompressor) Stalls() int64 { return d.stalls }

// refill moves up to one burst (256 bits) from the input into the buffer.
func (d *BurstDecompressor) refill() {
	take := BurstBits
	if remain := d.inputEnd - d.inputPos; take > remain {
		take = remain
	}
	if room := 512 - d.fill; take > room {
		take = room
	}
	for i := 0; i < take; i++ {
		src := d.inputPos + i
		bit := uint64(d.input[src/8]>>(uint(src)%8)) & 1
		pos := d.fill + i
		d.buf[pos/64] |= bit << (uint(pos) % 64)
	}
	d.inputPos += take
	d.fill += take
}

// peekBits reads w bits at offset off from the buffer without consuming.
func (d *BurstDecompressor) peekBits(off, w int) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		pos := off + i
		bit := d.buf[pos/64] >> (uint(pos) % 64) & 1
		v |= bit << uint(i)
	}
	return v
}

// consume shifts n bits out of the buffer.
func (d *BurstDecompressor) consume(n int) {
	rest := d.fill - n
	var next [8]uint64
	for i := 0; i < rest; i++ {
		src := n + i
		bit := d.buf[src/64] >> (uint(src) % 64) & 1
		next[i/64] |= bit << (uint(i) % 64)
	}
	d.buf = next
	d.fill = rest
}

// groupBits returns the total size of the group at the buffer head, or -1
// if the tag vector itself is not yet complete.
func (d *BurstDecompressor) groupBits() int {
	if d.fill < fpcodec.TagVectorBits {
		return -1
	}
	tags := d.peekBits(0, fpcodec.TagVectorBits)
	total := fpcodec.TagVectorBits
	for lane := 0; lane < fpcodec.GroupSize; lane++ {
		tag := fpcodec.Tag(tags >> uint(2*lane) & 0b11)
		total += tag.Bits()
	}
	return total
}

// NextGroup decodes the next burst group into dst (up to 8 lanes),
// advancing the cycle counters: one cycle per refill attempt while
// stalled, one cycle to emit. Returns the number of lanes produced, or an
// error if the stream is exhausted mid-group.
func (d *BurstDecompressor) NextGroup(dst []float32) (int, error) {
	if len(dst) == 0 || len(dst) > fpcodec.GroupSize {
		panic(fmt.Sprintf("nic: group of %d lanes", len(dst)))
	}
	for {
		need := d.groupBits()
		if need >= 0 && d.fill >= need {
			break
		}
		if d.inputPos >= d.inputEnd {
			return 0, fmt.Errorf("nic: compressed stream exhausted mid-group (have %d bits)", d.fill)
		}
		d.refill()
		d.cycles++
		d.stalls++
	}
	tags := d.peekBits(0, fpcodec.TagVectorBits)
	off := fpcodec.TagVectorBits
	for lane := 0; lane < len(dst); lane++ {
		tag := fpcodec.Tag(tags >> uint(2*lane) & 0b11)
		v := d.peekBits(off, tag.Bits())
		off += tag.Bits()
		dst[lane] = fpcodec.Decompress(uint32(v), tag, d.Bound)
	}
	// Also consume any trailing zero-width lanes the encoder padded.
	full := d.groupBits()
	d.consume(full)
	d.cycles++
	return len(dst), nil
}

// DecompressAll decodes count values, mirroring DecompressionEngine but
// with the explicit Burst Buffer model.
func (d *BurstDecompressor) DecompressAll(count int) ([]float32, error) {
	out := make([]float32, count)
	for off := 0; off < count; off += fpcodec.GroupSize {
		hi := off + fpcodec.GroupSize
		if hi > count {
			hi = count
		}
		if _, err := d.NextGroup(out[off:hi]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
