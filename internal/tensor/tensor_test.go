package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inceptionn/internal/par"
)

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("shape accessors broken: %v len=%d", x.Shape, x.Len())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0, 3)
}

func TestFromSliceAndReshape(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %g", x.At(1, 2))
	}
	y := x.Reshape(3, 2)
	y.Set(0, 1, 42)
	if x.Data[1] != 42 {
		t.Fatal("Reshape must share data")
	}
	c := x.Clone()
	c.Data[0] = -1
	if x.Data[0] == -1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.AddInPlace(b)
	if a.Data[2] != 33 {
		t.Fatalf("AddInPlace: %v", a.Data)
	}
	a.Axpy(0.5, b)
	if a.Data[0] != 16 {
		t.Fatalf("Axpy: %v", a.Data)
	}
	a.Scale(2)
	if a.Data[1] != 64 {
		t.Fatalf("Scale: %v", a.Data)
	}
	a.Zero()
	if a.Data[0] != 0 {
		t.Fatal("Zero failed")
	}
	a.Fill(7)
	if a.Data[2] != 7 {
		t.Fatal("Fill failed")
	}
}

func TestDotNormMaxAbs(t *testing.T) {
	a := FromSlice([]float32{3, -4}, 2)
	if got := a.L2Norm(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Norm = %g", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %g", got)
	}
	b := FromSlice([]float32{1, 2}, 2)
	if got := a.Dot(b); math.Abs(got-(-5)) > 1e-9 {
		t.Fatalf("Dot = %g", got)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(k, n)
		a.FillRandn(rng, 1)
		b.FillRandn(rng, 1)
		want := naiveMatMul(a, b)
		got := New(m, n)
		MatMul(got, a, b)
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				t.Fatalf("dims %v idx %d: got %g want %g", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k, m, n := 6, 4, 5
	a := New(k, m) // aᵀ is m×k
	b := New(k, n)
	a.FillRandn(rng, 1)
	b.FillRandn(rng, 1)
	// Build explicit transpose and compare.
	at := New(m, k)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := naiveMatMul(at, b)
	got := New(m, n)
	MatMulTransA(got, a, b)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("idx %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 4, 6, 5
	a := New(m, k)
	b := New(n, k) // bᵀ is k×n
	a.FillRandn(rng, 1)
	b.FillRandn(rng, 1)
	bt := New(k, n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := naiveMatMul(a, bt)
	got := New(m, n)
	MatMulTransB(got, a, b)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("idx %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	check("inner", func() { MatMul(New(2, 2), New(2, 3), New(4, 2)) })
	check("dst", func() { MatMul(New(3, 3), New(2, 3), New(3, 2)) })
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity layout.
	img := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	dst := New(1, 4)
	Im2Col(dst, img, 1, 1, 1, 0)
	for i, want := range []float32{1, 2, 3, 4} {
		if dst.Data[i] != want {
			t.Fatalf("idx %d: got %g want %g", i, dst.Data[i], want)
		}
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1 channel 3x3 image, 2x2 kernel, stride 1, no padding → 4 patches.
	img := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	dst := New(4, 4)
	Im2Col(dst, img, 2, 2, 1, 0)
	// Row r holds kernel position r across the 4 output locations
	// (top-left, top-right, bottom-left, bottom-right).
	want := [][]float32{
		{1, 2, 4, 5}, // k(0,0)
		{2, 3, 5, 6}, // k(0,1)
		{4, 5, 7, 8}, // k(1,0)
		{5, 6, 8, 9}, // k(1,1)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if dst.At(r, c) != want[r][c] {
				t.Fatalf("(%d,%d): got %g want %g", r, c, dst.At(r, c), want[r][c])
			}
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	img := FromSlice([]float32{5}, 1, 1, 1)
	// 3x3 kernel with pad 1 on a 1x1 image: single output, center sees 5.
	dst := New(9, 1)
	Im2Col(dst, img, 3, 3, 1, 1)
	for i := 0; i < 9; i++ {
		want := float32(0)
		if i == 4 {
			want = 5
		}
		if dst.Data[i] != want {
			t.Fatalf("kernel pos %d: got %g want %g", i, dst.Data[i], want)
		}
	}
}

// TestCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)> — the adjoint
// identity that makes the convolution backward pass correct.
func TestCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, h, w, kh, kw, stride, pad := 2, 5, 6, 3, 2, 2, 1
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	x := New(c, h, w)
	x.FillRandn(rng, 1)
	y := New(c*kh*kw, outH*outW)
	y.FillRandn(rng, 1)

	ix := New(c*kh*kw, outH*outW)
	Im2Col(ix, x, kh, kw, stride, pad)
	lhs := ix.Dot(y)

	cy := New(c, h, w)
	Col2Im(cy, y, kh, kw, stride, pad)
	rhs := x.Dot(cy)

	if math.Abs(lhs-rhs) > 1e-3*(math.Abs(lhs)+1) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestConvOutSize(t *testing.T) {
	if got := ConvOutSize(32, 3, 1, 1); got != 32 {
		t.Errorf("same-conv: %d", got)
	}
	if got := ConvOutSize(32, 2, 2, 0); got != 16 {
		t.Errorf("pool: %d", got)
	}
	if got := ConvOutSize(227, 11, 4, 0); got != 55 {
		t.Errorf("alexnet conv1: %d", got)
	}
}

// TestQuickMatMulLinearity: MatMul is linear in its first argument.
func TestQuickMatMulLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1
		a1, a2, b := New(m, k), New(m, k), New(k, n)
		a1.FillRandn(rng, 1)
		a2.FillRandn(rng, 1)
		b.FillRandn(rng, 1)
		sum := a1.Clone()
		sum.AddInPlace(a2)
		r1, r2, rs := New(m, n), New(m, n), New(m, n)
		MatMul(r1, a1, b)
		MatMul(r2, a2, b)
		MatMul(rs, sum, b)
		for i := range rs.Data {
			if math.Abs(float64(rs.Data[i]-(r1.Data[i]+r2.Data[i]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y, z := New(128, 128), New(128, 128), New(128, 128)
	x.FillRandn(rng, 1)
	y.FillRandn(rng, 1)
	b.SetBytes(128 * 128 * 128 * 4)
	for i := 0; i < b.N; i++ {
		MatMul(z, x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	img := New(16, 32, 32)
	img.FillRandn(rng, 1)
	dst := New(16*9, 32*32)
	for i := 0; i < b.N; i++ {
		Im2Col(dst, img, 3, 3, 1, 1)
	}
}

// TestMatMulPropagatesNaNInf guards the IEEE-semantics bugfix: the old
// kernels short-circuited zero elements of a, so 0×NaN and 0×Inf — the
// signature of a diverging replica's gradients — were silently laundered
// into finite outputs instead of poisoning them.
func TestMatMulPropagatesNaNInf(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for _, poison := range []float32{nan, inf} {
		// a's row is all zeros; b carries the poison. Every product with
		// the poisoned b row is 0×poison, which must be NaN.
		a := FromSlice([]float32{0, 0}, 1, 2)
		b := FromSlice([]float32{poison, 1, 2, 3}, 2, 2)
		got := New(1, 2)
		MatMul(got, a, b)
		if !math.IsNaN(float64(got.Data[0])) {
			t.Errorf("MatMul: 0×%g column gave %g, want NaN", poison, got.Data[0])
		}

		// aᵀ·b with a zero column in a and poison in b.
		at := FromSlice([]float32{0, 0}, 2, 1) // k=2, m=1
		bt := FromSlice([]float32{poison, 1, 2, 3}, 2, 2)
		gotA := New(1, 2)
		MatMulTransA(gotA, at, bt)
		if !math.IsNaN(float64(gotA.Data[0])) {
			t.Errorf("MatMulTransA: 0×%g gave %g, want NaN", poison, gotA.Data[0])
		}

		// a·bᵀ with zero a row and poisoned b row.
		ab := FromSlice([]float32{0, 0}, 1, 2)
		bb := FromSlice([]float32{poison, 4}, 1, 2)
		gotB := New(1, 1)
		MatMulTransB(gotB, ab, bb)
		if !math.IsNaN(float64(gotB.Data[0])) {
			t.Errorf("MatMulTransB: 0×%g gave %g, want NaN", poison, gotB.Data[0])
		}
	}

	// NaN in a itself must survive multiplication by zero in b.
	a := FromSlice([]float32{nan}, 1, 1)
	b := FromSlice([]float32{0}, 1, 1)
	got := New(1, 1)
	MatMul(got, a, b)
	if !math.IsNaN(float64(got.Data[0])) {
		t.Errorf("MatMul: NaN×0 gave %g, want NaN", got.Data[0])
	}
}

// TestMatMulParallelBitIdentical pins the determinism contract of the
// parallel kernels: any worker count yields bit-for-bit the sequential
// result, because shards own disjoint output rows and each element's
// k-accumulation order is fixed.
func TestMatMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 37, 29, 41
	a, b := New(m, k), New(k, n)
	a.FillRandn(rng, 1)
	b.FillRandn(rng, 1)
	at := New(k, m)
	at.FillRandn(rng, 1)
	bt := New(n, k)
	bt.FillRandn(rng, 1)

	type kernel struct {
		name string
		run  func(dst *Tensor)
	}
	kernels := []kernel{
		{"MatMul", func(dst *Tensor) { MatMul(dst, a, b) }},
		{"MatMulTransA", func(dst *Tensor) { MatMulTransA(dst, at, b) }},
		{"MatMulTransB", func(dst *Tensor) { MatMulTransB(dst, a, bt) }},
	}
	for _, kn := range kernels {
		prev := par.SetMaxWorkers(1)
		want := New(m, n)
		kn.run(want)
		for _, workers := range []int{2, 5, 8} {
			par.SetMaxWorkers(workers)
			got := New(m, n)
			kn.run(got)
			for i := range got.Data {
				if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
					t.Fatalf("%s workers=%d idx %d: %x vs %x",
						kn.name, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
		par.SetMaxWorkers(prev)
	}
}
