// Package tensor provides dense float32 tensors and the numerical kernels
// (matrix multiply, im2col convolution lowering, reductions) that the
// neural-network substrate in internal/nn is built on. Data is stored
// row-major (C order).
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"inceptionn/internal/par"
)

// Tensor is a dense row-major float32 array with a shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape. All dimensions
// must be positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape without copying.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view over the same data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at 2-D index (i, j); the tensor must be 2-D.
func (t *Tensor) At(i, j int) float32 {
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns the element at 2-D index (i, j); the tensor must be 2-D.
func (t *Tensor) Set(i, j int, v float32) {
	t.Data[i*t.Shape[1]+j] = v
}

// Zero fills the tensor with zeros.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillRandn fills the tensor with N(0, std²) samples from rng.
func (t *Tensor) FillRandn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// FillUniform fills the tensor with U(-a, a) samples from rng.
func (t *Tensor) FillUniform(rng *rand.Rand, a float64) {
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * a)
	}
}

// AddInPlace computes t += o elementwise. Shapes must carry equal sizes.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: AddInPlace size mismatch %d vs %d", len(t.Data), len(o.Data)))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Axpy computes t += alpha*o elementwise.
func (t *Tensor) Axpy(alpha float32, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: Axpy size mismatch %d vs %d", len(t.Data), len(o.Data)))
	}
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
}

// Scale computes t *= alpha elementwise.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Dot returns the inner product of the flattened tensors.
func (t *Tensor) Dot(o *Tensor) float64 {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i := range t.Data {
		s += float64(t.Data[i]) * float64(o.Data[i])
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// MatMul computes dst = a·b for 2-D tensors a (m×k) and b (k×n).
// dst must be m×n and distinct from a and b. The k-inner loop runs over b's
// rows (ikj order) for cache-friendly access. Output rows are computed in
// parallel shards (internal/par); every element accumulates over k in
// ascending order regardless of the worker count, so results are
// bit-identical to a sequential run.
//
// Zero elements of a are NOT short-circuited: IEEE 754 requires
// 0×NaN = NaN and 0×Inf = NaN, so a skipped multiply would launder a
// diverging replica's non-finite gradients into finite outputs.
func MatMul(dst, a, b *Tensor) {
	m, ka := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", ka, kb))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul dst %v, want [%d %d]", dst.Shape, m, n))
	}
	ad, bd, dd := a.Data, b.Data, dst.Data
	par.For(m, par.GrainFor(2*ka*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for x := range drow {
				drow[x] = 0
			}
			arow := ad[i*ka : (i+1)*ka]
			for k := 0; k < ka; k++ {
				av := arow[k]
				brow := bd[k*n : (k+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransA computes dst = aᵀ·b for a (k×m) and b (k×n); dst is m×n.
// Like MatMul it shards over output rows, accumulates over k in ascending
// order (bit-identical for any worker count), and never short-circuits
// zeros (0×NaN must stay NaN).
func MatMulTransA(dst, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	kb, n := b.Shape[0], b.Shape[1]
	if k != kb {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, kb))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransA dst %v, want [%d %d]", dst.Shape, m, n))
	}
	ad, bd, dd := a.Data, b.Data, dst.Data
	par.For(m, par.GrainFor(2*k*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for x := range drow {
				drow[x] = 0
			}
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransB computes dst = a·bᵀ for a (m×k) and b (n×k); dst is m×n.
// Output rows are sharded in parallel; the p-accumulation order is fixed,
// so results are bit-identical for any worker count.
func MatMulTransB(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, kb := b.Shape[0], b.Shape[1]
	if k != kb {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, kb))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB dst %v, want [%d %d]", dst.Shape, m, n))
	}
	ad, bd, dd := a.Data, b.Data, dst.Data
	par.For(m, par.GrainFor(2*k*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				dd[i*n+j] = s
			}
		}
	})
}

// Im2Col lowers a CHW image into a matrix of shape
// (channels*kh*kw) × (outH*outW) so convolution becomes MatMul.
// img must have shape [channels, height, width].
func Im2Col(dst, img *Tensor, kh, kw, stride, pad int) {
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	rows := c * kh * kw
	cols := outH * outW
	if dst.Shape[0] != rows || dst.Shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2Col dst %v, want [%d %d]", dst.Shape, rows, cols))
	}
	id, dd := img.Data, dst.Data
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (ch*kh+ky)*kw + kx
				base := row * cols
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						var v float32
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							v = id[(ch*h+iy)*w+ix]
						}
						dd[base+oy*outW+ox] = v
					}
				}
			}
		}
	}
}

// Col2Im scatters a column matrix (as produced by Im2Col) back into a CHW
// image, accumulating overlapping contributions. It is the adjoint of
// Im2Col, used by the convolution backward pass. img is zeroed first.
func Col2Im(img, cols *Tensor, kh, kw, stride, pad int) {
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	nCols := outH * outW
	if cols.Shape[0] != c*kh*kw || cols.Shape[1] != nCols {
		panic(fmt.Sprintf("tensor: Col2Im cols %v, want [%d %d]", cols.Shape, c*kh*kw, nCols))
	}
	img.Zero()
	id, cd := img.Data, cols.Data
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (ch*kh+ky)*kw + kx
				base := row * nCols
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						id[(ch*h+iy)*w+ix] += cd[base+oy*outW+ox]
					}
				}
			}
		}
	}
}

// ConvOutSize returns the output spatial size of a convolution/pooling with
// the given geometry.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
