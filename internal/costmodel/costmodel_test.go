package costmodel

import (
	"math"
	"testing"
)

func TestWorkerAggregatorLinearInP(t *testing.T) {
	// The paper's point: T_WA grows (almost) linearly with cluster size.
	c := Default10GbE()
	n := int64(233 << 20)
	t4 := c.WorkerAggregator(4, n)
	t8 := c.WorkerAggregator(8, n)
	ratio := t8 / t4
	if ratio < 1.7 || ratio > 2.2 {
		t.Errorf("T_WA(8)/T_WA(4) = %g, expected near-linear (~2)", ratio)
	}
}

func TestRingNearlyFlatInP(t *testing.T) {
	// T_INC's p-dependence cancels: going 4→8 nodes changes it little.
	c := Default10GbE()
	n := int64(233 << 20)
	t4 := c.Ring(4, n)
	t8 := c.Ring(8, n)
	ratio := t8 / t4
	if ratio < 0.95 || ratio > 1.25 {
		t.Errorf("T_INC(8)/T_INC(4) = %g, expected nearly flat", ratio)
	}
}

func TestRingBeatsWorkerAggregator(t *testing.T) {
	c := Default10GbE()
	for _, p := range []int{2, 4, 6, 8, 16} {
		for _, n := range []int64{2 << 20, 98 << 20, 525 << 20} {
			if c.Ring(p, n) >= c.WorkerAggregator(p, n) {
				t.Errorf("p=%d n=%d: ring %g >= WA %g", p, n,
					c.Ring(p, n), c.WorkerAggregator(p, n))
			}
		}
	}
}

func TestSpeedupGrowsWithP(t *testing.T) {
	c := Default10GbE()
	n := int64(98 << 20)
	prev := 0.0
	for _, p := range []int{2, 4, 8, 16} {
		s := c.Speedup(p, n)
		if s <= prev {
			t.Errorf("speedup at p=%d is %g, not increasing (prev %g)", p, s, prev)
		}
		prev = s
	}
}

func TestRingApproachesAsymptote(t *testing.T) {
	c := Default10GbE()
	n := int64(233 << 20)
	asym := c.RingAsymptote(n)
	t64 := c.Ring(64, n)
	// The bandwidth terms converge to the asymptote; latency adds 2(p-1)α.
	latency := 2 * 63 * c.Alpha
	if math.Abs(t64-latency-asym) > 0.05*asym {
		t.Errorf("Ring(64) - latency = %g, asymptote %g", t64-latency, asym)
	}
}

func TestKnownFormulaValues(t *testing.T) {
	// Hand-computed check with round numbers: α=1, β=1, γ=1, n=1, p=4.
	c := Params{Alpha: 1, Beta: 1, Gamma: 1}
	wantWA := (1 + 2.0) + (4 + 2.0) + 3.0 // logp = 2
	if got := c.WorkerAggregator(4, 1); math.Abs(got-wantWA) > 1e-12 {
		t.Errorf("WA = %g, want %g", got, wantWA)
	}
	wantINC := 2*3.0 + 2*0.75 + 0.75
	if got := c.Ring(4, 1); math.Abs(got-wantINC) > 1e-12 {
		t.Errorf("Ring = %g, want %g", got, wantINC)
	}
}
