// Package costmodel implements the analytical collective-communication
// cost model the paper adopts (Sec. VIII-D, after Thakur et al., IJHPCA
// 2005) to explain the scalability results of Fig. 15:
//
//	T_WA  = (1 + log₂ p)·α + (p + log₂ p)·n·β + (p − 1)·n·γ
//	T_INC = 2(p − 1)·α + 2·((p − 1)/p)·n·β + ((p − 1)/p)·n·γ
//
// where p is the number of workers, α the per-message link latency, n the
// model size in bytes, β the per-byte transfer time, and γ the per-byte
// sum-reduction time. The WA time grows linearly in p (both communication
// and summation congest the aggregator) while in T_INC the p-dependence
// cancels as p grows, which is why the INCEPTIONN exchange stays flat in
// Fig. 15.
package costmodel

import "math"

// Params are the α/β/γ constants of the model.
type Params struct {
	Alpha float64 // link latency per message (s)
	Beta  float64 // per-byte transfer time (s/B)
	Gamma float64 // per-byte sum-reduction time (s/B)
}

// Default10GbE returns parameters for a 10 Gb Ethernet cluster with
// CPU-side summation, matching the paper's testbed scale: α = 30 µs,
// β = 1/(10 Gb/s), γ = 1/(8 GB/s).
func Default10GbE() Params {
	return Params{
		Alpha: 30e-6,
		Beta:  8.0 / 10e9, // seconds per byte at 10 Gb/s
		Gamma: 1.0 / 8e9,  // seconds per byte at 8 GB/s summation
	}
}

// WorkerAggregator returns T_WA for p workers and n model bytes.
func (c Params) WorkerAggregator(p int, n int64) float64 {
	logp := math.Log2(float64(p))
	nf := float64(n)
	return (1+logp)*c.Alpha + (float64(p)+logp)*nf*c.Beta + float64(p-1)*nf*c.Gamma
}

// Ring returns T_INC for p workers and n model bytes.
func (c Params) Ring(p int, n int64) float64 {
	pf := float64(p)
	nf := float64(n)
	frac := (pf - 1) / pf
	return 2*(pf-1)*c.Alpha + 2*frac*nf*c.Beta + frac*nf*c.Gamma
}

// Speedup returns T_WA / T_INC.
func (c Params) Speedup(p int, n int64) float64 {
	return c.WorkerAggregator(p, n) / c.Ring(p, n)
}

// RingAsymptote returns the p→∞ limit of T_INC's bandwidth terms,
// 2nβ + nγ, showing the exchange time saturates instead of growing.
func (c Params) RingAsymptote(n int64) float64 {
	return 2*float64(n)*c.Beta + float64(n)*c.Gamma
}
