package dgc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 0.01); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		size  int
		ratio float64
	}{{0, 0.1}, {10, 0}, {10, -1}, {10, 1.5}} {
		if _, err := New(c.size, c.ratio); err == nil {
			t.Errorf("New(%d, %g): expected error", c.size, c.ratio)
		}
	}
}

func TestKBounds(t *testing.T) {
	if k := MustNew(1000, 0.01).K(); k != 10 {
		t.Errorf("K = %d, want 10", k)
	}
	if k := MustNew(10, 0.001).K(); k != 1 {
		t.Errorf("tiny ratio K = %d, want 1 (floor)", k)
	}
	if k := MustNew(10, 1).K(); k != 10 {
		t.Errorf("full ratio K = %d, want 10", k)
	}
}

func TestSelectsLargestMagnitude(t *testing.T) {
	s := MustNew(6, 0.34) // k=2
	grad := []float32{0.1, -5, 0.2, 4, -0.3, 0}
	idx, vals := s.Compress(grad)
	if len(idx) != 2 {
		t.Fatalf("sent %d entries", len(idx))
	}
	// Largest magnitudes are -5 (index 1) and 4 (index 3), in index order.
	if idx[0] != 1 || vals[0] != -5 || idx[1] != 3 || vals[1] != 4 {
		t.Fatalf("selected %v %v", idx, vals)
	}
	// Selected entries zeroed in the residual; others kept.
	if s.Residual()[1] != 0 || s.Residual()[3] != 0 {
		t.Error("sent entries not cleared from residual")
	}
	if s.Residual()[0] != 0.1 || s.Residual()[4] != -0.3 {
		t.Error("unsent entries lost from residual")
	}
}

// TestNoSignalLost: over any sequence of rounds, sent totals plus the
// residual equal the accumulated input gradients exactly (DGC's defining
// conservation property).
func TestNoSignalLost(t *testing.T) {
	const n = 50
	s := MustNew(n, 0.1)
	rng := rand.New(rand.NewSource(1))
	totalIn := make([]float64, n)
	totalSent := make([]float64, n)
	for round := 0; round < 40; round++ {
		grad := make([]float32, n)
		for i := range grad {
			grad[i] = float32(rng.Intn(9) - 4) // integers: exact float math
			totalIn[i] += float64(grad[i])
		}
		idx, vals := s.Compress(grad)
		for i, j := range idx {
			totalSent[j] += float64(vals[i])
		}
	}
	for i := 0; i < n; i++ {
		if totalSent[i]+float64(s.Residual()[i]) != totalIn[i] {
			t.Fatalf("entry %d: sent %g + residual %g != input %g",
				i, totalSent[i], s.Residual()[i], totalIn[i])
		}
	}
}

func TestDensifyAndAddSparse(t *testing.T) {
	out := []float32{9, 9, 9, 9}
	Densify([]int32{1, 3}, []float32{5, -2}, out)
	want := []float32{0, 5, 0, -2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Densify: %v", out)
		}
	}
	AddSparse([]int32{0, 1}, []float32{1, 1}, out)
	if out[0] != 1 || out[1] != 6 {
		t.Fatalf("AddSparse: %v", out)
	}
}

func TestRatio(t *testing.T) {
	s := MustNew(100000, 0.001) // k=100: 32 + 6400 bits vs 3.2e6 bits
	want := float64(32*100000) / float64(32+64*100)
	if r := s.Ratio(); math.Abs(r-want) > 1e-9 {
		t.Errorf("Ratio = %g, want %g", r, want)
	}
}

func TestCompressPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(4, 0.5).Compress(make([]float32, 5))
}

// TestSGDConvergesWithSparsification: a quadratic optimized with only the
// top-10% gradient entries per step still converges thanks to residual
// accumulation.
func TestSGDConvergesWithSparsification(t *testing.T) {
	const n = 20
	target := make([]float32, n)
	for i := range target {
		target[i] = float32(i%5) - 2
	}
	w := make([]float32, n)
	s := MustNew(n, 0.1)
	grad := make([]float32, n)
	dense := make([]float32, n)
	for iter := 0; iter < 3000; iter++ {
		for i := range grad {
			grad[i] = w[i] - target[i]
		}
		idx, vals := s.Compress(grad)
		Densify(idx, vals, dense)
		// Each coordinate is updated only every ~1/ratio steps, with an
		// accumulated (therefore ~1/ratio times larger) gradient; the
		// learning rate must absorb that factor to stay stable.
		for i := range w {
			w[i] -= 0.05 * dense[i]
		}
	}
	for i := range w {
		if math.Abs(float64(w[i]-target[i])) > 1e-2 {
			t.Fatalf("w[%d] = %g, want %g", i, w[i], target[i])
		}
	}
}

func TestQuickConservation(t *testing.T) {
	f := func(seed int64, rounds uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		s := MustNew(n, 0.2)
		in := make([]float64, n)
		sent := make([]float64, n)
		for r := 0; r < int(rounds%20)+1; r++ {
			grad := make([]float32, n)
			for i := range grad {
				grad[i] = float32(rng.Intn(21) - 10)
				in[i] += float64(grad[i])
			}
			idx, vals := s.Compress(grad)
			for i, j := range idx {
				sent[j] += float64(vals[i])
			}
		}
		for i := 0; i < n; i++ {
			if sent[i]+float64(s.Residual()[i]) != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress64K(b *testing.B) {
	s := MustNew(64*1024, 0.001)
	rng := rand.New(rand.NewSource(1))
	grad := make([]float32, 64*1024)
	for i := range grad {
		grad[i] = float32(rng.NormFloat64() * 0.01)
	}
	b.SetBytes(int64(4 * len(grad)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Compress(grad)
	}
}
