// Package dgc implements Deep Gradient Compression-style gradient
// sparsification (Lin et al., ICLR 2018), which the paper discusses as the
// complementary software approach to communication reduction (Sec. IX):
// each iteration a worker transmits only the largest-magnitude fraction of
// its gradient entries, accumulating the unsent remainder locally so no
// gradient signal is ever lost — merely delayed.
//
// The wire encoding is a sparse (index, value) list: 32 bits of index plus
// 32 bits of value per sent entry, so the compression ratio is n/(2k) for
// k of n entries sent.
package dgc

import (
	"fmt"
	"sort"
)

// Sparsifier holds the per-worker residual state.
type Sparsifier struct {
	ratio    float64
	residual []float32
}

// New returns a sparsifier for gradient vectors of the given size that
// transmits ceil(ratio·size) entries per round. ratio must be in (0, 1].
func New(size int, ratio float64) (*Sparsifier, error) {
	if size < 1 {
		return nil, fmt.Errorf("dgc: size %d", size)
	}
	if !(ratio > 0 && ratio <= 1) {
		return nil, fmt.Errorf("dgc: ratio %g out of (0,1]", ratio)
	}
	return &Sparsifier{ratio: ratio, residual: make([]float32, size)}, nil
}

// MustNew is New that panics on error.
func MustNew(size int, ratio float64) *Sparsifier {
	s, err := New(size, ratio)
	if err != nil {
		panic(err)
	}
	return s
}

// K returns the number of entries sent per round.
func (s *Sparsifier) K() int {
	k := int(s.ratio * float64(len(s.residual)))
	if k < 1 {
		k = 1
	}
	if k > len(s.residual) {
		k = len(s.residual)
	}
	return k
}

// Compress accumulates grad into the residual and extracts the K
// largest-magnitude accumulated entries, zeroing them in the residual.
// The returned slices are valid until the next call.
func (s *Sparsifier) Compress(grad []float32) (indices []int32, values []float32) {
	if len(grad) != len(s.residual) {
		panic(fmt.Sprintf("dgc: gradient of %d entries, sparsifier built for %d",
			len(grad), len(s.residual)))
	}
	for i, g := range grad {
		s.residual[i] += g
	}
	k := s.K()
	// Select the k largest |residual| indices.
	idx := make([]int32, len(s.residual))
	for i := range idx {
		idx[i] = int32(i)
	}
	abs := func(v float32) float32 {
		if v < 0 {
			return -v
		}
		return v
	}
	sort.Slice(idx, func(a, b int) bool {
		return abs(s.residual[idx[a]]) > abs(s.residual[idx[b]])
	})
	indices = idx[:k]
	values = make([]float32, k)
	for i, j := range indices {
		values[i] = s.residual[j]
		s.residual[j] = 0
	}
	// Deterministic wire order.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return indices[order[a]] < indices[order[b]] })
	outIdx := make([]int32, k)
	outVal := make([]float32, k)
	for i, o := range order {
		outIdx[i] = indices[o]
		outVal[i] = values[o]
	}
	return outIdx, outVal
}

// Residual returns the current unsent accumulation (read-only view).
func (s *Sparsifier) Residual() []float32 { return s.residual }

// Densify scatters a sparse update into out (which is zeroed first).
func Densify(indices []int32, values []float32, out []float32) {
	for i := range out {
		out[i] = 0
	}
	for i, j := range indices {
		out[j] = values[i]
	}
}

// AddSparse accumulates a sparse update into out without zeroing.
func AddSparse(indices []int32, values []float32, out []float32) {
	for i, j := range indices {
		out[j] += values[i]
	}
}

// CompressedBits returns the wire size of one sparse round: 64 bits per
// sent entry plus a 32-bit count header.
func CompressedBits(k int) int64 { return 32 + 64*int64(k) }

// Ratio returns the compression ratio for vectors of n entries.
func (s *Sparsifier) Ratio() float64 {
	n := len(s.residual)
	return float64(32*int64(n)) / float64(CompressedBits(s.K()))
}
