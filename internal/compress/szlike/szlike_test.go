package szlike

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inceptionn/internal/bitio"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1e-3, 8); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		bound   float64
		binBits int
	}{{0, 8}, {-1, 8}, {math.Inf(1), 8}, {math.NaN(), 8}, {1e-3, 1}, {1e-3, 17}} {
		if _, err := New(c.bound, c.binBits); err == nil {
			t.Errorf("New(%g, %d): expected error", c.bound, c.binBits)
		}
	}
}

func roundtrip(t *testing.T, c Codec, src []float32) []float32 {
	t.Helper()
	w := bitio.NewWriter(4 * len(src))
	c.Compress(w, src)
	dst := make([]float32, len(src))
	if err := c.Decompress(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	return dst
}

func TestErrorBoundHeld(t *testing.T) {
	c := MustNew(1e-3, 8)
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 10000)
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	dst := roundtrip(t, c, src)
	for i := range src {
		if err := math.Abs(float64(dst[i]) - float64(src[i])); err > c.Bound()+1e-12 {
			t.Fatalf("index %d: |%g - %g| = %g > bound %g", i, dst[i], src[i], err, c.Bound())
		}
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	// SZ's strength: smooth series are almost entirely bin-coded.
	c := MustNew(1e-4, 8)
	src := make([]float32, 8192)
	for i := range src {
		src[i] = float32(math.Sin(float64(i) / 100))
	}
	if r := c.Ratio(src); r < 3 {
		t.Errorf("smooth ratio = %g, expected > 3 (9 bits/value)", r)
	}
}

func TestNoisyGradientsCompressPoorly(t *testing.T) {
	// Gradients are noise to a predictive codec at tight bounds: most values
	// are either raw or cost 9 bits — far from the INCEPTIONN codec's 16x.
	c := MustNew(math.Ldexp(1, -10), 8)
	rng := rand.New(rand.NewSource(2))
	src := make([]float32, 8192)
	for i := range src {
		src[i] = float32(rng.NormFloat64() * 0.1)
	}
	if r := c.Ratio(src); r > 4 {
		t.Errorf("noisy-gradient ratio = %g, expected modest (< 4)", r)
	}
}

func TestSpecialValuesStoredRaw(t *testing.T) {
	c := MustNew(1e-3, 8)
	src := []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 1e30, -1e30}
	dst := roundtrip(t, c, src)
	if !math.IsNaN(float64(dst[0])) {
		t.Errorf("NaN not preserved: %g", dst[0])
	}
	if !math.IsInf(float64(dst[1]), 1) || !math.IsInf(float64(dst[2]), -1) {
		t.Errorf("Inf not preserved: %g %g", dst[1], dst[2])
	}
	if dst[3] != 1e30 || dst[4] != -1e30 {
		t.Errorf("huge values not exact: %g %g", dst[3], dst[4])
	}
}

func TestEmptyInput(t *testing.T) {
	c := MustNew(1e-3, 8)
	w := bitio.NewWriter(0)
	c.Compress(w, nil)
	if w.Len() != 0 {
		t.Errorf("empty input wrote %d bits", w.Len())
	}
	if err := c.Decompress(bitio.NewReader(nil, 0), nil); err != nil {
		t.Errorf("empty decompress: %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	c := MustNew(1e-3, 8)
	w := bitio.NewWriter(64)
	c.Compress(w, []float32{0.1, 0.2, 0.3, 0.4})
	dst := make([]float32, 4)
	r := bitio.NewReader(w.Bytes(), w.Len()/3)
	if err := c.Decompress(r, dst); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func TestQuickErrorBound(t *testing.T) {
	f := func(seed int64, boundExp uint8, n uint8) bool {
		e := int(boundExp%12) + 3
		bound := math.Ldexp(1, -e)
		c := MustNew(bound, 8)
		rng := rand.New(rand.NewSource(seed))
		src := make([]float32, int(n)+1)
		for i := range src {
			src[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2)))
		}
		w := bitio.NewWriter(4 * len(src))
		c.Compress(w, src)
		dst := make([]float32, len(src))
		if err := c.Decompress(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
			return false
		}
		for i := range src {
			if math.Abs(float64(dst[i])-float64(src[i])) > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressGradients(b *testing.B) {
	c := MustNew(math.Ldexp(1, -10), 8)
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 64*1024)
	for i := range src {
		src[i] = float32(rng.NormFloat64() * 0.01)
	}
	w := bitio.NewWriter(4 * len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		c.Compress(w, src)
	}
}

func BenchmarkDecompressGradients(b *testing.B) {
	c := MustNew(math.Ldexp(1, -10), 8)
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 64*1024)
	for i := range src {
		src[i] = float32(rng.NormFloat64() * 0.01)
	}
	w := bitio.NewWriter(4 * len(src))
	c.Compress(w, src)
	dst := make([]float32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decompress(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
			b.Fatal(err)
		}
	}
}
