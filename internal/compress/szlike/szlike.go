// Package szlike implements an error-bounded lossy floating-point codec of
// the SZ family (Di & Cappello, IPDPS 2016), used as the software lossy
// compression baseline of the paper's Fig. 7.
//
// Like SZ it is *predictive*: each value is predicted from its already-
// decoded predecessors (preceding-value and linear-extrapolation
// predictors); the prediction residual is quantized into uniform bins of
// width 2·bound. Values falling outside the quantization range are stored
// verbatim. The decoder reproduces predictions from the reconstructed
// stream, so encoder and decoder stay in lockstep.
//
// Wire format per value (bit-packed, LSB-first):
//
//	flag bit 0: quantized — followed by binBits bits of bin index
//	flag bit 1: unpredictable — followed by the 32 raw IEEE-754 bits
package szlike

import (
	"fmt"
	"math"

	"inceptionn/internal/bitio"
)

// Codec is an SZ-style predictive error-bounded codec.
type Codec struct {
	bound   float64
	binBits int
	bins    int // number of bins, odd so bin (bins-1)/2 means "residual 0"
}

// New returns a codec with the given absolute error bound and bin-index
// width in bits (SZ's "quantization intervals"). binBits must be in [2, 16].
func New(bound float64, binBits int) (Codec, error) {
	if !(bound > 0) || math.IsInf(bound, 1) {
		return Codec{}, fmt.Errorf("szlike: invalid bound %g", bound)
	}
	if binBits < 2 || binBits > 16 {
		return Codec{}, fmt.Errorf("szlike: binBits %d out of range [2,16]", binBits)
	}
	bins := 1<<uint(binBits) - 1 // odd
	return Codec{bound: bound, binBits: binBits, bins: bins}, nil
}

// MustNew is New that panics on error.
func MustNew(bound float64, binBits int) Codec {
	c, err := New(bound, binBits)
	if err != nil {
		panic(err)
	}
	return c
}

// Bound returns the absolute error bound.
func (c Codec) Bound() float64 { return c.bound }

// predict returns the two-predictor estimate given the last two
// reconstructed values; n is how many reconstructed values exist.
func predict(prev1, prev2 float64, n int) float64 {
	switch {
	case n >= 2:
		return 2*prev1 - prev2 // linear extrapolation
	case n == 1:
		return prev1 // preceding value
	default:
		return 0
	}
}

// Compress encodes src into w.
func (c Codec) Compress(w *bitio.Writer, src []float32) {
	mid := (c.bins - 1) / 2
	var prev1, prev2 float64
	for i, v := range src {
		pred := predict(prev1, prev2, i)
		residual := float64(v) - pred
		bin := int(math.Floor(residual/(2*c.bound) + 0.5))
		recon := pred + float64(bin)*2*c.bound
		if bin >= -mid && bin <= mid &&
			math.Abs(recon-float64(v)) <= c.bound &&
			!math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
			w.WriteBit(0)
			w.WriteBits(uint64(bin+mid), c.binBits)
			prev2, prev1 = prev1, recon
		} else {
			w.WriteBit(1)
			w.WriteBits(uint64(math.Float32bits(v)), 32)
			prev2, prev1 = prev1, float64(v)
		}
	}
}

// Decompress decodes len(dst) values from r.
func (c Codec) Decompress(r *bitio.Reader, dst []float32) error {
	mid := (c.bins - 1) / 2
	var prev1, prev2 float64
	for i := range dst {
		flag, err := r.ReadBit()
		if err != nil {
			return fmt.Errorf("szlike: value %d flag: %w", i, err)
		}
		if flag == 0 {
			raw, err := r.ReadBits(c.binBits)
			if err != nil {
				return fmt.Errorf("szlike: value %d bin: %w", i, err)
			}
			bin := int(raw) - mid
			recon := predict(prev1, prev2, i) + float64(bin)*2*c.bound
			dst[i] = float32(recon)
			prev2, prev1 = prev1, recon
		} else {
			raw, err := r.ReadBits(32)
			if err != nil {
				return fmt.Errorf("szlike: value %d raw: %w", i, err)
			}
			dst[i] = math.Float32frombits(uint32(raw))
			prev2, prev1 = prev1, float64(dst[i])
		}
	}
	return nil
}

// CompressedBits returns the exact encoded size of src in bits.
func (c Codec) CompressedBits(src []float32) int64 {
	w := bitio.NewWriter(len(src)) // heuristic capacity
	c.Compress(w, src)
	return int64(w.Len())
}

// Ratio returns the compression ratio of src.
func (c Codec) Ratio(src []float32) float64 {
	if len(src) == 0 {
		return 0
	}
	return float64(32*int64(len(src))) / float64(c.CompressedBits(src))
}
