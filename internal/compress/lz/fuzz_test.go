package lz

import (
	"bytes"
	"testing"
)

// FuzzRoundtrip: Encode→Decode must be the identity for any input.
func FuzzRoundtrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("abcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 300))
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := Encode(nil, src)
		if len(enc) > MaxEncodedLen(len(src)) {
			t.Fatalf("encoded %d bytes > MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
		}
		dec, err := Decode(nil, enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("roundtrip mismatch: %d vs %d bytes", len(dec), len(src))
		}
	})
}

// FuzzDecodeArbitrary: the decoder must never panic on hostile input.
func FuzzDecodeArbitrary(f *testing.F) {
	f.Add([]byte{4, 0x01, 1, 4})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, src []byte) {
		// Errors are fine; panics are not (the test harness catches them).
		_, _ = Decode(nil, src)
	})
}
