package lz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := Encode(nil, src)
	dec, err := Decode(nil, enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("roundtrip mismatch: got %d bytes, want %d", len(dec), len(src))
	}
	return enc
}

func TestEmpty(t *testing.T) {
	enc := roundtrip(t, nil)
	if len(enc) != 1 {
		t.Errorf("empty encoding = %d bytes, want 1 (header only)", len(enc))
	}
}

func TestSmallInputs(t *testing.T) {
	roundtrip(t, []byte{0})
	roundtrip(t, []byte{1, 2, 3})
	roundtrip(t, []byte("abcd"))
	roundtrip(t, bytes.Repeat([]byte{7}, 5))
}

func TestHighlyRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 4096)
	enc := roundtrip(t, src)
	if ratio := float64(len(src)) / float64(len(enc)); ratio < 50 {
		t.Errorf("repetitive ratio = %g, expected > 50", ratio)
	}
}

func TestRunLengthOverlappingCopy(t *testing.T) {
	// Offset-1 copies force overlapping-copy handling in the decoder.
	src := bytes.Repeat([]byte{0xAA}, 10000)
	roundtrip(t, src)
}

func TestRandomBytesIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 64*1024)
	rng.Read(src)
	enc := roundtrip(t, src)
	if len(enc) < len(src) {
		t.Errorf("random data compressed from %d to %d; expected expansion", len(src), len(enc))
	}
	if len(enc) > MaxEncodedLen(len(src)) {
		t.Errorf("encoded %d bytes exceeds MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
	}
}

// TestGradientStreamRatioPoor reproduces the paper's Sec. III claim: float32
// gradient streams achieve only a poor (~1.5x or less) lossless ratio.
func TestGradientStreamRatioPoor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	floats := make([]byte, 0, 256*1024)
	for i := 0; i < 64*1024; i++ {
		v := float32(rng.NormFloat64() * 0.01)
		bits := math.Float32bits(v)
		floats = append(floats, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}
	r := Ratio(floats)
	if r > 2.0 {
		t.Errorf("gradient stream ratio = %g; the Snappy family should stay below ~2", r)
	}
	if r <= 0 {
		t.Errorf("ratio = %g", r)
	}
}

func TestTextCompresses(t *testing.T) {
	src := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 500)
	enc := roundtrip(t, src)
	if ratio := float64(len(src)) / float64(len(enc)); ratio < 3 {
		t.Errorf("text ratio = %g, expected > 3", ratio)
	}
}

func TestAppendToExistingDst(t *testing.T) {
	prefix := []byte("prefix")
	src := []byte("hello hello hello hello hello")
	enc := Encode(append([]byte(nil), prefix...), src)
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatal("Encode clobbered dst prefix")
	}
	dec, err := Decode(append([]byte(nil), prefix...), enc[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, append(append([]byte(nil), prefix...), src...)) {
		t.Fatal("Decode with prefixed dst mismatch")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                        // no header
		{10},                      // header says 10 bytes, no data
		{4, 0x02},                 // invalid tag
		{4, tagCopy, 0, 4},        // zero offset
		{4, tagCopy, 5, 4},        // offset before start
		{8, byte(3)<<2 | 0, 1, 2}, // literal longer than input
	}
	for i, c := range cases {
		if _, err := Decode(nil, c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(src []byte) bool {
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStructuredRoundtrip(t *testing.T) {
	// Structured input (repeated blocks with mutations) exercises the copy
	// path much harder than uniform random bytes.
	f := func(seed int64, blockLen uint8, nBlocks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		block := make([]byte, int(blockLen)+1)
		rng.Read(block)
		var src []byte
		for i := 0; i < int(nBlocks)+2; i++ {
			src = append(src, block...)
			if rng.Intn(3) == 0 && len(src) > 0 {
				src[rng.Intn(len(src))] ^= 0xFF
			}
		}
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeGradients(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 0, 256*1024)
	for i := 0; i < 64*1024; i++ {
		bits := math.Float32bits(float32(rng.NormFloat64() * 0.01))
		src = append(src, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}
	dst := make([]byte, 0, MaxEncodedLen(len(src)))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Encode(dst[:0], src)
	}
}

func BenchmarkDecodeGradients(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 0, 256*1024)
	for i := 0; i < 64*1024; i++ {
		bits := math.Float32bits(float32(rng.NormFloat64() * 0.01))
		src = append(src, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}
	enc := Encode(nil, src)
	dst := make([]byte, 0, len(src))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = Decode(dst[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}
