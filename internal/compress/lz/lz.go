// Package lz implements a fast byte-oriented LZ77 codec of the Snappy
// family, used as the software *lossless* compression baseline of the
// paper's Fig. 7. Like Snappy it favours speed over ratio: greedy matching
// against a small hash table, byte-aligned output, no entropy coding.
//
// The paper's observation — reproduced by the Fig. 7 experiment — is that
// float32 gradient streams are nearly incompressible for this codec family
// (ratio ≈ 1.5 at best) while still costing significant CPU time.
//
// Wire format:
//
//	uvarint  decompressed length
//	elements until exhausted:
//	  literal: tagByte = (n-1)<<2 | 0x00 for n in 1..64, followed by n bytes
//	           (longer literals are emitted as repeated elements)
//	  copy:    tagByte = 0x01, then uvarint offset (>=1), uvarint length (>=4)
package lz

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	tagLiteral = 0x00
	tagCopy    = 0x01

	minMatch    = 4
	maxLiteral  = 64
	hashBits    = 14
	hashShift   = 32 - hashBits
	maxTableLen = 1 << hashBits
)

// ErrCorrupt is returned by Decode for malformed input.
var ErrCorrupt = errors.New("lz: corrupt input")

func hash4(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> hashShift
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// MaxEncodedLen returns an upper bound on the size of Encode's output for
// an input of length n.
func MaxEncodedLen(n int) int {
	// Worst case: all literals, one tag byte per 64 bytes, plus the header.
	return n + n/maxLiteral + 1 + binary.MaxVarintLen64
}

// Encode compresses src, appending to dst (which may be nil).
func Encode(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}

	var table [maxTableLen]int32
	for i := range table {
		table[i] = -1
	}

	emitLiteral := func(lit []byte) {
		for len(lit) > 0 {
			n := len(lit)
			if n > maxLiteral {
				n = maxLiteral
			}
			dst = append(dst, byte(n-1)<<2|tagLiteral)
			dst = append(dst, lit[:n]...)
			lit = lit[n:]
		}
	}

	litStart := 0
	i := 0
	for i+minMatch <= len(src) {
		h := hash4(load32(src, i))
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || load32(src, int(cand)) != load32(src, i) {
			i++
			continue
		}
		// Extend the match.
		matchLen := minMatch
		for i+matchLen < len(src) && src[int(cand)+matchLen] == src[i+matchLen] {
			matchLen++
		}
		emitLiteral(src[litStart:i])
		dst = append(dst, tagCopy)
		dst = binary.AppendUvarint(dst, uint64(i-int(cand)))
		dst = binary.AppendUvarint(dst, uint64(matchLen))
		// Index a few positions inside the match to keep finding matches.
		end := i + matchLen
		for j := i + 1; j < end && j+minMatch <= len(src); j += 7 {
			table[hash4(load32(src, j))] = int32(j)
		}
		i = end
		litStart = i
	}
	emitLiteral(src[litStart:])
	return dst
}

// Decode decompresses src, appending to dst (which may be nil).
func Decode(dst, src []byte) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	src = src[n:]
	base := len(dst)
	for len(src) > 0 {
		tag := src[0]
		src = src[1:]
		switch tag & 0x03 {
		case tagLiteral:
			litLen := int(tag>>2) + 1
			if len(src) < litLen {
				return nil, fmt.Errorf("%w: literal of %d bytes, %d remain", ErrCorrupt, litLen, len(src))
			}
			dst = append(dst, src[:litLen]...)
			src = src[litLen:]
		case tagCopy:
			off, n1 := binary.Uvarint(src)
			if n1 <= 0 {
				return nil, ErrCorrupt
			}
			length, n2 := binary.Uvarint(src[n1:])
			if n2 <= 0 {
				return nil, ErrCorrupt
			}
			src = src[n1+n2:]
			pos := len(dst) - int(off)
			if off == 0 || pos < base || length < minMatch {
				return nil, fmt.Errorf("%w: copy offset %d length %d at %d", ErrCorrupt, off, length, len(dst))
			}
			// Byte-at-a-time: copies may overlap the output (RLE-style).
			for j := 0; j < int(length); j++ {
				dst = append(dst, dst[pos+j])
			}
		default:
			return nil, fmt.Errorf("%w: tag %#x", ErrCorrupt, tag)
		}
	}
	if len(dst)-base != int(want) {
		return nil, fmt.Errorf("%w: decoded %d bytes, header says %d", ErrCorrupt, len(dst)-base, want)
	}
	return dst, nil
}

// Ratio returns len(src)/len(Encode(src)) for convenience in experiments.
func Ratio(src []byte) float64 {
	if len(src) == 0 {
		return 0
	}
	return float64(len(src)) / float64(len(Encode(nil, src)))
}
