package truncate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inceptionn/internal/bitio"
)

func TestNewValidation(t *testing.T) {
	for _, d := range []int{0, 16, 22, 24, 31} {
		if _, err := New(d); err != nil {
			t.Errorf("New(%d): %v", d, err)
		}
	}
	for _, d := range []int{-1, 32, 100} {
		if _, err := New(d); err == nil {
			t.Errorf("New(%d): expected error", d)
		}
	}
}

func TestRatio(t *testing.T) {
	cases := map[int]float64{16: 2, 22: 3.2, 24: 4, 0: 1}
	for drop, want := range cases {
		if got := MustNew(drop).Ratio(); math.Abs(got-want) > 1e-9 {
			t.Errorf("drop=%d: Ratio = %g, want %g", drop, got, want)
		}
	}
}

func TestApplyZeroDropIsIdentity(t *testing.T) {
	c := MustNew(0)
	for _, v := range []float32{0, 1, -1, 0.333, 1e-20, -7e12} {
		if got := c.Apply(v); got != v {
			t.Errorf("Apply(%g) = %g with drop=0", v, got)
		}
	}
}

func TestApply16MantissaOnly(t *testing.T) {
	// 16b-T keeps sign, exponent and 7 mantissa bits: relative error < 2^-7.
	c := MustNew(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := float32(rng.NormFloat64())
		got := c.Apply(v)
		if v == 0 {
			continue
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel >= math.Ldexp(1, -7) {
			t.Fatalf("v=%g got=%g rel=%g", v, got, rel)
		}
	}
}

func TestApply24PerturbsExponent(t *testing.T) {
	// 24b-T zeroes the whole mantissa plus one exponent LSB: values whose
	// exponent LSB is set collapse to half (or less) of their magnitude —
	// the uncontrolled error the paper blames for accuracy collapse.
	c := MustNew(24)
	got := c.Apply(0.5) // 0.5 has biased exponent 126 (LSB=0): mantissa only
	if got != 0.5 {
		t.Errorf("Apply(0.5) = %g, want 0.5", got)
	}
	got = c.Apply(0.25) // biased exponent 125 (LSB=1): exponent is damaged
	if got == 0.25 {
		t.Errorf("Apply(0.25) = %g, expected exponent perturbation", got)
	}
	if got > 0.25 {
		t.Errorf("Apply(0.25) = %g, truncation must not increase magnitude", got)
	}
}

func TestApplyAllMatchesApply(t *testing.T) {
	c := MustNew(22)
	rng := rand.New(rand.NewSource(2))
	vs := make([]float32, 1000)
	want := make([]float32, 1000)
	for i := range vs {
		vs[i] = float32(rng.NormFloat64() * 0.1)
		want[i] = c.Apply(vs[i])
	}
	c.ApplyAll(vs)
	for i := range vs {
		if vs[i] != want[i] {
			t.Fatalf("index %d: ApplyAll %g != Apply %g", i, vs[i], want[i])
		}
	}
}

func TestPackRoundtrip(t *testing.T) {
	for _, drop := range []int{16, 22, 24} {
		c := MustNew(drop)
		rng := rand.New(rand.NewSource(int64(drop)))
		src := make([]float32, 257)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		w := bitio.NewWriter(4 * len(src))
		c.Compress(w, src)
		if int64(w.Len()) != c.CompressedBits(len(src)) {
			t.Errorf("drop=%d: %d bits, want %d", drop, w.Len(), c.CompressedBits(len(src)))
		}
		dst := make([]float32, len(src))
		if err := c.Decompress(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
			t.Fatalf("drop=%d: %v", drop, err)
		}
		for i := range src {
			if dst[i] != c.Apply(src[i]) {
				t.Fatalf("drop=%d index=%d: decompressed %g, Apply gives %g",
					drop, i, dst[i], c.Apply(src[i]))
			}
		}
	}
}

func TestQuickPackedEqualsApply(t *testing.T) {
	f := func(bits uint32, dropSeed uint8) bool {
		drop := int(dropSeed) % 32
		c := MustNew(drop)
		v := math.Float32frombits(bits)
		if math.IsNaN(float64(v)) {
			return true // NaN payloads are not value-comparable
		}
		w := bitio.NewWriter(4)
		c.Compress(w, []float32{v})
		dst := make([]float32, 1)
		if err := c.Decompress(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
			return false
		}
		return dst[0] == c.Apply(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressShortStream(t *testing.T) {
	c := MustNew(16)
	w := bitio.NewWriter(8)
	c.Compress(w, []float32{1, 2})
	dst := make([]float32, 3)
	if err := c.Decompress(bitio.NewReader(w.Bytes(), w.Len()), dst); err == nil {
		t.Fatal("expected error on short stream")
	}
}

func BenchmarkApplyAll(b *testing.B) {
	c := MustNew(16)
	vs := make([]float32, 64*1024)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(4 * len(vs)))
	for i := 0; i < b.N; i++ {
		c.ApplyAll(vs)
	}
}

func BenchmarkPack64K(b *testing.B) {
	c := MustNew(16)
	vs := make([]float32, 64*1024)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = float32(rng.NormFloat64())
	}
	w := bitio.NewWriter(4 * len(vs))
	b.SetBytes(int64(4 * len(vs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		c.Compress(w, vs)
	}
}
