// Package truncate implements the naïve lossy float32 compression baseline
// evaluated in the paper (Figs. 4 and 14): dropping x least-significant bits
// of the IEEE-754 bit pattern ("xb-T"). Truncating up to 23 bits removes
// mantissa precision; beyond that the exponent itself is perturbed, which
// the paper shows is catastrophic for accuracy ("24b-T").
package truncate

import (
	"fmt"
	"math"

	"inceptionn/internal/bitio"
)

// Codec truncates a fixed number of LSBs from each float32.
type Codec struct {
	drop int // LSBs removed
}

// New returns a Codec dropping drop LSBs; drop must be in [0, 31].
func New(drop int) (Codec, error) {
	if drop < 0 || drop > 31 {
		return Codec{}, fmt.Errorf("truncate: drop %d out of range [0,31]", drop)
	}
	return Codec{drop: drop}, nil
}

// MustNew is New that panics on invalid arguments.
func MustNew(drop int) Codec {
	c, err := New(drop)
	if err != nil {
		panic(err)
	}
	return c
}

// Drop returns the number of truncated LSBs.
func (c Codec) Drop() int { return c.drop }

// KeptBits returns the number of bits stored per value.
func (c Codec) KeptBits() int { return 32 - c.drop }

// Ratio returns the fixed compression ratio 32 / (32 - drop).
func (c Codec) Ratio() float64 { return 32 / float64(c.KeptBits()) }

// String implements fmt.Stringer, e.g. "16b-T".
func (c Codec) String() string { return fmt.Sprintf("%db-T", c.drop) }

// Apply returns v with the configured LSBs zeroed. This is the value a
// receiver reconstructs; it is used directly by the accuracy experiments.
func (c Codec) Apply(v float32) float32 {
	return bitsToFloat(floatToBits(v) &^ (1<<uint(c.drop) - 1))
}

// ApplyAll truncates every element of vs in place.
func (c Codec) ApplyAll(vs []float32) {
	mask := ^uint32(1<<uint(c.drop) - 1)
	for i, v := range vs {
		vs[i] = bitsToFloat(floatToBits(v) & mask)
	}
}

// Compress packs the kept MSBs of every value of src into w.
func (c Codec) Compress(w *bitio.Writer, src []float32) {
	kept := c.KeptBits()
	for _, v := range src {
		w.WriteBits(uint64(floatToBits(v)>>uint(c.drop)), kept)
	}
}

// Decompress unpacks len(dst) values from r.
func (c Codec) Decompress(r *bitio.Reader, dst []float32) error {
	kept := c.KeptBits()
	for i := range dst {
		bits, err := r.ReadBits(kept)
		if err != nil {
			return fmt.Errorf("truncate: value %d: %w", i, err)
		}
		dst[i] = bitsToFloat(uint32(bits) << uint(c.drop))
	}
	return nil
}

// CompressedBits returns the exact packed size of n values in bits.
func (c Codec) CompressedBits(n int) int64 { return int64(n) * int64(c.KeptBits()) }

func floatToBits(f float32) uint32 { return math.Float32bits(f) }

func bitsToFloat(b uint32) float32 { return math.Float32frombits(b) }
