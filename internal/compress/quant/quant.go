// Package quant implements the algorithmic gradient-quantization baselines
// the paper cites as related work (Sec. IX): QSGD (Alistarh et al., NIPS
// 2017) and TernGrad (Wen et al., NIPS 2017). They are *software-level*
// gradient reduction techniques — useful comparison points for the
// INCEPTIONN codec's ratio/accuracy trade-off and for the ablation benches.
package quant

import (
	"fmt"
	"math"
	"math/rand"

	"inceptionn/internal/bitio"
)

// QSGD performs stochastic uniform quantization with s levels per sign,
// scaled by the L2 norm of the vector. Quantization is unbiased:
// E[Dequantize(Quantize(v))] = v.
type QSGD struct {
	levels int
}

// NewQSGD returns a QSGD quantizer with s levels; s must be in [1, 255].
func NewQSGD(s int) (QSGD, error) {
	if s < 1 || s > 255 {
		return QSGD{}, fmt.Errorf("quant: QSGD levels %d out of range [1,255]", s)
	}
	return QSGD{levels: s}, nil
}

// MustQSGD is NewQSGD that panics on error.
func MustQSGD(s int) QSGD {
	q, err := NewQSGD(s)
	if err != nil {
		panic(err)
	}
	return q
}

// Levels returns the number of quantization levels per sign.
func (q QSGD) Levels() int { return q.levels }

// levelBits is the per-element payload: 1 sign bit + ceil(log2(levels+1)).
func (q QSGD) levelBits() int {
	return 1 + bitsFor(q.levels)
}

func bitsFor(n int) int {
	b := 0
	for 1<<uint(b) <= n {
		b++
	}
	return b
}

// Quantize encodes src into w: a 32-bit L2 norm followed by per-element
// sign and stochastic level. rng supplies the randomness (deterministic
// tests pass a seeded source).
func (q QSGD) Quantize(w *bitio.Writer, src []float32, rng *rand.Rand) {
	var norm float64
	for _, v := range src {
		norm += float64(v) * float64(v)
	}
	norm = math.Sqrt(norm)
	w.WriteBits(uint64(math.Float32bits(float32(norm))), 32)
	if norm == 0 {
		// All elements are zero; sign/level bits still keep the decoder in
		// lockstep but decode to zero.
		norm = 1
	}
	lb := bitsFor(q.levels)
	s := float64(q.levels)
	for _, v := range src {
		sign := uint64(0)
		if math.Signbit(float64(v)) {
			sign = 1
		}
		x := math.Abs(float64(v)) / norm * s // in [0, s]
		lo := math.Floor(x)
		level := lo
		if rng.Float64() < x-lo {
			level = lo + 1
		}
		if level > s {
			level = s
		}
		w.WriteBit(uint(sign))
		w.WriteBits(uint64(level), lb)
	}
}

// Dequantize decodes len(dst) values from r.
func (q QSGD) Dequantize(r *bitio.Reader, dst []float32) error {
	raw, err := r.ReadBits(32)
	if err != nil {
		return fmt.Errorf("quant: QSGD norm: %w", err)
	}
	norm := float64(math.Float32frombits(uint32(raw)))
	lb := bitsFor(q.levels)
	s := float64(q.levels)
	for i := range dst {
		sign, err := r.ReadBit()
		if err != nil {
			return fmt.Errorf("quant: QSGD element %d sign: %w", i, err)
		}
		lvl, err := r.ReadBits(lb)
		if err != nil {
			return fmt.Errorf("quant: QSGD element %d level: %w", i, err)
		}
		v := norm * float64(lvl) / s
		if sign == 1 {
			v = -v
		}
		dst[i] = float32(v)
	}
	return nil
}

// CompressedBits returns the encoded size of n elements in bits.
func (q QSGD) CompressedBits(n int) int64 {
	return 32 + int64(n)*int64(q.levelBits())
}

// Ratio returns the fixed compression ratio for n elements.
func (q QSGD) Ratio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(32*int64(n)) / float64(q.CompressedBits(n))
}

// TernGrad quantizes each element stochastically to {-1, 0, +1} scaled by
// the max magnitude of the vector. Encoding costs 2 bits per element plus a
// 32-bit scale. Quantization is unbiased.
type TernGrad struct{}

// Quantize encodes src into w.
func (TernGrad) Quantize(w *bitio.Writer, src []float32, rng *rand.Rand) {
	var scale float64
	for _, v := range src {
		if a := math.Abs(float64(v)); a > scale {
			scale = a
		}
	}
	w.WriteBits(uint64(math.Float32bits(float32(scale))), 32)
	div := scale
	if div == 0 {
		div = 1
	}
	for _, v := range src {
		var code uint64 // 0b00 zero, 0b01 +1, 0b11 -1
		p := math.Abs(float64(v)) / div
		if rng.Float64() < p {
			if math.Signbit(float64(v)) {
				code = 0b11
			} else {
				code = 0b01
			}
		}
		w.WriteBits(code, 2)
	}
}

// Dequantize decodes len(dst) values from r.
func (TernGrad) Dequantize(r *bitio.Reader, dst []float32) error {
	raw, err := r.ReadBits(32)
	if err != nil {
		return fmt.Errorf("quant: TernGrad scale: %w", err)
	}
	scale := float64(math.Float32frombits(uint32(raw)))
	for i := range dst {
		code, err := r.ReadBits(2)
		if err != nil {
			return fmt.Errorf("quant: TernGrad element %d: %w", i, err)
		}
		switch code {
		case 0b01:
			dst[i] = float32(scale)
		case 0b11:
			dst[i] = float32(-scale)
		default:
			dst[i] = 0
		}
	}
	return nil
}

// CompressedBits returns the encoded size of n elements in bits.
func (TernGrad) CompressedBits(n int) int64 { return 32 + 2*int64(n) }

// Ratio returns the fixed compression ratio for n elements.
func (TernGrad) Ratio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(32*int64(n)) / float64(TernGrad{}.CompressedBits(n))
}
