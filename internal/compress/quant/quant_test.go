package quant

import (
	"math"
	"math/rand"
	"testing"

	"inceptionn/internal/bitio"
)

func TestQSGDValidation(t *testing.T) {
	for _, s := range []int{1, 4, 255} {
		if _, err := NewQSGD(s); err != nil {
			t.Errorf("NewQSGD(%d): %v", s, err)
		}
	}
	for _, s := range []int{0, -1, 256} {
		if _, err := NewQSGD(s); err == nil {
			t.Errorf("NewQSGD(%d): expected error", s)
		}
	}
}

func TestQSGDRoundtripShape(t *testing.T) {
	q := MustQSGD(4)
	rng := rand.New(rand.NewSource(1))
	src := []float32{0.5, -0.25, 0, 1.5, -0.001, 0.9}
	w := bitio.NewWriter(64)
	q.Quantize(w, src, rng)
	if int64(w.Len()) != q.CompressedBits(len(src)) {
		t.Fatalf("wrote %d bits, want %d", w.Len(), q.CompressedBits(len(src)))
	}
	dst := make([]float32, len(src))
	if err := q.Dequantize(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
		t.Fatal(err)
	}
	var norm float64
	for _, v := range src {
		norm += float64(v) * float64(v)
	}
	norm = math.Sqrt(norm)
	for i := range dst {
		if math.Abs(float64(dst[i])) > norm+1e-6 {
			t.Errorf("element %d: |%g| exceeds norm %g", i, dst[i], norm)
		}
		if src[i] == 0 && dst[i] != 0 {
			// A zero element has x=0 so the stochastic level is always 0.
			t.Errorf("element %d: zero input decoded to %g", i, dst[i])
		}
		if dst[i] != 0 && math.Signbit(float64(dst[i])) != math.Signbit(float64(src[i])) {
			t.Errorf("element %d: sign flip %g -> %g", i, src[i], dst[i])
		}
	}
}

func TestQSGDUnbiased(t *testing.T) {
	// Average many independent quantizations: the mean must approach the
	// input (QSGD's defining property).
	q := MustQSGD(4)
	rng := rand.New(rand.NewSource(2))
	src := []float32{0.3, -0.7, 0.05, 0.0, -0.11}
	const trials = 20000
	sum := make([]float64, len(src))
	dst := make([]float32, len(src))
	w := bitio.NewWriter(64)
	for trial := 0; trial < trials; trial++ {
		w.Reset()
		q.Quantize(w, src, rng)
		if err := q.Dequantize(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			sum[i] += float64(v)
		}
	}
	for i := range src {
		mean := sum[i] / trials
		if math.Abs(mean-float64(src[i])) > 0.01 {
			t.Errorf("element %d: mean %g, want %g", i, mean, src[i])
		}
	}
}

func TestQSGDAllZeros(t *testing.T) {
	q := MustQSGD(8)
	rng := rand.New(rand.NewSource(3))
	src := make([]float32, 16)
	w := bitio.NewWriter(16)
	q.Quantize(w, src, rng)
	dst := make([]float32, 16)
	if err := q.Dequantize(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 0 {
			t.Errorf("element %d = %g, want 0", i, v)
		}
	}
}

func TestQSGDRatio(t *testing.T) {
	// s=1: 1 sign + 1 level bit = 2 bits/elem -> ratio near 16 for large n.
	q := MustQSGD(1)
	if r := q.Ratio(100000); math.Abs(r-16) > 0.1 {
		t.Errorf("QSGD(1) ratio = %g, want ~16", r)
	}
	if r := q.Ratio(0); r != 0 {
		t.Errorf("Ratio(0) = %g", r)
	}
}

func TestTernGradRoundtripValues(t *testing.T) {
	var tg TernGrad
	rng := rand.New(rand.NewSource(4))
	src := []float32{0.9, -0.9, 0.0, 0.45, -0.1}
	w := bitio.NewWriter(16)
	tg.Quantize(w, src, rng)
	if int64(w.Len()) != tg.CompressedBits(len(src)) {
		t.Fatalf("wrote %d bits, want %d", w.Len(), tg.CompressedBits(len(src)))
	}
	dst := make([]float32, len(src))
	if err := tg.Dequantize(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		a := math.Abs(float64(v))
		if a != 0 && math.Abs(a-0.9) > 1e-6 {
			t.Errorf("element %d = %g: magnitude must be 0 or scale 0.9", i, v)
		}
		if v != 0 && math.Signbit(float64(v)) != math.Signbit(float64(src[i])) {
			t.Errorf("element %d: sign flip %g -> %g", i, src[i], v)
		}
	}
	if dst[2] != 0 {
		t.Errorf("zero element decoded to %g", dst[2])
	}
}

func TestTernGradUnbiased(t *testing.T) {
	var tg TernGrad
	rng := rand.New(rand.NewSource(5))
	src := []float32{0.6, -0.2, 0.05}
	const trials = 20000
	sum := make([]float64, len(src))
	dst := make([]float32, len(src))
	w := bitio.NewWriter(8)
	for trial := 0; trial < trials; trial++ {
		w.Reset()
		tg.Quantize(w, src, rng)
		if err := tg.Dequantize(bitio.NewReader(w.Bytes(), w.Len()), dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			sum[i] += float64(v)
		}
	}
	for i := range src {
		mean := sum[i] / trials
		if math.Abs(mean-float64(src[i])) > 0.015 {
			t.Errorf("element %d: mean %g, want %g", i, mean, src[i])
		}
	}
}

func TestTernGradRatio(t *testing.T) {
	var tg TernGrad
	if r := tg.Ratio(1000000); math.Abs(r-16) > 0.01 {
		t.Errorf("TernGrad ratio = %g, want ~16", r)
	}
}

func TestDequantizeShortStream(t *testing.T) {
	q := MustQSGD(4)
	dst := make([]float32, 4)
	if err := q.Dequantize(bitio.NewReader([]byte{1, 2}, -1), dst); err == nil {
		t.Error("QSGD: expected error on short stream")
	}
	var tg TernGrad
	if err := tg.Dequantize(bitio.NewReader([]byte{1, 2}, -1), dst); err == nil {
		t.Error("TernGrad: expected error on short stream")
	}
}

func BenchmarkQSGDQuantize(b *testing.B) {
	q := MustQSGD(4)
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 64*1024)
	for i := range src {
		src[i] = float32(rng.NormFloat64() * 0.01)
	}
	w := bitio.NewWriter(4 * len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		q.Quantize(w, src, rng)
	}
}
