// Package opt implements the optimizer used by every training workload in
// the paper's Table I: stochastic gradient descent with momentum, weight
// decay, and a step learning-rate schedule (LR divided by a constant every
// fixed number of iterations).
package opt

import (
	"fmt"
	"math"

	"inceptionn/internal/nn"
	"inceptionn/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum:
//
//	v ← momentum·v − lr·(g + weightDecay·w)
//	w ← w + v
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	// ClipNorm, when positive, rescales the global gradient so its L2 norm
	// never exceeds this value before the update (the standard stabilizer
	// for large effective batches and for sparsified/stale gradients).
	ClipNorm float64

	velocity map[*nn.Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{
		LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*nn.Param]*tensor.Tensor),
	}
}

// Step applies one update to every parameter using its accumulated
// gradient.
func (s *SGD) Step(params []*nn.Param) {
	if s.ClipNorm > 0 {
		var sq float64
		for _, p := range params {
			for _, g := range p.G.Data {
				sq += float64(g) * float64(g)
			}
		}
		if norm := math.Sqrt(sq); norm > s.ClipNorm {
			scale := float32(s.ClipNorm / norm)
			for _, p := range params {
				p.G.Scale(scale)
			}
		}
	}
	lr := float32(s.LR)
	mom := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = tensor.New(p.W.Shape...)
			s.velocity[p] = v
		}
		decay := wd
		if !p.Decay {
			decay = 0
		}
		for i := range v.Data {
			g := p.G.Data[i] + decay*p.W.Data[i]
			v.Data[i] = mom*v.Data[i] - lr*g
			p.W.Data[i] += v.Data[i]
		}
	}
}

// VelocityVector appends the flattened momentum state, in parameter
// order, to dst — zeros for parameters that have never been stepped. The
// vector round-trips through SetVelocityVector, which is how elastic
// checkpoints capture and restore optimizer state (the velocity is
// identical across replicas, like the weights).
func (s *SGD) VelocityVector(params []*nn.Param, dst []float32) []float32 {
	for _, p := range params {
		if v := s.velocity[p]; v != nil {
			dst = append(dst, v.Data...)
		} else {
			dst = append(dst, make([]float32, p.W.Len())...)
		}
	}
	return dst
}

// SetVelocityVector scatters a flat momentum vector (as produced by
// VelocityVector) back into the optimizer state, allocating velocity
// tensors for parameters that have none yet.
func (s *SGD) SetVelocityVector(params []*nn.Param, src []float32) error {
	total := 0
	for _, p := range params {
		total += p.W.Len()
	}
	if len(src) != total {
		return fmt.Errorf("opt: velocity vector has %d values, model has %d", len(src), total)
	}
	if s.velocity == nil {
		s.velocity = make(map[*nn.Param]*tensor.Tensor)
	}
	off := 0
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = tensor.New(p.W.Shape...)
			s.velocity[p] = v
		}
		copy(v.Data, src[off:off+p.W.Len()])
		off += p.W.Len()
	}
	return nil
}

// StepSchedule divides the learning rate by Factor every Every iterations,
// matching the paper's "LR reduction" hyperparameters (Table I), with an
// optional linear warmup ramp (Goyal et al.'s large-batch recipe, used by
// the gradient-compression literature the paper cites).
type StepSchedule struct {
	Base   float64
	Factor float64 // divisor, e.g. 10
	Every  int     // iterations between reductions
	Warmup int     // iterations of linear ramp from Base/Warmup to Base
}

// At returns the learning rate for iteration it (0-based).
func (s StepSchedule) At(it int) float64 {
	if s.Warmup > 0 && it < s.Warmup {
		return s.Base * float64(it+1) / float64(s.Warmup)
	}
	if s.Every <= 0 || s.Factor <= 0 {
		return s.Base
	}
	lr := s.Base
	for n := it / s.Every; n > 0; n-- {
		lr /= s.Factor
	}
	return lr
}

// String implements fmt.Stringer.
func (s StepSchedule) String() string {
	return fmt.Sprintf("lr=%g /%g every %d iters", s.Base, s.Factor, s.Every)
}
