package opt

import (
	"math"
	"math/rand"
	"testing"

	"inceptionn/internal/nn"
	"inceptionn/internal/tensor"
)

func TestSGDPlainStep(t *testing.T) {
	p := &nn.Param{
		W:     tensor.FromSlice([]float32{1, 2}, 2),
		G:     tensor.FromSlice([]float32{0.5, -0.5}, 2),
		Decay: true,
	}
	s := NewSGD(0.1, 0, 0)
	s.Step([]*nn.Param{p})
	if math.Abs(float64(p.W.Data[0])-0.95) > 1e-6 || math.Abs(float64(p.W.Data[1])-2.05) > 1e-6 {
		t.Fatalf("weights after step: %v", p.W.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := &nn.Param{
		W: tensor.FromSlice([]float32{0}, 1),
		G: tensor.FromSlice([]float32{1}, 1),
	}
	s := NewSGD(0.1, 0.9, 0)
	s.Step([]*nn.Param{p}) // v=-0.1, w=-0.1
	s.Step([]*nn.Param{p}) // v=-0.19, w=-0.29
	if math.Abs(float64(p.W.Data[0])+0.29) > 1e-6 {
		t.Fatalf("w after two momentum steps = %g, want -0.29", p.W.Data[0])
	}
}

func TestWeightDecayOnlyOnDecayParams(t *testing.T) {
	w := &nn.Param{W: tensor.FromSlice([]float32{1}, 1), G: tensor.New(1), Decay: true}
	b := &nn.Param{W: tensor.FromSlice([]float32{1}, 1), G: tensor.New(1), Decay: false}
	s := NewSGD(0.1, 0, 0.5)
	s.Step([]*nn.Param{w, b})
	if math.Abs(float64(w.W.Data[0])-0.95) > 1e-6 {
		t.Errorf("decayed weight = %g, want 0.95", w.W.Data[0])
	}
	if b.W.Data[0] != 1 {
		t.Errorf("bias = %g, decay must not apply", b.W.Data[0])
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = 0.5*(w-3)²; gradient w-3.
	p := &nn.Param{W: tensor.FromSlice([]float32{0}, 1), G: tensor.New(1)}
	s := NewSGD(0.1, 0.9, 0)
	for i := 0; i < 200; i++ {
		p.G.Data[0] = p.W.Data[0] - 3
		s.Step([]*nn.Param{p})
	}
	if math.Abs(float64(p.W.Data[0])-3) > 1e-3 {
		t.Fatalf("converged to %g, want 3", p.W.Data[0])
	}
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule{Base: 0.01, Factor: 10, Every: 1000}
	cases := map[int]float64{0: 0.01, 999: 0.01, 1000: 0.001, 2500: 0.0001}
	for it, want := range cases {
		if got := s.At(it); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%d) = %g, want %g", it, got, want)
		}
	}
}

func TestStepScheduleDegenerate(t *testing.T) {
	s := StepSchedule{Base: 0.1}
	if got := s.At(100000); got != 0.1 {
		t.Errorf("no-schedule At = %g", got)
	}
}

func TestSGDTrainsRealLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewNetwork(
		nn.NewDense("fc1", 2, 16, rng),
		nn.NewReLU(),
		nn.NewDense("fc2", 16, 2, rng),
	)
	x := tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	var sce nn.SoftmaxCrossEntropy
	sched := StepSchedule{Base: 0.2, Factor: 10, Every: 1500}
	s := NewSGD(sched.Base, 0.9, 0)
	for it := 0; it < 2000; it++ {
		s.LR = sched.At(it)
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad := sce.Loss(logits, labels)
		net.Backward(grad)
		s.Step(net.Params())
	}
	if acc := nn.Accuracy(net.Forward(x, false), labels); acc != 1 {
		t.Fatalf("XOR accuracy with SGD+momentum = %g", acc)
	}
}

func TestGradientClipping(t *testing.T) {
	// Gradient [3, 4] has norm 5; clipped to norm 1 it becomes [0.6, 0.8].
	p := &nn.Param{
		W: tensor.FromSlice([]float32{0, 0}, 2),
		G: tensor.FromSlice([]float32{3, 4}, 2),
	}
	s := NewSGD(1, 0, 0)
	s.ClipNorm = 1
	s.Step([]*nn.Param{p})
	if math.Abs(float64(p.W.Data[0])+0.6) > 1e-6 || math.Abs(float64(p.W.Data[1])+0.8) > 1e-6 {
		t.Fatalf("clipped step gave %v, want [-0.6 -0.8]", p.W.Data)
	}
}

func TestClippingInactiveBelowThreshold(t *testing.T) {
	p := &nn.Param{
		W: tensor.FromSlice([]float32{0}, 1),
		G: tensor.FromSlice([]float32{0.5}, 1),
	}
	s := NewSGD(1, 0, 0)
	s.ClipNorm = 10
	s.Step([]*nn.Param{p})
	if p.W.Data[0] != -0.5 {
		t.Fatalf("clip modified a small gradient: %v", p.W.Data)
	}
}

func TestWarmupSchedule(t *testing.T) {
	s := StepSchedule{Base: 0.1, Factor: 10, Every: 100, Warmup: 10}
	if got := s.At(0); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("At(0) = %g, want 0.01", got)
	}
	if got := s.At(4); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("At(4) = %g, want 0.05", got)
	}
	if got := s.At(9); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("At(9) = %g, want 0.1 (ramp complete)", got)
	}
	if got := s.At(50); got != 0.1 {
		t.Errorf("At(50) = %g", got)
	}
	if got := s.At(150); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("At(150) = %g, want post-drop 0.01", got)
	}
}
