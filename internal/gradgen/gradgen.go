// Package gradgen synthesizes gradient value streams whose codec bitwidth
// distribution matches a prescribed Table III row. It is the substitution
// for the paper's full-size AlexNet/ResNet/VGG gradient dumps (which would
// require training those models on ImageNet): given the paper's published
// class fractions, the generator emits a stream that the codec classifies
// identically — so compression-ratio measurements on full-size models can
// be validated end to end through the real encoder rather than assumed.
package gradgen

import (
	"fmt"
	"math"
	"math/rand"

	"inceptionn/internal/fpcodec"
)

// ClassFractions are target probabilities for the four codec classes.
type ClassFractions struct {
	Zero, Small, Large, NoCompress float64 // 2-, 10-, 18-, 34-bit classes
}

// Normalize scales the fractions to sum to 1.
func (c ClassFractions) Normalize() ClassFractions {
	sum := c.Zero + c.Small + c.Large + c.NoCompress
	if sum <= 0 {
		return ClassFractions{Zero: 1}
	}
	return ClassFractions{
		Zero: c.Zero / sum, Small: c.Small / sum,
		Large: c.Large / sum, NoCompress: c.NoCompress / sum,
	}
}

// Generator draws values classified by the codec (at the configured bound)
// into each class with the prescribed probability. Within a class,
// magnitudes are log-uniform over the class's interval.
type Generator struct {
	Bound fpcodec.Bound
	Frac  ClassFractions

	rng *rand.Rand
}

// New returns a generator for the bound and fractions.
func New(bound fpcodec.Bound, frac ClassFractions, seed int64) *Generator {
	return &Generator{Bound: bound, Frac: frac.Normalize(), rng: rand.New(rand.NewSource(seed))}
}

// classIntervals returns the open magnitude intervals of the four classes
// under the generator's bound.
func (g *Generator) classIntervals() (zeroHi, smallHi float64) {
	e := g.Bound.Exp()
	s8 := e - 7
	if s8 < 0 {
		s8 = 0
	}
	return math.Ldexp(1, -e), math.Ldexp(1, -s8)
}

// logUniform draws from [lo, hi) with log-uniform density.
func (g *Generator) logUniform(lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + g.rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Next draws one value.
func (g *Generator) Next() float32 {
	zeroHi, smallHi := g.classIntervals()
	u := g.rng.Float64()
	var mag float64
	switch {
	case u < g.Frac.Zero:
		mag = g.logUniform(1e-12, zeroHi*0.999)
	case u < g.Frac.Zero+g.Frac.Small:
		mag = g.logUniform(zeroHi, smallHi*0.999)
	case u < g.Frac.Zero+g.Frac.Small+g.Frac.Large:
		if smallHi >= 1 {
			// Degenerate at coarse bounds (E ≤ 7): the 18-bit class is
			// structurally empty; fall back to the small class.
			mag = g.logUniform(zeroHi, 0.999)
		} else {
			mag = g.logUniform(smallHi, 0.999)
		}
	default:
		mag = g.logUniform(1, 4)
	}
	if g.rng.Intn(2) == 0 {
		mag = -mag
	}
	return float32(mag)
}

// Stream draws n values.
func (g *Generator) Stream(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Validate generates n values and reports the achieved class fractions and
// compression ratio, for closing the loop against the prescription.
func (g *Generator) Validate(n int) (got ClassFractions, ratio float64) {
	stream := g.Stream(n)
	var st fpcodec.TagStats
	st.Observe(stream, g.Bound)
	return ClassFractions{
		Zero:       st.Fraction(fpcodec.TagZero),
		Small:      st.Fraction(fpcodec.Tag8),
		Large:      st.Fraction(fpcodec.Tag16),
		NoCompress: st.Fraction(fpcodec.TagNone),
	}, fpcodec.Ratio(stream, g.Bound)
}

// FromTableIII builds a generator from a paper Table III row given as the
// four class fractions (already summing to ~1).
func FromTableIII(boundExp int, f2, f10, f18, f34 float64, seed int64) (*Generator, error) {
	bound, err := fpcodec.NewBound(boundExp)
	if err != nil {
		return nil, fmt.Errorf("gradgen: %w", err)
	}
	return New(bound, ClassFractions{Zero: f2, Small: f10, Large: f18, NoCompress: f34}, seed), nil
}
