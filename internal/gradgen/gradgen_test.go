package gradgen

import (
	"math"
	"testing"

	"inceptionn/internal/fpcodec"
	"inceptionn/internal/trainsim"
)

func TestNormalize(t *testing.T) {
	f := ClassFractions{Zero: 2, Small: 1, Large: 1, NoCompress: 0}.Normalize()
	if math.Abs(f.Zero-0.5) > 1e-12 || math.Abs(f.Small-0.25) > 1e-12 {
		t.Fatalf("normalized %+v", f)
	}
	degenerate := ClassFractions{}.Normalize()
	if degenerate.Zero != 1 {
		t.Fatalf("degenerate %+v", degenerate)
	}
}

// TestGeneratorHitsPrescribedFractions: the codec must classify the
// generated stream with the prescribed probabilities.
func TestGeneratorHitsPrescribedFractions(t *testing.T) {
	want := ClassFractions{Zero: 0.749, Small: 0.039, Large: 0.211, NoCompress: 0.001}
	g := New(fpcodec.MustBound(10), want, 1)
	got, _ := g.Validate(300000)
	if math.Abs(got.Zero-want.Zero) > 0.01 ||
		math.Abs(got.Small-want.Small) > 0.01 ||
		math.Abs(got.Large-want.Large) > 0.01 ||
		math.Abs(got.NoCompress-want.NoCompress) > 0.005 {
		t.Fatalf("got %+v, want ~%+v", got, want)
	}
}

// TestFullSizeModelRatiosMatchPaper: generating streams from each paper
// Table III row and compressing them with the real codec must reproduce
// the row's implied compression ratio — the end-to-end validation of the
// Fig. 14 full-size entries.
func TestFullSizeModelRatiosMatchPaper(t *testing.T) {
	for name, rows := range trainsim.PaperTableIII {
		for e, row := range rows {
			g, err := FromTableIII(e, row.F2, row.F10, row.F18, row.F34, int64(e))
			if err != nil {
				t.Fatal(err)
			}
			_, ratio := g.Validate(200000)
			want := row.Ratio()
			if math.Abs(ratio-want)/want > 0.05 {
				t.Errorf("%s E=%d: measured ratio %.2f, Table III implies %.2f",
					name, e, ratio, want)
			}
		}
	}
}

func TestValuesRespectClassIntervals(t *testing.T) {
	bound := fpcodec.MustBound(10)
	g := New(bound, ClassFractions{Small: 1}, 2)
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if tag := fpcodec.TagOf(v, bound); tag != fpcodec.Tag8 {
			t.Fatalf("value %g classified %v, want Tag8", v, tag)
		}
	}
	g = New(bound, ClassFractions{NoCompress: 1}, 3)
	for i := 0; i < 1000; i++ {
		if tag := fpcodec.TagOf(g.Next(), bound); tag != fpcodec.TagNone {
			t.Fatal("NoCompress class leaked")
		}
	}
}

// TestCoarseBoundDegeneracy: at E=6 the 18-bit class cannot exist; the
// generator folds it into the 8-bit class instead of producing impossible
// values.
func TestCoarseBoundDegeneracy(t *testing.T) {
	bound := fpcodec.MustBound(6)
	g := New(bound, ClassFractions{Large: 1}, 4)
	for i := 0; i < 5000; i++ {
		if tag := fpcodec.TagOf(g.Next(), bound); tag == fpcodec.Tag16 {
			t.Fatal("Tag16 produced at E=6")
		}
	}
}

func TestFromTableIIIValidation(t *testing.T) {
	if _, err := FromTableIII(99, 1, 0, 0, 0, 1); err == nil {
		t.Fatal("expected error for invalid bound")
	}
}
