// Package data provides the procedural synthetic datasets that substitute
// for MNIST and ImageNet in this reproduction (both are unavailable
// offline; see DESIGN.md §1). Every sample is generated deterministically
// from (dataset seed, index), so datasets need no storage, are identical
// across simulated workers, and can be partitioned exactly like the
// paper's per-worker dataset shards Dᵢ.
package data

import (
	"math"
	"math/rand"

	"inceptionn/internal/tensor"
)

// Dataset is a deterministic, indexable supervised dataset.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Classes returns the number of target classes.
	Classes() int
	// FeatureLen returns the flattened feature size of one sample.
	FeatureLen() int
	// FeatureShape returns the per-sample tensor shape (excluding batch).
	FeatureShape() []int
	// Sample writes sample i's features into x (length FeatureLen) and
	// returns its label.
	Sample(i int, x []float32) int
}

// Batch is a minibatch of samples.
type Batch struct {
	X      *tensor.Tensor
	Labels []int
}

// MakeBatch materializes the given sample indices into a batch.
func MakeBatch(ds Dataset, indices []int) Batch {
	shape := append([]int{len(indices)}, ds.FeatureShape()...)
	x := tensor.New(shape...)
	labels := make([]int, len(indices))
	fl := ds.FeatureLen()
	for bi, idx := range indices {
		labels[bi] = ds.Sample(idx, x.Data[bi*fl:(bi+1)*fl])
	}
	return Batch{X: x, Labels: labels}
}

// Loader draws random minibatches from a dataset.
type Loader struct {
	ds    Dataset
	batch int
	rng   *rand.Rand
}

// NewLoader constructs a loader with the given batch size, driven by rng.
func NewLoader(ds Dataset, batch int, rng *rand.Rand) *Loader {
	return &Loader{ds: ds, batch: batch, rng: rng}
}

// Next returns the next random minibatch (sampling with replacement, the
// standard stochastic-gradient regime).
func (l *Loader) Next() Batch {
	indices := make([]int, l.batch)
	for i := range indices {
		indices[i] = l.rng.Intn(l.ds.Len())
	}
	return MakeBatch(l.ds, indices)
}

// Partition is a contiguous 1/n shard of a dataset, the paper's per-worker
// partial dataset Dᵢ.
type Partition struct {
	Dataset
	start, length int
}

// NewPartition returns shard i of n over ds.
func NewPartition(ds Dataset, i, n int) *Partition {
	per := ds.Len() / n
	start := i * per
	length := per
	if i == n-1 {
		length = ds.Len() - start
	}
	return &Partition{Dataset: ds, start: start, length: length}
}

// Len implements Dataset.
func (p *Partition) Len() int { return p.length }

// Sample implements Dataset.
func (p *Partition) Sample(i int, x []float32) int {
	return p.Dataset.Sample(p.start+i, x)
}

// Digits is a procedural 28×28 handwritten-digit-like dataset (the MNIST
// substitute for the paper's HDC workload). Each digit is rendered from a
// seven-segment glyph with per-sample jitter: translation, per-segment
// intensity, stroke thickness variation, and pixel noise.
type Digits struct {
	N    int
	Seed int64
}

// NewDigits returns a digit dataset with n samples.
func NewDigits(n int, seed int64) *Digits { return &Digits{N: n, Seed: seed} }

// Len implements Dataset.
func (d *Digits) Len() int { return d.N }

// Classes implements Dataset.
func (d *Digits) Classes() int { return 10 }

// FeatureLen implements Dataset.
func (d *Digits) FeatureLen() int { return 28 * 28 }

// FeatureShape implements Dataset.
func (d *Digits) FeatureShape() []int { return []int{28 * 28} }

// segment bitmasks per digit for segments {top, tl, tr, mid, bl, br, bottom}.
var segDigit = [10]uint8{
	0b1110111, // 0: top tl tr bl br bottom
	0b0010010, // 1: tr br
	0b1011101, // 2: top tr mid bl bottom
	0b1011011, // 3: top tr mid br bottom
	0b0111010, // 4: tl tr mid br
	0b1101011, // 5: top tl mid br bottom
	0b1101111, // 6: top tl mid bl br bottom
	0b1010010, // 7: top tr br
	0b1111111, // 8: all
	0b1111011, // 9: top tl tr mid br bottom
}

// segment geometry on a 20×12 glyph box: {x0, y0, x1, y1}.
var segGeom = [7][4]int{
	{1, 0, 11, 1},    // top
	{0, 1, 1, 10},    // top-left
	{11, 1, 12, 10},  // top-right
	{1, 9, 11, 10},   // middle
	{0, 10, 1, 19},   // bottom-left
	{11, 10, 12, 19}, // bottom-right
	{1, 19, 11, 20},  // bottom
}

// Sample implements Dataset.
func (d *Digits) Sample(i int, x []float32) int {
	rng := rand.New(rand.NewSource(d.Seed*1_000_003 + int64(i)))
	label := rng.Intn(10)
	for j := range x {
		x[j] = 0
	}
	// Random placement of the 12×20 glyph box inside 28×28.
	offX := 6 + rng.Intn(5) // 6..10
	offY := 3 + rng.Intn(3) // 3..5
	thick := rng.Intn(2)    // stroke dilation
	mask := segDigit[label]
	for s := 0; s < 7; s++ {
		if mask>>(6-s)&1 == 0 {
			continue
		}
		intensity := 0.7 + 0.3*rng.Float64()
		g := segGeom[s]
		for yy := g[1] - thick; yy <= g[3]+thick; yy++ {
			for xx := g[0] - thick; xx <= g[2]+thick; xx++ {
				px, py := offX+xx, offY+yy
				if px < 0 || px >= 28 || py < 0 || py >= 28 {
					continue
				}
				v := float32(intensity)
				if x[py*28+px] < v {
					x[py*28+px] = v
				}
			}
		}
	}
	// Pixel noise.
	for j := range x {
		x[j] += float32(rng.NormFloat64() * 0.08)
		if x[j] < 0 {
			x[j] = 0
		}
		if x[j] > 1 {
			x[j] = 1
		}
	}
	return label
}

// Images is a procedural 3×32×32 10-class image dataset (the ImageNet
// substitute for the mini CNN workloads). Each class has a characteristic
// oriented grating frequency and per-channel color bias; samples add random
// phase and noise.
type Images struct {
	N    int
	Seed int64
}

// NewImages returns an image dataset with n samples.
func NewImages(n int, seed int64) *Images { return &Images{N: n, Seed: seed} }

// Len implements Dataset.
func (im *Images) Len() int { return im.N }

// Classes implements Dataset.
func (im *Images) Classes() int { return 10 }

// FeatureLen implements Dataset.
func (im *Images) FeatureLen() int { return 3 * 32 * 32 }

// FeatureShape implements Dataset.
func (im *Images) FeatureShape() []int { return []int{3, 32, 32} }

// Sample implements Dataset.
func (im *Images) Sample(i int, x []float32) int {
	rng := rand.New(rand.NewSource(im.Seed*1_000_003 + int64(i)))
	label := rng.Intn(10)
	angle := float64(label) * math.Pi / 10
	freq := 0.25 + 0.08*float64(label)
	phase := rng.Float64() * 2 * math.Pi
	cos, sin := math.Cos(angle), math.Sin(angle)
	colorBias := [3]float64{
		0.3 * math.Sin(float64(label)),
		0.3 * math.Cos(float64(2*label)),
		0.3 * math.Sin(float64(3*label)+1),
	}
	for c := 0; c < 3; c++ {
		for yy := 0; yy < 32; yy++ {
			for xx := 0; xx < 32; xx++ {
				u := cos*float64(xx) + sin*float64(yy)
				v := math.Sin(u*freq+phase)*0.5 + colorBias[c]
				v += rng.NormFloat64() * 0.15
				x[(c*32+yy)*32+xx] = float32(v)
			}
		}
	}
	return label
}
