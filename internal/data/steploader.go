package data

// StepLoader draws random minibatches like Loader but derives every batch
// from a counter instead of evolving math/rand state, so its entire
// position is one uint64 cursor: Seek(Cursor()) resumes the exact sample
// stream after a checkpoint restore or an elastic replay, which a
// rand.Rand source cannot do (its state is not serializable).
type StepLoader struct {
	ds    Dataset
	batch int
	seed  int64
	step  uint64
}

// NewStepLoader constructs a counter-based loader over ds.
func NewStepLoader(ds Dataset, batch int, seed int64) *StepLoader {
	return &StepLoader{ds: ds, batch: batch, seed: seed}
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix, so distinct (seed, step, slot) triples give independent
// draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Next returns the minibatch for the current cursor position and advances
// it (sampling with replacement, as Loader does).
func (l *StepLoader) Next() Batch {
	indices := make([]int, l.batch)
	base := splitmix64(uint64(l.seed) ^ 0xD1B54A32D192ED03)
	for i := range indices {
		h := splitmix64(base ^ splitmix64(l.step<<20|uint64(i)))
		indices[i] = int(h % uint64(l.ds.Len()))
	}
	l.step++
	return MakeBatch(l.ds, indices)
}

// Cursor returns the loader position (the number of batches drawn).
func (l *StepLoader) Cursor() uint64 { return l.step }

// Seek repositions the loader; Next will reproduce exactly the batch that
// followed the same cursor value in the original stream.
func (l *StepLoader) Seek(cursor uint64) { l.step = cursor }
