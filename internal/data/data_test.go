package data

import (
	"math/rand"
	"testing"
)

func TestDigitsDeterministic(t *testing.T) {
	d := NewDigits(100, 42)
	a := make([]float32, d.FeatureLen())
	b := make([]float32, d.FeatureLen())
	la := d.Sample(7, a)
	lb := d.Sample(7, b)
	if la != lb {
		t.Fatalf("labels differ: %d vs %d", la, lb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features differ between identical calls")
		}
	}
}

func TestDigitsValueRangeAndLabels(t *testing.T) {
	d := NewDigits(500, 1)
	x := make([]float32, d.FeatureLen())
	seen := make(map[int]int)
	for i := 0; i < d.Len(); i++ {
		label := d.Sample(i, x)
		if label < 0 || label >= d.Classes() {
			t.Fatalf("label %d out of range", label)
		}
		seen[label]++
		for j, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("sample %d pixel %d = %g out of [0,1]", i, j, v)
			}
		}
	}
	for c := 0; c < 10; c++ {
		if seen[c] == 0 {
			t.Errorf("class %d never generated", c)
		}
	}
}

func TestDigitsGlyphsAreDistinct(t *testing.T) {
	// The mean image of class a must differ substantially from class b:
	// otherwise the task is unlearnable.
	d := NewDigits(4000, 3)
	mean := make([][]float64, 10)
	count := make([]int, 10)
	for c := range mean {
		mean[c] = make([]float64, d.FeatureLen())
	}
	x := make([]float32, d.FeatureLen())
	for i := 0; i < d.Len(); i++ {
		label := d.Sample(i, x)
		for j, v := range x {
			mean[label][j] += float64(v)
		}
		count[label]++
	}
	for c := range mean {
		for j := range mean[c] {
			mean[c][j] /= float64(count[c])
		}
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	if d01 := dist(mean[1], mean[8]); d01 < 1 {
		t.Errorf("classes 1 and 8 nearly identical: dist=%g", d01)
	}
	if d25 := dist(mean[2], mean[5]); d25 < 0.1 {
		t.Errorf("classes 2 and 5 nearly identical: dist=%g", d25)
	}
}

func TestImagesDeterministicAndLabeled(t *testing.T) {
	im := NewImages(200, 9)
	a := make([]float32, im.FeatureLen())
	b := make([]float32, im.FeatureLen())
	if im.Sample(3, a) != im.Sample(3, b) {
		t.Fatal("labels differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features differ")
		}
	}
	if im.FeatureLen() != 3*32*32 {
		t.Fatalf("FeatureLen = %d", im.FeatureLen())
	}
}

func TestMakeBatchShapes(t *testing.T) {
	im := NewImages(100, 1)
	b := MakeBatch(im, []int{0, 5, 9})
	if b.X.Shape[0] != 3 || b.X.Shape[1] != 3 || b.X.Shape[2] != 32 || b.X.Shape[3] != 32 {
		t.Fatalf("batch shape %v", b.X.Shape)
	}
	if len(b.Labels) != 3 {
		t.Fatalf("labels %v", b.Labels)
	}
}

func TestLoaderBatches(t *testing.T) {
	d := NewDigits(50, 2)
	l := NewLoader(d, 8, rand.New(rand.NewSource(1)))
	b1 := l.Next()
	b2 := l.Next()
	if b1.X.Shape[0] != 8 || b2.X.Shape[0] != 8 {
		t.Fatal("wrong batch size")
	}
	// Random loader should (almost surely) differ between draws.
	same := true
	for i := range b1.X.Data {
		if b1.X.Data[i] != b2.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two random batches identical")
	}
}

func TestPartitionCoversDataset(t *testing.T) {
	d := NewDigits(103, 5)
	total := 0
	var first, last *Partition
	for i := 0; i < 4; i++ {
		p := NewPartition(d, i, 4)
		total += p.Len()
		if i == 0 {
			first = p
		}
		if i == 3 {
			last = p
		}
	}
	if total != d.Len() {
		t.Fatalf("partitions cover %d of %d", total, d.Len())
	}
	// Partition 0 sample 0 must equal dataset sample 0; last partition's
	// last sample must equal dataset's last sample.
	a := make([]float32, d.FeatureLen())
	b := make([]float32, d.FeatureLen())
	if first.Sample(0, a) != d.Sample(0, b) {
		t.Error("partition 0 misaligned")
	}
	if last.Sample(last.Len()-1, a) != d.Sample(d.Len()-1, b) {
		t.Error("last partition misaligned")
	}
}

func TestPartitionsDisjoint(t *testing.T) {
	d := NewDigits(100, 6)
	p0 := NewPartition(d, 0, 2)
	p1 := NewPartition(d, 1, 2)
	a := make([]float32, d.FeatureLen())
	b := make([]float32, d.FeatureLen())
	// Same local index in different shards maps to different global samples.
	p0.Sample(0, a)
	p1.Sample(0, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("shards overlap")
	}
}
