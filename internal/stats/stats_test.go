package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(-1, 1, 4) // bins: [-1,-.5) [-.5,0) [0,.5) [.5,1)
	h.Observe(-0.75)
	h.Observe(-0.25)
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(0.75)
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	want := []int64{1, 1, 2, 1}
	for i, w := range want {
		if h.Bins[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Bins[i], w)
		}
	}
	if f := h.Fraction(2); math.Abs(f-0.4) > 1e-12 {
		t.Errorf("Fraction(2) = %g", f)
	}
	if c := h.BinCenter(0); math.Abs(c+0.75) > 1e-12 {
		t.Errorf("BinCenter(0) = %g", c)
	}
	if mf := h.MaxFraction(); math.Abs(mf-0.4) > 1e-12 {
		t.Errorf("MaxFraction = %g", mf)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(-1, 1, 2)
	h.Observe(-5)
	h.Observe(5)
	if h.Bins[0] != 1 || h.Bins[1] != 1 {
		t.Fatalf("outliers not clamped: %v", h.Bins)
	}
}

func TestHistogramOutOfDomain(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(0.25)
	if h.OutOfDomain != 3 {
		t.Fatalf("OutOfDomain = %d, want 3", h.OutOfDomain)
	}
	if h.Total() != 1 {
		t.Fatalf("Total = %d, want 1 (non-finite values must not be binned)", h.Total())
	}
	var binned int64
	for _, b := range h.Bins {
		binned += b
	}
	if binned != 1 {
		t.Errorf("bins hold %d observations, want 1", binned)
	}
	if f := h.Fraction(2); f != 1 {
		t.Errorf("Fraction(2) = %g, want 1 (fractions must exclude out-of-domain mass)", f)
	}
	if s := h.String(); !strings.Contains(s, "nan/inf: 3") {
		t.Errorf("String() should report out-of-domain count:\n%s", s)
	}
	// A histogram with no out-of-domain mass must not mention it.
	h2 := NewHistogram(-1, 1, 2)
	h2.Observe(0)
	if strings.Contains(h2.String(), "nan/inf") {
		t.Error("String() mentions nan/inf with none observed")
	}
}

func TestHistogramFractionWithin(t *testing.T) {
	h := NewHistogram(-1, 1, 100)
	rng := rand.New(rand.NewSource(1))
	vs := make([]float32, 10000)
	for i := range vs {
		vs[i] = float32(rng.Float64()*2 - 1)
	}
	h.ObserveAll(vs)
	// Uniform over (-1,1): about half the mass lies in (-0.5, 0.5).
	if f := h.FractionWithin(-0.5, 0.5); math.Abs(f-0.5) > 0.05 {
		t.Errorf("FractionWithin(-0.5,0.5) = %g, want ~0.5", f)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(-1, 1, 3)
	h.Observe(0)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Error("String() contains no bars")
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 3 {
		t.Error("String() should have one line per bin")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe(v)
	}
	if s.N != 4 || s.MinV != 1 || s.MaxV != 4 {
		t.Fatalf("N=%d min=%g max=%g", s.N, s.MinV, s.MaxV)
	}
	if math.Abs(s.Mean()-2.5) > 1e-12 {
		t.Errorf("Mean = %g", s.Mean())
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(s.Std()-wantStd) > 1e-12 {
		t.Errorf("Std = %g, want %g", s.Std(), wantStd)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummaryNegativeMin(t *testing.T) {
	var s Summary
	s.ObserveAll([]float32{-3, 0.5})
	if s.MinV != -3 || s.MaxV != 0.5 {
		t.Errorf("min=%g max=%g", s.MinV, s.MaxV)
	}
}

// TestGradientShapedDistribution reproduces the Fig. 5 shape check: a
// tight-around-zero sample should put its peak bin at the center and keep
// all mass within (-1, 1).
func TestGradientShapedDistribution(t *testing.T) {
	h := NewHistogram(-1, 1, 41)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		h.Observe(rng.NormFloat64() * 0.05)
	}
	centerBin := 20 // bin containing 0
	if h.Fraction(centerBin) != h.MaxFraction() {
		t.Error("peak bin is not the center")
	}
	if f := h.FractionWithin(-0.3, 0.3); f < 0.99 {
		t.Errorf("mass within ±0.3 = %g", f)
	}
}
