// Package stats provides the histogram and summary statistics used by the
// gradient-distribution experiments (paper Fig. 5 and Table III).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts values into uniform bins over [Min, Max); finite
// values outside the range land in the edge bins (clamped), so mass is
// never silently dropped. NaN and ±Inf observations are counted
// separately in OutOfDomain: the bin-index arithmetic is undefined on
// them (float64→int conversion of NaN is platform-defined in Go), and
// attributing them to an edge bin would silently distort the
// distribution they most likely signal a bug in.
type Histogram struct {
	Min, Max float64
	Bins     []int64
	// OutOfDomain counts NaN/±Inf observations, excluded from Total and
	// every fraction.
	OutOfDomain int64
	total       int64
}

// NewHistogram returns a histogram with n uniform bins over [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if !(max > min) || n < 1 {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) with %d bins", min, max, n))
	}
	return &Histogram{Min: min, Max: max, Bins: make([]int64, n)}
}

// Observe adds one value. Non-finite values (NaN, ±Inf) go to
// OutOfDomain instead of a bin.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.OutOfDomain++
		return
	}
	idx := int(float64(len(h.Bins)) * (v - h.Min) / (h.Max - h.Min))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.total++
}

// ObserveAll adds every element of vs.
func (h *Histogram) ObserveAll(vs []float32) {
	for _, v := range vs {
		h.Observe(float64(v))
	}
}

// Total returns the number of binned observations (OutOfDomain values
// are excluded).
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns bin i's share of the total mass.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.total)
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Bins))
	return h.Min + (float64(i)+0.5)*w
}

// MaxFraction returns the largest single-bin share (the peak height of the
// paper's Fig. 5 plots).
func (h *Histogram) MaxFraction() float64 {
	var m int64
	for _, b := range h.Bins {
		if b > m {
			m = b
		}
	}
	if h.total == 0 {
		return 0
	}
	return float64(m) / float64(h.total)
}

// FractionWithin returns the share of observed mass in [lo, hi), computed
// from bins fully inside the interval (approximate at the edges).
func (h *Histogram) FractionWithin(lo, hi float64) float64 {
	if h.total == 0 {
		return 0
	}
	var count int64
	for i, b := range h.Bins {
		c := h.BinCenter(i)
		if c >= lo && c < hi {
			count += b
		}
	}
	return float64(count) / float64(h.total)
}

// String renders the histogram as ASCII rows (one per bin) with
// proportional bars, in the spirit of the paper's Fig. 5 panels.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxFrac := h.MaxFraction()
	for i := range h.Bins {
		frac := h.Fraction(i)
		bar := 0
		if maxFrac > 0 {
			bar = int(40 * frac / maxFrac)
		}
		fmt.Fprintf(&sb, "%+8.3f | %-40s %6.3f\n", h.BinCenter(i), strings.Repeat("#", bar), frac)
	}
	if h.OutOfDomain > 0 {
		fmt.Fprintf(&sb, "     nan/inf: %d observations out of domain\n", h.OutOfDomain)
	}
	return sb.String()
}

// Summary holds streaming moments and extrema of a value series.
type Summary struct {
	N     int64
	sum   float64
	sumSq float64
	MinV  float64
	MaxV  float64
}

// Observe adds one value.
func (s *Summary) Observe(v float64) {
	if s.N == 0 || v < s.MinV {
		s.MinV = v
	}
	if s.N == 0 || v > s.MaxV {
		s.MaxV = v
	}
	s.N++
	s.sum += v
	s.sumSq += v * v
}

// ObserveAll adds every element of vs.
func (s *Summary) ObserveAll(vs []float32) {
	for _, v := range vs {
		s.Observe(float64(v))
	}
}

// Mean returns the arithmetic mean (0 for empty summaries).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.sum / float64(s.N)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 {
	if s.N == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.N) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
