// Package async implements the asynchronous parameter-server training
// schemes the paper contrasts itself against in Sec. IX: fully
// asynchronous SGD (HogWild!/DistBelief-style — workers push gradients and
// pull weights with no coordination) and Stale Synchronous Parallel (SSP,
// Ho et al., NIPS 2013 — a worker may run at most `staleness` clock ticks
// ahead of the slowest worker).
//
// These schemes trade gradient staleness for the removal of the
// synchronous exchange; INCEPTIONN instead keeps training synchronous and
// removes the exchange's cost. The tests quantify the contrast: SSP with a
// tight bound converges like the synchronous baseline, while large
// staleness degrades accuracy — the "stale gradient" problem the paper
// cites.
package async

import (
	"fmt"
	"math/rand"
	"sync"

	"inceptionn/internal/data"
	"inceptionn/internal/nn"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
)

// Server is the central parameter server: it owns the master weights and
// optimizer state and applies pushed gradients immediately (asynchronous
// updates, no gradient batching across workers).
type Server struct {
	mu      sync.Mutex
	cond    *sync.Cond
	net     *nn.Network
	sgd     *opt.SGD
	sched   opt.StepSchedule
	updates int
	clocks  []int
	stale   int // max allowed clock skew; negative = unbounded (HogWild)

	// MaxSkewSeen records the largest (worker clock − slowest clock)
	// observed at any clock advance, for staleness-bound verification.
	MaxSkewSeen int
}

// NewServer builds a server around a freshly constructed network.
func NewServer(build train.Builder, seed int64, sched opt.StepSchedule,
	momentum, weightDecay float64, workers, staleness int) *Server {
	s := &Server{
		net:    build(rand.New(rand.NewSource(seed))),
		sgd:    opt.NewSGD(sched.Base, momentum, weightDecay),
		sched:  sched,
		clocks: make([]int, workers),
		stale:  staleness,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Push applies one worker's gradient to the master weights immediately.
func (s *Server) Push(grad []float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.net.SetGradVector(grad)
	s.sgd.LR = s.sched.At(s.updates)
	s.sgd.Step(s.net.Params())
	s.updates++
}

// Pull returns a copy of the current master weights.
func (s *Server) Pull() []float32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.net.WeightVector(nil)
}

// Updates returns the number of gradient applications so far.
func (s *Server) Updates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates
}

// AdvanceClock marks worker w as having completed one iteration and, under
// SSP, blocks while the worker is more than the staleness bound ahead of
// the slowest worker. With a negative bound it never blocks (HogWild).
func (s *Server) AdvanceClock(w int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clocks[w]++
	if skew := s.clocks[w] - s.minClockLocked(); skew > s.MaxSkewSeen {
		s.MaxSkewSeen = skew
	}
	s.cond.Broadcast()
	if s.stale < 0 {
		return
	}
	for s.clocks[w]-s.minClockLocked() > s.stale {
		s.cond.Wait()
	}
}

func (s *Server) minClockLocked() int {
	min := s.clocks[0]
	for _, c := range s.clocks[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// Evaluate measures the master model on up to n samples of ds. It holds
// the server lock for the duration, so call it when workers are quiesced.
func (s *Server) Evaluate(ds data.Dataset, n int) (acc, loss float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return evalNet(s.net, ds, n)
}

// Options configure an asynchronous run.
type Options struct {
	Workers      int
	BatchPerNode int
	Schedule     opt.StepSchedule
	Momentum     float64
	WeightDecay  float64
	Seed         int64
	// Staleness is the SSP bound: 0 approximates bulk-synchronous,
	// small values allow bounded drift, negative disables the bound
	// entirely (HogWild-style).
	Staleness   int
	EvalSamples int
}

// Result summarizes an asynchronous run.
type Result struct {
	FinalAcc    float64
	FinalLoss   float64
	Updates     int
	MaxSkewSeen int
}

// Train runs iters iterations per worker asynchronously against a central
// parameter server.
func Train(build train.Builder, trainDS, testDS data.Dataset, iters int, o Options) (Result, error) {
	if o.Workers < 1 || o.BatchPerNode < 1 {
		return Result{}, fmt.Errorf("async: invalid options %+v", o)
	}
	if o.EvalSamples == 0 {
		o.EvalSamples = 256
	}
	server := NewServer(build, o.Seed, o.Schedule, o.Momentum, o.WeightDecay, o.Workers, o.Staleness)

	var wg sync.WaitGroup
	for id := 0; id < o.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each worker holds a private replica for gradient computation.
			replica := build(rand.New(rand.NewSource(o.Seed)))
			shard := data.NewPartition(trainDS, id, o.Workers)
			loader := data.NewLoader(shard, o.BatchPerNode,
				rand.New(rand.NewSource(o.Seed+int64(7000+id))))
			var sce nn.SoftmaxCrossEntropy
			grad := make([]float32, 0, replica.NumParams())
			for iter := 0; iter < iters; iter++ {
				replica.SetWeightVector(server.Pull())
				batch := loader.Next()
				replica.ZeroGrads()
				logits := replica.Forward(batch.X, true)
				_, dlogits := sce.Loss(logits, batch.Labels)
				replica.Backward(dlogits)
				grad = replica.GradVector(grad[:0])
				server.Push(grad)
				server.AdvanceClock(id)
			}
		}(id)
	}
	wg.Wait()

	acc, loss := server.Evaluate(testDS, o.EvalSamples)
	return Result{
		FinalAcc:    acc,
		FinalLoss:   loss,
		Updates:     server.Updates(),
		MaxSkewSeen: server.MaxSkewSeen,
	}, nil
}

// evalNet mirrors train.evaluate for a standalone network.
func evalNet(net *nn.Network, ds data.Dataset, n int) (acc, loss float64) {
	if n > ds.Len() {
		n = ds.Len()
	}
	const evalBatch = 64
	var sce nn.SoftmaxCrossEntropy
	correct, total := 0, 0
	var lossSum float64
	for off := 0; off < n; off += evalBatch {
		hi := off + evalBatch
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-off)
		for i := range idx {
			idx[i] = off + i
		}
		b := data.MakeBatch(ds, idx)
		logits := net.Forward(b.X, false)
		l, _ := sce.Loss(logits, b.Labels)
		lossSum += l * float64(len(idx))
		for i, p := range nn.Predict(logits) {
			if p == b.Labels[i] {
				correct++
			}
		}
		total += len(idx)
	}
	return float64(correct) / float64(total), lossSum / float64(total)
}
