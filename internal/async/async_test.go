package async

import (
	"sync"
	"testing"

	"inceptionn/internal/data"
	"inceptionn/internal/models"
	"inceptionn/internal/opt"
)

func asyncOptions(staleness int) Options {
	return Options{
		Workers:      4,
		BatchPerNode: 16,
		Schedule:     opt.StepSchedule{Base: 0.01, Factor: 5, Every: 300},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         42,
		Staleness:    staleness,
		EvalSamples:  300,
	}
}

func asyncData() (data.Dataset, data.Dataset) {
	return data.NewDigits(4000, 1), data.NewDigits(500, 99)
}

func TestSSPConverges(t *testing.T) {
	trainDS, testDS := asyncData()
	res, err := Train(models.NewHDCSmall, trainDS, testDS, 150, asyncOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.85 {
		t.Fatalf("SSP(1) accuracy = %.3f", res.FinalAcc)
	}
	if res.Updates != 4*150 {
		t.Errorf("updates = %d, want %d", res.Updates, 4*150)
	}
}

func TestHogWildConverges(t *testing.T) {
	trainDS, testDS := asyncData()
	res, err := Train(models.NewHDCSmall, trainDS, testDS, 150, asyncOptions(-1))
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded staleness on a small homogeneous cluster still converges
	// (HogWild!'s claim); the interesting failure mode needs stragglers.
	if res.FinalAcc < 0.80 {
		t.Fatalf("HogWild accuracy = %.3f", res.FinalAcc)
	}
}

// TestStalenessBoundEnforced: under SSP(s) no worker is ever observed more
// than s+1 ticks ahead of the slowest (the +1 covers the instant between
// incrementing one's own clock and blocking).
func TestStalenessBoundEnforced(t *testing.T) {
	trainDS, testDS := asyncData()
	for _, s := range []int{0, 2} {
		res, err := Train(models.NewHDCSmall, trainDS, testDS, 40, asyncOptions(s))
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxSkewSeen > s+1 {
			t.Errorf("staleness %d: observed skew %d", s, res.MaxSkewSeen)
		}
	}
}

func TestServerPushPullRoundtrip(t *testing.T) {
	sched := opt.StepSchedule{Base: 0.5}
	server := NewServer(models.NewHDCSmall, 1, sched, 0, 0, 2, 0)
	w0 := server.Pull()
	grad := make([]float32, len(w0))
	for i := range grad {
		grad[i] = 1
	}
	server.Push(grad)
	w1 := server.Pull()
	for i := range w1 {
		if w1[i] != w0[i]-0.5 {
			t.Fatalf("weight %d: %g, want %g", i, w1[i], w0[i]-0.5)
		}
	}
	if server.Updates() != 1 {
		t.Errorf("updates = %d", server.Updates())
	}
}

func TestAdvanceClockBlocksUntilPeersCatchUp(t *testing.T) {
	server := NewServer(models.NewHDCSmall, 1, opt.StepSchedule{Base: 0.1}, 0, 0, 2, 0)
	var order []int
	var mu sync.Mutex
	record := func(ev int) {
		mu.Lock()
		order = append(order, ev)
		mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		server.AdvanceClock(0) // clock 1 vs min 0: must block at staleness 0
		record(1)
		close(done)
	}()
	record(0)
	server.AdvanceClock(1) // releases worker 0
	<-done
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 0 {
		t.Fatalf("worker 0 did not block: order %v", order)
	}
}

func TestTrainValidation(t *testing.T) {
	trainDS, testDS := asyncData()
	o := asyncOptions(0)
	o.Workers = 0
	if _, err := Train(models.NewHDCSmall, trainDS, testDS, 1, o); err == nil {
		t.Error("expected error for zero workers")
	}
}
