// Package soak is a randomized chaos soak harness for the fault-tolerant
// training paths: each seeded trial draws a fault scenario — switch
// kills, mid-stream partitions, lossy links, worker crashes — aims it at
// the self-healing switch runner (in-process and over TCP) or the
// elastic TCP runner, and checks the outcome against the path's
// contract. Where the algorithm claims determinism (full membership
// survives, only the switch may die) the trial must finish bit-exact
// with a fault-free ring reference; where membership changes (elastic
// evictions) it must complete with finite weights; where healing is
// disabled it must fail closed with a gradeable error. Every trial is
// reproducible from (Seed, trial index).
package soak

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"inceptionn/internal/data"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/mpi"
	"inceptionn/internal/obs"
	"inceptionn/internal/obs/health"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
)

// Options configure a soak run.
type Options struct {
	Trials int           // randomized trials to run (default 7: one sweep of every kind)
	Seed   int64         // master seed; trial i derives rng(Seed ^ i·0x9E3779B97F4A7C15)
	Budget time.Duration // optional wall-clock budget: stop (cleanly) once exceeded
}

// Trial is the record of one completed trial.
type Trial struct {
	ID        int
	Kind      string
	Desc      string
	Fallbacks int
	Elapsed   time.Duration
}

// harness carries the shared datasets and the lazily computed fault-free
// references trials compare against.
type harness struct {
	trainDS, testDS data.Dataset
	ringRef         *train.Result // plain ring run (switch-path trials)
	elasticRef      *train.Result // fault-free elastic TCP run (elastic lossy trials)
}

const (
	soakIters        = 8  // switch-path trials
	soakElasticIters = 15 // elastic trials
	soakSwitch       = 4  // switch node id = worker count
)

func soakOptions() train.Options {
	return train.Options{
		Workers:      soakSwitch,
		BatchPerNode: 16,
		Schedule:     opt.StepSchedule{Base: 0.02, Factor: 5, Every: 200},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         42,
		EvalSamples:  64,
	}
}

func (h *harness) ring() (*train.Result, error) {
	if h.ringRef == nil {
		o := soakOptions()
		res, err := train.Run(models.NewHDCSmall, h.trainDS, h.testDS, soakIters, o)
		if err != nil {
			return nil, fmt.Errorf("fault-free ring reference: %w", err)
		}
		h.ringRef = &res
	}
	return h.ringRef, nil
}

func (h *harness) elastic() (*train.Result, error) {
	if h.elasticRef == nil {
		o := soakOptions()
		o.StepTimeout = 20 * time.Second
		res, err := train.RunElasticTCP(models.NewHDCSmall, h.trainDS, h.testDS, soakElasticIters, o, fpcodec.MustBound(10))
		if err != nil {
			return nil, fmt.Errorf("fault-free elastic reference: %w", err)
		}
		h.elasticRef = &res
	}
	return h.elasticRef, nil
}

func bitExact(got, want []float32) error {
	if len(got) != len(want) {
		return fmt.Errorf("weight count %d, reference %d", len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			return fmt.Errorf("weight %d = %g diverged from reference %g", i, got[i], want[i])
		}
	}
	return nil
}

func finiteWeights(w []float32) error {
	if len(w) == 0 {
		return fmt.Errorf("run produced no weights")
	}
	for i, v := range w {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("weight %d is %g", i, v)
		}
	}
	return nil
}

// healedSwitchRun runs the in-process self-healing switch runner under
// the given chaos and checks the healed result against the ring
// reference. With withHealth set, a streaming health engine rides along
// and the trial additionally asserts the incident contract: every
// confirmed fallback surfaced as exactly one critical "fallback"
// incident naming the switch, each with its own black-box dump on disk.
func (h *harness) healedSwitchRun(cfg *fault.Config, wantFallback, withHealth bool) (int, string, error) {
	ref, err := h.ring()
	if err != nil {
		return 0, "", err
	}
	o := soakOptions()
	o.Algo = train.SwitchReduce
	o.SwitchFallback = true
	o.StepTimeout = 2 * time.Second
	o.Chaos = cfg

	var eng *health.Engine
	var dumpDir string
	if withHealth {
		dumpDir, err = os.MkdirTemp("", "soak-blackbox-")
		if err != nil {
			return 0, "", fmt.Errorf("blackbox dir: %w", err)
		}
		defer os.RemoveAll(dumpDir)
		o.Obs = obs.NewRecorder(obs.NewRegistry(), obs.NewTracer(1<<14))
		// Short warmup/strike windows suit the 8-iteration trial; the
		// 10ms step gate keeps loopback jitter from paging.
		eng = health.New(o.Obs, health.Options{
			Warmup:      2,
			Consecutive: 2,
			MinStepGap:  10 * time.Millisecond,
			BlackboxDir: dumpDir,
		})
		o.Health = eng
	}

	res, err := train.Run(models.NewHDCSmall, h.trainDS, h.testDS, soakIters, o)
	if err != nil {
		return 0, "", fmt.Errorf("healed run failed: %w", err)
	}
	if wantFallback && res.Fallbacks != 1 {
		return res.Fallbacks, res.FallbackCause, fmt.Errorf("fallbacks = %d, want 1", res.Fallbacks)
	}
	if !wantFallback && res.Fallbacks != 0 {
		return res.Fallbacks, res.FallbackCause, fmt.Errorf("spurious fallback: %s", res.FallbackCause)
	}
	if withHealth {
		eng.Close()
		if err := checkFallbackIncidents(eng, dumpDir, res.Fallbacks); err != nil {
			return res.Fallbacks, res.FallbackCause, err
		}
	}
	return res.Fallbacks, res.FallbackCause, bitExact(res.FinalWeights, ref.FinalWeights)
}

// checkFallbackIncidents asserts the health contract after a healed
// switch run: one critical fallback incident per confirmed fallback,
// each naming the switch, and exactly one black-box dump per opened
// incident.
func checkFallbackIncidents(eng *health.Engine, dumpDir string, fallbacks int) error {
	incs := eng.Incidents()
	var fb []health.Incident
	for _, inc := range incs {
		if inc.Detector == "fallback" {
			fb = append(fb, inc)
		}
	}
	if len(fb) != fallbacks {
		return fmt.Errorf("health engine opened %d fallback incident(s) for %d confirmed fallback(s): %+v", len(fb), fallbacks, incs)
	}
	seen := map[string]bool{}
	for _, inc := range fb {
		if inc.Node != soakSwitch {
			return fmt.Errorf("fallback incident blames node %d, want the switch (%d)", inc.Node, soakSwitch)
		}
		if inc.Blackbox == "" {
			return fmt.Errorf("fallback incident carries no black-box dump path")
		}
		if seen[inc.Blackbox] {
			return fmt.Errorf("two incidents share dump %s", inc.Blackbox)
		}
		seen[inc.Blackbox] = true
		if _, err := os.Stat(inc.Blackbox); err != nil {
			return fmt.Errorf("black-box dump missing: %w", err)
		}
	}
	// One dump per opened incident, no extras and no misses.
	dumps, err := filepath.Glob(filepath.Join(dumpDir, "blackbox-*.jsonl"))
	if err != nil {
		return err
	}
	if len(dumps) != len(incs) {
		return fmt.Errorf("%d dump file(s) for %d incident(s): %v", len(dumps), len(incs), dumps)
	}
	return nil
}

// trialKinds enumerates the scenario generators; trials cycle through
// them so any trial count exercises every kind as evenly as possible.
var trialKinds = []struct {
	kind string
	run  func(h *harness, rng *rand.Rand) (desc string, fallbacks int, err error)
}{
	{"switch-kill", func(h *harness, rng *rand.Rand) (string, int, error) {
		// The switch multicasts soakSwitch frames per iteration; crashing
		// anywhere before the last iteration's multicast guarantees a trip.
		// A health engine rides along: the confirmed fallback must surface
		// as exactly one incident with exactly one black-box dump. (The
		// partition trial skips the engine: its surviving worker stays
		// genuinely degraded post-fallback, which correctly opens a second
		// straggler incident and would make an exact count flaky.)
		frame := uint64(2 + rng.Intn(soakSwitch*(soakIters-2)))
		desc := fmt.Sprintf("switch crash after %d frames", frame)
		fb, cause, err := h.healedSwitchRun(&fault.Config{
			Seed:       rng.Int63(),
			CrashAfter: map[int]uint64{soakSwitch: frame},
		}, true, true)
		return desc + " → " + cause, fb, err
	}},
	{"switch-partition", func(h *harness, rng *rand.Rand) (string, int, error) {
		// Blackhole one worker's up- or downlink mid-run: no transport
		// self-report, detection must come from stall grading.
		w := rng.Intn(soakSwitch)
		link := fault.Link{Src: w, Dst: soakSwitch}
		dir := "uplink"
		if rng.Intn(2) == 1 {
			link = fault.Link{Src: soakSwitch, Dst: w}
			dir = "downlink"
		}
		frame := uint64(1 + rng.Intn(soakIters-2))
		desc := fmt.Sprintf("worker %d %s partitioned from frame %d", w, dir, frame)
		fb, cause, err := h.healedSwitchRun(&fault.Config{
			Seed:  rng.Int63(),
			Links: map[fault.Link]fault.LinkFaults{link: fault.Partition(frame)},
		}, true, false)
		return desc + " → " + cause, fb, err
	}},
	{"switch-lossy", func(h *harness, rng *rand.Rand) (string, int, error) {
		// Recoverable chaos on every link: retransmission must make the
		// lossy wire invisible — same bits, no fallback.
		lf := fault.LinkFaults{
			DropRate:    0.01 + 0.04*rng.Float64(),
			CorruptRate: 0.01 + 0.04*rng.Float64(),
			DupRate:     0.02 * rng.Float64(),
			DelayRate:   0.05,
			Delay:       time.Duration(1+rng.Intn(3)) * time.Millisecond,
		}
		desc := fmt.Sprintf("lossy links: drop %.3f corrupt %.3f dup %.3f", lf.DropRate, lf.CorruptRate, lf.DupRate)
		ref, err := h.ring()
		if err != nil {
			return desc, 0, err
		}
		o := soakOptions()
		o.Algo = train.SwitchReduce
		o.SwitchFallback = true
		o.StepTimeout = 15 * time.Second
		o.Chaos = &fault.Config{Seed: rng.Int63(), Default: lf}
		res, err := train.Run(models.NewHDCSmall, h.trainDS, h.testDS, soakIters, o)
		if err != nil {
			return desc, 0, fmt.Errorf("lossy run failed: %w", err)
		}
		if res.Fallbacks != 0 {
			return desc, res.Fallbacks, fmt.Errorf("recoverable loss tripped the fallback: %s", res.FallbackCause)
		}
		return desc, 0, bitExact(res.FinalWeights, ref.FinalWeights)
	}},
	{"switch-kill-unarmed", func(h *harness, rng *rand.Rand) (string, int, error) {
		// Healing disabled: the same kill must fail closed with an error
		// the health grader recognizes as a switch fault.
		frame := uint64(2 + rng.Intn(soakSwitch*(soakIters-2)))
		desc := fmt.Sprintf("unarmed switch crash after %d frames", frame)
		o := soakOptions()
		o.Algo = train.SwitchReduce
		o.StepTimeout = time.Second
		o.Chaos = &fault.Config{Seed: rng.Int63(), CrashAfter: map[int]uint64{soakSwitch: frame}}
		_, err := train.Run(models.NewHDCSmall, h.trainDS, h.testDS, soakIters, o)
		if err == nil {
			return desc, 0, fmt.Errorf("unarmed run healed itself")
		}
		if class, _ := mpi.GradeSwitchFault(err); !class.Hard() && class != mpi.SwitchFaultStall {
			return desc, 0, fmt.Errorf("ungradeable failure (%v): %w", class, err)
		}
		return desc + " → failed closed", 0, nil
	}},
	{"switch-kill-tcp", func(h *harness, rng *rand.Rand) (string, int, error) {
		// The same kill over genuine loopback sockets.
		frame := uint64(2 + rng.Intn(soakSwitch*(soakIters-2)))
		desc := fmt.Sprintf("TCP switch crash after %d frames", frame)
		ref, err := h.ring()
		if err != nil {
			return desc, 0, err
		}
		o := soakOptions()
		o.Algo = train.SwitchReduce
		o.SwitchFallback = true
		o.StepTimeout = 5 * time.Second
		o.Chaos = &fault.Config{Seed: rng.Int63(), CrashAfter: map[int]uint64{soakSwitch: frame}}
		res, err := train.RunSwitchTCP(models.NewHDCSmall, h.trainDS, h.testDS, soakIters, o, fpcodec.MustBound(10))
		if err != nil {
			return desc, 0, fmt.Errorf("healed TCP run failed: %w", err)
		}
		if res.Fallbacks != 1 {
			return desc, res.Fallbacks, fmt.Errorf("fallbacks = %d, want 1", res.Fallbacks)
		}
		return desc + " → " + res.FallbackCause, res.Fallbacks, bitExact(res.FinalWeights, ref.FinalWeights)
	}},
	{"elastic-crash", func(h *harness, rng *rand.Rand) (string, int, error) {
		// A worker dies mid-run over TCP: the survivors must evict it and
		// finish with finite weights (membership changed, so no bit-exact
		// claim against the full ring).
		victim := rng.Intn(soakSwitch)
		frame := uint64(10 + rng.Intn(50))
		desc := fmt.Sprintf("elastic: worker %d crashes after %d frames", victim, frame)
		o := soakOptions()
		o.StepTimeout = 20 * time.Second
		o.Chaos = &fault.Config{Seed: rng.Int63(), CrashAfter: map[int]uint64{victim: frame}}
		res, err := train.RunElasticTCP(models.NewHDCSmall, h.trainDS, h.testDS, soakElasticIters, o, fpcodec.MustBound(10))
		if err != nil {
			return desc, 0, fmt.Errorf("survivors failed: %w", err)
		}
		return desc, 0, finiteWeights(res.FinalWeights)
	}},
	{"elastic-lossy", func(h *harness, rng *rand.Rand) (string, int, error) {
		// Recoverable chaos under the elastic runner: nobody may be
		// evicted and the result must match the fault-free elastic run.
		lf := fault.LinkFaults{
			DropRate:    0.01 + 0.02*rng.Float64(),
			CorruptRate: 0.01 + 0.02*rng.Float64(),
		}
		desc := fmt.Sprintf("elastic lossy links: drop %.3f corrupt %.3f", lf.DropRate, lf.CorruptRate)
		ref, err := h.elastic()
		if err != nil {
			return desc, 0, err
		}
		o := soakOptions()
		o.StepTimeout = 20 * time.Second
		o.Chaos = &fault.Config{Seed: rng.Int63(), Default: lf}
		res, err := train.RunElasticTCP(models.NewHDCSmall, h.trainDS, h.testDS, soakElasticIters, o, fpcodec.MustBound(10))
		if err != nil {
			return desc, 0, fmt.Errorf("lossy elastic run failed: %w", err)
		}
		return desc, 0, bitExact(res.FinalWeights, ref.FinalWeights)
	}},
}

// Run executes o.Trials randomized trials and returns their records. A
// non-nil error means some trial violated its contract; the returned
// slice still holds every trial completed before the failure. logf, when
// non-nil, receives one line per trial.
func Run(o Options, logf func(format string, args ...any)) ([]Trial, error) {
	if o.Trials <= 0 {
		o.Trials = len(trialKinds)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h := &harness{trainDS: data.NewDigits(4000, 1), testDS: data.NewDigits(500, 99)}
	start := time.Now()
	var trials []Trial
	for i := 0; i < o.Trials; i++ {
		if o.Budget > 0 && time.Since(start) > o.Budget {
			logf("soak: budget %v exhausted after %d/%d trials", o.Budget, i, o.Trials)
			break
		}
		k := trialKinds[i%len(trialKinds)]
		rng := rand.New(rand.NewSource(o.Seed ^ int64(i)*0x1F3779B97F4A7C15))
		t0 := time.Now()
		desc, fallbacks, err := k.run(h, rng)
		tr := Trial{ID: i, Kind: k.kind, Desc: desc, Fallbacks: fallbacks, Elapsed: time.Since(t0)}
		trials = append(trials, tr)
		if err != nil {
			logf("soak: trial %d [%s] FAILED (%v): %s: %v", i, k.kind, tr.Elapsed.Round(time.Millisecond), desc, err)
			return trials, fmt.Errorf("trial %d [%s] (seed %d): %s: %w", i, k.kind, o.Seed, desc, err)
		}
		logf("soak: trial %d [%s] ok (%v): %s", i, k.kind, tr.Elapsed.Round(time.Millisecond), desc)
	}
	return trials, nil
}
