package soak

import (
	"flag"
	"testing"
)

var (
	soakTrials = flag.Int("soak-trials", 0, "number of chaos soak trials (0 = one sweep of every scenario kind)")
	soakSeed   = flag.Int64("soak-seed", 1, "master seed for the chaos soak planner")
	soakBudget = flag.Duration("soak-budget", 0, "optional wall-clock budget for the soak (0 = unbounded)")
)

// TestSoak runs the randomized chaos soak. The default run is one sweep
// over every scenario kind so plain `go test ./...` stays fast;
// `make soaktest` widens it with -soak-trials / -soak-seed / -soak-budget.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	trials, err := Run(Options{Trials: *soakTrials, Seed: *soakSeed, Budget: *soakBudget}, t.Logf)
	if err != nil {
		t.Fatalf("soak failed after %d completed trials: %v", len(trials)-1, err)
	}
	if len(trials) == 0 {
		t.Fatal("soak ran no trials")
	}
	kinds := map[string]int{}
	for _, tr := range trials {
		kinds[tr.Kind]++
	}
	t.Logf("soak: %d trials ok across %d scenario kinds", len(trials), len(kinds))
}

// TestSoakDeterministicPlan pins reproducibility: the same (seed, index)
// must draw the same scenario parameters, so a failed trial can be
// replayed in isolation.
func TestSoakDeterministicPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	run := func() []Trial {
		trials, err := Run(Options{Trials: 2, Seed: 99}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return trials
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Desc != b[i].Desc || a[i].Fallbacks != b[i].Fallbacks {
			t.Fatalf("trial %d not reproducible:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
