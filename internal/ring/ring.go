// Package ring implements the paper's gradient-centric, aggregator-free
// distributed training exchange (Algorithm 1 and Fig. 6) plus the
// conventional worker-aggregator baseline it is compared against.
//
// Algorithm 1 partitions each worker's gradient vector into N blocks and
// circulates partial sums around a logical ring in two phases:
//
//	P1 (reduce-scatter, steps 1..N-1): each node receives a block from its
//	   left neighbour, sum-reduces it into the local copy, and forwards the
//	   next partial block right. After N-1 steps node i holds the fully
//	   aggregated block (i+1) mod N.
//	P2 (all-gather, steps N..2N-2): the fully aggregated blocks circulate
//	   until every node holds the complete aggregated gradient.
//
// Both legs carry *gradients*, so both are compressible by the in-NIC
// codec — the paper's key systems observation (2). The aggregation work is
// spread evenly across nodes — observation (3).
package ring

import (
	"context"
	"fmt"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/obs"
)

// Block boundaries: block b of a length-n vector split N ways.
func blockBounds(n, parts, b int) (lo, hi int) {
	per := n / parts
	rem := n % parts
	lo = b*per + min(b, rem)
	size := per
	if b < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Tag bases for the two phases; step index is added so that a lagging
// receiver can never confuse messages (streams are ordered anyway).
const (
	tagReduceScatter = 1000
	tagAllGather     = 2000
)

// Options tune the fault-tolerant exchange.
type Options struct {
	// StepTimeout bounds each send+recv ring step; 0 disables the
	// per-step deadline (the caller's context still applies). A step that
	// exceeds it returns a timeout error identifying the stalled link,
	// turning a permanent partition into an error instead of a hang.
	StepTimeout time.Duration

	// ChunkSize, when positive, splits each ring block into chunks of at
	// most ChunkSize float32 values and pipelines them within a step: a
	// sender goroutine streams chunks rightward while the main loop
	// receives and reduces chunks from the left, so chunk k's codec and
	// reduction overlap chunk k+1's transport — the software analogue of
	// the paper's streaming NIC datapath. The value is rounded up to a
	// multiple of fpcodec.GroupSize so every chunk is burst-group aligned.
	// All nodes of a ring must use the same ChunkSize (it determines the
	// per-step message framing). 0 keeps whole-block steps.
	ChunkSize int

	// TagOffset is added to every message tag of the exchange. The elastic
	// layer (internal/elastic) sets it to the membership epoch's tag base
	// so that a replayed exchange after a ring reconfiguration can never
	// confuse its messages with stale in-flight traffic from the aborted
	// attempt; a filtering receiver discards lower-epoch tags.
	TagOffset int

	// Obs, when non-nil, records per-step send/recv/reduce phase spans, a
	// ring_step_seconds latency histogram, and per-link receive-wait
	// counters (the straggler signal: time this node sat blocked on its
	// left neighbour). Nil disables all instrumentation at the cost of one
	// pointer compare per step.
	Obs *obs.Recorder

	// ObsIter tags recorded spans with the training iteration the
	// exchange belongs to (only meaningful with Obs set).
	ObsIter int
}

// chunkSize returns the effective group-aligned chunk size, or 0 when
// chunking is disabled.
func (o Options) chunkSize() int {
	c := o.ChunkSize
	if c <= 0 {
		return 0
	}
	if rem := c % fpcodec.GroupSize; rem != 0 {
		c += fpcodec.GroupSize - rem
	}
	return c
}

// numChunks returns how many chunks a block of blockLen values splits
// into. A zero-length block carries zero chunks (no messages at all),
// which both sides of a link compute identically.
func numChunks(blockLen, chunk int) int {
	if chunk <= 0 || blockLen <= chunk {
		if blockLen == 0 {
			return 0
		}
		return 1
	}
	return (blockLen + chunk - 1) / chunk
}

// chunkBounds returns the c-th chunk of a block of blockLen values.
func chunkBounds(blockLen, chunk, c int) (lo, hi int) {
	if chunk <= 0 {
		return 0, blockLen
	}
	lo = c * chunk
	hi = lo + chunk
	if hi > blockLen {
		hi = blockLen
	}
	return lo, hi
}

// AllReduce performs the in-place gradient exchange of Algorithm 1 on node
// e.ID() of an N-node ring: on return, grad holds the elementwise sum of
// every node's input vector. All N nodes must call AllReduce concurrently
// with equal-length vectors. tos selects per-packet NIC treatment
// (comm.ToSCompress enables in-network lossy compression of every leg).
//
// finalize, if non-nil, is applied in place to the node's fully aggregated
// block between the two phases. With lossy compression this must be the
// codec roundtrip (Algorithm 1 compresses gradients before the exchange
// and decompresses after — lines 6 and 20): the block's owner otherwise
// keeps the exact sum while every other node receives the compressed
// version, and the model replicas drift apart. The codec is idempotent, so
// applying it at the owner makes every replica bit-identical.
//
// AllReduce is the legacy panic-on-failure wrapper around AllReduceCtx.
func AllReduce(e comm.Peer, grad []float32, tos uint8, finalize func([]float32)) {
	if err := AllReduceCtx(context.Background(), comm.AsCtxPeer(e), grad, tos, finalize, Options{}); err != nil {
		panic(fmt.Sprintf("ring: %v", err))
	}
}

// AllReduceCtx is the fault-tolerant form of AllReduce: transport
// anomalies, per-step deadline expiries (stragglers, partitions), and
// context cancellation return errors instead of panicking, so a training
// driver can retry, evict the failed node, or abort cleanly.
func AllReduceCtx(ctx context.Context, e comm.CtxPeer, grad []float32, tos uint8, finalize func([]float32), opt Options) error {
	return AllReduceGroupCtx(ctx, e, nil, grad, tos, finalize, opt)
}

// AllReduceGroupCtx runs Algorithm 1 over an arbitrary member subset of
// the fabric: members lists the participating fabric ids in ring order and
// must include e.ID(). Every member must call it concurrently with the
// same member list. A nil members slice means the full fabric in id order
// (the classic AllReduceCtx). This is the primitive behind both the
// hierarchical organizations (groups, leader rings) and elastic ring
// reconfiguration, where survivors of a node failure rebuild the ring over
// the (n−1)-member view and replay the step.
func AllReduceGroupCtx(ctx context.Context, e comm.CtxPeer, members []int, grad []float32, tos uint8, finalize func([]float32), opt Options) error {
	id := e.ID()
	var n, rank int
	if members == nil {
		n, rank = e.N(), id
	} else {
		n = len(members)
		rank = -1
		for i, m := range members {
			if m == id {
				rank = i
				break
			}
		}
		if rank < 0 {
			return fmt.Errorf("ring: node %d is not in member list %v", id, members)
		}
	}
	if n == 1 {
		if finalize != nil {
			finalize(grad)
		}
		return nil
	}
	peer := func(r int) int {
		if members == nil {
			return r
		}
		return members[r]
	}
	right := peer((rank + 1) % n)
	left := peer((rank - 1 + n) % n)

	chunk := opt.chunkSize()

	// Metric handles are resolved once per exchange; with Obs nil they are
	// nil handles whose methods are no-ops, and the obsOn guard skips the
	// clock reads entirely.
	obsOn := opt.Obs != nil
	stepHist := opt.Obs.Histogram("ring_step_seconds")
	recvWaitNs := opt.Obs.Counter("ring_recv_wait_ns")
	var linkWaitNs *obs.Counter
	if obsOn {
		// The straggler signal per inbound link: time rank blocked on left.
		linkWaitNs = opt.Obs.Counter(fmt.Sprintf("ring_recv_wait_ns_link_%d_to_%d", left, id))
	}

	step := func(ctx context.Context, sendBlk, recvBlk, tag int, reduce bool) error {
		var stepStart time.Time
		if obsOn {
			stepStart = time.Now()
			defer func() { stepHist.Observe(time.Since(stepStart)) }()
		}
		stepCtx, cancel := ctx, context.CancelFunc(nil)
		if opt.StepTimeout > 0 {
			stepCtx, cancel = context.WithTimeout(ctx, opt.StepTimeout)
		} else if chunk > 0 {
			// Chunked steps always need a private cancel so a receive
			// failure unblocks the in-flight sender goroutine.
			stepCtx, cancel = context.WithCancel(ctx)
		}
		if cancel != nil {
			defer cancel()
		}

		slo, shi := blockBounds(len(grad), n, sendBlk)
		rlo, rhi := blockBounds(len(grad), n, recvBlk)
		sendBuf, recvBuf := grad[slo:shi], grad[rlo:rhi]

		if chunk <= 0 {
			// Whole-block step.
			ssp := opt.Obs.Span(id, opt.ObsIter, obs.PhaseSend)
			err := e.SendCtx(stepCtx, right, sendBuf, tos, tag)
			ssp.End()
			if err != nil {
				return fmt.Errorf("ring: node %d send block %d to %d: %w", id, sendBlk, right, err)
			}
			var rstart time.Time
			if obsOn {
				rstart = time.Now()
			}
			rsp := opt.Obs.Span(id, opt.ObsIter, obs.PhaseRecv)
			rb, err := e.RecvCtx(stepCtx, left, tag)
			rsp.End()
			if obsOn {
				w := time.Since(rstart).Nanoseconds()
				recvWaitNs.Add(w)
				linkWaitNs.Add(w)
			}
			if err != nil {
				return fmt.Errorf("ring: node %d recv block %d from %d: %w", id, recvBlk, left, err)
			}
			if len(rb) != len(recvBuf) {
				return fmt.Errorf("ring: node %d tag %d: block size %d, want %d", id, tag, len(rb), len(recvBuf))
			}
			dsp := opt.Obs.Span(id, opt.ObsIter, obs.PhaseReduce)
			if reduce {
				for i, v := range rb {
					recvBuf[i] += v
				}
			} else {
				copy(recvBuf, rb)
			}
			dsp.End()
			return nil
		}

		// Pipelined step. The send and receive blocks of any Algorithm 1
		// step are disjoint, so the sender goroutine reads sendBuf while
		// the receive loop writes recvBuf without synchronisation. All
		// chunks of a step share one tag; links deliver same-tag messages
		// in order.
		sendErr := make(chan error, 1)
		go func() {
			// One send span covers all chunks: the goroutine does nothing
			// but send, so its wall time is the step's send time.
			ssp := opt.Obs.Span(id, opt.ObsIter, obs.PhaseSend)
			defer ssp.End()
			nc := numChunks(len(sendBuf), chunk)
			for c := 0; c < nc; c++ {
				clo, chi := chunkBounds(len(sendBuf), chunk, c)
				if err := e.SendCtx(stepCtx, right, sendBuf[clo:chi], tos, tag); err != nil {
					sendErr <- fmt.Errorf("ring: node %d send block %d chunk %d to %d: %w", id, sendBlk, c, right, err)
					return
				}
			}
			sendErr <- nil
		}()

		// Receive and reduce interleave per chunk; accumulate each phase's
		// active time and record one aggregated span per phase per step
		// rather than flooding the tracer with per-chunk events.
		var recvDur, redDur time.Duration
		rsp := opt.Obs.Span(id, opt.ObsIter, obs.PhaseRecv)
		dsp := opt.Obs.Span(id, opt.ObsIter, obs.PhaseReduce)
		nc := numChunks(len(recvBuf), chunk)
		for c := 0; c < nc; c++ {
			var t0 time.Time
			if obsOn {
				t0 = time.Now()
			}
			rb, err := e.RecvCtx(stepCtx, left, tag)
			if obsOn {
				recvDur += time.Since(t0)
			}
			if err != nil {
				if cancel != nil {
					cancel() // unblock the sender before returning
				}
				return fmt.Errorf("ring: node %d recv block %d chunk %d from %d: %w", id, recvBlk, c, left, err)
			}
			clo, chi := chunkBounds(len(recvBuf), chunk, c)
			local := recvBuf[clo:chi]
			if len(rb) != len(local) {
				if cancel != nil {
					cancel()
				}
				return fmt.Errorf("ring: node %d tag %d chunk %d: size %d, want %d", id, tag, c, len(rb), len(local))
			}
			if obsOn {
				t0 = time.Now()
			}
			if reduce {
				for i, v := range rb {
					local[i] += v
				}
			} else {
				copy(local, rb)
			}
			if obsOn {
				redDur += time.Since(t0)
			}
		}
		rsp.EndWith(recvDur)
		dsp.EndWith(redDur)
		if obsOn {
			recvWaitNs.Add(recvDur.Nanoseconds())
			linkWaitNs.Add(recvDur.Nanoseconds())
		}
		return <-sendErr
	}

	// P1: aggregation of gradients (reduce-scatter). Block indices are
	// functions of the node's rank within the member ring, not its fabric
	// id, so a reconfigured (shrunken) ring repartitions cleanly.
	for s := 1; s <= n-1; s++ {
		sendBlk := ((rank-s+1)%n + n) % n
		recvBlk := ((rank-s)%n + n) % n
		if err := step(ctx, sendBlk, recvBlk, opt.TagOffset+tagReduceScatter+s, true); err != nil {
			return err
		}
	}

	if finalize != nil {
		// The fully aggregated block this node owns after P1.
		lo, hi := blockBounds(len(grad), n, (rank+1)%n)
		finalize(grad[lo:hi])
	}

	// P2: propagation of the aggregated gradients (all-gather).
	for s := 0; s <= n-2; s++ {
		sendBlk := ((rank+1-s)%n + n) % n
		recvBlk := ((rank-s)%n + n) % n
		if err := step(ctx, sendBlk, recvBlk, opt.TagOffset+tagAllGather+s, false); err != nil {
			return err
		}
	}
	return nil
}

// Aggregator tags for the worker-aggregator exchange.
const (
	tagGradUp    = 3000
	tagWeightsDn = 3001
)

// WorkerExchange is one worker's side of the conventional worker-aggregator
// iteration (paper Fig. 2): send the local gradient up to the aggregator,
// receive the updated weights back. gradTos controls compression of the
// gradient leg (the only compressible leg in this topology — the returned
// weights cannot tolerate loss, per the paper's Fig. 4). The received
// weight vector is returned.
func WorkerExchange(e comm.Peer, aggregator int, grad []float32, gradTos uint8) []float32 {
	e.Send(aggregator, grad, gradTos, tagGradUp)
	return e.Recv(aggregator, tagWeightsDn)
}

// WorkerExchangeCtx is the error-returning form of WorkerExchange.
func WorkerExchangeCtx(ctx context.Context, e comm.CtxPeer, aggregator int, grad []float32, gradTos uint8) ([]float32, error) {
	if err := e.SendCtx(ctx, aggregator, grad, gradTos, tagGradUp); err != nil {
		return nil, fmt.Errorf("ring: worker %d gradient up: %w", e.ID(), err)
	}
	w, err := e.RecvCtx(ctx, aggregator, tagWeightsDn)
	if err != nil {
		return nil, fmt.Errorf("ring: worker %d weights down: %w", e.ID(), err)
	}
	return w, nil
}

// AggregateStep is the aggregator's side: gather gradients from workers,
// sum them, let update produce the new weight vector, and broadcast it.
// workers lists worker node ids. update receives the summed gradient and
// must return the weight vector to broadcast.
func AggregateStep(e comm.Peer, workers []int, gradLen int, update func(sum []float32) []float32) {
	if err := AggregateStepCtx(context.Background(), comm.AsCtxPeer(e), workers, gradLen, update, Options{}); err != nil {
		panic(fmt.Sprintf("ring: %v", err))
	}
}

// StepContext derives the per-operation deadline context from o: with a
// StepTimeout each individual send/recv is bounded, so a single wedged
// peer surfaces as a timeout error naming the hop instead of blocking the
// collective until the caller cancels. Callers layering their own
// point-to-point legs on the ring options (hierarchy, elastic) share it.
func (o Options) StepContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.StepTimeout > 0 {
		return context.WithTimeout(ctx, o.StepTimeout)
	}
	return ctx, func() {}
}

// AggregateStepCtx is the error-returning form of AggregateStep. With
// opt.StepTimeout set, every per-worker gather and broadcast leg is
// individually deadline-bounded: one wedged worker fails the step with an
// error identifying it rather than hanging the aggregator.
func AggregateStepCtx(ctx context.Context, e comm.CtxPeer, workers []int, gradLen int, update func(sum []float32) []float32, opt Options) error {
	sum := make([]float32, gradLen)
	for _, w := range workers {
		sctx, cancel := opt.StepContext(ctx)
		g, err := e.RecvCtx(sctx, w, tagGradUp)
		cancel()
		if err != nil {
			return fmt.Errorf("ring: aggregator gather from %d: %w", w, err)
		}
		if len(g) != gradLen {
			return fmt.Errorf("ring: aggregator got %d floats from %d, want %d", len(g), w, gradLen)
		}
		for i, v := range g {
			sum[i] += v
		}
	}
	weights := update(sum)
	for _, w := range workers {
		// Weights are never ToS-tagged: loss is intolerable on this leg.
		sctx, cancel := opt.StepContext(ctx)
		err := e.SendCtx(sctx, w, weights, 0, tagWeightsDn)
		cancel()
		if err != nil {
			return fmt.Errorf("ring: aggregator broadcast to %d: %w", w, err)
		}
	}
	return nil
}
