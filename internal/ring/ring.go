// Package ring implements the paper's gradient-centric, aggregator-free
// distributed training exchange (Algorithm 1 and Fig. 6) plus the
// conventional worker-aggregator baseline it is compared against.
//
// Algorithm 1 partitions each worker's gradient vector into N blocks and
// circulates partial sums around a logical ring in two phases:
//
//	P1 (reduce-scatter, steps 1..N-1): each node receives a block from its
//	   left neighbour, sum-reduces it into the local copy, and forwards the
//	   next partial block right. After N-1 steps node i holds the fully
//	   aggregated block (i+1) mod N.
//	P2 (all-gather, steps N..2N-2): the fully aggregated blocks circulate
//	   until every node holds the complete aggregated gradient.
//
// Both legs carry *gradients*, so both are compressible by the in-NIC
// codec — the paper's key systems observation (2). The aggregation work is
// spread evenly across nodes — observation (3).
package ring

import (
	"fmt"

	"inceptionn/internal/comm"
)

// Block boundaries: block b of a length-n vector split N ways.
func blockBounds(n, parts, b int) (lo, hi int) {
	per := n / parts
	rem := n % parts
	lo = b*per + min(b, rem)
	size := per
	if b < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Tag bases for the two phases; step index is added so that a lagging
// receiver can never confuse messages (streams are ordered anyway).
const (
	tagReduceScatter = 1000
	tagAllGather     = 2000
)

// AllReduce performs the in-place gradient exchange of Algorithm 1 on node
// e.ID() of an N-node ring: on return, grad holds the elementwise sum of
// every node's input vector. All N nodes must call AllReduce concurrently
// with equal-length vectors. tos selects per-packet NIC treatment
// (comm.ToSCompress enables in-network lossy compression of every leg).
//
// finalize, if non-nil, is applied in place to the node's fully aggregated
// block between the two phases. With lossy compression this must be the
// codec roundtrip (Algorithm 1 compresses gradients before the exchange
// and decompresses after — lines 6 and 20): the block's owner otherwise
// keeps the exact sum while every other node receives the compressed
// version, and the model replicas drift apart. The codec is idempotent, so
// applying it at the owner makes every replica bit-identical.
func AllReduce(e comm.Peer, grad []float32, tos uint8, finalize func([]float32)) {
	n := e.N()
	if n == 1 {
		if finalize != nil {
			finalize(grad)
		}
		return
	}
	id := e.ID()
	right := (id + 1) % n
	left := (id - 1 + n) % n

	// P1: aggregation of gradients (reduce-scatter).
	for s := 1; s <= n-1; s++ {
		sendBlk := ((id-s+1)%n + n) % n
		recvBlk := ((id-s)%n + n) % n
		lo, hi := blockBounds(len(grad), n, sendBlk)
		e.Send(right, grad[lo:hi], tos, tagReduceScatter+s)
		rb := e.Recv(left, tagReduceScatter+s)
		lo, hi = blockBounds(len(grad), n, recvBlk)
		if len(rb) != hi-lo {
			panic(fmt.Sprintf("ring: node %d step %d: block size %d, want %d", id, s, len(rb), hi-lo))
		}
		local := grad[lo:hi]
		for i, v := range rb {
			local[i] += v
		}
	}

	if finalize != nil {
		// The fully aggregated block this node owns after P1.
		lo, hi := blockBounds(len(grad), n, (id+1)%n)
		finalize(grad[lo:hi])
	}

	// P2: propagation of the aggregated gradients (all-gather).
	for s := 0; s <= n-2; s++ {
		sendBlk := ((id+1-s)%n + n) % n
		recvBlk := ((id-s)%n + n) % n
		lo, hi := blockBounds(len(grad), n, sendBlk)
		e.Send(right, grad[lo:hi], tos, tagAllGather+s)
		rb := e.Recv(left, tagAllGather+s)
		lo, hi = blockBounds(len(grad), n, recvBlk)
		if len(rb) != hi-lo {
			panic(fmt.Sprintf("ring: node %d gather step %d: block size %d, want %d", id, s, len(rb), hi-lo))
		}
		copy(grad[lo:hi], rb)
	}
}

// Aggregator tags for the worker-aggregator exchange.
const (
	tagGradUp    = 3000
	tagWeightsDn = 3001
)

// WorkerExchange is one worker's side of the conventional worker-aggregator
// iteration (paper Fig. 2): send the local gradient up to the aggregator,
// receive the updated weights back. gradTos controls compression of the
// gradient leg (the only compressible leg in this topology — the returned
// weights cannot tolerate loss, per the paper's Fig. 4). The received
// weight vector is returned.
func WorkerExchange(e comm.Peer, aggregator int, grad []float32, gradTos uint8) []float32 {
	e.Send(aggregator, grad, gradTos, tagGradUp)
	return e.Recv(aggregator, tagWeightsDn)
}

// AggregateStep is the aggregator's side: gather gradients from workers,
// sum them, let update produce the new weight vector, and broadcast it.
// workers lists worker node ids. update receives the summed gradient and
// must return the weight vector to broadcast.
func AggregateStep(e comm.Peer, workers []int, gradLen int, update func(sum []float32) []float32) {
	sum := make([]float32, gradLen)
	for _, w := range workers {
		g := e.Recv(w, tagGradUp)
		if len(g) != gradLen {
			panic(fmt.Sprintf("ring: aggregator got %d floats from %d, want %d", len(g), w, gradLen))
		}
		for i, v := range g {
			sum[i] += v
		}
	}
	weights := update(sum)
	for _, w := range workers {
		// Weights are never ToS-tagged: loss is intolerable on this leg.
		e.Send(w, weights, 0, tagWeightsDn)
	}
}
