package ring

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
)

// finalizeFor builds the owner-block finalizer matching the processor and
// ToS (the codec roundtrip the paper's Algorithm 1 applies locally).
func finalizeFor(proc comm.WireProcessor, tos uint8) func([]float32) {
	if proc == nil || tos != comm.ToSCompress {
		return nil
	}
	return func(b []float32) {
		out, _ := proc.Process(b, tos)
		copy(b, out)
	}
}

// runAllReduce executes AllReduce on n concurrent nodes with the given
// per-node inputs and returns each node's resulting vector.
func runAllReduce(t *testing.T, proc comm.WireProcessor, inputs [][]float32, tos uint8) ([][]float32, *comm.Fabric) {
	t.Helper()
	n := len(inputs)
	f := comm.NewFabric(n, proc)
	out := make([][]float32, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := append([]float32(nil), inputs[i]...)
			AllReduce(f.Endpoint(i), g, tos, finalizeFor(proc, tos))
			out[i] = g
		}(i)
	}
	wg.Wait()
	return out, f
}

func TestBlockBounds(t *testing.T) {
	// 10 elements in 4 blocks: sizes 3,3,2,2, contiguous and complete.
	total := 0
	prevHi := 0
	for b := 0; b < 4; b++ {
		lo, hi := blockBounds(10, 4, b)
		if lo != prevHi {
			t.Fatalf("block %d starts at %d, want %d", b, lo, prevHi)
		}
		total += hi - lo
		prevHi = hi
	}
	if total != 10 || prevHi != 10 {
		t.Fatalf("blocks cover %d of 10", total)
	}
}

func TestAllReduceSingleNode(t *testing.T) {
	out, _ := runAllReduce(t, nil, [][]float32{{1, 2, 3}}, 0)
	if out[0][0] != 1 || out[0][2] != 3 {
		t.Fatalf("single-node allreduce changed data: %v", out[0])
	}
}

func TestAllReduceSumsExactly(t *testing.T) {
	// Integer-valued floats make ring summation exact regardless of order.
	inputs := [][]float32{
		{1, 10, 100, 1000, 2},
		{2, 20, 200, 2000, 3},
		{3, 30, 300, 3000, 4},
		{4, 40, 400, 4000, 5},
	}
	want := []float32{10, 100, 1000, 10000, 14}
	out, _ := runAllReduce(t, nil, inputs, 0)
	for node := range out {
		for i := range want {
			if out[node][i] != want[i] {
				t.Fatalf("node %d elem %d = %g, want %g", node, i, out[node][i], want[i])
			}
		}
	}
}

func TestAllReduceAllNodesIdentical(t *testing.T) {
	// Ring allreduce sums each block in a single, fixed order, so all
	// replicas end bit-identical even with floating-point inputs.
	rng := rand.New(rand.NewSource(1))
	n := 5
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = make([]float32, 1003)
		for j := range inputs[i] {
			inputs[i][j] = float32(rng.NormFloat64())
		}
	}
	out, _ := runAllReduce(t, nil, inputs, 0)
	for node := 1; node < n; node++ {
		for i := range out[0] {
			if out[node][i] != out[0][i] {
				t.Fatalf("node %d diverges from node 0 at %d: %g vs %g",
					node, i, out[node][i], out[0][i])
			}
		}
	}
}

func TestAllReduceMatchesSequentialSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 3, 4, 7, 8} {
		for _, length := range []int{1, 5, 64, 1000} {
			inputs := make([][]float32, n)
			for i := range inputs {
				inputs[i] = make([]float32, length)
				for j := range inputs[i] {
					inputs[i][j] = float32(rng.NormFloat64())
				}
			}
			want := make([]float64, length)
			for i := range inputs {
				for j, v := range inputs[i] {
					want[j] += float64(v)
				}
			}
			out, _ := runAllReduce(t, nil, inputs, 0)
			for j := range want {
				if math.Abs(float64(out[0][j])-want[j]) > 1e-4*(math.Abs(want[j])+1) {
					t.Fatalf("n=%d len=%d elem %d: got %g want %g",
						n, length, j, out[0][j], want[j])
				}
			}
		}
	}
}

// TestAllReduceBalancedTraffic: the defining property vs worker-aggregator —
// every directed ring link carries the same bytes: 2(N-1)/N × model size.
func TestAllReduceBalancedTraffic(t *testing.T) {
	n := 4
	length := 4000
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = make([]float32, length)
	}
	out, f := runAllReduce(t, nil, inputs, 0)
	_ = out
	wantPerLink := int64(4 * length * 2 * (n - 1) / n)
	for i := 0; i < n; i++ {
		right := (i + 1) % n
		got := f.Stats(i, right).RawBytes.Load()
		if got != wantPerLink {
			t.Errorf("link %d->%d carried %d raw bytes, want %d", i, right, got, wantPerLink)
		}
		// No traffic on non-ring links.
		for j := 0; j < n; j++ {
			if j != right && f.Stats(i, j).Messages.Load() != 0 {
				t.Errorf("unexpected traffic %d->%d", i, j)
			}
		}
	}
}

func TestAllReduceWithCompressionBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4
	length := 2048
	inputs := make([][]float32, n)
	want := make([]float64, length)
	for i := range inputs {
		inputs[i] = make([]float32, length)
		for j := range inputs[i] {
			inputs[i][j] = float32(rng.NormFloat64() * 0.01)
			want[j] += float64(inputs[i][j])
		}
	}
	bound := fpcodec.MustBound(10)
	out, f := runAllReduce(t, comm.CodecProcessor{Bound: bound}, inputs, comm.ToSCompress)
	// Each element passes through at most 2(n-1) compression stages; errors
	// can accumulate linearly in the worst case.
	tol := bound.MaxError() * float64(2*(n-1))
	for j := range want {
		if math.Abs(float64(out[0][j])-want[j]) > tol {
			t.Fatalf("elem %d: got %g want %g (tol %g)", j, out[0][j], want[j], tol)
		}
	}
	if f.TotalWireBytes() >= f.TotalRawBytes() {
		t.Errorf("compression did not reduce wire bytes: %d vs raw %d",
			f.TotalWireBytes(), f.TotalRawBytes())
	}
}

func TestQuickAllReduceProperty(t *testing.T) {
	f := func(seed int64, nRaw, lenRaw uint8) bool {
		n := int(nRaw%6) + 2
		length := int(lenRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float32, n)
		want := make([]float64, length)
		for i := range inputs {
			inputs[i] = make([]float32, length)
			for j := range inputs[i] {
				inputs[i][j] = float32(rng.Intn(100) - 50) // exact in float32
				want[j] += float64(inputs[i][j])
			}
		}
		fab := comm.NewFabric(n, nil)
		out := make([][]float32, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				g := append([]float32(nil), inputs[i]...)
				AllReduce(fab.Endpoint(i), g, 0, nil)
				out[i] = g
			}(i)
		}
		wg.Wait()
		for node := range out {
			for j := range want {
				if float64(out[node][j]) != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerAggregatorExchange(t *testing.T) {
	const workers = 4
	const gradLen = 100
	f := comm.NewFabric(workers+1, nil)
	aggID := workers
	var wg sync.WaitGroup

	// Aggregator: weights = -sum (a recognizable transform).
	wg.Add(1)
	go func() {
		defer wg.Done()
		AggregateStep(f.Endpoint(aggID), []int{0, 1, 2, 3}, gradLen, func(sum []float32) []float32 {
			w := make([]float32, len(sum))
			for i, v := range sum {
				w[i] = -v
			}
			return w
		})
	}()

	results := make([][]float32, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := make([]float32, gradLen)
			for j := range g {
				g[j] = float32(i + 1)
			}
			results[i] = WorkerExchange(f.Endpoint(i), aggID, g, 0)
		}(i)
	}
	wg.Wait()
	for i := range results {
		for j, v := range results[i] {
			if v != -10 { // -(1+2+3+4)
				t.Fatalf("worker %d elem %d = %g, want -10", i, j, v)
			}
		}
	}
	// Aggregator links concentrate all traffic: the bottleneck the paper
	// identifies. Each worker link carries gradLen up and gradLen down.
	for i := 0; i < workers; i++ {
		up := f.Stats(i, aggID).RawBytes.Load()
		down := f.Stats(aggID, i).RawBytes.Load()
		if up != 4*gradLen || down != 4*gradLen {
			t.Errorf("worker %d: up=%d down=%d", i, up, down)
		}
	}
}

func TestWorkerAggregatorCompressedGradLegOnly(t *testing.T) {
	const workers = 2
	const gradLen = 4096
	bound := fpcodec.MustBound(10)
	f := comm.NewFabric(workers+1, comm.CodecProcessor{Bound: bound})
	aggID := workers
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		AggregateStep(f.Endpoint(aggID), []int{0, 1}, gradLen, func(sum []float32) []float32 {
			return sum
		})
	}()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := make([]float32, gradLen)
			for j := range g {
				g[j] = 1e-5 // compresses to the 2-bit class
			}
			WorkerExchange(f.Endpoint(i), aggID, g, comm.ToSCompress)
		}(i)
	}
	wg.Wait()
	up := f.Stats(0, aggID).PayloadBytes.Load()
	down := f.Stats(aggID, 0).PayloadBytes.Load()
	if up >= 4*gradLen/8 {
		t.Errorf("gradient leg not compressed: %d bytes", up)
	}
	if down != 4*gradLen {
		t.Errorf("weight leg must be uncompressed: %d bytes", down)
	}
}

// runAllReduceCtx executes AllReduceCtx concurrently on n nodes with the
// given options and returns each node's resulting vector; any node error
// fails the test.
func runAllReduceCtx(t *testing.T, proc comm.WireProcessor, inputs [][]float32, tos uint8, opt Options) [][]float32 {
	t.Helper()
	n := len(inputs)
	f := comm.NewFabric(n, proc)
	out := make([][]float32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := append([]float32(nil), inputs[i]...)
			errs[i] = AllReduceCtx(context.Background(), comm.AsCtxPeer(f.Endpoint(i)), g, tos, finalizeFor(proc, tos), opt)
			out[i] = g
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return out
}

// TestAllReduceChunkedBitIdentical pins the pipelining contract: for any
// ChunkSize (including sizes that do not divide the block, exceed the
// block, or are not group multiples) the chunked exchange produces
// bit-identical results to the unchunked one, with and without the lossy
// codec on the wire.
func TestAllReduceChunkedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, vec = 4, 10*1024 + 7
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = make([]float32, vec)
		for j := range inputs[i] {
			inputs[i][j] = float32(rng.NormFloat64() * 0.01)
		}
	}
	procs := map[string]comm.WireProcessor{
		"raw":   nil,
		"codec": comm.CodecProcessor{Bound: fpcodec.MustBound(10)},
	}
	for name, proc := range procs {
		tos := uint8(0)
		if proc != nil {
			tos = comm.ToSCompress
		}
		want := runAllReduceCtx(t, proc, inputs, tos, Options{})
		for _, chunkSize := range []int{1, 64, 1000, 3000, vec * 2} {
			got := runAllReduceCtx(t, proc, inputs, tos, Options{ChunkSize: chunkSize})
			for i := range got {
				for j := range got[i] {
					if math.Float32bits(got[i][j]) != math.Float32bits(want[i][j]) {
						t.Fatalf("%s chunk=%d node %d idx %d: %g vs %g",
							name, chunkSize, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestAllReduceChunkedShortVector covers blocks that are empty or smaller
// than one chunk (more nodes than gradient values).
func TestAllReduceChunkedShortVector(t *testing.T) {
	inputs := [][]float32{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	want := []float32{16, 20}
	out := runAllReduceCtx(t, nil, inputs, 0, Options{ChunkSize: 8})
	for i := range out {
		for j, v := range out[i] {
			if v != want[j] {
				t.Fatalf("node %d: got %v, want %v", i, out[i], want)
			}
		}
	}
}
