package ring

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"inceptionn/internal/comm"
)

// TestAggregateStepCtxTimeoutOnStalledWorker injects a stall into the
// worker-aggregator exchange: worker 1 never sends its gradient. With a
// StepTimeout the aggregator must fail the step with an error naming the
// wedged worker instead of blocking forever.
func TestAggregateStepCtxTimeoutOnStalledWorker(t *testing.T) {
	f := comm.NewFabric(3, nil)
	const agg = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Worker 0 participates normally; worker 1 stalls.
	go func() {
		_, _ = WorkerExchangeCtx(ctx, comm.AsCtxPeer(f.Endpoint(0)), agg, []float32{1, 2}, 0)
	}()

	done := make(chan error, 1)
	go func() {
		done <- AggregateStepCtx(ctx, comm.AsCtxPeer(f.Endpoint(agg)), []int{0, 1}, 2,
			func(sum []float32) []float32 { return sum },
			Options{StepTimeout: 50 * time.Millisecond})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aggregator succeeded despite the stalled worker")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want a step deadline", err)
		}
		if !strings.Contains(err.Error(), "from 1") {
			t.Fatalf("err = %v, want it to name stalled worker 1", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aggregator hung on the stalled worker despite StepTimeout")
	}
}
