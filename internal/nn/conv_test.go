package nn

import (
	"math"
	"math/rand"
	"testing"

	"inceptionn/internal/par"
	"inceptionn/internal/tensor"
)

// randInput returns a [batch, inC, h, w] tensor of N(0,1) values.
func randInput(rng *rand.Rand, batch, inC, h, w int) *tensor.Tensor {
	x := tensor.New(batch, inC, h, w)
	x.FillRandn(rng, 1)
	return x
}

// TestConvColsCacheSurvivesBatchResize is the regression test for the
// cache-thrash bug: the old guard (`len(c.cols) != batch`) discarded the
// entire im2col cache whenever the batch size changed, so a trailing
// partial batch reallocated every matrix on each subsequent step. The
// cache must survive a shrink-then-grow sequence and keep producing
// correct outputs.
func TestConvColsCacheSurvivesBatchResize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", 3, 4, 3, 1, 1, rng)

	// Reference layer with identical weights, fed fresh each time.
	ref := NewConv2D("ref", 3, 4, 3, 1, 1, rand.New(rand.NewSource(99)))
	copy(ref.w.W.Data, c.w.W.Data)
	copy(ref.b.W.Data, c.b.W.Data)

	check := func(x *tensor.Tensor) {
		t.Helper()
		got := c.Forward(x, true)
		want := ref.Forward(x, true)
		for i := range got.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("batch %d idx %d: %g vs %g", x.Shape[0], i, got.Data[i], want.Data[i])
			}
		}
	}

	check(randInput(rng, 4, 3, 8, 8)) // warm the cache at batch 4
	ptrs := make([]*tensor.Tensor, 4)
	copy(ptrs, c.cols[:4])

	check(randInput(rng, 2, 3, 8, 8)) // trailing partial batch (shrink)
	check(randInput(rng, 4, 3, 8, 8)) // back to full batch (grow)

	for i, p := range ptrs {
		if c.cols[i] != p {
			t.Fatalf("cols[%d] reallocated across shrink-then-grow", i)
		}
	}

	// Geometry change must invalidate per entry (both dims checked), and
	// the output must still be correct.
	check(randInput(rng, 4, 3, 6, 6))
	if c.cols[0].Shape[1] != 6*6 {
		t.Fatalf("stale cols geometry: %v", c.cols[0].Shape)
	}
	// And growing past any previously seen batch size still works.
	check(randInput(rng, 6, 3, 6, 6))
}

// TestConvForwardBackwardParallelBitIdentical pins the determinism
// contract of the batch-parallel convolution: outputs, input gradients,
// and accumulated weight/bias gradients are bit-for-bit identical for any
// worker count.
func TestConvForwardBackwardParallelBitIdentical(t *testing.T) {
	run := func(workers int) (out, dx, gw, gb []float32) {
		prev := par.SetMaxWorkers(workers)
		defer par.SetMaxWorkers(prev)
		rng := rand.New(rand.NewSource(5))
		c := NewConv2D("c", 3, 8, 3, 1, 1, rng)
		x := randInput(rng, 5, 3, 10, 10)
		y := c.Forward(x, true)
		dout := tensor.New(y.Shape...)
		dout.FillRandn(rng, 1)
		dxT := c.Backward(dout)
		return y.Data, dxT.Data, c.w.G.Data, c.b.G.Data
	}
	wantOut, wantDx, wantGw, wantGb := run(1)
	for _, workers := range []int{2, 4, 7} {
		out, dx, gw, gb := run(workers)
		for name, pair := range map[string][2][]float32{
			"out": {out, wantOut}, "dx": {dx, wantDx}, "gw": {gw, wantGw}, "gb": {gb, wantGb},
		} {
			got, want := pair[0], pair[1]
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s length %d vs %d", workers, name, len(got), len(want))
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("workers=%d %s idx %d: %g vs %g", workers, name, i, got[i], want[i])
				}
			}
		}
	}
}
