// Package nn implements the neural-network substrate: layers with forward
// and backward passes, parameter containers, a sequential network, and the
// softmax cross-entropy loss. It is the training stack the paper's DNN
// workloads (AlexNet, HDC, ResNet, VGG) run on in this reproduction.
//
// Conventions:
//   - Activations are tensors with the batch as the leading dimension:
//     [B, features] for dense layers, [B, C, H, W] for convolutional ones.
//   - Backward must be called in reverse layer order immediately after
//     Forward; layers cache whatever they need from the forward pass.
//   - Parameter gradients are *accumulated* (+=); call Network.ZeroGrads
//     before each optimization step.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"inceptionn/internal/tensor"
)

// Param is one learnable parameter tensor and its gradient.
type Param struct {
	Name  string
	W     *tensor.Tensor
	G     *tensor.Tensor
	Decay bool // weight decay applies (true for weights, false for biases)
}

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for input x. train selects
	// training-mode behaviour (dropout, batch-norm statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients along the way.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (nil if stateless).
	Params() []*Param
}

// Network is a sequential composition of layers.
type Network struct {
	Layers []Layer

	params []*Param // cached flattening
}

// NewNetwork builds a sequential network.
func NewNetwork(layers ...Layer) *Network {
	n := &Network{Layers: layers}
	for _, l := range layers {
		n.params = append(n.params, l.Params()...)
	}
	return n
}

// Forward runs all layers in order.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse order.
func (n *Network) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns all learnable parameters in layer order.
func (n *Network) Params() []*Param { return n.params }

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.params {
		total += p.W.Len()
	}
	return total
}

// SizeBytes returns the model size in bytes (float32 parameters).
func (n *Network) SizeBytes() int64 { return 4 * int64(n.NumParams()) }

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.params {
		p.G.Zero()
	}
}

// GradVector appends all parameter gradients, in layer order, to dst and
// returns the result. This is the flat vector exchanged over the network
// by the distributed training algorithms.
func (n *Network) GradVector(dst []float32) []float32 {
	for _, p := range n.params {
		dst = append(dst, p.G.Data...)
	}
	return dst
}

// SetGradVector scatters a flat gradient vector (as produced by GradVector)
// back into the parameter gradients.
func (n *Network) SetGradVector(src []float32) {
	off := 0
	for _, p := range n.params {
		copy(p.G.Data, src[off:off+p.G.Len()])
		off += p.G.Len()
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: SetGradVector got %d values, model has %d", len(src), off))
	}
}

// WeightVector appends all weights, in layer order, to dst.
func (n *Network) WeightVector(dst []float32) []float32 {
	for _, p := range n.params {
		dst = append(dst, p.W.Data...)
	}
	return dst
}

// SetWeightVector scatters a flat weight vector back into the parameters;
// used to broadcast the initial model to all workers.
func (n *Network) SetWeightVector(src []float32) {
	off := 0
	for _, p := range n.params {
		copy(p.W.Data, src[off:off+p.W.Len()])
		off += p.W.Len()
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: SetWeightVector got %d values, model has %d", len(src), off))
	}
}

// Dense is a fully connected layer: y = x·W + b with x [B, in].
type Dense struct {
	In, Out int
	w, b    *Param
	x       *tensor.Tensor // cached input
}

// NewDense constructs a Dense layer with He-normal initialization.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(in, out)
	w.FillRandn(rng, heStd(in))
	return &Dense{
		In: in, Out: out,
		w: &Param{Name: name + ".w", W: w, G: tensor.New(in, out), Decay: true},
		b: &Param{Name: name + ".b", W: tensor.New(1, out), G: tensor.New(1, out)},
	}
}

func heStd(fanIn int) float64 {
	return math.Sqrt(2 / float64(fanIn))
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.x = x
	batch := x.Shape[0]
	out := tensor.New(batch, d.Out)
	tensor.MatMul(out, x, d.w.W)
	for i := 0; i < batch; i++ {
		row := out.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.b.W.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch := dout.Shape[0]
	// dW += xᵀ·dout
	gw := tensor.New(d.In, d.Out)
	tensor.MatMulTransA(gw, d.x, dout)
	d.w.G.AddInPlace(gw)
	// db += column sums of dout
	for i := 0; i < batch; i++ {
		row := dout.Data[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			d.b.G.Data[j] += v
		}
	}
	// dx = dout·Wᵀ
	dx := tensor.New(batch, d.In)
	tensor.MatMulTransB(dx, dout, d.w.W)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }
