package nn

import (
	"math"

	"inceptionn/internal/tensor"
)

// LRN is local response normalization across channels (Krizhevsky et al.,
// 2012 — the normalization AlexNet uses between its convolution stages):
//
//	b[c] = a[c] / (k + (alpha/n)·Σ_{c'∈window(c)} a[c']²)^beta
//
// with a window of n channels centred on c.
type LRN struct {
	N     int // window size (channels)
	K     float64
	Alpha float64
	Beta  float64

	x     *tensor.Tensor
	denom []float64 // (k + alpha/n·sum)^... cached per activation
}

// NewLRN constructs an LRN layer with AlexNet's standard constants
// (n=5, k=2, alpha=1e-4, beta=0.75).
func NewLRN() *LRN {
	return &LRN{N: 5, K: 2, Alpha: 1e-4, Beta: 0.75}
}

// Forward implements Layer.
func (l *LRN) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	l.x = x
	out := tensor.New(x.Shape...)
	if len(l.denom) != x.Len() {
		l.denom = make([]float64, x.Len())
	}
	plane := h * w
	half := l.N / 2
	for b := 0; b < batch; b++ {
		for p := 0; p < plane; p++ {
			for c := 0; c < ch; c++ {
				var sum float64
				for cc := c - half; cc <= c+half; cc++ {
					if cc < 0 || cc >= ch {
						continue
					}
					v := float64(x.Data[(b*ch+cc)*plane+p])
					sum += v * v
				}
				idx := (b*ch+c)*plane + p
				d := l.K + l.Alpha/float64(l.N)*sum
				l.denom[idx] = d
				out.Data[idx] = float32(float64(x.Data[idx]) * math.Pow(d, -l.Beta))
			}
		}
	}
	return out
}

// Backward implements Layer. For y_c = a_c·d_c^-β with
// d_c = k + (α/n)Σ a², the gradient is
//
//	∂L/∂a_c = g_c·d_c^-β − (2αβ/n)·a_c·Σ_{c'∈window⁻¹(c)} g_c'·a_c'·d_c'^-(β+1)
func (l *LRN) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch, ch, h, w := l.x.Shape[0], l.x.Shape[1], l.x.Shape[2], l.x.Shape[3]
	dx := tensor.New(l.x.Shape...)
	plane := h * w
	half := l.N / 2
	scale := 2 * l.Alpha * l.Beta / float64(l.N)
	for b := 0; b < batch; b++ {
		for p := 0; p < plane; p++ {
			for c := 0; c < ch; c++ {
				idx := (b*ch+c)*plane + p
				grad := float64(dout.Data[idx]) * math.Pow(l.denom[idx], -l.Beta)
				// Contributions from outputs whose window includes c.
				var cross float64
				for cc := c - half; cc <= c+half; cc++ {
					if cc < 0 || cc >= ch {
						continue
					}
					j := (b*ch+cc)*plane + p
					cross += float64(dout.Data[j]) * float64(l.x.Data[j]) *
						math.Pow(l.denom[j], -(l.Beta+1))
				}
				grad -= scale * float64(l.x.Data[idx]) * cross
				dx.Data[idx] = float32(grad)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (l *LRN) Params() []*Param { return nil }

// AvgPool2D is windowed average pooling over [B, C, H, W] inputs.
type AvgPool2D struct {
	K, Stride int

	inShape []int
}

// NewAvgPool2D constructs an average pooling layer (square window).
func NewAvgPool2D(k, stride int) *AvgPool2D {
	return &AvgPool2D{K: k, Stride: stride}
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	outW := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	p.inShape = x.Shape
	out := tensor.New(batch, ch, outH, outW)
	inv := 1 / float32(p.K*p.K)
	oi := 0
	for bc := 0; bc < batch*ch; bc++ {
		plane := x.Data[bc*h*w : (bc+1)*h*w]
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var s float32
				for ky := 0; ky < p.K; ky++ {
					row := (oy*p.Stride + ky) * w
					for kx := 0; kx < p.K; kx++ {
						s += plane[row+ox*p.Stride+kx]
					}
				}
				out.Data[oi] = s * inv
				oi++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch, ch, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	outH := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	outW := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	dx := tensor.New(p.inShape...)
	inv := 1 / float32(p.K*p.K)
	oi := 0
	for bc := 0; bc < batch*ch; bc++ {
		plane := dx.Data[bc*h*w : (bc+1)*h*w]
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				g := dout.Data[oi] * inv
				oi++
				for ky := 0; ky < p.K; ky++ {
					row := (oy*p.Stride + ky) * w
					for kx := 0; kx < p.K; kx++ {
						plane[row+ox*p.Stride+kx] += g
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }
