package nn

import (
	"inceptionn/internal/tensor"
)

// Residual wraps a body network with an identity (or 1×1 projection)
// shortcut: out = ReLU(body(x) + shortcut(x)). This is the basic ResNet
// building block (He et al., 2015).
type Residual struct {
	Body     *Network
	Shortcut Layer // nil for identity

	relu *ReLU
	sum  *tensor.Tensor
}

// NewResidual constructs a residual block. shortcut may be nil when the
// body preserves the activation shape.
func NewResidual(body *Network, shortcut Layer) *Residual {
	return &Residual{Body: body, Shortcut: shortcut, relu: NewReLU()}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.Body.Forward(x, train)
	skip := x
	if r.Shortcut != nil {
		skip = r.Shortcut.Forward(x, train)
	}
	r.sum = main.Clone()
	r.sum.AddInPlace(skip)
	return r.relu.Forward(r.sum, train)
}

// Backward implements Layer.
func (r *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dsum := r.relu.Backward(dout)
	dx := r.Body.Backward(dsum)
	if r.Shortcut != nil {
		dskip := r.Shortcut.Backward(dsum)
		dx = dx.Clone()
		dx.AddInPlace(dskip)
	} else {
		dx = dx.Clone()
		dx.AddInPlace(dsum)
	}
	return dx
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Shortcut != nil {
		ps = append(append([]*Param(nil), ps...), r.Shortcut.Params()...)
	}
	return ps
}
