package nn

import (
	"math"

	"inceptionn/internal/tensor"
)

// BatchNorm2D normalizes each channel of a [B, C, H, W] activation over the
// batch and spatial dimensions, with learnable scale (gamma) and shift
// (beta) and running statistics for evaluation mode.
type BatchNorm2D struct {
	C        int
	Momentum float64
	Eps      float64

	gamma, beta *Param

	runMean, runVar []float64

	// forward cache
	xhat   *tensor.Tensor
	invStd []float64
	shape  []int
}

// NewBatchNorm2D constructs a batch-norm layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	gamma := tensor.New(1, c)
	gamma.Fill(1)
	bn := &BatchNorm2D{
		C: c, Momentum: 0.9, Eps: 1e-5,
		gamma:   &Param{Name: name + ".gamma", W: gamma, G: tensor.New(1, c)},
		beta:    &Param{Name: name + ".beta", W: tensor.New(1, c), G: tensor.New(1, c)},
		runMean: make([]float64, c),
		runVar:  make([]float64, c),
		invStd:  make([]float64, c),
	}
	for i := range bn.runVar {
		bn.runVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != bn.C {
		panic("nn: BatchNorm2D channel mismatch")
	}
	bn.shape = x.Shape
	out := tensor.New(x.Shape...)
	bn.xhat = tensor.New(x.Shape...)
	plane := h * w
	n := float64(batch * plane)
	for c := 0; c < ch; c++ {
		var mean, variance float64
		if train {
			for b := 0; b < batch; b++ {
				data := x.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
				for _, v := range data {
					mean += float64(v)
				}
			}
			mean /= n
			for b := 0; b < batch; b++ {
				data := x.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
				for _, v := range data {
					d := float64(v) - mean
					variance += d * d
				}
			}
			variance /= n
			bn.runMean[c] = bn.Momentum*bn.runMean[c] + (1-bn.Momentum)*mean
			bn.runVar[c] = bn.Momentum*bn.runVar[c] + (1-bn.Momentum)*variance
		} else {
			mean, variance = bn.runMean[c], bn.runVar[c]
		}
		invStd := 1 / math.Sqrt(variance+bn.Eps)
		bn.invStd[c] = invStd
		g := float64(bn.gamma.W.Data[c])
		bta := float64(bn.beta.W.Data[c])
		for b := 0; b < batch; b++ {
			src := x.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
			xh := bn.xhat.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
			dst := out.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
			for i, v := range src {
				nv := (float64(v) - mean) * invStd
				xh[i] = float32(nv)
				dst[i] = float32(g*nv + bta)
			}
		}
	}
	return out
}

// Backward implements Layer. Uses the standard batch-norm gradient:
// dx = gamma*invStd/n * (n*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat)).
func (bn *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch, ch := bn.shape[0], bn.shape[1]
	plane := bn.shape[2] * bn.shape[3]
	n := float64(batch * plane)
	dx := tensor.New(bn.shape...)
	for c := 0; c < ch; c++ {
		var sumDy, sumDyXhat float64
		for b := 0; b < batch; b++ {
			dy := dout.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
			xh := bn.xhat.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
			for i, v := range dy {
				sumDy += float64(v)
				sumDyXhat += float64(v) * float64(xh[i])
			}
		}
		bn.gamma.G.Data[c] += float32(sumDyXhat)
		bn.beta.G.Data[c] += float32(sumDy)
		g := float64(bn.gamma.W.Data[c])
		k := g * bn.invStd[c] / n
		for b := 0; b < batch; b++ {
			dy := dout.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
			xh := bn.xhat.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
			dst := dx.Data[(b*ch+c)*plane : (b*ch+c+1)*plane]
			for i, v := range dy {
				dst[i] = float32(k * (n*float64(v) - sumDy - float64(xh[i])*sumDyXhat))
			}
		}
	}
	return dx
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.gamma, bn.beta} }
