package nn

import (
	"math"
	"math/rand"
	"testing"

	"inceptionn/internal/tensor"
)

// numericalGrad estimates dLoss/dtheta by central differences for a single
// scalar parameter location.
func numericalGrad(loss func() float64, theta *float32) float64 {
	const eps = 1e-3
	orig := *theta
	*theta = orig + eps
	up := loss()
	*theta = orig - eps
	down := loss()
	*theta = orig
	return (up - down) / (2 * eps)
}

// checkLayerGradients drives a layer with a scalar loss sum(out²)/2 and
// compares analytic parameter and input gradients against numerical ones.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	lossOf := func() float64 {
		out := layer.Forward(x, true)
		var s float64
		for _, v := range out.Data {
			s += 0.5 * float64(v) * float64(v)
		}
		return s
	}
	out := layer.Forward(x, true)
	dout := out.Clone() // dL/dout = out for our quadratic loss
	for _, p := range layer.Params() {
		p.G.Zero()
	}
	dx := layer.Backward(dout)

	for _, p := range layer.Params() {
		n := p.W.Len()
		stride := n/5 + 1
		for i := 0; i < n; i += stride {
			want := numericalGrad(lossOf, &p.W.Data[i])
			got := float64(p.G.Data[i])
			if math.Abs(got-want) > tol*(math.Abs(want)+1) {
				t.Errorf("%s[%d]: analytic %g, numerical %g", p.Name, i, got, want)
			}
		}
	}
	stride := x.Len()/5 + 1
	for i := 0; i < x.Len(); i += stride {
		want := numericalGrad(lossOf, &x.Data[i])
		got := float64(dx.Data[i])
		if math.Abs(got-want) > tol*(math.Abs(want)+1) {
			t.Errorf("dx[%d]: analytic %g, numerical %g", i, got, want)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("fc", 6, 4, rng)
	x := tensor.New(3, 6)
	x.FillRandn(rng, 1)
	checkLayerGradients(t, d, x, 1e-2)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D("conv", 2, 3, 3, 1, 1, rng)
	x := tensor.New(2, 2, 5, 5)
	x.FillRandn(rng, 1)
	checkLayerGradients(t, c, x, 2e-2)
}

func TestConvStrideGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D("conv", 1, 2, 3, 2, 0, rng)
	x := tensor.New(1, 1, 7, 7)
	x.FillRandn(rng, 1)
	checkLayerGradients(t, c, x, 2e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewMaxPool2D(2, 2)
	x := tensor.New(2, 2, 4, 4)
	// Well-separated values avoid argmax ties that break finite differences.
	perm := rng.Perm(x.Len())
	for i := range x.Data {
		x.Data[i] = float32(perm[i]) * 0.1
	}
	checkLayerGradients(t, p, x, 1e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewGlobalAvgPool2D()
	x := tensor.New(2, 3, 4, 4)
	x.FillRandn(rng, 1)
	checkLayerGradients(t, p, x, 1e-2)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-1, 2, 0, 3}, 1, 4)
	out := r.Forward(x, true)
	want := []float32{0, 2, 0, 3}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("forward[%d] = %g, want %g", i, out.Data[i], want[i])
		}
	}
	dout := tensor.FromSlice([]float32{10, 10, 10, 10}, 1, 4)
	dx := r.Backward(dout)
	wantDx := []float32{0, 10, 0, 10}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("backward[%d] = %g, want %g", i, dx.Data[i], wantDx[i])
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.New(4, 3, 2, 2)
	x.FillRandn(rng, 1)
	checkLayerGradients(t, bn, x, 5e-2)
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(8, 2, 3, 3)
	x.FillRandn(rng, 3)
	for i := range x.Data {
		x.Data[i] += 5 // shifted input
	}
	out := bn.Forward(x, true)
	// Per-channel mean ~0, var ~1 after normalization with gamma=1, beta=0.
	plane := 9
	for c := 0; c < 2; c++ {
		var mean float64
		count := 0
		for b := 0; b < 8; b++ {
			data := out.Data[(b*2+c)*plane : (b*2+c+1)*plane]
			for _, v := range data {
				mean += float64(v)
				count++
			}
		}
		mean /= float64(count)
		if math.Abs(mean) > 1e-4 {
			t.Errorf("channel %d mean = %g", c, mean)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm2D("bn", 1)
	x := tensor.New(4, 1, 2, 2)
	for i := 0; i < 50; i++ {
		x.FillRandn(rng, 2)
		bn.Forward(x, true)
	}
	// In eval mode the same input twice must give identical output, and the
	// output must not be exactly batch-normalized (running stats differ).
	x.FillRandn(rng, 2)
	a := bn.Forward(x, false)
	b := bn.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("eval mode not deterministic")
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDropout(0.5, rng)
	x := tensor.New(1, 10000)
	x.Fill(1)
	out := d.Forward(x, true)
	zeros, kept := 0, 0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		} else {
			if math.Abs(float64(v)-2) > 1e-6 {
				t.Fatalf("kept value %g, want 2 (inverted dropout)", v)
			}
			kept++
		}
	}
	if zeros < 4500 || zeros > 5500 {
		t.Errorf("dropped %d of 10000 at p=0.5", zeros)
	}
	evalOut := d.Forward(x, false)
	for _, v := range evalOut.Data {
		if v != 1 {
			t.Fatal("eval mode must be identity")
		}
	}
	_ = kept
}

func TestFlattenRoundtrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	out := f.Forward(x, true)
	if out.Shape[0] != 2 || out.Shape[1] != 60 {
		t.Fatalf("flatten shape %v", out.Shape)
	}
	back := f.Backward(out)
	if len(back.Shape) != 4 || back.Shape[3] != 5 {
		t.Fatalf("unflatten shape %v", back.Shape)
	}
}

func TestResidualIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	body := NewNetwork(
		NewConv2D("c1", 2, 2, 3, 1, 1, rng),
		NewReLU(),
		NewConv2D("c2", 2, 2, 3, 1, 1, rng),
	)
	res := NewResidual(body, nil)
	x := tensor.New(1, 2, 4, 4)
	x.FillRandn(rng, 0.5)
	checkLayerGradients(t, res, x, 3e-2)
}

func TestResidualProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	body := NewNetwork(
		NewConv2D("c1", 2, 4, 3, 2, 1, rng),
	)
	proj := NewConv2D("proj", 2, 4, 1, 2, 0, rng)
	res := NewResidual(body, proj)
	x := tensor.New(1, 2, 4, 4)
	x.FillRandn(rng, 0.5)
	checkLayerGradients(t, res, x, 3e-2)
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	logits := tensor.New(3, 5)
	logits.FillRandn(rng, 1)
	labels := []int{1, 4, 0}
	var sce SoftmaxCrossEntropy
	_, grad := sce.Loss(logits, labels)
	for i := range logits.Data {
		want := numericalGrad(func() float64 {
			l, _ := sce.Loss(logits, labels)
			return l
		}, &logits.Data[i])
		if math.Abs(float64(grad.Data[i])-want) > 1e-3 {
			t.Errorf("grad[%d]: analytic %g, numerical %g", i, grad.Data[i], want)
		}
	}
}

func TestSoftmaxLossValueUniform(t *testing.T) {
	// Uniform logits: loss = ln(classes).
	logits := tensor.New(2, 10)
	var sce SoftmaxCrossEntropy
	loss, _ := sce.Loss(logits, []int{3, 7})
	if math.Abs(loss-math.Log(10)) > 1e-6 {
		t.Fatalf("uniform loss = %g, want ln10 = %g", loss, math.Log(10))
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		0.1, 0.9, 0.0,
		2.0, 1.0, 1.5,
	}, 2, 3)
	pred := Predict(logits)
	if pred[0] != 1 || pred[1] != 0 {
		t.Fatalf("Predict = %v", pred)
	}
	if acc := Accuracy(logits, []int{1, 2}); math.Abs(acc-0.5) > 1e-9 {
		t.Fatalf("Accuracy = %g", acc)
	}
}

func TestNetworkVectorRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork(
		NewDense("fc1", 4, 8, rng),
		NewReLU(),
		NewDense("fc2", 8, 3, rng),
	)
	if net.NumParams() != 4*8+8+8*3+3 {
		t.Fatalf("NumParams = %d", net.NumParams())
	}
	if net.SizeBytes() != int64(4*net.NumParams()) {
		t.Fatalf("SizeBytes = %d", net.SizeBytes())
	}
	w := net.WeightVector(nil)
	if len(w) != net.NumParams() {
		t.Fatalf("WeightVector len = %d", len(w))
	}
	// Perturb and restore.
	for i := range w {
		w[i] += 1
	}
	net.SetWeightVector(w)
	w2 := net.WeightVector(nil)
	for i := range w {
		if w2[i] != w[i] {
			t.Fatal("SetWeightVector/WeightVector mismatch")
		}
	}

	g := make([]float32, net.NumParams())
	for i := range g {
		g[i] = float32(i)
	}
	net.SetGradVector(g)
	g2 := net.GradVector(nil)
	for i := range g {
		if g2[i] != g[i] {
			t.Fatal("SetGradVector/GradVector mismatch")
		}
	}
	net.ZeroGrads()
	for _, v := range net.GradVector(nil) {
		if v != 0 {
			t.Fatal("ZeroGrads left nonzero gradient")
		}
	}
}

func TestGradAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := NewDense("fc", 3, 2, rng)
	x := tensor.New(2, 3)
	x.FillRandn(rng, 1)
	out := d.Forward(x, true)
	dout := out.Clone()
	for _, p := range d.Params() {
		p.G.Zero()
	}
	d.Backward(dout)
	once := d.Params()[0].G.Clone()
	d.Forward(x, true)
	d.Backward(dout)
	twice := d.Params()[0].G
	for i := range once.Data {
		if math.Abs(float64(twice.Data[i]-2*once.Data[i])) > 1e-4 {
			t.Fatalf("gradient not accumulated: %g vs 2*%g", twice.Data[i], once.Data[i])
		}
	}
}

// TestTinyNetworkLearnsXOR is an end-to-end sanity check: a 2-layer MLP
// must fit XOR with plain gradient descent.
func TestTinyNetworkLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewNetwork(
		NewDense("fc1", 2, 8, rng),
		NewReLU(),
		NewDense("fc2", 8, 2, rng),
	)
	x := tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	var sce SoftmaxCrossEntropy
	var loss float64
	for it := 0; it < 2000; it++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = sce.Loss(logits, labels)
		net.Backward(grad)
		for _, p := range net.Params() {
			p.W.Axpy(-0.1, p.G)
		}
	}
	logits := net.Forward(x, false)
	if acc := Accuracy(logits, labels); acc != 1 {
		t.Fatalf("XOR accuracy = %g (loss %g)", acc, loss)
	}
}

func TestLRNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	l := NewLRN()
	x := tensor.New(2, 7, 3, 3) // more channels than the window
	x.FillRandn(rng, 1)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestLRNNormalizesLargeActivations(t *testing.T) {
	l := NewLRN()
	x := tensor.New(1, 5, 1, 1)
	x.Fill(100)
	out := l.Forward(x, true)
	for i, v := range out.Data {
		if v >= 100 {
			t.Fatalf("channel %d not suppressed: %g", i, v)
		}
	}
	// Small activations pass nearly unchanged (denominator ~k^beta).
	x.Fill(0.01)
	out = l.Forward(x, true)
	want := 0.01 * float32(math.Pow(2, -0.75))
	for i, v := range out.Data {
		if math.Abs(float64(v-want)) > 1e-6 {
			t.Fatalf("channel %d: %g, want %g", i, v, want)
		}
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := NewAvgPool2D(2, 2)
	x := tensor.New(2, 3, 4, 4)
	x.FillRandn(rng, 1)
	checkLayerGradients(t, p, x, 1e-2)
}

func TestAvgPoolValues(t *testing.T) {
	p := NewAvgPool2D(2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := p.Forward(x, true)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out.Data[i], want[i])
		}
	}
}
