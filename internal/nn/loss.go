package nn

import (
	"math"

	"inceptionn/internal/tensor"
)

// SoftmaxCrossEntropy combines the softmax activation with the
// cross-entropy loss, the standard classification head.
type SoftmaxCrossEntropy struct{}

// Loss returns the mean cross-entropy over the batch and the gradient
// ∂L/∂logits. logits is [B, classes]; labels holds B class indices.
func (SoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	batch, classes := logits.Shape[0], logits.Shape[1]
	if len(labels) != batch {
		panic("nn: label count mismatch")
	}
	grad := tensor.New(batch, classes)
	var total float64
	invB := 1 / float64(batch)
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		// Numerically stable softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		label := labels[b]
		total += -(float64(row[label]-maxv) - logSum)
		grow := grad.Data[b*classes : (b+1)*classes]
		for j, v := range row {
			p := math.Exp(float64(v-maxv)) / sum
			grow[j] = float32(p * invB)
		}
		grow[label] -= float32(invB)
	}
	return total * invB, grad
}

// Predict returns the argmax class for each row of logits.
func Predict(logits *tensor.Tensor) []int {
	batch, classes := logits.Shape[0], logits.Shape[1]
	out := make([]int, batch)
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[b] = best
	}
	return out
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := Predict(logits)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
