package nn

import (
	"math/rand"

	"inceptionn/internal/par"
	"inceptionn/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] inputs, implemented by
// im2col lowering to matrix multiplication.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int

	w, b *Param

	// forward cache
	x          *tensor.Tensor
	cols       []*tensor.Tensor // per-batch-element im2col matrices
	outH, outW int
}

// NewConv2D constructs a convolution with He-normal initialization.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	w := tensor.New(outC, inC*k*k)
	w.FillRandn(rng, heStd(inC*k*k))
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		w: &Param{Name: name + ".w", W: w, G: tensor.New(outC, inC*k*k), Decay: true},
		b: &Param{Name: name + ".b", W: tensor.New(1, outC), G: tensor.New(1, outC)},
	}
}

// Forward implements Layer. Batch elements are processed in parallel
// shards (each writes a disjoint slice of the output), so results are
// bit-identical for any worker count.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	c.outH = tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
	c.x = x
	// Grow the per-sample im2col cache without discarding survivors: the
	// old `len != batch` reset meant one trailing partial batch forced a
	// full reallocation on every subsequent full-size step. Entries keep
	// their matrices across shrink-then-grow batch sequences; stale
	// geometry is caught per entry below.
	for len(c.cols) < batch {
		c.cols = append(c.cols, nil)
	}
	out := tensor.New(batch, c.OutC, c.outH, c.outW)
	rows := c.InC * c.K * c.K
	spatial := c.outH * c.outW
	par.For(batch, 1, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			img := tensor.FromSlice(
				x.Data[bi*c.InC*h*w:(bi+1)*c.InC*h*w], c.InC, h, w)
			if col := c.cols[bi]; col == nil || col.Shape[0] != rows || col.Shape[1] != spatial {
				c.cols[bi] = tensor.New(rows, spatial)
			}
			tensor.Im2Col(c.cols[bi], img, c.K, c.K, c.Stride, c.Pad)
			res := tensor.FromSlice(
				out.Data[bi*c.OutC*spatial:(bi+1)*c.OutC*spatial], c.OutC, spatial)
			tensor.MatMul(res, c.w.W, c.cols[bi])
			for oc := 0; oc < c.OutC; oc++ {
				bias := c.b.W.Data[oc]
				row := res.Data[oc*spatial : (oc+1)*spatial]
				for i := range row {
					row[i] += bias
				}
			}
		}
	})
	return out
}

// Backward implements Layer. Per-sample work runs in parallel into
// private buffers; the weight/bias gradient contributions are then
// reduced into the shared accumulators in ascending sample order, so the
// result is bit-identical to the sequential loop for any worker count.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch, h, w := c.x.Shape[0], c.x.Shape[2], c.x.Shape[3]
	rows := c.InC * c.K * c.K
	spatial := c.outH * c.outW
	dx := tensor.New(batch, c.InC, h, w)
	gws := make([]*tensor.Tensor, batch)
	dbs := make([][]float32, batch)
	par.For(batch, 1, func(lo, hi int) {
		// Scratch shared across this shard's samples only.
		dcols := tensor.New(rows, spatial)
		dimg := tensor.New(c.InC, h, w)
		for bi := lo; bi < hi; bi++ {
			dres := tensor.FromSlice(
				dout.Data[bi*c.OutC*spatial:(bi+1)*c.OutC*spatial], c.OutC, spatial)
			// dW contribution: dres · colsᵀ
			gw := tensor.New(c.OutC, rows)
			tensor.MatMulTransB(gw, dres, c.cols[bi])
			gws[bi] = gw
			// db contribution: row sums of dres
			db := make([]float32, c.OutC)
			for oc := 0; oc < c.OutC; oc++ {
				var s float32
				row := dres.Data[oc*spatial : (oc+1)*spatial]
				for _, v := range row {
					s += v
				}
				db[oc] = s
			}
			dbs[bi] = db
			// dcols = Wᵀ · dres, then scatter back to image space.
			tensor.MatMulTransA(dcols, c.w.W, dres)
			tensor.Col2Im(dimg, dcols, c.K, c.K, c.Stride, c.Pad)
			copy(dx.Data[bi*c.InC*h*w:(bi+1)*c.InC*h*w], dimg.Data)
		}
	})
	for bi := 0; bi < batch; bi++ {
		c.w.G.AddInPlace(gws[bi])
		for oc, s := range dbs[bi] {
			c.b.G.Data[oc] += s
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// MaxPool2D is a max pooling layer over [B, C, H, W] inputs.
type MaxPool2D struct {
	K, Stride int

	argmax  []int32 // flat index into the input for each output element
	inShape []int
}

// NewMaxPool2D constructs a max pooling layer (square window).
func NewMaxPool2D(k, stride int) *MaxPool2D {
	return &MaxPool2D{K: k, Stride: stride}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	outW := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	out := tensor.New(batch, ch, outH, outW)
	p.inShape = x.Shape
	if len(p.argmax) != out.Len() {
		p.argmax = make([]int32, out.Len())
	}
	oi := 0
	for bi := 0; bi < batch; bi++ {
		for c := 0; c < ch; c++ {
			plane := x.Data[(bi*ch+c)*h*w : (bi*ch+c+1)*h*w]
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := float32(0)
					bestIdx := -1
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						if iy >= h {
							break
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							if ix >= w {
								break
							}
							idx := iy*w + ix
							if bestIdx < 0 || plane[idx] > best {
								best = plane[idx]
								bestIdx = idx
							}
						}
					}
					out.Data[oi] = best
					p.argmax[oi] = int32((bi*ch+c)*h*w + bestIdx)
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	for i, v := range dout.Data {
		dx.Data[p.argmax[i]] += v
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool2D averages each channel plane to a single value, mapping
// [B, C, H, W] to [B, C].
type GlobalAvgPool2D struct {
	inShape []int
}

// NewGlobalAvgPool2D constructs a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward implements Layer.
func (p *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	p.inShape = x.Shape
	out := tensor.New(batch, ch)
	area := float32(h * w)
	for bc := 0; bc < batch*ch; bc++ {
		var s float32
		plane := x.Data[bc*h*w : (bc+1)*h*w]
		for _, v := range plane {
			s += v
		}
		out.Data[bc] = s / area
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	h, w := p.inShape[2], p.inShape[3]
	dx := tensor.New(p.inShape...)
	inv := 1 / float32(h*w)
	for bc, v := range dout.Data {
		g := v * inv
		plane := dx.Data[bc*h*w : (bc+1)*h*w]
		for i := range plane {
			plane[i] = g
		}
	}
	return dx
}

// Params implements Layer.
func (p *GlobalAvgPool2D) Params() []*Param { return nil }
