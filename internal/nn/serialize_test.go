package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"inceptionn/internal/tensor"
)

func newRandomInput(rng *rand.Rand) *tensor.Tensor {
	x := tensor.New(3, 8)
	x.FillRandn(rng, 1)
	return x
}

func testNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(
		NewDense("fc1", 8, 16, rng),
		NewReLU(),
		NewDense("fc2", 16, 4, rng),
	)
}

func TestSaveLoadRoundtrip(t *testing.T) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := testNet(2) // different init
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a := src.WeightVector(nil)
	b := dst.WeightVector(nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs after load", i)
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	n := testNet(1)
	if err := n.Load(bytes.NewReader([]byte("not a checkpoint....."))); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v, want bad-magic error", err)
	}
}

func TestLoadRejectsStructureMismatch(t *testing.T) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	other := NewNetwork(NewDense("fc1", 8, 16, rng)) // fewer tensors
	if err := other.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected tensor-count mismatch error")
	}
	sizeMismatch := NewNetwork(
		NewDense("fc1", 8, 17, rng),
		NewReLU(),
		NewDense("fc2", 17, 4, rng),
	)
	if err := sizeMismatch.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected size mismatch error")
	}
	nameMismatch := NewNetwork(
		NewDense("fcX", 8, 16, rng),
		NewReLU(),
		NewDense("fc2", 16, 4, rng),
	)
	if err := nameMismatch.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected name mismatch error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := testNet(2)
	if err := dst.Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("expected error on truncated checkpoint")
	}
}

func TestLoadRejectsCorruptByteAndLeavesStateUntouched(t *testing.T) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := testNet(2)
	before := dst.WeightVector(nil)
	// Flip one payload byte: the CRC must catch it and the target network
	// must keep its original weights (no partial restore).
	for _, pos := range []int{16, buf.Len() / 2, buf.Len() - 6} {
		bad := append([]byte(nil), buf.Bytes()...)
		bad[pos] ^= 0x40
		err := dst.Load(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("corrupt byte at %d accepted", pos)
		}
		after := dst.WeightVector(nil)
		for i := range before {
			if math.Float32bits(before[i]) != math.Float32bits(after[i]) {
				t.Fatalf("failed load mutated weight %d (corruption at byte %d)", i, pos)
			}
		}
	}
}

func TestLoadRejectsVersion1(t *testing.T) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 1 // rewrite version field
	if err := src.Load(bytes.NewReader(b)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want unsupported-version error", err)
	}
}

// FuzzLoad feeds arbitrary streams to Load: it must never panic, and a
// failed load must never leave partial state behind.
func FuzzLoad(f *testing.F) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))
	f.Add(append([]byte(nil), valid[:13]...))
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint at all"))
	bad := append([]byte(nil), valid...)
	bad[len(bad)/3] ^= 0xFF
	f.Add(bad)
	f.Fuzz(func(t *testing.T, b []byte) {
		n := testNet(7)
		before := n.WeightVector(nil)
		err := n.Load(bytes.NewReader(b))
		after := n.WeightVector(nil)
		if err != nil {
			for i := range before {
				if math.Float32bits(before[i]) != math.Float32bits(after[i]) {
					t.Fatalf("failed load mutated weight %d", i)
				}
			}
		}
	})
}

func TestCheckpointPreservesBehaviour(t *testing.T) {
	src := testNet(4)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := testNet(5)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := newRandomInput(rng)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("output %d differs after checkpoint restore", i)
		}
	}
}
