package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"inceptionn/internal/tensor"
)

func newRandomInput(rng *rand.Rand) *tensor.Tensor {
	x := tensor.New(3, 8)
	x.FillRandn(rng, 1)
	return x
}

func testNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(
		NewDense("fc1", 8, 16, rng),
		NewReLU(),
		NewDense("fc2", 16, 4, rng),
	)
}

func TestSaveLoadRoundtrip(t *testing.T) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := testNet(2) // different init
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a := src.WeightVector(nil)
	b := dst.WeightVector(nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs after load", i)
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	n := testNet(1)
	if err := n.Load(bytes.NewReader([]byte("not a checkpoint....."))); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v, want bad-magic error", err)
	}
}

func TestLoadRejectsStructureMismatch(t *testing.T) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	other := NewNetwork(NewDense("fc1", 8, 16, rng)) // fewer tensors
	if err := other.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected tensor-count mismatch error")
	}
	sizeMismatch := NewNetwork(
		NewDense("fc1", 8, 17, rng),
		NewReLU(),
		NewDense("fc2", 17, 4, rng),
	)
	if err := sizeMismatch.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected size mismatch error")
	}
	nameMismatch := NewNetwork(
		NewDense("fcX", 8, 16, rng),
		NewReLU(),
		NewDense("fc2", 16, 4, rng),
	)
	if err := nameMismatch.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected name mismatch error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	src := testNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := testNet(2)
	if err := dst.Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("expected error on truncated checkpoint")
	}
}

func TestCheckpointPreservesBehaviour(t *testing.T) {
	src := testNet(4)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := testNet(5)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := newRandomInput(rng)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("output %d differs after checkpoint restore", i)
		}
	}
}
