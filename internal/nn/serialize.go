package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint format (little-endian):
//
//	u32 magic "INCW"
//	u32 version (2)
//	u32 parameter-tensor count
//	per tensor: u32 name length, name bytes, u32 element count, elements
//	u32 CRC32-C (Castagnoli) of all preceding bytes
//
// Version 1 lacked the trailing checksum; it is no longer produced and is
// rejected on load with a descriptive error. Load is transactional: the
// stream is fully parsed and verified against the checksum before any
// network state is mutated, so a truncated or corrupt checkpoint can
// never leave a replica half-restored.
const (
	checkpointMagic   = 0x494E4357
	checkpointVersion = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the network's weights to w as a checkpoint.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := crc32.New(castagnoli)
	out := io.MultiWriter(bw, h)
	var head [12]byte
	binary.LittleEndian.PutUint32(head[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(head[4:], checkpointVersion)
	binary.LittleEndian.PutUint32(head[8:], uint32(len(n.params)))
	if _, err := out.Write(head[:]); err != nil {
		return fmt.Errorf("nn: save header: %w", err)
	}
	var scratch [4]byte
	for _, p := range n.params {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(p.Name)))
		if _, err := out.Write(scratch[:]); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		if _, err := out.Write([]byte(p.Name)); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		binary.LittleEndian.PutUint32(scratch[:], uint32(p.W.Len()))
		if _, err := out.Write(scratch[:]); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		raw := make([]byte, 4*len(p.W.Data))
		for i, v := range p.W.Data {
			binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
		}
		if _, err := out.Write(raw); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
	}
	binary.LittleEndian.PutUint32(scratch[:], h.Sum32())
	if _, err := bw.Write(scratch[:]); err != nil {
		return fmt.Errorf("nn: save checksum: %w", err)
	}
	return bw.Flush()
}

// Load restores weights saved by Save into the network. The checkpoint's
// parameter names, order, and sizes must match the network exactly, and
// the trailing CRC32-C must verify. On any error the network is left
// untouched — state is committed only after the whole stream checks out.
func (n *Network) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	h := crc32.New(castagnoli)
	tr := io.TeeReader(br, h)
	var head [12]byte
	if _, err := io.ReadFull(tr, head[:]); err != nil {
		return fmt.Errorf("nn: load header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:]) != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d (this build reads version %d)", v, checkpointVersion)
	}
	count := int(binary.LittleEndian.Uint32(head[8:]))
	if count != len(n.params) {
		return fmt.Errorf("nn: checkpoint has %d tensors, network has %d", count, len(n.params))
	}
	// Stage every tensor before touching the network, validating sizes
	// against the model (not the stream) so a corrupt length field can
	// neither over-allocate nor misalign the parse.
	var scratch [4]byte
	staged := make([][]float32, len(n.params))
	for pi, p := range n.params {
		if _, err := io.ReadFull(tr, scratch[:]); err != nil {
			return fmt.Errorf("nn: load %s: %w", p.Name, err)
		}
		nameLen := int(binary.LittleEndian.Uint32(scratch[:]))
		if nameLen != len(p.Name) {
			return fmt.Errorf("nn: tensor %d name length %d, network expects %q", pi, nameLen, p.Name)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(tr, name); err != nil {
			return fmt.Errorf("nn: load %s: %w", p.Name, err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint tensor %q, network expects %q", name, p.Name)
		}
		if _, err := io.ReadFull(tr, scratch[:]); err != nil {
			return fmt.Errorf("nn: load %s: %w", p.Name, err)
		}
		if got := int(binary.LittleEndian.Uint32(scratch[:])); got != p.W.Len() {
			return fmt.Errorf("nn: tensor %s has %d elements, network expects %d",
				p.Name, got, p.W.Len())
		}
		raw := make([]byte, 4*p.W.Len())
		if _, err := io.ReadFull(tr, raw); err != nil {
			return fmt.Errorf("nn: load %s data: %w", p.Name, err)
		}
		vals := make([]float32, p.W.Len())
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		staged[pi] = vals
	}
	sum := h.Sum32()
	// The stored checksum is read outside the tee so it does not hash itself.
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return fmt.Errorf("nn: load checksum: %w", err)
	}
	if stored := binary.LittleEndian.Uint32(scratch[:]); stored != sum {
		return fmt.Errorf("nn: checkpoint checksum mismatch (stored %08x, computed %08x): corrupt or truncated stream", stored, sum)
	}
	for pi, p := range n.params {
		copy(p.W.Data, staged[pi])
	}
	return nil
}
