package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint format (little-endian):
//
//	u32 magic "INCW"
//	u32 version (1)
//	u32 parameter-tensor count
//	per tensor: u32 name length, name bytes, u32 element count, elements
const (
	checkpointMagic   = 0x494E4357
	checkpointVersion = 1
)

// Save writes the network's weights to w as a checkpoint.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var head [12]byte
	binary.LittleEndian.PutUint32(head[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(head[4:], checkpointVersion)
	binary.LittleEndian.PutUint32(head[8:], uint32(len(n.params)))
	if _, err := bw.Write(head[:]); err != nil {
		return fmt.Errorf("nn: save header: %w", err)
	}
	var scratch [4]byte
	for _, p := range n.params {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(p.Name)))
		if _, err := bw.Write(scratch[:]); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		binary.LittleEndian.PutUint32(scratch[:], uint32(p.W.Len()))
		if _, err := bw.Write(scratch[:]); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		for _, v := range p.W.Data {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
			if _, err := bw.Write(scratch[:]); err != nil {
				return fmt.Errorf("nn: save %s: %w", p.Name, err)
			}
		}
	}
	return bw.Flush()
}

// Load restores weights saved by Save into the network. The checkpoint's
// parameter names, order, and sizes must match the network exactly.
func (n *Network) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var head [12]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return fmt.Errorf("nn: load header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:]) != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", v)
	}
	count := int(binary.LittleEndian.Uint32(head[8:]))
	if count != len(n.params) {
		return fmt.Errorf("nn: checkpoint has %d tensors, network has %d", count, len(n.params))
	}
	var scratch [4]byte
	for _, p := range n.params {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return fmt.Errorf("nn: load %s: %w", p.Name, err)
		}
		nameLen := int(binary.LittleEndian.Uint32(scratch[:]))
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("nn: load %s: %w", p.Name, err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint tensor %q, network expects %q", name, p.Name)
		}
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return fmt.Errorf("nn: load %s: %w", p.Name, err)
		}
		if got := int(binary.LittleEndian.Uint32(scratch[:])); got != p.W.Len() {
			return fmt.Errorf("nn: tensor %s has %d elements, network expects %d",
				p.Name, got, p.W.Len())
		}
		for i := range p.W.Data {
			if _, err := io.ReadFull(br, scratch[:]); err != nil {
				return fmt.Errorf("nn: load %s[%d]: %w", p.Name, i, err)
			}
			p.W.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(scratch[:]))
		}
	}
	return nil
}
