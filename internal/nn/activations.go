package nn

import (
	"math/rand"

	"inceptionn/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if len(r.mask) != x.Len() {
		r.mask = make([]bool, x.Len())
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape...)
	for i, v := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1-P) (inverted dropout), so evaluation needs no
// rescaling.
type Dropout struct {
	P   float64
	rng *rand.Rand

	keep []bool
}

// NewDropout constructs a dropout layer driven by rng.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.keep = nil
		return x
	}
	out := tensor.New(x.Shape...)
	if len(d.keep) != x.Len() {
		d.keep = make([]bool, x.Len())
	}
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			out.Data[i] = v * scale
			d.keep[i] = true
		} else {
			d.keep[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.keep == nil {
		return dout
	}
	dx := tensor.New(dout.Shape...)
	scale := float32(1 / (1 - d.P))
	for i, v := range dout.Data {
		if d.keep[i] {
			dx.Data[i] = v * scale
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Flatten reshapes [B, ...] to [B, rest].
type Flatten struct {
	inShape []int
}

// NewFlatten constructs a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = x.Shape
	rest := x.Len() / x.Shape[0]
	return x.Reshape(x.Shape[0], rest)
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
