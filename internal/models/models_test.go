package models

import (
	"math"
	"math/rand"
	"testing"

	"inceptionn/internal/nn"
	"inceptionn/internal/tensor"
)

func TestTableIIBreakdownTotals(t *testing.T) {
	// Totals from the paper's Table II.
	cases := []struct {
		spec Spec
		want float64
	}{
		{AlexNet, 196.35}, {HDC, 1.69}, {ResNet50, 75.55}, {VGG16, 823.65},
	}
	for _, c := range cases {
		if got := c.spec.Breakdown.Total(); math.Abs(got-c.want) > 0.015 {
			t.Errorf("%s: Total = %g, want %g", c.spec.Name, got, c.want)
		}
	}
}

func TestCommunicationShareOver70Percent(t *testing.T) {
	// The paper's headline observation: >70% of training time is
	// communication for every evaluated model.
	for _, s := range Evaluated() {
		share := s.Breakdown.Communicate / s.Breakdown.Total()
		if share < 0.70 {
			t.Errorf("%s: communication share = %.1f%%, paper reports >70%%", s.Name, 100*share)
		}
	}
}

func TestSpecParams(t *testing.T) {
	if AlexNet.Params() != 233*MB/4 {
		t.Errorf("AlexNet params = %d", AlexNet.Params())
	}
	if got := VGG16.ParamBytes; got != 525*MB {
		t.Errorf("VGG16 bytes = %d", got)
	}
}

func TestConvergenceEpochInflationSmall(t *testing.T) {
	// Fig. 13: compressed training needs only 1-2 extra epochs.
	for _, s := range Evaluated() {
		extra := s.Conv.EpochsCompressed - s.Conv.EpochsLossless
		if extra < 1 || extra > 2 {
			t.Errorf("%s: %d extra epochs, paper reports 1-2", s.Name, extra)
		}
	}
}

func TestHDCArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewHDC(rng)
	// Five dense layers: 784·500 + 500 + 3×(500·500+500) + 500·10 + 10.
	want := 784*500 + 500 + 3*(500*500+500) + 500*10 + 10
	if got := net.NumParams(); got != want {
		t.Errorf("HDC params = %d, want %d", got, want)
	}
	x := tensor.New(2, 784)
	out := net.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Errorf("HDC output shape %v", out.Shape)
	}
}

func TestMiniModelsForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var sce nn.SoftmaxCrossEntropy
	for name, build := range Builders {
		if name == "hdc" || name == "hdc-small" {
			continue
		}
		net := build(rng)
		x := tensor.New(2, 3, 32, 32)
		x.FillRandn(rng, 1)
		out := net.Forward(x, true)
		if out.Shape[0] != 2 || out.Shape[1] != 10 {
			t.Errorf("%s: output shape %v", name, out.Shape)
			continue
		}
		net.ZeroGrads()
		_, grad := sce.Loss(out, []int{3, 7})
		net.Backward(grad)
		// Every parameter must receive some gradient signal.
		dead := 0
		for _, p := range net.Params() {
			if p.G.MaxAbs() == 0 {
				dead++
			}
		}
		if dead > len(net.Params())/2 {
			t.Errorf("%s: %d of %d parameters received zero gradient", name, dead, len(net.Params()))
		}
	}
}

func TestMiniModelsDeterministicInit(t *testing.T) {
	a := NewMiniAlexNet(rand.New(rand.NewSource(7)))
	b := NewMiniAlexNet(rand.New(rand.NewSource(7)))
	wa := a.WeightVector(nil)
	wb := b.WeightVector(nil)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed produced different init")
		}
	}
}

func TestEvaluatedOrder(t *testing.T) {
	names := []string{"AlexNet", "HDC", "ResNet-50", "VGG-16"}
	for i, s := range Evaluated() {
		if s.Name != names[i] {
			t.Errorf("Evaluated()[%d] = %s, want %s", i, s.Name, names[i])
		}
	}
}

func TestSpecString(t *testing.T) {
	if got := AlexNet.String(); got != "AlexNet (233 MB)" {
		t.Errorf("String = %q", got)
	}
}

func TestFig3Models(t *testing.T) {
	specs := Fig3Models()
	if len(specs) != 3 || specs[1].Name != "ResNet-152" {
		t.Errorf("Fig3Models = %v", specs)
	}
}

func TestBuildersRegistryComplete(t *testing.T) {
	for _, name := range []string{"hdc", "hdc-small", "mini-alexnet", "mini-alexnet-lrn", "mini-vgg", "mini-resnet"} {
		if Builders[name] == nil {
			t.Errorf("builder %q missing", name)
		}
	}
}

func TestHDCSmallSharesTopologyWithHDC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := NewHDCSmall(rng)
	big := NewHDC(rng)
	// Same layer count and same depth of learnable layers.
	if len(small.Layers) != len(big.Layers) {
		t.Errorf("layer counts differ: %d vs %d", len(small.Layers), len(big.Layers))
	}
	if len(small.Params()) != len(big.Params()) {
		t.Errorf("param tensor counts differ: %d vs %d", len(small.Params()), len(big.Params()))
	}
}
