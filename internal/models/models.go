// Package models defines the paper's DNN workloads in two forms:
//
//   - Spec: the full-size model description (parameter bytes, Table I
//     hyperparameters, the paper's Table II measured time breakdown and
//     Fig. 13 convergence data). Specs drive every communication-volume
//     and training-time experiment exactly, because communication cost
//     depends only on the gradient/weight byte counts.
//   - Trainable builders (HDC plus Mini variants of the CNNs) used for the
//     accuracy experiments, which need a network that actually trains on a
//     CPU in this repository's synthetic datasets (see DESIGN.md §1).
package models

import (
	"fmt"
	"math/rand"

	"inceptionn/internal/nn"
)

// MB is one megabyte in bytes (the paper reports model sizes in MB).
const MB = 1 << 20

// Hyper is one row of the paper's Table I.
type Hyper struct {
	BatchPerNode int
	LR           float64
	LRFactor     float64 // divide LR by this ...
	LREvery      int     // ... every this many iterations
	Momentum     float64
	WeightDecay  float64
	Iterations   int
}

// Breakdown is one column of the paper's Table II: seconds per 100 training
// iterations on the five-node worker-aggregator testbed.
type Breakdown struct {
	Forward     float64
	Backward    float64
	GPUCopy     float64
	GradSum     float64
	Communicate float64
	Update      float64
}

// Total returns the summed wall-clock seconds per 100 iterations.
func (b Breakdown) Total() float64 {
	return b.Forward + b.Backward + b.GPUCopy + b.GradSum + b.Communicate + b.Update
}

// Compute returns the non-communication seconds per 100 iterations.
func (b Breakdown) Compute() float64 { return b.Total() - b.Communicate }

// Convergence is the per-model data behind the paper's Fig. 13.
type Convergence struct {
	FinalAccuracy    float64 // fraction, e.g. 0.572
	EpochsLossless   int     // epochs for WA to reach FinalAccuracy
	EpochsCompressed int     // epochs for INC+C to reach the same accuracy
}

// Spec is a full-size model description.
type Spec struct {
	Name       string
	ParamBytes int64
	Hyper      Hyper
	Breakdown  Breakdown   // zero for models absent from Table II
	Conv       Convergence // zero for models absent from Fig. 13
}

// Params returns the number of float32 parameters.
func (s Spec) Params() int64 { return s.ParamBytes / 4 }

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s (%d MB)", s.Name, s.ParamBytes/MB)
}

// The paper's workloads. Model sizes from Sec. II/VII, hyperparameters from
// Table I, time breakdowns from Table II, convergence from Fig. 13.
var (
	AlexNet = Spec{
		Name:       "AlexNet",
		ParamBytes: 233 * MB,
		Hyper:      Hyper{BatchPerNode: 64, LR: 0.01, LRFactor: 10, LREvery: 100000, Momentum: 0.9, WeightDecay: 0.00005, Iterations: 320000},
		Breakdown:  Breakdown{Forward: 3.13, Backward: 16.22, GPUCopy: 5.68, GradSum: 8.94, Communicate: 148.71, Update: 13.67},
		Conv:       Convergence{FinalAccuracy: 0.572, EpochsLossless: 64, EpochsCompressed: 65},
	}
	HDC = Spec{
		Name:       "HDC",
		ParamBytes: int64(2.5 * MB),
		Hyper:      Hyper{BatchPerNode: 25, LR: 0.1, LRFactor: 5, LREvery: 2000, Momentum: 0.9, WeightDecay: 0.00005, Iterations: 10000},
		Breakdown:  Breakdown{Forward: 0.08, Backward: 0.07, GPUCopy: 0, GradSum: 0.09, Communicate: 1.36, Update: 0.09},
		Conv:       Convergence{FinalAccuracy: 0.985, EpochsLossless: 17, EpochsCompressed: 18},
	}
	ResNet50 = Spec{
		Name:       "ResNet-50",
		ParamBytes: 98 * MB,
		Hyper:      Hyper{BatchPerNode: 16, LR: 0.1, LRFactor: 10, LREvery: 200000, Momentum: 0.9, WeightDecay: 0.0001, Iterations: 600000},
		Breakdown:  Breakdown{Forward: 2.63, Backward: 4.87, GPUCopy: 2.24, GradSum: 3.68, Communicate: 60.58, Update: 1.55},
		Conv:       Convergence{FinalAccuracy: 0.753, EpochsLossless: 90, EpochsCompressed: 92},
	}
	VGG16 = Spec{
		Name:       "VGG-16",
		ParamBytes: 525 * MB,
		Hyper:      Hyper{BatchPerNode: 64, LR: 0.01, LRFactor: 10, LREvery: 100000, Momentum: 0.9, WeightDecay: 0.00005, Iterations: 370000},
		// Forward is 35.25 (not the OCR-garbled 32.25): only then does the
		// column sum to the paper's printed total 823.65 and match the
		// printed 4.3% share.
		Breakdown: Breakdown{Forward: 35.25, Backward: 142.34, GPUCopy: 12.09, GradSum: 19.89, Communicate: 583.58, Update: 30.50},
		Conv:      Convergence{FinalAccuracy: 0.715, EpochsLossless: 74, EpochsCompressed: 75},
	}
	// ResNet152 appears only in the paper's Fig. 3 size/communication chart.
	ResNet152 = Spec{
		Name:       "ResNet-152",
		ParamBytes: 230 * MB,
	}
)

// Evaluated returns the four models of the paper's evaluation section, in
// presentation order.
func Evaluated() []Spec { return []Spec{AlexNet, HDC, ResNet50, VGG16} }

// Fig3Models returns the models of the paper's Fig. 3 chart.
func Fig3Models() []Spec { return []Spec{AlexNet, ResNet152, VGG16} }

// NewHDC builds the paper's Handwritten Digit Classification network: five
// fully-connected layers with hidden dimension 500 and ReLU activations
// (Sec. VII-A), for 28×28 inputs and 10 classes.
func NewHDC(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewDense("fc1", 784, 500, rng),
		nn.NewReLU(),
		nn.NewDense("fc2", 500, 500, rng),
		nn.NewReLU(),
		nn.NewDense("fc3", 500, 500, rng),
		nn.NewReLU(),
		nn.NewDense("fc4", 500, 500, rng),
		nn.NewReLU(),
		nn.NewDense("fc5", 500, 10, rng),
	)
}

// NewHDCSmall builds a narrower HDC (hidden dimension 128) for fast unit
// tests and CI-scale experiments; same depth and topology as NewHDC.
func NewHDCSmall(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewDense("fc1", 784, 128, rng),
		nn.NewReLU(),
		nn.NewDense("fc2", 128, 128, rng),
		nn.NewReLU(),
		nn.NewDense("fc3", 128, 128, rng),
		nn.NewReLU(),
		nn.NewDense("fc4", 128, 128, rng),
		nn.NewReLU(),
		nn.NewDense("fc5", 128, 10, rng),
	)
}

// NewMiniAlexNet builds a CPU-trainable AlexNet-style CNN for 3×32×32
// inputs: stacked conv+ReLU+pool stages followed by dropout-regularized
// fully-connected layers — the structural substitution for full AlexNet
// documented in DESIGN.md §1.
func NewMiniAlexNet(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewConv2D("conv1", 3, 16, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), // 16×16
		nn.NewConv2D("conv2", 16, 32, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), // 8×8
		nn.NewConv2D("conv3", 32, 64, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), // 4×4
		nn.NewFlatten(),
		nn.NewDropout(0.5, rng),
		nn.NewDense("fc1", 64*4*4, 128, rng),
		nn.NewReLU(),
		nn.NewDropout(0.5, rng),
		nn.NewDense("fc2", 128, 10, rng),
	)
}

// NewMiniAlexNetLRN is NewMiniAlexNet with AlexNet's local response
// normalization after the first two convolution stages — the historically
// faithful variant (slower; the plain variant is the default workload).
func NewMiniAlexNetLRN(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewConv2D("conv1", 3, 16, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewLRN(),
		nn.NewMaxPool2D(2, 2), // 16×16
		nn.NewConv2D("conv2", 16, 32, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewLRN(),
		nn.NewMaxPool2D(2, 2), // 8×8
		nn.NewConv2D("conv3", 32, 64, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), // 4×4
		nn.NewFlatten(),
		nn.NewDropout(0.5, rng),
		nn.NewDense("fc1", 64*4*4, 128, rng),
		nn.NewReLU(),
		nn.NewDropout(0.5, rng),
		nn.NewDense("fc2", 128, 10, rng),
	)
}

// NewMiniVGG builds a VGG-style CNN (uniform 3×3 convolutions in blocks of
// two) for 3×32×32 inputs.
func NewMiniVGG(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewConv2D("conv1a", 3, 16, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewConv2D("conv1b", 16, 16, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), // 16×16
		nn.NewConv2D("conv2a", 16, 32, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewConv2D("conv2b", 32, 32, 3, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), // 8×8
		nn.NewFlatten(),
		nn.NewDense("fc1", 32*8*8, 128, rng),
		nn.NewReLU(),
		nn.NewDense("fc2", 128, 10, rng),
	)
}

// NewMiniResNet builds a ResNet-style CNN for 3×32×32 inputs: a stem
// convolution, residual blocks with batch normalization (one with a strided
// projection shortcut), global average pooling, and a linear classifier.
func NewMiniResNet(rng *rand.Rand) *nn.Network {
	block := func(name string, c int) nn.Layer {
		body := nn.NewNetwork(
			nn.NewConv2D(name+".c1", c, c, 3, 1, 1, rng),
			nn.NewBatchNorm2D(name+".bn1", c),
			nn.NewReLU(),
			nn.NewConv2D(name+".c2", c, c, 3, 1, 1, rng),
			nn.NewBatchNorm2D(name+".bn2", c),
		)
		return nn.NewResidual(body, nil)
	}
	downBlock := func(name string, in, out int) nn.Layer {
		body := nn.NewNetwork(
			nn.NewConv2D(name+".c1", in, out, 3, 2, 1, rng),
			nn.NewBatchNorm2D(name+".bn1", out),
			nn.NewReLU(),
			nn.NewConv2D(name+".c2", out, out, 3, 1, 1, rng),
			nn.NewBatchNorm2D(name+".bn2", out),
		)
		return nn.NewResidual(body, nn.NewConv2D(name+".proj", in, out, 1, 2, 0, rng))
	}
	return nn.NewNetwork(
		nn.NewConv2D("stem", 3, 16, 3, 1, 1, rng),
		nn.NewBatchNorm2D("stem.bn", 16),
		nn.NewReLU(),
		block("res1", 16),
		downBlock("res2", 16, 32), // 16×16
		block("res3", 32),
		nn.NewGlobalAvgPool2D(),
		nn.NewDense("fc", 32, 10, rng),
	)
}

// Builders maps trainable-model names to their constructors; used by the
// CLI tools and experiments.
var Builders = map[string]func(*rand.Rand) *nn.Network{
	"hdc":              NewHDC,
	"hdc-small":        NewHDCSmall,
	"mini-alexnet":     NewMiniAlexNet,
	"mini-alexnet-lrn": NewMiniAlexNetLRN,
	"mini-vgg":         NewMiniVGG,
	"mini-resnet":      NewMiniResNet,
}
