// Package fpcodec implements the INCEPTIONN lossy compression algorithm for
// 32-bit floating-point gradient values (Li et al., MICRO 2018, Algorithms
// 2 and 3).
//
// The algorithm exploits two value properties of DNN gradients: almost all
// values lie in (-1.0, 1.0), and the distribution peaks tightly around zero.
// Each float32 is encoded into one of four classes selected by a 2-bit tag:
//
//	TagZero (0b00): |v| below the error bound — 0 data bits, decodes to 0.
//	Tag8    (0b01): small value — 8 data bits (sign + 7 fraction bits).
//	Tag16   (0b10): larger value in (-1,1) — 16 data bits (sign + 15 fraction bits).
//	TagNone (0b11): |v| ≥ 1.0 (or NaN/Inf) — 32 data bits, stored verbatim.
//
// For an error bound 2^-E the fraction windows are positioned so that the
// absolute reconstruction error of any |v| < 1.0 is at most 2^-E:
//
//   - Tag8 stores the 7 fixed-point fraction bits at positions s8+1 … s8+7
//     where s8 = max(E-7, 0); it applies when |v| < 2^-s8, so the skipped
//     leading fraction bits are provably zero and the truncation error is
//     ≤ 2^-(s8+7) ≤ 2^-E.
//   - Tag16 stores fraction bits at positions 1 … 15 (error ≤ 2^-15).
//
// This reconstruction matches the bitwidth classes {2, 10, 18, 34} of the
// paper's Table III, including the structural facts that the 18-bit class is
// empty for E ≤ 7 and covers exactly [0.5, 1.0) for E = 8.
//
// The canonical serialized form is the hardware burst-group format produced
// by the NIC compression engine (paper Fig. 9): values are processed in
// groups of eight lanes; each group emits a 16-bit tag vector (lane i in
// bits 2i..2i+1) followed by the concatenated variable-size data vectors of
// lanes 0..7, packed LSB-first. A full group therefore occupies between 16
// and 272 bits.
package fpcodec

import (
	"fmt"
	"math"

	"inceptionn/internal/bitio"
	"inceptionn/internal/par"
)

// Tag identifies the compression class of one value.
type Tag uint8

// Tag values. The numeric encodings follow the paper: NO_COMPRESS is 2'b11.
const (
	TagZero Tag = 0b00 // 0 data bits
	Tag8    Tag = 0b01 // 8 data bits
	Tag16   Tag = 0b10 // 16 data bits
	TagNone Tag = 0b11 // 32 data bits
)

// Bits returns the number of data bits used by the class (excluding the
// 2-bit tag itself).
func (t Tag) Bits() int {
	switch t {
	case TagZero:
		return 0
	case Tag8:
		return 8
	case Tag16:
		return 16
	default:
		return 32
	}
}

// String implements fmt.Stringer.
func (t Tag) String() string {
	switch t {
	case TagZero:
		return "0bit"
	case Tag8:
		return "8bit"
	case Tag16:
		return "16bit"
	default:
		return "nocompress"
	}
}

// GroupSize is the number of values per burst group, equal to the number of
// compression blocks (CBs) in the NIC engine: 256 AXI bits / 32 bits.
const GroupSize = 8

// TagVectorBits is the size of the per-group tag vector.
const TagVectorBits = 2 * GroupSize

// Bound is an absolute error bound 2^-E for the lossy compression.
type Bound struct {
	e  int
	s8 int // leading fraction bits skipped by the Tag8 window
}

// NewBound returns the bound 2^-e. e must be in [1, 15]; the 15-bit Tag16
// fraction window cannot guarantee tighter bounds. The paper evaluates
// e ∈ {6, 8, 10}.
func NewBound(e int) (Bound, error) {
	if e < 1 || e > 15 {
		return Bound{}, fmt.Errorf("fpcodec: error-bound exponent %d out of range [1,15]", e)
	}
	s8 := e - 7
	if s8 < 0 {
		s8 = 0
	}
	return Bound{e: e, s8: s8}, nil
}

// MustBound is NewBound that panics on invalid exponents; for use with
// compile-time-constant exponents.
func MustBound(e int) Bound {
	b, err := NewBound(e)
	if err != nil {
		panic(err)
	}
	return b
}

// Exp returns the error-bound exponent E (bound is 2^-E).
func (b Bound) Exp() int { return b.e }

// MaxError returns the guaranteed absolute error bound 2^-E.
func (b Bound) MaxError() float64 { return math.Ldexp(1, -b.e) }

// String implements fmt.Stringer, e.g. "2^-10".
func (b Bound) String() string { return fmt.Sprintf("2^-%d", b.e) }

// Compress encodes a single float32 into a compressed bit vector and tag
// (paper Algorithm 2). The returned vector occupies the tag.Bits() least
// significant bits of v.
func Compress(f float32, b Bound) (v uint32, tag Tag) {
	bits := math.Float32bits(f)
	e := int(bits>>23) & 0xFF
	if e >= 127 {
		// |f| ≥ 1.0, NaN, or Inf: ship verbatim.
		return bits, TagNone
	}
	sign := bits >> 31
	if e == 0 {
		// Zero and denormals (< 2^-126) are far below any permitted bound.
		return 0, TagZero
	}
	d := 127 - e // leading-one fraction position: |f| ∈ [2^-d, 2^-d+1)
	if d > b.e {
		return 0, TagZero
	}
	sig := (bits & 0x7FFFFF) | (1 << 23) // 1.m as a 24-bit integer
	if d > b.s8 {
		// Tag8 window: fraction positions s8+1 … s8+7.
		frac := sig >> uint(d+16-b.s8)
		return sign<<7 | frac, Tag8
	}
	// Tag16 window: fraction positions 1 … 15.
	frac := sig >> uint(d+8)
	return sign<<15 | frac, Tag16
}

// Decompress decodes a compressed bit vector produced by Compress with the
// same bound (paper Algorithm 3).
func Decompress(v uint32, tag Tag, b Bound) float32 {
	switch tag {
	case TagZero:
		return 0
	case Tag8:
		frac := v & 0x7F
		f := float32(math.Ldexp(float64(frac), -(b.s8 + 7)))
		if v>>7&1 == 1 {
			return -f
		}
		return f
	case Tag16:
		frac := v & 0x7FFF
		f := float32(math.Ldexp(float64(frac), -15))
		if v>>15&1 == 1 {
			return -f
		}
		return f
	default:
		return math.Float32frombits(v)
	}
}

// Roundtrip compresses and immediately decompresses f, returning the value a
// receiver would observe. It is the identity for |f| ≥ 1.0.
func Roundtrip(f float32, b Bound) float32 {
	v, tag := Compress(f, b)
	return Decompress(v, tag, b)
}

// TagOf returns only the classification of f under bound b.
func TagOf(f float32, b Bound) Tag {
	_, tag := Compress(f, b)
	return tag
}

// CompressGroup encodes up to GroupSize values as one burst group into w:
// a 16-bit tag vector followed by the concatenated data vectors. Lanes
// beyond len(vals) are tagged TagZero and carry no data, mirroring the
// hardware engine's zero-padded final burst. len(vals) must be in
// [1, GroupSize].
func CompressGroup(w *bitio.Writer, vals []float32, b Bound) {
	if len(vals) == 0 || len(vals) > GroupSize {
		panic(fmt.Sprintf("fpcodec: group of %d values", len(vals)))
	}
	var tags uint64
	var data [GroupSize]uint32
	var tag [GroupSize]Tag
	for i, f := range vals {
		data[i], tag[i] = Compress(f, b)
		tags |= uint64(tag[i]) << uint(2*i)
	}
	w.WriteBits(tags, TagVectorBits)
	for i := range vals {
		w.WriteBits(uint64(data[i]), tag[i].Bits())
	}
}

// DecompressGroup decodes one burst group from r into dst. len(dst) lanes
// are produced; trailing lanes of the group (if len(dst) < GroupSize) are
// consumed as the encoder wrote them (TagZero, no data). len(dst) must be
// in [1, GroupSize].
func DecompressGroup(r *bitio.Reader, dst []float32, b Bound) error {
	if len(dst) == 0 || len(dst) > GroupSize {
		panic(fmt.Sprintf("fpcodec: group of %d values", len(dst)))
	}
	tags, err := r.ReadBits(TagVectorBits)
	if err != nil {
		return fmt.Errorf("fpcodec: reading tag vector: %w", err)
	}
	for i := range dst {
		tag := Tag(tags >> uint(2*i) & 0b11)
		v, err := r.ReadBits(tag.Bits())
		if err != nil {
			return fmt.Errorf("fpcodec: reading lane %d (%s): %w", i, tag, err)
		}
		dst[i] = Decompress(uint32(v), tag, b)
	}
	return nil
}

// streamShards returns the number of group-aligned shards to use when
// coding n values: enough values per shard to amortize fan-out, capped by
// the worker pool size. A return of 1 selects the sequential path.
func streamShards(n int) int {
	const minShardValues = 16 * 1024
	shards := n / minShardValues
	if w := par.Workers(); shards > w {
		shards = w
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// shardBounds splits n values into group-aligned shards: every shard but
// the last covers a whole number of burst groups, so shard streams
// concatenate into exactly the sequential stream.
func shardBounds(n, shards, s int) (lo, hi int) {
	groups := (n + GroupSize - 1) / GroupSize
	per, rem := groups/shards, groups%shards
	glo := s*per + min(s, rem)
	gcount := per
	if s < rem {
		gcount++
	}
	lo = glo * GroupSize
	if lo > n {
		lo = n // more shards than groups: trailing shards are empty
	}
	hi = lo + gcount*GroupSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// CompressStream encodes src into w using consecutive burst groups.
//
// Large inputs are compressed in parallel: group-aligned shards encode
// into private writers, which are then stitched into w LSB-first
// (bitio.Writer.Append). Burst groups are self-contained — a 16-bit tag
// vector followed by that group's data — so the stitched stream is
// bit-identical to a sequential encode for any worker count.
func CompressStream(w *bitio.Writer, src []float32, b Bound) {
	before := w.Len()
	defer func() {
		totalStreamValues.Add(int64(len(src)))
		totalStreamBits.Add(int64(w.Len() - before))
	}()
	shards := streamShards(len(src))
	if shards <= 1 {
		compressStreamSeq(w, src, b)
		return
	}
	parts := make([]*bitio.Writer, shards)
	par.For(shards, 1, func(plo, phi int) {
		for s := plo; s < phi; s++ {
			lo, hi := shardBounds(len(src), shards, s)
			pw := bitio.NewWriter((hi - lo + 1) / 2) // compressed streams are ~¼ size or less
			compressStreamSeq(pw, src[lo:hi], b)
			parts[s] = pw
		}
	})
	for _, pw := range parts {
		w.Append(pw)
	}
}

// compressStreamSeq is the sequential group-by-group encoder.
func compressStreamSeq(w *bitio.Writer, src []float32, b Bound) {
	for len(src) > 0 {
		n := len(src)
		if n > GroupSize {
			n = GroupSize
		}
		CompressGroup(w, src[:n], b)
		src = src[n:]
	}
}

// DecompressStream decodes len(dst) values from r. The stream must have been
// produced by CompressStream with the same bound and value count.
//
// Large streams decode in parallel: a cheap scan pass walks the tag
// vectors (skipping data bits) to locate each group-aligned shard's bit
// offset, then shards decode concurrently through private cursors over
// the shared buffer (bitio.Reader.At). r is left positioned exactly where
// the sequential decoder would leave it.
func DecompressStream(r *bitio.Reader, dst []float32, b Bound) error {
	shards := streamShards(len(dst))
	if shards <= 1 {
		return decompressStreamSeq(r, dst, b)
	}
	offsets := make([]int, shards)
	for s := 0; s < shards; s++ {
		offsets[s] = r.Pos()
		lo, hi := shardBounds(len(dst), shards, s)
		if err := skipStream(r, hi-lo); err != nil {
			return err
		}
	}
	errs := make([]error, shards)
	par.For(shards, 1, func(plo, phi int) {
		for s := plo; s < phi; s++ {
			lo, hi := shardBounds(len(dst), shards, s)
			errs[s] = decompressStreamSeq(r.At(offsets[s]), dst[lo:hi], b)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// decompressStreamSeq is the sequential group-by-group decoder.
func decompressStreamSeq(r *bitio.Reader, dst []float32, b Bound) error {
	for len(dst) > 0 {
		n := len(dst)
		if n > GroupSize {
			n = GroupSize
		}
		if err := DecompressGroup(r, dst[:n], b); err != nil {
			return err
		}
		dst = dst[n:]
	}
	return nil
}

// skipStream advances r past the encoding of count values without
// decoding any lanes, by reading each group's tag vector and skipping its
// data bits. Like DecompressGroup, a trailing partial group consumes only
// the data of its first count lanes.
func skipStream(r *bitio.Reader, count int) error {
	for count > 0 {
		n := count
		if n > GroupSize {
			n = GroupSize
		}
		tags, err := r.ReadBits(TagVectorBits)
		if err != nil {
			return fmt.Errorf("fpcodec: reading tag vector: %w", err)
		}
		bits := 0
		for i := 0; i < n; i++ {
			bits += Tag(tags >> uint(2*i) & 0b11).Bits()
		}
		if err := r.Skip(bits); err != nil {
			return fmt.Errorf("fpcodec: skipping group data: %w", bitio.ErrShortRead)
		}
		count -= n
	}
	return nil
}

// CompressedBits returns the exact serialized size of src in bits under
// bound b, without materializing the stream.
func CompressedBits(src []float32, b Bound) int64 {
	groups := (int64(len(src)) + GroupSize - 1) / GroupSize
	total := groups * TagVectorBits
	for _, f := range src {
		_, tag := Compress(f, b)
		total += int64(tag.Bits())
	}
	return total
}

// Ratio returns the compression ratio (uncompressed bits / compressed bits)
// of src under bound b. It reports 0 for an empty slice.
func Ratio(src []float32, b Bound) float64 {
	if len(src) == 0 {
		return 0
	}
	return float64(32*int64(len(src))) / float64(CompressedBits(src, b))
}

// TagStats accumulates the per-class value counts used for the paper's
// Table III.
type TagStats struct {
	Count [4]int64 // indexed by Tag
}

// Observe classifies every value of src under bound b.
func (s *TagStats) Observe(src []float32, b Bound) {
	for _, f := range src {
		_, tag := Compress(f, b)
		s.Count[tag]++
	}
}

// Total returns the number of observed values.
func (s *TagStats) Total() int64 {
	return s.Count[0] + s.Count[1] + s.Count[2] + s.Count[3]
}

// Fraction returns the fraction of observed values in class t, in [0, 1].
func (s *TagStats) Fraction(t Tag) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return float64(s.Count[t]) / float64(total)
}

// AverageBits returns the mean serialized bits per value including the
// 2-bit tag.
func (s *TagStats) AverageBits() float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	bits := int64(0)
	for t := TagZero; t <= TagNone; t++ {
		bits += s.Count[t] * int64(2+t.Bits())
	}
	return float64(bits) / float64(total)
}
