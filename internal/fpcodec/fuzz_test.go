package fpcodec

import (
	"math"
	"testing"

	"inceptionn/internal/bitio"
)

// FuzzScalarRoundtrip fuzzes the scalar codec over the full float32 bit
// space and every bound: the error contract must hold for every input.
func FuzzScalarRoundtrip(f *testing.F) {
	f.Add(uint32(0), 10)
	f.Add(math.Float32bits(0.5), 10)
	f.Add(math.Float32bits(-1.5), 6)
	f.Add(math.Float32bits(1e-30), 15)
	f.Add(math.Float32bits(float32(math.NaN())), 8)
	f.Fuzz(func(t *testing.T, bits uint32, eRaw int) {
		e := (eRaw%15+15)%15 + 1
		bound := MustBound(e)
		v := math.Float32frombits(bits)
		got := Roundtrip(v, bound)
		switch {
		case math.IsNaN(float64(v)):
			if !math.IsNaN(float64(got)) {
				t.Fatalf("NaN not preserved: %g", got)
			}
		case math.Abs(float64(v)) >= 1:
			if got != v {
				t.Fatalf("no-compress class not exact: %g -> %g", v, got)
			}
		default:
			if math.Abs(float64(got)-float64(v)) > bound.MaxError() {
				t.Fatalf("bound %v violated: %g -> %g", bound, v, got)
			}
			if twice := Roundtrip(got, bound); twice != got {
				t.Fatalf("not idempotent: %g -> %g", got, twice)
			}
		}
	})
}

// FuzzDecompressStream fuzzes the decoder with arbitrary byte streams: it
// must never panic, only return errors or values.
func FuzzDecompressStream(f *testing.F) {
	// Seed with a valid stream.
	bound := MustBound(10)
	w := bitio.NewWriter(64)
	CompressStream(w, []float32{0.5, -0.001, 2.5, 0}, bound)
	f.Add(w.Bytes(), w.Len(), 4)
	f.Add([]byte{0xFF, 0x00, 0xAB}, 24, 8)
	f.Fuzz(func(t *testing.T, data []byte, bits, count int) {
		if bits < 0 || bits > 8*len(data) || count < 0 || count > 4096 {
			t.Skip()
		}
		dst := make([]float32, count)
		// Both decoders must agree on success/failure and values.
		errRef := DecompressStream(bitio.NewReader(data, bits), dst, bound)
		fast := make([]float32, count)
		errFast := NewDecoder(bound).Decode(data, bits, fast)
		if (errRef == nil) != (errFast == nil) {
			t.Fatalf("decoders disagree: ref=%v fast=%v", errRef, errFast)
		}
		if errRef == nil {
			for i := range dst {
				if dst[i] != fast[i] && !(isNaN32(dst[i]) && isNaN32(fast[i])) {
					t.Fatalf("value %d: ref %g fast %g", i, dst[i], fast[i])
				}
			}
		}
	})
}
