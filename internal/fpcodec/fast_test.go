package fpcodec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"inceptionn/internal/bitio"
)

func fastTestVector(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		switch rng.Intn(5) {
		case 0:
			out[i] = float32(rng.NormFloat64()) // includes |v| >= 1
		case 1:
			out[i] = 0
		default:
			out[i] = float32(rng.NormFloat64() * 0.003)
		}
	}
	return out
}

// TestFastEncoderBitExact: the fast encoder must produce the identical
// byte stream as the reference CompressStream.
func TestFastEncoderBitExact(t *testing.T) {
	for _, e := range []int{6, 10, 15} {
		bound := MustBound(e)
		enc := NewEncoder(bound)
		for _, n := range []int{1, 7, 8, 9, 100, 1000} {
			src := fastTestVector(n, int64(n*e))
			fastData, fastBits := enc.Encode(src)

			w := bitio.NewWriter(4 * n)
			CompressStream(w, src, bound)
			if fastBits != w.Len() {
				t.Fatalf("E=%d n=%d: fast %d bits, reference %d", e, n, fastBits, w.Len())
			}
			ref := w.Bytes()
			if len(fastData) != len(ref) {
				t.Fatalf("E=%d n=%d: fast %d bytes, reference %d", e, n, len(fastData), len(ref))
			}
			for i := range ref {
				if fastData[i] != ref[i] {
					t.Fatalf("E=%d n=%d byte %d: %02x vs %02x", e, n, i, fastData[i], ref[i])
				}
			}
		}
	}
}

// TestFastDecoderMatchesReference: the fast decoder must reproduce the
// reference DecompressStream exactly on reference-encoded streams.
func TestFastDecoderMatchesReference(t *testing.T) {
	bound := MustBound(10)
	dec := NewDecoder(bound)
	for _, n := range []int{1, 8, 9, 511, 1000} {
		src := fastTestVector(n, int64(n))
		w := bitio.NewWriter(4 * n)
		CompressStream(w, src, bound)

		want := make([]float32, n)
		if err := DecompressStream(bitio.NewReader(w.Bytes(), w.Len()), want, bound); err != nil {
			t.Fatal(err)
		}
		got := make([]float32, n)
		if err := dec.Decode(w.Bytes(), w.Len(), got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] && !(isNaN32(got[i]) && isNaN32(want[i])) {
				t.Fatalf("n=%d value %d: fast %g vs reference %g", n, i, got[i], want[i])
			}
		}
	}
}

func isNaN32(f float32) bool { return f != f }

func TestFastDecoderTruncated(t *testing.T) {
	bound := MustBound(10)
	src := fastTestVector(100, 3)
	enc := NewEncoder(bound)
	data, bits := enc.Encode(src)
	dec := NewDecoder(bound)
	dst := make([]float32, 100)
	if err := dec.Decode(data, bits/2, dst); err == nil {
		t.Fatal("expected error on truncated stream")
	}
	if err := dec.Decode(data[:2], bits, dst); err == nil {
		t.Fatal("expected error on oversized bit declaration")
	}
}

func TestFastEncoderReusable(t *testing.T) {
	bound := MustBound(8)
	enc := NewEncoder(bound)
	dec := NewDecoder(bound)
	for round := 0; round < 5; round++ {
		src := fastTestVector(64+round, int64(round))
		data, bits := enc.Encode(src)
		dst := make([]float32, len(src))
		if err := dec.Decode(data, bits, dst); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range src {
			if dst[i] != Roundtrip(src[i], bound) {
				t.Fatalf("round %d value %d", round, i)
			}
		}
	}
}

func TestQuickFastRoundtrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, eRaw uint8) bool {
		n := int(nRaw)%500 + 1
		e := int(eRaw)%15 + 1
		bound := MustBound(e)
		src := fastTestVector(n, seed)
		enc := NewEncoder(bound)
		data, bits := enc.Encode(src)
		dec := NewDecoder(bound)
		dst := make([]float32, n)
		if err := dec.Decode(data, bits, dst); err != nil {
			return false
		}
		for i := range src {
			want := Roundtrip(src[i], bound)
			if dst[i] != want && !(isNaN32(dst[i]) && isNaN32(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFastEncode64K(b *testing.B) {
	bound := MustBound(10)
	src := fastTestVector(64*1024, 1)
	enc := NewEncoder(bound)
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Encode(src)
	}
}

func BenchmarkFastDecode64K(b *testing.B) {
	bound := MustBound(10)
	src := fastTestVector(64*1024, 1)
	enc := NewEncoder(bound)
	data, bits := enc.Encode(src)
	dec := NewDecoder(bound)
	dst := make([]float32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(data, bits, dst); err != nil {
			b.Fatal(err)
		}
	}
}
