package fpcodec

import (
	"encoding/binary"
	"fmt"
)

// Fast-path codec: identical wire format to CompressStream /
// DecompressStream (verified bit-exactly by tests), but staging bits in a
// 64-bit register and writing whole bytes instead of going through the
// generic bit writer. This is the software throughput that the Fig. 7
// comparison charges to host CPUs; the hardware engines are modelled in
// internal/nic.

// Encoder is a reusable fast compressor.
type Encoder struct {
	Bound Bound

	buf   []byte
	stage uint64
	nbits int
}

// NewEncoder returns an encoder for the bound.
func NewEncoder(bound Bound) *Encoder {
	return &Encoder{Bound: bound}
}

// push appends the low w bits of v to the staged output, draining the
// stage in 32-bit words. Invariant: nbits < 32 on entry, so nbits+w ≤ 63
// never overflows the 64-bit stage for w ≤ 32.
func (e *Encoder) push(v uint64, w int) {
	e.stage |= v << uint(e.nbits)
	e.nbits += w
	if e.nbits >= 32 {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(e.stage))
		e.stage >>= 32
		e.nbits -= 32
	}
}

// Encode compresses src, returning the packed bytes (valid until the next
// call) and the exact bit length.
func (e *Encoder) Encode(src []float32) ([]byte, int) {
	// Worst case per group: 16 tag bits + 8×32 data bits = 36 bytes.
	need := ((len(src)+GroupSize-1)/GroupSize)*36 + 8
	if cap(e.buf) < need {
		e.buf = make([]byte, 0, need)
	}
	e.buf = e.buf[:0]
	e.stage = 0
	e.nbits = 0
	bits := 0
	for off := 0; off < len(src); off += GroupSize {
		hi := off + GroupSize
		if hi > len(src) {
			hi = len(src)
		}
		group := src[off:hi]
		var tags uint64
		var data [GroupSize]uint32
		var tag [GroupSize]Tag
		for i, f := range group {
			data[i], tag[i] = Compress(f, e.Bound)
			tags |= uint64(tag[i]) << uint(2*i)
		}
		e.push(tags, TagVectorBits)
		bits += TagVectorBits
		for i := range group {
			w := tag[i].Bits()
			e.push(uint64(data[i]), w)
			bits += w
		}
	}
	for e.nbits > 0 {
		e.buf = append(e.buf, byte(e.stage))
		e.stage >>= 8
		e.nbits -= 8
	}
	return e.buf, bits
}

// Decoder is a reusable fast decompressor.
type Decoder struct {
	Bound Bound

	padded []byte // source copy with 8 zero bytes of tail padding
	pos    int    // next unread bit
	limit  int
}

// NewDecoder returns a decoder for the bound.
func NewDecoder(bound Bound) *Decoder {
	return &Decoder{Bound: bound}
}

// read extracts w bits at the cursor (w ≤ 32). The 8-byte tail padding
// makes the unconditional 64-bit load safe.
func (d *Decoder) read(w int) (uint64, error) {
	if d.pos+w > d.limit {
		return 0, fmt.Errorf("fpcodec: fast decoder exhausted at bit %d (+%d > %d)", d.pos, w, d.limit)
	}
	raw := binary.LittleEndian.Uint64(d.padded[d.pos>>3:])
	v := raw >> uint(d.pos&7)
	if w < 64 {
		v &= 1<<uint(w) - 1
	}
	d.pos += w
	return v, nil
}

// Decode decompresses count values from data (bits valid bits) into dst,
// which must have length count.
func (d *Decoder) Decode(data []byte, bits int, dst []float32) error {
	if bits > 8*len(data) {
		return fmt.Errorf("fpcodec: %d bits declared in %d bytes", bits, len(data))
	}
	d.padded = append(d.padded[:0], data...)
	d.padded = append(d.padded, 0, 0, 0, 0, 0, 0, 0, 0)
	d.pos = 0
	d.limit = bits
	for off := 0; off < len(dst); off += GroupSize {
		hi := off + GroupSize
		if hi > len(dst) {
			hi = len(dst)
		}
		tags, err := d.read(TagVectorBits)
		if err != nil {
			return err
		}
		for i := off; i < hi; i++ {
			tag := Tag(tags & 0b11)
			tags >>= 2
			v, err := d.read(tag.Bits())
			if err != nil {
				return err
			}
			dst[i] = Decompress(uint32(v), tag, d.Bound)
		}
		// Trailing lanes of a final partial group were written as TagZero
		// (no data bits) by the encoder, so there is nothing to skip; like
		// the reference decoder, ignore whatever a hostile stream declares
		// for lanes beyond the value count.
	}
	return nil
}
