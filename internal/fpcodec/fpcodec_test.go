package fpcodec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inceptionn/internal/bitio"
)

func TestNewBoundValidation(t *testing.T) {
	for _, e := range []int{1, 6, 8, 10, 15} {
		if _, err := NewBound(e); err != nil {
			t.Errorf("NewBound(%d): unexpected error %v", e, err)
		}
	}
	for _, e := range []int{0, -3, 16, 100} {
		if _, err := NewBound(e); err == nil {
			t.Errorf("NewBound(%d): expected error", e)
		}
	}
}

func TestTagBits(t *testing.T) {
	cases := map[Tag]int{TagZero: 0, Tag8: 8, Tag16: 16, TagNone: 32}
	for tag, want := range cases {
		if got := tag.Bits(); got != want {
			t.Errorf("%s.Bits() = %d, want %d", tag, got, want)
		}
	}
}

func TestClassBoundaries(t *testing.T) {
	b := MustBound(10) // s8 = 3
	cases := []struct {
		v    float32
		want Tag
	}{
		{0, TagZero},
		{float32(math.Copysign(0, -1)), TagZero},
		{5e-39, TagZero},     // denormal
		{0.0009, TagZero},    // < 2^-10 ≈ 0.000977
		{0.0009765625, Tag8}, // exactly 2^-10
		{0.001, Tag8},        // just above the bound
		{0.1, Tag8},          // < 2^-3 = 0.125
		{0.124, Tag8},        //
		{0.125, Tag16},       // exactly 2^-3 = 2^-s8
		{0.5, Tag16},         //
		{0.99, Tag16},        //
		{1.0, TagNone},       //
		{-1.5, TagNone},      //
		{123456, TagNone},    //
		{float32(math.Inf(1)), TagNone},
		{float32(math.NaN()), TagNone},
	}
	for _, c := range cases {
		if got := TagOf(c.v, b); got != c.want {
			t.Errorf("TagOf(%g, %v) = %s, want %s", c.v, b, got, c.want)
		}
	}
}

// TestE6Has No16BitClass encodes the structural fact from Table III that at
// error bound 2^-6 the 18-bit (Tag16) class is empty.
func TestE6HasNo16BitClass(t *testing.T) {
	b := MustBound(6)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := float32(rng.Float64()*2 - 1) // (-1, 1)
		if tag := TagOf(v, b); tag == Tag16 {
			t.Fatalf("value %g classified Tag16 under %v", v, b)
		}
	}
}

// TestE8SixteenBitClassIsTopHalf: at 2^-8 the Tag16 class is exactly [0.5, 1).
func TestE8SixteenBitClassIsTopHalf(t *testing.T) {
	b := MustBound(8)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		v := float32(rng.Float64()*2 - 1)
		tag := TagOf(v, b)
		inTop := math.Abs(float64(v)) >= 0.5 && math.Abs(float64(v)) < 1.0
		if inTop != (tag == Tag16) {
			t.Fatalf("|v|=%g: tag=%s, inTop=%v", math.Abs(float64(v)), tag, inTop)
		}
	}
}

func TestNoCompressRoundtripExact(t *testing.T) {
	b := MustBound(10)
	for _, v := range []float32{1, -1, 1.5, -3.25, 1e10, -7e20} {
		if got := Roundtrip(v, b); got != v {
			t.Errorf("Roundtrip(%g) = %g, want exact", v, got)
		}
	}
	if got := Roundtrip(float32(math.Inf(-1)), b); !math.IsInf(float64(got), -1) {
		t.Errorf("Roundtrip(-Inf) = %g", got)
	}
	if got := Roundtrip(float32(math.NaN()), b); !math.IsNaN(float64(got)) {
		t.Errorf("Roundtrip(NaN) = %g", got)
	}
}

// TestErrorBoundProperty: for any |v| < 1, |roundtrip(v) - v| <= 2^-E,
// for every supported bound. This is the codec's central invariant.
func TestErrorBoundProperty(t *testing.T) {
	for e := 1; e <= 15; e++ {
		b := MustBound(e)
		f := func(u uint32) bool {
			// Map u to a float32 in (-1, 1) covering all exponents and
			// mantissas: keep sign and mantissa, force exponent < 127.
			exp := u >> 23 & 0xFF
			exp = exp % 127 // 0..126
			bits := u&0x807FFFFF | exp<<23
			v := math.Float32frombits(bits)
			got := Roundtrip(v, b)
			return math.Abs(float64(got)-float64(v)) <= b.MaxError()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
			t.Errorf("bound %v: %v", b, err)
		}
	}
}

// TestReconstructionNeverOvershoots: truncation means |decoded| <= |v| and
// the sign is preserved for nonzero decodes.
func TestReconstructionNeverOvershoots(t *testing.T) {
	b := MustBound(10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		v := float32(rng.Float64()*2 - 1)
		got := Roundtrip(v, b)
		if math.Abs(float64(got)) > math.Abs(float64(v)) {
			t.Fatalf("overshoot: v=%g got=%g", v, got)
		}
		if got != 0 && math.Signbit(float64(got)) != math.Signbit(float64(v)) {
			t.Fatalf("sign flip: v=%g got=%g", v, got)
		}
	}
}

func TestRoundtripIdempotent(t *testing.T) {
	// Decoded values must re-encode to themselves (fixed point of the codec).
	b := MustBound(8)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50000; i++ {
		v := float32(rng.NormFloat64() * 0.1)
		once := Roundtrip(v, b)
		twice := Roundtrip(once, b)
		if once != twice {
			t.Fatalf("not idempotent: v=%g once=%g twice=%g", v, once, twice)
		}
	}
}

func TestGroupRoundtrip(t *testing.T) {
	b := MustBound(10)
	vals := []float32{0, 0.5, -0.03, 1.25, -0.0001, 0.9999, 2e-4, -0.125}
	w := bitio.NewWriter(64)
	CompressGroup(w, vals, b)
	r := bitio.NewReader(w.Bytes(), w.Len())
	got := make([]float32, len(vals))
	if err := DecompressGroup(r, got, b); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(float64(got[i])-float64(vals[i])) > b.MaxError() && TagOf(vals[i], b) != TagNone {
			t.Errorf("lane %d: got %g want ~%g", i, got[i], vals[i])
		}
	}
	if got[3] != 1.25 {
		t.Errorf("no-compress lane: got %g want 1.25", got[3])
	}
	if r.Remaining() != 0 {
		t.Errorf("%d unread bits", r.Remaining())
	}
}

func TestPartialGroup(t *testing.T) {
	b := MustBound(10)
	vals := []float32{0.25, -0.6, 0.001}
	w := bitio.NewWriter(16)
	CompressGroup(w, vals, b)
	r := bitio.NewReader(w.Bytes(), w.Len())
	got := make([]float32, 3)
	if err := DecompressGroup(r, got, b); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(float64(got[i])-float64(vals[i])) > b.MaxError() {
			t.Errorf("lane %d: got %g want ~%g", i, got[i], vals[i])
		}
	}
}

func TestGroupSizeBounds(t *testing.T) {
	b := MustBound(10)
	w := bitio.NewWriter(8)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { CompressGroup(w, nil, b) })
	mustPanic("oversize", func() { CompressGroup(w, make([]float32, 9), b) })
}

func TestStreamRoundtripProperty(t *testing.T) {
	b := MustBound(10)
	f := func(seed int64, n uint16) bool {
		count := int(n%1000) + 1
		rng := rand.New(rand.NewSource(seed))
		src := make([]float32, count)
		for i := range src {
			switch rng.Intn(4) {
			case 0:
				src[i] = float32(rng.NormFloat64() * 0.01)
			case 1:
				src[i] = float32(rng.NormFloat64())
			case 2:
				src[i] = 0
			default:
				src[i] = float32(rng.NormFloat64() * 10)
			}
		}
		w := bitio.NewWriter(4 * count)
		CompressStream(w, src, b)
		if int64(w.Len()) != CompressedBits(src, b) {
			return false
		}
		dst := make([]float32, count)
		if err := DecompressStream(bitio.NewReader(w.Bytes(), w.Len()), dst, b); err != nil {
			return false
		}
		for i := range src {
			if TagOf(src[i], b) == TagNone {
				if dst[i] != src[i] && !(math.IsNaN(float64(src[i])) && math.IsNaN(float64(dst[i]))) {
					return false
				}
			} else if math.Abs(float64(dst[i])-float64(src[i])) > b.MaxError() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressStreamTruncated(t *testing.T) {
	b := MustBound(10)
	src := make([]float32, 64)
	for i := range src {
		src[i] = 0.3
	}
	w := bitio.NewWriter(256)
	CompressStream(w, src, b)
	// Chop the stream in half.
	r := bitio.NewReader(w.Bytes(), w.Len()/2)
	dst := make([]float32, 64)
	if err := DecompressStream(r, dst, b); err == nil {
		t.Fatal("expected error decoding truncated stream")
	}
}

func TestCompressionRatioOfSparseStream(t *testing.T) {
	// A stream of all-below-bound values compresses 8 floats into 16 tag
	// bits: ratio 16x, the codec's ceiling (paper: "close to 15x").
	b := MustBound(6)
	src := make([]float32, 8000)
	for i := range src {
		src[i] = 1e-5
	}
	if got := Ratio(src, b); math.Abs(got-16) > 1e-9 {
		t.Errorf("all-zero-class ratio = %g, want 16", got)
	}
}

func TestTagStats(t *testing.T) {
	b := MustBound(10)
	var s TagStats
	s.Observe([]float32{0, 1e-9, 0.01, 0.5, 2.0}, b)
	if s.Total() != 5 {
		t.Fatalf("Total = %d", s.Total())
	}
	if s.Count[TagZero] != 2 || s.Count[Tag8] != 1 || s.Count[Tag16] != 1 || s.Count[TagNone] != 1 {
		t.Fatalf("counts = %v", s.Count)
	}
	wantAvg := float64(2+2+10+18+34) / 5
	if math.Abs(s.AverageBits()-wantAvg) > 1e-9 {
		t.Fatalf("AverageBits = %g, want %g", s.AverageBits(), wantAvg)
	}
	if f := s.Fraction(TagZero); math.Abs(f-0.4) > 1e-9 {
		t.Fatalf("Fraction(TagZero) = %g", f)
	}
}

// TestTableIIIStructure checks that on a realistic tight-around-zero
// gradient distribution the class fractions move the way Table III shows:
// relaxing the bound (larger error) grows the zero class and shrinks the
// wide classes.
func TestTableIIIStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grads := make([]float32, 200000)
	for i := range grads {
		// Mixture: a tight core with a heavier tail, the shape of Fig. 5.
		if rng.Intn(10) == 0 {
			grads[i] = float32(rng.NormFloat64() * 0.05)
		} else {
			grads[i] = float32(rng.NormFloat64() * 0.0008)
		}
	}
	var s10, s8, s6 TagStats
	s10.Observe(grads, MustBound(10))
	s8.Observe(grads, MustBound(8))
	s6.Observe(grads, MustBound(6))

	if !(s6.Fraction(TagZero) > s8.Fraction(TagZero) && s8.Fraction(TagZero) > s10.Fraction(TagZero)) {
		t.Errorf("zero-class fractions not monotone: %g %g %g",
			s10.Fraction(TagZero), s8.Fraction(TagZero), s6.Fraction(TagZero))
	}
	if s6.Count[Tag16] != 0 {
		t.Errorf("E=6 produced %d Tag16 values", s6.Count[Tag16])
	}
	if s10.Fraction(TagZero) < 0.5 {
		t.Errorf("E=10 zero class = %g, expected the majority", s10.Fraction(TagZero))
	}
}

func TestCompressedBitsMatchesStream(t *testing.T) {
	b := MustBound(8)
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 7, 8, 9, 100, 1023} {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64() * 0.3)
		}
		w := bitio.NewWriter(4 * n)
		CompressStream(w, src, b)
		if int64(w.Len()) != CompressedBits(src, b) {
			t.Errorf("n=%d: stream %d bits, CompressedBits %d", n, w.Len(), CompressedBits(src, b))
		}
	}
}

func BenchmarkCompressScalar(b *testing.B) {
	bound := MustBound(10)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64() * 0.01)
	}
	b.SetBytes(4)
	for i := 0; i < b.N; i++ {
		Compress(vals[i&4095], bound)
	}
}

func BenchmarkCompressStream64K(b *testing.B) {
	bound := MustBound(10)
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 64*1024)
	for i := range src {
		src[i] = float32(rng.NormFloat64() * 0.01)
	}
	w := bitio.NewWriter(4 * len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		CompressStream(w, src, bound)
	}
}

func BenchmarkDecompressStream64K(b *testing.B) {
	bound := MustBound(10)
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 64*1024)
	for i := range src {
		src[i] = float32(rng.NormFloat64() * 0.01)
	}
	w := bitio.NewWriter(4 * len(src))
	CompressStream(w, src, bound)
	dst := make([]float32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(w.Bytes(), w.Len())
		if err := DecompressStream(r, dst, bound); err != nil {
			b.Fatal(err)
		}
	}
}
