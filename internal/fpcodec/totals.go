package fpcodec

import "sync/atomic"

// Process-wide stream-compression totals. The codec sits below every
// transport (and below iteration attribution), so rather than plumbing a
// recorder through it, it keeps two atomics that an observability layer
// surfaces as callback gauges (obs.Registry.Func).
var (
	totalStreamValues atomic.Int64
	totalStreamBits   atomic.Int64
)

// StreamTotals returns how many float32 values CompressStream has
// encoded process-wide and how many bits those encodes emitted.
func StreamTotals() (values, bits int64) {
	return totalStreamValues.Load(), totalStreamBits.Load()
}
