package fpcodec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"inceptionn/internal/bitio"
	"inceptionn/internal/par"
)

// gradLike returns n values with a gradient-like distribution: mostly tiny
// (TagZero/Tag8), some Tag16, and a sprinkle of TagNone outliers.
func gradLike(rng *rand.Rand, n int) []float32 {
	src := make([]float32, n)
	for i := range src {
		switch rng.Intn(10) {
		case 0:
			src[i] = float32(rng.NormFloat64() * 3) // outliers, some ≥ 1.0
		case 1, 2:
			src[i] = float32(rng.NormFloat64() * 0.1)
		default:
			src[i] = float32(rng.NormFloat64() * 0.001)
		}
	}
	return src
}

// TestStreamParallelBitIdentical pins the wire-format contract of the
// sharded codec: for any worker count, CompressStream produces the exact
// byte sequence and bit length of the sequential encoder, and
// DecompressStream reproduces the sequential decode bit-for-bit
// (including the reader's final position).
func TestStreamParallelBitIdentical(t *testing.T) {
	bound := MustBound(10)
	rng := rand.New(rand.NewSource(7))
	// Sizes straddle the parallel threshold and exercise partial final
	// groups and uneven group-per-shard splits.
	for _, n := range []int{1, 9, 16*1024 - 3, 64 * 1024, 64*1024 + 5, 200*1024 + 1} {
		src := gradLike(rng, n)

		prev := par.SetMaxWorkers(1)
		wSeq := bitio.NewWriter(0)
		compressStreamSeq(wSeq, src, bound)
		dstSeq := make([]float32, n)
		rSeq := bitio.NewReader(wSeq.Bytes(), wSeq.Len())
		if err := decompressStreamSeq(rSeq, dstSeq, bound); err != nil {
			t.Fatalf("n=%d: sequential decode: %v", n, err)
		}
		par.SetMaxWorkers(prev)

		for _, workers := range []int{2, 3, 8} {
			prev := par.SetMaxWorkers(workers)
			w := bitio.NewWriter(0)
			CompressStream(w, src, bound)
			if w.Len() != wSeq.Len() || !bytes.Equal(w.Bytes(), wSeq.Bytes()) {
				par.SetMaxWorkers(prev)
				t.Fatalf("n=%d workers=%d: parallel stream differs (%d vs %d bits)",
					n, workers, w.Len(), wSeq.Len())
			}
			dst := make([]float32, n)
			r := bitio.NewReader(w.Bytes(), w.Len())
			if err := DecompressStream(r, dst, bound); err != nil {
				par.SetMaxWorkers(prev)
				t.Fatalf("n=%d workers=%d: parallel decode: %v", n, workers, err)
			}
			if r.Pos() != rSeq.Pos() {
				par.SetMaxWorkers(prev)
				t.Fatalf("n=%d workers=%d: final reader pos %d, sequential %d",
					n, workers, r.Pos(), rSeq.Pos())
			}
			for i := range dst {
				if math.Float32bits(dst[i]) != math.Float32bits(dstSeq[i]) {
					par.SetMaxWorkers(prev)
					t.Fatalf("n=%d workers=%d: dst[%d] = %g, sequential %g",
						n, workers, i, dst[i], dstSeq[i])
				}
			}
			par.SetMaxWorkers(prev)
		}
	}
}

// TestShardBoundsGroupAligned checks the shard decomposition invariants:
// shards tile [0, n) exactly, and every boundary except the last is a
// multiple of GroupSize (so each shard owns whole burst groups).
func TestShardBoundsGroupAligned(t *testing.T) {
	for _, n := range []int{8, 17, 1000, 16384, 99991} {
		for shards := 1; shards <= 9; shards++ {
			next := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardBounds(n, shards, s)
				if lo != next {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, next)
				}
				if lo%GroupSize != 0 && lo != n {
					t.Fatalf("n=%d shards=%d: shard %d start %d not group-aligned", n, shards, s, lo)
				}
				if hi < lo || hi > n {
					t.Fatalf("n=%d shards=%d: shard %d bounds [%d,%d)", n, shards, s, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d shards=%d: shards end at %d", n, shards, next)
			}
		}
	}
}

// TestDecompressGroupHostileTrailingTags pins the partial-group contract:
// when len(dst) < GroupSize, only the first len(dst) lanes' tags are
// honoured and only their data bits are consumed — even if a corrupt or
// adversarial encoder stuffed non-TagZero tags into the trailing lanes.
// skipStream must agree exactly, or the parallel decoder's offset scan
// would desynchronise from the sequential decode on such streams.
func TestDecompressGroupHostileTrailingTags(t *testing.T) {
	bound := MustBound(10)
	for count := 1; count < GroupSize; count++ {
		w := bitio.NewWriter(0)
		// Hand-roll a group: first `count` lanes Tag16, trailing lanes
		// claim TagNone (32 data bits each) but carry no data at all.
		var tags uint64
		for i := 0; i < count; i++ {
			tags |= uint64(Tag16) << uint(2*i)
		}
		for i := count; i < GroupSize; i++ {
			tags |= uint64(TagNone) << uint(2*i)
		}
		w.WriteBits(tags, TagVectorBits)
		for i := 0; i < count; i++ {
			v, tag := Compress(0.25, bound)
			if tag != Tag16 {
				t.Fatalf("setup: 0.25 compressed to %s, want %s", tag, Tag16)
			}
			w.WriteBits(uint64(v), Tag16.Bits())
		}
		// A sentinel value after the group proves exactly how many bits
		// the decoder consumed.
		const sentinel = 0x2A
		w.WriteBits(sentinel, 8)

		dst := make([]float32, count)
		r := bitio.NewReader(w.Bytes(), w.Len())
		if err := DecompressGroup(r, dst, bound); err != nil {
			t.Fatalf("count=%d: DecompressGroup: %v", count, err)
		}
		for i, v := range dst {
			if v != 0.25 {
				t.Fatalf("count=%d: dst[%d] = %g, want 0.25", count, i, v)
			}
		}
		if got, err := r.ReadBits(8); err != nil || got != sentinel {
			t.Fatalf("count=%d: sentinel after decode = %#x, %v (trailing hostile tags consumed data?)",
				count, got, err)
		}

		// skipStream must land on the same position.
		r2 := bitio.NewReader(w.Bytes(), w.Len())
		if err := skipStream(r2, count); err != nil {
			t.Fatalf("count=%d: skipStream: %v", count, err)
		}
		if got, err := r2.ReadBits(8); err != nil || got != sentinel {
			t.Fatalf("count=%d: sentinel after skip = %#x, %v", count, got, err)
		}
	}
}

// TestDecompressStreamTruncatedParallel checks that a truncated stream
// surfaces ErrShortRead from both the scan pass and the decode pass
// instead of panicking, for sizes on both sides of the parallel
// threshold.
func TestDecompressStreamTruncatedParallel(t *testing.T) {
	bound := MustBound(10)
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{100, 64 * 1024} {
		src := gradLike(rng, n)
		w := bitio.NewWriter(0)
		CompressStream(w, src, bound)
		// Expose only half the bits.
		r := bitio.NewReader(w.Bytes(), w.Len()/2)
		dst := make([]float32, n)
		if err := DecompressStream(r, dst, bound); err == nil {
			t.Fatalf("n=%d: decode of truncated stream succeeded", n)
		}
	}
}
