//go:build race

package tune

func init() { raceEnabled = true }
