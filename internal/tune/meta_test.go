package tune

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
)

func TestMetaRoundTrip(t *testing.T) {
	params := netsim.Default10GbE()
	m := Meta{
		Workload:      Workload{Workers: 4, ModelBytes: 4 << 20, Strategy: "ring", Iters: 8},
		Chosen:        &PlanOption{Strategy: "switch", ChunkFloats: 1 << 14, Compress: true},
		PredIterSec:   0.0123,
		Params:        &params,
		MaxCommRelErr: 0.07,
	}

	var buf bytes.Buffer
	if err := obs.WriteSpansJSONL(&buf, obs.TraceMeta{Version: 1, Node: -1, Source: "run"}, []obs.Span{
		{Node: 0, Iter: 0, Phase: obs.PhaseSend, Start: 0, Dur: 1000},
		{Node: 0, Iter: 0, Phase: obs.PhaseReduce, Start: 1000, Dur: 500},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(&buf); err != nil {
		t.Fatal(err)
	}

	spans, headers, got, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2 (tune_meta line must not parse as a span)", len(spans))
	}
	if len(headers) != 1 {
		t.Fatalf("headers = %d, want 1", len(headers))
	}
	if got == nil {
		t.Fatal("tune meta line not found")
	}
	if got.Version != 1 {
		t.Fatalf("Version = %d, want 1 (defaulted by Append)", got.Version)
	}
	if got.Workload != m.Workload {
		t.Fatalf("workload = %+v, want %+v", got.Workload, m.Workload)
	}
	if got.Chosen == nil || *got.Chosen != *m.Chosen {
		t.Fatalf("chosen = %+v, want %+v", got.Chosen, m.Chosen)
	}
	if got.Params == nil || got.Params.LineRate != params.LineRate {
		t.Fatal("fitted params did not round-trip")
	}
	if got.PredIterSec != m.PredIterSec || got.MaxCommRelErr != m.MaxCommRelErr {
		t.Fatal("scalar fields did not round-trip")
	}

	// The same bytes must replay through plain obs readers unchanged.
	oSpans, _, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("obs.ReadTrace on a tuned trace: %v", err)
	}
	if len(oSpans) != 2 {
		t.Fatalf("obs spans = %d, want 2", len(oSpans))
	}
}

func TestParseTraceWithoutMeta(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WriteSpansJSONL(&buf, obs.TraceMeta{}, []obs.Span{{Node: 0, Iter: 0, Phase: obs.PhaseSend, Dur: 1}}); err != nil {
		t.Fatal(err)
	}
	spans, _, meta, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Fatal("meta invented on a plain trace")
	}
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
}

func TestReadTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	var buf bytes.Buffer
	if err := obs.WriteSpansJSONL(&buf, obs.TraceMeta{Version: 1, Node: -1}, []obs.Span{{Node: 0, Iter: 0, Phase: obs.PhaseSend, Dur: 1}}); err != nil {
		t.Fatal(err)
	}
	m := Meta{Workload: Workload{Workers: 8, ModelBytes: 1 << 20, Strategy: "ring"}}
	if err := m.Append(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	fallback := Workload{Workers: 2, ModelBytes: 1, Strategy: "ring"}
	s, meta, err := ReadTraceFile(path, fallback)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || s.Workload.Workers != 8 {
		t.Fatalf("meta workload not used: %+v", s.Workload)
	}

	// Without a meta line the fallback applies.
	plainPath := filepath.Join(dir, "plain.jsonl")
	var buf2 bytes.Buffer
	_ = obs.WriteSpansJSONL(&buf2, obs.TraceMeta{Version: 1, Node: -1}, []obs.Span{{Node: 0, Iter: 0, Phase: obs.PhaseSend, Dur: 1}})
	if err := os.WriteFile(plainPath, buf2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, meta2, err := ReadTraceFile(plainPath, fallback)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != nil || s2.Workload != fallback {
		t.Fatalf("fallback workload not applied: %+v", s2.Workload)
	}
}
