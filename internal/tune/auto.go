package tune

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"inceptionn/internal/data"
	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
	"inceptionn/internal/train"
)

// AutoOptions configure AutoTune's probe-and-fit protocol.
type AutoOptions struct {
	// ProbeIters is how many iterations each probe run trains
	// (default 16, of which the first probeWarmup are dropped from the
	// fit). Three probes run: a plain whole-block ring (the baseline β-γ
	// and compute fit), a plain chunked ring whose marginal messages pin
	// the per-message α via the paired-contrast estimator, and — when the
	// options carry a wire processor — a compressed one fitting the codec
	// rate and measured ratio.
	ProbeIters int
	// Prior supplies parameter values the probes cannot observe
	// (zero = netsim.Default10GbE()).
	Prior netsim.Params
	// WhatIfNodes is the scale-extrapolation ladder
	// (nil = DefaultWhatIfNodes).
	WhatIfNodes []int
	// SkipVerify disables the score-then-verify pass: by default, after
	// the model ranks the sweep, every plan predicted within verifyMargin
	// of the best is measured with a short run and the measured winner is
	// chosen. The model's job is pruning the candidate space (it sees
	// compression's codec tax and chunking's message tax); the verify pass
	// settles near-ties the α-β model cannot discriminate at testbed
	// scale, where per-step scheduler synchronization — invisible to a
	// wire model — separates strategies by more than their predicted gap.
	SkipVerify bool
	// VerifyIters is the length of each verification run
	// (default 8, first probeWarmup iterations discarded).
	VerifyIters int
}

// probeWarmup is how many leading iterations each probe drops from the
// fit (cold-start transients).
const probeWarmup = 2

// AutoResult is everything AutoTune learned: the fitted model, the
// ranked plans at the run's scale, the winning plan, and the what-if
// extrapolation.
type AutoResult struct {
	Workload Workload  `json:"workload"`
	Fit      *Fitted   `json:"fit"`
	Plans    []Plan    `json:"plans"`
	Chosen   Plan      `json:"chosen"`
	WhatIf   []WhatIf  `json:"what_if"`
	// ProbeSeconds is the wall-clock cost of the probe and
	// verification runs.
	ProbeSeconds float64 `json:"probe_seconds"`
}

// Render writes the human form of the full tune report.
func (r *AutoResult) Render(w io.Writer) {
	r.Fit.RenderFit(w)
	fmt.Fprintf(w, "\nranked plans (%d workers, %d MB model):\n", r.Workload.Workers, r.Workload.ModelBytes>>20)
	RenderPlans(w, r.Plans, 8)
	fmt.Fprintf(w, "\nwhat-if scaling (weak scaling, hierarchical trees in the sweep):\n")
	RenderWhatIf(w, r.WhatIf)
	fmt.Fprintf(w, "\nchosen: %s", r.Chosen.PlanOption)
	if r.Chosen.MeasuredIterSec > 0 {
		fmt.Fprintf(w, " (verified %s/iter measured)", secondsStr(r.Chosen.MeasuredIterSec))
	}
	fmt.Fprintln(w)
}

// AutoTune closes the loop for one run: short probe runs on the real
// runner, a model fit from their traces, a plan sweep, and the winning
// plan returned alongside the options to train with. The caller's
// options select the environment (workers, model, batch, processor,
// stragglers); the probe overrides the exchange configuration only.
func AutoTune(build train.Builder, trainDS, testDS data.Dataset, o train.Options, ao AutoOptions) (*AutoResult, train.Options, error) {
	if ao.ProbeIters <= 0 {
		ao.ProbeIters = 16
	}
	modelBytes := build(rand.New(rand.NewSource(o.Seed))).SizeBytes()

	probe := func(compress bool, chunk int) (Sample, error) {
		po := o
		po.Algo = train.Ring
		po.ChunkSize = chunk
		po.SwitchChunk = 0
		po.Compress = compress
		if !compress {
			po.Processor = nil
		}
		po.EvalEvery = 0 // no accuracy evals inside a probe
		po.Health = nil
		po.Chaos = nil
		reg := obs.NewRegistry()
		tr := obs.NewTracer(1 << 17)
		po.Obs = obs.NewRecorder(reg, tr)
		t0 := time.Now()
		res, err := train.Run(build, trainDS, testDS, ao.ProbeIters, po)
		if err != nil {
			return Sample{}, fmt.Errorf("tune: probe run (compress=%v chunk=%d): %w", compress, chunk, err)
		}
		wall := time.Since(t0).Seconds()
		w := Workload{
			Workers:     o.Workers,
			ModelBytes:  modelBytes,
			Strategy:    "ring",
			ChunkFloats: chunk,
			Compress:    compress,
			Iters:       ao.ProbeIters,
		}
		if compress && res.WireBytes > 0 && res.RawBytes > 0 {
			w.Ratio = float64(res.RawBytes) / float64(res.WireBytes)
		}
		return Sample{Workload: w, Spans: tr.Snapshot(), IterSeconds: wall / float64(ao.ProbeIters), WarmupIters: probeWarmup}, nil
	}

	t0 := time.Now()
	samples := make([]Sample, 0, 3)
	plain, err := probe(false, 0)
	if err != nil {
		return nil, o, err
	}
	samples = append(samples, plain)
	// A chunked probe carries the same bytes split over more messages;
	// its marginal cost over the whole-block baseline is what pins α.
	if chunk := int(modelBytes/4) / (4 * o.Workers); chunk > 0 {
		chunked, err := probe(false, chunk)
		if err != nil {
			return nil, o, err
		}
		samples = append(samples, chunked)
	}
	if o.Processor != nil {
		comp, err := probe(true, 0)
		if err != nil {
			return nil, o, err
		}
		samples = append(samples, comp)
	}
	probeSec := time.Since(t0).Seconds()

	fit, err := Fit(samples, ao.Prior)
	if err != nil {
		return nil, o, err
	}
	pl := &Planner{
		Fit:        fit,
		Workers:    o.Workers,
		ModelBytes: modelBytes,
		NoCompress: o.Processor == nil,
	}
	plans := pl.Rank(pl.Candidates())

	// Score-then-verify: measure every plan the model scored within
	// verifyMargin of its best and choose the measured winner. Warmup
	// iterations stay in each run's wall clock — the bias is the same for
	// every candidate, and only the ordering matters here.
	chosen := plans[0]
	if !ao.SkipVerify {
		verifyIters := ao.VerifyIters
		if verifyIters <= 0 {
			verifyIters = 8
		}
		limit := plans[0].PredIterSec * (1 + verifyMargin)
		t1 := time.Now()
		for i := range plans {
			if plans[i].PredIterSec > limit {
				break // plans are sorted by prediction
			}
			vo := Apply(o, plans[i])
			vo.EvalEvery = 0
			vo.Health = nil
			vo.Chaos = nil
			vo.Obs = nil
			v0 := time.Now()
			if _, err := train.Run(build, trainDS, testDS, verifyIters, vo); err != nil {
				return nil, o, fmt.Errorf("tune: verify run %s: %w", plans[i].PlanOption, err)
			}
			plans[i].MeasuredIterSec = time.Since(v0).Seconds() / float64(verifyIters)
			if plans[i].MeasuredIterSec < chosen.MeasuredIterSec || chosen.MeasuredIterSec == 0 {
				chosen = plans[i]
			}
		}
		probeSec += time.Since(t1).Seconds()
	}

	res := &AutoResult{
		Workload:     plain.Workload,
		Fit:          fit,
		Plans:        plans,
		Chosen:       chosen,
		WhatIf:       pl.WhatIf(ao.WhatIfNodes),
		ProbeSeconds: probeSec,
	}
	return res, Apply(o, res.Chosen), nil
}

// verifyMargin is the prediction band the verify pass measures: plans
// predicted within this fraction of the model's best are near-ties the
// closed-form model cannot settle, so a short measured run does.
const verifyMargin = 0.10

// Apply returns the options with the plan's exchange configuration
// installed (strategy, chunking, compression). Compression is only
// applied when the options carry a wire processor.
func Apply(o train.Options, p Plan) train.Options {
	switch p.Strategy {
	case "ring":
		o.Algo = train.Ring
		o.ChunkSize = p.ChunkFloats
	case "worker-aggregator":
		o.Algo = train.WorkerAggregator
	case "switch":
		o.Algo = train.SwitchReduce
		o.SwitchChunk = p.ChunkFloats
	case "hierarchical-tree":
		o.Algo = train.HierarchicalTree
		o.GroupSize = p.GroupSize
	case "hierarchical-ring":
		o.Algo = train.HierarchicalRing
		o.GroupSize = p.GroupSize
	}
	o.Compress = p.Compress && o.Processor != nil
	return o
}

// MetaFor builds the self-describing trace line for a tuned run.
func (r *AutoResult) MetaFor(applied Workload) Meta {
	chosen := r.Chosen.PlanOption
	return Meta{
		Version:       1,
		Workload:      applied,
		Chosen:        &chosen,
		PredIterSec:   r.Chosen.PredIterSec,
		Params:        &r.Fit.Params,
		MaxCommRelErr: r.Fit.MaxCommRelErr,
	}
}

// PublishGauges exports the decision and fitted parameters as obs
// gauges on the run's recorder, so a scrape of /metrics shows what the
// tuner decided and from what model.
func (r *AutoResult) PublishGauges(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	rec.Gauge("tune_pred_iter_seconds").Set(r.Chosen.PredIterSec)
	rec.Gauge("tune_chunk_floats").Set(float64(r.Chosen.ChunkFloats))
	rec.Gauge("tune_compress").Set(b2f(r.Chosen.Compress))
	rec.Gauge("tune_strategy_" + r.Chosen.Strategy).Set(1)
	rec.Gauge("tune_fit_stream_bw_bytes_per_s").Set(r.Fit.Params.StreamEfficiency * r.Fit.Params.LineRate)
	rec.Gauge("tune_fit_sum_rate_bytes_per_s").Set(r.Fit.Params.SumRate)
	rec.Gauge("tune_fit_latency_seconds").Set(r.Fit.Params.Latency)
	rec.Gauge("tune_fit_compute_seconds").Set(r.Fit.ComputeSec)
	rec.Gauge("tune_fit_max_comm_rel_err").Set(r.Fit.MaxCommRelErr)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
