// Package tune closes the observe→model→tune loop: it fits the
// simulators' parameters to measured span traces (upgrading
// obs.Calibrate from a diff table to a calibrated model), sweeps the
// exchange-strategy × chunk-size × compression search space through the
// fitted netsim/eventsim models, and ranks the plans by predicted
// iteration time — replacing the hand-tuned constants the runners
// shipped with.
//
// The flow has three stages:
//
//  1. Fit: one or more measured traces (each described by a Workload —
//     worker count, model bytes, strategy, chunking, compression ratio)
//     are reduced to per-{node,iteration} phase cells, and netsim's
//     α-β-γ parameter set is least-squares fitted to them: per-message
//     overhead α and stream bandwidth β from the send cells, summation
//     rate γ from the reduce cells, compute time from the compute
//     cells, codec throughput from the compress spans. Per-phase
//     eventsim scale factors and residuals come from replaying the
//     fitting workload through the fitted event simulator and diffing
//     with obs.Calibrate.
//  2. Plan: Planner sweeps the candidate grid through the fitted
//     closed-form models (netsim.Ring / WorkerAggregator /
//     SwitchAllReduce / Hierarchical plus the fitted codec cost and the
//     chunk-pipelining overlap), ranks by predicted iteration time, and
//     cross-checks the top plans dynamically with the fluid-flow
//     event simulator (eventsim.RingTraceDelays / SwitchTraceDelays).
//     What-if extrapolation re-runs the sweep at simulated scales far
//     past the testbed (100s–1000s of nodes) with FireCaffe-style
//     hierarchical reduction trees in the candidate set.
//  3. Apply: AutoTune runs a short probe (a plain ring run, plus a
//     compressed one when a codec is configured), fits, plans, and
//     returns train.Options with the winning plan applied.
package tune

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"inceptionn/internal/eventsim"
	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
)

// Workload describes the run that produced a measured trace — everything
// the fitter needs to convert span durations into rates. It doubles as
// the self-description a run embeds in its trace (see Meta).
type Workload struct {
	Workers     int     `json:"workers"`
	ModelBytes  int64   `json:"model_bytes"`
	Strategy    string  `json:"strategy"`               // train.Algorithm.String() name
	ChunkFloats int     `json:"chunk_floats,omitempty"` // ring ChunkSize / switch SwitchChunk
	Compress    bool    `json:"compress,omitempty"`
	Ratio       float64 `json:"ratio,omitempty"` // measured raw/wire compression ratio
	Iters       int     `json:"iters,omitempty"`
}

// Validate reports whether the workload can drive a fit.
func (w Workload) Validate() error {
	if w.Workers < 2 {
		return fmt.Errorf("tune: workload needs >= 2 workers, got %d", w.Workers)
	}
	if w.ModelBytes <= 0 {
		return fmt.Errorf("tune: workload needs model bytes > 0, got %d", w.ModelBytes)
	}
	switch w.Strategy {
	case "ring", "switch", "worker-aggregator", "hierarchical-tree", "hierarchical-ring":
	default:
		return fmt.Errorf("tune: unknown workload strategy %q", w.Strategy)
	}
	return nil
}

// ratio resolves the effective wire compression ratio (1 when the
// workload ran uncompressed or the ratio was not recorded).
func (w Workload) ratio() float64 {
	if !w.Compress || w.Ratio <= 1 {
		return 1
	}
	return w.Ratio
}

// traffic packetizes n raw bytes the way this workload's wire did.
func (w Workload) traffic(n int64) netsim.Traffic {
	if r := w.ratio(); r > 1 {
		return netsim.NICCompressed(n, r)
	}
	return netsim.Plain(n)
}

// blockBytes returns the largest ring-block size of the workload.
func (w Workload) blockBytes() int64 {
	return netsim.RingBlockBytes(w.ModelBytes, w.Workers)
}

// chunksPerBlock returns how many messages one ring block travels as.
func (w Workload) chunksPerBlock() int64 {
	if w.ChunkFloats <= 0 {
		return 1
	}
	blockFloats := (w.blockBytes() + 3) / 4
	k := (blockFloats + int64(w.ChunkFloats) - 1) / int64(w.ChunkFloats)
	if k < 1 {
		k = 1
	}
	return k
}

// Sample pairs a measured trace with its workload description.
type Sample struct {
	Workload Workload
	Spans    []obs.Span
	// IterSeconds is the measured mean wall-clock seconds per iteration
	// (0 = derive from the span extents).
	IterSeconds float64
	// WarmupIters drops the first iterations' cells from the fit: cold
	// caches, first-touch allocation and scheduler ramp-up make them
	// unrepresentative of steady state.
	WarmupIters int
}

// iterSeconds resolves the sample's mean measured iteration time: the
// explicit value when given, otherwise the mean per-iteration span
// extent (max end − min start over each iteration's spans).
func (s Sample) iterSeconds() float64 {
	if s.IterSeconds > 0 {
		return s.IterSeconds
	}
	type extent struct{ lo, hi int64 }
	iters := make(map[int]extent)
	for _, sp := range s.Spans {
		if sp.Iter < s.WarmupIters {
			continue
		}
		e, ok := iters[sp.Iter]
		if !ok {
			e = extent{lo: sp.Start, hi: sp.Start + sp.Dur}
		} else {
			if sp.Start < e.lo {
				e.lo = sp.Start
			}
			if end := sp.Start + sp.Dur; end > e.hi {
				e.hi = end
			}
		}
		iters[sp.Iter] = e
	}
	if len(iters) == 0 {
		return 0
	}
	total := 0.0
	for _, e := range iters {
		total += float64(e.hi-e.lo) / 1e9
	}
	return total / float64(len(iters))
}

// Fitted is the calibrated model: the netsim α-β-γ parameter set plus
// the workload-side rates netsim does not carry, per-phase eventsim
// scale factors, residuals, and a coverage report naming which
// parameters were actually observed (vs held at their priors).
type Fitted struct {
	// Params is the fitted netsim parameter set: Latency (α/2 per hop),
	// LineRate (β/StreamEfficiency), SumRate (γ), SwitchSumRate.
	// Parameters the traces cannot observe keep the prior's value and
	// are named in Coverage.
	Params netsim.Params `json:"params"`

	// ComputeSec is the mean compute seconds per node-iteration.
	ComputeSec float64 `json:"compute_seconds"`
	// CodecRate is the lossy codec's effective throughput in raw
	// bytes/s (0 = no compressed sample was fitted; the planner then
	// falls back to DefaultCodecRate).
	CodecRate float64 `json:"codec_rate,omitempty"`
	// Ratio is the measured wire compression ratio of the compressed
	// sample (0 = none seen).
	Ratio float64 `json:"ratio,omitempty"`
	// OverheadSec is the per-iteration residual the phase models do not
	// capture (scheduling, synchronization slack): measured iteration
	// time minus the fitted model's prediction on the fitting workload,
	// clamped at zero. Added to every plan's prediction — constant
	// across candidates, so it never changes a ranking.
	OverheadSec float64 `json:"overhead_seconds"`

	// Scale holds per-phase eventsim scale factors: measured mean over
	// fitted-sim mean, 1 for phases the replay could not compare.
	Scale [obs.NumPhases]float64 `json:"-"`
	// Residuals is the per-phase calibration of the fitted (unscaled)
	// event-simulator replay against the fitting trace.
	Residuals *obs.Calibration `json:"-"`
	// MaxCommRelErr is the largest |relative error| across the
	// communication phases (send, reduce) of Residuals.
	MaxCommRelErr float64 `json:"max_comm_rel_err"`
	// Coverage names, per parameter, whether it was fitted from the
	// traces or held at the prior.
	Coverage []string `json:"coverage"`
	// Cells is how many {node, iteration} fitting cells were used.
	Cells int `json:"cells"`
}

// DefaultCodecRate is the planner's prior for the lossy codec's
// throughput when no compressed sample was fitted (raw bytes/s; the
// repo's measured fpcodec compress+decompress rate is ~140/125 MB/s,
// see BENCH_2).
const DefaultCodecRate = 130e6

// DefaultRatio is the planner's prior wire compression ratio when no
// compressed sample was fitted (the paper's Table III floor).
const DefaultRatio = 3.0

// cell is one {node, iteration} fitting observation.
type cell struct {
	t float64 // seconds in the phase
	m float64 // messages sent (send phase)
	b float64 // wire bytes moved (send phase) or raw bytes reduced
}

// Fit least-squares fits the simulator parameter set to one or more
// measured samples. prior supplies the values of parameters the traces
// cannot observe (zero-value prior = netsim.Default10GbE()).
func Fit(samples []Sample, prior netsim.Params) (*Fitted, error) {
	if prior.LineRate == 0 {
		prior = netsim.Default10GbE()
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("tune: no samples to fit")
	}
	for i := range samples {
		if err := samples[i].Workload.Validate(); err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
	}

	var send, reduce, compute []cell
	var switchReduce []cell
	codecSec, codecBytes := 0.0, 0.0
	ratio := 0.0

	for _, s := range samples {
		w := s.Workload
		idx := obs.IndexSpans(s.Spans)
		// Group the per-{node,iter,phase} sums into per-phase cell lists
		// with the workload's message/byte counts attached.
		steps := float64(2 * (w.Workers - 1))
		wirePerStep := float64(w.traffic(w.blockBytes()).WireBytes)
		msgsPerStep := float64(w.chunksPerBlock())
		for k, d := range idx {
			if k.Iter < s.WarmupIters || k.Node < 0 {
				continue
			}
			sec := d.Seconds()
			switch {
			case w.Compress:
				// A compressed run's spans are all perturbed by the codec
				// running inline on the send path (it contends for the
				// same cores the compute and reduce phases use), so a
				// compressed sample contributes only the codec rate and
				// measured ratio below — mirroring calibrateReplay, which
				// skips compressed samples for the same reason.
			case k.Phase == obs.PhaseCompute && k.Node < w.Workers:
				compute = append(compute, cell{t: sec})
			case w.Strategy != "ring":
				// Only ring traces have the regular per-cell send/reduce
				// structure the α-β-γ fit needs; other strategies still
				// contribute compute above and switch cells below.
				if w.Strategy == "switch" && k.Phase == obs.PhaseReduce && k.Node == w.Workers {
					switchReduce = append(switchReduce, cell{t: sec, b: float64(w.ModelBytes)})
				}
			case k.Phase == obs.PhaseSend && k.Node < w.Workers:
				send = append(send, cell{t: sec, m: steps * msgsPerStep, b: steps * wirePerStep})
			case k.Phase == obs.PhaseReduce && k.Node < w.Workers:
				// Billed bytes follow netsim.Ring's Sum structure:
				// (p−1)·block per iteration.
				reduce = append(reduce, cell{t: sec, b: float64(w.Workers-1) * float64(w.blockBytes())})
			}
		}
		// Codec throughput: compress/decompress spans carry iter −1 on
		// the in-process fabric (they belong to the transport, not an
		// iteration), so they are summed straight off the span list. The
		// raw bytes processed are what the workload pushed through the
		// wire processor: every send leg's raw payload.
		if w.Compress {
			for _, sp := range s.Spans {
				if sp.Phase == obs.PhaseCompress || sp.Phase == obs.PhaseDecompress {
					codecSec += float64(sp.Dur) / 1e9
				}
			}
			iters := w.Iters
			if iters <= 0 {
				iters = spanIters(s.Spans)
			}
			codecBytes += rawBytesSent(w) * float64(iters)
			if r := w.ratio(); r > ratio {
				ratio = r
			}
		}
	}

	if len(send) == 0 {
		return nil, fmt.Errorf("tune: no ring send cells in any sample (need at least one ring-strategy trace)")
	}

	f := &Fitted{Params: prior, Cells: len(send) + len(reduce) + len(compute)}
	for p := range f.Scale {
		f.Scale[p] = 1
	}

	// --- α, β: least squares over t = α·messages + bytes/β -----------
	alpha, beta, how := fitAlphaBeta(send, 2*prior.Latency, prior.StreamEfficiency*prior.LineRate)
	f.Params.Latency = alpha / 2 // netsim charges 2·Latency per ring step
	f.Params.LineRate = beta / prior.StreamEfficiency
	// Per-packet cost is unobservable in a span trace (no packet
	// counts); charging the prior's per-packet floor against the fitted
	// bandwidth would double-count α, so it is zeroed.
	f.Params.PerPacketTime = 0
	f.Coverage = append(f.Coverage,
		fmt.Sprintf("latency: fitted α=%.1fµs per message (%s)", alpha*1e6, how),
		fmt.Sprintf("line rate: fitted β=%.0f MB/s per stream (prior stream efficiency %.2f kept)", beta/1e6, prior.StreamEfficiency),
		"per-packet time: set to 0 (packet counts unobservable in span traces; α carries the per-message cost)")

	// --- γ: summation rate from the reduce cells ---------------------
	// Fitted against netsim.Ring's structure: Sum = (p−1)·block/γ per
	// iteration, so γ = (p−1)·block / (mean reduce cell). The measured
	// cell includes the all-gather phase's block copies, which γ then
	// absorbs — it is an effective rate for the model structure that
	// consumes it, not a pure FLOP rate.
	if len(reduce) > 0 {
		var billed, secs float64
		for _, c := range trimCells(reduce) {
			billed += c.b
			secs += c.t
		}
		if secs > 0 {
			f.Params.SumRate = billed / secs
			f.Coverage = append(f.Coverage, fmt.Sprintf("sum rate: fitted γ=%.0f MB/s effective (absorbs all-gather copies)", f.Params.SumRate/1e6))
		}
	} else {
		f.Coverage = append(f.Coverage, "sum rate: held at prior (no reduce cells)")
	}

	// --- switch combine rate -----------------------------------------
	if len(switchReduce) > 0 {
		var b, t float64
		for _, c := range trimCells(switchReduce) {
			b += c.b
			t += c.t
		}
		if t > 0 {
			f.Params.SwitchSumRate = b / t
			f.Coverage = append(f.Coverage, fmt.Sprintf("switch sum rate: fitted %.0f MB/s from switch reduce spans", f.Params.SwitchSumRate/1e6))
		}
	} else {
		// The in-process switch runner's combine runs on a CPU core at
		// the same effective rate as the ring's reduction.
		f.Params.SwitchSumRate = f.Params.SumRate
		f.Coverage = append(f.Coverage, "switch sum rate: no switch reduce spans; assumed equal to fitted sum rate γ")
	}

	// --- compute ------------------------------------------------------
	if len(compute) > 0 {
		trimmed := trimCells(compute)
		t := 0.0
		for _, c := range trimmed {
			t += c.t
		}
		f.ComputeSec = t / float64(len(trimmed))
		f.Coverage = append(f.Coverage, fmt.Sprintf("compute: fitted %.3f ms per node-iteration", f.ComputeSec*1e3))
	} else {
		f.Coverage = append(f.Coverage, "compute: no compute spans (0 assumed)")
	}

	// --- codec --------------------------------------------------------
	if codecSec > 0 && codecBytes > 0 {
		f.CodecRate = codecBytes / codecSec
		f.Ratio = ratio
		f.Coverage = append(f.Coverage, fmt.Sprintf("codec: fitted %.0f MB/s at ratio %.2fx", f.CodecRate/1e6, ratio))
	} else {
		f.Coverage = append(f.Coverage, fmt.Sprintf("codec: no compressed sample; planner priors %.0f MB/s at %.1fx", DefaultCodecRate/1e6, DefaultRatio))
	}

	// --- residuals, scale factors, per-iteration overhead ------------
	f.calibrateReplay(samples)
	f.fitOverhead(samples)
	return f, nil
}

// trimFrac is the fraction of slowest cells dropped from every measured
// pool before averaging. Rare scheduler preemptions and GC pauses land
// inside single spans and inflate a 100µs cell to several milliseconds
// (50×); the fit targets the machine's typical per-phase cost, and the
// same trim is applied on the measured side of calibration so fit and
// gate see the same statistic.
const trimFrac = 0.10

// trimCells returns the cells with the slowest ceil(trimFrac·n)
// dropped (never dropping below one cell).
func trimCells(cells []cell) []cell {
	if len(cells) <= 1 {
		return cells
	}
	out := make([]cell, len(cells))
	copy(out, cells)
	sort.Slice(out, func(i, j int) bool { return out[i].t < out[j].t })
	drop := int(math.Ceil(trimFrac * float64(len(out))))
	if drop >= len(out) {
		drop = len(out) - 1
	}
	return out[:len(out)-drop]
}

// fitAlphaBeta fits t = α·m + b/β over the send cells.
//
// With two or more distinct (m, b) workload mixes it solves the
// exactly-identified 2×2 system over the extreme mixes' trimmed means —
// a paired contrast, not a joint least squares: β comes from the
// lowest-message baseline workload and α from the *marginal* cost of
// the extra messages the high-message mix carries. A joint fit weights
// all cells equally, so run-to-run drift between the probe runs leaks
// into both parameters at once; the contrast pins β to the baseline
// (so the baseline workload is reproduced exactly) and pushes the
// cross-run noise into α, where it only perturbs the chunk ranking
// rather than every transfer estimate.
//
// With a single mix the system is singular — one workload cannot
// separate per-message from per-byte cost — so α is held at alphaPrior
// and β absorbs the remainder; if the prior's per-message floor already
// exceeds the measured cells (a hardware-network prior against an
// in-process fabric), α is clamped to 0 instead of inventing a negative
// bandwidth.
func fitAlphaBeta(cells []cell, alphaPrior, betaPrior float64) (alpha, beta float64, how string) {
	type group struct {
		m, b float64 // the mix (messages, bytes per cell)
		t    float64 // trimmed mean seconds per cell
	}
	byMix := make(map[[2]float64][]cell)
	for _, c := range cells {
		byMix[[2]float64{c.m, c.b}] = append(byMix[[2]float64{c.m, c.b}], c)
	}
	groups := make([]*group, 0, len(byMix))
	for k, gc := range byMix {
		gc = trimCells(gc)
		t := 0.0
		for _, c := range gc {
			t += c.t
		}
		groups = append(groups, &group{m: k[0], b: k[1], t: t / float64(len(gc))})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].m != groups[j].m {
			return groups[i].m < groups[j].m
		}
		return groups[i].b < groups[j].b
	})
	lo, hi := groups[0], groups[len(groups)-1]

	// maxBeta bounds the fitted bandwidth at 1 TB/s: a 1/β positive only
	// by floating-point residue would otherwise imply a near-infinite β,
	// whose flows underflow the replay clock.
	const maxBeta = 1e12

	if len(groups) >= 2 {
		// Exactly-identified 2×2 solve over the extreme mixes' means.
		det := lo.m*hi.b - hi.m*lo.b
		if math.Abs(det) > 1e-9*(lo.m*hi.b+hi.m*lo.b) {
			alpha = (lo.t*hi.b - hi.t*lo.b) / det
			x := (lo.m*hi.t - hi.m*lo.t) / det
			if alpha >= 0 && x > 1/maxBeta {
				return alpha, 1 / x, "two-workload contrast (α from the marginal messages)"
			}
			// A negative α means the high-message mix ran no slower than
			// the baseline (pipelining won): per-message cost is below
			// the noise floor. Clamp α and fit β from the pooled means.
			if alpha < 0 {
				var sbb, sbt float64
				for _, g := range groups {
					sbb += g.b * g.b
					sbt += g.b * g.t
				}
				if sbb > 0 && sbt > 0 && sbt/sbb > 1/maxBeta {
					return 0, sbb / sbt, "contrast fit, α clamped to 0"
				}
			}
		}
	}

	// Single mix: hold α at the prior, fit 1/β from the remainder.
	alpha = alphaPrior
	trimmed := trimCells(cells)
	var sbb, num float64
	for _, c := range trimmed {
		sbb += c.b * c.b
		num += c.b * (c.t - alpha*c.m)
	}
	if sbb > 0 && num > 0 && num/sbb > 1/maxBeta {
		return alpha, sbb / num, "single-workload fit, α held at prior"
	}
	// The prior's α·m floor exceeds the measured cells (e.g. a hardware
	// prior against an in-process fabric): clamp α to 0 so β can fit.
	var sbt float64
	for _, c := range trimmed {
		sbt += c.b * c.t
	}
	if sbb > 0 && sbt > 0 && sbt/sbb > 1/maxBeta {
		return 0, sbb / sbt, "single-workload fit, α clamped to 0 (prior floor above measured cells)"
	}
	return alphaPrior, betaPrior, "degenerate cells, β held at prior"
}

// spanIters counts the distinct non-negative iterations in a trace.
func spanIters(spans []obs.Span) int {
	seen := make(map[int]bool)
	for _, s := range spans {
		if s.Iter >= 0 {
			seen[s.Iter] = true
		}
	}
	return len(seen)
}

// rawBytesSent returns the raw payload bytes one iteration pushes
// through the wire processor across all workers (what the codec
// actually compressed).
func rawBytesSent(w Workload) float64 {
	switch w.Strategy {
	case "ring", "hierarchical-ring":
		// 2(p−1) block sends per node per iteration.
		return float64(w.Workers) * float64(2*(w.Workers-1)) * float64(w.blockBytes())
	case "switch":
		return float64(w.Workers) * float64(w.ModelBytes)
	default: // worker-aggregator, hierarchical-tree
		return float64(w.Workers) * float64(w.ModelBytes)
	}
}

// fitOverhead sets OverheadSec from the first ring sample: measured
// iteration wall time minus the fitted model's phase prediction.
func (f *Fitted) fitOverhead(samples []Sample) {
	for _, s := range samples {
		if s.Workload.Strategy != "ring" {
			continue
		}
		measured := s.iterSeconds()
		if measured <= 0 {
			continue
		}
		pl := &Planner{Fit: f, Workers: s.Workload.Workers, ModelBytes: s.Workload.ModelBytes, Ratio: s.Workload.Ratio}
		pred := pl.Predict(PlanOption{Strategy: "ring", ChunkFloats: s.Workload.ChunkFloats, Compress: s.Workload.Compress})
		if gap := measured - pred.PredIterSec; gap > 0 {
			f.OverheadSec = gap
		}
		f.Coverage = append(f.Coverage, fmt.Sprintf("overhead: %.3f ms per iteration unmodeled (measured %.3f ms, modeled %.3f ms)",
			f.OverheadSec*1e3, measured*1e3, pred.PredIterSec*1e3))
		return
	}
}

// maxReplayIters bounds how many iterations the calibration replay
// simulates per sample — the phase means converge after a handful.
const maxReplayIters = 6

// calibrateReplay replays every sample's workload through the fitted
// event simulator, diffs measured vs simulated with obs.Calibrate, and
// fills Scale, Residuals and MaxCommRelErr. Samples are offset onto
// disjoint iteration bands so their cells do not collide in the merged
// calibration. Compressed samples are skipped: their measured send
// spans carry inline codec time the replay deliberately does not model.
func (f *Fitted) calibrateReplay(samples []Sample) {
	var measured, sim []obs.Span
	for si, s := range samples {
		if s.Workload.Compress {
			continue
		}
		iters := s.Workload.Iters - s.WarmupIters
		if s.Workload.Iters <= 0 {
			iters = spanIters(s.Spans) - s.WarmupIters
		}
		if iters > maxReplayIters {
			iters = maxReplayIters
		}
		if iters <= 0 {
			continue
		}
		simSpans := f.ReplaySpans(s.Workload, iters)
		if simSpans == nil {
			continue
		}
		// Band-offset this sample's iterations: sample k lives in
		// [k·band, k·band+iters), post-warmup measured iterations mapped
		// onto the replay's 0-based ones.
		const band = 1 << 20
		for _, sp := range s.Spans {
			if sp.Iter < s.WarmupIters || sp.Iter >= s.WarmupIters+iters {
				continue
			}
			sp.Iter += si*band - s.WarmupIters
			measured = append(measured, sp)
		}
		for _, sp := range simSpans {
			sp.Iter += si * band
			sim = append(sim, sp)
		}
	}
	if len(measured) == 0 || len(sim) == 0 {
		return
	}
	cal := obs.CalibrateTrimmed(measured, sim, trimFrac)
	f.Residuals = cal
	for _, pc := range cal.Phases {
		if pc.MeasuredMean > 0 && pc.SimMean > 0 {
			f.Scale[pc.Phase] = pc.MeasuredMean / pc.SimMean
		}
		if pc.Phase == obs.PhaseSend || pc.Phase == obs.PhaseReduce {
			if e := math.Abs(pc.RelErr); e > f.MaxCommRelErr {
				f.MaxCommRelErr = e
			}
		}
	}
}

// ReplaySpans simulates iters iterations of the workload through the
// fitted event simulator and returns the emitted spans on a virtual
// timeline — the dynamic cross-check against a measured trace. Only the
// ring and switch strategies have span-emitting event models; other
// strategies return nil.
func (f *Fitted) ReplaySpans(w Workload, iters int) []obs.Span {
	ep := f.eventParams()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 18)
	rec := obs.NewRecorder(reg, tr)
	var baseNs int64
	for iter := 0; iter < iters; iter++ {
		var dur float64
		switch w.Strategy {
		case "ring":
			dur = replayRing(ep, f, w, rec, iter, baseNs)
		case "switch":
			mem := f.Params.SwitchMemBytes
			if w.ChunkFloats > 0 {
				mem = int64(w.ChunkFloats) * 4
			}
			if mem <= 0 {
				mem = 1 << 20
			}
			rate := f.Params.SwitchSumRate
			if rate <= 0 {
				rate = f.Params.LineRate
			}
			dur = replaySwitch(ep, f, w, float64(mem), 1/rate, rec, iter, baseNs)
		default:
			return nil
		}
		baseNs += int64(dur*1e9) + 1
	}
	spans := tr.Snapshot()
	if w.Strategy == "ring" {
		// Measured ring send spans cover the whole per-step send call —
		// including the per-message handshake the α term models — while
		// the event simulator bills that cost as propagation latency
		// *outside* its send spans. Reconcile the span semantics here so
		// calibration compares like with like: each replayed step span
		// gains α per message it would have carried.
		alphaNs := int64(2 * f.Params.Latency * 1e9 * float64(w.chunksPerBlock()))
		for i := range spans {
			if spans[i].Phase == obs.PhaseSend {
				spans[i].Dur += alphaNs
			}
		}
	}
	return spans
}

// eventParams maps the fitted netsim parameters onto the fluid-flow
// simulator's: per-flow cap β, link capacity, per-flow latency.
func (f *Fitted) eventParams() eventsim.Params {
	return eventsim.Params{
		LineRate:  f.Params.LineRate,
		StreamCap: f.Params.StreamEfficiency * f.Params.LineRate,
		Latency:   f.Params.Latency,
	}
}

// sumDelayPerStep returns the per-step reduction delay that reproduces
// the measured reduce cell under the replay's span structure: the event
// replay emits (p−2) reduce spans per node-iteration while the fitted γ
// was normalized to netsim's (p−1)-share structure.
func (f *Fitted) sumDelayPerStep(w Workload) float64 {
	if f.Params.SumRate <= 0 || w.Workers < 3 {
		if f.Params.SumRate <= 0 {
			return 0
		}
		return float64(w.blockBytes()) / f.Params.SumRate
	}
	cellSec := float64(w.Workers-1) * float64(w.blockBytes()) / f.Params.SumRate
	return cellSec / float64(w.Workers-2)
}

// Seconds formats a duration in seconds for renders.
func secondsStr(s float64) string { return time.Duration(s * 1e9).Round(time.Microsecond).String() }

// RenderFit writes the fitted parameter set, coverage report, per-phase
// scale factors and residual table.
func (f *Fitted) RenderFit(w io.Writer) {
	fmt.Fprintf(w, "fitted model (%d cells):\n", f.Cells)
	fmt.Fprintf(w, "  stream bandwidth β   %10.1f MB/s\n", f.Params.StreamEfficiency*f.Params.LineRate/1e6)
	fmt.Fprintf(w, "  per-message α        %10.1f µs   (netsim latency %.1f µs/hop)\n", 2*f.Params.Latency*1e6, f.Params.Latency*1e6)
	fmt.Fprintf(w, "  sum rate γ           %10.1f MB/s\n", f.Params.SumRate/1e6)
	fmt.Fprintf(w, "  switch combine       %10.1f MB/s\n", f.Params.SwitchSumRate/1e6)
	fmt.Fprintf(w, "  compute/iter         %13s\n", secondsStr(f.ComputeSec))
	if f.CodecRate > 0 {
		fmt.Fprintf(w, "  codec                %10.1f MB/s at %.2fx ratio\n", f.CodecRate/1e6, f.Ratio)
	}
	fmt.Fprintf(w, "  unmodeled overhead   %13s/iter\n", secondsStr(f.OverheadSec))
	fmt.Fprintf(w, "coverage:\n")
	for _, c := range f.Coverage {
		fmt.Fprintf(w, "  - %s\n", c)
	}
	if f.Residuals != nil {
		fmt.Fprintf(w, "residuals (fitted sim replay vs measured, per phase):\n")
		f.Residuals.Render(w)
		fmt.Fprintf(w, "per-phase eventsim scale factors:")
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			if f.Scale[p] != 1 {
				fmt.Fprintf(w, " %s=%.2f", p.String(), f.Scale[p])
			}
		}
		fmt.Fprintf(w, "\nmax |rel err| on communication phases: %.1f%%\n", 100*f.MaxCommRelErr)
	}
}

// ScaleMap returns the non-unit scale factors keyed by phase name (the
// JSON-friendly form of Scale).
func (f *Fitted) ScaleMap() map[string]float64 {
	out := make(map[string]float64)
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if f.Scale[p] != 1 {
			out[p.String()] = f.Scale[p]
		}
	}
	return out
}

// sortPlans orders plans by predicted iteration time, ties broken by
// the simpler configuration (no compression, no chunking first).
func sortPlans(plans []Plan) {
	sort.Slice(plans, func(i, j int) bool {
		if plans[i].PredIterSec != plans[j].PredIterSec {
			return plans[i].PredIterSec < plans[j].PredIterSec
		}
		if plans[i].Compress != plans[j].Compress {
			return !plans[i].Compress
		}
		return plans[i].ChunkFloats < plans[j].ChunkFloats
	})
}
