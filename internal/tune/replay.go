package tune

import (
	"inceptionn/internal/eventsim"
	"inceptionn/internal/obs"
)

// replayRing runs one fitted-ring iteration through the fluid-flow
// simulator, emitting the measured-run span schema, and returns the
// iteration's virtual duration. The flows carry the workload's wire
// bytes (after compression) while the reduction delay reproduces the
// measured reduce cell (see Fitted.sumDelayPerStep).
func replayRing(ep eventsim.Params, f *Fitted, w Workload, rec *obs.Recorder, iter int, baseNs int64) float64 {
	wireBlock := float64(w.traffic(w.blockBytes()).WireBytes)
	return eventsim.RingTraceDelays(ep, w.Workers, wireBlock,
		f.sumDelayPerStep(w), f.ComputeSec, nil, rec, iter, baseNs)
}

// replaySwitch runs one fitted switch all-reduce iteration through the
// fluid-flow simulator (logical switch node id == workers).
func replaySwitch(ep eventsim.Params, f *Fitted, w Workload, chunkBytes, combinePerByte float64, rec *obs.Recorder, iter int, baseNs int64) float64 {
	wireModel := float64(w.traffic(w.ModelBytes).WireBytes)
	return eventsim.SwitchTraceDelays(ep, w.Workers, wireModel, chunkBytes,
		combinePerByte, f.ComputeSec, nil, rec, iter, baseNs)
}

// Validate replays a fresh measured sample (one the fit has not seen)
// through the fitted simulator and returns the per-phase calibration —
// the cross-validation behind the ≤15% communication-phase gate. The
// returned MaxAbsRelErr is computed over the send and reduce phases
// only: recv spans measure synchronization waits (residual slack, not a
// modeled cost) and are reported but not gated.
func (f *Fitted) Validate(s Sample) (*obs.Calibration, float64) {
	iters := s.Workload.Iters - s.WarmupIters
	if s.Workload.Iters <= 0 {
		iters = spanIters(s.Spans) - s.WarmupIters
	}
	if iters <= 0 {
		return nil, 0
	}
	// The replay is deterministic, so a few simulated iterations pin its
	// per-phase means; the measured side keeps every post-warmup
	// iteration — per-phase means don't need matching cell counts, and
	// more measured cells is a tighter estimate of the machine's typical
	// cost.
	simIters := iters
	if simIters > maxReplayIters {
		simIters = maxReplayIters
	}
	sim := f.ReplaySpans(s.Workload, simIters)
	if sim == nil {
		return nil, 0
	}
	var measured []obs.Span
	for _, sp := range s.Spans {
		if sp.Iter >= s.WarmupIters && sp.Iter < s.WarmupIters+iters {
			measured = append(measured, sp)
		}
	}
	cal := obs.CalibrateTrimmed(measured, sim, trimFrac)
	maxErr := 0.0
	for _, pc := range cal.Phases {
		if pc.Phase != obs.PhaseSend && pc.Phase != obs.PhaseReduce {
			continue
		}
		if pc.MeasuredMean > 0 && pc.SimCells > 0 {
			if e := abs(pc.RelErr); e > maxErr {
				maxErr = e
			}
		}
	}
	return cal, maxErr
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// CrossCheck runs the plan's workload through the fitted event
// simulator and returns the predicted iteration seconds on the dynamic
// model (compute + exchange critical path + fitted overhead), or 0 when
// the strategy has no span-emitting event model. The event replay does
// not model intra-step chunk pipelining, so chunked ring plans
// cross-check against their unchunked equivalent.
func (pl *Planner) CrossCheck(opt PlanOption) float64 {
	w := pl.workload(opt)
	f := pl.Fit
	ep := f.eventParams()
	switch opt.Strategy {
	case "ring":
		dur := replayRing(ep, f, w, nil, 0, 0)
		return dur + f.OverheadSec
	case "switch":
		mem := f.Params.SwitchMemBytes
		if opt.ChunkFloats > 0 {
			mem = int64(opt.ChunkFloats) * 4
		}
		if mem <= 0 {
			mem = 1 << 20
		}
		rate := f.Params.SwitchSumRate
		if rate <= 0 {
			rate = f.Params.LineRate
		}
		dur := replaySwitch(ep, f, w, float64(mem), 1/rate, nil, 0, 0)
		return dur + f.OverheadSec
	}
	return 0
}

// workload converts a plan option into the workload it would produce at
// the planner's scale.
func (pl *Planner) workload(opt PlanOption) Workload {
	ratio := 0.0
	if opt.Compress {
		ratio = pl.effRatio()
	}
	return Workload{
		Workers:     pl.Workers,
		ModelBytes:  pl.ModelBytes,
		Strategy:    opt.Strategy,
		ChunkFloats: opt.ChunkFloats,
		Compress:    opt.Compress,
		Ratio:       ratio,
	}
}

// effRatio resolves the compression ratio the planner assumes for
// compressed candidates.
func (pl *Planner) effRatio() float64 {
	if pl.Ratio > 1 {
		return pl.Ratio
	}
	if pl.Fit != nil && pl.Fit.Ratio > 1 {
		return pl.Fit.Ratio
	}
	return DefaultRatio
}

// effCodecRate resolves the codec throughput the planner assumes.
func (pl *Planner) effCodecRate() float64 {
	if pl.Fit != nil && pl.Fit.CodecRate > 0 {
		return pl.Fit.CodecRate
	}
	return DefaultCodecRate
}
