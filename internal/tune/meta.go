package tune

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"

	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
)

// Meta is the auxiliary trace line that makes a run self-describing:
// the workload that produced the spans and — after an auto-tuned run —
// the plan that was applied and the parameters that were fitted. It is
// written as one JSONL line whose "tune_meta" key marks it; obs
// trace readers skip it, tune readers pick it up, so a trace file alone
// is enough to re-fit and re-plan (`inctrace tune run.jsonl`).
type Meta struct {
	// Version is the schema version (currently 1); its JSON key doubles
	// as the line marker.
	Version  int      `json:"tune_meta"`
	Workload Workload `json:"workload"`

	// Chosen and PredIterSec record an auto-tuner decision (absent on
	// plain runs).
	Chosen      *PlanOption `json:"chosen,omitempty"`
	PredIterSec float64     `json:"pred_iter_seconds,omitempty"`
	// Params is the fitted parameter set behind the decision.
	Params        *netsim.Params `json:"fitted_params,omitempty"`
	MaxCommRelErr float64        `json:"max_comm_rel_err,omitempty"`
}

// Append writes the meta as one JSONL line.
func (m Meta) Append(w io.Writer) error {
	if m.Version == 0 {
		m.Version = 1
	}
	return json.NewEncoder(w).Encode(m)
}

// metaMarker identifies a tune meta line without a full JSON parse.
var metaMarker = []byte(`"tune_meta"`)

// ParseTrace reads a JSONL trace stream, returning its spans, trace
// headers, and the first tune meta line if any.
func ParseTrace(r io.Reader) ([]obs.Span, []obs.TraceMeta, *Meta, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, nil, err
	}
	var meta *Meta
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b := sc.Bytes()
		if !bytes.Contains(b, metaMarker) {
			continue
		}
		var m Meta
		if err := json.Unmarshal(b, &m); err == nil && m.Version != 0 {
			meta = &m
			break
		}
	}
	spans, headers, err := obs.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, nil, err
	}
	return spans, headers, meta, nil
}

// ReadTraceFile reads one trace file into a fitting sample. When the
// file carries a tune meta line its workload is used; otherwise the
// fallback workload is attached (pass a zero Workload to require the
// meta — Sample.Workload.Validate will then reject the sample).
func ReadTraceFile(path string, fallback Workload) (Sample, *Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Sample{}, nil, err
	}
	defer f.Close()
	spans, _, meta, err := ParseTrace(f)
	if err != nil {
		return Sample{}, nil, err
	}
	s := Sample{Workload: fallback, Spans: spans}
	if meta != nil {
		s.Workload = meta.Workload
	}
	return s, meta, nil
}
