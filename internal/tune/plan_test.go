package tune

import (
	"strings"
	"testing"

	"inceptionn/internal/netsim"
)

// testFit returns a hand-built fitted model with round numbers.
func testFit() *Fitted {
	f := &Fitted{Params: netsim.Default10GbE()}
	f.Params.Latency = 25e-6
	f.Params.PerPacketTime = 0
	f.Params.SumRate = 4e8
	f.Params.SwitchSumRate = 4e8
	f.ComputeSec = 2e-3
	f.CodecRate = 150e6
	f.Ratio = 3.0
	for p := range f.Scale {
		f.Scale[p] = 1
	}
	return f
}

func TestCandidatesSearchSpace(t *testing.T) {
	pl := &Planner{Fit: testFit(), Workers: 4, ModelBytes: 4 << 20}
	opts := pl.Candidates()
	// Per compression setting: 4 ring chunkings + 1 worker-aggregator +
	// 2 switch chunkings + 2 hierarchical (g=2, tree+ring) = 9.
	if len(opts) != 18 {
		t.Fatalf("candidates = %d, want 18", len(opts))
	}
	seen := make(map[string]bool)
	for _, o := range opts {
		if seen[o.String()] {
			t.Fatalf("duplicate candidate %s", o)
		}
		seen[o.String()] = true
	}
	if !seen["ring/chunk4096/comp"] || !seen["switch/whole/plain"] || !seen["hierarchical-tree/g2/whole/comp"] {
		t.Fatalf("expected candidates missing: %v", seen)
	}

	pl.NoCompress = true
	if got := len(pl.Candidates()); got != 9 {
		t.Fatalf("NoCompress candidates = %d, want 9", got)
	}
}

func TestGroupSizes(t *testing.T) {
	if got := groupSizes(8); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("groupSizes(8) = %v, want [2 4]", got)
	}
	if got := groupSizes(7); got != nil {
		t.Fatalf("groupSizes(7) = %v, want nil (prime)", got)
	}
	if got := groupSizes(4); len(got) != 1 || got[0] != 2 {
		t.Fatalf("groupSizes(4) = %v, want [2]", got)
	}
}

func TestPredictRingMatchesNetsim(t *testing.T) {
	f := testFit()
	pl := &Planner{Fit: f, Workers: 4, ModelBytes: 4 << 20}
	plan := pl.Predict(PlanOption{Strategy: "ring"})
	ex := f.Params.Ring(4, 4<<20, netsim.Plain(netsim.RingBlockBytes(4<<20, 4)))
	want := f.ComputeSec + ex.Transfer + 6*2*f.Params.Latency + ex.Sum
	if e := plan.PredIterSec - want; e > 1e-12 || e < -1e-12 {
		t.Fatalf("ring whole/plain pred = %v, want %v", plan.PredIterSec, want)
	}
	if plan.PredCodecSec != 0 {
		t.Fatalf("plain plan has codec cost %v", plan.PredCodecSec)
	}
}

func TestPredictChunkingTradesAlphaForOverlap(t *testing.T) {
	f := testFit()
	pl := &Planner{Fit: f, Workers: 4, ModelBytes: 4 << 20}
	whole := pl.Predict(PlanOption{Strategy: "ring"})
	chunked := pl.Predict(PlanOption{Strategy: "ring", ChunkFloats: 1 << 14})
	// Chunking pays more α but overlaps the reduction: with γ slow
	// relative to the wire it must win here.
	if chunked.PredIterSec >= whole.PredIterSec {
		t.Fatalf("chunked %v !< whole %v", chunked.PredIterSec, whole.PredIterSec)
	}
	// Absurdly fine chunking must eventually lose to the α bill.
	tiny := pl.Predict(PlanOption{Strategy: "ring", ChunkFloats: 16})
	if tiny.PredIterSec <= chunked.PredIterSec {
		t.Fatalf("16-float chunks %v did not pay for their messages (chunk16384 %v)", tiny.PredIterSec, chunked.PredIterSec)
	}
}

func TestPredictCompressionTradeoff(t *testing.T) {
	f := testFit()
	pl := &Planner{Fit: f, Workers: 4, ModelBytes: 4 << 20}
	// Slow codec on a fast fabric: compression must lose.
	f.CodecRate = 20e6
	if c, p := pl.Predict(PlanOption{Strategy: "ring", Compress: true}), pl.Predict(PlanOption{Strategy: "ring"}); c.PredIterSec <= p.PredIterSec {
		t.Fatalf("slow codec: compressed %v !> plain %v", c.PredIterSec, p.PredIterSec)
	}
	// Fast (NIC-offloaded) codec on a slow link: compression must win.
	f.CodecRate = 100e9
	f.Params.LineRate = 1.25e8 // 1GbE
	if c, p := pl.Predict(PlanOption{Strategy: "ring", Compress: true}), pl.Predict(PlanOption{Strategy: "ring"}); c.PredIterSec >= p.PredIterSec {
		t.Fatalf("fast codec, slow link: compressed %v !< plain %v", c.PredIterSec, p.PredIterSec)
	}
}

func TestPredictInvalidOptions(t *testing.T) {
	pl := &Planner{Fit: testFit(), Workers: 4, ModelBytes: 4 << 20}
	if p := pl.Predict(PlanOption{Strategy: "hierarchical-tree", GroupSize: 3}); p.PredIterSec != inf {
		t.Fatalf("non-divisor group size must predict inf, got %v", p.PredIterSec)
	}
	if p := pl.Predict(PlanOption{Strategy: "carrier-pigeon"}); p.PredIterSec != inf {
		t.Fatalf("unknown strategy must predict inf, got %v", p.PredIterSec)
	}
}

func TestOverlap(t *testing.T) {
	if got := overlap(10, 4, 1); got != 14 {
		t.Fatalf("serial overlap = %v, want 14", got)
	}
	if got := overlap(10, 4, 4); got != 11 {
		t.Fatalf("overlap(10,4,4) = %v, want 11", got)
	}
	if got := overlap(4, 10, 5); got != 10.8 {
		t.Fatalf("overlap(4,10,5) = %v, want 10.8 (cpu side dominates)", got)
	}
}

func TestRankOrderAndCrossCheck(t *testing.T) {
	pl := &Planner{Fit: testFit(), Workers: 4, ModelBytes: 4 << 20}
	plans := pl.Rank(pl.Candidates())
	if len(plans) != 18 {
		t.Fatalf("ranked %d plans, want 18", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].PredIterSec < plans[i-1].PredIterSec {
			t.Fatalf("rank order violated at %d: %v < %v", i, plans[i].PredIterSec, plans[i-1].PredIterSec)
		}
	}
	// The top plans that have an event model must carry a cross-check in
	// the same order of magnitude as the closed-form prediction.
	for i := 0; i < crossCheckTop; i++ {
		p := plans[i]
		if p.Strategy != "ring" && p.Strategy != "switch" {
			continue
		}
		if p.CrossCheckSec <= 0 {
			t.Fatalf("top plan %s has no cross-check", p.PlanOption)
		}
		if p.CrossCheckSec > 10*p.PredIterSec || p.CrossCheckSec < p.PredIterSec/10 {
			t.Fatalf("cross-check %v wildly off prediction %v for %s", p.CrossCheckSec, p.PredIterSec, p.PlanOption)
		}
	}
}

func TestWhatIfScaling(t *testing.T) {
	pl := &Planner{Fit: testFit(), Workers: 4, ModelBytes: 4 << 20}
	rows := pl.WhatIf(nil)
	if len(rows) != len(DefaultWhatIfNodes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(DefaultWhatIfNodes))
	}
	for i, r := range rows {
		if r.Nodes != DefaultWhatIfNodes[i] {
			t.Fatalf("row %d nodes = %d, want %d", i, r.Nodes, DefaultWhatIfNodes[i])
		}
		if r.Best.PredIterSec <= 0 || r.Best.PredIterSec >= inf {
			t.Fatalf("scale %d: best pred %v not finite", r.Nodes, r.Best.PredIterSec)
		}
		if r.RingSec >= inf || r.SwitchSec >= inf {
			t.Fatalf("scale %d: missing per-strategy bests", r.Nodes)
		}
		if r.Best.PredIterSec > r.RingSec || r.Best.PredIterSec > r.SwitchSec {
			t.Fatalf("scale %d: best %v worse than a per-strategy best", r.Nodes, r.Best.PredIterSec)
		}
	}
	// Weak scaling on a flat ring degrades with node count; the ring best
	// at 1024 nodes must be worse than at 8.
	if rows[len(rows)-1].RingSec <= rows[0].RingSec {
		t.Fatalf("flat ring did not degrade with scale: %v at %d vs %v at %d",
			rows[len(rows)-1].RingSec, rows[len(rows)-1].Nodes, rows[0].RingSec, rows[0].Nodes)
	}
}

func TestRenders(t *testing.T) {
	pl := &Planner{Fit: testFit(), Workers: 4, ModelBytes: 4 << 20}
	plans := pl.Rank(pl.Candidates())
	var sb strings.Builder
	RenderPlans(&sb, plans, 5)
	if !strings.Contains(sb.String(), "> ") {
		t.Fatal("RenderPlans missing winner marker")
	}
	sb.Reset()
	RenderWhatIf(&sb, pl.WhatIf([]int{8, 32}))
	if !strings.Contains(sb.String(), "32") {
		t.Fatal("RenderWhatIf missing scale row")
	}
}
