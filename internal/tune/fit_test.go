package tune

import (
	"math"
	"strings"
	"testing"

	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
)

// close10 asserts |got−want|/want <= tol.
func close10(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s = %v, want 0", name, got)
		}
		return
	}
	if e := math.Abs(got-want) / math.Abs(want); e > tol {
		t.Fatalf("%s = %v, want %v (rel err %.3f > %.3f)", name, got, want, e, tol)
	}
}

func TestFitAlphaBetaTwoParam(t *testing.T) {
	// Two distinct (messages, bytes) mixes: the 2×2 system is well
	// conditioned and the noise-free fit recovers α and β exactly.
	const alpha, beta = 50e-6, 1e9
	var cells []cell
	for _, mix := range []struct{ m, b float64 }{{6, 6e6}, {24, 6e6}, {6, 24e6}} {
		for i := 0; i < 4; i++ {
			cells = append(cells, cell{t: alpha*mix.m + mix.b/beta, m: mix.m, b: mix.b})
		}
	}
	a, b, how := fitAlphaBeta(cells, 1e-3, 1e6)
	if how != "two-workload contrast (α from the marginal messages)" {
		t.Fatalf("how = %q", how)
	}
	close10(t, "alpha", a, alpha, 1e-6)
	close10(t, "beta", b, beta, 1e-6)
}

func TestFitAlphaBetaSingleWorkloadHoldsPrior(t *testing.T) {
	// Every cell carries the same (m, b): one workload cannot separate
	// per-message from per-byte cost, so α is held at the prior and β
	// absorbs the remainder exactly.
	const alphaPrior, beta = 40e-6, 2e9
	m, bb := 6.0, 6e6
	tt := alphaPrior*m + bb/beta
	cells := []cell{{t: tt, m: m, b: bb}, {t: tt, m: m, b: bb}}
	a, b, how := fitAlphaBeta(cells, alphaPrior, 1e6)
	if !strings.Contains(how, "held at prior") {
		t.Fatalf("how = %q, want single-workload fallback", how)
	}
	if a != alphaPrior {
		t.Fatalf("alpha = %v, want prior %v", a, alphaPrior)
	}
	close10(t, "beta", b, beta, 1e-6)
}

func TestFitAlphaBetaDegenerate(t *testing.T) {
	// Cells slower than the α·m floor alone would need a negative 1/β;
	// the fit falls back to the β prior rather than inventing one.
	_, b, how := fitAlphaBeta([]cell{{t: 1e-6, m: 1, b: 1e6}}, 1e-3, 7e8)
	if !strings.Contains(how, "β held at prior") {
		t.Fatalf("how = %q, want full fallback", how)
	}
	if b != 7e8 {
		t.Fatalf("beta = %v, want prior", b)
	}
}

// syntheticSample builds a noise-free measured ring trace whose span
// durations follow the fitted model's structure exactly: sends bill the
// workload's wire bytes (after packetization/compression, the same
// traffic model Fit credits the cells with), reduces bill raw block
// bytes.
func syntheticSample(w Workload, alpha, beta, gamma, computeSec float64) Sample {
	workers, iters := w.Workers, w.Iters
	steps := float64(2 * (workers - 1))
	wirePerStep := float64(w.traffic(w.blockBytes()).WireBytes)
	sendSec := steps*alpha*float64(w.chunksPerBlock()) + steps*wirePerStep/beta
	reduceSec := float64(workers-1) * float64(w.blockBytes()) / gamma
	var spans []obs.Span
	for iter := 0; iter < iters; iter++ {
		for node := 0; node < workers; node++ {
			base := int64(iter) * int64(20e6)
			spans = append(spans,
				obs.Span{Node: node, Iter: iter, Phase: obs.PhaseCompute, Start: base, Dur: int64(computeSec * 1e9)},
				obs.Span{Node: node, Iter: iter, Phase: obs.PhaseSend, Start: base, Dur: int64(sendSec * 1e9)},
				obs.Span{Node: node, Iter: iter, Phase: obs.PhaseReduce, Start: base, Dur: int64(reduceSec * 1e9)},
			)
		}
	}
	return Sample{Workload: w, Spans: spans}
}

func TestFitRecoversSyntheticParams(t *testing.T) {
	const (
		alpha      = 60e-6
		beta       = 1.2e9
		gamma      = 4e8
		computeSec = 2e-3
	)
	// Two workloads with different chunk counts give the α-β fit two
	// directions to separate per-message from per-byte cost.
	whole := syntheticSample(Workload{Workers: 4, ModelBytes: 4 << 20, Strategy: "ring", Iters: 3}, alpha, beta, gamma, computeSec)
	chunked := syntheticSample(Workload{Workers: 4, ModelBytes: 4 << 20, Strategy: "ring", ChunkFloats: 1 << 16, Iters: 3}, alpha, beta, gamma, computeSec)
	f, err := Fit([]Sample{whole, chunked}, netsim.Params{})
	if err != nil {
		t.Fatal(err)
	}
	close10(t, "Latency (α/2)", f.Params.Latency, alpha/2, 1e-3)
	close10(t, "stream bandwidth", f.Params.StreamEfficiency*f.Params.LineRate, beta, 1e-3)
	close10(t, "SumRate (γ)", f.Params.SumRate, gamma, 1e-3)
	close10(t, "SwitchSumRate fallback", f.Params.SwitchSumRate, gamma, 1e-3)
	close10(t, "ComputeSec", f.ComputeSec, computeSec, 1e-3)
	if f.Params.PerPacketTime != 0 {
		t.Fatalf("PerPacketTime = %v, want 0 (unobservable)", f.Params.PerPacketTime)
	}
	if f.Cells != 2*3*4*3 {
		t.Fatalf("Cells = %d, want 72", f.Cells)
	}
	if len(f.Coverage) == 0 {
		t.Fatal("no coverage report")
	}
	if f.Residuals == nil {
		t.Fatal("no replay residuals")
	}
	var sb strings.Builder
	f.RenderFit(&sb)
	if !strings.Contains(sb.String(), "coverage:") {
		t.Fatal("RenderFit missing coverage section")
	}
}

func TestFitCodecFromCompressedSample(t *testing.T) {
	const codecRate = 150e6
	plain := syntheticSample(Workload{Workers: 4, ModelBytes: 4 << 20, Strategy: "ring", Iters: 2}, 50e-6, 1e9, 4e8, 1e-3)
	comp := syntheticSample(Workload{Workers: 4, ModelBytes: 4 << 20, Strategy: "ring", Iters: 2, Compress: true, Ratio: 3.2}, 50e-6, 1e9, 4e8, 1e-3)
	// Codec spans ride the transport with iter −1 (they are not part of
	// an iteration's phase cells); total seconds sized to the rate.
	raw := rawBytesSent(comp.Workload) * float64(comp.Workload.Iters)
	comp.Spans = append(comp.Spans,
		obs.Span{Node: 0, Iter: -1, Phase: obs.PhaseCompress, Start: 0, Dur: int64(raw / codecRate * 0.6 * 1e9)},
		obs.Span{Node: 0, Iter: -1, Phase: obs.PhaseDecompress, Start: 0, Dur: int64(raw / codecRate * 0.4 * 1e9)},
	)
	f, err := Fit([]Sample{plain, comp}, netsim.Params{})
	if err != nil {
		t.Fatal(err)
	}
	close10(t, "CodecRate", f.CodecRate, codecRate, 1e-3)
	close10(t, "Ratio", f.Ratio, 3.2, 1e-9)
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, netsim.Params{}); err == nil {
		t.Fatal("Fit(nil) must error")
	}
	bad := Sample{Workload: Workload{Workers: 1, ModelBytes: 1, Strategy: "ring"}}
	if _, err := Fit([]Sample{bad}, netsim.Params{}); err == nil {
		t.Fatal("Fit with invalid workload must error")
	}
	// A switch-only trace has no ring send cells to anchor α-β.
	sw := Sample{Workload: Workload{Workers: 4, ModelBytes: 1 << 20, Strategy: "switch"}}
	if _, err := Fit([]Sample{sw}, netsim.Params{}); err == nil {
		t.Fatal("Fit without ring send cells must error")
	}
}

func TestWorkloadHelpers(t *testing.T) {
	w := Workload{Workers: 4, ModelBytes: 4 << 20, Strategy: "ring"}
	if got := w.blockBytes(); got != 1<<20 {
		t.Fatalf("blockBytes = %d, want %d", got, 1<<20)
	}
	if got := w.chunksPerBlock(); got != 1 {
		t.Fatalf("chunksPerBlock (whole) = %d, want 1", got)
	}
	w.ChunkFloats = 1 << 16
	if got := w.chunksPerBlock(); got != 4 {
		t.Fatalf("chunksPerBlock = %d, want 4", got)
	}
	if w.ratio() != 1 {
		t.Fatal("uncompressed ratio must be 1")
	}
	w.Compress, w.Ratio = true, 3.5
	if w.ratio() != 3.5 {
		t.Fatal("compressed ratio not honoured")
	}
	if err := (Workload{Workers: 4, ModelBytes: 1, Strategy: "nope"}).Validate(); err == nil {
		t.Fatal("unknown strategy must fail validation")
	}
}

func TestValidateCrossValidation(t *testing.T) {
	// Fit on one synthetic trace, validate on a second one drawn from the
	// same ground truth: the replayed sim should track the held-out
	// sample's send/reduce means closely.
	fitS := syntheticSample(Workload{Workers: 4, ModelBytes: 4 << 20, Strategy: "ring", Iters: 3}, 50e-6, 1e9, 4e8, 1e-3)
	f, err := Fit([]Sample{fitS}, netsim.Params{})
	if err != nil {
		t.Fatal(err)
	}
	holdout := syntheticSample(Workload{Workers: 4, ModelBytes: 4 << 20, Strategy: "ring", Iters: 3}, 50e-6, 1e9, 4e8, 1e-3)
	cal, maxErr := f.Validate(holdout)
	if cal == nil {
		t.Fatal("Validate returned no calibration")
	}
	if maxErr > 0.15 {
		t.Fatalf("comm max |rel err| = %.3f on noise-free holdout, want <= 0.15", maxErr)
	}
}
