package tune

import (
	"os"
	"strings"
	"testing"

	"inceptionn/internal/data"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
	"inceptionn/internal/obs"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
)

// raceEnabled is set by race_on_test.go under `go test -race`. The
// race runtime slows execution ~30× and serializes goroutines, which
// changes the machine the probes measure mid-test — the strict timing
// gate is skipped there (the structural assertions still run).
var raceEnabled bool

func testOptions(workers int) train.Options {
	return train.Options{
		Workers:      workers,
		BatchPerNode: 8,
		Schedule:     opt.StepSchedule{Base: 0.02, Factor: 5, Every: 200},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         42,
	}
}

// TestAutoTuneEndToEnd exercises the whole observe→model→tune loop on
// the in-process fabric: probe runs, fit, ranked plans, an applied
// winner, self-describing meta, gauges. Timing-based acceptance gates
// (winner within 10% of brute-force best; comm rel err ≤ 15%) run in
// `make bench10`, which measures on a quiet testbed protocol — here the
// structural contract is asserted, plus the gates when TUNE_STRICT=1
// (set by `make tunetest`).
func TestAutoTuneEndToEnd(t *testing.T) {
	o := testOptions(4)
	o.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
	trainDS, testDS := data.NewDigits(512, 1), data.NewDigits(64, 99)

	res, applied, err := AutoTune(models.NewHDCSmall, trainDS, testDS, o, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit == nil || len(res.Plans) == 0 {
		t.Fatal("AutoTune returned no fit or plans")
	}
	if res.Chosen.PredIterSec <= 0 || res.Chosen.PredIterSec >= inf {
		t.Fatalf("chosen plan pred %v not finite", res.Chosen.PredIterSec)
	}
	if res.ProbeSeconds <= 0 {
		t.Fatal("probe wall time not recorded")
	}
	if res.Workload.Workers != 4 || res.Workload.ModelBytes <= 0 {
		t.Fatalf("probe workload malformed: %+v", res.Workload)
	}
	// The compressed probe must have measured a real ratio (> 1) for the
	// planner's compressed candidates.
	if res.Fit.CodecRate <= 0 || res.Fit.Ratio <= 1 {
		t.Fatalf("compressed probe not fitted: rate=%v ratio=%v", res.Fit.CodecRate, res.Fit.Ratio)
	}

	// The applied options must reflect the chosen plan.
	check := Apply(o, res.Chosen)
	if applied.Algo != check.Algo || applied.ChunkSize != check.ChunkSize ||
		applied.SwitchChunk != check.SwitchChunk || applied.GroupSize != check.GroupSize ||
		applied.Compress != check.Compress {
		t.Fatalf("applied options %+v do not match chosen plan %+v", applied, res.Chosen.PlanOption)
	}

	// The tuned run is self-describing: meta round-trips with the chosen
	// plan, and gauges land on a registry.
	meta := res.MetaFor(res.Workload)
	if meta.Chosen == nil || *meta.Chosen != res.Chosen.PlanOption || meta.Params == nil {
		t.Fatalf("meta incomplete: %+v", meta)
	}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	res.PublishGauges(rec)
	var sb strings.Builder
	obs.WriteProm(&sb, reg.Snapshot())
	for _, want := range []string{"tune_pred_iter_seconds", "tune_fit_sum_rate_bytes_per_s", "tune_strategy_"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("gauge %s not published:\n%s", want, sb.String())
		}
	}

	sb.Reset()
	res.Render(&sb)
	if !strings.Contains(sb.String(), "ranked plans") || !strings.Contains(sb.String(), "what-if") {
		t.Fatal("Render missing sections")
	}

	// Cross-validation on fresh measured runs under the fitted model.
	// Phase means on a loaded CI box wander ±20% between whole runs
	// (scheduler contention scales every µs-granularity channel op in a
	// run together), so the strict gate pools several independent holdout
	// runs into one sample: the pooled trimmed mean measures the
	// machine's typical per-phase cost — the quantity the fit estimates —
	// rather than one run's draw.
	holdoutRun := func() []obs.Span {
		t.Helper()
		vo := o
		vo.Algo = train.Ring
		vo.Processor = nil
		vtr := obs.NewTracer(1 << 17)
		vo.Obs = obs.NewRecorder(obs.NewRegistry(), vtr)
		if _, err := train.Run(models.NewHDCSmall, trainDS, testDS, 24, vo); err != nil {
			t.Fatal(err)
		}
		return vtr.Snapshot()
	}
	validate := func(runs int) float64 {
		t.Helper()
		// Pool runs with each run's warmup iterations stripped, remapped
		// onto one contiguous iteration axis.
		var spans []obs.Span
		for r := 0; r < runs; r++ {
			for _, sp := range holdoutRun() {
				if sp.Iter < 2 {
					continue
				}
				sp.Iter = sp.Iter - 2 + r*22
				spans = append(spans, sp)
			}
		}
		holdout := Sample{
			Workload: Workload{Workers: 4, ModelBytes: res.Workload.ModelBytes, Strategy: "ring", Iters: 22 * runs},
			Spans:    spans,
		}
		cal, maxErr := res.Fit.Validate(holdout)
		if cal == nil {
			t.Fatal("Validate returned no calibration")
		}
		return maxErr
	}

	if os.Getenv("TUNE_STRICT") == "" || raceEnabled {
		maxErr := validate(1)
		t.Logf("holdout comm max |rel err| = %.3f (fit residual %.3f)", maxErr, res.Fit.MaxCommRelErr)
		return
	}
	// Acceptance gate (make tunetest): the fitted model must track the
	// pooled communication phases of independent measured runs within
	// 15%. When the first loop misses, the whole observe→fit→validate
	// loop reruns once from fresh probes — a miss usually means the probe
	// runs sampled an atypical machine state (a background compaction or
	// scheduler burst during the ~1s probe window), and refitting is what
	// a real deployment of the tuner would do.
	maxErr := validate(3)
	t.Logf("pooled holdout comm max |rel err| = %.3f (fit residual %.3f)", maxErr, res.Fit.MaxCommRelErr)
	if maxErr > 0.15 {
		res2, _, err := AutoTune(models.NewHDCSmall, trainDS, testDS, o, AutoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res = res2
		maxErr = validate(3)
		t.Logf("refit pooled holdout comm max |rel err| = %.3f (fit residual %.3f)", maxErr, res.Fit.MaxCommRelErr)
	}
	if maxErr > 0.15 {
		t.Fatalf("pooled holdout comm max |rel err| = %.3f > 0.15", maxErr)
	}
}

// TestAutoTuneNoProcessor checks the degraded loop: with no wire
// processor the probe set is plain-only and compressed candidates are
// excluded from the sweep.
func TestAutoTuneNoProcessor(t *testing.T) {
	o := testOptions(2)
	trainDS, testDS := data.NewDigits(256, 1), data.NewDigits(64, 99)
	res, applied, err := AutoTune(models.NewHDCSmall, trainDS, testDS, o, AutoOptions{ProbeIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Plans {
		if p.Compress {
			t.Fatalf("compressed candidate %s in a processor-less sweep", p.PlanOption)
		}
	}
	if applied.Compress {
		t.Fatal("compression applied without a processor")
	}
	if res.Fit.CodecRate != 0 {
		t.Fatalf("codec fitted without a compressed probe: %v", res.Fit.CodecRate)
	}
}
