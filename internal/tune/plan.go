package tune

import (
	"fmt"
	"io"

	"inceptionn/internal/netsim"
)

// PlanOption is one point of the strategy × chunk × compression search
// space. Strategy names match train.Algorithm.String(): "ring",
// "worker-aggregator", "hierarchical-tree", "hierarchical-ring",
// "switch". ChunkFloats is ring.Options.ChunkSize for the ring-family
// strategies and train.Options.SwitchChunk for the switch.
type PlanOption struct {
	Strategy    string `json:"strategy"`
	ChunkFloats int    `json:"chunk_floats,omitempty"`
	Compress    bool   `json:"compress,omitempty"`
	GroupSize   int    `json:"group_size,omitempty"`
}

// String renders a compact plan label, e.g. "ring/chunk4096/comp".
func (o PlanOption) String() string {
	s := o.Strategy
	if o.GroupSize > 0 {
		s += fmt.Sprintf("/g%d", o.GroupSize)
	}
	if o.ChunkFloats > 0 {
		s += fmt.Sprintf("/chunk%d", o.ChunkFloats)
	} else {
		s += "/whole"
	}
	if o.Compress {
		s += "/comp"
	} else {
		s += "/plain"
	}
	return s
}

// Plan is a ranked candidate: the option plus its predicted timings.
type Plan struct {
	PlanOption
	// PredIterSec is the predicted wall-clock seconds per training
	// iteration (compute + exchange + codec + fitted overhead) — the
	// ranking key.
	PredIterSec float64 `json:"pred_iter_seconds"`
	// PredExchangeSec is the exchange's share (transport + reduction
	// after pipelining overlap).
	PredExchangeSec float64 `json:"pred_exchange_seconds"`
	// PredCodecSec is the codec CPU share before overlap.
	PredCodecSec float64 `json:"pred_codec_seconds,omitempty"`
	// CrossCheckSec is the fluid-flow event simulator's independent
	// prediction for the same plan (0 = strategy has no event model, or
	// the plan was not cross-checked).
	CrossCheckSec float64 `json:"crosscheck_iter_seconds,omitempty"`
	// MeasuredIterSec is the verification run's measured seconds per
	// iteration (0 = the plan was outside the verify band and never
	// measured). See AutoOptions.SkipVerify.
	MeasuredIterSec float64 `json:"measured_iter_seconds,omitempty"`
}

// Planner sweeps plan options through a fitted model at one scale.
type Planner struct {
	Fit        *Fitted
	Workers    int
	ModelBytes int64
	// Ratio overrides the compression ratio assumed for compressed
	// candidates (0 = the fitted ratio, then DefaultRatio).
	Ratio float64
	// NoCompress drops compressed candidates from Candidates() — set
	// when the runner has no wire processor to compress with.
	NoCompress bool
	// SkipCrossCheck disables the event-simulator cross-check in Rank.
	// Set for what-if extrapolation sweeps: the fluid-flow replay's cost
	// grows superlinearly with node count, and at simulated scales the
	// closed-form ranking is the product.
	SkipCrossCheck bool
}

// ringChunkGrid is the ChunkSize sweep for the ring-family strategies
// (floats; 0 = whole-block steps).
var ringChunkGrid = []int{0, 1 << 10, 1 << 12, 1 << 14}

// switchChunkGrid is the SwitchChunk sweep (floats; 0 = whole gradient,
// bounded only by the prior's switch memory).
var switchChunkGrid = []int{0, 1 << 14}

// Candidates enumerates the search space at the planner's scale: every
// strategy the runners implement × its chunk grid × compression on/off,
// with hierarchical group sizes over the divisors of the worker count.
func (pl *Planner) Candidates() []PlanOption {
	comp := []bool{false}
	if !pl.NoCompress {
		comp = append(comp, true)
	}
	var out []PlanOption
	for _, c := range comp {
		for _, chunk := range ringChunkGrid {
			out = append(out, PlanOption{Strategy: "ring", ChunkFloats: chunk, Compress: c})
		}
		out = append(out, PlanOption{Strategy: "worker-aggregator", Compress: c})
		for _, chunk := range switchChunkGrid {
			out = append(out, PlanOption{Strategy: "switch", ChunkFloats: chunk, Compress: c})
		}
		for _, g := range groupSizes(pl.Workers) {
			out = append(out, PlanOption{Strategy: "hierarchical-tree", GroupSize: g, Compress: c})
			out = append(out, PlanOption{Strategy: "hierarchical-ring", GroupSize: g, Compress: c})
		}
	}
	return out
}

// groupSizes returns the usable hierarchical group sizes for p workers:
// proper divisors g with 2 <= g <= p/2 (both levels need >= 2 members).
func groupSizes(p int) []int {
	var out []int
	for g := 2; g <= p/2; g++ {
		if p%g == 0 {
			out = append(out, g)
		}
	}
	return out
}

// Predict runs one plan option through the fitted closed-form model.
//
// The transport/summation structure comes from the fitted
// netsim.Params' exchange models; on top of those the planner accounts
// (a) the per-message cost α of chunked transports, (b) the codec's CPU
// time, and (c) chunk pipelining: with K chunks per step the codec and
// reduction overlap the transport, so a step costs
// max(parts) + (sum−max)/K instead of the serial sum (fill-and-drain).
func (pl *Planner) Predict(opt PlanOption) Plan {
	f := pl.Fit
	p := f.Params
	w := pl.workload(opt)
	traffic := w.traffic
	alpha := 2 * p.Latency
	codecRate := pl.effCodecRate()

	var transport, reduce, codec float64
	var pipeChunks int64 = 1

	switch opt.Strategy {
	case "ring":
		ex := p.Ring(pl.Workers, pl.ModelBytes, traffic(w.blockBytes()))
		steps := float64(2 * (pl.Workers - 1))
		k := w.chunksPerBlock()
		// netsim's Latency term already bills α (=2·Latency) once per
		// step; chunking multiplies the per-message cost by K.
		transport = ex.Transfer + steps*alpha*float64(k)
		reduce = ex.Sum
		if opt.Compress {
			codec = steps * float64(w.blockBytes()) / codecRate
		}
		pipeChunks = k
	case "worker-aggregator":
		// Gradients up are compressed; the weight broadcast down stays
		// raw (the runner's aggregator sends exact weights).
		ex := p.WorkerAggregator(pl.Workers, pl.ModelBytes, traffic(pl.ModelBytes), netsim.Plain(pl.ModelBytes))
		transport = ex.Transfer + ex.Latency
		reduce = ex.Sum
		if opt.Compress {
			codec = float64(pl.ModelBytes) / codecRate
		}
	case "switch":
		ps := p
		if opt.ChunkFloats > 0 {
			ps.SwitchMemBytes = int64(opt.ChunkFloats) * 4
		}
		var fn func(int64) netsim.Traffic
		if opt.Compress {
			r := pl.effRatio()
			fn = func(n int64) netsim.Traffic { return netsim.NICCompressed(n, r) }
		}
		ex := ps.SwitchAllReduce(pl.Workers, pl.ModelBytes, fn)
		transport = ex.Transfer + ex.Latency
		reduce = ex.Sum
		if opt.Compress {
			codec = float64(pl.ModelBytes) / codecRate
		}
		mem := ps.SwitchMemBytes
		if mem <= 0 {
			mem = 1 << 20
		}
		pipeChunks = (pl.ModelBytes + mem - 1) / mem
	case "hierarchical-tree", "hierarchical-ring":
		g := opt.GroupSize
		if g < 2 || pl.Workers%g != 0 {
			return Plan{PlanOption: opt, PredIterSec: inf}
		}
		groups := pl.Workers / g
		tree := opt.Strategy == "hierarchical-tree"
		var leader netsim.Traffic
		if tree {
			leader = traffic(pl.ModelBytes)
		} else {
			leader = traffic(netsim.RingBlockBytes(pl.ModelBytes, groups))
		}
		ex := p.Hierarchical(groups, g, pl.ModelBytes, tree,
			traffic(netsim.RingBlockBytes(pl.ModelBytes, g)), leader, netsim.Plain(pl.ModelBytes))
		transport = ex.Transfer + ex.Latency
		reduce = ex.Sum
		if opt.Compress {
			// Intra-group ring legs plus the leader exchange.
			codec = float64(2*(g-1))*float64(netsim.RingBlockBytes(pl.ModelBytes, g))/codecRate +
				float64(pl.ModelBytes)/codecRate
		}
	default:
		return Plan{PlanOption: opt, PredIterSec: inf}
	}

	exchange := overlap(transport, reduce+codec, pipeChunks)
	return Plan{
		PlanOption:      opt,
		PredIterSec:     f.ComputeSec + exchange + f.OverheadSec,
		PredExchangeSec: exchange,
		PredCodecSec:    codec,
	}
}

const inf = 1e18

// overlap models chunk pipelining: with k chunks in flight the smaller
// of the transport and CPU (reduce+codec) sides hides behind the larger
// except for a 1/k fill-and-drain remainder. k == 1 is fully serial.
func overlap(transport, cpu float64, k int64) float64 {
	if k <= 1 {
		return transport + cpu
	}
	hi, lo := transport, cpu
	if lo > hi {
		hi, lo = lo, hi
	}
	return hi + lo/float64(k)
}

// Rank predicts every option, sorts by predicted iteration time, and
// cross-checks the best crossCheckTop plans on the fluid-flow event
// simulator.
func (pl *Planner) Rank(opts []PlanOption) []Plan {
	plans := make([]Plan, 0, len(opts))
	for _, o := range opts {
		plans = append(plans, pl.Predict(o))
	}
	sortPlans(plans)
	if !pl.SkipCrossCheck && pl.Workers <= crossCheckMaxWorkers {
		for i := 0; i < len(plans) && i < crossCheckTop; i++ {
			plans[i].CrossCheckSec = pl.CrossCheck(plans[i].PlanOption)
		}
	}
	return plans
}

// crossCheckMaxWorkers bounds the dynamic cross-check to testbed
// scales: the fluid-flow simulator's water-filling is superlinear in
// concurrent flows, and at hundreds of nodes a single ring replay would
// dominate the planning time for no decision value.
const crossCheckMaxWorkers = 64

// crossCheckTop is how many top-ranked plans get the dynamic eventsim
// cross-check.
const crossCheckTop = 3

// WhatIf is one row of the scale extrapolation table.
type WhatIf struct {
	Nodes int `json:"nodes"`
	// Best is the winning plan at this scale.
	Best Plan `json:"best"`
	// RingSec / SwitchSec / TreeSec are the per-strategy bests for
	// comparison (hierarchical covers both tree and ring organisations,
	// FireCaffe-style, over the group-size sweep).
	RingSec   float64 `json:"ring_seconds"`
	SwitchSec float64 `json:"switch_seconds"`
	TreeSec   float64 `json:"hierarchical_seconds"`
}

// DefaultWhatIfNodes is the standard extrapolation ladder: from testbed
// scale into the 100s–1000s the paper's co-design argument targets.
var DefaultWhatIfNodes = []int{8, 32, 128, 512, 1024}

// WhatIf re-runs the sweep at simulated scales, assuming weak scaling
// (per-node compute and gradient size fixed — more nodes shard more
// data, the model stays put). For each scale it reports the best plan
// overall and the per-strategy bests, with hierarchical reduction trees
// searched over the divisor group sizes.
func (pl *Planner) WhatIf(nodes []int) []WhatIf {
	if len(nodes) == 0 {
		nodes = DefaultWhatIfNodes
	}
	var out []WhatIf
	for _, n := range nodes {
		if n < 2 {
			continue
		}
		sub := &Planner{Fit: pl.Fit, Workers: n, ModelBytes: pl.ModelBytes, Ratio: pl.Ratio, NoCompress: pl.NoCompress, SkipCrossCheck: true}
		plans := sub.Rank(sub.Candidates())
		row := WhatIf{Nodes: n, Best: plans[0], RingSec: inf, SwitchSec: inf, TreeSec: inf}
		for _, p := range plans {
			switch p.Strategy {
			case "ring":
				if p.PredIterSec < row.RingSec {
					row.RingSec = p.PredIterSec
				}
			case "switch":
				if p.PredIterSec < row.SwitchSec {
					row.SwitchSec = p.PredIterSec
				}
			case "hierarchical-tree", "hierarchical-ring":
				if p.PredIterSec < row.TreeSec {
					row.TreeSec = p.PredIterSec
				}
			}
		}
		if row.TreeSec == inf {
			row.TreeSec = 0 // no valid group size at this scale
		}
		out = append(out, row)
	}
	return out
}

// RenderPlans writes the ranked plan table.
func RenderPlans(w io.Writer, plans []Plan, top int) {
	if top <= 0 || top > len(plans) {
		top = len(plans)
	}
	fmt.Fprintf(w, "%-34s %14s %14s %14s %14s\n", "plan", "pred iter", "exchange", "eventsim", "measured")
	for i := 0; i < top; i++ {
		p := plans[i]
		cc := "-"
		if p.CrossCheckSec > 0 {
			cc = secondsStr(p.CrossCheckSec)
		}
		ms := "-"
		if p.MeasuredIterSec > 0 {
			ms = secondsStr(p.MeasuredIterSec)
		}
		marker := "  "
		if i == 0 {
			marker = "> "
		}
		fmt.Fprintf(w, "%s%-32s %14s %14s %14s %14s\n", marker, p.PlanOption.String(),
			secondsStr(p.PredIterSec), secondsStr(p.PredExchangeSec), cc, ms)
	}
}

// RenderWhatIf writes the scale-extrapolation table.
func RenderWhatIf(w io.Writer, rows []WhatIf) {
	fmt.Fprintf(w, "%-7s %-34s %14s %14s %14s %14s\n",
		"nodes", "best plan", "pred iter", "ring", "switch", "hierarchical")
	for _, r := range rows {
		tree := "-"
		if r.TreeSec > 0 {
			tree = secondsStr(r.TreeSec)
		}
		fmt.Fprintf(w, "%-7d %-34s %14s %14s %14s %14s\n",
			r.Nodes, r.Best.PlanOption.String(), secondsStr(r.Best.PredIterSec),
			secondsStr(r.RingSec), secondsStr(r.SwitchSec), tree)
	}
}
