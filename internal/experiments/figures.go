package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"inceptionn/internal/bitio"
	"inceptionn/internal/compress/lz"
	"inceptionn/internal/compress/szlike"
	"inceptionn/internal/compress/truncate"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
	"inceptionn/internal/nic"
	"inceptionn/internal/stats"
	"inceptionn/internal/train"
	"inceptionn/internal/trainsim"
)

// Fig3 prints the model sizes and the fraction of training time spent in
// communication under the worker-aggregator baseline (paper Fig. 3).
func Fig3(w io.Writer, o Options) error {
	header(w, "Fig. 3a: Size of weights (or gradients) per exchange")
	for _, s := range models.Fig3Models() {
		mb := float64(s.ParamBytes) / (1 << 20)
		fmt.Fprintf(w, "  %-12s %6.0f MB  %s\n", s.Name, mb, barFor(mb, 525, 40))
	}

	header(w, "Fig. 3b: Communication share of training time (WA, 4+1 nodes, 10GbE)")
	cfg := trainsim.Default()
	for _, s := range models.Evaluated() {
		simShare := cfg.CommShare(s)
		paperShare := s.Breakdown.Communicate / s.Breakdown.Total()
		fmt.Fprintf(w, "  %-12s simulated %5.1f%%  paper %5.1f%%  %s\n",
			s.Name, 100*simShare, 100*paperShare, barFor(simShare, 1, 40))
	}
	return nil
}

// Fig5 trains the mini CNN (the AlexNet substitute) and prints gradient
// value histograms at early, middle, and final stages (paper Fig. 5).
func Fig5(w io.Writer, o Options) error {
	trainDS, testDS, opts := imagesTask(o)
	total := o.iters(400)
	at := []int{total / 20, total / 2, total}
	if at[0] < 1 {
		at[0] = 1
	}
	grads, err := collectGradients(models.NewMiniAlexNet, trainDS, testDS, opts, total, at)
	if err != nil {
		return err
	}
	labels := []string{"early", "middle", "final"}
	for i, iter := range at {
		g := grads[iter]
		header(w, fmt.Sprintf("Fig. 5 (%s): gradient distribution at iteration %d", labels[i], iter))
		h := stats.NewHistogram(-1, 1, 21)
		h.ObserveAll(g)
		fmt.Fprint(w, h.String())
		var sum stats.Summary
		sum.ObserveAll(g)
		fmt.Fprintf(w, "  mean %+.2e  std %.2e  min %+.3f  max %+.3f  within(-1,1) %.2f%%\n",
			sum.Mean(), sum.Std(), sum.MinV, sum.MaxV, 100*h.FractionWithin(-0.999, 0.999))
	}
	return nil
}

// Fig7 measures this repository's software codecs on a gradient-shaped
// buffer and prints the simulated total-training-time inflation of running
// them on the hosts (paper Fig. 7).
func Fig7(w io.Writer, o Options) error {
	header(w, "Fig. 7: software compression impact on total training time (WA baseline = 1.0)")

	// Live-measure the Go codecs on 8 MB of gradient-shaped floats.
	rng := rand.New(rand.NewSource(o.Seed))
	n := 2 << 20 // floats
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64() * 0.002)
	}
	raw := make([]byte, 4*n)
	for i, v := range vals {
		u := math.Float32bits(v)
		raw[4*i] = byte(u)
		raw[4*i+1] = byte(u >> 8)
		raw[4*i+2] = byte(u >> 16)
		raw[4*i+3] = byte(u >> 24)
	}
	mb := float64(len(raw)) / (1 << 20)

	measure := func(name string, lossless bool, comp func() float64, ratio float64) trainsim.SoftwareCodec {
		start := time.Now()
		r := comp()
		elapsed := time.Since(start).Seconds()
		if ratio > 0 {
			r = ratio
		}
		c := trainsim.SoftwareCodec{
			Name:           name,
			CompressMBps:   mb / elapsed,
			DecompressMBps: 2 * mb / elapsed, // decompression is ~2x faster across these codecs
			Ratio:          r,
			Lossless:       lossless,
		}
		fmt.Fprintf(w, "  measured %-8s  %7.0f MB/s compress, ratio %.2f\n", name, c.CompressMBps, c.Ratio)
		return c
	}

	snappy := measure("Snappy", true, func() float64 {
		enc := lz.Encode(nil, raw)
		return float64(len(raw)) / float64(len(enc))
	}, 0)
	sz := measure("SZ", false, func() float64 {
		c := szlike.MustNew(math.Ldexp(1, -10), 8)
		return c.Ratio(vals)
	}, 0)
	trunc := measure("16b-T", false, func() float64 {
		c := truncate.MustNew(16)
		bw := bitio.NewWriter(len(raw))
		c.Compress(bw, vals)
		return c.Ratio()
	}, 2)

	fmt.Fprintln(w)
	cfg := trainsim.Default()
	fmt.Fprintf(w, "  %-12s %10s %10s %10s %10s\n", "Model", "Base", "Snappy", "SZ", "16b-T")
	for _, spec := range []models.Spec{models.AlexNet, models.HDC} {
		fmt.Fprintf(w, "  %-12s %9.2fx", spec.Name, 1.0)
		for _, codec := range []trainsim.SoftwareCodec{snappy, sz, trunc} {
			fmt.Fprintf(w, " %9.2fx", cfg.Fig7Factor(spec, codec))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n  (>1.0 = slower than the uncompressed baseline; the paper reports 2-4x)")
	return nil
}

// Fig12 prints the normalized training time of the four systems on the
// four models (paper Fig. 12), split into computation and communication.
func Fig12(w io.Writer, o Options) error {
	header(w, "Fig. 12: training time, normalized to WA (computation + communication)")
	cfg := trainsim.Default()
	fmt.Fprintf(w, "  %-12s %-7s %9s %9s %9s %8s\n",
		"Model", "System", "compute", "comm", "total", "norm")
	for _, spec := range models.Evaluated() {
		base := cfg.IterTime(trainsim.WA, spec).Total()
		for _, sys := range trainsim.Systems() {
			b := cfg.IterTime(sys, spec)
			fmt.Fprintf(w, "  %-12s %-7s %8.4fs %8.4fs %8.4fs %7.3f  %s\n",
				spec.Name, sys, b.Compute, b.Exchange, b.Total(), b.Total()/base,
				barFor(b.Total()/base, 1, 30))
		}
		incRed := 1 - cfg.ExchangeTime(trainsim.INC, spec)/cfg.ExchangeTime(trainsim.WA, spec)
		inccRed := 1 - cfg.ExchangeTime(trainsim.INCC, spec)/cfg.ExchangeTime(trainsim.WA, spec)
		fmt.Fprintf(w, "  %-12s comm reduction: INC %.1f%%, INC+C %.1f%% (paper: 36-58%% and 70.9-80.7%%)\n\n",
			"", 100*incRed, 100*inccRed)
	}
	return nil
}

// Fig13 prints the speedup of the full system over the conventional one
// when both train to the same accuracy (paper Fig. 13).
func Fig13(w io.Writer, o Options) error {
	header(w, "Fig. 13: speedup at equal final accuracy (INC+C vs WA)")
	cfg := trainsim.Default()
	fmt.Fprintf(w, "  %-12s %8s %9s %9s %9s %10s\n",
		"Model", "acc", "epochsWA", "epochsINC", "speedup", "paper")
	paperSpeedup := map[string]string{
		"AlexNet": "3.1x", "HDC": "2.7x", "ResNet-50": "3.0x", "VGG-16": "2.2x",
	}
	for _, spec := range models.Evaluated() {
		s := cfg.SpeedupSameAccuracy(spec)
		fmt.Fprintf(w, "  %-12s %7.1f%% %9d %9d %8.2fx %10s\n",
			spec.Name, 100*spec.Conv.FinalAccuracy,
			spec.Conv.EpochsLossless, spec.Conv.EpochsCompressed, s, paperSpeedup[spec.Name])
	}

	// Real epoch-inflation measurement on the trainable HDC: train lossless
	// and compressed to a target accuracy, compare iteration counts.
	fmt.Fprintf(w, "\n  Measured epoch inflation (HDC on synthetic digits):\n")
	itersBase, itersComp, acc, err := measureEpochInflation(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  lossless reached %.1f%% in %d iters; compressed (2^-10) in %d iters (%.2fx)\n",
		100*acc, itersBase, itersComp, float64(itersComp)/float64(itersBase))

	return timeToAccuracy(w, o)
}

// timeToAccuracy combines real accuracy trajectories (WA vs INC+C on the
// HDC task) with the calibrated per-iteration times, producing the
// wall-clock-vs-accuracy comparison that underlies Fig. 13: the compressed
// ring may need a few more iterations, but each costs a fraction of a WA
// iteration.
func timeToAccuracy(w io.Writer, o Options) error {
	header(w, "Fig. 13 (derived): simulated time to accuracy, HDC task")
	cfg := trainsim.Default()
	waIter := cfg.IterTime(trainsim.WA, models.HDC).Total()
	incIter := cfg.IterTime(trainsim.INCC, models.HDC).Total()

	tds, eds, opts := digitsTask(o)
	total := o.iters(240)
	opts.EvalEvery = total / 8
	opts.Algo = train.WorkerAggregator

	waRes, err := train.Run(buildHDCForScale(o), tds, eds, total, opts)
	if err != nil {
		return err
	}
	opts.Algo = train.Ring
	opts.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
	opts.Compress = true
	incRes, err := train.Run(buildHDCForScale(o), tds, eds, total, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "  %-10s | %-28s | %-28s\n", "", "WA (lossless)", "INC+C (2^-10)")
	fmt.Fprintf(w, "  %-10s | %10s %15s | %10s %15s\n", "eval", "iter", "sim seconds", "iter", "sim seconds")
	for i := range waRes.Evals {
		wa := waRes.Evals[i]
		var incLine string
		if i < len(incRes.Evals) {
			inc := incRes.Evals[i]
			incLine = fmt.Sprintf("%10d %9.3fs %4.1f%%", inc.Iter, float64(inc.Iter)*incIter, 100*inc.Accuracy)
		}
		fmt.Fprintf(w, "  %-10d | %10d %9.3fs %4.1f%% | %s\n",
			i, wa.Iter, float64(wa.Iter)*waIter, 100*wa.Accuracy, incLine)
	}
	fmt.Fprintf(w, "  per-iteration cost: WA %.4fs, INC+C %.4fs (%.1fx cheaper)\n",
		waIter, incIter, waIter/incIter)
	return nil
}

// Fig15 prints the gradient-exchange time versus cluster size for both
// SwitchStrategy compares the in-network switch reduction (NetReduce-style
// per-port combine, arXiv:2009.09736) against the WA and ring exchanges,
// with a Fig. 13/14-style per-phase breakdown: transfer vs summation vs
// propagation on the critical path, per node count. A second table shows
// the combine engine throttled to a tenth of line rate — the regime where
// `inctrace blame` attributes the exchange to the switch itself.
func SwitchStrategy(w io.Writer, o Options) error {
	header(w, "In-network switch aggregation: exchange breakdown vs WA/ring")
	for _, spec := range models.Evaluated() {
		fmt.Fprintf(w, "  %s (%d MB)\n", spec.Name, spec.ParamBytes>>20)
		fmt.Fprintf(w, "    %-6s %-8s %10s %10s %10s %10s\n",
			"nodes", "strategy", "transfer", "sum", "latency", "total")
		for _, nodes := range []int{4, 8, 16} {
			cfg := trainsim.Default()
			cfg.Workers = nodes
			n := spec.ParamBytes
			rows := []struct {
				name string
				ex   netsim.Exchange
			}{
				{"wa", cfg.Net.WorkerAggregator(nodes, n, netsim.Plain(n), netsim.Plain(n))},
				{"ring", cfg.Net.Ring(nodes, n, netsim.Plain(netsim.RingBlockBytes(n, nodes)))},
				{"switch", cfg.Net.SwitchAllReduce(nodes, n, nil)},
			}
			for _, r := range rows {
				fmt.Fprintf(w, "    %-6d %-8s %9.3fs %9.3fs %9.6fs %9.3fs\n",
					nodes, r.name, r.ex.Transfer, r.ex.Sum, r.ex.Latency, r.ex.Total())
			}
		}
		fmt.Fprintln(w)
	}

	header(w, "Throttled combine engine (SwitchSumRate = LineRate/10)")
	spec := models.AlexNet
	fmt.Fprintf(w, "  %s: switch exchange, combine-bound\n", spec.Name)
	fmt.Fprintf(w, "    %-6s %10s %10s %10s\n", "nodes", "transfer", "sum", "total")
	for _, nodes := range []int{4, 8, 16} {
		p := netsim.Default10GbE()
		p.SwitchSumRate = p.LineRate / 10
		ex := p.SwitchAllReduce(nodes, spec.ParamBytes, nil)
		fmt.Fprintf(w, "    %-6d %9.3fs %9.3fs %9.3fs\n", nodes, ex.Transfer, ex.Sum, ex.Total())
	}
	fmt.Fprintln(w, "\n  (blame a throttled run: incbench -simtrace sim.jsonl -sim-strategy switch \\")
	fmt.Fprintln(w, "     -sim-switch-rate 125e6 && inctrace blame -switch-node 4 sim.jsonl)")
	return nil
}

// algorithms (paper Fig. 15), plus the α-β-γ analytic model's prediction.
func Fig15(w io.Writer, o Options) error {
	header(w, "Fig. 15: gradient exchange time vs number of nodes (normalized to 4-node WA)")
	for _, spec := range models.Evaluated() {
		base := 0.0
		fmt.Fprintf(w, "  %s\n", spec.Name)
		fmt.Fprintf(w, "    %-6s %10s %10s %12s %12s\n", "nodes", "WA", "INC", "WA(analytic)", "INC(analytic)")
		for _, nodes := range []int{4, 6, 8} {
			cfg := trainsim.Default()
			cfg.Workers = nodes
			wa := cfg.ExchangeTime(trainsim.WA, spec)
			inc := cfg.ExchangeTime(trainsim.INC, spec)
			if nodes == 4 {
				base = wa
			}
			am := analyticParams()
			fmt.Fprintf(w, "    %-6d %9.3f  %9.3f  %11.3f  %11.3f\n",
				nodes, wa/base, inc/base,
				am.WorkerAggregator(nodes, spec.ParamBytes)/am.WorkerAggregator(4, spec.ParamBytes),
				am.Ring(nodes, spec.ParamBytes)/am.WorkerAggregator(4, spec.ParamBytes))
		}
		fmt.Fprintln(w)
	}
	return nil
}
