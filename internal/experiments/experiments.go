// Package experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the index). Each experiment is
// a function that writes a plain-text report matching the corresponding
// paper artifact: same rows, same series, same comparisons. Absolute
// numbers come from this repository's simulated substrate and synthetic
// datasets; the shapes — who wins, by what factor, where the crossovers
// fall — are the reproduction targets (EXPERIMENTS.md records both).
package experiments

import (
	"fmt"
	"io"
	"sort"

	"inceptionn/internal/data"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
)

// Options control experiment scale.
type Options struct {
	// Quick shrinks training iteration counts so the whole suite runs in
	// a few minutes; Full uses the larger counts recorded in
	// EXPERIMENTS.md.
	Quick bool
	// Seed makes every experiment deterministic.
	Seed int64
}

// DefaultOptions returns quick, deterministic settings.
func DefaultOptions() Options { return Options{Quick: true, Seed: 42} }

// iters scales an iteration budget by the quick/full mode.
func (o Options) iters(full int) int {
	if o.Quick {
		q := full / 4
		if q < 30 {
			q = 30
		}
		return q
	}
	return full
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	Name  string // registry key, e.g. "fig12"
	Title string // paper caption summary
	Run   func(w io.Writer, o Options) error
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig3", "Model sizes and communication-time share (Fig. 3)", Fig3},
		{"fig4", "Floating-point truncation vs training accuracy (Fig. 4)", Fig4},
		{"fig5", "Distribution of gradient values during training (Fig. 5)", Fig5},
		{"fig7", "Software lossless/lossy compression vs training time (Fig. 7)", Fig7},
		{"table1", "Hyperparameters of the benchmarks (Table I)", Table1},
		{"table2", "Training-time breakdown on the 5-node cluster (Table II)", Table2},
		{"fig12", "Training time of WA/WA+C/INC/INC+C (Fig. 12)", Fig12},
		{"fig13", "Speedup at equal accuracy (Fig. 13)", Fig13},
		{"fig14", "Compression ratio and accuracy impact (Fig. 14)", Fig14},
		{"table3", "Bitwidth distribution of compressed gradients (Table III)", Table3},
		{"fig15", "Scalability of the gradient exchange (Fig. 15)", Fig15},
		{"switch", "In-network switch aggregation vs WA/ring (NetReduce-style)", SwitchStrategy},
		{"ablation", "Design-choice ablations (DESIGN.md §5)", Ablations},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the sorted registry keys.
func Names() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// digitsTask returns the standard HDC training task used by the accuracy
// experiments: synthetic digits train/test splits and baseline options.
func digitsTask(o Options) (data.Dataset, data.Dataset, train.Options) {
	trainDS := data.NewDigits(4000, o.Seed)
	testDS := data.NewDigits(600, o.Seed+1000)
	opts := train.Options{
		Workers:      4,
		Algo:         train.Ring,
		BatchPerNode: 16,
		Schedule:     opt.StepSchedule{Base: 0.02, Factor: 5, Every: 200},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         o.Seed,
		EvalSamples:  600,
	}
	return trainDS, testDS, opts
}

// imagesTask returns the mini-CNN training task (the AlexNet substitute).
func imagesTask(o Options) (data.Dataset, data.Dataset, train.Options) {
	trainDS := data.NewImages(2000, o.Seed)
	testDS := data.NewImages(300, o.Seed+1000)
	opts := train.Options{
		Workers:      4,
		Algo:         train.Ring,
		BatchPerNode: 8,
		Schedule:     opt.StepSchedule{Base: 0.01, Factor: 10, Every: 400},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         o.Seed,
		EvalSamples:  300,
	}
	return trainDS, testDS, opts
}

// collectGradients trains briefly and returns sampled local gradient
// vectors at the requested iterations (1-based). The returned map is
// indexed by iteration.
func collectGradients(build train.Builder, trainDS, testDS data.Dataset,
	opts train.Options, totalIters int, at []int) (map[int][]float32, error) {

	want := make(map[int]bool, len(at))
	for _, it := range at {
		want[it] = true
	}
	out := make(map[int][]float32, len(at))
	opts.GradHook = func(iter int, grad []float32) {
		if want[iter+1] {
			out[iter+1] = append([]float32(nil), grad...)
		}
	}
	_, err := train.Run(build, trainDS, testDS, totalIters, opts)
	return out, err
}

// header prints a section header.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}

// barFor renders a proportional ASCII bar.
func barFor(value, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(float64(width) * value / max)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	bar := make([]byte, n)
	for i := range bar {
		bar[i] = '#'
	}
	return string(bar)
}
