package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"inceptionn/internal/bitio"
	"inceptionn/internal/comm"
	"inceptionn/internal/eventsim"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/gradgen"
	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
	"inceptionn/internal/nic"
	"inceptionn/internal/ring"
	"inceptionn/internal/trainsim"
)

// SelfTest runs the repository's cross-component consistency checks and
// prints one PASS/FAIL line per invariant — a built-in self-test in the
// spirit of hardware BIST, exposed as `incbench -selftest`. It returns an
// error if any check fails.
func SelfTest(w io.Writer, o Options) error {
	rng := rand.New(rand.NewSource(o.Seed))
	failures := 0
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "  [%s] %-52s %s\n", status, name, detail)
	}

	// 1. Codec error bound over a large random sweep.
	{
		bound := fpcodec.MustBound(10)
		worst := 0.0
		for i := 0; i < 200000; i++ {
			v := float32(rng.NormFloat64())
			if fpcodec.TagOf(v, bound) == fpcodec.TagNone {
				continue
			}
			if e := math.Abs(float64(fpcodec.Roundtrip(v, bound)) - float64(v)); e > worst {
				worst = e
			}
		}
		check("codec error bound 2^-10", worst <= bound.MaxError(),
			fmt.Sprintf("worst |err| %.3e <= %.3e", worst, bound.MaxError()))
	}

	// 2. Engine model vs reference codec bit-exactness.
	{
		bound := fpcodec.MustBound(8)
		payload := make([]float32, 1000)
		for i := range payload {
			payload[i] = float32(rng.NormFloat64() * 0.01)
		}
		ce := nic.NewCompressionEngine(bound)
		data, bits := ce.CompressPayload(payload)
		bw := bitio.NewWriter(4 * len(payload))
		fpcodec.CompressStream(bw, payload, bound)
		same := bits == bw.Len()
		if same {
			ref := bw.Bytes()
			for i := range ref {
				if data[i] != ref[i] {
					same = false
					break
				}
			}
		}
		check("NIC engine bit-exact vs reference codec", same,
			fmt.Sprintf("%d bits", bits))
	}

	// 3. Fast encoder/decoder agree with the reference.
	{
		bound := fpcodec.MustBound(10)
		payload := make([]float32, 777)
		for i := range payload {
			payload[i] = float32(rng.NormFloat64() * 0.05)
		}
		enc := fpcodec.NewEncoder(bound)
		data, bits := enc.Encode(payload)
		bw := bitio.NewWriter(4 * len(payload))
		fpcodec.CompressStream(bw, payload, bound)
		ok := bits == bw.Len()
		if ok {
			for i, b := range bw.Bytes() {
				if data[i] != b {
					ok = false
					break
				}
			}
		}
		check("fast codec bit-exact vs reference", ok, fmt.Sprintf("%d bits", bits))
	}

	// 4. Ring allreduce exactness and replica identity.
	{
		const n, length = 5, 503
		f := comm.NewFabric(n, nil)
		inputs := make([][]float32, n)
		want := make([]float64, length)
		for i := range inputs {
			inputs[i] = make([]float32, length)
			for j := range inputs[i] {
				inputs[i][j] = float32(rng.Intn(100) - 50)
				want[j] += float64(inputs[i][j])
			}
		}
		out := make([][]float32, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				g := append([]float32(nil), inputs[i]...)
				ring.AllReduce(f.Endpoint(i), g, 0, nil)
				out[i] = g
			}(i)
		}
		wg.Wait()
		ok := true
		for node := range out {
			for j := range want {
				if float64(out[node][j]) != want[j] {
					ok = false
				}
			}
		}
		check("ring allreduce exact sum, identical replicas", ok,
			fmt.Sprintf("%d nodes x %d elements", n, length))
	}

	// 5. Table III closed loop: paper fractions -> generator -> encoder.
	{
		row := trainsim.PaperTableIII["AlexNet"][10]
		g, err := gradgen.FromTableIII(10, row.F2, row.F10, row.F18, row.F34, o.Seed)
		if err != nil {
			return err
		}
		_, ratio := g.Validate(150000)
		want := row.Ratio()
		ok := math.Abs(ratio-want)/want < 0.05
		check("Table III closed loop (AlexNet, 2^-10)", ok,
			fmt.Sprintf("measured %.2fx vs implied %.2fx", ratio, want))
	}

	// 6. Event simulator agrees with the closed-form network model.
	{
		np := netsim.Default10GbE()
		np.PerPacketTime = 0
		ep := eventsim.Params{LineRate: np.LineRate, StreamCap: np.StreamEfficiency * np.LineRate, Latency: np.Latency}
		n := int64(100 << 20)
		ev := eventsim.WorkerAggregatorTime(ep, 4, float64(n), float64(n), 3*float64(n)/np.SumRate)
		cf := np.WorkerAggregator(4, n, netsim.Plain(n), netsim.Plain(n)).Total()
		rel := math.Abs(ev-cf) / cf
		check("event sim vs closed form (WA exchange)", rel < 0.10,
			fmt.Sprintf("%.4fs vs %.4fs (%.1f%%)", ev, cf, 100*rel))
	}

	// 7. Fig. 12 system ordering under the calibrated simulator.
	{
		cfg := trainsim.Default()
		ok := true
		prev := math.Inf(1)
		for _, sys := range trainsim.Systems() {
			total := cfg.IterTime(sys, models.AlexNet).Total()
			if total > prev {
				ok = false
			}
			prev = total
		}
		check("Fig. 12 ordering WA > WA+C > INC > INC+C", ok, "AlexNet")
	}

	if failures > 0 {
		return fmt.Errorf("experiments: %d self-test checks failed", failures)
	}
	fmt.Fprintln(w, "\n  all self-test checks passed")
	return nil
}
