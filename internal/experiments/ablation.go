package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"inceptionn/internal/costmodel"
	"inceptionn/internal/eventsim"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
	"inceptionn/internal/nic"
	"inceptionn/internal/trainsim"
)

// analyticParams returns the α-β-γ constants used alongside the simulator
// in Fig. 15.
func analyticParams() costmodel.Params { return costmodel.Default10GbE() }

// Ablations prints the design-choice studies listed in DESIGN.md §5.
func Ablations(w io.Writer, o Options) error {
	rng := rand.New(rand.NewSource(o.Seed))
	grads := make([]float32, 200000)
	for i := range grads {
		if rng.Intn(10) == 0 {
			grads[i] = float32(rng.NormFloat64() * 0.1)
		} else {
			grads[i] = float32(rng.NormFloat64() * 0.002)
		}
	}

	header(w, "Ablation A: engine burst width (lanes × 32b per cycle @ 100 MHz)")
	fmt.Fprintf(w, "  %-8s %14s %16s\n", "lanes", "input Gb/s", "vs 10GbE line")
	for _, lanes := range []int{4, 8, 16} {
		gbps := float64(lanes) * 32 * nic.ClockHz / 1e9
		verdict := "sustains line rate"
		if gbps < 10 {
			verdict = "THROTTLES the NIC"
		}
		marker := ""
		if lanes == nic.LanesPerBurst {
			marker = "  <- paper design"
		}
		fmt.Fprintf(w, "  %-8d %13.1f  %16s%s\n", lanes, gbps, verdict, marker)
	}

	header(w, "Ablation B: error-bound sweep (ratio vs guaranteed error)")
	fmt.Fprintf(w, "  %-8s %10s %14s %12s\n", "bound", "ratio", "max |error|", "avg bits")
	for e := 4; e <= 14; e += 2 {
		b := fpcodec.MustBound(e)
		var st fpcodec.TagStats
		st.Observe(grads, b)
		fmt.Fprintf(w, "  2^-%-5d %9.2fx %14.2e %12.2f\n",
			e, fpcodec.Ratio(grads, b), b.MaxError(), st.AverageBits())
	}

	header(w, "Ablation C: compression legs (why the ring algorithm multiplies the codec's value)")
	cfg := trainsim.Default()
	spec := models.AlexNet
	n := spec.ParamBytes
	ratio := trainsim.CompressionRatio(spec, cfg.BoundExp)
	wa := cfg.Net.WorkerAggregator(cfg.Workers, n, netsim.Plain(n), netsim.Plain(n)).Total()
	waGradLeg := cfg.Net.WorkerAggregator(cfg.Workers, n, netsim.NICCompressed(n, ratio), netsim.Plain(n)).Total()
	// Hypothetical: compressing the weight leg too (unsafe per Fig. 4).
	waBothLegs := cfg.Net.WorkerAggregator(cfg.Workers, n,
		netsim.NICCompressed(n, ratio), netsim.NICCompressed(n, ratio)).Total()
	ring := cfg.Net.Ring(cfg.Workers, n, netsim.NICCompressed(n/int64(cfg.Workers), ratio)).Total()
	fmt.Fprintf(w, "  WA, no compression:            %8.4fs (1.00)\n", wa)
	fmt.Fprintf(w, "  WA, gradient leg only (legal): %8.4fs (%.2f)\n", waGradLeg, waGradLeg/wa)
	fmt.Fprintf(w, "  WA, both legs (UNSAFE for w):  %8.4fs (%.2f)\n", waBothLegs, waBothLegs/wa)
	fmt.Fprintf(w, "  Ring, both legs are gradients: %8.4fs (%.2f)  <- INCEPTIONN\n", ring, ring/wa)

	header(w, "Ablation D: codec placement (software host vs in-NIC offload)")
	for _, spec := range []models.Spec{models.AlexNet, models.HDC} {
		nicTime := cfg.IterTime(trainsim.INCC, spec).Total()
		// Software placement: the same ratio, but codec CPU time charged on
		// the hosts (sequentially with compute), modeled like Fig. 7.
		soft := cfg.SoftwareCompressedIterTime(spec, trainsim.SoftwareCodec{
			Name: "host-codec", CompressMBps: 400, DecompressMBps: 800, Ratio: ratio,
		}).Total()
		base := cfg.IterTime(trainsim.WA, spec).Total()
		fmt.Fprintf(w, "  %-12s WA %8.4fs | software codec %8.4fs (%.2fx) | in-NIC %8.4fs (%.2fx)\n",
			spec.Name, base, soft, base/soft, nicTime, base/nicTime)
	}

	header(w, "Ablation E: analytic vs simulated scalability (ResNet-50 exchange)")
	am := analyticParams()
	fmt.Fprintf(w, "  %-6s %12s %12s %12s %12s\n", "nodes", "sim WA", "sim INC", "analytic WA", "analytic INC")
	for _, nodes := range []int{4, 8, 16, 32} {
		c := trainsim.Default()
		c.Workers = nodes
		fmt.Fprintf(w, "  %-6d %11.3fs %11.3fs %11.3fs %11.3fs\n",
			nodes,
			c.ExchangeTime(trainsim.WA, models.ResNet50),
			c.ExchangeTime(trainsim.INC, models.ResNet50),
			am.WorkerAggregator(nodes, models.ResNet50.ParamBytes),
			am.Ring(nodes, models.ResNet50.ParamBytes))
	}

	header(w, "Ablation F: Fig. 1 organizations at 16 workers (exchange time, ResNet-50)")
	c16 := trainsim.Default()
	c16.Workers = 16
	flat := c16.ExchangeTime(trainsim.WA, models.ResNet50)
	fmt.Fprintf(w, "  %-44s %9.3fs (1.00)\n", "Fig. 1a: flat worker-aggregator", flat)
	for _, compressed := range []bool{false, true} {
		suffix := ""
		if compressed {
			suffix = " + NIC compression"
		}
		tree := cfg.HierarchicalExchangeTime(models.ResNet50, 4, 4, true, compressed)
		rings := cfg.HierarchicalExchangeTime(models.ResNet50, 4, 4, false, compressed)
		fmt.Fprintf(w, "  %-44s %9.3fs (%.2f)\n",
			"Fig. 1b: rings under an aggregator"+suffix, tree, tree/flat)
		fmt.Fprintf(w, "  %-44s %9.3fs (%.2f)\n",
			"Fig. 1c: rings at every level"+suffix, rings, rings/flat)
	}
	flat16Ring := c16.ExchangeTime(trainsim.INC, models.ResNet50)
	fmt.Fprintf(w, "  %-44s %9.3fs (%.2f)\n",
		"flat 16-node ring (for reference)", flat16Ring, flat16Ring/flat)

	header(w, "Ablation G: straggler sensitivity (one worker delayed by d per send, event sim)")
	ep := eventsim.Params{LineRate: 1.25e9, StreamCap: 0.45 * 1.25e9, Latency: 30e-6}
	nBytes := float64(models.ResNet50.ParamBytes)
	fmt.Fprintf(w, "  %-10s %12s %12s %14s %14s\n", "delay d", "WA", "ring", "WA penalty", "ring penalty")
	waBase := eventsim.WorkerAggregatorTimeDelays(ep, 4, nBytes, nBytes, 0, nil)
	ringBase := eventsim.RingTimeDelays(ep, 4, nBytes/4, 0, nil)
	for _, d := range []float64{0, 0.05, 0.1, 0.2} {
		delays := []float64{0, 0, d, 0}
		wa := eventsim.WorkerAggregatorTimeDelays(ep, 4, nBytes, nBytes, 0, delays)
		rg := eventsim.RingTimeDelays(ep, 4, nBytes/4, 0, delays)
		fmt.Fprintf(w, "  %-10.2f %11.3fs %11.3fs %13.3fs %13.3fs\n",
			d, wa, rg, wa-waBase, rg-ringBase)
	}
	fmt.Fprintln(w, "  (the ring's critical chain crosses the straggler once per phase; the")
	fmt.Fprintln(w, "   aggregator's work-conserving incast absorbs most of the delay)")

	// Guard against silent drift: the ablation gradients must stay in the
	// codec's sweet spot or the numbers above are meaningless.
	var sanity fpcodec.TagStats
	sanity.Observe(grads, fpcodec.MustBound(10))
	if f := sanity.Fraction(fpcodec.TagNone); f > 0.01 {
		return fmt.Errorf("experiments: ablation gradient sample has %.1f%% out-of-range values", 100*f)
	}
	if math.IsNaN(fpcodec.Ratio(grads, fpcodec.MustBound(10))) {
		return fmt.Errorf("experiments: ratio is NaN")
	}
	return nil
}
