package experiments

import (
	"fmt"
	"io"

	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/train"
	"inceptionn/internal/trainsim"
)

// Table1 prints the hyperparameters of the evaluated models (paper
// Table I), straight from the model specs.
func Table1(w io.Writer, o Options) error {
	header(w, "Table I: Hyperparameters of different benchmarks")
	fmt.Fprintf(w, "%-28s %10s %8s %10s %8s %10s\n",
		"Hyperparameter", "AlexNet", "HDC", "ResNet-50", "VGG-16", "")
	specs := models.Evaluated()
	row := func(name string, f func(models.Spec) string) {
		fmt.Fprintf(w, "%-28s", name)
		for _, s := range []models.Spec{specs[0], specs[1], specs[2], specs[3]} {
			fmt.Fprintf(w, " %10s", f(s))
		}
		fmt.Fprintln(w)
	}
	row("Per-node batch size", func(s models.Spec) string { return fmt.Sprintf("%d", s.Hyper.BatchPerNode) })
	row("Learning rate (LR)", func(s models.Spec) string { return fmt.Sprintf("%g", s.Hyper.LR) })
	row("LR reduction", func(s models.Spec) string { return fmt.Sprintf("%g", s.Hyper.LRFactor) })
	row("LR reduction iterations", func(s models.Spec) string { return fmt.Sprintf("%d", s.Hyper.LREvery) })
	row("Momentum", func(s models.Spec) string { return fmt.Sprintf("%g", s.Hyper.Momentum) })
	row("Weight decay", func(s models.Spec) string { return fmt.Sprintf("%g", s.Hyper.WeightDecay) })
	row("Training iterations", func(s models.Spec) string { return fmt.Sprintf("%d", s.Hyper.Iterations) })
	return nil
}

// Table2 prints the per-step training-time breakdown on the five-node
// worker-aggregator cluster (paper Table II): the paper's measured values
// next to this repository's simulated communication time.
func Table2(w io.Writer, o Options) error {
	header(w, "Table II: Time breakdown per 100 iterations, 4 workers + 1 aggregator")
	cfg := trainsim.Default()
	for _, s := range models.Evaluated() {
		b := s.Breakdown
		sim := cfg.IterTime(trainsim.WA, s)
		fmt.Fprintf(w, "%s\n", s)
		rows := []struct {
			name string
			val  float64
		}{
			{"Forward pass", b.Forward},
			{"Backward pass", b.Backward},
			{"GPU copy", b.GPUCopy},
			{"Gradient sum", b.GradSum},
			{"Communicate", b.Communicate},
			{"Update", b.Update},
		}
		for _, r := range rows {
			fmt.Fprintf(w, "  %-16s %8.2fs %6.1f%%\n", r.name, r.val, 100*r.val/b.Total())
		}
		fmt.Fprintf(w, "  %-16s %8.2fs\n", "Total (paper)", b.Total())
		fmt.Fprintf(w, "  %-16s %8.2fs  (exchange %.2fs, share %.1f%%)\n\n",
			"Total (simulated)", 100*sim.Total(), 100*sim.Exchange, 100*cfg.CommShare(s))
	}
	return nil
}

// Table3 prints the bitwidth distribution of compressed gradients (paper
// Table III): the paper's measured fractions next to fractions measured
// on this repository's real gradient streams from HDC training on the
// synthetic digits.
func Table3(w io.Writer, o Options) error {
	header(w, "Table III: Bitwidth distribution of compressed gradients")
	fmt.Fprintf(w, "%-12s %-8s %8s %8s %8s %8s   %s\n",
		"Model", "Bound", "2-bit", "10-bit", "18-bit", "34-bit", "source")

	// Paper-reported rows.
	for _, s := range models.Evaluated() {
		rows := trainsim.PaperTableIII[s.Name]
		for _, e := range []int{10, 8, 6} {
			r := rows[e]
			fmt.Fprintf(w, "%-12s 2^-%-5d %7.1f%% %7.1f%% %7.1f%% %7.1f%%   paper\n",
				s.Name, e, 100*r.F2, 100*r.F10, 100*r.F18, 100*r.F34)
		}
	}

	// Measured rows from a real training run.
	trainDS, testDS, opts := digitsTask(o)
	totalIters := o.iters(240)
	grads, err := collectGradients(buildHDCForScale(o), trainDS, testDS, opts, totalIters,
		[]int{totalIters / 4, totalIters / 2, totalIters})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	for _, e := range []int{10, 8, 6} {
		bound := fpcodec.MustBound(e)
		var st fpcodec.TagStats
		for _, g := range grads {
			st.Observe(g, bound)
		}
		fmt.Fprintf(w, "%-12s 2^-%-5d %7.1f%% %7.1f%% %7.1f%% %7.1f%%   measured (HDC on synthetic digits)\n",
			"HDC", e,
			100*st.Fraction(fpcodec.TagZero), 100*st.Fraction(fpcodec.Tag8),
			100*st.Fraction(fpcodec.Tag16), 100*st.Fraction(fpcodec.TagNone))
	}
	return nil
}

// buildHDCForScale picks the HDC size matching the experiment scale: the
// paper-faithful 500-wide network in full mode, the fast 128-wide variant
// in quick mode.
func buildHDCForScale(o Options) train.Builder {
	if o.Quick {
		return models.NewHDCSmall
	}
	return models.NewHDC
}
