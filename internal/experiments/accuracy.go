package experiments

import (
	"fmt"
	"io"

	"inceptionn/internal/compress/truncate"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/gradgen"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
	"inceptionn/internal/train"
	"inceptionn/internal/trainsim"
)

// Fig4 reproduces the truncation study (paper Fig. 4): train with x LSBs
// of the gradients only, the weights only, or both truncated, and report
// the resulting accuracy. The paper's finding: gradients tolerate
// aggressive truncation; weights do not (especially for the CNN).
func Fig4(w io.Writer, o Options) error {
	header(w, "Fig. 4: truncation of w and/or g vs training accuracy")

	runTask := func(label string, isImages bool) error {
		var opts train.Options
		var build train.Builder
		var iters int
		tds, eds, baseOpts := digitsTask(o)
		if isImages {
			tds, eds, baseOpts = imagesTask(o)
			build = models.NewMiniAlexNet
			iters = o.iters(400)
		} else {
			build = buildHDCForScale(o)
			iters = o.iters(240)
		}
		opts = baseOpts

		configs := []struct {
			name string
			drop int
			onG  bool
			onW  bool
		}{
			{"no truncation", 0, false, false},
			{"16b-T g only", 16, true, false},
			{"16b-T w only", 16, false, true},
			{"16b-T w & g", 16, true, true},
			{"22b-T g only", 22, true, false},
			{"22b-T w only", 22, false, true},
			{"22b-T w & g", 22, true, true},
			{"24b-T g only", 24, true, false},
			{"24b-T w only", 24, false, true},
			{"24b-T w & g", 24, true, true},
		}
		fmt.Fprintf(w, "  %s (%d iterations)\n", label, iters)
		for _, c := range configs {
			oc := opts
			if c.drop > 0 {
				codec := truncate.MustNew(c.drop)
				if c.onG {
					oc.LocalGradTransform = codec.ApplyAll
				}
				if c.onW {
					oc.WeightTransform = codec.ApplyAll
				}
			}
			res, err := train.Run(build, tds, eds, iters, oc)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "    %-16s accuracy %5.1f%%  %s\n",
				c.name, 100*res.FinalAcc, barFor(res.FinalAcc, 1, 30))
		}
		fmt.Fprintln(w)
		return nil
	}

	if err := runTask("HDC (synthetic digits)", false); err != nil {
		return err
	}
	// The CNN task is the paper's AlexNet panel; it is several times more
	// expensive, so quick mode keeps it short via o.iters.
	return runTask("MiniAlexNet (synthetic images; AlexNet substitute)", true)
}

// Fig14 reproduces the compression-ratio and accuracy comparison (paper
// Fig. 14): naive truncation vs the INCEPTIONN codec at three error
// bounds, measured on real gradient streams and real training runs.
func Fig14(w io.Writer, o Options) error {
	header(w, "Fig. 14a: average compression ratio on gradient streams")

	// Paper-derived ratios for the full-size models (via Table III).
	fmt.Fprintf(w, "  %-12s %8s %8s %8s %8s %8s %8s\n",
		"Model", "16b-T", "22b-T", "24b-T", "INC-10", "INC-8", "INC-6")
	for _, spec := range models.Evaluated() {
		fmt.Fprintf(w, "  %-12s %7.1fx %7.1fx %7.1fx", spec.Name, 2.0, 3.2, 4.0)
		for _, e := range []int{10, 8, 6} {
			fmt.Fprintf(w, " %7.1fx", trainsim.CompressionRatio(spec, e))
		}
		fmt.Fprintln(w, "   (paper Table III)")
	}

	// Full-size models, measured end to end: streams synthesized from the
	// paper's Table III class fractions (internal/gradgen) run through the
	// real encoder.
	for _, spec := range models.Evaluated() {
		rows := trainsim.PaperTableIII[spec.Name]
		fmt.Fprintf(w, "  %-12s %7s %7s %7s", spec.Name+"*", "-", "-", "-")
		for _, e := range []int{10, 8, 6} {
			row := rows[e]
			g, err := gradgen.FromTableIII(e, row.F2, row.F10, row.F18, row.F34, o.Seed+int64(e))
			if err != nil {
				return err
			}
			stream := g.Stream(100000)
			fmt.Fprintf(w, " %7.1fx", fpcodec.Ratio(stream, fpcodec.MustBound(e)))
		}
		fmt.Fprintln(w, "   (synthesized from Table III, real encoder)")
	}

	// Measured on real HDC gradients from this repository's training.
	tds, eds, opts := digitsTask(o)
	iters := o.iters(240)
	grads, err := collectGradients(buildHDCForScale(o), tds, eds, opts, iters,
		[]int{iters / 4, iters / 2, iters})
	if err != nil {
		return err
	}
	var all []float32
	for _, g := range grads {
		all = append(all, g...)
	}
	fmt.Fprintf(w, "  %-12s %7.1fx %7.1fx %7.1fx", "HDC(meas)", 2.0, 3.2, 4.0)
	for _, e := range []int{10, 8, 6} {
		fmt.Fprintf(w, " %7.1fx", fpcodec.Ratio(all, fpcodec.MustBound(e)))
	}
	fmt.Fprintln(w, "   (measured)")

	header(w, "Fig. 14b: relative accuracy after training with each scheme (HDC)")
	base, err := train.Run(buildHDCForScale(o), tds, eds, iters, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-12s accuracy %5.1f%% (relative 1.000)\n", "Base", 100*base.FinalAcc)

	report := func(name string, oc train.Options) error {
		res, err := train.Run(buildHDCForScale(o), tds, eds, iters, oc)
		if err != nil {
			return err
		}
		rel := res.FinalAcc / base.FinalAcc
		fmt.Fprintf(w, "  %-12s accuracy %5.1f%% (relative %.3f)  %s\n",
			name, 100*res.FinalAcc, rel, barFor(rel, 1, 30))
		return nil
	}
	for _, drop := range []int{16, 22, 24} {
		oc := opts
		oc.LocalGradTransform = truncate.MustNew(drop).ApplyAll
		if err := report(fmt.Sprintf("%db-T", drop), oc); err != nil {
			return err
		}
	}
	for _, e := range []int{10, 8, 6} {
		oc := opts
		oc.Processor = nic.Processor{Bound: fpcodec.MustBound(e)}
		oc.Compress = true
		if err := report(fmt.Sprintf("INC(2^-%d)", e), oc); err != nil {
			return err
		}
	}
	return nil
}

// measureEpochInflation trains HDC lossless and compressed to the same
// accuracy target and returns the iteration counts (Fig. 13's measured
// counterpart).
func measureEpochInflation(o Options) (itersBase, itersComp int, target float64, err error) {
	tds, eds, opts := digitsTask(o)
	total := o.iters(300)
	opts.EvalEvery = total / 15
	if opts.EvalEvery < 5 {
		opts.EvalEvery = 5
	}

	base, err := train.Run(buildHDCForScale(o), tds, eds, total, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	target = base.FinalAcc * 0.97

	firstReach := func(res train.Result) int {
		for _, p := range res.Evals {
			if p.Accuracy >= target {
				return p.Iter
			}
		}
		return total
	}
	itersBase = firstReach(base)

	opts.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
	opts.Compress = true
	comp, err := train.Run(buildHDCForScale(o), tds, eds, total, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	itersComp = firstReach(comp)
	return itersBase, itersComp, target, nil
}
