package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	want := []string{"fig3", "fig4", "fig5", "fig7", "table1", "table2",
		"fig12", "fig13", "fig14", "table3", "fig15", "switch", "ablation"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, name := range want {
		if reg[i].Name != name {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].Name, name)
		}
		if reg[i].Run == nil || reg[i].Title == "" {
			t.Errorf("registry entry %s incomplete", name)
		}
	}
	if _, ok := Lookup("fig12"); !ok {
		t.Error("Lookup(fig12) failed")
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Error("Lookup(nonexistent) succeeded")
	}
	if len(Names()) != len(want) {
		t.Error("Names() incomplete")
	}
}

func runExperiment(t *testing.T, name string) string {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %s not found", name)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, quickOpts()); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if len(out) < 100 {
		t.Fatalf("%s produced only %d bytes", name, len(out))
	}
	return out
}

func TestFig3Output(t *testing.T) {
	out := runExperiment(t, "fig3")
	for _, want := range []string{"AlexNet", "VGG-16", "525", "communication", "%"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
}

func TestTable1Output(t *testing.T) {
	out := runExperiment(t, "table1")
	for _, want := range []string{"Momentum", "0.9", "320000", "Weight decay"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	out := runExperiment(t, "table2")
	for _, want := range []string{"Forward pass", "Communicate", "148.71", "simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestFig12Output(t *testing.T) {
	out := runExperiment(t, "fig12")
	for _, want := range []string{"WA+C", "INC+C", "comm reduction", "AlexNet", "VGG-16"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig12 output missing %q", want)
		}
	}
}

func TestFig13Output(t *testing.T) {
	out := runExperiment(t, "fig13")
	for _, want := range []string{"speedup", "epochs", "lossless reached"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("fig13 output missing %q", want)
		}
	}
}

func TestFig15Output(t *testing.T) {
	out := runExperiment(t, "fig15")
	for _, want := range []string{"nodes", "analytic", "ResNet-50"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig15 output missing %q", want)
		}
	}
}

func TestFig5Output(t *testing.T) {
	out := runExperiment(t, "fig5")
	for _, want := range []string{"early", "middle", "final", "std"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q", want)
		}
	}
}

func TestFig7Output(t *testing.T) {
	out := runExperiment(t, "fig7")
	for _, want := range []string{"Snappy", "SZ", "16b-T", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q", want)
		}
	}
}

func TestTable3Output(t *testing.T) {
	out := runExperiment(t, "table3")
	for _, want := range []string{"2-bit", "34-bit", "paper", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

func TestSwitchStrategyOutput(t *testing.T) {
	out := runExperiment(t, "switch")
	for _, want := range []string{"switch", "ring", "wa", "AlexNet", "throttled", "-switch-node"} {
		if !strings.Contains(out, want) {
			t.Errorf("switch output missing %q", want)
		}
	}
}

func TestAblationOutput(t *testing.T) {
	out := runExperiment(t, "ablation")
	for _, want := range []string{"burst width", "error-bound sweep", "compression legs", "in-NIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

// Fig4 and Fig14 are the heaviest experiments (many full training runs);
// exercised once each to keep the suite minutes-scale.
func TestFig4Output(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy experiment")
	}
	out := runExperiment(t, "fig4")
	for _, want := range []string{"no truncation", "16b-T g only", "24b-T w & g", "HDC"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestFig14Output(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy experiment")
	}
	out := runExperiment(t, "fig14")
	for _, want := range []string{"compression ratio", "relative", "INC(2^-10)", "22b-T"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig14 output missing %q", want)
		}
	}
}

func TestSelfTestPasses(t *testing.T) {
	var buf bytes.Buffer
	if err := SelfTest(&buf, quickOpts()); err != nil {
		t.Fatalf("self-test failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "all self-test checks passed") {
		t.Error("missing success footer")
	}
	if strings.Contains(buf.String(), "FAIL") {
		t.Errorf("self-test output contains FAIL:\n%s", buf.String())
	}
}
