// Package par provides the shared worker pool behind every parallel hot
// path in this repository: the tensor matmul kernels, the convolution
// batch loops, and the codec stream sharding all fan out through For.
//
// Design constraints, in order:
//
//  1. Determinism. The shard decomposition of For is a pure function of
//     (n, grain, Workers()) — never of scheduling — and every caller
//     writes only its own disjoint index range, so results are
//     bit-identical for any worker count, including 1.
//  2. No deadlock under nesting. A parallel convolution calls a parallel
//     matmul per sample; naive fixed pools deadlock when every worker
//     blocks waiting on shards that only other workers could run. Here a
//     submitter that finds the queue full runs the shard inline, and a
//     waiter helps drain the queue instead of blocking, so some goroutine
//     can always make progress.
//  3. Graceful degradation. On a single-CPU machine (Workers() == 1)
//     every For call runs inline on the caller with zero overhead.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers, when positive, overrides runtime.GOMAXPROCS as the shard
// cap. Tests use it to force the parallel stitching paths on single-CPU
// machines (and to pin the sequential path on many-CPU ones).
var maxWorkers atomic.Int64

// Workers returns the maximum number of shards a For call fans out to.
func Workers() int {
	if n := maxWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetMaxWorkers overrides the shard cap (n <= 0 restores the GOMAXPROCS
// default) and returns the previous override (0 if none was set). It is
// safe for concurrent use, but callers that need a stable cap for a
// region — tests comparing parallel against sequential results — should
// not run concurrently with other SetMaxWorkers callers.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MinOps is the approximate number of scalar operations a shard must
// amortize before goroutine fan-out pays for itself.
const MinOps = 1 << 15

// GrainFor returns the For grain (minimum indices per shard) for loop
// bodies costing roughly opsPerItem scalar operations per index.
func GrainFor(opsPerItem int) int {
	if opsPerItem <= 0 {
		return MinOps
	}
	g := MinOps / opsPerItem
	if g < 1 {
		g = 1
	}
	return g
}

// group tracks one For call's outstanding shards.
type group struct {
	body    func(lo, hi int)
	pending atomic.Int64
	done    chan struct{}
}

func (g *group) run(lo, hi int) {
	g.body(lo, hi)
	if g.pending.Add(-1) == 0 {
		close(g.done)
	}
}

// task is one queued shard.
type task struct {
	lo, hi int
	g      *group
}

var (
	poolOnce sync.Once
	queue    chan task
)

// pool lazily starts the persistent workers (one per CPU; the submitting
// caller itself acts as an extra worker while it waits).
func pool() chan task {
	poolOnce.Do(func() {
		n := runtime.NumCPU()
		queue = make(chan task, 8*n+64)
		for i := 0; i < n; i++ {
			go func() {
				for t := range queue {
					t.g.run(t.lo, t.hi)
				}
			}()
		}
	})
	return queue
}

// For splits [0, n) into at most Workers() contiguous shards of at least
// grain indices each and runs body(lo, hi) over every shard, potentially
// concurrently. It returns only after all shards complete. Bodies must
// confine their writes to their own [lo, hi) output ranges; under that
// contract the combined result is bit-identical for any worker count.
//
// While waiting, the caller executes queued shards (its own or another
// group's), so nested For calls cannot deadlock the pool.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	shards := (n + grain - 1) / grain
	if w := Workers(); shards > w {
		shards = w
	}
	if shards <= 1 {
		body(0, n)
		return
	}
	q := pool()
	g := &group{body: body, done: make(chan struct{})}
	g.pending.Store(int64(shards))
	per, rem := n/shards, n%shards
	lo := 0
	for s := 0; s < shards-1; s++ {
		hi := lo + per
		if s < rem {
			hi++
		}
		select {
		case q <- task{lo: lo, hi: hi, g: g}:
		default:
			// Queue saturated (deep nesting): run inline so the caller
			// always makes progress.
			g.run(lo, hi)
		}
		lo = hi
	}
	g.run(lo, n) // the caller takes the final shard
	for {
		select {
		case <-g.done:
			return
		case t := <-q:
			t.g.run(t.lo, t.hi)
		}
	}
}
