package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs f with the shard cap pinned to n.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetMaxWorkers(n)
	defer SetMaxWorkers(prev)
	f()
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 7, 64, 1001} {
			for _, grain := range []int{1, 3, 100} {
				withWorkers(t, workers, func() {
					hits := make([]int32, n)
					For(n, grain, func(lo, hi int) {
						if lo < 0 || hi > n || lo >= hi {
							t.Errorf("bad shard [%d,%d) for n=%d", lo, hi, n)
							return
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("workers=%d n=%d grain=%d: index %d hit %d times",
								workers, n, grain, i, h)
						}
					}
				})
			}
		}
	}
}

func TestForShardingIsDeterministic(t *testing.T) {
	withWorkers(t, 4, func() {
		shardSet := func() map[[2]int]bool {
			out := make(map[[2]int]bool)
			var mu sync.Mutex
			For(1000, 1, func(lo, hi int) {
				mu.Lock()
				out[[2]int{lo, hi}] = true
				mu.Unlock()
			})
			return out
		}
		a, b := shardSet(), shardSet()
		if len(a) != len(b) {
			t.Fatalf("shard counts differ: %d vs %d", len(a), len(b))
		}
		for s := range a {
			if !b[s] {
				t.Fatalf("shard %v only in first run", s)
			}
		}
	})
}

func TestForGrainLimitsShardCount(t *testing.T) {
	withWorkers(t, 16, func() {
		var shards atomic.Int32
		For(10, 4, func(lo, hi int) {
			shards.Add(1)
			if hi-lo < 3 || hi-lo > 4 {
				t.Errorf("unbalanced shard [%d,%d)", lo, hi)
			}
		})
		// ceil(10/4) = 3 shards at most; grain bounds the fan-out.
		if got := shards.Load(); got > 3 {
			t.Fatalf("%d shards for n=10 grain=4", got)
		}
	})
}

// TestNestedForNoDeadlock exercises the pathological case for fixed
// pools: every outer shard spawns inner parallel work. The helping
// waiter must keep the pool live; a regression here hangs the test.
func TestNestedForNoDeadlock(t *testing.T) {
	withWorkers(t, 8, func() {
		var total atomic.Int64
		For(16, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				For(256, 1, func(ilo, ihi int) {
					For(32, 1, func(jlo, jhi int) {
						total.Add(int64((ihi - ilo) * (jhi - jlo)))
					})
				})
			}
		})
		if got := total.Load(); got != 16*256*32 {
			t.Fatalf("nested total = %d, want %d", got, 16*256*32)
		}
	})
}

func TestSetMaxWorkersRestores(t *testing.T) {
	prev := SetMaxWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetMaxWorkers(3)", Workers())
	}
	SetMaxWorkers(prev)
	if prev == 0 && maxWorkers.Load() != 0 {
		t.Fatal("override not cleared")
	}
}

func TestGrainFor(t *testing.T) {
	if g := GrainFor(0); g != MinOps {
		t.Fatalf("GrainFor(0) = %d", g)
	}
	if g := GrainFor(MinOps * 2); g != 1 {
		t.Fatalf("GrainFor(huge) = %d", g)
	}
	if g := GrainFor(MinOps / 8); g != 8 {
		t.Fatalf("GrainFor(MinOps/8) = %d", g)
	}
}
