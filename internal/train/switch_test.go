package train

import (
	"testing"

	"inceptionn/internal/models"
)

// TestSwitchTrainingBitIdenticalToRing is the tentpole acceptance check at
// the training level: because the switch's combine replays the ring's
// per-block accumulation order, a SwitchReduce run must land on weights
// bit-identical to a Ring run with the same seed and data — chunked or
// not. (The model has ~151k params; a chunk of 3000 keeps the stream
// inside the mod-64 tag window while still slicing ring blocks
// mid-stream at chunk boundaries.)
func TestSwitchTrainingBitIdenticalToRing(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	ringRes, err := Run(models.NewHDCSmall, trainDS, testDS, 20, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{0, 3000} {
		o := digitsOptions()
		o.Algo = SwitchReduce
		o.SwitchChunk = chunk
		swRes, err := Run(models.NewHDCSmall, trainDS, testDS, 20, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(swRes.FinalWeights) != len(ringRes.FinalWeights) {
			t.Fatalf("chunk=%d: weight count %d vs ring %d", chunk, len(swRes.FinalWeights), len(ringRes.FinalWeights))
		}
		for i := range swRes.FinalWeights {
			if swRes.FinalWeights[i] != ringRes.FinalWeights[i] {
				t.Fatalf("chunk=%d: weight %d = %x, ring %x", chunk, i, swRes.FinalWeights[i], ringRes.FinalWeights[i])
			}
		}
	}
}

func TestSwitchTrainingConverges(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Algo = SwitchReduce
	o.SwitchChunk = 4096
	res, err := Run(models.NewHDCSmall, trainDS, testDS, 150, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.9 {
		t.Fatalf("switch training accuracy = %.3f, want > 0.9 (loss %.3f)", res.FinalAcc, res.FinalLoss)
	}
	if res.RawBytes == 0 || res.WireBytes == 0 {
		t.Error("no traffic recorded")
	}
}
