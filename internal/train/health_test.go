package train

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/obs"
	"inceptionn/internal/obs/health"
)

// healthOptions tunes the engine for short test runs: two warmup
// iterations, two strikes to confirm, and a 10ms deviation gate that
// loopback scheduling jitter cannot reach but the injected 25ms faults
// clear with room to spare.
func healthOptions(dir string) health.Options {
	return health.Options{
		Warmup:      2,
		Consecutive: 2,
		MinStepGap:  10 * time.Millisecond,
		BlackboxDir: dir,
	}
}

// TestHealthStragglerOpensOneIncident is the PR's acceptance run: the
// same injected-straggler TCP ring as TestBlameFindsInjectedStraggler,
// but judged online — the streaming engine must open exactly one
// incident, name the straggler and its compute phase, and leave behind a
// black-box dump whose replay through the critical-path attribution
// (what `inctrace incidents -replay` runs) blames the same node.
func TestHealthStragglerOpensOneIncident(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	tracer := obs.NewTracer(1 << 15)
	o.Obs = obs.NewRecorder(obs.NewRegistry(), tracer)
	o.StepTimeout = 30 * time.Second
	const slow = 2
	// 60ms, not blame_test's 25ms: the dump replay judges only the
	// flight recorder's window around the incident (the run's earliest,
	// noisiest iterations), and under -race scheduler noise reaches tens
	// of ms — the injection must dwarf it inside that short window too.
	o.Straggler = map[int]time.Duration{slow: 60 * time.Millisecond}

	dir := t.TempDir()
	e := health.New(o.Obs, healthOptions(dir))
	o.Health = e

	if _, err := RunRingTCP(models.NewHDCSmall, trainDS, testDS, 20, o, fpcodec.MustBound(10)); err != nil {
		t.Fatal(err)
	}
	e.Close()

	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want exactly 1: %+v", len(incs), incs)
	}
	inc := incs[0]
	if inc.Detector != "straggler" || inc.Node != slow {
		t.Fatalf("incident = %s on node %d, want straggler on node %d (%+v)", inc.Detector, inc.Node, slow, inc)
	}
	if inc.Phase != obs.PhaseCompute {
		t.Errorf("incident phase = %s, want compute (the injected delay sleeps inside the compute span)", inc.Phase)
	}
	if inc.ClosedNs != 0 {
		t.Errorf("incident closed at %d despite the straggler never recovering", inc.ClosedNs)
	}
	if inc.Blackbox == "" {
		t.Fatal("incident carries no black-box dump path")
	}

	// The dump replays through the stock trace reader and blames the
	// injected culprit with ≥90% of attributed iterations.
	f, err := os.Open(inc.Blackbox)
	if err != nil {
		t.Fatal(err)
	}
	spans, metas, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || len(spans) == 0 {
		t.Fatalf("dump replay: %d metas, %d spans", len(metas), len(spans))
	}
	r := obs.AttributeCriticalPath(spans, 2*time.Millisecond)
	if node, share := r.Gating(); node != slow || share < 0.9 {
		t.Fatalf("dump replay blames node %d share %.2f, want node %d ≥ 0.90", node, share, slow)
	}
}

// TestHealthSwitchStallOpensFallbackIncident: a switch that dies
// silently mid-multicast (no transport self-report, detection via the
// step-deadline stall grading) must surface as exactly one critical
// fallback incident naming the switch, with a dump whose replay also
// gates on the switch. (A partitioned worker uplink is deliberately NOT
// used here: post-fallback that worker stays genuinely degraded and the
// straggler detector correctly opens a second incident for it.)
func TestHealthSwitchStallOpensFallbackIncident(t *testing.T) {
	trainDS, testDS := digitsData()
	o := healOptions()
	tracer := obs.NewTracer(1 << 15)
	o.Obs = obs.NewRecorder(obs.NewRegistry(), tracer)
	swID := o.Workers
	// Dying after 10 down-frames kills the switch partway through
	// iteration 2's multicast — the workers see silence, not an error.
	o.Chaos = &fault.Config{Seed: 5, CrashAfter: map[int]uint64{swID: 10}}

	dir := t.TempDir()
	ho := healthOptions(dir)
	// The incident under test is pushed (NotifyFallback), not inferred
	// from latency — so gate the latency detectors far above scheduling
	// noise: with the whole suite saturating the host, the post-fallback
	// ring's first iterations can show transient >10ms recv-wait
	// inversions that would (correctly, but flakily) page.
	ho.MinStepGap = 100 * time.Millisecond
	e := health.New(o.Obs, ho)
	o.Health = e

	res, err := Run(models.NewHDCSmall, trainDS, testDS, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1 (cause %q)", res.Fallbacks, res.FallbackCause)
	}
	e.Close()

	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want exactly 1: %+v", len(incs), incs)
	}
	inc := incs[0]
	if inc.Detector != "fallback" || inc.Node != swID {
		t.Fatalf("incident = %s on node %d, want fallback on the switch (%d): %+v", inc.Detector, inc.Node, swID, inc)
	}
	if inc.Phase != obs.PhaseFallback || inc.Severity != health.SevCritical {
		t.Errorf("incident phase/severity = %s/%s, want fallback/critical", inc.Phase, inc.Severity)
	}
	if inc.ClosedNs != inc.OpenedNs {
		t.Errorf("fallback should be a point incident, got open %d close %d", inc.OpenedNs, inc.ClosedNs)
	}
	if inc.Blackbox == "" {
		t.Fatal("incident carries no black-box dump path")
	}

	d, err := health.ReadDumpFile(inc.Blackbox)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) == 0 {
		t.Fatal("dump carries no pre-incident spans")
	}
	// The fallback span overrides gating, so the replay names the switch.
	r := obs.AttributeCriticalPath(d.Spans, 2*time.Millisecond)
	if r.GatingCount[swID] < 1 {
		t.Errorf("dump replay never blames the switch: %v", r.GatingCount)
	}
}

// TestHealthCleanRunOpensNoIncidents: the same ring over a clean fabric
// must stay silent — zero incidents, zero dumps, a healthy status.
func TestHealthCleanRunOpensNoIncidents(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Obs = obs.NewRecorder(obs.NewRegistry(), obs.NewTracer(1<<15))
	o.StepTimeout = 30 * time.Second

	dir := t.TempDir()
	ho := healthOptions(dir)
	// Same latency-detector headroom as the stall test: the guard is
	// about false positives from the engine's counter/rate/point paths,
	// not about paging on suite-load scheduling jitter.
	ho.MinStepGap = 100 * time.Millisecond
	e := health.New(o.Obs, ho)
	e.Start(50 * time.Millisecond) // exercise the background poller too
	o.Health = e

	if _, err := RunRingTCP(models.NewHDCSmall, trainDS, testDS, 12, o, fpcodec.MustBound(10)); err != nil {
		t.Fatal(err)
	}
	e.Close()

	if incs := e.Incidents(); len(incs) != 0 {
		t.Fatalf("clean run opened %d incident(s): %+v", len(incs), incs)
	}
	if !e.Healthy() {
		t.Error("clean run reports unhealthy")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("clean run wrote black-box dumps: %v", files)
	}
}

// TestHealthSwitchTCPFallbackTraceMetaAligns pins the trace-header
// contract on the socket path: a RunSwitchTCP run that trips the ring
// fallback must still write a trace whose trace_meta line carries a real
// epoch, so the collector aligns it without a clock handshake — and the
// engine attached to the same run must report the fallback.
func TestHealthSwitchTCPFallbackTraceMetaAligns(t *testing.T) {
	trainDS, testDS := digitsData()
	o := healOptions()
	o.StepTimeout = 5 * time.Second
	tracer := obs.NewTracer(1 << 15)
	o.Obs = obs.NewRecorder(obs.NewRegistry(), tracer)
	o.Chaos = &fault.Config{Seed: 11, CrashAfter: map[int]uint64{o.Workers: 10}}

	// Default detector options except the latency gate, widened so
	// suite-load jitter on the post-fallback ring cannot add a second
	// (transient, self-closing) incident next to the fallback.
	e := health.New(o.Obs, health.Options{MinStepGap: 100 * time.Millisecond})
	o.Health = e

	res, err := RunSwitchTCP(models.NewHDCSmall, trainDS, testDS, 8, o, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1 (cause %q)", res.Fallbacks, res.FallbackCause)
	}
	e.Close()
	if incs := e.Incidents(); len(incs) != 1 || incs[0].Detector != "fallback" || incs[0].Node != o.Workers {
		t.Fatalf("TCP fallback incidents = %+v, want one fallback naming the switch", incs)
	}

	path := filepath.Join(t.TempDir(), "switch_tcp.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spans, metas, err := func() ([]obs.Span, []obs.TraceMeta, error) {
		r, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer r.Close()
		return obs.ReadTrace(r)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].Version != 1 || metas[0].EpochUnixNs == 0 {
		t.Fatalf("trace_meta = %+v, want version 1 with a nonzero epoch", metas)
	}
	sawFallback := false
	for _, s := range spans {
		if s.Phase == obs.PhaseFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Error("TCP fallback path recorded no fallback span")
	}

	c := obs.NewCollector()
	if err := c.AddFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sources) != 1 || !m.Sources[0].Aligned {
		t.Fatalf("collector sources = %+v, want the trace aligned on its meta epoch", m.Sources)
	}
	if len(m.Spans) != len(spans) {
		t.Fatalf("merged %d spans, trace held %d", len(m.Spans), len(spans))
	}
}
