package train

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"inceptionn/internal/models"
)

// TestRingStallSurfacesAsError is the regression test for the
// silent-crash bug: a stalled worker used to panic the whole process from
// inside a goroutine (unrecoverable). With the Ctx exchange path, the
// neighbour's step deadline expires, siblings are cancelled, and Run
// returns the causal error.
func TestRingStallSurfacesAsError(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Workers = 3
	o.StepTimeout = 500 * time.Millisecond

	var calls atomic.Int64
	o.LocalGradTransform = func([]float32) {
		// Every worker shares this hook; exactly one call — one worker at
		// one iteration — stalls for far longer than the step deadline,
		// simulating a wedged node.
		if calls.Add(1) == 5 {
			time.Sleep(3 * time.Second)
		}
	}

	done := make(chan struct{})
	var res Result
	var err error
	go func() {
		defer close(done)
		res, err = Run(models.NewHDCSmall, trainDS, testDS, 50, o)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run hung instead of failing fast")
	}
	if err == nil {
		t.Fatalf("stalled worker did not surface an error (res=%+v)", res)
	}
	t.Logf("got expected error: %v", err)
}

// TestRingChunkedTrainingBitIdentical runs the same ring training with and
// without the pipelined chunked exchange and requires bit-identical final
// weights — chunking must be purely a scheduling change.
func TestRingChunkedTrainingBitIdentical(t *testing.T) {
	trainDS, testDS := digitsData()

	run := func(chunk int) []float32 {
		o := digitsOptions()
		o.ChunkSize = chunk
		res, err := Run(models.NewHDCSmall, trainDS, testDS, 25, o)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		return res.FinalWeights
	}

	want := run(0)
	for _, chunk := range []int{100, 4096} {
		got := run(chunk)
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d weights, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("chunk=%d: weight %d diverged: %g vs %g", chunk, i, got[i], want[i])
			}
		}
	}
}
