package train

import (
	"testing"
	"time"

	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/obs"
)

// TestBlameFindsInjectedStraggler is the PR's acceptance run: a 4-node
// TCP ring with one artificially delayed node must have the critical-path
// attribution point at that node in at least 90% of attributed
// iterations.
func TestBlameFindsInjectedStraggler(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 15)
	o.Obs = obs.NewRecorder(reg, tracer)
	o.StepTimeout = 30 * time.Second
	const slow = 2
	// 25ms per iteration dwarfs the loopback ring's natural jitter (GC
	// pauses and scheduler noise reach a few ms on a shared runner).
	o.Straggler = map[int]time.Duration{slow: 25 * time.Millisecond}

	if _, err := RunRingTCP(models.NewHDCSmall, trainDS, testDS, 20, o, fpcodec.MustBound(10)); err != nil {
		t.Fatal(err)
	}

	// 2ms balance threshold: scheduling jitter stays below it, the
	// injected 25ms does not.
	r := obs.AttributeCriticalPath(tracer.Snapshot(), 2*time.Millisecond)
	if len(r.Nodes) != o.Workers {
		t.Fatalf("attribution covers nodes %v, want %d nodes", r.Nodes, o.Workers)
	}
	if r.Attributed == 0 {
		t.Fatal("no iterations attributed despite a 5ms/iter straggler")
	}
	node, share := r.Gating()
	if node != slow || share < 0.9 {
		t.Fatalf("gating node %d with share %.2f, want node %d with ≥0.90 (counts: %v)",
			node, share, slow, r.GatingCount)
	}
	// The blame matrix must charge the straggler's right neighbour's
	// excess wait to the straggler itself (its direct upstream).
	pos := map[int]int{}
	for i, n := range r.Nodes {
		pos[n] = i
	}
	right := (slow + 1) % o.Workers
	if r.Blame[pos[right]][pos[slow]] <= 0 {
		t.Fatalf("node %d shows no blamed wait on straggler %d: %v", right, slow, r.Blame)
	}
}
