// Elastic training over real sockets: the RunElastic recovery machinery
// (eviction, epoch-scoped rendezvous, ≤1-iteration replay, durable
// checkpoints) running on the tcpfabric data plane with membership
// carried over the TCP control channel — plus the grow half of the
// autoscale loop. When Options.Join is set, a worker evicted by the
// failure detector is restarted: it loads the newest valid checkpoint,
// rejoins through the coordinator's epoch sequence, and is spliced back
// into the ring with its state synchronized bit-exactly from a survivor.
package train

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inceptionn/internal/data"
	"inceptionn/internal/elastic"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/obs"
	"inceptionn/internal/tcpfabric"
)

// tcpElastic is the mutable shared state of one RunElasticTCP invocation
// beyond what elasticRun carries: the per-id control clients (replaced
// across worker generations), the rejoin bookkeeping, and the run
// outcome accumulators.
type tcpElastic struct {
	run     *elasticRun
	o       Options
	build   Builder
	trainDS data.Dataset
	cluster *tcpfabric.Cluster
	coord   *elastic.Coordinator
	srv     *elastic.CtrlServer
	inj     *fault.Injector

	partitionAfter time.Duration
	ctrlSeqs       []atomic.Uint64 // per-id chaos sequence, across client generations
	obsJoinRuns    *obs.Counter

	wg sync.WaitGroup

	mu          sync.Mutex
	clients     []*elastic.Client
	rejoining   []bool
	genCancel   []context.CancelFunc // cancels the id's current worker generation
	genDone     []chan struct{}      // closed when that generation has fully exited
	finishing   bool
	interrupted bool
	errs        []error
}

// RunElasticTCP trains like RunElastic but over loopback TCP sockets:
// gradients cross tcpfabric (compressed by its NIC engine model when
// o.Compress is set — Options.Processor is ignored, bound selects the
// engines' error bound), and membership runs over the control channel
// listening on o.CoordAddr. o.Chaos faults both planes: data-plane
// faults through the fabric's injector and control-plane faults through
// links addressed to elastic.CtrlPeer. With o.Join, evicted workers are
// revived and rejoin the ring (see tcpElastic.rejoin).
func RunElasticTCP(build Builder, trainDS, testDS data.Dataset, iters int, o Options, bound fpcodec.Bound) (Result, error) {
	ck, err := prepareElastic(build, iters, &o)
	if err != nil {
		return Result{}, err
	}

	copts := tcpfabric.ClusterOptions{Compress: o.Compress, Bound: bound, Obs: o.Obs}
	var inj *fault.Injector
	if o.Chaos != nil {
		inj = fault.NewInjector(o.Workers, *o.Chaos)
		copts.Chaos = inj
	}
	cluster, err := tcpfabric.NewClusterWithOptions(o.Workers, copts)
	if err != nil {
		return Result{}, err
	}
	defer cluster.Close()

	coord := elastic.NewCoordinator(o.Workers, elastic.Config{SuspectAfter: o.SuspectAfter, Obs: o.Obs})
	defer coord.Close()
	addr := o.CoordAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := elastic.ServeCtrl(addr, coord)
	if err != nil {
		return Result{}, err
	}
	defer srv.Close()

	var finalize func([]float32)
	if o.Compress {
		finalize = func(b []float32) {
			for i, v := range b {
				b[i] = fpcodec.Roundtrip(v, bound)
			}
		}
	}
	// The client-side partition threshold tracks the server-side suspect
	// threshold: a worker that cannot reach the coordinator halts on
	// roughly the same clock that would evict it, so neither side lingers
	// on a view the other has abandoned.
	partitionAfter := 2 * time.Second
	if o.SuspectAfter > 0 {
		partitionAfter = 2 * o.SuspectAfter
	}

	r := &elasticRun{
		o: o, iters: iters, testDS: testDS,
		finalize:  finalize,
		transport: func(id int) (elastic.Transport, func()) { return cluster.Node(id), nil },
		computeNs: make([]int64, o.Workers),
		commNs:    make([]int64, o.Workers),
		replays:   o.Obs.Counter("elastic_replays"),
		ckptHist:  o.Obs.Histogram("checkpoint_write_seconds"),
		evals:     make(map[int]EvalPoint),
		weights:   make(map[int][]float32),
		final:     make(map[int][2]float64),
	}
	t := &tcpElastic{
		run: r, o: o, build: build, trainDS: trainDS,
		cluster: cluster, coord: coord, srv: srv, inj: inj,
		partitionAfter: partitionAfter,
		ctrlSeqs:       make([]atomic.Uint64, o.Workers),
		obsJoinRuns:    o.Obs.Counter("elastic_join_workers"),
		clients:        make([]*elastic.Client, o.Workers),
		rejoining:      make([]bool, o.Workers),
		genCancel:      make([]context.CancelFunc, o.Workers),
		genDone:        make([]chan struct{}, o.Workers),
	}
	r.member = t.member
	if ck != nil {
		r.startIter = ck.NextIter
		for id := 0; id < o.Workers; id++ {
			if !ck.contains(id) {
				coord.ReportDead(id, fmt.Errorf("train: node %d was dead at checkpoint (epoch %d)", id, ck.Epoch))
			}
		}
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	defer r.cancel()

	// A node's transport anomalies (exhausted retransmits, stream desync)
	// are soft evidence for the failure detector, not a run abort: in an
	// elastic run the usual cause is a dead peer, and the membership
	// protocol — not the fabric — decides what that means.
	for id := 0; id < o.Workers; id++ {
		go func(id int, errCh <-chan error) {
			for {
				select {
				case err := <-errCh:
					coord.ReportAnomaly(id, err)
				case <-r.ctx.Done():
					return
				}
			}
		}(id, cluster.Node(id).Errors())
	}

	view := coord.View()
	for _, id := range view.Members {
		cl, err := t.dial(id)
		if err != nil {
			return Result{}, fmt.Errorf("train: worker %d control dial: %w", id, err)
		}
		t.setClient(id, cl)
		// Establish the heartbeat baseline before the workers spin up:
		// model construction can outlast the staleness limit, and a node
		// must not be declared dead before it ever got to live.
		cl.Beat(id)
	}
	defer t.closeClients()

	if o.Join {
		go t.janitor()
	}
	for _, id := range view.Members {
		t.wg.Add(1)
		go func(id int) {
			defer t.wg.Done()
			t.finish(id, t.runWorker(id, ck, false))
		}(id)
	}
	// Two-phase wait: a rejoin in flight holds the WaitGroup, but one that
	// slips in between the first Wait returning and the finishing flag
	// being set is caught by the second Wait (rejoin checks the flag under
	// the same lock).
	t.wg.Wait()
	t.mu.Lock()
	t.finishing = true
	t.mu.Unlock()
	t.wg.Wait()

	t.mu.Lock()
	hard := append([]error(nil), t.errs...)
	interrupted := t.interrupted
	t.mu.Unlock()
	if err := firstError(hard); err != nil {
		return Result{}, err
	}

	var res Result
	r.mu.Lock()
	iterKeys := make([]int, 0, len(r.evals))
	for it := range r.evals {
		iterKeys = append(iterKeys, it)
	}
	sort.Ints(iterKeys)
	for _, it := range iterKeys {
		res.Evals = append(res.Evals, r.evals[it])
	}
	lead := -1
	for id := range r.weights {
		if lead < 0 || id < lead {
			lead = id
		}
	}
	if lead < 0 {
		r.mu.Unlock()
		var causes []string
		for id := 0; id < o.Workers; id++ {
			if c := coord.DeathCause(id); c != nil {
				causes = append(causes, fmt.Sprintf("node %d: %v", id, c))
			}
		}
		detail := "no death evidence recorded"
		if len(causes) > 0 {
			detail = strings.Join(causes, "; ")
		}
		return Result{}, fmt.Errorf("train: no member completed the run (%s)", detail)
	}
	res.FinalWeights = r.weights[lead]
	if fl, ok := r.final[lead]; ok {
		res.FinalAcc, res.FinalLoss = fl[0], fl[1]
	}
	r.mu.Unlock()
	for id := 0; id < o.Workers; id++ {
		res.WireBytes += cluster.Node(id).SentBytes()
	}
	if !o.Compress {
		res.RawBytes = res.WireBytes // raw path: every payload byte hits the wire as-is
	}
	res.ComputeSeconds = nsSeconds(r.computeNs)
	res.CommSeconds = nsSeconds(r.commNs)
	if interrupted {
		return res, ErrInterrupted
	}
	return res, nil
}

// member hands a worker its current control client. Generations of the
// same id (crash, then rejoin) swap the slot under the lock.
func (t *tcpElastic) member(id int) elastic.Membership {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clients[id]
}

func (t *tcpElastic) setClient(id int, cl *elastic.Client) {
	t.mu.Lock()
	if old := t.clients[id]; old != nil {
		old.Close()
	}
	t.clients[id] = cl
	t.mu.Unlock()
}

func (t *tcpElastic) closeClients() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, cl := range t.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

func (t *tcpElastic) dial(id int) (*elastic.Client, error) {
	return elastic.DialCtrl(t.srv.Addr(), id, elastic.CtrlOptions{
		PartitionAfter: t.partitionAfter,
		Chaos:          t.inj,
		Seq:            &t.ctrlSeqs[id],
	})
}

// runWorker runs one worker generation with a background heartbeat.
// The training loop beats once per iteration, but a worker parked in a
// blocked exchange (its peer just died) goes silent for as long as the
// failure detector takes to evict the peer — exactly long enough for
// its own staleness to race the peer's, and a healthy-but-blocked
// survivor must never lose that race. Beating from a goroutine makes
// the heartbeat mean process liveness, which is the right reading here:
// data-plane hangs are bounded by StepTimeout, and control-plane
// partitions still silence the beats (they are dropped on the floor),
// so both real failure modes keep their detection paths.
func (t *tcpElastic) runWorker(id int, ck *Checkpoint, joining bool) error {
	// Each generation gets its own context under the run's: a rejoin for
	// the same id cancels it (and waits for the exit) before re-admitting
	// the node, so a superseded generation parked in a data-plane receive
	// can never consume a frame meant for its replacement — the streams
	// are per-link FIFOs, and one stolen frame desyncs the whole ring.
	gctx, gcancel := context.WithCancel(t.run.ctx)
	done := make(chan struct{})
	t.mu.Lock()
	t.genCancel[id], t.genDone[id] = gcancel, done
	t.mu.Unlock()
	defer close(done)
	defer gcancel()

	if t.o.SuspectAfter > 0 {
		every := t.o.SuspectAfter / 4
		if every < time.Millisecond {
			every = time.Millisecond
		}
		go func() {
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if m := t.member(id); m != nil {
						m.Beat(id)
					}
				case <-gctx.Done():
					return
				}
			}
		}()
	}
	err := t.run.worker(gctx, id, t.build, t.trainDS, ck, joining)
	if gctx.Err() != nil && t.run.ctx.Err() == nil {
		return errWorkerDone // superseded by a newer generation
	}
	return err
}

// finish folds one worker generation's outcome into the run result.
func (t *tcpElastic) finish(id int, err error) {
	if err == nil || errors.Is(err, errWorkerDone) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if errors.Is(err, ErrInterrupted) {
		t.interrupted = true
		return
	}
	t.errs = append(t.errs, err)
	t.run.cancel() // a real fault: unblock the siblings
}

// janitor watches the coordinator's epoch sequence and starts a rejoin
// for every member the failure detector evicts (graceful departures have
// no death cause and are left alone). It observes the same serialized
// event stream the workers do, so a join it triggers can never race past
// the eviction that motivated it.
func (t *tcpElastic) janitor() {
	known := t.coord.View()
	for {
		v, _, err := t.coord.WaitEvent(t.run.ctx, known.Epoch)
		if err != nil {
			return // run over or coordinator closed
		}
		for _, id := range known.Members {
			if !v.Contains(id) && t.coord.DeathCause(id) != nil {
				t.rejoin(id)
			}
		}
		known = v
	}
}

// rejoin starts a replacement worker for an evicted id (at most one at a
// time per id, and none once the run is finishing).
func (t *tcpElastic) rejoin(id int) {
	t.mu.Lock()
	if t.rejoining[id] || t.finishing {
		t.mu.Unlock()
		return
	}
	t.rejoining[id] = true
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		defer func() {
			t.mu.Lock()
			t.rejoining[id] = false
			t.mu.Unlock()
		}()
		t.finish(id, t.rejoinWorker(id))
	}()
}

// rejoinWorker models the failed process restarting on the same host:
// revive its transport, load the newest valid checkpoint for a warm
// start, re-admit the id through the coordinator's epoch sequence
// (retrying while a partition window is still open), and run a joining
// worker that synchronizes exact state at the rendezvous. Returns
// errWorkerDone if the run ends before the node gets back in.
func (t *tcpElastic) rejoinWorker(id int) error {
	// Tear down the previous generation first, before the coordinator can
	// re-admit the id: once Join succeeds, survivors start emitting
	// join-epoch frames toward this node, and a leftover blocked receive
	// from the old generation would swallow one of them (see runWorker).
	t.mu.Lock()
	gcancel, done := t.genCancel[id], t.genDone[id]
	t.mu.Unlock()
	if gcancel != nil {
		gcancel()
	}
	if done != nil {
		select {
		case <-done:
		case <-t.run.ctx.Done():
			return errWorkerDone
		}
	}
	if t.inj != nil {
		t.inj.Revive(id)
	}
	var ck *Checkpoint
	if t.o.CheckpointDir != "" {
		if loaded, _, err := LoadLatestCheckpoint(t.o.CheckpointDir); err == nil && loaded.Universe == t.o.Workers {
			ck = loaded
		}
	}
	var cl *elastic.Client
	for cl == nil {
		if t.run.ctx.Err() != nil {
			return errWorkerDone
		}
		c, err := t.dial(id)
		if err == nil {
			if _, jerr := c.Join(id); jerr == nil {
				cl = c
				break
			}
			c.Close()
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-t.run.ctx.Done():
			return errWorkerDone
		}
	}
	t.setClient(id, cl)
	t.obsJoinRuns.Add(1)
	return t.runWorker(id, ck, true)
}
