package train

import (
	"errors"
	"strings"
	"testing"
	"time"

	"inceptionn/internal/fault"
	"inceptionn/internal/models"
	"inceptionn/internal/obs"
)

// healOptions is the shared base: 4 workers + the switch at node 4,
// whole-gradient chunks (one up/down frame per worker per iteration, so
// chaos frame schedules are easy to aim), and a step deadline for stall
// detection.
func healOptions() Options {
	o := digitsOptions()
	o.Algo = SwitchReduce
	o.SwitchFallback = true
	o.StepTimeout = 2 * time.Second
	o.EvalEvery = 4
	return o
}

// ringReference runs the fault-free plain ring training the self-healed
// run must match bit for bit.
func ringReference(t *testing.T, iters int) Result {
	t.Helper()
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.EvalEvery = 4
	res, err := Run(models.NewHDCSmall, trainDS, testDS, iters, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertBitIdentical(t *testing.T, got, want Result) {
	t.Helper()
	if len(got.FinalWeights) != len(want.FinalWeights) {
		t.Fatalf("weight count %d, want %d", len(got.FinalWeights), len(want.FinalWeights))
	}
	for i := range got.FinalWeights {
		if got.FinalWeights[i] != want.FinalWeights[i] {
			t.Fatalf("weight %d = %x, ring reference %x", i, got.FinalWeights[i], want.FinalWeights[i])
		}
	}
	if len(got.Evals) != len(want.Evals) {
		t.Fatalf("evals %v, want %v", got.Evals, want.Evals)
	}
	for i := range got.Evals {
		if got.Evals[i] != want.Evals[i] {
			t.Fatalf("eval %d = %+v, ring reference %+v", i, got.Evals[i], want.Evals[i])
		}
	}
}

// TestSwitchFallbackBitExactOnSwitchCrash is the PR's acceptance run: a
// 4-node switch training whose switch dies mid-multicast must detect the
// failure, fall back to the ring collective mid-run, and finish with
// weights bit-identical to an uninterrupted ring run — while the trace
// names the dead switch, not an innocent worker.
func TestSwitchFallbackBitExactOnSwitchCrash(t *testing.T) {
	const iters = 10
	ref := ringReference(t, iters)

	trainDS, testDS := digitsData()
	o := healOptions()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 15)
	o.Obs = obs.NewRecorder(reg, tracer)
	swID := o.Workers
	// One down-frame per worker per iteration: dying after 10 sends kills
	// the switch partway through iteration 2's multicast, so some workers
	// hold the combined gradient and some do not — maximum replay skew.
	o.Chaos = &fault.Config{Seed: 5, CrashAfter: map[int]uint64{swID: 10}}

	res, err := Run(models.NewHDCSmall, trainDS, testDS, iters, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1 (cause %q)", res.Fallbacks, res.FallbackCause)
	}
	if res.FallbackCause == "" || !strings.Contains(res.FallbackCause, "switch") {
		t.Errorf("fallback cause should name the switch: %q", res.FallbackCause)
	}
	if max := 2 * o.StepTimeout.Seconds(); res.FallbackDetectSeconds > max {
		t.Errorf("detection latency %.3fs exceeds 2×StepTimeout (%.1fs)", res.FallbackDetectSeconds, max)
	}
	assertBitIdentical(t, res, ref)

	// Observability: the fallback is a first-class event — counted,
	// spanned against the dead switch, and the critical-path attribution
	// blames the switch for the detection stall instead of a worker.
	if c := reg.Counter("collective_fallbacks").Value(); c != 1 {
		t.Errorf("collective_fallbacks = %d, want 1", c)
	}
	spans := tracer.Snapshot()
	sawFallback := false
	for _, s := range spans {
		if s.Phase == obs.PhaseFallback {
			sawFallback = true
			if s.Node != swID {
				t.Errorf("fallback span charged to node %d, want the switch (%d)", s.Node, swID)
			}
		}
	}
	if !sawFallback {
		t.Error("no fallback span recorded")
	}
	blame := obs.AttributeCriticalPath(spans, 2*time.Millisecond)
	if blame.GatingCount[swID] < 1 {
		t.Errorf("critical-path attribution never blames the switch: %v", blame.GatingCount)
	}
}

// TestSwitchFallbackOnStalledUplink partitions one worker's uplink
// mid-run: no transport self-report reaches the switch or the other
// workers, so detection must come from the step-deadline stall grading.
func TestSwitchFallbackOnStalledUplink(t *testing.T) {
	const iters = 8
	ref := ringReference(t, iters)

	trainDS, testDS := digitsData()
	o := healOptions()
	o.StepTimeout = time.Second
	swID := o.Workers
	// One up-frame per iteration on link 1→switch: blackholing from frame
	// 2 hangs iteration 2 with every worker mid-protocol.
	o.Chaos = &fault.Config{Seed: 6, Links: map[fault.Link]fault.LinkFaults{
		{Src: 1, Dst: swID}: fault.Partition(2),
	}}

	res, err := Run(models.NewHDCSmall, trainDS, testDS, iters, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1 (cause %q)", res.Fallbacks, res.FallbackCause)
	}
	if max := 2 * o.StepTimeout.Seconds(); res.FallbackDetectSeconds > max {
		t.Errorf("detection latency %.3fs exceeds 2×StepTimeout (%.1fs)", res.FallbackDetectSeconds, max)
	}
	assertBitIdentical(t, res, ref)
}

// TestSwitchFallbackArmedButUnused: with fallback armed and no fault the
// run must behave exactly like a plain switch run — same bits as the
// ring, zero fallbacks, and the completion drain must not deadlock.
func TestSwitchFallbackArmedButUnused(t *testing.T) {
	const iters = 8
	ref := ringReference(t, iters)
	trainDS, testDS := digitsData()
	o := healOptions()
	res, err := Run(models.NewHDCSmall, trainDS, testDS, iters, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 0 || res.FallbackCause != "" {
		t.Fatalf("spurious fallback: %d (%q)", res.Fallbacks, res.FallbackCause)
	}
	assertBitIdentical(t, res, ref)
}

// TestSwitchCrashFailsClosedWithoutFallback pins the opt-in: the same
// switch kill without SwitchFallback must fail the run, not heal it.
func TestSwitchCrashFailsClosedWithoutFallback(t *testing.T) {
	trainDS, testDS := digitsData()
	o := healOptions()
	o.SwitchFallback = false
	o.StepTimeout = 500 * time.Millisecond
	o.Chaos = &fault.Config{Seed: 5, CrashAfter: map[int]uint64{o.Workers: 10}}
	res, err := Run(models.NewHDCSmall, trainDS, testDS, 10, o)
	if err == nil {
		t.Fatalf("run healed itself without SwitchFallback (fallbacks=%d)", res.Fallbacks)
	}
}

// TestSwitchFallbackRequiresStepTimeout: stall detection needs a
// deadline, so arming the fallback without one is a configuration error.
func TestSwitchFallbackRequiresStepTimeout(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Algo = SwitchReduce
	o.SwitchFallback = true
	if _, err := Run(models.NewHDCSmall, trainDS, testDS, 2, o); err == nil || !strings.Contains(err.Error(), "StepTimeout") {
		t.Fatalf("missing StepTimeout accepted: %v", err)
	}
}

// TestSwitchWorkerCrashFailsClosed: only the switch is expendable. A
// worker casualty must fail the run (the surviving workers may attempt a
// fallback first, but the ring cannot complete without the dead member's
// shard) and surface the crash as the causal error.
func TestSwitchWorkerCrashFailsClosed(t *testing.T) {
	trainDS, testDS := digitsData()
	o := healOptions()
	o.StepTimeout = time.Second
	o.Chaos = &fault.Config{Seed: 7, CrashAfter: map[int]uint64{1: 3}}
	_, err := Run(models.NewHDCSmall, trainDS, testDS, 10, o)
	if err == nil {
		t.Fatal("run with a dead worker reported success")
	}
	if !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("causal error should be the worker crash, got: %v", err)
	}
}
