package train

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"inceptionn/internal/comm"
	"inceptionn/internal/data"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/mpi"
	"inceptionn/internal/tcpfabric"
)

// RunSwitchTCP trains with the in-network switch collective over genuine
// loopback TCP sockets: node o.Workers is the switch's reduction unit,
// every gradient byte really crosses a socket, compressed by the NIC
// engine model when o.Compress is set (Options.Processor is ignored —
// the TCP fabric embeds its own engines; bound selects their error
// bound).
//
// o.StepTimeout bounds each protocol step, o.Chaos injects deterministic
// transport faults, and o.SwitchFallback makes the run survive the
// switch node's death by falling back to the ring collective mid-run,
// bit-exact with an uninterrupted ring run (see switchheal.go).
func RunSwitchTCP(build Builder, trainDS, testDS data.Dataset, iters int, o Options, bound fpcodec.Bound) (Result, error) {
	if o.Workers < 1 {
		return Result{}, fmt.Errorf("train: %d workers", o.Workers)
	}
	if o.BatchPerNode < 1 {
		return Result{}, fmt.Errorf("train: batch per node %d", o.BatchPerNode)
	}
	if o.EvalSamples == 0 {
		o.EvalSamples = 256
	}
	if o.SwitchFallback && o.StepTimeout <= 0 {
		return Result{}, fmt.Errorf("train: SwitchFallback requires StepTimeout > 0 (stall detection needs a deadline)")
	}
	copts := tcpfabric.ClusterOptions{Compress: o.Compress, Bound: bound, Obs: o.Obs}
	if o.Chaos != nil {
		copts.Chaos = fault.NewInjector(o.Workers+1, *o.Chaos)
	}
	cluster, err := tcpfabric.NewClusterWithOptions(o.Workers+1, copts)
	if err != nil {
		return Result{}, err
	}
	defer cluster.Close()

	// Replica-identity finalize under lossy compression: the same codec
	// the fabric's engines apply.
	var finalize func([]float32)
	if o.Compress {
		finalize = func(b []float32) {
			for i, v := range b {
				b[i] = fpcodec.Roundtrip(v, bound)
			}
		}
	}

	r := newSwitchRun(build, trainDS, testDS, iters, o, finalize)
	defer r.cancel()

	// Watch every node's anomaly channel. Before the fallback engages,
	// all traffic is switch-path traffic, so a hard anomaly (exhausted
	// retries, torn frame, stream desync) is direct evidence against the
	// switch path and trips the gate instead of failing the run; after
	// the fallback — or without one armed — anomalies abort the run
	// exactly as in RunRingTCP.
	var fabricMu sync.Mutex
	var fabricErr error
	for id := 0; id <= o.Workers; id++ {
		go func(errCh <-chan error) {
			select {
			case err := <-errCh:
				if r.gate != nil && !r.gate.isTripped() {
					if class, cause := mpi.GradeSwitchFault(err); class.Hard() {
						r.gate.trip(-1, class, "fabric anomaly: "+cause, 0)
						return
					}
				}
				fabricMu.Lock()
				if fabricErr == nil {
					fabricErr = err
				}
				fabricMu.Unlock()
				r.cancel()
			case <-r.ctx.Done():
			}
		}(cluster.Node(id).Errors())
	}

	res, runErr := r.execute(func(id int) (comm.Peer, func()) {
		return cluster.Node(id), nil
	})
	fabricMu.Lock()
	if fabricErr != nil && (r.gate == nil || !r.gate.isTripped()) &&
		(runErr == nil || errors.Is(runErr, context.Canceled)) {
		runErr = fabricErr
	}
	fabricMu.Unlock()
	if runErr != nil {
		return Result{}, runErr
	}

	for id := 0; id <= o.Workers; id++ {
		res.WireBytes += cluster.Node(id).SentBytes()
	}
	// Raw bytes, analytically: a switch iteration ships the model up and
	// down once per worker; a ring iteration ships 2(N−1)/N of it per
	// worker. A fallback splits the run at the trip iteration (the replay
	// iteration counts once more on the ring side).
	modelBytes := int64(4 * build(rand.New(rand.NewSource(o.Seed))).NumParams())
	swIters, ringIters := int64(iters), int64(0)
	if fi := r.fallbackIter(); fi >= 0 {
		swIters = int64(fi)
		ringIters = int64(iters) - swIters
	}
	perWorkerRing := modelBytes * 2 * int64(o.Workers-1) / int64(o.Workers)
	res.RawBytes = int64(o.Workers) * (swIters*modelBytes*2 + ringIters*perWorkerRing)
	return res, nil
}
