// Elastic ring training: the run survives worker death. A failed exchange
// triggers the membership protocol in internal/elastic — survivors abort
// the in-flight step, agree on the shrunken ring, roll back to the last
// iteration every survivor retains, and replay it from local snapshots
// with the average renormalized to the live member count. Periodic and
// on-failure checkpoints make the whole run durable and resumable.
package train

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/data"
	"inceptionn/internal/elastic"
	"inceptionn/internal/fault"
	"inceptionn/internal/obs"
	"inceptionn/internal/ring"
)

// ErrInterrupted reports that a run stopped early on request (Options.Stop)
// after the workers agreed on a halt iteration and wrote a final
// checkpoint; resume with Options.Resume to continue it.
var ErrInterrupted = errors.New("train: run interrupted; resume from checkpoint to continue")

// errWorkerDone is an internal sentinel: the worker left the run without
// failing it (it crashed and self-reported, or was evicted).
var errWorkerDone = errors.New("train: worker left the membership")

// elasticSnap is one retained iteration boundary. Snapshots are taken
// right before each gradient exchange; because a ring exchange cannot
// complete without every member engaging, survivors are at most one
// iteration apart, so keeping two suffices to cover any replay point the
// recovery protocol can pick.
type elasticSnap struct {
	iter        int
	cursor      uint64    // loader position *before* this iteration's batch
	weights     []float32 // pre-update
	velocity    []float32 // pre-update
	residualPre []float32 // error-feedback state before this iteration folded in
	residual    []float32 // ... and after (what a replay must restore)
	grad        []float32 // post-feedback local gradient, ready to exchange
}

// elasticWorker extends the fixed-topology worker with a seekable loader,
// the replay snapshots, and its membership + data-plane endpoints.
type elasticWorker struct {
	*worker
	sl    *data.StepLoader
	snaps [2]*elasticSnap // [0] newest
	m     elastic.Membership
	peer  *elastic.Peer
	// ctx scopes this worker *generation*: cancelling it aborts every
	// blocked wait (exchange receives, gathers, sync transfers) without
	// consuming in-flight frames, so a superseded generation can be torn
	// down before its replacement starts reading the same link streams.
	// For runs without rejoin it is simply the run context.
	ctx context.Context
}

func newElasticWorker(id int, build Builder, trainDS data.Dataset, o Options, ck *Checkpoint) (*elasticWorker, error) {
	w := newWorker(id, build, trainDS, o)
	// Shard by the full universe, not the live member count: survivor
	// shards never change across evictions, so recovery and resume see
	// identical sample streams. The rand-based loader is replaced with the
	// counter-based one whose position is a serializable cursor.
	shard := data.NewPartition(trainDS, id, o.Workers)
	sl := data.NewStepLoader(shard, o.BatchPerNode, o.Seed+int64(1000+id))
	w.loader = sl
	ew := &elasticWorker{worker: w, sl: sl}
	if ck != nil {
		ew.net.SetWeightVector(ck.Weights)
		if err := ew.sgd.SetVelocityVector(ew.net.Params(), ck.Velocity); err != nil {
			return nil, err
		}
		sl.Seek(ck.Cursors[id])
		if res := ck.Residuals[id]; res != nil {
			if ew.residual == nil || len(res) != len(ew.residual) {
				return nil, fmt.Errorf("train: checkpoint residual for worker %d does not match run options", id)
			}
			copy(ew.residual, res)
		}
	}
	return ew, nil
}

// takeSnapshot records the state needed to replay iteration iter. A
// snapshot for an iteration already on file (a replayed one) replaces it
// in place, so the previous iteration — which a straggling survivor may
// still force us back to — is never evicted early.
func (w *elasticWorker) takeSnapshot(iter int, residualPre []float32) {
	s := &elasticSnap{
		iter:        iter,
		cursor:      w.sl.Cursor() - 1, // Next() already advanced past iter's batch
		weights:     w.net.WeightVector(nil),
		velocity:    w.sgd.VelocityVector(w.net.Params(), nil),
		residualPre: residualPre,
		grad:        append([]float32(nil), w.grad...),
	}
	if w.residual != nil {
		s.residual = append([]float32(nil), w.residual...)
	}
	if w.snaps[0] != nil && w.snaps[0].iter == iter {
		w.snaps[0] = s
		return
	}
	w.snaps[1], w.snaps[0] = w.snaps[0], s
}

// snapFor returns the retained snapshot for iter, or nil.
func (w *elasticWorker) snapFor(iter int) *elasticSnap {
	for _, s := range w.snaps {
		if s != nil && s.iter == iter {
			return s
		}
	}
	return nil
}

// restoreSnapshot rewinds the worker to the pre-exchange state of iter:
// weights, optimizer state, loader cursor (past iter's batch), the
// post-feedback residual, and the retained local gradient, which the
// replayed exchange reuses instead of recomputing.
func (w *elasticWorker) restoreSnapshot(iter int) error {
	s := w.snapFor(iter)
	if s == nil {
		return fmt.Errorf("train: worker %d has no snapshot for iteration %d (survivor skew exceeded the retained window)", w.id, iter)
	}
	w.net.SetWeightVector(s.weights)
	if err := w.sgd.SetVelocityVector(w.net.Params(), s.velocity); err != nil {
		return err
	}
	w.sl.Seek(s.cursor + 1)
	w.grad = append(w.grad[:0], s.grad...)
	if w.residual != nil && s.residual != nil {
		copy(w.residual, s.residual)
	}
	return nil
}

// syncTagOffset is the in-band tag (relative to the epoch's TagBase) of
// the join state-sync message. It sits far above every collective's tag
// range (ring/mpi/hierarchy stay below ~2.4e4) and below EpochTagStride,
// so the epoch-filtering peer treats it like any other same-epoch frame.
const syncTagOffset = 1 << 19

// elasticRun is the shared state of one RunElastic/RunElasticTCP
// invocation. member hands each worker its membership endpoint (the
// shared in-process coordinator, or that worker's TCP control-channel
// client); transport hands it its data-plane endpoint plus an optional
// cleanup.
type elasticRun struct {
	o         Options
	iters     int
	startIter int
	member    func(id int) elastic.Membership
	transport func(id int) (elastic.Transport, func())
	finalize  func([]float32) // owner-block finalizer for the exchange
	testDS    data.Dataset

	ctx    context.Context
	cancel context.CancelFunc

	// Per-worker wall-clock attribution (indexed by worker id; each
	// goroutine owns its slot, wg.Wait orders the final read).
	computeNs []int64
	commNs    []int64
	replays   *obs.Counter   // elastic_replays (nil-safe)
	ckptHist  *obs.Histogram // checkpoint_write_seconds (nil-safe)

	mu      sync.Mutex
	evals   map[int]EvalPoint // keyed by iter; replays overwrite
	weights map[int][]float32
	final   map[int][2]float64 // leader's final (acc, loss)
}

func (r *elasticRun) recordEval(p EvalPoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evals[p.Iter] = p
}

func (r *elasticRun) storeWeights(id int, w []float32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.weights[id] = w
}

func (r *elasticRun) storeFinal(id int, acc, loss float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.final[id] = [2]float64{acc, loss}
}

// RunElastic trains like runRing but survives worker death and supports
// durable checkpoint/resume. It requires the ring algorithm: the exchange
// must be rebuildable over an arbitrary member subset, which
// ring.AllReduceGroupCtx provides. On a graceful stop (Options.Stop) it
// returns the partial result and ErrInterrupted.
func RunElastic(build Builder, trainDS, testDS data.Dataset, iters int, o Options) (Result, error) {
	ck, err := prepareElastic(build, iters, &o)
	if err != nil {
		return Result{}, err
	}

	fabric := comm.NewFabric(o.Workers, o.Processor)
	fabric.SetRecorder(o.Obs)
	coord := elastic.NewCoordinator(o.Workers, elastic.Config{SuspectAfter: o.SuspectAfter, Obs: o.Obs})
	defer coord.Close()
	if o.SuspectAfter > 0 {
		coord.WatchFabric(fabric)
	}
	var inj *fault.Injector
	if o.Chaos != nil {
		inj = fault.NewInjector(o.Workers, *o.Chaos)
	}

	r := &elasticRun{
		o: o, iters: iters, testDS: testDS,
		finalize: o.finalizer(),
		member:   func(int) elastic.Membership { return coord },
		transport: func(id int) (elastic.Transport, func()) {
			if inj != nil {
				fp := fault.Wrap(fabric.Endpoint(id), inj, fault.Options{Finalize: o.finalizer()})
				return fp, fp.Close
			}
			return fabric.Endpoint(id), nil
		},
		computeNs: make([]int64, o.Workers),
		commNs:    make([]int64, o.Workers),
		replays:   o.Obs.Counter("elastic_replays"),
		ckptHist:  o.Obs.Histogram("checkpoint_write_seconds"),
		evals:     make(map[int]EvalPoint),
		weights:   make(map[int][]float32),
		final:     make(map[int][2]float64),
	}
	if ck != nil {
		r.startIter = ck.NextIter
		// Re-declare the checkpoint's dead so the resumed view has the same
		// members (the epoch number may differ; tags only matter within one
		// process lifetime).
		for id := 0; id < o.Workers; id++ {
			if !ck.contains(id) {
				coord.ReportDead(id, fmt.Errorf("train: node %d was dead at checkpoint (epoch %d)", id, ck.Epoch))
			}
		}
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	defer r.cancel()

	view := coord.View()
	errs := make([]error, o.Workers)
	var wg sync.WaitGroup
	for _, id := range view.Members {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			err := r.worker(r.ctx, id, build, trainDS, ck, false)
			if errors.Is(err, errWorkerDone) {
				err = nil
			}
			errs[id] = err
			if err != nil && !errors.Is(err, ErrInterrupted) {
				r.cancel() // a real fault: unblock the siblings
			}
		}(id)
	}
	wg.Wait()

	interrupted := false
	var hard []error
	for _, err := range errs {
		if errors.Is(err, ErrInterrupted) {
			interrupted = true
			continue
		}
		hard = append(hard, err)
	}
	if err := firstError(hard); err != nil {
		return Result{}, err
	}

	var res Result
	r.mu.Lock()
	iterKeys := make([]int, 0, len(r.evals))
	for it := range r.evals {
		iterKeys = append(iterKeys, it)
	}
	sort.Ints(iterKeys)
	for _, it := range iterKeys {
		res.Evals = append(res.Evals, r.evals[it])
	}
	// Completed workers depart the membership, so the final view may be
	// empty: the result leader is the lowest id that actually finished and
	// stored weights (completion order mirrors view leadership — the
	// lowest live id runs the evaluations).
	lead := -1
	for id := range r.weights {
		if lead < 0 || id < lead {
			lead = id
		}
	}
	if lead < 0 {
		r.mu.Unlock()
		var causes []string
		for id := 0; id < o.Workers; id++ {
			if c := coord.DeathCause(id); c != nil {
				causes = append(causes, fmt.Sprintf("node %d: %v", id, c))
			}
		}
		detail := "no death evidence recorded"
		if len(causes) > 0 {
			detail = strings.Join(causes, "; ")
		}
		return Result{}, fmt.Errorf("train: no member completed the run (%s)", detail)
	}
	res.FinalWeights = r.weights[lead]
	if fl, ok := r.final[lead]; ok {
		res.FinalAcc, res.FinalLoss = fl[0], fl[1]
	}
	r.mu.Unlock()
	res.RawBytes = fabric.TotalRawBytes()
	res.WireBytes = fabric.TotalWireBytes()
	res.ComputeSeconds = nsSeconds(r.computeNs)
	res.CommSeconds = nsSeconds(r.commNs)
	res.StragglerWaitSeconds = fabricRecvWaitSeconds(fabric)
	if interrupted {
		return res, ErrInterrupted
	}
	return res, nil
}

// prepareElastic validates the options an elastic run requires, applies
// their defaults in place, and loads the resume checkpoint if requested
// (nil when starting fresh).
func prepareElastic(build Builder, iters int, o *Options) (*Checkpoint, error) {
	if o.Workers < 1 {
		return nil, fmt.Errorf("train: %d workers", o.Workers)
	}
	if o.BatchPerNode < 1 {
		return nil, fmt.Errorf("train: batch per node %d", o.BatchPerNode)
	}
	if o.Algo != Ring {
		return nil, fmt.Errorf("train: elastic training requires the ring algorithm (got %s)", o.Algo)
	}
	if o.EvalSamples == 0 {
		o.EvalSamples = 256
	}
	if o.RecoveryWait <= 0 {
		o.RecoveryWait = 5 * time.Second
	}

	var ck *Checkpoint
	if o.Resume {
		if o.CheckpointDir == "" {
			return nil, fmt.Errorf("train: Resume requires CheckpointDir")
		}
		loaded, _, err := LoadLatestCheckpoint(o.CheckpointDir)
		switch {
		case err == nil:
			ck = loaded
		case errors.Is(err, ErrNoCheckpoint):
			// Fresh start.
		default:
			return nil, err
		}
	}
	numParams := build(rand.New(rand.NewSource(o.Seed))).NumParams()
	if ck != nil {
		if ck.Universe != o.Workers {
			return nil, fmt.Errorf("train: checkpoint universe %d, run has %d workers", ck.Universe, o.Workers)
		}
		if len(ck.Weights) != numParams {
			return nil, fmt.Errorf("train: checkpoint has %d weights, model has %d", len(ck.Weights), numParams)
		}
		if ck.NextIter > iters {
			return nil, fmt.Errorf("train: checkpoint is at iteration %d, past the requested %d", ck.NextIter, iters)
		}
		if len(ck.Members) == 0 {
			return nil, fmt.Errorf("train: checkpoint has no live members")
		}
	}
	return ck, nil
}

func (ck *Checkpoint) contains(id int) bool {
	for _, m := range ck.Members {
		if m == id {
			return true
		}
	}
	return false
}

// worker is one elastic training goroutine. It returns nil on normal
// completion, errWorkerDone if it crashed (self-reported) or was evicted,
// ErrInterrupted on a graceful stop, and a hard error otherwise. A
// joining worker (already admitted to the membership by the caller)
// rendezvouses first to splice into the ring and synchronize its state
// from a survivor before it trains.
func (r *elasticRun) worker(ctx context.Context, id int, build Builder, trainDS data.Dataset, ck *Checkpoint, joining bool) error {
	o := r.o
	w, err := newElasticWorker(id, build, trainDS, o, ck)
	if err != nil {
		return err
	}
	w.ctx = ctx
	w.m = r.member(id)
	tp, cleanup := r.transport(id)
	if cleanup != nil {
		defer cleanup()
	}
	w.peer = elastic.NewPeer(tp)

	iter := r.startIter
	pending := false   // a snapshot for iter exists and its exchange has not committed
	recovered := false // last committed iteration was a post-recovery replay
	iterHist := o.Obs.Histogram("train_iter_seconds")
	lossGauge := o.Obs.Gauge("train_loss")
	var lastLoss float64
	// view is the membership this worker last operated under — the epoch
	// its exchanges commit under, its checkpoint gathers are keyed by, and
	// the one it halts or completes with. A successful exchange implies
	// every participant held the same view (epoch-banded tags), so these
	// decisions are identical across members by construction.
	view := w.m.View()
	if joining {
		// Catch up before emitting any traffic: meet the survivors at the
		// join epoch's rendezvous, receive the exact pre-replay weights and
		// optimizer state, and enter the loop as a full member.
		iter, pending, view, err = r.rendezvous(w, id, iter, pending, true)
		if err != nil {
			return err
		}
		recovered = true
	}
	for iter < r.iters {
		passStart := time.Now()
		if err := w.ctx.Err(); err != nil {
			return err // a sibling hit a hard fault
		}
		// Graceful stop: agree on a halt boundary no member has exchanged
		// yet, so everyone stops with identical weights.
		if o.Stop != nil {
			select {
			case <-o.Stop:
				w.m.ProposeHalt(iter)
			default:
			}
		}
		if h := w.m.HaltIter(); h >= 0 && iter >= h {
			return r.halt(w, id, iter, pending, view)
		}
		w.m.Beat(id)
		cur := w.m.View()
		if !cur.Contains(id) {
			return errWorkerDone
		}
		if cur.Epoch != view.Epoch {
			// The membership moved while this worker was between exchanges:
			// it must rendezvous before emitting any new-epoch traffic.
			iter, pending, view, err = r.rendezvous(w, id, iter, pending, false)
			if err != nil {
				return err
			}
			recovered = true
			continue
		}
		view = cur
		if !pending {
			t0 := time.Now()
			csp := o.Obs.Span(id, iter, obs.PhaseCompute)
			lastLoss = w.localGradient()
			o.straggle(id)
			if o.LocalGradTransform != nil {
				o.LocalGradTransform(w.grad)
			}
			var residualPre []float32
			if w.residual != nil {
				residualPre = append([]float32(nil), w.residual...)
			}
			w.applyErrorFeedback(o)
			csp.End()
			if id == view.Leader() && o.GradHook != nil {
				o.GradHook(iter, w.grad)
			}
			w.takeSnapshot(iter, residualPre)
			pending = true
			r.computeNs[id] += time.Since(t0).Nanoseconds()
		}

		// The exchange runs under the epoch context: a death declaration
		// cancels it on every survivor at once.
		exCtx, exCancel := context.WithCancel(w.ctx)
		stopLink := context.AfterFunc(w.m.EpochContext(view.Epoch), exCancel)
		ropt := ring.Options{
			StepTimeout: o.StepTimeout,
			ChunkSize:   o.ChunkSize,
			TagOffset:   elastic.TagBase(view.Epoch),
			Obs:         o.Obs,
			ObsIter:     iter,
		}
		tx := time.Now()
		exErr := ring.AllReduceGroupCtx(exCtx, w.peer, view.Members, w.grad, o.gradTos(), r.finalize, ropt)
		stopLink()
		exCancel()
		r.commNs[id] += time.Since(tx).Nanoseconds()

		if exErr != nil && errors.Is(exErr, fault.ErrCrashed) {
			// This node is the casualty: its own transport refuses service.
			// Self-report (a real process would exit and drop its lease) and
			// leave; the survivors reconfigure around us.
			w.m.ReportDead(id, exErr)
			return errWorkerDone
		}
		if exErr == nil {
			// Committed: a completed epoch-E exchange is the full sum over
			// E's members no matter what the membership did meanwhile — a
			// concurrent eviction or departure must not turn success into a
			// spurious replay (and a sibling's graceful exit at the final
			// iteration must not perturb this worker's result). If the
			// epoch did move, the next loop top rendezvouses, and MinIter
			// rolls this commit back deterministically when a survivor
			// aborted the same iteration.
			// Renormalize by the members that contributed.
			ta := time.Now()
			w.applyAveraged(iter, w.grad, o, len(view.Members))
			r.computeNs[id] += time.Since(ta).Nanoseconds()
			pending = false
			o.Health.ObserveStep(id, iter, time.Since(passStart))
			if id == view.Leader() {
				iterHist.Observe(time.Since(passStart))
				lossGauge.Set(lastLoss)
			}
			if id == view.Leader() && o.EvalEvery > 0 && ((iter+1)%o.EvalEvery == 0 || iter == r.iters-1) {
				acc, loss := evaluate(w.net, r.testDS, o.EvalSamples)
				r.recordEval(EvalPoint{Iter: iter + 1, Accuracy: acc, Loss: loss})
			}
			iter++
			if o.CheckpointDir != "" && iter < r.iters &&
				(recovered || (o.CheckpointEvery > 0 && (iter-r.startIter)%o.CheckpointEvery == 0)) {
				if err := r.checkpoint(w, id, iter, w.sl.Cursor(), w.residual, view); err != nil {
					return err
				}
				recovered = false
			}
			continue
		}
		if w.m.View().Epoch == view.Epoch {
			// The exchange failed but nobody has been declared dead yet.
			// Surface the evidence and wait (bounded) for a verdict: either
			// the epoch advances and recovery proceeds, or the fault was not
			// a membership event and it stands as the run's error.
			w.m.ReportAnomaly(id, exErr)
			wctx, wcancel := context.WithTimeout(w.ctx, o.RecoveryWait)
			_, werr := w.m.AwaitEpoch(wctx, id, view.Epoch)
			wcancel()
			if werr != nil {
				return fmt.Errorf("train: worker %d iter %d: %w", id, iter, exErr)
			}
		}
		iter, pending, view, err = r.rendezvous(w, id, iter, pending, false)
		if err != nil {
			return err
		}
		recovered = true
	}

	// Natural completion. All members of the final committed exchange
	// arrive here in lockstep; the final checkpoint gathers under that
	// commit-time view so everyone makes the same gather-or-skip call.
	w.m.Beat(id)
	if o.CheckpointDir != "" {
		if err := r.checkpoint(w, id, r.iters, w.sl.Cursor(), w.residual, view); err != nil {
			return err
		}
	}
	r.storeWeights(id, w.net.WeightVector(nil))
	if id == view.Leader() {
		acc, loss := evaluate(w.net, r.testDS, o.EvalSamples)
		r.storeFinal(id, acc, loss)
	}
	// Leave the membership so a survivor still mid-recovery never blocks
	// on this exited worker: the departure advances the epoch, failing its
	// rendezvous, and it re-resolves against the shrunken view.
	w.m.Depart(id)
	return nil
}

// rendezvous runs the recovery protocol after a membership change: all
// members meet at an epoch-scoped barrier, exchange their current
// iterations, and roll back to the minimum over the *established*
// members — the newest iteration every survivor can still replay. The
// barrier doubles as the guarantee that no member emits new-epoch
// traffic before everyone abandoned the old epoch, so the only foreign
// frames a replay can meet are stale ones, which the epoch-filtering
// peer discards.
//
// Joins ride the same barrier: a joining member contributes a marked
// item (excluded from the replay minimum — its checkpointed iteration
// may be arbitrarily stale), and the lowest established member ships it
// the exact pre-replay weights and optimizer state over the data plane
// before starting its own exchange. Per-link FIFO ordering makes the
// sync frame arrive ahead of any same-epoch ring traffic from that
// sender, and the epoch band keeps stale pre-crash frames out of the
// way, so the joiner splices in bit-exactly.
func (r *elasticRun) rendezvous(w *elasticWorker, id, iter int, pending, joining bool) (int, bool, elastic.View, error) {
	for {
		w.m.Beat(id)
		cur := w.m.View()
		if !cur.Contains(id) {
			return 0, false, cur, errWorkerDone
		}
		vals, err := w.m.Gather(w.ctx, id, cur.Epoch, fmt.Sprintf("recover@%d", cur.Epoch),
			elastic.Item{Iter: int64(iter), Joining: joining})
		if errors.Is(err, elastic.ErrEpochChanged) {
			continue // another death while gathering: redo under the new view
		}
		if errors.Is(err, elastic.ErrEvicted) || errors.Is(err, elastic.ErrClosed) {
			// Evicted, or this generation's membership endpoint was retired
			// under it (a replacement generation took over the id): either
			// way this worker is out of the run, not the run's failure.
			return 0, false, cur, errWorkerDone
		}
		if err != nil {
			return 0, false, cur, fmt.Errorf("train: worker %d recovery rendezvous: %w", id, err)
		}
		replay, joiners, syncFrom, ok := splitRendezvous(vals)
		if !ok {
			if joining {
				// Every established member left (the run completed or
				// collapsed) before this joiner caught up: there is nothing to
				// splice into, and that is not the joiner's failure.
				return 0, false, cur, errWorkerDone
			}
			return 0, false, cur, fmt.Errorf("train: worker %d: rendezvous at epoch %d has no established member to recover from", id, cur.Epoch)
		}

		if joining {
			if err := r.joinSync(w, syncFrom, cur, replay); err != nil {
				if w.m.View().Epoch != cur.Epoch {
					continue // the membership moved mid-sync: redo the rendezvous
				}
				return 0, false, cur, fmt.Errorf("train: worker %d join sync from %d: %w", id, syncFrom, err)
			}
			r.replays.Add(1)
			return replay, false, cur, nil
		}

		newIter, newPending := iter, pending
		switch {
		case replay < iter:
			// A survivor aborted mid-exchange of replay; everyone rolls back.
			rsp := r.o.Obs.Span(id, replay, obs.PhaseReplay)
			err := w.restoreSnapshot(replay)
			rsp.End()
			if err != nil {
				return 0, false, cur, err
			}
			r.replays.Add(1)
			newIter, newPending = replay, true
		case pending:
			// Common iteration, but this worker's gradient buffer is dirty
			// from the aborted exchange: restore the pristine snapshot.
			rsp := r.o.Obs.Span(id, iter, obs.PhaseReplay)
			err := w.restoreSnapshot(iter)
			rsp.End()
			if err != nil {
				return 0, false, cur, err
			}
			r.replays.Add(1)
			newPending = true
		default:
			// Nothing in flight (the event landed between exchanges).
			newPending = false
		}
		if len(joiners) > 0 && id == syncFrom {
			// State is now exactly pre-replay: ship it to every joiner before
			// engaging the ring (the joiner will not emit ring traffic until
			// it has applied this).
			if err := r.sendSync(w, joiners, cur); err != nil {
				if w.m.View().Epoch != cur.Epoch {
					iter, pending = newIter, newPending
					continue // superseded mid-sync: the next epoch re-runs this
				}
				return 0, false, cur, fmt.Errorf("train: worker %d join sync send: %w", id, err)
			}
		}
		return newIter, newPending, cur, nil
	}
}

// splitRendezvous separates a rendezvous gather into the replay decision
// inputs: the minimum iteration over established (non-joining) members,
// the sorted joiner ids, and the sync source (the lowest established
// member — View.Leader may be a joiner, which cannot source state). ok
// is false when no established member is present.
func splitRendezvous(vals map[int]interface{}) (replay int, joiners []int, syncFrom int, ok bool) {
	syncFrom = -1
	for m, v := range vals {
		it := v.(elastic.Item)
		if it.Joining {
			joiners = append(joiners, m)
			continue
		}
		if syncFrom < 0 || int(it.Iter) < replay {
			replay = int(it.Iter)
		}
		if syncFrom < 0 || m < syncFrom {
			syncFrom = m
		}
	}
	sort.Ints(joiners)
	return replay, joiners, syncFrom, syncFrom >= 0
}

// sendSync ships this worker's current weights and optimizer state to
// each joiner over the data plane, tagged into the join epoch's band.
// ToS 0 keeps the payload on the raw (uncompressed) path: the joiner
// must receive these bits exactly.
func (r *elasticRun) sendSync(w *elasticWorker, joiners []int, cur elastic.View) error {
	wv := w.net.WeightVector(nil)
	vv := w.sgd.VelocityVector(w.net.Params(), nil)
	payload := make([]float32, 0, len(wv)+len(vv))
	payload = append(payload, wv...)
	payload = append(payload, vv...)
	sctx, scancel := context.WithCancel(w.ctx)
	defer scancel()
	stop := context.AfterFunc(w.m.EpochContext(cur.Epoch), scancel)
	defer stop()
	tag := elastic.TagBase(cur.Epoch) + syncTagOffset
	for _, j := range joiners {
		if err := w.peer.SendCtx(sctx, j, payload, 0, tag); err != nil {
			return err
		}
	}
	return nil
}

// joinSync receives the sync source's state and fast-forwards this
// (joining) worker to the rendezvous iteration: synced weights and
// velocity, the loader seeked to the replay batch, a cleared residual
// (the joiner starts its error-feedback history fresh), and no retained
// snapshots — the checkpoint it booted from is now fully superseded.
func (r *elasticRun) joinSync(w *elasticWorker, from int, cur elastic.View, replay int) error {
	sctx, scancel := context.WithTimeout(w.ctx, r.o.RecoveryWait)
	defer scancel()
	stop := context.AfterFunc(w.m.EpochContext(cur.Epoch), scancel)
	defer stop()
	payload, err := w.peer.RecvCtx(sctx, from, elastic.TagBase(cur.Epoch)+syncTagOffset)
	if err != nil {
		return err
	}
	n := w.net.NumParams()
	if len(payload) != 2*n {
		return fmt.Errorf("train: join sync carried %d values, want %d", len(payload), 2*n)
	}
	w.net.SetWeightVector(payload[:n])
	if err := w.sgd.SetVelocityVector(w.net.Params(), payload[n:]); err != nil {
		return err
	}
	w.sl.Seek(uint64(replay))
	if w.residual != nil {
		for i := range w.residual {
			w.residual[i] = 0
		}
	}
	w.snaps = [2]*elasticSnap{}
	return nil
}

// halt finishes a graceful stop at the agreed boundary: write the final
// checkpoint (NextIter = the halt iteration), leave the membership, and
// report ErrInterrupted.
func (r *elasticRun) halt(w *elasticWorker, id, iter int, pending bool, view elastic.View) error {
	if r.o.CheckpointDir != "" {
		residual := w.residual
		if pending {
			// The halt landed between this iteration's feedback fold and its
			// exchange: checkpoint the pre-fold residual so the resumed run
			// replays the fold itself.
			if s := w.snapFor(iter); s != nil {
				residual = s.residualPre
			}
		}
		if err := r.checkpoint(w, id, iter, uint64(iter), residual, view); err != nil {
			return err
		}
	}
	r.storeWeights(id, w.net.WeightVector(nil))
	w.m.Depart(id)
	return ErrInterrupted
}

// checkpoint assembles one durable snapshot: every live member contributes
// its loader cursor and residual through an epoch-scoped gather, and the
// view's leader writes the file (weights and optimizer state are identical
// across members, so its own copies serve). view is the caller's
// commit-time view — NOT re-read here, so every member keys the gather by
// the same epoch and a concurrent eviction makes all of them skip (the
// post-recovery checkpoint supersedes) instead of splitting across two
// gathers that never fill.
func (r *elasticRun) checkpoint(w *elasticWorker, id, nextIter int, cursor uint64, residual []float32, view elastic.View) error {
	if !view.Contains(id) {
		return nil
	}
	contrib := elastic.Item{Iter: int64(nextIter), Cursor: cursor}
	if residual != nil {
		contrib.Residual = append([]float32(nil), residual...)
	}
	key := fmt.Sprintf("ckpt@e%d@i%d", view.Epoch, nextIter)
	vals, err := w.m.Gather(w.ctx, id, view.Epoch, key, contrib)
	if err != nil {
		if errors.Is(err, elastic.ErrEpochChanged) || errors.Is(err, elastic.ErrEvicted) || errors.Is(err, elastic.ErrClosed) {
			return nil
		}
		return fmt.Errorf("train: worker %d checkpoint gather: %w", id, err)
	}
	if id != view.Leader() {
		return nil
	}
	ck := &Checkpoint{
		Universe:  r.o.Workers,
		Epoch:     view.Epoch,
		NextIter:  nextIter,
		Members:   view.Members,
		Weights:   w.net.WeightVector(nil),
		Velocity:  w.sgd.VelocityVector(w.net.Params(), nil),
		Cursors:   make(map[int]uint64, len(vals)),
		Residuals: make(map[int][]float32, len(vals)),
	}
	for m, v := range vals {
		mc := v.(elastic.Item)
		ck.Cursors[m] = mc.Cursor
		if mc.Residual != nil {
			ck.Residuals[m] = mc.Residual
		}
	}
	wt := time.Now()
	csp := r.o.Obs.Span(id, nextIter, obs.PhaseCheckpoint)
	_, werr := ck.WriteFile(r.o.CheckpointDir)
	csp.End()
	r.ckptHist.Observe(time.Since(wt))
	if werr != nil {
		return werr
	}
	return GCCheckpoints(r.o.CheckpointDir, r.o.checkpointKeep())
}
