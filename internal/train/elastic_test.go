package train

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
)

func elasticOptions() Options {
	o := digitsOptions()
	o.EvalSamples = 64
	return o
}

func weightsEqual(t *testing.T, a, b []float32, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: weight vectors differ in length (%d vs %d)", what, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s: weight %d differs (%g vs %g)", what, i, a[i], b[i])
		}
	}
}

func TestElasticRunIsDeterministic(t *testing.T) {
	trainDS, testDS := digitsData()
	o := elasticOptions()
	a, err := RunElastic(models.NewHDCSmall, trainDS, testDS, 30, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunElastic(models.NewHDCSmall, trainDS, testDS, 30, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalWeights == nil {
		t.Fatal("no final weights")
	}
	weightsEqual(t, a.FinalWeights, b.FinalWeights, "repeated elastic runs")
}

// TestElasticCrashRecovery is the headline elasticity property: a 4-node
// run whose node 2 crashes mid-step completes anyway — the survivors
// abort the in-flight exchange, agree on the 3-member ring, replay from
// retained state with the average renormalized — and the post-recovery
// checkpoint resumes to bit-identical final weights on a run that starts
// directly as the 3-survivor configuration.
func TestElasticCrashRecovery(t *testing.T) {
	trainDS, testDS := digitsData()
	const iters = 30
	dirA := t.TempDir()

	o := elasticOptions()
	o.CheckpointDir = dirA
	// Node 2 has sent ~10 iterations' worth of frames when the schedule
	// trips, crashing it mid-exchange.
	o.Chaos = &fault.Config{Seed: 7, CrashAfter: map[int]uint64{2: 65}}
	resA, err := RunElastic(models.NewHDCSmall, trainDS, testDS, iters, o)
	if err != nil {
		t.Fatalf("crash run failed outright: %v", err)
	}
	if resA.FinalWeights == nil {
		t.Fatal("crash run produced no weights")
	}

	// Find the post-recovery checkpoint (the only one before the final).
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	var recoveryPath string
	var recovery *Checkpoint
	for _, e := range entries {
		ck, err := ReadCheckpointFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatalf("invalid checkpoint %s: %v", e.Name(), err)
		}
		if ck.NextIter < iters {
			if recovery != nil {
				t.Fatalf("expected a single mid-run checkpoint, found %s and %s", recoveryPath, e.Name())
			}
			recovery, recoveryPath = ck, e.Name()
		}
	}
	if recovery == nil {
		t.Fatal("no post-recovery checkpoint was written")
	}
	if want := []int{0, 1, 3}; len(recovery.Members) != 3 ||
		recovery.Members[0] != want[0] || recovery.Members[1] != want[1] || recovery.Members[2] != want[2] {
		t.Fatalf("post-recovery members = %v, want %v", recovery.Members, want)
	}

	// Resume from the post-recovery checkpoint with no chaos at all: the
	// run starts as the 3-survivor ring and must reproduce the crash run's
	// final weights bit-for-bit.
	dirB := t.TempDir()
	raw, err := os.ReadFile(filepath.Join(dirA, recoveryPath))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, recoveryPath), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	o2 := elasticOptions()
	o2.CheckpointDir = dirB
	o2.Resume = true
	resB, err := RunElastic(models.NewHDCSmall, trainDS, testDS, iters, o2)
	if err != nil {
		t.Fatal(err)
	}
	weightsEqual(t, resA.FinalWeights, resB.FinalWeights, "crash run vs resumed 3-node run")
}

// TestElasticTailCrashCompletes crashes a node during the run's final
// iterations, where survivors that commit the last exchange exit the
// worker loop while a lagging survivor still has a recovery rendezvous
// ahead of it. Completed workers must depart the membership so the
// laggard re-resolves against the shrunken view and finishes; without
// that, its rendezvous gather waits forever on already-exited members and
// the run hangs. Several crash points are tried so the survivors land on
// both sides of the commit (some finished, some aborted).
func TestElasticTailCrashCompletes(t *testing.T) {
	trainDS, testDS := digitsData()
	const iters = 30
	// Node 2 sends ~6 frames per 4-node iteration, so these land inside
	// the last couple of iterations' exchanges. 179 is the point where,
	// absent completion departures, the run deadlocks: two survivors
	// commit iteration 29 and exit while the third aborts its exchange
	// and rendezvouses against a view that still lists them.
	for _, crashAfter := range []uint64{170, 174, 179} {
		o := elasticOptions()
		o.Chaos = &fault.Config{Seed: 11, CrashAfter: map[int]uint64{2: crashAfter}}
		done := make(chan struct{})
		var res Result
		var err error
		go func() {
			defer close(done)
			res, err = RunElastic(models.NewHDCSmall, trainDS, testDS, iters, o)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("crashAfter=%d: tail-crash run hung", crashAfter)
		}
		if err != nil {
			t.Fatalf("crashAfter=%d: tail-crash run failed: %v", crashAfter, err)
		}
		if res.FinalWeights == nil {
			t.Fatalf("crashAfter=%d: tail-crash run produced no weights", crashAfter)
		}
	}
}

// TestElasticAllCrashedReportsError: when every node dies, RunElastic must
// say so — a zero Result with a nil error would read as a successful run
// that trained nothing. (Depending on scheduling, the last survivor can
// occasionally finish solo before noticing the others died; that counts
// as a completed run and must come with weights.)
func TestElasticAllCrashedReportsError(t *testing.T) {
	trainDS, testDS := digitsData()
	o := elasticOptions()
	o.Chaos = &fault.Config{Seed: 3, CrashAfter: map[int]uint64{0: 0, 1: 0, 2: 0, 3: 0}}
	res, err := RunElastic(models.NewHDCSmall, trainDS, testDS, 10, o)
	if err == nil {
		if res.FinalWeights == nil {
			t.Fatal("all-crash run returned nil error and nil weights")
		}
	} else if !strings.Contains(err.Error(), "no member completed") {
		t.Fatalf("all-crash run error = %v, want a 'no member completed' report", err)
	}
}

// TestElasticStopResumeMatchesUninterrupted checks durable checkpointing
// end to end, with the lossy codec and error feedback in the loop so the
// residual state rides through the checkpoint too: a run stopped mid-way
// (graceful halt, final checkpoint) and resumed must land on exactly the
// weights of a run that was never interrupted.
func TestElasticStopResumeMatchesUninterrupted(t *testing.T) {
	trainDS, testDS := digitsData()
	const iters = 24
	base := elasticOptions()
	base.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
	base.Compress = true
	base.ErrorFeedback = true

	full, err := RunElastic(models.NewHDCSmall, trainDS, testDS, iters, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	stop := make(chan struct{})
	var once sync.Once
	o := base
	o.CheckpointDir = dir
	o.CheckpointEvery = 5
	o.Stop = stop
	o.GradHook = func(iter int, _ []float32) {
		if iter == 10 {
			once.Do(func() { close(stop) })
		}
	}
	res, err := RunElastic(models.NewHDCSmall, trainDS, testDS, iters, o)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("stopped run: err = %v, want ErrInterrupted", err)
	}
	_ = res

	ck, _, err := LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NextIter <= 10 || ck.NextIter >= iters {
		t.Fatalf("halt checkpoint at iteration %d, want inside (10, %d)", ck.NextIter, iters)
	}

	o2 := base
	o2.CheckpointDir = dir
	o2.Resume = true
	resumed, err := RunElastic(models.NewHDCSmall, trainDS, testDS, iters, o2)
	if err != nil {
		t.Fatal(err)
	}
	weightsEqual(t, full.FinalWeights, resumed.FinalWeights, "uninterrupted vs stop+resume")
}

func TestRunCheckpointRoundTripAndCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	older := &Checkpoint{
		Universe: 4, Epoch: 0, NextIter: 5, Members: []int{0, 1, 2, 3},
		Weights:  []float32{1, 2, 3},
		Velocity: []float32{4, 5, 6},
		Cursors:  map[int]uint64{0: 5, 1: 5, 2: 5, 3: 5},
		Residuals: map[int][]float32{
			0: {0.5, -0.5, 0.25}, 1: {1, 1, 1}, 2: {2, 2, 2}, 3: {3, 3, 3},
		},
	}
	if _, err := older.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	newer := &Checkpoint{
		Universe: 4, Epoch: 1, NextIter: 9, Members: []int{0, 1, 3},
		Weights:  []float32{7, 8, 9},
		Velocity: []float32{1, 1, 2},
		Cursors:  map[int]uint64{0: 9, 1: 9, 3: 9},
	}
	newPath, err := newer.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}

	got, path, err := LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != newPath || got.NextIter != 9 || got.Epoch != 1 {
		t.Fatalf("latest = %s (iter %d), want %s (iter 9)", path, got.NextIter, newPath)
	}
	if len(got.Members) != 3 || got.Cursors[3] != 9 || got.Residuals[0] != nil {
		t.Fatalf("round-trip mismatch: %+v", got)
	}

	// Corrupt the newest checkpoint: the scan must reject it on CRC and
	// fall back to the older intact one.
	raw, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(newPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err = LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextIter != 5 {
		t.Fatalf("fallback picked iteration %d, want 5 (the older intact checkpoint)", got.NextIter)
	}
	if got.Residuals[2][0] != 2 {
		t.Fatalf("fallback residuals corrupted: %v", got.Residuals)
	}

	// With every candidate corrupt, resume reports ErrNoCheckpoint.
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, "ckpt-0000000001-e0000.inck"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatestCheckpoint(empty); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}
