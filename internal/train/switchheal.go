// Self-healing switch training: the SwitchReduce runner survives the
// death of its in-network reduction unit. Every worker grades its
// exchange errors with the mpi switch health monitor; once a failure is
// confirmed (a hard transport self-report, or a stall after the full
// step deadline), a one-shot gate cancels the switch data path on every
// worker at once, the workers agree on the newest iteration everyone can
// still replay (two-deep snapshots; the switch protocol bounds survivor
// skew to one iteration), roll back, and finish the run on the ring
// collective — bit-exact, because the switch combine replicates the
// ring's per-block accumulation order, so the replayed ring iterations
// land on identical float32 weights.
//
// Only the switch is expendable: a worker casualty still fails the run
// closed (that is the elastic runner's job, not this one's).
package train

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/data"
	"inceptionn/internal/elastic"
	"inceptionn/internal/fault"
	"inceptionn/internal/mpi"
	"inceptionn/internal/obs"
	"inceptionn/internal/obs/health"
	"inceptionn/internal/ring"
)

// fallbackTagOffset re-bands the fallback ring's traffic above every tag
// the switch collective ever used (reusing the elastic layer's epoch
// stride), so a frame from the abandoned switch exchange can never alias
// a ring step even on a transport that mixes streams.
var fallbackTagOffset = elastic.TagBase(1)

// switchJoinTimeout bounds how long the runner waits for the switch
// goroutine after every worker has exited. A serve still blocked past it
// is a leak, reported as the run's error instead of stranding a
// goroutine (and, under -race in tests, failing the build's leak checks).
const switchJoinTimeout = 10 * time.Second

// switchSnap is one retained iteration boundary of a switch worker. As
// in the elastic runner, a snapshot is taken right before each exchange;
// the switch protocol cannot complete an iteration for any worker until
// every worker has engaged it, so survivors are at most one iteration
// apart and two snapshots cover any replay point the gate can pick.
type switchSnap struct {
	iter     int
	weights  []float32 // pre-update
	velocity []float32 // pre-update
	residual []float32 // post-fold error-feedback state
	grad     []float32 // post-feedback local gradient, ready to exchange
}

// switchWorker extends the fixed-topology worker with replay snapshots.
// Unlike the elastic worker it keeps the plain rand-based loader: replays
// reuse the snapshot's retained gradient, so the data stream advances
// exactly once per iteration and never needs seeking.
type switchWorker struct {
	*worker
	snaps [2]*switchSnap // [0] newest
}

func (w *switchWorker) takeSnapshot(iter int) {
	s := &switchSnap{
		iter:     iter,
		weights:  w.net.WeightVector(nil),
		velocity: w.sgd.VelocityVector(w.net.Params(), nil),
		grad:     append([]float32(nil), w.grad...),
	}
	if w.residual != nil {
		s.residual = append([]float32(nil), w.residual...)
	}
	if w.snaps[0] != nil && w.snaps[0].iter == iter {
		w.snaps[0] = s
		return
	}
	w.snaps[1], w.snaps[0] = w.snaps[0], s
}

func (w *switchWorker) snapFor(iter int) *switchSnap {
	for _, s := range w.snaps {
		if s != nil && s.iter == iter {
			return s
		}
	}
	return nil
}

// restoreSnapshot rewinds to the pre-exchange state of iter: weights,
// optimizer state, residual, and the retained local gradient, which the
// replayed exchange reuses instead of recomputing.
func (w *switchWorker) restoreSnapshot(iter int) error {
	s := w.snapFor(iter)
	if s == nil {
		return fmt.Errorf("train: worker %d has no snapshot for iteration %d (survivor skew exceeded the retained window)", w.id, iter)
	}
	w.net.SetWeightVector(s.weights)
	if err := w.sgd.SetVelocityVector(w.net.Params(), s.velocity); err != nil {
		return err
	}
	w.grad = append(w.grad[:0], s.grad...)
	if w.residual != nil && s.residual != nil {
		copy(w.residual, s.residual)
	}
	return nil
}

// fallbackGate is the one-shot switch-failure consensus object shared by
// every worker of a self-healing run. Tripping it (once, ever) cancels
// the switch data path, records the collective_fallbacks counter and the
// fallback span (node = the dead switch, duration = detection latency),
// and opens the replay rendezvous where all workers agree on the newest
// iteration every one of them retains. It also holds the completion
// drain: a worker that finishes all iterations on the switch path parks
// until every sibling finished too, because a switch death during a
// straggler's final exchange forces even finished workers back one
// iteration.
type fallbackGate struct {
	workers int
	swID    int
	rec     *obs.Recorder
	health  *health.Engine

	// swCtx scopes every switch-path operation (worker exchanges and the
	// serve loop); tripping the gate cancels it, aborting the abandoned
	// protocol on all parties at once.
	swCtx    context.Context
	swCancel context.CancelFunc

	mu        sync.Mutex
	tripped   bool
	class     mpi.SwitchFaultClass
	cause     string
	tripIter  int
	detect    time.Duration
	trippedCh chan struct{}

	contrib    map[int]int // worker id -> iteration at fallback entry
	replay     int
	resolvedCh chan struct{}

	done    int // workers parked at the completion drain
	allDone chan struct{}
}

func newFallbackGate(runCtx context.Context, workers, swID int, rec *obs.Recorder, he *health.Engine) *fallbackGate {
	g := &fallbackGate{
		workers:    workers,
		swID:       swID,
		rec:        rec,
		health:     he,
		trippedCh:  make(chan struct{}),
		contrib:    make(map[int]int, workers),
		resolvedCh: make(chan struct{}),
		allDone:    make(chan struct{}),
	}
	g.swCtx, g.swCancel = context.WithCancel(runCtx)
	return g
}

func (g *fallbackGate) isTripped() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tripped
}

// trip confirms the switch failure. iter is the iteration the detecting
// party was on (negative for out-of-band evidence like a fabric anomaly
// watcher), detect the latency from fault onset to confirmation. Only the
// first call wins; calls after every worker already finished are ignored
// (the run is complete — a teardown error cannot fail it retroactively).
func (g *fallbackGate) trip(iter int, class mpi.SwitchFaultClass, cause string, detect time.Duration) {
	g.mu.Lock()
	if g.tripped || g.done == g.workers {
		g.mu.Unlock()
		return
	}
	g.tripped = true
	g.class, g.cause, g.tripIter, g.detect = class, cause, iter, detect
	close(g.trippedCh)
	g.mu.Unlock()
	g.swCancel()
	g.rec.Counter("collective_fallbacks").Add(1)
	// The fallback span charges the iteration to the dead switch itself:
	// its duration is the detection window, during which every survivor's
	// recv waits are evidence of the failure, not of a slow neighbor —
	// critical-path attribution treats it as an override.
	g.rec.RecordSpan(g.swID, iter, obs.PhaseFallback, time.Now().Add(-detect), detect)
	// After the counter and span, so the engine's pre-dump span pull sees
	// the fallback evidence it is about to dump.
	g.health.NotifyFallback(g.swID, iter, cause, detect)
}

// verdict returns the trip facts (valid once tripped).
func (g *fallbackGate) verdict() (class mpi.SwitchFaultClass, cause string, iter int, detect time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.class, g.cause, g.tripIter, g.detect
}

// resolve is the replay rendezvous: each worker contributes the
// iteration it reached; once all have, the replay point is the minimum —
// the newest iteration every worker can still restore. Blocks until the
// rendezvous completes or ctx dies (a worker that failed closed never
// contributes, and its run cancellation unblocks everyone with an error).
func (g *fallbackGate) resolve(ctx context.Context, id, iter int) (int, error) {
	g.mu.Lock()
	if _, ok := g.contrib[id]; !ok {
		g.contrib[id] = iter
		if len(g.contrib) == g.workers {
			g.replay = iter
			for _, it := range g.contrib {
				if it < g.replay {
					g.replay = it
				}
			}
			close(g.resolvedCh)
		}
	}
	g.mu.Unlock()
	select {
	case <-g.resolvedCh:
		return g.replay, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// finish is the completion drain for a worker that ran out of iterations
// on the switch path. It returns false when the worker may really exit
// (every sibling finished, or the run died) and true when the gate
// tripped and the worker must resurrect to join the replay.
func (g *fallbackGate) finish(ctx context.Context) bool {
	g.mu.Lock()
	if g.tripped {
		g.mu.Unlock()
		return true
	}
	g.done++
	if g.done == g.workers {
		close(g.allDone)
		g.mu.Unlock()
		return false
	}
	g.mu.Unlock()
	select {
	case <-g.allDone:
		return false
	case <-g.trippedCh:
		return true
	case <-ctx.Done():
		return false
	}
}

// switchRun is the shared state of one SwitchReduce training run, used by
// both the in-process runner (runSwitch) and the TCP runner
// (RunSwitchTCP). transport hands each node its data-plane peer plus an
// optional cleanup.
type switchRun struct {
	o        Options
	iters    int
	build    Builder
	trainDS  data.Dataset
	testDS   data.Dataset
	gradLen  int
	swID     int
	swOpt    mpi.SwitchOptions
	finalize func([]float32)

	ctx    context.Context
	cancel context.CancelFunc
	gate   *fallbackGate // nil when Options.SwitchFallback is off

	computeNs []int64
	commNs    []int64
	errs      []error // per worker id

	mu    sync.Mutex
	evals map[int]EvalPoint // keyed by iter; replays overwrite
	res   Result            // leader's finals, under mu
}

func newSwitchRun(build Builder, trainDS, testDS data.Dataset, iters int, o Options, finalize func([]float32)) *switchRun {
	r := &switchRun{
		o: o, iters: iters, build: build, trainDS: trainDS, testDS: testDS,
		gradLen:  build(rand.New(rand.NewSource(o.Seed))).NumParams(),
		swID:     o.Workers,
		swOpt:    mpi.SwitchOptions{ChunkFloats: o.SwitchChunk},
		finalize: finalize,

		computeNs: make([]int64, o.Workers),
		commNs:    make([]int64, o.Workers),
		errs:      make([]error, o.Workers),
		evals:     make(map[int]EvalPoint),
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	if o.SwitchFallback {
		r.gate = newFallbackGate(r.ctx, o.Workers, r.swID, o.Obs, o.Health)
	}
	return r
}

func (r *switchRun) fail(id int, err error) {
	r.errs[id] = err
	r.cancel() // unblock the siblings and the serve loop
}

func (r *switchRun) recordEval(p EvalPoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evals[p.Iter] = p
}

// exchangeCtx is the context switch-path exchanges run under: the gate's
// cancellable switch scope when fallback is armed, the run context
// otherwise.
func (r *switchRun) exchangeCtx() context.Context {
	if r.gate != nil {
		return r.gate.swCtx
	}
	return r.ctx
}

// enterFallback moves one worker onto the ring path: rendezvous on the
// replay point, then restore the snapshot when this worker has anything
// in flight or ahead of the replay point. Returns the iteration to
// resume at and whether its exchange-ready gradient is already loaded.
func (r *switchRun) enterFallback(w *switchWorker, id, iter int, pending bool) (int, bool, error) {
	replay, err := r.gate.resolve(r.ctx, id, iter)
	if err != nil {
		return 0, false, fmt.Errorf("train: worker %d fallback rendezvous: %w", id, err)
	}
	if replay < iter || pending {
		rsp := r.o.Obs.Span(id, replay, obs.PhaseReplay)
		rerr := w.restoreSnapshot(replay)
		rsp.End()
		if rerr != nil {
			return 0, false, rerr
		}
		return replay, true, nil
	}
	return iter, false, nil
}

// runWorker is one worker's whole training loop: switch exchanges until
// the gate trips (if ever), then ring exchanges to the end. The outer
// loop exists for the completion drain — a worker that finished on the
// switch path can be resurrected into the replay.
func (r *switchRun) runWorker(id int, tp comm.Peer) {
	o := r.o
	w := &switchWorker{worker: newWorker(id, r.build, r.trainDS, o)}
	c := mpi.WorldPeer(tp)
	c.CollectiveCommComp(o.Compress)
	c.SetStepTimeout(o.StepTimeout)
	e := comm.AsCtxPeer(tp)
	ringMembers := make([]int, o.Workers)
	for i := range ringMembers {
		ringMembers[i] = i
	}

	iterHist := o.Obs.Histogram("train_iter_seconds")
	lossGauge := o.Obs.Gauge("train_loss")
	var lastLoss float64
	var mon mpi.SwitchMonitor
	ringMode := false
	iter, pending := 0, false

	for {
		for iter < r.iters {
			if !ringMode && r.gate != nil && r.gate.isTripped() {
				// A sibling (or the switch itself) confirmed the failure
				// while this worker was between exchanges.
				ringMode = true
				var err error
				iter, pending, err = r.enterFallback(w, id, iter, pending)
				if err != nil {
					r.fail(id, err)
					return
				}
				continue
			}
			passStart := time.Now()
			if !pending && r.gate != nil {
				if w.snapFor(iter) != nil {
					// A replay rewound this worker past an iteration it had
					// already computed: reuse the retained gradient so Next()
					// is never called twice for one iteration and the rand
					// loader stream stays exactly the fault-free one.
					if err := w.restoreSnapshot(iter); err != nil {
						r.fail(id, err)
						return
					}
					pending = true
				}
			}
			if !pending {
				t0 := time.Now()
				csp := o.Obs.Span(id, iter, obs.PhaseCompute)
				lastLoss = w.localGradient()
				o.straggle(id)
				if o.LocalGradTransform != nil {
					o.LocalGradTransform(w.grad)
				}
				w.applyErrorFeedback(o)
				csp.End()
				if id == 0 && o.GradHook != nil {
					o.GradHook(iter, w.grad)
				}
				if r.gate != nil {
					w.takeSnapshot(iter)
				}
				pending = true
				r.computeNs[id] += time.Since(t0).Nanoseconds()
			}

			tx := time.Now()
			var exErr error
			if !ringMode {
				xsp := o.Obs.Span(id, iter, obs.PhaseSend)
				exErr = c.AllReduceSwitchCtx(r.exchangeCtx(), w.grad, r.swID, r.swOpt)
				xsp.End()
			} else {
				ropt := ring.Options{
					StepTimeout: o.StepTimeout,
					ChunkSize:   o.ChunkSize,
					TagOffset:   fallbackTagOffset,
					Obs:         o.Obs,
					ObsIter:     iter,
				}
				exErr = ring.AllReduceGroupCtx(r.ctx, e, ringMembers, w.grad, o.gradTos(), r.finalize, ropt)
			}
			r.commNs[id] += time.Since(tx).Nanoseconds()

			if exErr != nil {
				if !ringMode && r.gate != nil {
					if errors.Is(exErr, fault.ErrCrashed) || errors.Is(exErr, fault.ErrClosed) {
						// This worker is the casualty, not the switch: fail
						// closed. Falling back cannot save a run missing a
						// gradient shard.
						r.fail(id, fmt.Errorf("train: worker %d iter %d: %w", id, iter, exErr))
						return
					}
					confirmed, class, cause := mon.Observe(exErr)
					if confirmed && !r.gate.isTripped() {
						r.gate.trip(iter, class, cause, time.Since(tx))
					}
					if r.gate.isTripped() {
						continue // loop top engages the fallback
					}
					// Unconfirmed and nobody tripped: an unrelated
					// cancellation (a sibling's hard fault) — fall through.
				}
				r.fail(id, fmt.Errorf("train: worker %d iter %d: %w", id, iter, exErr))
				return
			}

			ta := time.Now()
			w.applyAveraged(iter, w.grad, o, o.Workers)
			r.computeNs[id] += time.Since(ta).Nanoseconds()
			pending = false
			o.Health.ObserveStep(id, iter, time.Since(passStart))
			if id == 0 {
				iterHist.Observe(time.Since(passStart))
				lossGauge.Set(lastLoss)
				if o.EvalEvery > 0 && ((iter+1)%o.EvalEvery == 0 || iter == r.iters-1) {
					acc, loss := evaluate(w.net, r.testDS, o.EvalSamples)
					r.recordEval(EvalPoint{Iter: iter + 1, Accuracy: acc, Loss: loss})
				}
			}
			iter++
		}

		if ringMode || r.gate == nil {
			break // ring completion is final; so is an unarmed switch run
		}
		if !r.gate.finish(r.ctx) {
			break
		}
		// Resurrected: the switch died during a straggler's exchange after
		// this worker already finished — rejoin at the agreed replay point.
		ringMode = true
		var err error
		iter, pending, err = r.enterFallback(w, id, iter, pending)
		if err != nil {
			r.fail(id, err)
			return
		}
	}

	if id == 0 {
		acc, loss := evaluate(w.net, r.testDS, o.EvalSamples)
		r.mu.Lock()
		r.res.FinalAcc, r.res.FinalLoss = acc, loss
		r.res.FinalWeights = w.net.WeightVector(nil)
		r.mu.Unlock()
	}
}

// runServe is the switch goroutine: iters rounds of the reduction unit.
// With fallback armed it self-reports hard evidence (its own transport or
// protocol giving up) by tripping the gate with zero detection latency; a
// serve-side stall is evidence against a *port*, not the switch, so it is
// only surfaced as an anomaly for the post-run merge.
func (r *switchRun) runServe(tp comm.Peer, serveErr chan<- error) {
	c := mpi.WorldPeer(tp)
	c.CollectiveCommComp(r.o.Compress)
	c.SetFinalize(r.finalize)
	c.SetStepTimeout(r.o.StepTimeout)
	for k := 0; k < r.iters; k++ {
		err := c.SwitchServeCtx(r.exchangeCtx(), r.gradLen, r.swOpt)
		if err == nil {
			continue
		}
		if r.gate == nil {
			serveErr <- fmt.Errorf("train: switch iter %d: %w", k, err)
			r.cancel()
			return
		}
		class, cause := mpi.GradeSwitchFault(err)
		switch {
		case r.gate.isTripped() || class == mpi.SwitchFaultUnrelated:
			// Expected teardown: the fallback is engaged, or the run was
			// cancelled by a worker's hard fault.
		case class.Hard():
			r.gate.trip(k, class, "switch self-report: "+cause, 0)
		default:
			// Stall: a port went quiet. Condemning the switch here would
			// trigger a replay into a ring missing a member; leave the
			// verdict to the workers and surface the evidence.
			serveErr <- fmt.Errorf("train: switch iter %d: %w", k, err)
		}
		return
	}
}

// execute runs the serve goroutine plus all workers over the given
// transport and assembles the per-run result (traffic totals are the
// caller's, since they are fabric-specific).
func (r *switchRun) execute(transport func(id int) (comm.Peer, func())) (Result, error) {
	serveErr := make(chan error, 1)
	serveDone := make(chan struct{})
	swTp, swCleanup := transport(r.swID)
	go func() {
		defer close(serveDone)
		if swCleanup != nil {
			defer swCleanup()
		}
		r.runServe(swTp, serveErr)
	}()

	var wg sync.WaitGroup
	for id := 0; id < r.o.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tp, cleanup := transport(id)
			if cleanup != nil {
				defer cleanup()
			}
			r.runWorker(id, tp)
		}(id)
	}
	wg.Wait()

	// Reap the switch goroutine with a bounded join: cancel its contexts,
	// then wait. A serve still blocked after that is a leak — reported as
	// the run's failure rather than silently stranded.
	if r.gate != nil {
		r.gate.swCancel()
	}
	r.cancel()
	select {
	case <-serveDone:
	case <-time.After(switchJoinTimeout):
		return Result{}, fmt.Errorf("train: switch goroutine leaked: still serving %s after every worker exited", switchJoinTimeout)
	}

	firstErr := firstError(r.errs)
	select {
	case serr := <-serveErr:
		// The serve anomaly is the root cause when no worker hit a more
		// specific fault — unless the fallback engaged, in which case the
		// switch's errors are the expected symptoms of its death.
		if (firstErr == nil || errors.Is(firstErr, context.Canceled)) &&
			(r.gate == nil || !r.gate.isTripped()) {
			firstErr = serr
		}
	default:
	}
	if firstErr != nil {
		return Result{}, firstErr
	}

	var res Result
	r.mu.Lock()
	iterKeys := make([]int, 0, len(r.evals))
	for it := range r.evals {
		iterKeys = append(iterKeys, it)
	}
	sort.Ints(iterKeys)
	for _, it := range iterKeys {
		res.Evals = append(res.Evals, r.evals[it])
	}
	res.FinalAcc, res.FinalLoss = r.res.FinalAcc, r.res.FinalLoss
	res.FinalWeights = r.res.FinalWeights
	r.mu.Unlock()
	res.ComputeSeconds = nsSeconds(r.computeNs)
	res.CommSeconds = nsSeconds(r.commNs)
	if r.gate != nil && r.gate.isTripped() {
		class, cause, _, detect := r.gate.verdict()
		res.Fallbacks = 1
		res.FallbackDetectSeconds = detect.Seconds()
		res.FallbackCause = fmt.Sprintf("%s: %s", class, cause)
	}
	return res, nil
}

// fallbackIter returns the iteration the gate tripped at (or -1), for
// traffic accounting.
func (r *switchRun) fallbackIter() int {
	if r.gate == nil || !r.gate.isTripped() {
		return -1
	}
	_, _, iter, _ := r.gate.verdict()
	return iter
}
