package train

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoCheckpoint reports that a checkpoint directory holds no valid
// checkpoint to resume from.
var ErrNoCheckpoint = errors.New("train: no checkpoint found")

// Run-level checkpoint format (little-endian):
//
//	u32 magic "INCK"
//	u32 version (1)
//	u32 universe, u32 epoch, u64 next iteration
//	u32 member count, members
//	u64 weights length, weights; u64 velocity length, velocity
//	per member (view order): u64 loader cursor,
//	                         u64 residual length, residual
//	u32 CRC32-C of all preceding bytes
//
// Unlike an nn.Network checkpoint (one replica's weights), this captures
// the whole elastic run: the membership view, every survivor's data-loader
// cursor and error-feedback residual, and the shared weights/optimizer
// state — everything needed to resume bit-identically.
const (
	runCkptMagic   = 0x494E434B
	runCkptVersion = 1
)

// Checkpoint is a durable snapshot of an elastic training run at an
// iteration boundary: iteration NextIter is the next to execute.
type Checkpoint struct {
	Universe int   // the fabric size the run started with
	Epoch    int   // membership epoch at capture time
	NextIter int   // first iteration the resumed run executes
	Members  []int // live members (sorted fabric ids)

	Weights  []float32 // shared model replica (identical across members)
	Velocity []float32 // shared optimizer momentum state

	Cursors   map[int]uint64    // per-member data-loader cursor
	Residuals map[int][]float32 // per-member error-feedback residual (nil entries allowed)
}

func putF32s(out io.Writer, vals []float32) error {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(vals)))
	if _, err := out.Write(n[:]); err != nil {
		return err
	}
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	_, err := out.Write(raw)
	return err
}

func getF32s(r io.Reader, limit int) ([]float32, error) {
	var n [8]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(n[:])
	if count > uint64(limit) {
		return nil, fmt.Errorf("train: checkpoint vector of %d values exceeds limit %d", count, limit)
	}
	raw := make([]byte, 4*count)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, err
	}
	vals := make([]float32, count)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return vals, nil
}

// Encode writes the checkpoint to w with a trailing CRC32-C.
func (ck *Checkpoint) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := crc32.New(castagnoliRun)
	out := io.MultiWriter(bw, h)
	var b [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(b[:4], v)
		_, err := out.Write(b[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := out.Write(b[:])
		return err
	}
	for _, v := range []uint32{runCkptMagic, runCkptVersion, uint32(ck.Universe), uint32(ck.Epoch)} {
		if err := put32(v); err != nil {
			return fmt.Errorf("train: encode checkpoint: %w", err)
		}
	}
	if err := put64(uint64(ck.NextIter)); err != nil {
		return fmt.Errorf("train: encode checkpoint: %w", err)
	}
	if err := put32(uint32(len(ck.Members))); err != nil {
		return fmt.Errorf("train: encode checkpoint: %w", err)
	}
	for _, m := range ck.Members {
		if err := put32(uint32(m)); err != nil {
			return fmt.Errorf("train: encode checkpoint: %w", err)
		}
	}
	if err := putF32s(out, ck.Weights); err != nil {
		return fmt.Errorf("train: encode weights: %w", err)
	}
	if err := putF32s(out, ck.Velocity); err != nil {
		return fmt.Errorf("train: encode velocity: %w", err)
	}
	for _, m := range ck.Members {
		if err := put64(ck.Cursors[m]); err != nil {
			return fmt.Errorf("train: encode cursor %d: %w", m, err)
		}
		if err := putF32s(out, ck.Residuals[m]); err != nil {
			return fmt.Errorf("train: encode residual %d: %w", m, err)
		}
	}
	binary.LittleEndian.PutUint32(b[:4], h.Sum32())
	if _, err := bw.Write(b[:4]); err != nil {
		return fmt.Errorf("train: encode checksum: %w", err)
	}
	return bw.Flush()
}

var castagnoliRun = crc32.MakeTable(crc32.Castagnoli)

// maxCkptVector bounds any single vector in a checkpoint (2^28 float32s =
// 1 GiB) so a corrupt length field cannot drive allocation.
const maxCkptVector = 1 << 28

// DecodeCheckpoint parses and CRC-verifies a checkpoint stream.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	h := crc32.New(castagnoliRun)
	tr := io.TeeReader(br, h)
	var b [8]byte
	get32 := func() (uint32, error) {
		_, err := io.ReadFull(tr, b[:4])
		return binary.LittleEndian.Uint32(b[:4]), err
	}
	get64 := func() (uint64, error) {
		_, err := io.ReadFull(tr, b[:])
		return binary.LittleEndian.Uint64(b[:]), err
	}
	magic, err := get32()
	if err != nil {
		return nil, fmt.Errorf("train: decode checkpoint: %w", err)
	}
	if magic != runCkptMagic {
		return nil, fmt.Errorf("train: not a run checkpoint (bad magic %08x)", magic)
	}
	if v, err := get32(); err != nil {
		return nil, fmt.Errorf("train: decode checkpoint: %w", err)
	} else if v != runCkptVersion {
		return nil, fmt.Errorf("train: unsupported run checkpoint version %d (this build reads version %d)", v, runCkptVersion)
	}
	ck := &Checkpoint{Cursors: make(map[int]uint64), Residuals: make(map[int][]float32)}
	universe, err := get32()
	if err != nil {
		return nil, fmt.Errorf("train: decode checkpoint: %w", err)
	}
	epoch, err := get32()
	if err != nil {
		return nil, fmt.Errorf("train: decode checkpoint: %w", err)
	}
	next, err := get64()
	if err != nil {
		return nil, fmt.Errorf("train: decode checkpoint: %w", err)
	}
	nMembers, err := get32()
	if err != nil {
		return nil, fmt.Errorf("train: decode checkpoint: %w", err)
	}
	if universe > 1<<20 || nMembers > universe || next > 1<<40 {
		return nil, fmt.Errorf("train: implausible checkpoint header (universe %d, members %d, next iter %d)",
			universe, nMembers, next)
	}
	ck.Universe, ck.Epoch, ck.NextIter = int(universe), int(epoch), int(next)
	ck.Members = make([]int, nMembers)
	for i := range ck.Members {
		m, err := get32()
		if err != nil {
			return nil, fmt.Errorf("train: decode members: %w", err)
		}
		if m >= universe {
			return nil, fmt.Errorf("train: checkpoint member %d outside universe %d", m, universe)
		}
		ck.Members[i] = int(m)
	}
	if ck.Weights, err = getF32s(tr, maxCkptVector); err != nil {
		return nil, fmt.Errorf("train: decode weights: %w", err)
	}
	if ck.Velocity, err = getF32s(tr, maxCkptVector); err != nil {
		return nil, fmt.Errorf("train: decode velocity: %w", err)
	}
	for _, m := range ck.Members {
		cur, err := get64()
		if err != nil {
			return nil, fmt.Errorf("train: decode cursor %d: %w", m, err)
		}
		ck.Cursors[m] = cur
		res, err := getF32s(tr, maxCkptVector)
		if err != nil {
			return nil, fmt.Errorf("train: decode residual %d: %w", m, err)
		}
		if len(res) > 0 {
			ck.Residuals[m] = res
		}
	}
	sum := h.Sum32()
	// Read the stored checksum outside the tee so it does not hash itself.
	if _, err := io.ReadFull(br, b[:4]); err != nil {
		return nil, fmt.Errorf("train: decode checksum: %w", err)
	}
	if stored := binary.LittleEndian.Uint32(b[:4]); stored != sum {
		return nil, fmt.Errorf("train: checkpoint checksum mismatch (stored %08x, computed %08x): corrupt or truncated", stored, sum)
	}
	return ck, nil
}

// ckptFileName names checkpoints so a lexical sort orders them by
// (iteration, epoch) — zero-padded for the scan in LoadLatestCheckpoint.
func ckptFileName(nextIter, epoch int) string {
	return fmt.Sprintf("ckpt-%010d-e%04d.inck", nextIter, epoch)
}

// WriteFile atomically persists the checkpoint into dir: the stream is
// written to a temp file, fsynced, and renamed into place, so a crash
// mid-write can never leave a half-written checkpoint under the final
// name (and the CRC catches torn sectors even if it somehow did).
func (ck *Checkpoint) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("train: checkpoint dir: %w", err)
	}
	final := filepath.Join(dir, ckptFileName(ck.NextIter, ck.Epoch))
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return "", fmt.Errorf("train: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := ck.Encode(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("train: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("train: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("train: checkpoint rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // make the rename durable; best-effort on exotic filesystems
		d.Close()
	}
	return final, nil
}

// ReadCheckpointFile loads and verifies one checkpoint file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}

// LoadLatestCheckpoint scans dir for the newest valid checkpoint, skipping
// corrupt or truncated files (an interrupted writer's leftovers) in favor
// of older intact ones. Returns ErrNoCheckpoint when none qualifies.
func LoadLatestCheckpoint(dir string) (*Checkpoint, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", ErrNoCheckpoint
		}
		return nil, "", fmt.Errorf("train: scan checkpoint dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".inck") {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var lastErr error
	for _, n := range names {
		path := filepath.Join(dir, n)
		ck, err := ReadCheckpointFile(path)
		if err == nil {
			return ck, path, nil
		}
		lastErr = err
	}
	if lastErr != nil {
		return nil, "", fmt.Errorf("%w (newest candidate invalid: %v)", ErrNoCheckpoint, lastErr)
	}
	return nil, "", ErrNoCheckpoint
}

// GCCheckpoints prunes dir down to the newest keep valid checkpoints so
// long elastic runs do not fill the disk. Files are ranked by name
// (iteration then epoch, the write order); everything older than the
// keep'th valid file is removed, as is any corrupt file in that older
// range. Corrupt files newer than the cutoff are left alone — they are
// within the window LoadLatestCheckpoint may still be probing, and they
// cost one directory slot, not a model's worth of disk. keep <= 0
// disables pruning. Removal needs no special atomicity: unlink either
// happens or it does not, and the retained files are untouched either
// way; the directory is fsynced afterwards like WriteFile's rename.
func GCCheckpoints(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("train: scan checkpoint dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".inck") {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	kept, removed := 0, 0
	for _, n := range names {
		path := filepath.Join(dir, n)
		if kept >= keep {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("train: checkpoint gc: %w", err)
			}
			removed++
			continue
		}
		if _, err := ReadCheckpointFile(path); err == nil {
			kept++
		}
	}
	if removed > 0 {
		if d, err := os.Open(dir); err == nil {
			d.Sync() // best-effort, as in WriteFile
			d.Close()
		}
	}
	return nil
}
