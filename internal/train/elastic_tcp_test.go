package train

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"inceptionn/internal/elastic"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
)

func elasticTCPOptions() Options {
	o := elasticOptions()
	o.StepTimeout = 20 * time.Second
	return o
}

// TestElasticTCPJoin is the acceptance run for elastic scale-out over real
// sockets: a 4-node TCP ring loses one worker to a chaos crash, the
// survivors reconfigure, and the janitor brings the node back — it loads
// the newest checkpoint, rejoins through the coordinator's epoch sequence,
// and is spliced into the ring with state synced from a survivor. The
// post-join checkpoint then resumes on a chaos-free run to bitwise the
// same final weights, proving the joined ring computes exactly what a
// 4-member ring at the same schedule computes.
func TestElasticTCPJoin(t *testing.T) {
	trainDS, testDS := digitsData()
	const iters = 30
	dirA := t.TempDir()

	o := elasticTCPOptions()
	o.CheckpointDir = dirA
	o.CheckpointKeep = -1 // keep every checkpoint; the test dissects them
	o.Join = true
	// Node 2 has sent ~10 iterations' worth of frames when the schedule
	// trips, crashing it mid-exchange.
	o.Chaos = &fault.Config{Seed: 7, CrashAfter: map[int]uint64{2: 65}}
	resA, err := RunElasticTCP(models.NewHDCSmall, trainDS, testDS, iters, o, fpcodec.MustBound(10))
	if err != nil {
		t.Fatalf("crash+join run failed: %v", err)
	}
	if resA.FinalWeights == nil {
		t.Fatal("crash+join run produced no weights")
	}

	// The run's checkpoint trail must show the full cycle: an eviction
	// epoch without node 2, then a join epoch with all 4 members again.
	// Pick the earliest full-membership mid-run checkpoint as the resume
	// point.
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	var joinCk *Checkpoint
	var joinName string
	sawEviction := false
	for _, e := range entries {
		ck, err := ReadCheckpointFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatalf("invalid checkpoint %s: %v", e.Name(), err)
		}
		if ck.NextIter >= iters {
			continue
		}
		if len(ck.Members) == 3 && !ck.contains(2) {
			sawEviction = true
			continue
		}
		if len(ck.Members) == 4 && ck.Epoch >= 2 {
			if joinCk == nil || ck.NextIter < joinCk.NextIter {
				joinCk, joinName = ck, e.Name()
			}
		}
	}
	if joinCk == nil {
		t.Fatal("no post-join checkpoint (4 members, epoch >= 2) was written")
	}
	_ = sawEviction // the eviction checkpoint may be skipped if the join raced it

	// Resume from the post-join checkpoint on a fresh, chaos-free run: the
	// member schedule from that point on is identical (all 4 nodes to the
	// end), so the final weights must match bit-for-bit.
	dirB := t.TempDir()
	raw, err := os.ReadFile(filepath.Join(dirA, joinName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, joinName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	o2 := elasticTCPOptions()
	o2.CheckpointDir = dirB
	o2.Resume = true
	resB, err := RunElasticTCP(models.NewHDCSmall, trainDS, testDS, iters, o2, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	weightsEqual(t, resA.FinalWeights, resB.FinalWeights, "crash+join run vs resume from post-join checkpoint")
}

// TestElasticTCPPartitionHeal cuts one worker's control link for a window
// of frames: the partitioned minority must halt (fail closed, no
// split-brain writes), the majority must evict it and continue, and once
// the window heals the janitor must bring the node back through the
// normal join path. Completion with a full-membership checkpoint at a
// post-join epoch is the proof of the whole cycle.
func TestElasticTCPPartitionHeal(t *testing.T) {
	trainDS, testDS := digitsData()
	const iters = 60
	dir := t.TempDir()

	o := elasticTCPOptions()
	o.CheckpointDir = dir
	o.CheckpointKeep = -1
	o.Join = true
	o.SuspectAfter = time.Second
	// Pace the loop so the run comfortably outlasts the outage-and-heal
	// schedule below on fast machines.
	o.Straggler = map[int]time.Duration{
		0: 50 * time.Millisecond, 1: 50 * time.Millisecond,
		2: 50 * time.Millisecond, 3: 50 * time.Millisecond,
	}
	// Black-hole node 3's control link for a wall-clock window that
	// outlasts the staleness limit: the coordinator evicts it (grading
	// the silence as a link partition — its control connection dropped),
	// the node fails closed, and once the window ends the janitor's
	// redial gets through and splices it back in.
	o.Chaos = &fault.Config{
		Seed: 5,
		Links: map[fault.Link]fault.LinkFaults{
			{Src: 3, Dst: elastic.CtrlPeer}: {
				DropRate:     1,
				FromElapsed:  500 * time.Millisecond,
				UntilElapsed: 3 * time.Second,
			},
		},
	}

	done := make(chan struct{})
	var res Result
	var err error
	go func() {
		defer close(done)
		res, err = RunElasticTCP(models.NewHDCSmall, trainDS, testDS, iters, o, fpcodec.MustBound(10))
	}()
	select {
	case <-done:
	case <-time.After(300 * time.Second):
		t.Fatal("partition-heal run hung")
	}
	if err != nil {
		t.Fatalf("partition-heal run failed: %v", err)
	}
	if res.FinalWeights == nil {
		t.Fatal("partition-heal run produced no weights")
	}

	// The trail must show node 3 back in the membership at an epoch past
	// its eviction (evict bumps to >= 1, rejoin to >= 2).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rejoined := false
	for _, e := range entries {
		ck, err := ReadCheckpointFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("invalid checkpoint %s: %v", e.Name(), err)
		}
		if ck.Epoch >= 2 && len(ck.Members) == 4 && ck.contains(3) {
			rejoined = true
		}
	}
	if !rejoined {
		t.Fatal("no checkpoint shows node 3 rejoined after the partition healed")
	}
}

// TestGCCheckpointsKeepsNewestValid pins the pruning contract: the newest
// K *valid* checkpoints survive, corrupt files inside the keep window are
// left alone (they are evidence, and removing them buys nothing), and
// everything older than the K-th valid file goes.
func TestGCCheckpointsKeepsNewestValid(t *testing.T) {
	dir := t.TempDir()
	write := func(nextIter, epoch int) string {
		ck := &Checkpoint{
			Universe: 2, Epoch: epoch, NextIter: nextIter, Members: []int{0, 1},
			Weights:  []float32{1},
			Velocity: []float32{2},
			Cursors:  map[int]uint64{0: uint64(nextIter), 1: uint64(nextIter)},
		}
		p, err := ck.WriteFile(dir)
		if err != nil {
			t.Fatal(err)
		}
		return filepath.Base(p)
	}
	oldest := write(1, 0)
	older := write(2, 0)
	mid := write(3, 0)
	corruptName := write(4, 0)
	newest := write(5, 0)
	// Corrupt the second-newest in place: it sits inside the keep window.
	path := filepath.Join(dir, corruptName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := GCCheckpoints(dir, 2); err != nil {
		t.Fatal(err)
	}
	left := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		left[e.Name()] = true
	}
	for _, want := range []string{newest, corruptName, mid} {
		if !left[want] {
			t.Errorf("GC removed %s, want it kept", want)
		}
	}
	for _, gone := range []string{older, oldest} {
		if left[gone] {
			t.Errorf("GC kept %s, want it pruned", gone)
		}
	}

	// keep <= 0 disables pruning entirely.
	if err := GCCheckpoints(dir, 0); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(left) {
		t.Errorf("GC with keep=0 changed the directory (%d -> %d files)", len(left), len(after))
	}
}
