package train

import (
	"fmt"
	"math/rand"
	"sync"

	"inceptionn/internal/data"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/ring"
	"inceptionn/internal/tcpfabric"
)

// RunRingTCP trains with the gradient-centric ring algorithm over genuine
// loopback TCP sockets (internal/tcpfabric): every gradient byte really
// crosses a socket, compressed by the NIC engine model when o.Compress is
// set. Options.Processor is ignored — the TCP fabric embeds its own
// engines; bound selects their error bound.
func RunRingTCP(build Builder, trainDS, testDS data.Dataset, iters int, o Options, bound fpcodec.Bound) (Result, error) {
	if o.Workers < 1 {
		return Result{}, fmt.Errorf("train: %d workers", o.Workers)
	}
	if o.BatchPerNode < 1 {
		return Result{}, fmt.Errorf("train: batch per node %d", o.BatchPerNode)
	}
	if o.EvalSamples == 0 {
		o.EvalSamples = 256
	}
	cluster, err := tcpfabric.NewCluster(o.Workers, o.Compress, bound)
	if err != nil {
		return Result{}, err
	}
	defer cluster.Close()

	// The finalize hook (replica identity under lossy compression) uses
	// the same codec the fabric's engines apply.
	var finalize func([]float32)
	if o.Compress {
		finalize = func(b []float32) {
			for i, v := range b {
				b[i] = fpcodec.Roundtrip(v, bound)
			}
		}
	}

	var res Result
	var wg sync.WaitGroup
	for id := 0; id < o.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWorker(id, build, trainDS, o)
			node := cluster.Node(id)
			for iter := 0; iter < iters; iter++ {
				w.localGradient()
				if o.LocalGradTransform != nil {
					o.LocalGradTransform(w.grad)
				}
				if id == 0 && o.GradHook != nil {
					o.GradHook(iter, w.grad)
				}
				ring.AllReduce(node, w.grad, o.gradTos(), finalize)
				w.applyAveraged(iter, w.grad, o)
				if id == 0 && o.EvalEvery > 0 && ((iter+1)%o.EvalEvery == 0 || iter == iters-1) {
					acc, loss := evaluate(w.net, testDS, o.EvalSamples)
					res.Evals = append(res.Evals, EvalPoint{Iter: iter + 1, Accuracy: acc, Loss: loss})
				}
			}
			if id == 0 {
				acc, loss := evaluate(w.net, testDS, o.EvalSamples)
				res.FinalAcc, res.FinalLoss = acc, loss
				res.FinalWeights = w.net.WeightVector(nil)
			}
		}(id)
	}
	wg.Wait()
	for id := 0; id < o.Workers; id++ {
		res.WireBytes += cluster.Node(id).SentBytes()
	}
	// Raw bytes: each worker ships 2(N-1)/N of the model per iteration.
	modelBytes := int64(4 * build(rand.New(rand.NewSource(o.Seed))).NumParams())
	perWorkerPerIter := modelBytes * 2 * int64(o.Workers-1) / int64(o.Workers)
	res.RawBytes = perWorkerPerIter * int64(iters) * int64(o.Workers)
	return res, nil
}
