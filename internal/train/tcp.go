package train

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"inceptionn/internal/data"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/obs"
	"inceptionn/internal/ring"
	"inceptionn/internal/tcpfabric"
)

// RunRingTCP trains with the gradient-centric ring algorithm over genuine
// loopback TCP sockets (internal/tcpfabric): every gradient byte really
// crosses a socket, compressed by the NIC engine model when o.Compress is
// set. Options.Processor is ignored — the TCP fabric embeds its own
// engines; bound selects their error bound.
//
// The exchange runs on the fault-tolerant path: o.StepTimeout bounds each
// ring hop, o.Chaos injects deterministic transport faults, and the first
// worker error (timeout, exhausted retries, crashed node) aborts the run
// and is returned instead of panicking the process.
func RunRingTCP(build Builder, trainDS, testDS data.Dataset, iters int, o Options, bound fpcodec.Bound) (Result, error) {
	if o.Workers < 1 {
		return Result{}, fmt.Errorf("train: %d workers", o.Workers)
	}
	if o.BatchPerNode < 1 {
		return Result{}, fmt.Errorf("train: batch per node %d", o.BatchPerNode)
	}
	if o.EvalSamples == 0 {
		o.EvalSamples = 256
	}
	copts := tcpfabric.ClusterOptions{Compress: o.Compress, Bound: bound, Obs: o.Obs}
	if o.Chaos != nil {
		copts.Chaos = fault.NewInjector(o.Workers, *o.Chaos)
	}
	cluster, err := tcpfabric.NewClusterWithOptions(o.Workers, copts)
	if err != nil {
		return Result{}, err
	}
	defer cluster.Close()

	// The finalize hook (replica identity under lossy compression) uses
	// the same codec the fabric's engines apply.
	var finalize func([]float32)
	if o.Compress {
		finalize = func(b []float32) {
			for i, v := range b {
				b[i] = fpcodec.Roundtrip(v, bound)
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Watch every node's anomaly channel: a transport-level failure that no
	// worker blocks on directly — exhausted retries on a NACKed frame, a
	// torn frame, stream desync — must still abort the run rather than
	// leave the ring spinning on recovery probes forever.
	var fabricMu sync.Mutex
	var fabricErr error
	for id := 0; id < o.Workers; id++ {
		go func(errCh <-chan error) {
			select {
			case err := <-errCh:
				fabricMu.Lock()
				if fabricErr == nil {
					fabricErr = err
				}
				fabricMu.Unlock()
				cancel()
			case <-ctx.Done():
			}
		}(cluster.Node(id).Errors())
	}

	var res Result
	var wg sync.WaitGroup
	errs := make([]error, o.Workers)
	computeNs := make([]int64, o.Workers)
	commNs := make([]int64, o.Workers)
	for id := 0; id < o.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWorker(id, build, trainDS, o)
			node := cluster.Node(id)
			iterHist := o.Obs.Histogram("train_iter_seconds")
			lossGauge := o.Obs.Gauge("train_loss")
			for iter := 0; iter < iters; iter++ {
				t0 := time.Now()
				csp := o.Obs.Span(id, iter, obs.PhaseCompute)
				loss := w.localGradient()
				o.straggle(id)
				if o.LocalGradTransform != nil {
					o.LocalGradTransform(w.grad)
				}
				csp.End()
				if id == 0 && o.GradHook != nil {
					o.GradHook(iter, w.grad)
				}
				tc := time.Now()
				computeNs[id] += tc.Sub(t0).Nanoseconds()
				if err := ring.AllReduceCtx(ctx, node, w.grad, o.gradTos(), finalize,
					o.ringOptions(iter)); err != nil {
					errs[id] = fmt.Errorf("train: worker %d iter %d: %w", id, iter, err)
					cancel() // unblock the other workers' ring steps
					return
				}
				tx := time.Now()
				commNs[id] += tx.Sub(tc).Nanoseconds()
				w.applyAveraged(iter, w.grad, o, o.Workers)
				computeNs[id] += time.Since(tx).Nanoseconds()
				o.Health.ObserveStep(id, iter, time.Since(t0))
				if id == 0 {
					iterHist.Observe(time.Since(t0))
					lossGauge.Set(loss)
				}
				if id == 0 && o.EvalEvery > 0 && ((iter+1)%o.EvalEvery == 0 || iter == iters-1) {
					acc, loss := evaluate(w.net, testDS, o.EvalSamples)
					res.Evals = append(res.Evals, EvalPoint{Iter: iter + 1, Accuracy: acc, Loss: loss})
				}
			}
			if id == 0 {
				acc, loss := evaluate(w.net, testDS, o.EvalSamples)
				res.FinalAcc, res.FinalLoss = acc, loss
				res.FinalWeights = w.net.WeightVector(nil)
			}
		}(id)
	}
	wg.Wait()
	// Report the causal failure: the worker that hit the real fault, not
	// one that merely observed the cancellation it triggered.
	firstErr := firstError(errs)
	fabricMu.Lock()
	if fabricErr != nil && (firstErr == nil || errors.Is(firstErr, context.Canceled)) {
		// The fabric anomaly is the root cause; worker errors are just the
		// cancellation it triggered.
		firstErr = fabricErr
	}
	fabricMu.Unlock()
	if firstErr != nil {
		return Result{}, firstErr
	}
	for id := 0; id < o.Workers; id++ {
		res.WireBytes += cluster.Node(id).SentBytes()
	}
	res.ComputeSeconds = nsSeconds(computeNs)
	res.CommSeconds = nsSeconds(commNs)
	// Raw bytes: each worker ships 2(N-1)/N of the model per iteration.
	modelBytes := int64(4 * build(rand.New(rand.NewSource(o.Seed))).NumParams())
	perWorkerPerIter := modelBytes * 2 * int64(o.Workers-1) / int64(o.Workers)
	res.RawBytes = perWorkerPerIter * int64(iters) * int64(o.Workers)
	return res, nil
}
