package train

import (
	"testing"
	"time"

	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
)

// TestSwitchTCPBitIdenticalToRing: the switch collective over genuine
// loopback sockets, uncompressed, must land on the same bits as the
// in-process ring run.
func TestSwitchTCPBitIdenticalToRing(t *testing.T) {
	const iters = 8
	ref := ringReference(t, iters)
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Algo = SwitchReduce
	o.EvalEvery = 4
	res, err := RunSwitchTCP(models.NewHDCSmall, trainDS, testDS, iters, o, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 0 {
		t.Fatalf("spurious fallback over a clean fabric: %q", res.FallbackCause)
	}
	assertBitIdentical(t, res, ref)
	if res.WireBytes == 0 || res.RawBytes == 0 {
		t.Error("no traffic recorded")
	}
}

// TestSwitchTCPFallbackOnSwitchKill kills the switch node mid-run over
// real sockets: the run must trip the fallback, finish on the ring band,
// and still match the uninterrupted ring reference bit for bit.
func TestSwitchTCPFallbackOnSwitchKill(t *testing.T) {
	const iters = 8
	ref := ringReference(t, iters)
	trainDS, testDS := digitsData()
	o := healOptions()
	o.StepTimeout = 5 * time.Second
	o.Chaos = &fault.Config{Seed: 11, CrashAfter: map[int]uint64{o.Workers: 10}}
	res, err := RunSwitchTCP(models.NewHDCSmall, trainDS, testDS, iters, o, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1 (cause %q)", res.Fallbacks, res.FallbackCause)
	}
	if max := 2 * o.StepTimeout.Seconds(); res.FallbackDetectSeconds > max {
		t.Errorf("detection latency %.3fs exceeds 2×StepTimeout (%.1fs)", res.FallbackDetectSeconds, max)
	}
	assertBitIdentical(t, res, ref)
}
