package train

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
	"inceptionn/internal/obs"
)

// TestElasticObservability is the PR's acceptance run: a compressed
// elastic training with a scheduled node crash, observed through a live
// recorder. After recovery the /metrics snapshot must show the step-time
// histogram, compressed wire accounting, and the eviction — and the trace
// must aggregate into a per-node breakdown covering every worker.
func TestElasticObservability(t *testing.T) {
	trainDS, testDS := digitsData()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 15)
	o := elasticOptions()
	o.Obs = obs.NewRecorder(reg, tracer)
	o.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
	o.Compress = true
	// Node 2 dies mid-exchange about ten iterations in (same schedule as
	// TestElasticCrashRecovery), now under lossy compression too.
	o.Chaos = &fault.Config{Seed: 7, CrashAfter: map[int]uint64{2: 65}}

	res, err := RunElastic(models.NewHDCSmall, trainDS, testDS, 30, o)
	if err != nil {
		t.Fatalf("elastic run under observation failed: %v", err)
	}
	if res.ComputeSeconds <= 0 || res.CommSeconds <= 0 {
		t.Errorf("Result timing not populated: compute %gs, comm %gs", res.ComputeSeconds, res.CommSeconds)
	}

	srv := httptest.NewServer(obs.NewHTTPHandler(reg, tracer))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not a JSON object: %v\n%s", err, body)
	}
	counter := func(name string) int64 {
		raw, ok := snap[name]
		if !ok {
			t.Fatalf("/metrics lacks %q; have %d metrics", name, len(snap))
		}
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("metric %q is not an integer: %s", name, raw)
		}
		return v
	}
	var stepHist obs.HistSnapshot
	if err := json.Unmarshal(snap["ring_step_seconds"], &stepHist); err != nil {
		t.Fatalf("ring_step_seconds missing or malformed: %v", err)
	}
	if stepHist.Count == 0 || stepHist.SumSeconds <= 0 {
		t.Errorf("ring_step_seconds empty: %+v", stepHist)
	}
	if counter("wire_bytes_compressed") == 0 {
		t.Error("wire_bytes_compressed = 0 on a compressed elastic run")
	}
	if counter("elastic_evictions") == 0 {
		t.Error("elastic_evictions = 0 after a scheduled crash")
	}
	if counter("elastic_heartbeats") == 0 {
		t.Error("elastic_heartbeats = 0")
	}
	if counter("elastic_replays") == 0 {
		t.Error("elastic_replays = 0 after a mid-exchange crash")
	}

	resp, err = http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ReadSpans(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("/trace returned no spans")
	}
	bd := obs.Aggregate(spans)
	if len(bd.Nodes) != o.Workers {
		t.Fatalf("trace covers %d nodes, want %d", len(bd.Nodes), o.Workers)
	}
	for _, nb := range bd.Nodes {
		if nb.Phase[obs.PhaseCompute] <= 0 {
			t.Errorf("node %d recorded no compute time", nb.Node)
		}
	}
}
