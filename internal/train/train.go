// Package train runs real distributed DNN training over the simulated
// cluster fabric, combining the nn/opt/data substrates with the
// gradient-centric ring exchange (Algorithm 1) or the worker-aggregator
// baseline. It produces the accuracy results behind the paper's Figs. 4,
// 13 and 14 and collects the gradient streams behind Fig. 5 and Table III.
package train

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/data"
	"inceptionn/internal/fault"
	"inceptionn/internal/hierarchy"
	"inceptionn/internal/nn"
	"inceptionn/internal/obs"
	"inceptionn/internal/obs/health"
	"inceptionn/internal/opt"
	"inceptionn/internal/ring"
)

// Algorithm selects the distributed exchange.
type Algorithm int

// Supported algorithms.
const (
	// Ring is the paper's gradient-centric aggregator-free exchange.
	Ring Algorithm = iota
	// WorkerAggregator is the conventional baseline: a designated
	// aggregator sums gradients and broadcasts weights.
	WorkerAggregator
	// HierarchicalTree groups workers into rings under a global
	// aggregator (paper Fig. 1b). Requires Options.GroupSize.
	HierarchicalTree
	// HierarchicalRing uses rings at every level of the hierarchy (paper
	// Fig. 1c). Requires Options.GroupSize.
	HierarchicalRing
	// SwitchReduce aggregates in the network itself (NetReduce-style): a
	// programmable-switch node combines gradient chunks in flight and
	// multicasts the result, bit-exact with the ring collective.
	SwitchReduce
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring"
	case WorkerAggregator:
		return "worker-aggregator"
	case HierarchicalTree:
		return "hierarchical-tree"
	case SwitchReduce:
		return "switch"
	default:
		return "hierarchical-ring"
	}
}

// Options configure a distributed training run.
type Options struct {
	Workers      int
	Algo         Algorithm
	BatchPerNode int
	Schedule     opt.StepSchedule
	Momentum     float64
	WeightDecay  float64
	Seed         int64

	// Processor is the NIC datapath model (nil = identity, no compression
	// possible). Compress additionally tags gradient traffic with
	// ToS 0x28, opting it into the processor's lossy path.
	Processor comm.WireProcessor
	Compress  bool

	// LocalGradTransform, if set, is applied to each worker's local
	// gradient vector before the exchange (e.g. LSB truncation, Fig. 4).
	LocalGradTransform func([]float32)
	// WeightTransform, if set, is applied to the weight vector after every
	// update (e.g. truncation of w, Fig. 4).
	WeightTransform func([]float32)
	// GradHook, if set, observes worker 0's local gradient before the
	// exchange at every iteration (Fig. 5, Table III collection).
	GradHook func(iter int, grad []float32)

	// EvalEvery > 0 evaluates worker 0's replica on the test set every
	// that many iterations (and always after the last).
	EvalEvery   int
	EvalSamples int

	// GroupSize is the intra-ring group size for the hierarchical
	// algorithms (Fig. 1b/c); Workers must be a multiple of it.
	GroupSize int

	// StepTimeout bounds every individual ring send/recv step (both the
	// in-process fabric runners and RunRingTCP): a link stalled longer
	// than this fails the run with a timeout error naming the slow hop,
	// instead of hanging the whole training job. 0 disables the per-step
	// deadline.
	StepTimeout time.Duration
	// ChunkSize pipelines the ring exchange: each ring block is split
	// into chunks of at most this many float32 values, so one chunk's
	// codec and reduction overlap the next chunk's transport (see
	// ring.Options.ChunkSize). 0 keeps whole-block steps.
	ChunkSize int
	// SwitchChunk bounds how many float32 values stream through the
	// SwitchReduce switch per chunk, modelling the bounded on-switch
	// aggregation memory (netsim.Params.SwitchMemBytes / 4). 0 streams the
	// whole gradient as one chunk.
	SwitchChunk int
	// SwitchFallback makes SwitchReduce runs self-healing: workers grade
	// every switch-exchange error with the mpi switch health monitor, and
	// on a confirmed switch failure (hard transport self-report, or a
	// stall after the full step deadline) they roll back at most one
	// iteration from in-memory snapshots and finish the run on the ring
	// collective — bit-exact with an uninterrupted ring run, since the
	// switch combine replicates the ring's accumulation order. Requires
	// StepTimeout > 0 (stall detection needs a deadline). Only the switch
	// is expendable: a worker casualty still fails the run closed.
	SwitchFallback bool
	// Chaos, if non-nil, injects deterministic transport faults (drops,
	// corruption, duplication, delay, partitions, crashes — see
	// internal/fault) into the wire traffic of RunRingTCP, RunSwitchTCP,
	// RunElastic, and the in-process SwitchReduce runner. The fabric's
	// retransmit protocol repairs recoverable faults transparently;
	// unrecoverable ones surface as errors (or, with SwitchFallback, as a
	// mid-run fallback when the casualty is the switch).
	Chaos *fault.Config

	// SuspectAfter enables RunElastic's heartbeat failure detector: a
	// worker silent for this long (after its first heartbeat) is declared
	// dead and evicted from the ring. 0 disables the detector — crashes
	// are then detected only by transport self-reports.
	SuspectAfter time.Duration
	// RecoveryWait bounds how long an elastic worker whose exchange
	// failed waits for a membership verdict before treating the fault as
	// fatal (nobody died; the error stands). Default 5s.
	RecoveryWait time.Duration
	// CheckpointDir, when non-empty, enables durable checkpoint/resume
	// for RunElastic: atomic, CRC-checked snapshots of weights, optimizer
	// state, error-feedback residuals, and data-loader cursors.
	CheckpointDir string
	// CheckpointEvery writes a periodic checkpoint every that many
	// iterations (0 = only after recoveries, on Stop, and at completion).
	CheckpointEvery int
	// CheckpointKeep prunes CheckpointDir to the newest this-many valid
	// checkpoints after each write (see GCCheckpoints). 0 means the
	// default of 3; negative disables pruning.
	CheckpointKeep int
	// Resume makes RunElastic restore the newest valid checkpoint in
	// CheckpointDir before training (fresh start if none exists).
	Resume bool
	// Join lets RunElasticTCP re-admit evicted workers: when a node is
	// declared dead, a replacement for the same id is started, loads the
	// newest valid checkpoint, and rejoins the ring at the next epoch
	// boundary with its state synchronized from a surviving member.
	Join bool
	// CoordAddr is RunElasticTCP's control-channel listen address
	// (host:port). Empty binds an ephemeral localhost port.
	CoordAddr string
	// Stop, when non-nil, drains RunElastic gracefully once closed: the
	// workers agree on a common halt iteration, write a final checkpoint,
	// and the run returns ErrInterrupted.
	Stop <-chan struct{}

	// Obs, when non-nil, instruments the run: compute/exchange phase spans
	// per worker and iteration, the train_iter_seconds histogram and
	// train_loss gauge (worker 0), plus the fabric-, ring- and
	// elastic-layer metrics those components emit when a recorder reaches
	// them. Nil (the zero value) disables all of it.
	Obs *obs.Recorder

	// Health, when non-nil, runs online anomaly detection over the run:
	// every runner pushes per-node step completions into the engine, and
	// the self-healing paths (switch fallback) report their events, so
	// stragglers, degraded links and component failures open typed
	// incidents while the run is still going. Usually paired with Obs —
	// the engine's counter/span detectors read the same recorder. Nil
	// disables it at the same zero cost as a nil recorder.
	Health *health.Engine

	// Straggler artificially slows the listed workers by the given extra
	// compute time per iteration (inside their compute span, so traces
	// attribute it correctly). It exists to validate the critical-path
	// attribution: `inctrace blame` on a run with one straggling node must
	// point at it. Nil/empty = no injected stragglers.
	Straggler map[int]time.Duration

	// ErrorFeedback enables residual error feedback on the lossy codec
	// (Seide et al.'s 1-bit SGD technique, cited by the paper as [25]):
	// each worker adds the previous iteration's compression error to its
	// local gradient before the exchange, so quantization error is
	// deferred rather than lost. Requires Compress and a Processor; the
	// codec's idempotence makes the locally-computed feedback exact for
	// the first compression stage.
	ErrorFeedback bool
}

// EvalPoint is one accuracy measurement.
type EvalPoint struct {
	Iter     int
	Accuracy float64
	Loss     float64
}

// Result summarizes a run.
type Result struct {
	Evals     []EvalPoint
	FinalAcc  float64
	FinalLoss float64

	// Traffic totals across the fabric for the whole run.
	RawBytes  int64
	WireBytes int64

	// Aggregate timing over all workers (the paper's computation-vs-
	// communication split): time in local gradient computation + weight
	// update, time blocked in the gradient exchange, and — a subset of
	// CommSeconds — time receivers sat waiting on peers (the straggler
	// signal, from the fabric's per-link wait counters). Populated by the
	// in-process runners whether or not Options.Obs is set.
	ComputeSeconds       float64
	CommSeconds          float64
	StragglerWaitSeconds float64

	// FinalWeights is worker 0's weight vector (all replicas are identical
	// under the ring algorithm; verified by tests).
	FinalWeights []float32

	// Fallbacks counts mid-run collective degradations (0 or 1: a
	// SwitchReduce run falls back to the ring at most once, and never
	// falls forward again).
	Fallbacks int
	// FallbackDetectSeconds is the latency from fault onset (the start of
	// the exchange that died) to confirmed detection; bounded by the
	// retry budget for hard evidence and by StepTimeout for stalls.
	FallbackDetectSeconds float64
	// FallbackCause is the graded suspect cause ("" when no fallback),
	// e.g. "stall: switch stream stalled: link up, combine never arrived".
	FallbackCause string
}

// Builder constructs a model replica from a seed-derived RNG.
type Builder func(*rand.Rand) *nn.Network

// Run trains for iters iterations and returns the result. The training
// dataset is sharded across workers (the paper's Dᵢ partitions); the test
// dataset is used for evaluation.
func Run(build Builder, trainDS, testDS data.Dataset, iters int, o Options) (Result, error) {
	if o.Workers < 1 {
		return Result{}, fmt.Errorf("train: %d workers", o.Workers)
	}
	if o.BatchPerNode < 1 {
		return Result{}, fmt.Errorf("train: batch per node %d", o.BatchPerNode)
	}
	if o.EvalSamples == 0 {
		o.EvalSamples = 256
	}
	switch o.Algo {
	case Ring:
		return runRing(build, trainDS, testDS, iters, o)
	case WorkerAggregator:
		return runWA(build, trainDS, testDS, iters, o)
	case HierarchicalTree, HierarchicalRing:
		return runHierarchical(build, trainDS, testDS, iters, o)
	case SwitchReduce:
		return runSwitch(build, trainDS, testDS, iters, o)
	default:
		return Result{}, fmt.Errorf("train: unknown algorithm %d", o.Algo)
	}
}

// straggle injects the configured per-iteration compute delay for worker
// id. Callers invoke it inside the worker's compute span so the stall is
// attributed to the compute phase, exactly like genuinely slow hardware.
func (o Options) straggle(id int) {
	if d := o.Straggler[id]; d > 0 {
		time.Sleep(d)
	}
}

// ringOptions returns the ring exchange tuning derived from o for the
// given training iteration (spans recorded inside the exchange are
// attributed to it).
func (o Options) ringOptions(iter int) ring.Options {
	return ring.Options{StepTimeout: o.StepTimeout, ChunkSize: o.ChunkSize, Obs: o.Obs, ObsIter: iter}
}

// nsSeconds sums a per-worker nanosecond tally into seconds.
func nsSeconds(ns []int64) float64 {
	var total int64
	for _, v := range ns {
		total += v
	}
	return time.Duration(total).Seconds()
}

// fabricRecvWaitSeconds sums receive-wait time over every fabric link.
func fabricRecvWaitSeconds(f *comm.Fabric) float64 {
	var total int64
	for i := 0; i < f.N(); i++ {
		for j := 0; j < f.N(); j++ {
			total += f.Stats(i, j).RecvWaitNanos.Load()
		}
	}
	return time.Duration(total).Seconds()
}

// firstError picks the causal failure out of a per-worker error array: the
// worker that hit the real fault, not one that merely observed the
// cancellation it triggered.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || (errors.Is(first, context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = err
		}
	}
	return first
}

// gradTos returns the ToS value for gradient traffic under o.
func (o Options) gradTos() uint8 {
	if o.Compress {
		return comm.ToSCompress
	}
	return 0
}

// checkpointKeep resolves Options.CheckpointKeep: 0 means the default of
// 3, negative disables pruning (GCCheckpoints treats 0 as "keep all").
func (o Options) checkpointKeep() int {
	switch {
	case o.CheckpointKeep == 0:
		return 3
	case o.CheckpointKeep < 0:
		return 0
	}
	return o.CheckpointKeep
}

// finalizer returns the owner-block finalizer for the ring exchange: with
// compression enabled, the node's own fully aggregated block is passed
// through the same NIC codec path every other replica observes (Algorithm
// 1's local compress/decompress, lines 6 and 20), keeping all model
// replicas bit-identical.
func (o Options) finalizer() func([]float32) {
	if !o.Compress || o.Processor == nil {
		return nil
	}
	proc := o.Processor
	return func(b []float32) {
		out, _ := proc.Process(b, comm.ToSCompress)
		copy(b, out)
	}
}

// batchSource abstracts the minibatch stream: data.Loader for the fixed
// runners, data.StepLoader (seekable) for the elastic runner.
type batchSource interface {
	Next() data.Batch
}

// worker is the per-node training state.
type worker struct {
	id       int
	net      *nn.Network
	sgd      *opt.SGD
	loader   batchSource
	grad     []float32
	residual []float32 // error-feedback state (nil unless enabled)
}

func newWorker(id int, build Builder, trainDS data.Dataset, o Options) *worker {
	// All replicas are built from the same seed, so they start identical —
	// the paper's "initialize by the same model weights w0". Data loading
	// uses a per-worker seed over the worker's own shard.
	modelRng := rand.New(rand.NewSource(o.Seed))
	net := build(modelRng)
	shard := data.NewPartition(trainDS, id, o.Workers)
	loader := data.NewLoader(shard, o.BatchPerNode, rand.New(rand.NewSource(o.Seed+int64(1000+id))))
	w := &worker{
		id:     id,
		net:    net,
		sgd:    opt.NewSGD(o.Schedule.Base, o.Momentum, o.WeightDecay),
		loader: loader,
		grad:   make([]float32, 0, net.NumParams()),
	}
	if o.ErrorFeedback && o.Compress && o.Processor != nil {
		w.residual = make([]float32, net.NumParams())
	}
	return w
}

// applyErrorFeedback folds the residual into the gradient, replaces the
// gradient with what the codec will deliver, and stores the new error.
func (w *worker) applyErrorFeedback(o Options) {
	if w.residual == nil {
		return
	}
	for i := range w.grad {
		w.grad[i] += w.residual[i]
	}
	delivered, _ := o.Processor.Process(w.grad, comm.ToSCompress)
	for i := range w.grad {
		w.residual[i] = w.grad[i] - delivered[i]
		w.grad[i] = delivered[i]
	}
}

// localGradient runs one forward/backward pass and fills w.grad with the
// flattened local gradient.
func (w *worker) localGradient() float64 {
	batch := w.loader.Next()
	w.net.ZeroGrads()
	logits := w.net.Forward(batch.X, true)
	var sce nn.SoftmaxCrossEntropy
	loss, dlogits := sce.Loss(logits, batch.Labels)
	w.net.Backward(dlogits)
	w.grad = w.net.GradVector(w.grad[:0])
	return loss
}

// applyAveraged applies the summed gradient (divided by n, the number of
// replicas that contributed) via the local optimizer and runs the optional
// weight transform. The fixed runners always pass o.Workers; the elastic
// runner passes the live member count, renormalizing the average after an
// eviction.
func (w *worker) applyAveraged(iter int, summed []float32, o Options, n int) {
	inv := float32(1) / float32(n)
	for i := range summed {
		summed[i] *= inv
	}
	w.net.SetGradVector(summed)
	w.sgd.LR = o.Schedule.At(iter)
	w.sgd.Step(w.net.Params())
	if o.WeightTransform != nil {
		wv := w.net.WeightVector(nil)
		o.WeightTransform(wv)
		w.net.SetWeightVector(wv)
	}
}

// evaluate measures accuracy and loss on up to n samples of ds.
func evaluate(net *nn.Network, ds data.Dataset, n int) (acc, loss float64) {
	if n > ds.Len() {
		n = ds.Len()
	}
	const evalBatch = 64
	var sce nn.SoftmaxCrossEntropy
	correct, total := 0, 0
	var lossSum float64
	for off := 0; off < n; off += evalBatch {
		hi := off + evalBatch
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-off)
		for i := range idx {
			idx[i] = off + i
		}
		b := data.MakeBatch(ds, idx)
		logits := net.Forward(b.X, false)
		l, _ := sce.Loss(logits, b.Labels)
		lossSum += l * float64(len(idx))
		pred := nn.Predict(logits)
		for i, p := range pred {
			if p == b.Labels[i] {
				correct++
			}
		}
		total += len(idx)
	}
	return float64(correct) / float64(total), lossSum / float64(total)
}

// runRing executes the INCEPTIONN training loop (Algorithm 1): every
// worker exchanges gradients with its ring neighbours; there is no
// aggregator node. A failed exchange on any worker cancels its siblings
// and surfaces as the returned error.
func runRing(build Builder, trainDS, testDS data.Dataset, iters int, o Options) (Result, error) {
	fabric := comm.NewFabric(o.Workers, o.Processor)
	fabric.SetRecorder(o.Obs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var res Result
	var wg sync.WaitGroup
	errs := make([]error, o.Workers)
	computeNs := make([]int64, o.Workers)
	commNs := make([]int64, o.Workers)
	for id := 0; id < o.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWorker(id, build, trainDS, o)
			e := comm.AsCtxPeer(fabric.Endpoint(id))
			iterHist := o.Obs.Histogram("train_iter_seconds")
			lossGauge := o.Obs.Gauge("train_loss")
			for iter := 0; iter < iters; iter++ {
				t0 := time.Now()
				csp := o.Obs.Span(id, iter, obs.PhaseCompute)
				loss := w.localGradient()
				o.straggle(id)
				if o.LocalGradTransform != nil {
					o.LocalGradTransform(w.grad)
				}
				w.applyErrorFeedback(o)
				csp.End()
				if id == 0 && o.GradHook != nil {
					o.GradHook(iter, w.grad)
				}
				tc := time.Now()
				computeNs[id] += tc.Sub(t0).Nanoseconds()
				if err := ring.AllReduceCtx(ctx, e, w.grad, o.gradTos(), o.finalizer(), o.ringOptions(iter)); err != nil {
					errs[id] = fmt.Errorf("train: worker %d iter %d: %w", id, iter, err)
					cancel() // unblock the other workers' ring steps
					return
				}
				tx := time.Now()
				commNs[id] += tx.Sub(tc).Nanoseconds()
				w.applyAveraged(iter, w.grad, o, o.Workers)
				computeNs[id] += time.Since(tx).Nanoseconds()
				o.Health.ObserveStep(id, iter, time.Since(t0))
				if id == 0 {
					iterHist.Observe(time.Since(t0))
					lossGauge.Set(loss)
				}
				if id == 0 && o.EvalEvery > 0 && ((iter+1)%o.EvalEvery == 0 || iter == iters-1) {
					acc, loss := evaluate(w.net, testDS, o.EvalSamples)
					res.Evals = append(res.Evals, EvalPoint{Iter: iter + 1, Accuracy: acc, Loss: loss})
				}
			}
			if id == 0 {
				acc, loss := evaluate(w.net, testDS, o.EvalSamples)
				res.FinalAcc, res.FinalLoss = acc, loss
				res.FinalWeights = w.net.WeightVector(nil)
			}
		}(id)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return Result{}, err
	}
	res.RawBytes = fabric.TotalRawBytes()
	res.WireBytes = fabric.TotalWireBytes()
	res.ComputeSeconds = nsSeconds(computeNs)
	res.CommSeconds = nsSeconds(commNs)
	res.StragglerWaitSeconds = fabricRecvWaitSeconds(fabric)
	return res, nil
}

// runSwitch executes the in-network aggregation loop: node o.Workers is
// the programmable switch's reduction unit (mpi.SwitchServeCtx); every
// worker streams its gradient through it chunk by chunk and receives the
// combined gradient back. The combine is bit-exact with the ring
// collective, so a SwitchReduce run lands on the same weights as a Ring
// run (verified by tests). With o.SwitchFallback the run survives the
// switch's death by falling back to the ring mid-training (see
// switchheal.go); o.Chaos injects deterministic transport faults.
func runSwitch(build Builder, trainDS, testDS data.Dataset, iters int, o Options) (Result, error) {
	if o.SwitchFallback && o.StepTimeout <= 0 {
		return Result{}, fmt.Errorf("train: SwitchFallback requires StepTimeout > 0 (stall detection needs a deadline)")
	}
	fabric := comm.NewFabric(o.Workers+1, o.Processor)
	fabric.SetRecorder(o.Obs)
	var inj *fault.Injector
	if o.Chaos != nil {
		inj = fault.NewInjector(o.Workers+1, *o.Chaos)
	}
	r := newSwitchRun(build, trainDS, testDS, iters, o, o.finalizer())
	defer r.cancel()
	res, err := r.execute(func(id int) (comm.Peer, func()) {
		if inj != nil {
			fp := fault.Wrap(fabric.Endpoint(id), inj, fault.Options{Finalize: o.finalizer()})
			return fp, fp.Close
		}
		return fabric.Endpoint(id), nil
	})
	if err != nil {
		return Result{}, err
	}
	res.RawBytes = fabric.TotalRawBytes()
	res.WireBytes = fabric.TotalWireBytes()
	res.StragglerWaitSeconds = fabricRecvWaitSeconds(fabric)
	return res, nil
}

// runWA executes the conventional worker-aggregator loop (paper Fig. 2):
// node o.Workers is the designated aggregator; it holds the master weights
// and optimizer state, sums the workers' gradients, updates, and
// broadcasts weights. Only the gradient leg is compressible.
func runWA(build Builder, trainDS, testDS data.Dataset, iters int, o Options) (Result, error) {
	fabric := comm.NewFabric(o.Workers+1, o.Processor)
	fabric.SetRecorder(o.Obs)
	aggID := o.Workers
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var res Result
	var wg sync.WaitGroup
	errs := make([]error, o.Workers+1)
	computeNs := make([]int64, o.Workers)
	commNs := make([]int64, o.Workers)

	// Aggregator.
	wg.Add(1)
	go func() {
		defer wg.Done()
		net := build(rand.New(rand.NewSource(o.Seed)))
		sgd := opt.NewSGD(o.Schedule.Base, o.Momentum, o.WeightDecay)
		workers := make([]int, o.Workers)
		for i := range workers {
			workers[i] = i
		}
		gradLen := net.NumParams()
		e := comm.AsCtxPeer(fabric.Endpoint(aggID))
		for iter := 0; iter < iters; iter++ {
			err := ring.AggregateStepCtx(ctx, e, workers, gradLen, func(sum []float32) []float32 {
				inv := float32(1) / float32(o.Workers)
				for i := range sum {
					sum[i] *= inv
				}
				net.SetGradVector(sum)
				sgd.LR = o.Schedule.At(iter)
				sgd.Step(net.Params())
				wv := net.WeightVector(nil)
				if o.WeightTransform != nil {
					o.WeightTransform(wv)
					net.SetWeightVector(wv)
				}
				return wv
			}, o.ringOptions(iter))
			if err != nil {
				errs[aggID] = fmt.Errorf("train: aggregator iter %d: %w", iter, err)
				cancel()
				return
			}
		}
		acc, loss := evaluate(net, testDS, o.EvalSamples)
		res.FinalAcc, res.FinalLoss = acc, loss
		res.FinalWeights = net.WeightVector(nil)
	}()

	for id := 0; id < o.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWorker(id, build, trainDS, o)
			e := comm.AsCtxPeer(fabric.Endpoint(id))
			iterHist := o.Obs.Histogram("train_iter_seconds")
			lossGauge := o.Obs.Gauge("train_loss")
			for iter := 0; iter < iters; iter++ {
				t0 := time.Now()
				csp := o.Obs.Span(id, iter, obs.PhaseCompute)
				loss := w.localGradient()
				o.straggle(id)
				if o.LocalGradTransform != nil {
					o.LocalGradTransform(w.grad)
				}
				w.applyErrorFeedback(o)
				csp.End()
				if id == 0 && o.GradHook != nil {
					o.GradHook(iter, w.grad)
				}
				tc := time.Now()
				computeNs[id] += tc.Sub(t0).Nanoseconds()
				weights, err := ring.WorkerExchangeCtx(ctx, e, aggID, w.grad, o.gradTos())
				if err != nil {
					errs[id] = fmt.Errorf("train: worker %d iter %d: %w", id, iter, err)
					cancel()
					return
				}
				commNs[id] += time.Since(tc).Nanoseconds()
				w.net.SetWeightVector(weights)
				o.Health.ObserveStep(id, iter, time.Since(t0))
				if id == 0 {
					iterHist.Observe(time.Since(t0))
					lossGauge.Set(loss)
				}
				if id == 0 && o.EvalEvery > 0 && ((iter+1)%o.EvalEvery == 0 || iter == iters-1) {
					acc, loss := evaluate(w.net, testDS, o.EvalSamples)
					res.Evals = append(res.Evals, EvalPoint{Iter: iter + 1, Accuracy: acc, Loss: loss})
				}
			}
		}(id)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return Result{}, err
	}
	res.RawBytes = fabric.TotalRawBytes()
	res.WireBytes = fabric.TotalWireBytes()
	res.ComputeSeconds = nsSeconds(computeNs)
	res.CommSeconds = nsSeconds(commNs)
	res.StragglerWaitSeconds = fabricRecvWaitSeconds(fabric)
	return res, nil
}

// runHierarchical executes the multi-level organizations of the paper's
// Fig. 1b (ring groups under a global aggregator) and Fig. 1c (rings at
// every level), via internal/hierarchy.
func runHierarchical(build Builder, trainDS, testDS data.Dataset, iters int, o Options) (Result, error) {
	mode := hierarchy.ModeRingOfLeaders
	if o.Algo == HierarchicalTree {
		mode = hierarchy.ModeAggregatorTree
	}
	topo := hierarchy.Topology{Workers: o.Workers, GroupSize: o.GroupSize, Mode: mode}
	if err := topo.Validate(); err != nil {
		return Result{}, err
	}
	fabric := comm.NewFabric(topo.FabricSize(), o.Processor)
	fabric.SetRecorder(o.Obs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var res Result
	var wg sync.WaitGroup
	errs := make([]error, topo.FabricSize())
	computeNs := make([]int64, o.Workers)
	commNs := make([]int64, o.Workers)

	if mode == hierarchy.ModeAggregatorTree {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gradLen := build(rand.New(rand.NewSource(o.Seed))).NumParams()
			aggID := topo.AggregatorID()
			e := comm.AsCtxPeer(fabric.Endpoint(aggID))
			for iter := 0; iter < iters; iter++ {
				if err := hierarchy.RunAggregatorCtx(ctx, topo, e, gradLen, o.ringOptions(iter)); err != nil {
					errs[aggID] = fmt.Errorf("train: aggregator iter %d: %w", iter, err)
					cancel()
					return
				}
			}
		}()
	}

	for id := 0; id < o.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWorker(id, build, trainDS, o)
			e := comm.AsCtxPeer(fabric.Endpoint(id))
			iterHist := o.Obs.Histogram("train_iter_seconds")
			lossGauge := o.Obs.Gauge("train_loss")
			for iter := 0; iter < iters; iter++ {
				t0 := time.Now()
				csp := o.Obs.Span(id, iter, obs.PhaseCompute)
				loss := w.localGradient()
				o.straggle(id)
				if o.LocalGradTransform != nil {
					o.LocalGradTransform(w.grad)
				}
				w.applyErrorFeedback(o)
				csp.End()
				if id == 0 && o.GradHook != nil {
					o.GradHook(iter, w.grad)
				}
				tc := time.Now()
				computeNs[id] += tc.Sub(t0).Nanoseconds()
				if err := hierarchy.AllReduceCtx(ctx, topo, e, w.grad, o.gradTos(), o.finalizer(), o.ringOptions(iter)); err != nil {
					errs[id] = fmt.Errorf("train: worker %d iter %d: %w", id, iter, err)
					cancel()
					return
				}
				tx := time.Now()
				commNs[id] += tx.Sub(tc).Nanoseconds()
				w.applyAveraged(iter, w.grad, o, o.Workers)
				computeNs[id] += time.Since(tx).Nanoseconds()
				o.Health.ObserveStep(id, iter, time.Since(t0))
				if id == 0 {
					iterHist.Observe(time.Since(t0))
					lossGauge.Set(loss)
				}
				if id == 0 && o.EvalEvery > 0 && ((iter+1)%o.EvalEvery == 0 || iter == iters-1) {
					acc, loss := evaluate(w.net, testDS, o.EvalSamples)
					res.Evals = append(res.Evals, EvalPoint{Iter: iter + 1, Accuracy: acc, Loss: loss})
				}
			}
			if id == 0 {
				acc, loss := evaluate(w.net, testDS, o.EvalSamples)
				res.FinalAcc, res.FinalLoss = acc, loss
				res.FinalWeights = w.net.WeightVector(nil)
			}
		}(id)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return Result{}, err
	}
	res.RawBytes = fabric.TotalRawBytes()
	res.WireBytes = fabric.TotalWireBytes()
	res.ComputeSeconds = nsSeconds(computeNs)
	res.CommSeconds = nsSeconds(commNs)
	res.StragglerWaitSeconds = fabricRecvWaitSeconds(fabric)
	return res, nil
}

// RunSingle trains one replica on the full dataset without any
// communication — the reference for distributed-equivalence tests.
func RunSingle(build Builder, trainDS, testDS data.Dataset, iters int, o Options) Result {
	w := &worker{
		net:    build(rand.New(rand.NewSource(o.Seed))),
		sgd:    opt.NewSGD(o.Schedule.Base, o.Momentum, o.WeightDecay),
		loader: data.NewLoader(trainDS, o.BatchPerNode, rand.New(rand.NewSource(o.Seed+1000))),
	}
	if o.EvalSamples == 0 {
		o.EvalSamples = 256
	}
	var res Result
	for iter := 0; iter < iters; iter++ {
		w.localGradient()
		w.grad = w.net.GradVector(w.grad[:0])
		w.net.SetGradVector(w.grad)
		w.sgd.LR = o.Schedule.At(iter)
		w.sgd.Step(w.net.Params())
	}
	acc, loss := evaluate(w.net, testDS, o.EvalSamples)
	res.FinalAcc, res.FinalLoss = acc, loss
	res.FinalWeights = w.net.WeightVector(nil)
	return res
}

// ReplicaWeights runs ring training and returns every worker's final
// weight vector, for divergence testing.
func ReplicaWeights(build Builder, trainDS data.Dataset, iters int, o Options) ([][]float32, error) {
	if o.Algo != Ring {
		return nil, fmt.Errorf("train: ReplicaWeights requires the ring algorithm")
	}
	fabric := comm.NewFabric(o.Workers, o.Processor)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := make([][]float32, o.Workers)
	errs := make([]error, o.Workers)
	var wg sync.WaitGroup
	for id := 0; id < o.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWorker(id, build, trainDS, o)
			e := comm.AsCtxPeer(fabric.Endpoint(id))
			for iter := 0; iter < iters; iter++ {
				w.localGradient()
				if o.LocalGradTransform != nil {
					o.LocalGradTransform(w.grad)
				}
				w.applyErrorFeedback(o)
				if err := ring.AllReduceCtx(ctx, e, w.grad, o.gradTos(), o.finalizer(), o.ringOptions(iter)); err != nil {
					errs[id] = fmt.Errorf("train: worker %d iter %d: %w", id, iter, err)
					cancel()
					return
				}
				w.applyAveraged(iter, w.grad, o, o.Workers)
			}
			out[id] = w.net.WeightVector(nil)
		}(id)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}
