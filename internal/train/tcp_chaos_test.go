package train

import (
	"context"
	"errors"
	"testing"
	"time"

	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
)

// TestRingTCPTrainingUnderChaos: the full training loop over real sockets
// with 2% drops and 2% corruption on every link must produce bitwise the
// same final weights as the fault-free run — retransmission makes the
// lossy wire invisible to the algorithm.
func TestRingTCPTrainingUnderChaos(t *testing.T) {
	trainDS, testDS := digitsData()
	bound := fpcodec.MustBound(10)
	run := func(chaos *fault.Config) []float32 {
		o := digitsOptions()
		o.StepTimeout = 20 * time.Second
		o.Chaos = chaos
		res, err := RunRingTCP(models.NewHDCSmall, trainDS, testDS, 30, o, bound)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalWeights
	}
	clean := run(nil)
	chaotic := run(&fault.Config{
		Seed:    17,
		Default: fault.LinkFaults{DropRate: 0.02, CorruptRate: 0.02},
	})
	if len(clean) != len(chaotic) {
		t.Fatalf("weight vector lengths differ: %d vs %d", len(clean), len(chaotic))
	}
	for i := range clean {
		if clean[i] != chaotic[i] {
			t.Fatalf("weight %d diverged under chaos: %g != %g", i, chaotic[i], clean[i])
		}
	}
}

// TestRingTCPTrainingPartitionFails: a permanently partitioned link must
// abort the run with a timeout-flavoured error, not hang the job.
func TestRingTCPTrainingPartitionFails(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.StepTimeout = 500 * time.Millisecond
	o.Chaos = &fault.Config{
		Seed:  1,
		Links: map[fault.Link]fault.LinkFaults{{Src: 0, Dst: 1}: fault.Partition(0)},
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunRingTCP(models.NewHDCSmall, trainDS, testDS, 10, o, fpcodec.MustBound(10))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("partitioned training run reported success")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("want a deadline-flavoured error, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("partitioned training run hung")
	}
}
