package train

import (
	"math"
	"testing"

	"inceptionn/internal/comm"
	"inceptionn/internal/data"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
	"inceptionn/internal/opt"
)

func digitsOptions() Options {
	return Options{
		Workers:      4,
		Algo:         Ring,
		BatchPerNode: 16,
		Schedule:     opt.StepSchedule{Base: 0.02, Factor: 5, Every: 200},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         42,
		EvalSamples:  300,
	}
}

func digitsData() (data.Dataset, data.Dataset) {
	return data.NewDigits(4000, 1), data.NewDigits(500, 99)
}

func TestRingTrainingConverges(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	res, err := Run(models.NewHDCSmall, trainDS, testDS, 150, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.9 {
		t.Fatalf("ring training accuracy = %.3f, want > 0.9 (loss %.3f)", res.FinalAcc, res.FinalLoss)
	}
	if res.RawBytes == 0 || res.WireBytes == 0 {
		t.Error("no traffic recorded")
	}
}

func TestWorkerAggregatorTrainingConverges(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Algo = WorkerAggregator
	res, err := Run(models.NewHDCSmall, trainDS, testDS, 150, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.9 {
		t.Fatalf("WA training accuracy = %.3f, want > 0.9", res.FinalAcc)
	}
}

// TestRingReplicasStayIdentical is the paper's model-replica property: with
// the deterministic ring exchange, every worker's weights remain
// bit-identical throughout training — even with lossy compression enabled,
// because all workers apply the same aggregated gradient.
func TestRingReplicasStayIdentical(t *testing.T) {
	trainDS, _ := digitsData()
	for _, compress := range []bool{false, true} {
		o := digitsOptions()
		if compress {
			o.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
			o.Compress = true
		}
		weights, err := ReplicaWeights(models.NewHDCSmall, trainDS, 30, o)
		if err != nil {
			t.Fatal(err)
		}
		for id := 1; id < len(weights); id++ {
			for i := range weights[0] {
				if weights[id][i] != weights[0][i] {
					t.Fatalf("compress=%v: replica %d diverged from replica 0 at weight %d: %g vs %g",
						compress, id, i, weights[id][i], weights[0][i])
				}
			}
		}
	}
}

// TestRingMatchesWorkerAggregatorLossless: both algorithms compute the same
// mathematical update (sum of local gradients); they should reach closely
// matching weights given identical seeds and data.
func TestRingMatchesWorkerAggregatorLossless(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.EvalSamples = 300
	resRing, err := Run(models.NewHDCSmall, trainDS, testDS, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Algo = WorkerAggregator
	resWA, err := Run(models.NewHDCSmall, trainDS, testDS, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	// Floating-point summation order differs (ring reduces blocks in ring
	// order, the aggregator in worker order), and the tiny per-step
	// rounding drift compounds through training, so compare after a short
	// run with a small tolerance.
	var maxDiff float64
	for i := range resRing.FinalWeights {
		d := math.Abs(float64(resRing.FinalWeights[i] - resWA.FinalWeights[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("ring and WA weights diverged by %g after 8 iters", maxDiff)
	}
}

// TestCompressionPreservesConvergence is the core accuracy claim (Figs. 12
// and 14): training with in-NIC lossy compression at error bound 2^-10
// reaches essentially the same accuracy as lossless training.
func TestCompressionPreservesConvergence(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	base, err := Run(models.NewHDCSmall, trainDS, testDS, 300, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
	o.Compress = true
	comp, err := Run(models.NewHDCSmall, trainDS, testDS, 300, o)
	if err != nil {
		t.Fatal(err)
	}
	if comp.FinalAcc < base.FinalAcc-0.05 {
		t.Errorf("compressed accuracy %.3f vs lossless %.3f: degradation exceeds 5%%",
			comp.FinalAcc, base.FinalAcc)
	}
	if comp.WireBytes >= base.WireBytes/2 {
		t.Errorf("compression saved too little: %d vs %d wire bytes", comp.WireBytes, base.WireBytes)
	}
}

func TestCompressionReducesTrafficWAGradLegOnly(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Algo = WorkerAggregator
	base, err := Run(models.NewHDCSmall, trainDS, testDS, 20, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
	o.Compress = true
	comp, err := Run(models.NewHDCSmall, trainDS, testDS, 20, o)
	if err != nil {
		t.Fatal(err)
	}
	// Only the gradient leg (half the raw traffic) compresses: savings must
	// be real but bounded below ~50%.
	if comp.WireBytes >= base.WireBytes {
		t.Error("WA compression saved nothing")
	}
	if comp.WireBytes < base.WireBytes/3 {
		t.Errorf("WA compression saved too much (%d vs %d): weight leg must stay uncompressed",
			comp.WireBytes, base.WireBytes)
	}
}

func TestGradHookObservesGradients(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	count := 0
	var lastLen int
	o.GradHook = func(iter int, grad []float32) {
		count++
		lastLen = len(grad)
	}
	if _, err := Run(models.NewHDCSmall, trainDS, testDS, 10, o); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("hook fired %d times, want 10", count)
	}
	wantLen := 784*128 + 128 + 3*(128*128+128) + 128*10 + 10
	if lastLen != wantLen {
		t.Errorf("gradient length %d, want %d", lastLen, wantLen)
	}
}

func TestLocalGradTransformApplied(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.LocalGradTransform = func(g []float32) {
		for i := range g {
			g[i] = 0 // degenerate: no learning possible
		}
	}
	res, err := Run(models.NewHDCSmall, trainDS, testDS, 30, o)
	if err != nil {
		t.Fatal(err)
	}
	// With zeroed gradients the network cannot beat chance by much.
	if res.FinalAcc > 0.3 {
		t.Errorf("accuracy %.3f with zeroed gradients; transform not applied?", res.FinalAcc)
	}
}

func TestEvalHistory(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.EvalEvery = 20
	res, err := Run(models.NewHDCSmall, trainDS, testDS, 60, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) != 3 {
		t.Fatalf("got %d eval points, want 3", len(res.Evals))
	}
	if res.Evals[2].Iter != 60 {
		t.Errorf("last eval at iter %d", res.Evals[2].Iter)
	}
}

func TestRunValidation(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Workers = 0
	if _, err := Run(models.NewHDCSmall, trainDS, testDS, 1, o); err == nil {
		t.Error("expected error for zero workers")
	}
	o = digitsOptions()
	o.BatchPerNode = 0
	if _, err := Run(models.NewHDCSmall, trainDS, testDS, 1, o); err == nil {
		t.Error("expected error for zero batch")
	}
}

func TestRunSingleConverges(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.BatchPerNode = 64
	res := RunSingle(models.NewHDCSmall, trainDS, testDS, 300, o)
	if res.FinalAcc < 0.9 {
		t.Fatalf("single-node accuracy = %.3f", res.FinalAcc)
	}
}

// TestCodecProcessorEquivalentToNICProcessor: training through the
// software reference codec and through the hardware engine model must
// produce identical results (they are bit-exact by construction).
func TestCodecProcessorEquivalentToNICProcessor(t *testing.T) {
	trainDS, testDS := digitsData()
	bound := fpcodec.MustBound(8)
	o := digitsOptions()
	o.Compress = true
	o.Processor = comm.CodecProcessor{Bound: bound}
	a, err := Run(models.NewHDCSmall, trainDS, testDS, 25, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Processor = nic.Processor{Bound: bound}
	b, err := Run(models.NewHDCSmall, trainDS, testDS, 25, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FinalWeights {
		if a.FinalWeights[i] != b.FinalWeights[i] {
			t.Fatalf("weight %d differs between codec and engine paths", i)
		}
	}
}

// TestHierarchicalTrainingConverges exercises the Fig. 1b/1c organizations
// end to end: 8 workers in two ring groups of four.
func TestHierarchicalTrainingConverges(t *testing.T) {
	trainDS, testDS := digitsData()
	for _, algo := range []Algorithm{HierarchicalTree, HierarchicalRing} {
		o := digitsOptions()
		o.Workers = 8
		o.GroupSize = 4
		o.Algo = algo
		o.BatchPerNode = 8
		res, err := Run(models.NewHDCSmall, trainDS, testDS, 150, o)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.FinalAcc < 0.85 {
			t.Errorf("%v: accuracy %.3f", algo, res.FinalAcc)
		}
	}
}

// TestHierarchicalRingCompressedConverges: Fig. 1c with in-NIC compression
// on every level.
func TestHierarchicalRingCompressedConverges(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Workers = 8
	o.GroupSize = 4
	o.Algo = HierarchicalRing
	o.BatchPerNode = 8
	o.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
	o.Compress = true
	res, err := Run(models.NewHDCSmall, trainDS, testDS, 150, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.85 {
		t.Errorf("accuracy %.3f with hierarchical compression", res.FinalAcc)
	}
	if res.WireBytes >= res.RawBytes/2 {
		t.Errorf("hierarchical compression ineffective: %d vs %d", res.WireBytes, res.RawBytes)
	}
}

func TestHierarchicalValidation(t *testing.T) {
	trainDS, testDS := digitsData()
	o := digitsOptions()
	o.Algo = HierarchicalRing
	o.Workers = 6
	o.GroupSize = 4 // not divisible
	if _, err := Run(models.NewHDCSmall, trainDS, testDS, 1, o); err == nil {
		t.Error("expected topology validation error")
	}
}

// TestErrorFeedbackImprovesCoarseCompression: at the coarse 2^-6 bound,
// residual error feedback should recover accuracy lost to quantization
// (the 1-bit-SGD technique the paper cites as complementary).
func TestErrorFeedbackImprovesCoarseCompression(t *testing.T) {
	trainDS, testDS := digitsData()
	run := func(ef bool) float64 {
		o := digitsOptions()
		o.Processor = nic.Processor{Bound: fpcodec.MustBound(6)}
		o.Compress = true
		o.ErrorFeedback = ef
		res, err := Run(models.NewHDCSmall, trainDS, testDS, 200, o)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalAcc
	}
	plain := run(false)
	withEF := run(true)
	if withEF < plain-0.02 {
		t.Errorf("error feedback hurt: %.3f -> %.3f", plain, withEF)
	}
	t.Logf("coarse-bound accuracy: plain %.3f, with error feedback %.3f", plain, withEF)
}

// TestRingTCPTrainingConverges: end-to-end training over genuine loopback
// TCP sockets, lossless and with in-NIC compression.
func TestRingTCPTrainingConverges(t *testing.T) {
	trainDS, testDS := digitsData()
	bound := fpcodec.MustBound(10)
	for _, compress := range []bool{false, true} {
		o := digitsOptions()
		o.Compress = compress
		res, err := RunRingTCP(models.NewHDCSmall, trainDS, testDS, 120, o, bound)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if res.FinalAcc < 0.85 {
			t.Errorf("compress=%v: TCP training accuracy %.3f", compress, res.FinalAcc)
		}
		if compress && res.WireBytes >= res.RawBytes/2 {
			t.Errorf("TCP compression ineffective: %d wire vs %d raw", res.WireBytes, res.RawBytes)
		}
		if !compress && res.WireBytes < res.RawBytes {
			t.Errorf("lossless TCP moved %d wire < %d raw (framing must add bytes)",
				res.WireBytes, res.RawBytes)
		}
	}
}
