// Command gen_corpus regenerates the checked-in fuzz seed corpus for
// FuzzFrameDecode (testdata/fuzz/FuzzFrameDecode). Run from the
// tcpfabric package directory: go run ./gen_corpus
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func header(kind, tos, flags byte, seq, tag, count, payloadLen, bitLen, crc uint32) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint32(b[0:], 0x494E4350)
	b[4], b[5], b[6] = kind, tos, flags
	binary.LittleEndian.PutUint32(b[8:], seq)
	binary.LittleEndian.PutUint32(b[12:], tag)
	binary.LittleEndian.PutUint32(b[16:], count)
	binary.LittleEndian.PutUint32(b[20:], payloadLen)
	binary.LittleEndian.PutUint32(b[24:], bitLen)
	binary.LittleEndian.PutUint32(b[28:], crc)
	return b
}

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	rawBody := make([]byte, 8)
	binary.LittleEndian.PutUint32(rawBody[0:], 0x3FC00000) // 1.5
	binary.LittleEndian.PutUint32(rawBody[4:], 0xC0100000) // -2.25
	seeds := map[string][]byte{
		"valid_raw": append(
			header(0, 0, 0, 1, 7, 2, 8, 0, crc32.Checksum(rawBody, castagnoli)),
			rawBody...),
		"valid_compressed": append(
			header(0, 0x28, 1, 2, 9, 16, 8, 60, crc32.Checksum(make([]byte, 8), castagnoli)),
			make([]byte, 8)...),
		"valid_ack":          header(1, 0, 0, 3, 0, 0, 0, 0, 0),
		"valid_nack_wantraw": header(2, 0, 4, 4, 0, 0, 0, 0, 0),
		"hostile_lengths":    header(0, 0, 0, 0, 0, 1<<30, 1<<31, 0, 0),
		"raw_size_mismatch":  header(0, 0, 0, 0, 0, 3, 8, 0, 0),
		"bad_kind":           header(37, 0, 0, 0, 0, 0, 0, 0, 0),
		"truncated_header":   {0x50, 0x43, 0x4E, 0x49, 0x00},
	}
	badMagic := header(0, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(badMagic[0:], 0xDEADBEEF)
	seeds["bad_magic"] = badMagic
	reserved := header(1, 0, 0, 0, 0, 0, 0, 0, 0)
	reserved[7] = 0xFF
	seeds["nonzero_reserved"] = reserved

	for name, data := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d corpus seeds to %s\n", len(seeds), dir)
}
