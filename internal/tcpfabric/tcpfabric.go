// Package tcpfabric is a real-TCP implementation of the cluster transport:
// nodes connect over loopback TCP sockets and exchange the same framed
// float32 payloads as the in-process fabric in internal/comm, implementing
// comm.Peer so the ring exchange (Algorithm 1) runs over genuine sockets.
//
// The NIC datapath is applied on the *send* side exactly where the paper's
// hardware sits — between the host and the wire: payloads tagged with
// ToS 0x28 are compressed by the engine model and the *compressed bytes*
// travel over the socket; the receiving side's ingress engine reconstructs
// the floats. Untagged traffic ships raw IEEE-754 bytes.
//
// Wire framing (all little-endian):
//
//	u32 magic      0x494E4350 ("INCP")
//	u8  tos
//	u8  flags      bit0 = compressed payload
//	u32 tag
//	u32 count      float32 values represented
//	u32 payloadLen bytes following
//	u32 bitLen     exact compressed bit count (compressed frames only)
//	... payload
package tcpfabric

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/nic"
)

const frameMagic = 0x494E4350

const flagCompressed = 1

// Cluster is a fully connected set of TCP nodes on the loopback interface.
type Cluster struct {
	n     int
	bound fpcodec.Bound
	useC  bool

	nodes []*Node
}

// Node is one TCP endpoint; it implements comm.Peer.
type Node struct {
	cluster *Cluster
	id      int

	conns  []net.Conn // conns[peer], nil for self
	write  []*bufio.Writer
	wmu    []sync.Mutex
	inbox  []chan frame // inbox[peer]
	closed chan struct{}

	// engines are per-node, as in the hardware (one NIC per host); the
	// mutexes serialize them the way the single AXI stream does.
	ce   *nic.CompressionEngine
	ceMu sync.Mutex
	de   *nic.DecompressionEngine
	deMu sync.Mutex

	sentBytes     int64
	receivedBytes int64
	statsMu       sync.Mutex
}

type frame struct {
	tag     int
	payload []float32
}

// NewCluster starts n nodes on loopback and fully connects them. If
// compress is true, frames sent with ToS 0x28 are codec-compressed on the
// wire using the given error bound.
func NewCluster(n int, compress bool, bound fpcodec.Bound) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("tcpfabric: %d nodes", n)
	}
	c := &Cluster{n: n, bound: bound, useC: compress}

	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("tcpfabric: listen: %w", err)
		}
		listeners[i] = l
	}

	c.nodes = make([]*Node, n)
	for i := range c.nodes {
		node := &Node{
			cluster: c,
			id:      i,
			conns:   make([]net.Conn, n),
			write:   make([]*bufio.Writer, n),
			wmu:     make([]sync.Mutex, n),
			inbox:   make([]chan frame, n),
			closed:  make(chan struct{}),
			ce:      nic.NewCompressionEngine(bound),
			de:      nic.NewDecompressionEngine(bound),
		}
		for p := range node.inbox {
			node.inbox[p] = make(chan frame, 256)
		}
		c.nodes[i] = node
	}

	// Connect each ordered pair (i < j): i dials j and announces itself.
	var acceptErr error
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for k := 0; k < j; k++ { // j accepts one conn from every i < j
				conn, err := listeners[j].Accept()
				if err != nil {
					acceptErr = err
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					acceptErr = err
					return
				}
				i := int(binary.LittleEndian.Uint32(hello[:]))
				c.nodes[j].attach(i, conn)
			}
		}(j)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			conn, err := net.Dial("tcp", listeners[j].Addr().String())
			if err != nil {
				return nil, fmt.Errorf("tcpfabric: dial %d->%d: %w", i, j, err)
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(i))
			if _, err := conn.Write(hello[:]); err != nil {
				return nil, fmt.Errorf("tcpfabric: hello %d->%d: %w", i, j, err)
			}
			c.nodes[i].attach(j, conn)
		}
	}
	wg.Wait()
	for _, l := range listeners {
		l.Close()
	}
	if acceptErr != nil {
		return nil, fmt.Errorf("tcpfabric: accept: %w", acceptErr)
	}
	return c, nil
}

// attach wires a connection to a peer and starts its reader.
func (nd *Node) attach(peer int, conn net.Conn) {
	nd.conns[peer] = conn
	nd.write[peer] = bufio.NewWriterSize(conn, 64<<10)
	go nd.readLoop(peer, conn)
}

// N returns the cluster size.
func (c *Cluster) N() int { return c.n }

// Node returns endpoint id.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Close shuts down every connection.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		select {
		case <-nd.closed:
		default:
			close(nd.closed)
		}
		for _, conn := range nd.conns {
			if conn != nil {
				conn.Close()
			}
		}
	}
}

// ID implements comm.Peer.
func (nd *Node) ID() int { return nd.id }

// N implements comm.Peer.
func (nd *Node) N() int { return nd.cluster.n }

// Send implements comm.Peer: it frames the payload (compressing it through
// this node's egress engine when tagged and compression is enabled) and
// writes it to the peer's socket.
func (nd *Node) Send(dst int, payload []float32, tos uint8, tag int) {
	if dst == nd.id {
		panic("tcpfabric: send to self")
	}
	var header [22]byte
	binary.LittleEndian.PutUint32(header[0:], frameMagic)
	header[4] = tos
	binary.LittleEndian.PutUint32(header[6:], uint32(tag))
	binary.LittleEndian.PutUint32(header[10:], uint32(len(payload)))

	var body []byte
	if nd.cluster.useC && tos == comm.ToSCompress {
		nd.ceMu.Lock()
		data, bits := nd.ce.CompressPayload(payload)
		body = append([]byte(nil), data...) // engine buffer is reused per call
		nd.ceMu.Unlock()
		header[5] = flagCompressed
		binary.LittleEndian.PutUint32(header[14:], uint32(len(body)))
		binary.LittleEndian.PutUint32(header[18:], uint32(bits))
	} else {
		body = make([]byte, 4*len(payload))
		for i, v := range payload {
			binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(v))
		}
		binary.LittleEndian.PutUint32(header[14:], uint32(len(body)))
	}

	nd.wmu[dst].Lock()
	defer nd.wmu[dst].Unlock()
	w := nd.write[dst]
	if _, err := w.Write(header[:]); err != nil {
		panic(fmt.Sprintf("tcpfabric: write header %d->%d: %v", nd.id, dst, err))
	}
	if _, err := w.Write(body); err != nil {
		panic(fmt.Sprintf("tcpfabric: write body %d->%d: %v", nd.id, dst, err))
	}
	if err := w.Flush(); err != nil {
		panic(fmt.Sprintf("tcpfabric: flush %d->%d: %v", nd.id, dst, err))
	}
	nd.statsMu.Lock()
	nd.sentBytes += int64(len(header) + len(body))
	nd.statsMu.Unlock()
}

// Recv implements comm.Peer.
func (nd *Node) Recv(src int, tag int) []float32 {
	select {
	case f := <-nd.inbox[src]:
		if f.tag != tag {
			panic(fmt.Sprintf("tcpfabric: node %d expected tag %d from %d, got %d",
				nd.id, tag, src, f.tag))
		}
		return f.payload
	case <-nd.closed:
		panic(fmt.Sprintf("tcpfabric: node %d recv from %d after close", nd.id, src))
	}
}

// SentBytes returns the total bytes this node wrote to its sockets
// (headers + payloads, post-compression).
func (nd *Node) SentBytes() int64 {
	nd.statsMu.Lock()
	defer nd.statsMu.Unlock()
	return nd.sentBytes
}

// ReceivedBytes returns the total payload-frame bytes read.
func (nd *Node) ReceivedBytes() int64 {
	nd.statsMu.Lock()
	defer nd.statsMu.Unlock()
	return nd.receivedBytes
}

// EngineCycles returns the node's NIC engine cycle counters.
func (nd *Node) EngineCycles() (compress, decompress int64) {
	return nd.ce.Cycles(), nd.de.Cycles()
}

// readLoop parses frames from one peer connection and queues them.
func (nd *Node) readLoop(peer int, conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		var header [22]byte
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return // connection closed
		}
		if binary.LittleEndian.Uint32(header[0:]) != frameMagic {
			panic(fmt.Sprintf("tcpfabric: node %d bad magic from %d", nd.id, peer))
		}
		tos := header[4]
		flags := header[5]
		tag := int(binary.LittleEndian.Uint32(header[6:]))
		count := int(binary.LittleEndian.Uint32(header[10:]))
		payloadLen := int(binary.LittleEndian.Uint32(header[14:]))
		bitLen := int(binary.LittleEndian.Uint32(header[18:]))
		body := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, body); err != nil {
			return
		}
		nd.statsMu.Lock()
		nd.receivedBytes += int64(len(header) + len(body))
		nd.statsMu.Unlock()

		var payload []float32
		if flags&flagCompressed != 0 {
			if tos != comm.ToSCompress {
				panic(fmt.Sprintf("tcpfabric: node %d compressed frame without ToS from %d", nd.id, peer))
			}
			nd.deMu.Lock()
			out, err := nd.de.DecompressPayload(body, bitLen, count)
			nd.deMu.Unlock()
			if err != nil {
				panic(fmt.Sprintf("tcpfabric: node %d decompress from %d: %v", nd.id, peer, err))
			}
			payload = out
		} else {
			if payloadLen != 4*count {
				panic(fmt.Sprintf("tcpfabric: node %d raw frame %dB for %d floats", nd.id, payloadLen, count))
			}
			payload = make([]float32, count)
			for i := range payload {
				payload[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
			}
		}
		select {
		case nd.inbox[peer] <- frame{tag: tag, payload: payload}:
		case <-nd.closed:
			return
		}
	}
}

var _ comm.Peer = (*Node)(nil)
