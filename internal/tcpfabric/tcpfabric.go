// Package tcpfabric is a real-TCP implementation of the cluster transport:
// nodes connect over loopback TCP sockets and exchange the same framed
// float32 payloads as the in-process fabric in internal/comm, implementing
// comm.Peer so the ring exchange (Algorithm 1) runs over genuine sockets.
//
// The NIC datapath is applied on the *send* side exactly where the paper's
// hardware sits — between the host and the wire: payloads tagged with
// ToS 0x28 are compressed by the engine model and the *compressed bytes*
// travel over the socket; the receiving side's ingress engine reconstructs
// the floats. Untagged traffic ships raw IEEE-754 bytes.
//
// The transport is fault tolerant. Every data frame carries a per-link
// sequence number and a CRC32-C of its body (see frame.go for the wire
// layout). The receiver verifies, dedupes, and delivers in order, ACKing
// progress cumulatively; a corrupt frame, a sequence gap, or a receive
// stall triggers a NACK that makes the sender retransmit from its
// per-link buffer, with capped attempts. A compressed frame whose CRC
// validates but whose codec bitstream fails to decode is re-requested as
// a *raw* frame (flagWantRaw): training degrades to an uncompressed hop
// instead of dying — observable via DegradedFrames. Fault injection for
// chaos testing plugs in through ClusterOptions.Chaos (internal/fault);
// faults apply to the data plane only, control frames ride clean TCP.
package tcpfabric

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bufio"

	"inceptionn/internal/comm"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/nic"
	"inceptionn/internal/obs"
)

// Errors surfaced by the fault-tolerant paths.
var (
	// ErrClosed marks an operation on a closed cluster.
	ErrClosed = errors.New("tcpfabric: closed")
	// ErrSendWindow marks a send that would overflow the retransmit
	// buffer (the peer stopped acknowledging).
	ErrSendWindow = errors.New("tcpfabric: send window overflow")
	// ErrRetriesExhausted marks a frame whose retransmission budget ran
	// out.
	ErrRetriesExhausted = errors.New("tcpfabric: retries exhausted")
)

// RetryPolicy tunes the recovery protocol.
type RetryPolicy struct {
	// ProbeRTO is the initial receiver-side stall timeout before it
	// probes the sender with a NACK; it doubles per probe up to MaxRTO.
	// Default 25ms.
	ProbeRTO time.Duration
	// MaxRTO caps the probe backoff. Default 400ms.
	MaxRTO time.Duration
	// MaxAttempts caps transmissions per frame, first try included.
	// Default 32.
	MaxAttempts int
	// Window caps unacknowledged frames per link. Default 4096.
	Window int
	// Jitter spreads each probe interval uniformly over
	// [interval*(1-Jitter), interval]: after a partition heals, every
	// stalled receiver in the cluster is backing off on the same schedule,
	// and without jitter their NACK probes re-synchronize into periodic
	// retry storms that keep colliding on the recovering links. Fraction
	// in [0,1); default 0.25. Negative disables jitter entirely (useful
	// for tests that assert exact probe timing).
	Jitter float64
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.ProbeRTO <= 0 {
		r.ProbeRTO = 25 * time.Millisecond
	}
	if r.MaxRTO <= 0 {
		r.MaxRTO = 400 * time.Millisecond
	}
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 32
	}
	if r.Window <= 0 {
		r.Window = 4096
	}
	if r.Jitter == 0 {
		r.Jitter = 0.25
	}
	if r.Jitter < 0 {
		r.Jitter = 0
	}
	if r.Jitter >= 1 {
		r.Jitter = 0.99
	}
	return r
}

// jitterRTO draws the actual wait for one probe interval: uniform over
// [rto*(1-jitter), rto], keyed deterministically on (node, peer, probe
// count) so a run's probe schedule is reproducible while distinct links
// still desynchronize. The backoff itself stays bounded by MaxRTO — the
// jitter only ever shortens an interval, never extends it.
func jitterRTO(rto time.Duration, jitter float64, id, src int, probe uint64) time.Duration {
	if jitter <= 0 {
		return rto
	}
	h := uint64(id)<<40 ^ uint64(src)<<20 ^ probe
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	u := float64(h>>11) / float64(1<<53)
	return time.Duration(float64(rto) * (1 - jitter*u))
}

// ClusterOptions configures NewClusterWithOptions.
type ClusterOptions struct {
	// Compress enables the NIC engines on ToS 0x28 frames.
	Compress bool
	// Bound is the codec error bound.
	Bound fpcodec.Bound
	// Chaos, if non-nil, injects deterministic faults into the data
	// plane (drops, corruption, truncation, duplication, delay,
	// partitions, crashes).
	Chaos *fault.Injector
	// Retry tunes the recovery protocol; zero values take defaults.
	Retry RetryPolicy
	// Obs, if non-nil, records the transport's recovery counters
	// (tcp_retransmits, tcp_crc_failures, tcp_nacks, tcp_degraded_frames,
	// tcp_backoff_ns), wire-byte counters with the live compression_ratio
	// gauge, and codec phase spans.
	Obs *obs.Recorder
}

// clusterObs holds the cluster's metric handles, resolved once at
// construction so hot paths pay only nil checks and atomic adds.
type clusterObs struct {
	rec         *obs.Recorder
	retransmits *obs.Counter
	crcFailures *obs.Counter
	nacks       *obs.Counter
	degraded    *obs.Counter
	backoffNs   *obs.Counter
	raw         *obs.Counter
	compressed  *obs.Counter
	ratio       *obs.Gauge

	// Running totals behind the ratio gauge (compressed frames only).
	compRawB atomic.Int64
	compOutB atomic.Int64
}

func newClusterObs(rec *obs.Recorder) *clusterObs {
	if rec == nil {
		return nil
	}
	return &clusterObs{
		rec:         rec,
		retransmits: rec.Counter("tcp_retransmits"),
		crcFailures: rec.Counter("tcp_crc_failures"),
		nacks:       rec.Counter("tcp_nacks"),
		degraded:    rec.Counter("tcp_degraded_frames"),
		backoffNs:   rec.Counter("tcp_backoff_ns"),
		raw:         rec.Counter("wire_bytes_raw"),
		compressed:  rec.Counter("wire_bytes_compressed"),
		ratio:       rec.Gauge("compression_ratio"),
	}
}

// observeFrame accounts one data-frame transmission (retransmits
// included — they cross the wire too).
func (o *clusterObs) observeFrame(rawBytes, bodyBytes int64, compressed bool) {
	if o == nil {
		return
	}
	o.raw.Add(rawBytes)
	if !compressed {
		return
	}
	o.compressed.Add(bodyBytes)
	r := o.compRawB.Add(rawBytes)
	c := o.compOutB.Add(bodyBytes)
	if c > 0 {
		o.ratio.Set(float64(r) / float64(c))
	}
}

// Cluster is a fully connected set of TCP nodes on the loopback interface.
type Cluster struct {
	n     int
	bound fpcodec.Bound
	useC  bool
	chaos *fault.Injector
	retry RetryPolicy
	cobs  *clusterObs

	nodes []*Node
}

// Node is one TCP endpoint; it implements comm.Peer and comm.CtxPeer.
type Node struct {
	cluster *Cluster
	id      int

	conns     []net.Conn // conns[peer], nil for self
	write     []*bufio.Writer
	wmu       []sync.Mutex
	inbox     []chan decodedFrame // inbox[peer]: verified in-order data
	out       []outLink           // out[peer]: retransmit state
	in        []inLink            // in[peer]: reorder/dedupe state
	stats     []*comm.LinkStats   // stats[peer]: this node's link counters
	closed    chan struct{}
	closeOnce sync.Once
	errs      chan error // torn frames, protocol violations, dead links

	// engines are per-node, as in the hardware (one NIC per host); the
	// mutexes serialize them the way the single AXI stream does.
	ce   *nic.CompressionEngine
	ceMu sync.Mutex
	de   *nic.DecompressionEngine
	deMu sync.Mutex

	degraded      atomic.Int64
	sentBytes     int64
	receivedBytes int64
	statsMu       sync.Mutex
}

// outLink is the sender side of one directed link: the frames not yet
// cumulatively ACKed, kept for retransmission.
type outLink struct {
	mu   sync.Mutex
	next uint32
	buf  map[uint32]*outFrame
}

// outFrame is one retransmittable frame: the original floats are kept so
// a want-raw NACK can resend the block uncompressed.
type outFrame struct {
	payload  []float32
	tos      uint8
	tag      int
	attempts int
}

// inLink is the receiver side: next expected sequence plus the stash of
// frames that arrived ahead of a retransmitted gap.
type inLink struct {
	mu       sync.Mutex
	expected uint32
	pending  map[uint32]decodedFrame
}

type decodedFrame struct {
	seq     uint32
	tag     int
	payload []float32
}

// maxPending bounds the out-of-order stash per link.
const maxPending = 4096

// NewCluster starts n nodes on loopback and fully connects them. If
// compress is true, frames sent with ToS 0x28 are codec-compressed on the
// wire using the given error bound.
func NewCluster(n int, compress bool, bound fpcodec.Bound) (*Cluster, error) {
	return NewClusterWithOptions(n, ClusterOptions{Compress: compress, Bound: bound})
}

// NewClusterWithOptions starts n nodes with explicit fault-tolerance and
// chaos configuration.
func NewClusterWithOptions(n int, opts ClusterOptions) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("tcpfabric: %d nodes", n)
	}
	c := &Cluster{
		n:     n,
		bound: opts.Bound,
		useC:  opts.Compress,
		chaos: opts.Chaos,
		retry: opts.Retry.withDefaults(),
		cobs:  newClusterObs(opts.Obs),
	}

	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("tcpfabric: listen: %w", err)
		}
		listeners[i] = l
	}

	c.nodes = make([]*Node, n)
	for i := range c.nodes {
		node := &Node{
			cluster: c,
			id:      i,
			conns:   make([]net.Conn, n),
			write:   make([]*bufio.Writer, n),
			wmu:     make([]sync.Mutex, n),
			inbox:   make([]chan decodedFrame, n),
			out:     make([]outLink, n),
			in:      make([]inLink, n),
			stats:   make([]*comm.LinkStats, n),
			closed:  make(chan struct{}),
			errs:    make(chan error, 16),
			ce:      nic.NewCompressionEngine(opts.Bound),
			de:      nic.NewDecompressionEngine(opts.Bound),
		}
		for p := range node.inbox {
			node.inbox[p] = make(chan decodedFrame, 256)
			node.out[p].buf = make(map[uint32]*outFrame)
			node.in[p].pending = make(map[uint32]decodedFrame)
			node.stats[p] = &comm.LinkStats{}
		}
		c.nodes[i] = node
	}

	// Connect each ordered pair (i < j): i dials j and announces itself.
	// The accept goroutines record only the first error, under a mutex —
	// several of them may fail concurrently when a listener dies.
	var (
		acceptMu  sync.Mutex
		acceptErr error
	)
	setAcceptErr := func(err error) {
		acceptMu.Lock()
		if acceptErr == nil {
			acceptErr = err
		}
		acceptMu.Unlock()
	}
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for k := 0; k < j; k++ { // j accepts one conn from every i < j
				conn, err := listeners[j].Accept()
				if err != nil {
					setAcceptErr(err)
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					setAcceptErr(err)
					return
				}
				i := int(binary.LittleEndian.Uint32(hello[:]))
				c.nodes[j].attach(i, conn)
			}
		}(j)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			conn, err := net.Dial("tcp", listeners[j].Addr().String())
			if err != nil {
				return nil, fmt.Errorf("tcpfabric: dial %d->%d: %w", i, j, err)
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(i))
			if _, err := conn.Write(hello[:]); err != nil {
				return nil, fmt.Errorf("tcpfabric: hello %d->%d: %w", i, j, err)
			}
			c.nodes[i].attach(j, conn)
		}
	}
	wg.Wait()
	for _, l := range listeners {
		l.Close()
	}
	acceptMu.Lock()
	defer acceptMu.Unlock()
	if acceptErr != nil {
		return nil, fmt.Errorf("tcpfabric: accept: %w", acceptErr)
	}
	return c, nil
}

// attach wires a connection to a peer and starts its reader.
func (nd *Node) attach(peer int, conn net.Conn) {
	nd.conns[peer] = conn
	nd.write[peer] = bufio.NewWriterSize(conn, 64<<10)
	go nd.readLoop(peer, conn)
}

// N returns the cluster size.
func (c *Cluster) N() int { return c.n }

// Node returns endpoint id.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Close shuts down every connection. It is idempotent and safe to call
// concurrently.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		nd.close()
	}
}

func (nd *Node) close() {
	nd.closeOnce.Do(func() {
		close(nd.closed)
		for _, conn := range nd.conns {
			if conn != nil {
				conn.Close()
			}
		}
	})
}

func (nd *Node) isClosed() bool {
	select {
	case <-nd.closed:
		return true
	default:
		return false
	}
}

// pushErr surfaces a link anomaly on the node's error channel without
// ever blocking the reader.
func (nd *Node) pushErr(err error) {
	select {
	case nd.errs <- err:
	default:
	}
}

// Errors is the node's anomaly channel: torn frames, protocol violations,
// and links whose retransmission budget ran out are reported here,
// distinguishing them from a clean connection close.
func (nd *Node) Errors() <-chan error { return nd.errs }

// LinkStats returns this node's recovery counters for traffic exchanged
// with peer: NACKs issued, retransmissions performed, degraded frames
// accepted, and receive-wait time (straggler detection).
func (nd *Node) LinkStats(peer int) *comm.LinkStats { return nd.stats[peer] }

// DegradedFrames counts compressed frames this node had to re-request and
// accept as raw after a codec decode failure.
func (nd *Node) DegradedFrames() int64 { return nd.degraded.Load() }

// ID implements comm.Peer.
func (nd *Node) ID() int { return nd.id }

// N implements comm.Peer.
func (nd *Node) N() int { return nd.cluster.n }

// Send implements comm.Peer by panicking on unrecoverable transport
// errors, preserving the legacy contract.
func (nd *Node) Send(dst int, payload []float32, tos uint8, tag int) {
	if err := nd.SendCtx(context.Background(), dst, payload, tos, tag); err != nil {
		panic(fmt.Sprintf("tcpfabric: send %d->%d: %v", nd.id, dst, err))
	}
}

// Recv implements comm.Peer.
func (nd *Node) Recv(src int, tag int) []float32 {
	out, err := nd.RecvCtx(context.Background(), src, tag)
	if err != nil {
		panic(fmt.Sprintf("tcpfabric: recv %d<-%d: %v", nd.id, src, err))
	}
	return out
}

var _ comm.CtxPeer = (*Node)(nil)

// SendCtx frames the payload, registers it in the per-link retransmit
// buffer, and transmits it. The frame stays buffered until the receiver's
// cumulative ACK covers it, so NACKs (corruption, gaps, stalls, want-raw
// degradation) can be served from here.
func (nd *Node) SendCtx(ctx context.Context, dst int, payload []float32, tos uint8, tag int) error {
	if dst == nd.id {
		return fmt.Errorf("tcpfabric: node %d send to self", nd.id)
	}
	if nd.isClosed() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if ch := nd.cluster.chaos; ch != nil && ch.RecordSend(nd.id) {
		return fmt.Errorf("tcpfabric: node %d: %w", nd.id, fault.ErrCrashed)
	}
	ol := &nd.out[dst]
	ol.mu.Lock()
	if len(ol.buf) >= nd.cluster.retry.Window {
		ol.mu.Unlock()
		return fmt.Errorf("tcpfabric: %d->%d: %w", nd.id, dst, ErrSendWindow)
	}
	seq := ol.next
	ol.next++
	of := &outFrame{payload: append([]float32(nil), payload...), tos: tos, tag: tag}
	ol.buf[seq] = of
	ol.mu.Unlock()
	return nd.transmit(dst, seq, of, false)
}

// transmit encodes and writes one frame (fresh send or retransmission),
// applying the chaos verdict for this attempt. raw forces an uncompressed
// body (the degraded fallback).
func (nd *Node) transmit(dst int, seq uint32, of *outFrame, raw bool) error {
	ol := &nd.out[dst]
	ol.mu.Lock()
	attempt := of.attempts
	of.attempts++
	ol.mu.Unlock()
	cobs := nd.cluster.cobs
	if attempt > 0 {
		nd.stats[dst].Retransmits.Add(1)
		if cobs != nil {
			cobs.retransmits.Add(1)
		}
	}

	h := frameHeader{
		kind:  kindData,
		tos:   of.tos,
		seq:   seq,
		tag:   uint32(of.tag),
		count: uint32(len(of.payload)),
	}
	var body []byte
	if nd.cluster.useC && of.tos == comm.ToSCompress && !raw {
		var sp obs.ActiveSpan
		if cobs != nil {
			sp = cobs.rec.Span(nd.id, -1, obs.PhaseCompress)
		}
		nd.ceMu.Lock()
		data, bits := nd.ce.CompressPayload(of.payload)
		body = append([]byte(nil), data...) // engine buffer is reused per call
		nd.ceMu.Unlock()
		sp.End()
		h.flags |= flagCompressed
		h.bitLen = uint32(bits)
	} else {
		body = encodeRawPayload(of.payload)
		if raw {
			h.flags |= flagRawFallback
		}
	}

	// Chaos injection, data plane only. Truncation happens before the CRC
	// is computed (a glitching engine), corruption after (on-wire damage).
	var v fault.Verdict
	v.CorruptBit = -1
	if ch := nd.cluster.chaos; ch != nil {
		v = ch.Decide(nd.id, dst, uint64(seq), attempt)
	}
	if v.Delay > 0 {
		select {
		case <-time.After(v.Delay):
		case <-nd.closed:
			return ErrClosed
		}
	}
	if v.TruncateBytes > 0 && h.flags&flagCompressed != 0 && len(body) > v.TruncateBytes {
		// A glitching engine emits a short bitstream: the frame stays
		// well-formed (bitLen clamped to the body it actually carries) and
		// CRC-valid, but the codec runs out of bits mid-group and fails,
		// driving the receiver's raw-fallback path.
		body = body[:len(body)-v.TruncateBytes]
		if h.bitLen > 8*uint32(len(body)) {
			h.bitLen = 8 * uint32(len(body))
		}
	}
	h.payloadLen = uint32(len(body))
	h.crc = bodyCRC(body)
	if v.CorruptBit >= 0 && len(body) > 0 {
		body = append([]byte(nil), body...)
		bit := v.CorruptBit % (8 * len(body))
		body[bit/8] ^= 1 << (bit % 8)
	}
	cobs.observeFrame(4*int64(len(of.payload)), int64(len(body)), h.flags&flagCompressed != 0)
	if v.Drop {
		return nil // the frame "left" but never hits the wire
	}
	writes := 1
	if v.Duplicate {
		writes = 2
	}
	for w := 0; w < writes; w++ {
		if err := nd.writeFrame(dst, h, body); err != nil {
			return err
		}
	}
	return nil
}

// writeFrame serializes one frame onto the peer's socket.
func (nd *Node) writeFrame(dst int, h frameHeader, body []byte) error {
	header := encodeHeader(h)
	nd.wmu[dst].Lock()
	defer nd.wmu[dst].Unlock()
	if nd.isClosed() {
		return ErrClosed
	}
	w := nd.write[dst]
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("tcpfabric: write header %d->%d: %w", nd.id, dst, err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("tcpfabric: write body %d->%d: %w", nd.id, dst, err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("tcpfabric: flush %d->%d: %w", nd.id, dst, err)
	}
	nd.statsMu.Lock()
	nd.sentBytes += int64(len(header) + len(body))
	nd.statsMu.Unlock()
	return nil
}

// sendCtl emits an ACK or NACK. Control frames bypass chaos injection:
// the fault model is a lossy data plane under a reliable control plane.
func (nd *Node) sendCtl(dst int, kind uint8, seq uint32, wantRaw bool) {
	h := frameHeader{kind: kind, seq: seq}
	if wantRaw {
		h.flags |= flagWantRaw
	}
	if err := nd.writeFrame(dst, h, nil); err != nil && !nd.isClosed() {
		nd.pushErr(err)
	}
}

// RecvCtx returns the next in-order verified payload from src. While
// stalled it probes the sender with NACKs for the expected frame (with
// bounded, jittered exponential backoff) so a dropped frame or lost NACK
// is recovered; the context deadline bounds the total wait, turning a
// permanent partition into an error instead of a hang.
func (nd *Node) RecvCtx(ctx context.Context, src int, tag int) ([]float32, error) {
	payload, got, err := nd.RecvMessageCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	if got != tag {
		return nil, fmt.Errorf("tcpfabric: node %d expected tag %d from %d, got %d",
			nd.id, tag, src, got)
	}
	return payload, nil
}

// RecvMessageCtx returns the next in-order verified payload from src along
// with its tag, leaving tag interpretation to the caller. It is the
// demultiplexing receive the elastic layer's epoch-filtering peer needs
// (elastic.Transport): a reconfigured ring inspects each frame's tag band
// and discards residue of aborted exchanges instead of failing on it.
// Same recovery behavior as RecvCtx: stalls probe the sender with NACKs
// under bounded, jittered exponential backoff.
func (nd *Node) RecvMessageCtx(ctx context.Context, src int) ([]float32, int, error) {
	start := time.Now()
	retry := nd.cluster.retry
	rto := retry.ProbeRTO
	var probes uint64
	for {
		timer := time.NewTimer(jitterRTO(rto, retry.Jitter, nd.id, src, probes))
		select {
		case f := <-nd.inbox[src]:
			timer.Stop()
			nd.stats[src].ObserveRecvWait(time.Since(start).Nanoseconds())
			return f.payload, f.tag, nil
		case <-timer.C:
			// Stall: re-request the next expected frame in case it (or a
			// NACK for it) was dropped. A probe for a frame the sender has
			// not produced yet is ignored on the far side.
			il := &nd.in[src]
			il.mu.Lock()
			exp := il.expected
			il.mu.Unlock()
			if cobs := nd.cluster.cobs; cobs != nil {
				// The expired probe interval is time spent backing off.
				cobs.backoffNs.Add(rto.Nanoseconds())
				cobs.nacks.Add(1)
			}
			nd.sendCtl(src, kindNack, exp, false)
			probes++
			if rto *= 2; rto > retry.MaxRTO {
				rto = retry.MaxRTO
			}
		case <-ctx.Done():
			timer.Stop()
			nd.stats[src].Timeouts.Add(1)
			return nil, 0, fmt.Errorf("tcpfabric: recv %d<-%d after %v: %w",
				nd.id, src, time.Since(start).Round(time.Millisecond), ctx.Err())
		case <-nd.closed:
			timer.Stop()
			return nil, 0, fmt.Errorf("tcpfabric: node %d recv from %d: %w", nd.id, src, ErrClosed)
		}
	}
}

// SentBytes returns the total bytes this node wrote to its sockets
// (headers + payloads, post-compression, control frames included).
func (nd *Node) SentBytes() int64 {
	nd.statsMu.Lock()
	defer nd.statsMu.Unlock()
	return nd.sentBytes
}

// ReceivedBytes returns the total frame bytes read.
func (nd *Node) ReceivedBytes() int64 {
	nd.statsMu.Lock()
	defer nd.statsMu.Unlock()
	return nd.receivedBytes
}

// EngineCycles returns the node's NIC engine cycle counters.
func (nd *Node) EngineCycles() (compress, decompress int64) {
	return nd.ce.Cycles(), nd.de.Cycles()
}

// readLoop parses frames from one peer connection, dispatching data
// frames through the verify/dedupe/reorder machinery and control frames
// to the retransmit state. A clean close (EOF at a frame boundary, or a
// local Close) ends the loop silently; a torn frame or protocol violation
// is surfaced on the node's error channel first.
func (nd *Node) readLoop(peer int, conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		var header [frameHeaderLen]byte
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err != io.EOF && !nd.isClosed() {
				nd.pushErr(fmt.Errorf("tcpfabric: node %d torn header from %d: %w", nd.id, peer, err))
			}
			return
		}
		h, err := decodeHeader(header[:])
		if err != nil {
			// The stream is desynchronized beyond recovery.
			nd.pushErr(fmt.Errorf("tcpfabric: node %d from %d: %w", nd.id, peer, err))
			return
		}
		body := make([]byte, h.payloadLen)
		if _, err := io.ReadFull(r, body); err != nil {
			if !nd.isClosed() {
				nd.pushErr(fmt.Errorf("tcpfabric: node %d torn frame body from %d (%d/%dB): %w",
					nd.id, peer, 0, h.payloadLen, err))
			}
			return
		}
		nd.statsMu.Lock()
		nd.receivedBytes += int64(len(header) + len(body))
		nd.statsMu.Unlock()

		switch h.kind {
		case kindAck:
			nd.handleAck(peer, h.seq)
		case kindNack:
			nd.handleNack(peer, h.seq, h.flags&flagWantRaw != 0)
		case kindData:
			if !nd.handleData(peer, h, body) {
				return
			}
		}
	}
}

// handleAck prunes the retransmit buffer up to the cumulative ack.
func (nd *Node) handleAck(peer int, seq uint32) {
	ol := &nd.out[peer]
	ol.mu.Lock()
	for k := range ol.buf {
		if k <= seq {
			delete(ol.buf, k)
		}
	}
	ol.mu.Unlock()
}

// handleNack retransmits the requested frame from the buffer — raw if the
// receiver's codec failed on it — respecting the attempt cap.
func (nd *Node) handleNack(peer int, seq uint32, wantRaw bool) {
	ol := &nd.out[peer]
	ol.mu.Lock()
	of, ok := ol.buf[seq]
	exhausted := ok && of.attempts >= nd.cluster.retry.MaxAttempts
	ol.mu.Unlock()
	if !ok {
		// Either already delivered+acked, or a stall probe for a frame
		// this node has not sent yet. Both are safely ignored.
		return
	}
	if exhausted {
		nd.pushErr(fmt.Errorf("tcpfabric: frame %d->%d seq %d: %w",
			nd.id, peer, seq, ErrRetriesExhausted))
		return
	}
	if err := nd.transmit(peer, seq, of, wantRaw); err != nil && !nd.isClosed() {
		nd.pushErr(err)
	}
}

// handleData verifies, decodes, dedupes, and delivers one data frame,
// ACKing progress and NACKing anomalies. It returns false only when the
// node is shutting down.
func (nd *Node) handleData(peer int, h frameHeader, body []byte) bool {
	cobs := nd.cluster.cobs
	if bodyCRC(body) != h.crc {
		nd.stats[peer].Nacks.Add(1)
		if cobs != nil {
			cobs.crcFailures.Add(1)
			cobs.nacks.Add(1)
		}
		nd.sendCtl(peer, kindNack, h.seq, false)
		return true
	}
	var payload []float32
	if h.flags&flagCompressed != 0 {
		if h.tos != comm.ToSCompress {
			nd.pushErr(fmt.Errorf("tcpfabric: node %d compressed frame without ToS from %d", nd.id, peer))
			return false
		}
		var sp obs.ActiveSpan
		if cobs != nil {
			sp = cobs.rec.Span(nd.id, -1, obs.PhaseDecompress)
		}
		nd.deMu.Lock()
		out, err := nd.de.DecompressPayload(body, int(h.bitLen), int(h.count))
		nd.deMu.Unlock()
		sp.End()
		if err != nil {
			// The bits survived the wire (CRC ok) but the codec cannot
			// decode them — a glitching engine. Degrade: re-request the
			// block raw so training continues uncompressed for this hop.
			nd.stats[peer].Nacks.Add(1)
			if cobs != nil {
				cobs.nacks.Add(1)
			}
			nd.sendCtl(peer, kindNack, h.seq, true)
			return true
		}
		payload = out
	} else {
		out, err := decodeRawPayload(h, body)
		if err != nil {
			nd.stats[peer].Nacks.Add(1)
			if cobs != nil {
				cobs.nacks.Add(1)
			}
			nd.sendCtl(peer, kindNack, h.seq, false)
			return true
		}
		payload = out
		if h.flags&flagRawFallback != 0 {
			nd.degraded.Add(1)
			nd.stats[peer].Degraded.Add(1)
			if cobs != nil {
				cobs.degraded.Add(1)
			}
		}
	}

	il := &nd.in[peer]
	il.mu.Lock()
	var deliver []decodedFrame
	switch {
	case h.seq == il.expected:
		deliver = append(deliver, decodedFrame{seq: h.seq, tag: int(h.tag), payload: payload})
		il.expected++
		for {
			next, ok := il.pending[il.expected]
			if !ok {
				break
			}
			delete(il.pending, il.expected)
			deliver = append(deliver, next)
			il.expected++
		}
	case h.seq > il.expected:
		// A gap: an earlier frame was dropped. Stash this one and
		// re-request the missing frame.
		if len(il.pending) < maxPending {
			il.pending[h.seq] = decodedFrame{seq: h.seq, tag: int(h.tag), payload: payload}
		}
		gap := il.expected
		il.mu.Unlock()
		nd.stats[peer].Nacks.Add(1)
		if cobs != nil {
			cobs.nacks.Add(1)
		}
		nd.sendCtl(peer, kindNack, gap, false)
		return true
	default:
		// Duplicate of an already-delivered frame: refresh the ACK so a
		// sender stuck on a lost ACK converges, but never deliver twice.
		acked := il.expected - 1
		il.mu.Unlock()
		nd.sendCtl(peer, kindAck, acked, false)
		return true
	}
	acked := il.expected - 1
	il.mu.Unlock()

	nd.sendCtl(peer, kindAck, acked, false)
	for _, d := range deliver {
		select {
		case nd.inbox[peer] <- d:
		case <-nd.closed:
			return false
		}
	}
	return true
}
