package tcpfabric

import (
	"testing"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/obs"
)

// TestChaosCountersUnderCorruption: a compressed ring AllReduce under
// injected drops and corruption must surface its recovery work in the
// attached recorder — retransmits and CRC failures both nonzero, wire
// accounting populated, and the live compression-ratio gauge above 1.
func TestChaosCountersUnderCorruption(t *testing.T) {
	const n, dim = 4, 1000
	bound := fpcodec.MustBound(10)
	inputs := chaosInputs(n, dim, 3)
	proc := comm.CodecProcessor{Bound: bound}
	finalize := func(b []float32) {
		out, _ := proc.Process(b, comm.ToSCompress)
		copy(b, out)
	}

	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, obs.NewTracer(4096))
	cluster, err := NewClusterWithOptions(n, ClusterOptions{
		Compress: true,
		Bound:    bound,
		Obs:      rec,
		Chaos: fault.NewInjector(n, fault.Config{
			Seed:    9,
			Default: fault.LinkFaults{DropRate: 0.05, CorruptRate: 0.05},
		}),
		Retry: RetryPolicy{ProbeRTO: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	runChaosRing(t, cluster, inputs, comm.ToSCompress, finalize, 60*time.Second)

	snap := reg.Snapshot()
	counter := func(name string) int64 {
		v, ok := snap[name].(int64)
		if !ok {
			t.Fatalf("metric %q missing or not a counter: %#v", name, snap[name])
		}
		return v
	}
	if counter("tcp_retransmits") == 0 {
		t.Error("tcp_retransmits = 0 under 5% drops + 5% corruption")
	}
	if counter("tcp_crc_failures") == 0 {
		t.Error("tcp_crc_failures = 0 under 5% corruption")
	}
	if counter("tcp_nacks") == 0 {
		t.Error("tcp_nacks = 0 under injected corruption")
	}
	// wire_bytes_raw still moves on a compressed run: ACK/NACK control
	// frames always travel uncompressed.
	if counter("wire_bytes_raw") == 0 {
		t.Error("wire_bytes_raw = 0; control frames should be accounted")
	}
	if counter("wire_bytes_compressed") == 0 {
		t.Error("wire_bytes_compressed = 0 after a compressed exchange")
	}
	ratio, ok := snap["compression_ratio"].(float64)
	if !ok || ratio <= 1 {
		t.Errorf("compression_ratio = %v, want > 1", snap["compression_ratio"])
	}
	// The recorder's tracer must hold the transport codec spans.
	var sawCompress bool
	for _, s := range rec.Tracer().Snapshot() {
		if s.Phase == obs.PhaseCompress {
			sawCompress = true
			break
		}
	}
	if !sawCompress {
		t.Error("tracer recorded no compress spans from the NIC engine path")
	}
}
