package tcpfabric

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/ring"
)

func TestClusterConstruction(t *testing.T) {
	c, err := NewCluster(4, false, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	for i := 0; i < 4; i++ {
		if c.Node(i).ID() != i || c.Node(i).N() != 4 {
			t.Fatalf("node %d misconfigured", i)
		}
	}
}

func TestSendRecvOverTCP(t *testing.T) {
	c, err := NewCluster(2, false, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := []float32{1.5, -2.25, 0, 1e-8, 12345}
	go c.Node(0).Send(1, want, 0, 42)
	got := c.Node(1).Recv(0, 42)
	if len(got) != len(want) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: %g != %g", i, got[i], want[i])
		}
	}
	if c.Node(0).SentBytes() == 0 || c.Node(1).ReceivedBytes() == 0 {
		t.Error("byte counters not updated")
	}
}

func TestCompressedFramesSmallerOnWire(t *testing.T) {
	bound := fpcodec.MustBound(10)
	payload := make([]float32, 8192)
	for i := range payload {
		payload[i] = 1e-5
	}

	raw, err := NewCluster(2, false, bound)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go raw.Node(0).Send(1, payload, comm.ToSCompress, 1)
	raw.Node(1).Recv(0, 1)
	rawBytes := raw.Node(0).SentBytes()

	comp, err := NewCluster(2, true, bound)
	if err != nil {
		t.Fatal(err)
	}
	defer comp.Close()
	go comp.Node(0).Send(1, payload, comm.ToSCompress, 1)
	got := comp.Node(1).Recv(0, 1)
	compBytes := comp.Node(0).SentBytes()

	if compBytes >= rawBytes/8 {
		t.Errorf("compressed wire bytes %d vs raw %d: expected > 8x reduction", compBytes, rawBytes)
	}
	for i := range payload {
		if math.Abs(float64(got[i])-float64(payload[i])) > bound.MaxError() {
			t.Fatalf("value %d out of bound", i)
		}
	}
	ce, de := comp.Node(0).EngineCycles()
	if ce == 0 {
		t.Error("sender compression engine idle")
	}
	_ = de
	if _, de1 := comp.Node(1).EngineCycles(); de1 == 0 {
		t.Error("receiver decompression engine idle")
	}
}

func TestUntaggedBypassesEnginesEvenWhenEnabled(t *testing.T) {
	bound := fpcodec.MustBound(6)
	c, err := NewCluster(2, true, bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := []float32{1e-5, 2e-5} // would be crushed by the codec
	go c.Node(0).Send(1, payload, 0, 3)
	got := c.Node(1).Recv(0, 3)
	if got[0] != 1e-5 || got[1] != 2e-5 {
		t.Fatalf("untagged payload modified: %v", got)
	}
	if ce, _ := c.Node(0).EngineCycles(); ce != 0 {
		t.Error("engine ran on untagged traffic")
	}
}

// TestRingAllReduceOverRealTCP runs Algorithm 1 over genuine sockets.
func TestRingAllReduceOverRealTCP(t *testing.T) {
	for _, compress := range []bool{false, true} {
		bound := fpcodec.MustBound(10)
		c, err := NewCluster(4, compress, bound)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		inputs := make([][]float32, 4)
		want := make([]float64, 1000)
		for i := range inputs {
			inputs[i] = make([]float32, 1000)
			for j := range inputs[i] {
				inputs[i][j] = float32(rng.NormFloat64() * 0.01)
				want[j] += float64(inputs[i][j])
			}
		}
		tos := uint8(0)
		var finalize func([]float32)
		if compress {
			tos = comm.ToSCompress
			proc := comm.CodecProcessor{Bound: bound}
			finalize = func(b []float32) {
				out, _ := proc.Process(b, comm.ToSCompress)
				copy(b, out)
			}
		}
		out := make([][]float32, 4)
		var wg sync.WaitGroup
		for id := 0; id < 4; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				g := append([]float32(nil), inputs[id]...)
				ring.AllReduce(c.Node(id), g, tos, finalize)
				out[id] = g
			}(id)
		}
		wg.Wait()
		c.Close()

		tol := 0.0
		if compress {
			tol = bound.MaxError() * 6 // up to 2(n-1) lossy hops
		}
		for node := range out {
			for j := range want {
				if math.Abs(float64(out[node][j])-want[j]) > tol+1e-6 {
					t.Fatalf("compress=%v node %d elem %d: got %g want %g",
						compress, node, j, out[node][j], want[j])
				}
			}
		}
		// Replica identity must hold over TCP too.
		for node := 1; node < 4; node++ {
			for j := range out[0] {
				if out[node][j] != out[0][j] {
					t.Fatalf("compress=%v: node %d diverged at %d", compress, node, j)
				}
			}
		}
	}
}

func TestConcurrentBidirectionalTraffic(t *testing.T) {
	c, err := NewCluster(4, false, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			nd := c.Node(id)
			for round := 0; round < 30; round++ {
				for peer := 0; peer < 4; peer++ {
					if peer != id {
						nd.Send(peer, []float32{float32(id), float32(round)}, 0, round)
					}
				}
				for peer := 0; peer < 4; peer++ {
					if peer == id {
						continue
					}
					m := nd.Recv(peer, round)
					if int(m[0]) != peer || int(m[1]) != round {
						t.Errorf("node %d: bad frame %v from %d", id, m, peer)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, false, fpcodec.MustBound(10)); err == nil {
		t.Error("expected error for zero nodes")
	}
}

func TestEmptyPayload(t *testing.T) {
	c, err := NewCluster(2, true, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Node(0).Send(1, []float32{}, 0, 9)
	got := c.Node(1).Recv(0, 9)
	if len(got) != 0 {
		t.Fatalf("got %d values for empty payload", len(got))
	}
}
