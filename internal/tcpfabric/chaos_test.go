package tcpfabric

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/ring"
)

// runChaosRing executes a 4-node ring AllReduce over the cluster and
// returns every node's result vector, failing the test on any error.
func runChaosRing(t *testing.T, c *Cluster, inputs [][]float32, tos uint8, finalize func([]float32), timeout time.Duration) [][]float32 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	n := c.N()
	out := make([][]float32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := append([]float32(nil), inputs[id]...)
			errs[id] = ring.AllReduceCtx(ctx, c.Node(id), g, tos, finalize, ring.Options{})
			out[id] = g
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	return out
}

func chaosInputs(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = make([]float32, dim)
		for j := range inputs[i] {
			inputs[i][j] = float32(rng.NormFloat64() * 0.01)
		}
	}
	return inputs
}

// TestChaosRingAllReduceCompressed is the acceptance chaos test: a 4-node
// TCP ring AllReduce with compression enabled, under 5% injected frame
// corruption plus 5% drops, must complete with the exact sums a
// fault-free run produces — the retransmit path repairs every anomaly
// bit-exactly.
func TestChaosRingAllReduceCompressed(t *testing.T) {
	const n, dim = 4, 1000
	bound := fpcodec.MustBound(10)
	inputs := chaosInputs(n, dim, 1)
	proc := comm.CodecProcessor{Bound: bound}
	finalize := func(b []float32) {
		out, _ := proc.Process(b, comm.ToSCompress)
		copy(b, out)
	}

	reference, err := NewCluster(n, true, bound)
	if err != nil {
		t.Fatal(err)
	}
	want := runChaosRing(t, reference, inputs, comm.ToSCompress, finalize, 30*time.Second)
	reference.Close()

	chaotic, err := NewClusterWithOptions(n, ClusterOptions{
		Compress: true,
		Bound:    bound,
		Chaos: fault.NewInjector(n, fault.Config{
			Seed:    42,
			Default: fault.LinkFaults{DropRate: 0.05, CorruptRate: 0.05},
		}),
		Retry: RetryPolicy{ProbeRTO: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer chaotic.Close()
	got := runChaosRing(t, chaotic, inputs, comm.ToSCompress, finalize, 60*time.Second)

	for node := range got {
		for j := range got[node] {
			if got[node][j] != want[node][j] {
				t.Fatalf("node %d elem %d: chaos run %g != fault-free %g",
					node, j, got[node][j], want[node][j])
			}
		}
	}
	var retransmits, nacks int64
	for id := 0; id < n; id++ {
		for p := 0; p < n; p++ {
			retransmits += chaotic.Node(id).LinkStats(p).Retransmits.Load()
			nacks += chaotic.Node(id).LinkStats(p).Nacks.Load()
		}
	}
	if retransmits == 0 {
		t.Error("retransmit path was not exercised at 5%+5% fault rates")
	}
	if nacks == 0 {
		t.Error("no NACKs issued under injected corruption")
	}
}

// TestChaosRingAllReduceRaw repeats the chaos run without compression:
// raw frames must also survive drops and corruption bit-exactly.
func TestChaosRingAllReduceRaw(t *testing.T) {
	const n, dim = 4, 500
	bound := fpcodec.MustBound(10)
	inputs := chaosInputs(n, dim, 2)

	reference, err := NewCluster(n, false, bound)
	if err != nil {
		t.Fatal(err)
	}
	want := runChaosRing(t, reference, inputs, 0, nil, 30*time.Second)
	reference.Close()

	chaotic, err := NewClusterWithOptions(n, ClusterOptions{
		Bound: bound,
		Chaos: fault.NewInjector(n, fault.Config{
			Seed:    7,
			Default: fault.LinkFaults{DropRate: 0.05, CorruptRate: 0.05, DupRate: 0.03},
		}),
		Retry: RetryPolicy{ProbeRTO: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer chaotic.Close()
	got := runChaosRing(t, chaotic, inputs, 0, nil, 60*time.Second)
	for node := range got {
		for j := range got[node] {
			if got[node][j] != want[node][j] {
				t.Fatalf("node %d elem %d diverged under chaos", node, j)
			}
		}
	}
}

// TestDecompressionFailureFallsBackToRaw forces an engine glitch: the
// compressed body is truncated before the CRC is computed, so the frame
// passes the integrity check but fails to decode. The receiver must
// re-request it raw, deliver the exact payload, and count the
// degradation.
func TestDecompressionFailureFallsBackToRaw(t *testing.T) {
	bound := fpcodec.MustBound(10)
	c, err := NewClusterWithOptions(2, ClusterOptions{
		Compress: true,
		Bound:    bound,
		Chaos: fault.NewInjector(2, fault.Config{
			Seed: 5,
			Links: map[fault.Link]fault.LinkFaults{
				// Glitch only the first transmission on 0→1; the raw
				// retransmission is exempt (truncation targets compressed
				// bodies, and the schedule window ends at seq 1).
				{Src: 0, Dst: 1}: {TruncateRate: 1, Until: 1},
			},
		}),
		Retry: RetryPolicy{ProbeRTO: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]float32, 2048)
	rng := rand.New(rand.NewSource(3))
	for i := range payload {
		payload[i] = float32(rng.NormFloat64())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		_ = c.Node(0).SendCtx(ctx, 1, payload, comm.ToSCompress, 1)
	}()
	got, err := c.Node(1).RecvCtx(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The raw fallback ships the original IEEE-754 bits: exact.
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("elem %d: %g != %g (raw fallback must be exact)", i, got[i], payload[i])
		}
	}
	if d := c.Node(1).DegradedFrames(); d != 1 {
		t.Errorf("DegradedFrames = %d, want 1", d)
	}
	if c.Node(1).LinkStats(0).Degraded.Load() != 1 {
		t.Error("per-link degraded counter not incremented")
	}
}

// TestPermanentPartitionTimesOut: a blackholed link must turn into a
// deadline error on the starved receiver, not a hang.
func TestPermanentPartitionTimesOut(t *testing.T) {
	const n = 4
	c, err := NewClusterWithOptions(n, ClusterOptions{
		Bound: fpcodec.MustBound(10),
		Chaos: fault.NewInjector(n, fault.Config{
			Seed:  1,
			Links: map[fault.Link]fault.LinkFaults{{Src: 1, Dst: 2}: fault.Partition(0)},
		}),
		Retry: RetryPolicy{ProbeRTO: 10 * time.Millisecond, MaxAttempts: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	inputs := chaosInputs(n, 64, 4)
	errs := make([]error, n)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := append([]float32(nil), inputs[id]...)
			errs[id] = ring.AllReduceCtx(ctx, c.Node(id), g, 0, nil, ring.Options{StepTimeout: time.Second})
		}(id)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("partitioned ring AllReduce hung")
	}
	// Node 2 receives from node 1 over the blackholed link: it must see a
	// timeout, and the stall must cascade into errors elsewhere too.
	if errs[2] == nil || !errors.Is(errs[2], context.DeadlineExceeded) {
		t.Errorf("node 2: want deadline exceeded, got %v", errs[2])
	}
	if c.Node(2).LinkStats(1).Timeouts.Load() == 0 {
		t.Error("timeout not recorded on the partitioned link's stats")
	}
}

// TestStragglerLinkObservable: a link with injected delay must show up in
// the receiver's LinkStats wait counters.
func TestStragglerLinkObservable(t *testing.T) {
	c, err := NewClusterWithOptions(2, ClusterOptions{
		Bound: fpcodec.MustBound(10),
		Chaos: fault.NewInjector(2, fault.Config{
			Seed: 1,
			Links: map[fault.Link]fault.LinkFaults{
				{Src: 0, Dst: 1}: {DelayRate: 1, Delay: 40 * time.Millisecond},
			},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { _ = c.Node(0).SendCtx(ctx, 1, []float32{1, 2}, 0, 0) }()
	if _, err := c.Node(1).RecvCtx(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	if w := c.Node(1).LinkStats(0).MaxRecvWaitNanos.Load(); w < (25 * time.Millisecond).Nanoseconds() {
		t.Errorf("straggler peak wait %v, want >= 25ms", time.Duration(w))
	}
}

// TestTornFrameSurfacesError: garbage on the wire must surface on the
// receiver's error channel, never panic it, and be distinguishable from a
// clean close.
func TestTornFrameSurfacesError(t *testing.T) {
	c, err := NewCluster(2, false, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Bypass the protocol: write a full header's worth of garbage straight
	// onto node 0's socket to node 1.
	garbage := make([]byte, frameHeaderLen)
	for i := range garbage {
		garbage[i] = 0xAB
	}
	if _, err := c.Node(0).conns[1].Write(garbage); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-c.Node(1).Errors():
		if err == nil {
			t.Fatal("nil error on anomaly channel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bad magic did not surface on the error channel")
	}
}

func TestTornBodySurfacesError(t *testing.T) {
	c, err := NewCluster(2, false, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A valid data header promising 400 body bytes, then the connection
	// dies mid-frame.
	h := encodeHeader(frameHeader{kind: kindData, seq: 0, tag: 1, count: 100, payloadLen: 400})
	conn := c.Node(0).conns[1]
	if _, err := conn.Write(h[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case err := <-c.Node(1).Errors():
		if err == nil {
			t.Fatal("nil error on anomaly channel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("torn body did not surface on the error channel")
	}
}

func TestCleanCloseIsSilent(t *testing.T) {
	c, err := NewCluster(2, false, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case err := <-c.Node(0).Errors():
		t.Fatalf("clean close surfaced %v", err)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	c, err := NewCluster(3, false, fpcodec.MustBound(10))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Close() }()
	}
	wg.Wait()
	c.Close() // and once more after the dust settles
}

// TestNodeCrashSchedule: a node past its crash budget fails its own sends
// and the survivors' deadlines fire.
func TestNodeCrashSchedule(t *testing.T) {
	const n = 3
	c, err := NewClusterWithOptions(n, ClusterOptions{
		Bound: fpcodec.MustBound(10),
		Chaos: fault.NewInjector(n, fault.Config{
			Seed:       1,
			CrashAfter: map[int]uint64{1: 1},
		}),
		Retry: RetryPolicy{ProbeRTO: 10 * time.Millisecond, MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := []float32{1, 2, 3}
			errs[id] = ring.AllReduceCtx(ctx, c.Node(id), g, 0, nil, ring.Options{})
		}(id)
	}
	wg.Wait()
	if !errors.Is(errs[1], fault.ErrCrashed) {
		t.Errorf("crashed node: want ErrCrashed, got %v", errs[1])
	}
}
