package tcpfabric

import (
	"encoding/binary"
	"testing"
)

// fuzzSeed builds a full frame (header ++ body) for the seed corpus.
func fuzzSeed(h frameHeader, body []byte) []byte {
	hb := encodeHeader(h)
	return append(hb[:], body...)
}

// FuzzFrameDecode feeds arbitrary bytes through the header validator and,
// when the header passes, the raw payload decoder. The invariants:
// decoding never panics, and hostile length fields are rejected before
// they can drive an allocation (an accepted data header is capped at
// maxFrameFloats/maxFrameBytes).
func FuzzFrameDecode(f *testing.F) {
	// Valid raw data frame carrying two floats.
	rawBody := encodeRawPayload([]float32{1.5, -2.25})
	f.Add(fuzzSeed(frameHeader{
		kind: kindData, seq: 1, tag: 7, count: 2,
		payloadLen: uint32(len(rawBody)), crc: bodyCRC(rawBody),
	}, rawBody))
	// Valid compressed data frame shape (body is opaque to the decoder).
	f.Add(fuzzSeed(frameHeader{
		kind: kindData, tos: 0x28, flags: flagCompressed,
		seq: 2, tag: 9, count: 16, payloadLen: 8, bitLen: 60,
		crc: bodyCRC(make([]byte, 8)),
	}, make([]byte, 8)))
	// Control frames.
	f.Add(fuzzSeed(frameHeader{kind: kindAck, seq: 3}, nil))
	f.Add(fuzzSeed(frameHeader{kind: kindNack, flags: flagWantRaw, seq: 4}, nil))
	// Hostile: payloadLen and count claim gigabytes.
	hostile := encodeHeader(frameHeader{
		kind: kindData, count: 1 << 30, payloadLen: 1 << 31,
	})
	f.Add(hostile[:])
	// Hostile: raw sizing mismatch (count*4 != payloadLen).
	mismatch := encodeHeader(frameHeader{kind: kindData, count: 3, payloadLen: 8})
	f.Add(mismatch[:])
	// Bad magic, bad kind, nonzero reserved byte.
	bad := encodeHeader(frameHeader{kind: kindData})
	binary.LittleEndian.PutUint32(bad[0:], 0xDEADBEEF)
	f.Add(bad[:])
	badKind := encodeHeader(frameHeader{kind: 37})
	f.Add(badKind[:])
	reserved := encodeHeader(frameHeader{kind: kindAck})
	reserved[7] = 0xFF
	f.Add(reserved[:])
	// Truncated header.
	f.Add([]byte{0x50, 0x43, 0x4E, 0x49, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHeader(data)
		if err != nil {
			return // rejected before any allocation: the safe outcome
		}
		// Accepted headers must respect the hostility limits.
		if h.kind == kindData {
			if h.count > maxFrameFloats || h.payloadLen > maxFrameBytes {
				t.Fatalf("hostile lengths accepted: count=%d payloadLen=%d", h.count, h.payloadLen)
			}
			if h.flags&flagCompressed == 0 && h.payloadLen != 4*h.count {
				t.Fatalf("inconsistent raw sizing accepted: count=%d payloadLen=%d", h.count, h.payloadLen)
			}
		} else if h.payloadLen != 0 {
			t.Fatalf("control frame with body accepted: %d bytes", h.payloadLen)
		}
		body := data[frameHeaderLen:]
		if uint32(len(body)) > h.payloadLen {
			body = body[:h.payloadLen]
		}
		// The CRC guards delivery, not parsing: run the raw decoder even on
		// mismatched checksums — it must error on bad sizes, never panic.
		if h.kind == kindData && h.flags&flagCompressed == 0 {
			vals, err := decodeRawPayload(h, body)
			if err == nil && uint32(len(vals)) != h.count {
				t.Fatalf("decoded %d floats, header said %d", len(vals), h.count)
			}
		}
	})
}
