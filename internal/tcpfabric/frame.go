package tcpfabric

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Wire frame v2 (all little-endian). The 32-byte header is followed by
// payloadLen body bytes whose CRC32-C is carried in the header, so the
// receiver can detect on-wire corruption and NACK the frame instead of
// trusting it.
//
//	off  field
//	  0  u32 magic      0x494E4350 ("INCP")
//	  4  u8  kind       0 data, 1 ack, 2 nack
//	  5  u8  tos
//	  6  u8  flags      bit0 compressed, bit1 raw-fallback, bit2 want-raw
//	  7  u8  reserved   must be zero
//	  8  u32 seq        per-link frame sequence number
//	 12  u32 tag
//	 16  u32 count      float32 values represented (data frames)
//	 20  u32 payloadLen body bytes following
//	 24  u32 bitLen     exact compressed bit count (compressed frames)
//	 28  u32 crc        CRC32-C of the body bytes
const (
	frameMagic     = 0x494E4350
	frameHeaderLen = 32
)

// Frame kinds.
const (
	kindData = 0
	kindAck  = 1
	kindNack = 2
)

// Frame flags.
const (
	flagCompressed  = 1 << 0 // body is a codec bitstream
	flagRawFallback = 1 << 1 // data resent uncompressed after a decode failure
	flagWantRaw     = 1 << 2 // NACK requests the retransmission uncompressed
)

// Hostility limits: a frame advertising more than these is rejected during
// header validation, before any allocation, so a corrupt or malicious
// length field can never trigger an OOM-sized make().
const (
	maxFrameFloats = 1 << 24 // 16M float32 = 64 MiB decoded
	maxFrameBytes  = 1 << 26 // 64 MiB on the wire
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// bodyCRC is the integrity checksum carried in every frame header.
func bodyCRC(body []byte) uint32 { return crc32.Checksum(body, castagnoli) }

// frameHeader is the decoded fixed-size header.
type frameHeader struct {
	kind       uint8
	tos        uint8
	flags      uint8
	seq        uint32
	tag        uint32
	count      uint32
	payloadLen uint32
	bitLen     uint32
	crc        uint32
}

// encodeHeader serializes h.
func encodeHeader(h frameHeader) [frameHeaderLen]byte {
	var b [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(b[0:], frameMagic)
	b[4] = h.kind
	b[5] = h.tos
	b[6] = h.flags
	binary.LittleEndian.PutUint32(b[8:], h.seq)
	binary.LittleEndian.PutUint32(b[12:], h.tag)
	binary.LittleEndian.PutUint32(b[16:], h.count)
	binary.LittleEndian.PutUint32(b[20:], h.payloadLen)
	binary.LittleEndian.PutUint32(b[24:], h.bitLen)
	binary.LittleEndian.PutUint32(b[28:], h.crc)
	return b
}

// decodeHeader parses and validates a frame header. Every anomaly — wrong
// magic, unknown kind, hostile lengths, inconsistent raw sizing — returns
// an error; the function never panics and never commits the caller to an
// allocation larger than maxFrameBytes.
func decodeHeader(b []byte) (frameHeader, error) {
	var h frameHeader
	if len(b) < frameHeaderLen {
		return h, fmt.Errorf("tcpfabric: short header: %d bytes", len(b))
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != frameMagic {
		return h, fmt.Errorf("tcpfabric: bad magic %#x", m)
	}
	h.kind = b[4]
	h.tos = b[5]
	h.flags = b[6]
	if b[7] != 0 {
		return h, fmt.Errorf("tcpfabric: nonzero reserved byte %#x", b[7])
	}
	h.seq = binary.LittleEndian.Uint32(b[8:])
	h.tag = binary.LittleEndian.Uint32(b[12:])
	h.count = binary.LittleEndian.Uint32(b[16:])
	h.payloadLen = binary.LittleEndian.Uint32(b[20:])
	h.bitLen = binary.LittleEndian.Uint32(b[24:])
	h.crc = binary.LittleEndian.Uint32(b[28:])

	switch h.kind {
	case kindAck, kindNack:
		if h.payloadLen != 0 {
			return h, fmt.Errorf("tcpfabric: control frame with %d-byte body", h.payloadLen)
		}
		return h, nil
	case kindData:
	default:
		return h, fmt.Errorf("tcpfabric: unknown frame kind %d", h.kind)
	}
	if h.count > maxFrameFloats {
		return h, fmt.Errorf("tcpfabric: hostile count %d", h.count)
	}
	if h.payloadLen > maxFrameBytes {
		return h, fmt.Errorf("tcpfabric: hostile payloadLen %d", h.payloadLen)
	}
	if h.flags&flagCompressed != 0 {
		if uint64(h.bitLen) > 8*uint64(h.payloadLen) {
			return h, fmt.Errorf("tcpfabric: bitLen %d exceeds body %dB", h.bitLen, h.payloadLen)
		}
	} else if h.payloadLen != 4*h.count {
		return h, fmt.Errorf("tcpfabric: raw frame %dB for %d floats", h.payloadLen, h.count)
	}
	return h, nil
}

// decodeRawPayload converts a raw (uncompressed) data frame body into
// float32 values. The header has already been validated, so the sizes are
// consistent; a short body (possible only when a caller bypasses header
// validation, e.g. the fuzzer) is an error rather than a panic.
func decodeRawPayload(h frameHeader, body []byte) ([]float32, error) {
	if len(body) != int(h.payloadLen) || len(body) != 4*int(h.count) {
		return nil, fmt.Errorf("tcpfabric: raw body %dB, want %d", len(body), 4*h.count)
	}
	out := make([]float32, h.count)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return out, nil
}

// encodeRawPayload serializes floats as a raw frame body.
func encodeRawPayload(payload []float32) []byte {
	body := make([]byte, 4*len(payload))
	for i, v := range payload {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(v))
	}
	return body
}
