package trainsim

import (
	"math"
	"testing"

	"inceptionn/internal/models"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.Workers = 1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for 1 worker")
	}
}

func TestTableIIIRatios(t *testing.T) {
	// Sanity of the paper-derived ratios: all within the codec's possible
	// range (1, 16], monotone in the relaxation of the bound.
	for name, rows := range PaperTableIII {
		for e, row := range rows {
			r := row.Ratio()
			if r <= 1 || r > 16 {
				t.Errorf("%s E=%d: ratio %g out of range", name, e, r)
			}
		}
		if !(rows[6].Ratio() > rows[8].Ratio() && rows[8].Ratio() > rows[10].Ratio()) {
			t.Errorf("%s: ratios not monotone in bound: %g %g %g",
				name, rows[10].Ratio(), rows[8].Ratio(), rows[6].Ratio())
		}
	}
	// Spot value: AlexNet at 2^-10 has mean bits 2·0.749+10·0.039+18·0.211+34·0.001.
	want := 2*0.749 + 10*0.039 + 18*0.211 + 34*0.001
	if got := PaperTableIII["AlexNet"][10].AverageBits(); math.Abs(got-want) > 1e-9 {
		t.Errorf("AverageBits = %g, want %g", got, want)
	}
}

func TestCompressionRatioFallback(t *testing.T) {
	if r := CompressionRatio(models.ResNet152, 10); r != 8 {
		t.Errorf("fallback ratio = %g, want 8", r)
	}
	if r := CompressionRatio(models.AlexNet, 12); r != 8 {
		t.Errorf("unknown bound ratio = %g, want 8", r)
	}
}

// TestCommShareMatchesTableII: the simulated WA communication share must
// land near the paper's >70% for every evaluated model (Fig. 3b).
func TestCommShareMatchesTableII(t *testing.T) {
	c := Default()
	for _, spec := range models.Evaluated() {
		share := c.CommShare(spec)
		paper := spec.Breakdown.Communicate / spec.Breakdown.Total()
		if share < 0.55 || share > 0.95 {
			t.Errorf("%s: simulated share %.2f implausible (paper %.2f)", spec.Name, share, paper)
		}
	}
	// The large models must sit above 70% as in the paper.
	for _, spec := range []models.Spec{models.AlexNet, models.ResNet50} {
		if share := c.CommShare(spec); share < 0.70 {
			t.Errorf("%s: share %.2f < 0.70", spec.Name, share)
		}
	}
}

// TestFig12Ordering: for every model the four systems must order
// WA > WA+C > INC > INC+C in total training time, as in Fig. 12.
func TestFig12Ordering(t *testing.T) {
	c := Default()
	for _, spec := range models.Evaluated() {
		var prev float64 = math.Inf(1)
		for _, sys := range Systems() {
			total := c.IterTime(sys, spec).Total()
			if total > prev {
				t.Errorf("%s: %v (%.4f) slower than previous system (%.4f)",
					spec.Name, sys, total, prev)
			}
			prev = total
		}
	}
}

// TestFig12SpeedupBand: the full system's speedup over WA must fall in the
// paper's reported 2.2-3.1x band (±30% slack for the simulated substrate).
func TestFig12SpeedupBand(t *testing.T) {
	c := Default()
	for _, spec := range models.Evaluated() {
		s := c.Speedup(INCC, spec)
		if s < 1.6 || s > 4.5 {
			t.Errorf("%s: INC+C speedup %.2f outside the plausible band", spec.Name, s)
		}
	}
	// The communication-bound large models should exceed 2x.
	for _, spec := range []models.Spec{models.AlexNet, models.ResNet50} {
		if s := c.Speedup(INCC, spec); s < 2 {
			t.Errorf("%s: speedup %.2f < 2", spec.Name, s)
		}
	}
}

// TestCommunicationReductionBands reproduces the abstract's headline: the
// full system reduces communication time by 70.9-80.7% vs WA.
func TestCommunicationReductionBands(t *testing.T) {
	c := Default()
	for _, spec := range models.Evaluated() {
		wa := c.ExchangeTime(WA, spec)
		incc := c.ExchangeTime(INCC, spec)
		red := 1 - incc/wa
		if red < 0.65 || red > 0.92 {
			t.Errorf("%s: communication reduction %.1f%%, paper band 70.9-80.7%%",
				spec.Name, 100*red)
		}
	}
}

// TestFig13SpeedupSameAccuracy: with the measured 1-2 extra epochs the
// speedup must stay within the paper's 2.2-3.1x band (with slack).
func TestFig13SpeedupSameAccuracy(t *testing.T) {
	c := Default()
	for _, spec := range models.Evaluated() {
		s := c.SpeedupSameAccuracy(spec)
		plain := c.Speedup(INCC, spec)
		if s >= plain {
			t.Errorf("%s: same-accuracy speedup %.2f not below same-epoch %.2f",
				spec.Name, s, plain)
		}
		if s < 1.5 || s > 4.5 {
			t.Errorf("%s: same-accuracy speedup %.2f implausible", spec.Name, s)
		}
	}
}

// TestFig15Scalability: WA exchange grows near-linearly 4→8 nodes; INC
// stays nearly flat.
func TestFig15Scalability(t *testing.T) {
	for _, spec := range models.Evaluated() {
		c4 := Default()
		c8 := Default()
		c8.Workers = 8
		wa4, wa8 := c4.ExchangeTime(WA, spec), c8.ExchangeTime(WA, spec)
		inc4, inc8 := c4.ExchangeTime(INC, spec), c8.ExchangeTime(INC, spec)
		if wa8 < 1.5*wa4 {
			t.Errorf("%s: WA exchange 4→8 grew only %.2fx", spec.Name, wa8/wa4)
		}
		if inc8 > 1.35*inc4 {
			t.Errorf("%s: INC exchange 4→8 grew %.2fx, expected near-flat", spec.Name, inc8/inc4)
		}
	}
}

// TestFig7SoftwareCompressionHurts: software codecs must inflate total
// training time (the paper reports 2-4x for Snappy and SZ).
func TestFig7SoftwareCompressionHurts(t *testing.T) {
	c := Default()
	for _, spec := range []models.Spec{models.AlexNet, models.HDC} {
		for _, codec := range DefaultSoftwareCodecs() {
			f := c.Fig7Factor(spec, codec)
			if codec.Name == "Snappy" || codec.Name == "SZ" {
				if f < 1.05 {
					t.Errorf("%s/%s: factor %.2f, software compression should hurt",
						spec.Name, codec.Name, f)
				}
				if spec.Name == "AlexNet" && (f < 1.3 || f > 6) {
					t.Errorf("AlexNet/%s: factor %.2f outside the paper's 2-4x region",
						codec.Name, f)
				}
			}
		}
	}
}

// TestInNICCompressionDoesNotHurt: unlike Fig. 7's software codecs, the
// NIC-offloaded codec must strictly help.
func TestInNICCompressionDoesNotHurt(t *testing.T) {
	c := Default()
	for _, spec := range models.Evaluated() {
		if c.IterTime(INCC, spec).Total() >= c.IterTime(INC, spec).Total() {
			t.Errorf("%s: INC+C not faster than INC", spec.Name)
		}
		if c.IterTime(WAC, spec).Total() >= c.IterTime(WA, spec).Total() {
			t.Errorf("%s: WA+C not faster than WA", spec.Name)
		}
	}
}

// TestRelaxedBoundMarginalGains: Fig. 12's observation that going from
// 2^-10 to 2^-6 barely moves the INC+C time (the per-packet floor binds).
func TestRelaxedBoundMarginalGains(t *testing.T) {
	c10 := Default()
	c6 := Default()
	c6.BoundExp = 6
	for _, spec := range models.Evaluated() {
		t10 := c10.ExchangeTime(INCC, spec)
		t6 := c6.ExchangeTime(INCC, spec)
		if t6 > t10 {
			t.Errorf("%s: relaxing the bound increased time", spec.Name)
		}
		if (t10-t6)/t10 > 0.30 {
			t.Errorf("%s: relaxing 2^-10→2^-6 gained %.0f%%, expected marginal",
				spec.Name, 100*(t10-t6)/t10)
		}
	}
}

// TestHierarchicalExchange: the Fig. 1b/1c organizations must order
// correctly (1c < 1b < flat WA at 16 workers), and compression must help
// both.
func TestHierarchicalExchange(t *testing.T) {
	c := Default()
	flat := Default()
	flat.Workers = 16
	wa := flat.ExchangeTime(WA, models.ResNet50)
	tree := c.HierarchicalExchangeTime(models.ResNet50, 4, 4, true, false)
	rings := c.HierarchicalExchangeTime(models.ResNet50, 4, 4, false, false)
	if !(rings < tree && tree < wa) {
		t.Errorf("ordering violated: rings=%g tree=%g flatWA=%g", rings, tree, wa)
	}
	treeC := c.HierarchicalExchangeTime(models.ResNet50, 4, 4, true, true)
	ringsC := c.HierarchicalExchangeTime(models.ResNet50, 4, 4, false, true)
	if treeC >= tree || ringsC >= rings {
		t.Errorf("compression did not help: tree %g->%g rings %g->%g", tree, treeC, rings, ringsC)
	}
}
