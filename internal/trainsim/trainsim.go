// Package trainsim reproduces the paper's end-to-end training-time numbers
// by combining (a) the compute-time calibration taken from the paper's own
// Table II (forward/backward/copy/update seconds measured on the Titan Xp
// testbed — constants across the compared systems), (b) the network
// simulator in internal/netsim, and (c) the codec's measured compression
// ratios. It produces the data behind Fig. 3b, Table II's communication
// column, Fig. 12, Fig. 13, and Fig. 15.
package trainsim

import (
	"fmt"

	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
)

// System identifies one of the four compared configurations of Fig. 12.
type System int

// The four systems of Fig. 12.
const (
	// WA is the conventional worker-aggregator baseline.
	WA System = iota
	// WAC is WA with in-NIC compression on the (only compressible)
	// gradient leg.
	WAC
	// INC is the INCEPTIONN gradient-centric algorithm without compression.
	INC
	// INCC is the full INCEPTIONN system: ring exchange + in-NIC
	// compression on both legs.
	INCC
)

// String implements fmt.Stringer using the paper's labels.
func (s System) String() string {
	switch s {
	case WA:
		return "WA"
	case WAC:
		return "WA+C"
	case INC:
		return "INC"
	default:
		return "INC+C"
	}
}

// Systems lists all four configurations in the paper's presentation order.
func Systems() []System { return []System{WA, WAC, INC, INCC} }

// TableIIIRow is the bitwidth distribution of compressed gradients for one
// model at one error bound — one row of the paper's Table III. Fractions
// are of {2, 10, 18, 34}-bit encodings (tag + data).
type TableIIIRow struct {
	F2, F10, F18, F34 float64
}

// AverageBits returns the mean encoded bits per gradient value.
func (r TableIIIRow) AverageBits() float64 {
	return 2*r.F2 + 10*r.F10 + 18*r.F18 + 34*r.F34
}

// Ratio returns the implied compression ratio (32 bits / average bits).
func (r TableIIIRow) Ratio() float64 { return 32 / r.AverageBits() }

// PaperTableIII holds the paper's measured bitwidth distributions,
// indexed by model name and error-bound exponent.
var PaperTableIII = map[string]map[int]TableIIIRow{
	"AlexNet": {
		10: {F2: 0.749, F10: 0.039, F18: 0.211, F34: 0.001},
		8:  {F2: 0.825, F10: 0.148, F18: 0.026, F34: 0.001},
		6:  {F2: 0.930, F10: 0.070, F18: 0.000, F34: 0.001},
	},
	"HDC": {
		10: {F2: 0.920, F10: 0.065, F18: 0.015, F34: 0.000},
		8:  {F2: 0.957, F10: 0.034, F18: 0.009, F34: 0.000},
		6:  {F2: 0.981, F10: 0.016, F18: 0.004, F34: 0.000},
	},
	"ResNet-50": {
		10: {F2: 0.816, F10: 0.179, F18: 0.005, F34: 0.000},
		8:  {F2: 0.923, F10: 0.077, F18: 0.001, F34: 0.000},
		6:  {F2: 0.976, F10: 0.024, F18: 0.000, F34: 0.000},
	},
	"VGG-16": {
		10: {F2: 0.942, F10: 0.009, F18: 0.049, F34: 0.000},
		8:  {F2: 0.962, F10: 0.038, F18: 0.000, F34: 0.000},
		6:  {F2: 0.973, F10: 0.027, F18: 0.000, F34: 0.000},
	},
}

// CompressionRatio returns the model's gradient compression ratio at the
// given error-bound exponent, derived from the paper's Table III. Models
// or bounds absent from the table fall back to a conservative ratio of 8.
func CompressionRatio(spec models.Spec, boundExp int) float64 {
	if rows, ok := PaperTableIII[spec.Name]; ok {
		if row, ok := rows[boundExp]; ok {
			return row.Ratio()
		}
	}
	return 8
}

// Config parameterizes the simulation.
type Config struct {
	Net      netsim.Params
	Workers  int
	BoundExp int // codec error-bound exponent for the +C systems
}

// Default returns the paper's setup: four workers, 10 GbE, bound 2^-10.
func Default() Config {
	return Config{Net: netsim.Default10GbE(), Workers: 4, BoundExp: 10}
}

// Breakdown is a simulated per-iteration time split (seconds).
type Breakdown struct {
	Compute  float64 // forward + backward + copy + update (calibrated)
	Exchange float64 // communication + distributed summation (simulated)
}

// Total returns the per-iteration wall-clock time.
func (b Breakdown) Total() float64 { return b.Compute + b.Exchange }

// computePerIter returns the calibrated local-computation seconds per
// iteration (Table II rows that do not involve the network or summation).
func computePerIter(spec models.Spec) float64 {
	b := spec.Breakdown
	return (b.Forward + b.Backward + b.GPUCopy + b.Update) / 100
}

// IterTime simulates one training iteration of the given system.
func (c Config) IterTime(sys System, spec models.Spec) Breakdown {
	n := spec.ParamBytes
	blk := netsim.RingBlockBytes(n, c.Workers)
	ratio := CompressionRatio(spec, c.BoundExp)
	var ex netsim.Exchange
	switch sys {
	case WA:
		ex = c.Net.WorkerAggregator(c.Workers, n, netsim.Plain(n), netsim.Plain(n))
	case WAC:
		// Only the worker→aggregator gradient leg is compressible.
		ex = c.Net.WorkerAggregator(c.Workers, n, netsim.NICCompressed(n, ratio), netsim.Plain(n))
	case INC:
		ex = c.Net.Ring(c.Workers, n, netsim.Plain(blk))
	case INCC:
		ex = c.Net.Ring(c.Workers, n, netsim.NICCompressed(blk, ratio))
	}
	return Breakdown{Compute: computePerIter(spec), Exchange: ex.Total()}
}

// ExchangeTime simulates the gradient-exchange time only (communication +
// summation, no local compute) — the metric of Fig. 15.
func (c Config) ExchangeTime(sys System, spec models.Spec) float64 {
	return c.IterTime(sys, spec).Exchange
}

// HierarchicalExchangeTime simulates the Fig. 1b/1c organizations for
// groups×groupSize workers: tree selects the Fig. 1b aggregator level,
// compressed enables in-NIC compression on every gradient leg (the result
// broadcast stays uncompressed).
func (c Config) HierarchicalExchangeTime(spec models.Spec, groups, groupSize int, tree, compressed bool) float64 {
	n := spec.ParamBytes
	block := netsim.RingBlockBytes(n, groupSize)
	leaderBlock := netsim.RingBlockBytes(n, groups)
	ratio := 1.0
	if compressed {
		ratio = CompressionRatio(spec, c.BoundExp)
	}
	traffic := func(bytes int64) netsim.Traffic {
		if compressed {
			return netsim.NICCompressed(bytes, ratio)
		}
		return netsim.Plain(bytes)
	}
	leaderTraffic := traffic(n)
	if !tree {
		leaderTraffic = traffic(leaderBlock)
	}
	return c.Net.Hierarchical(groups, groupSize, n, tree,
		traffic(block), leaderTraffic, netsim.Plain(n)).Total()
}

// SwitchExchangeTime simulates the in-network switch all-reduce exchange
// (per-port combine at Net.SwitchSumRate, chunked through Net.SwitchMemBytes,
// multicast down): the fifth strategy beside WA/ring/hierarchical, grounded
// in NetReduce-style switch aggregation. compressed enables in-NIC
// compression on the per-port gradient streams.
func (c Config) SwitchExchangeTime(spec models.Spec, compressed bool) float64 {
	n := spec.ParamBytes
	traffic := netsim.Plain
	if compressed {
		ratio := CompressionRatio(spec, c.BoundExp)
		traffic = func(bytes int64) netsim.Traffic { return netsim.NICCompressed(bytes, ratio) }
	}
	return c.Net.SwitchAllReduce(c.Workers, n, traffic).Total()
}

// CommShare returns the fraction of iteration time spent in the exchange
// for the WA baseline — the paper's Fig. 3b / Table II headline.
func (c Config) CommShare(spec models.Spec) float64 {
	b := c.IterTime(WA, spec)
	return b.Exchange / b.Total()
}

// Speedup returns sys's end-to-end speedup over WA for the same number of
// epochs (Fig. 12's derived metric).
func (c Config) Speedup(sys System, spec models.Spec) float64 {
	return c.IterTime(WA, spec).Total() / c.IterTime(sys, spec).Total()
}

// SpeedupSameAccuracy returns the full-system speedup of INC+C over WA
// when both train to the same final accuracy (Fig. 13): INC+C runs the
// paper's measured 1-2 extra epochs.
func (c Config) SpeedupSameAccuracy(spec models.Spec) float64 {
	if spec.Conv.EpochsLossless == 0 {
		return c.Speedup(INCC, spec)
	}
	wa := c.IterTime(WA, spec).Total() * float64(spec.Conv.EpochsLossless)
	inc := c.IterTime(INCC, spec).Total() * float64(spec.Conv.EpochsCompressed)
	return wa / inc
}

// SoftwareCodec describes a software compression stack for the Fig. 7
// experiment: sustained codec throughput on gradient bytes and the
// achieved ratio on float32 gradient streams.
type SoftwareCodec struct {
	Name           string
	CompressMBps   float64
	DecompressMBps float64
	Ratio          float64
	Lossless       bool
}

// DefaultSoftwareCodecs returns throughput/ratio figures measured with
// this repository's own Go implementations (see bench_test.go) at the
// scale of the paper's CPUs: a Snappy-family LZ, an SZ-family predictive
// codec, and simple LSB truncation with bit packing.
func DefaultSoftwareCodecs() []SoftwareCodec {
	return []SoftwareCodec{
		{Name: "Snappy", CompressMBps: 250, DecompressMBps: 500, Ratio: 1.05, Lossless: true},
		{Name: "SZ", CompressMBps: 90, DecompressMBps: 140, Ratio: 3.5},
		{Name: "16b-T", CompressMBps: 400, DecompressMBps: 400, Ratio: 2},
	}
}

// SoftwareCompressedIterTime simulates a WA iteration when compression
// runs in software on the hosts (Fig. 7): the gradient leg shrinks (both
// payload and packet count — software sends the already-compressed
// buffer), but the workers pay compression CPU time and the aggregator
// serially decompresses all p incoming streams — the paper's observation
// (3) that aggregators become the bottleneck.
func (c Config) SoftwareCompressedIterTime(spec models.Spec, codec SoftwareCodec) Breakdown {
	n := spec.ParamBytes
	mb := float64(n) / (1 << 20)
	workerCPU := mb / codec.CompressMBps
	aggregatorCPU := float64(c.Workers) * mb / codec.DecompressMBps
	ex := c.Net.WorkerAggregator(c.Workers, n,
		netsim.SoftwareCompressed(n, codec.Ratio), netsim.Plain(n))
	return Breakdown{
		Compute:  computePerIter(spec) + workerCPU,
		Exchange: ex.Total() + aggregatorCPU,
	}
}

// Fig7Factor returns total-training-time inflation (>1 means slower) of
// software compression vs the uncompressed WA baseline.
func (c Config) Fig7Factor(spec models.Spec, codec SoftwareCodec) float64 {
	base := c.IterTime(WA, spec).Total()
	soft := c.SoftwareCompressedIterTime(spec, codec).Total()
	return soft / base
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Workers < 2 {
		return fmt.Errorf("trainsim: need at least 2 workers, got %d", c.Workers)
	}
	return c.Net.Validate()
}
