package netsim

import (
	"testing"

	"inceptionn/internal/obs"
)

func TestExchangeEmitSchema(t *testing.T) {
	p := Default10GbE()
	n := int64(8 << 20)
	ex := p.Ring(4, n, Plain(n/4))

	reg := obs.NewRegistry()
	tr := obs.NewTracer(1024)
	rec := obs.NewRecorder(reg, tr)

	var startNs int64
	for iter := 0; iter < 3; iter++ {
		next := ex.Emit(rec, 4, iter, startNs)
		if next <= startNs {
			t.Fatalf("iter %d: timeline did not advance (%d -> %d)", iter, startNs, next)
		}
		startNs = next
	}

	spans := tr.Snapshot()
	if want := 3 * 4 * 3; len(spans) != want { // iters x workers x phases
		t.Fatalf("got %d spans, want %d", len(spans), want)
	}
	var havePhase [obs.NumPhases]bool
	for _, s := range spans {
		havePhase[s.Phase] = true
		if s.Dur <= 0 {
			t.Fatalf("span %+v has non-positive duration", s)
		}
	}
	for _, ph := range []obs.Phase{obs.PhaseSend, obs.PhaseReduce, obs.PhaseRecv} {
		if !havePhase[ph] {
			t.Fatalf("missing %s span", ph)
		}
	}
	if v, _ := reg.Snapshot()["netsim_exchanges"].(int64); v != 3 {
		t.Fatalf("netsim_exchanges = %v, want 3", v)
	}

	// A nil recorder still advances the virtual clock identically.
	if got := ex.Emit(nil, 4, 0, 0); got != int64(ex.Transfer*1e9)+int64(ex.Sum*1e9)+int64(ex.Latency*1e9) {
		t.Fatalf("nil-recorder Emit returned %d", got)
	}
}
