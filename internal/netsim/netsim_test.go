package netsim

import (
	"math"
	"testing"

	"inceptionn/internal/comm"
	"inceptionn/internal/models"
)

func TestParamsValidate(t *testing.T) {
	if err := Default10GbE().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default10GbE()
	bad.StreamEfficiency = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero efficiency")
	}
	bad = Default10GbE()
	bad.LineRate = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative rate")
	}
}

func TestPlainTraffic(t *testing.T) {
	tr := Plain(4 * 1000)
	wantPkts := int64((4000 + comm.MSS - 1) / comm.MSS)
	if tr.Packets != wantPkts {
		t.Errorf("packets = %d, want %d", tr.Packets, wantPkts)
	}
	if tr.WireBytes != 4000+wantPkts*comm.HeaderBytes {
		t.Errorf("wire = %d", tr.WireBytes)
	}
	if zero := Plain(0); zero.Packets != 1 {
		t.Errorf("empty payload packets = %d, want 1", zero.Packets)
	}
}

func TestNICCompressedKeepsPacketCount(t *testing.T) {
	// The paper: "we do not reduce the total number of packets".
	n := int64(10 << 20)
	raw := Plain(n)
	nic := NICCompressed(n, 10)
	if nic.Packets != raw.Packets {
		t.Errorf("NIC compression changed packet count: %d vs %d", nic.Packets, raw.Packets)
	}
	if nic.WireBytes >= raw.WireBytes {
		t.Errorf("NIC compression did not shrink wire bytes")
	}
	soft := SoftwareCompressed(n, 10)
	if soft.Packets >= raw.Packets {
		t.Errorf("software compression must shrink packet count: %d vs %d", soft.Packets, raw.Packets)
	}
}

func TestCompressionRatioFloor(t *testing.T) {
	// Relaxing the bound beyond the per-packet floor buys almost nothing —
	// the paper's Fig. 12 observation.
	p := Default10GbE()
	n := int64(58 << 20) // one AlexNet ring block
	t10 := p.StreamTime(NICCompressed(n, 10), 1)
	t15 := p.StreamTime(NICCompressed(n, 15), 1)
	if (t10-t15)/t10 > 0.10 {
		t.Errorf("ratio 10→15 still gained %.1f%%; expected the per-packet floor to bind",
			100*(t10-t15)/t10)
	}
	// But compression vs none is a big win.
	tRaw := p.StreamTime(Plain(n), 1)
	if t10 > 0.6*tRaw {
		t.Errorf("compression gains too small: %g vs %g", t10, tRaw)
	}
}

func TestStreamSharing(t *testing.T) {
	p := Default10GbE()
	tr := Plain(100 << 20)
	solo := p.StreamTime(tr, 1)
	shared4 := p.StreamTime(tr, 4)
	// Four streams sharing one link each get 1/4 line rate, slower than one
	// stream's 45% goodput.
	if shared4 <= solo {
		t.Errorf("4-way shared stream (%g) should be slower than solo (%g)", shared4, solo)
	}
	// Two streams get 50% line > 45% goodput ceiling: same as solo.
	shared2 := p.StreamTime(tr, 2)
	if math.Abs(shared2-solo) > 1e-12 {
		t.Errorf("2-way shared (%g) should hit the goodput ceiling like solo (%g)", shared2, solo)
	}
}

// TestWorkerAggregatorMatchesTableII: the simulator must land close to the
// paper's measured per-iteration communication time on the 4-worker
// cluster for the large models (AlexNet, ResNet-50). This is the
// calibration anchor for every downstream figure.
func TestWorkerAggregatorMatchesTableII(t *testing.T) {
	p := Default10GbE()
	for _, m := range []models.Spec{models.AlexNet, models.ResNet50} {
		paper := m.Breakdown.Communicate / 100 // per iteration
		sim := p.WorkerAggregator(4, m.ParamBytes, Plain(m.ParamBytes), Plain(m.ParamBytes)).Total()
		if rel := math.Abs(sim-paper) / paper; rel > 0.25 {
			t.Errorf("%s: simulated %gs vs paper %gs (%.0f%% off)", m.Name, sim, paper, 100*rel)
		}
	}
}

// TestRingReductionMatchesFig12: INC must cut communication time vs WA by
// roughly the paper's 36-58% (without compression), and INC+C by ~80% vs
// WA (with compression, error bound 2^-10 → ratio ≈ 10).
func TestRingReductionMatchesFig12(t *testing.T) {
	p := Default10GbE()
	n := models.AlexNet.ParamBytes
	blk := n / 4
	wa := p.WorkerAggregator(4, n, Plain(n), Plain(n)).Total()
	inc := p.Ring(4, n, Plain(blk)).Total()
	incC := p.Ring(4, n, NICCompressed(blk, 10)).Total()
	redINC := 1 - inc/wa
	redINCC := 1 - incC/wa
	if redINC < 0.35 || redINC > 0.70 {
		t.Errorf("INC reduction = %.1f%%, paper band 36-58%%", 100*redINC)
	}
	if redINCC < 0.70 || redINCC > 0.90 {
		t.Errorf("INC+C reduction = %.1f%%, paper reports 70.9-80.7%%", 100*redINCC)
	}
	if !(incC < inc && inc < wa) {
		t.Errorf("ordering violated: WA=%g INC=%g INC+C=%g", wa, inc, incC)
	}
}

// TestScalabilityShape reproduces Fig. 15's shape: WA gradient-exchange
// time grows with node count; INC stays nearly constant.
func TestScalabilityShape(t *testing.T) {
	p := Default10GbE()
	n := models.ResNet50.ParamBytes
	wa4 := p.WorkerAggregator(4, n, Plain(n), Plain(n)).Total()
	wa8 := p.WorkerAggregator(8, n, Plain(n), Plain(n)).Total()
	inc4 := p.Ring(4, n, Plain(n/4)).Total()
	inc8 := p.Ring(8, n, Plain(n/8)).Total()
	if wa8 < 1.6*wa4 {
		t.Errorf("WA 4→8 nodes: %g → %g, expected near-linear growth", wa4, wa8)
	}
	if inc8 > 1.3*inc4 {
		t.Errorf("INC 4→8 nodes: %g → %g, expected near-flat", inc4, inc8)
	}
}

func TestWorkerAggregatorBreakdownComponents(t *testing.T) {
	p := Default10GbE()
	n := int64(100 << 20)
	ex := p.WorkerAggregator(4, n, Plain(n), Plain(n))
	if ex.Sum <= 0 || ex.Transfer <= 0 || ex.Latency <= 0 {
		t.Fatalf("breakdown has non-positive parts: %+v", ex)
	}
	if math.Abs(ex.Total()-(ex.Transfer+ex.Sum+ex.Latency)) > 1e-12 {
		t.Fatal("Total != sum of parts")
	}
	wantSum := 3 * float64(n) / p.SumRate
	if math.Abs(ex.Sum-wantSum) > 1e-12 {
		t.Errorf("Sum = %g, want %g", ex.Sum, wantSum)
	}
}

func TestRingDegenerate(t *testing.T) {
	p := Default10GbE()
	if total := p.Ring(1, 1000, Plain(1000)).Total(); total != 0 {
		t.Errorf("single-node ring time = %g, want 0", total)
	}
}

func TestBroadcast(t *testing.T) {
	p := Default10GbE()
	tr := Plain(100 << 20)
	one := p.Broadcast(tr, 1)
	three := p.Broadcast(tr, 3)
	if three <= one {
		t.Errorf("3-way broadcast (%g) not slower than 1-way (%g)", three, one)
	}
	if p.Broadcast(tr, 0) != 0 {
		t.Error("zero fanout should cost nothing")
	}
	// Aggregate-limited: 3 x wire bytes through one uplink.
	wantAgg := float64(3*tr.WireBytes) / p.LineRate
	if math.Abs(three-wantAgg) > 1e-12 {
		t.Errorf("3-way broadcast %g, want aggregate-limited %g", three, wantAgg)
	}
}

// TestHierarchicalBetweenFlatExtremes: at 16 workers, the two-level
// organizations should beat the flat worker-aggregator but the all-ring
// Fig. 1c should beat the tree-over-rings Fig. 1b.
func TestHierarchicalBetweenFlatExtremes(t *testing.T) {
	p := Default10GbE()
	n := models.ResNet50.ParamBytes
	flatWA := p.WorkerAggregator(16, n, Plain(n), Plain(n)).Total()
	tree := p.Hierarchical(4, 4, n, true, Plain(n/4), Plain(n), Plain(n)).Total()
	rings := p.Hierarchical(4, 4, n, false, Plain(n/4), Plain(n/4), Plain(n)).Total()
	if tree >= flatWA {
		t.Errorf("Fig 1b (%g) not faster than flat WA (%g) at 16 nodes", tree, flatWA)
	}
	if rings >= tree {
		t.Errorf("Fig 1c (%g) not faster than Fig 1b (%g)", rings, tree)
	}
}
