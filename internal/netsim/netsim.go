// Package netsim simulates the timing behaviour of the paper's testbed
// network: nodes attached to a 10 Gb Ethernet switch, exchanging the
// gradient/weight traffic of the two distributed training algorithms.
//
// The model captures the four effects that shape the paper's measured
// numbers (Table II, Figs. 12 and 15):
//
//  1. Aggregate link capacity. A link carries at most LineRate bytes/s no
//     matter how many TCP streams share it — this is what saturates the
//     aggregator's links (the incast bottleneck).
//  2. Single-stream goodput. One TCP stream achieves only
//     StreamEfficiency × LineRate (untuned 10 GbE reality); the ring
//     exchange runs one stream per link, the aggregator enjoys p
//     concurrent streams.
//  3. Per-packet software cost. Every packet costs PerPacketTime of
//     driver/stack work on its stream. NIC compression shrinks payloads
//     but NOT the packet count (it compresses per packet), so transfer
//     time has a per-packet floor — the paper's observation that
//     compression ratio is "not necessarily proportional" to the
//     reduction in communication time and that relaxed error bounds give
//     only marginal additional gains.
//  4. Summation rate. Sum-reduction costs 1/SumRate seconds per byte,
//     concentrated at the aggregator in WA but spread across workers in
//     the ring algorithm.
package netsim

import (
	"fmt"

	"inceptionn/internal/comm"
)

// Params describe the simulated cluster.
type Params struct {
	LineRate         float64 // link capacity, bytes/s (full duplex per direction)
	StreamEfficiency float64 // fraction of LineRate one stream can reach
	PerPacketTime    float64 // driver+stack seconds per packet per stream
	Latency          float64 // propagation + switch latency per hop (s)
	SumRate          float64 // gradient summation, bytes/s

	// SwitchSumRate is the per-port combine throughput of the switch's
	// in-network reduction unit (bytes/s). The ports' combiners run in
	// parallel into banked accumulators, so a chunk's residency in the
	// reduction pipeline is chunkBytes/SwitchSumRate regardless of port
	// count. 0 defaults to LineRate (a NetReduce-style line-rate ASIC).
	SwitchSumRate float64
	// SwitchMemBytes bounds the switch's on-chip aggregation buffer:
	// gradients larger than this stream through the switch in
	// SwitchMemBytes-sized chunks (upload, combine, and multicast of
	// consecutive chunks pipeline). 0 defaults to 1 MiB.
	SwitchMemBytes int64
}

// Default10GbE returns parameters calibrated so that the simulated
// worker-aggregator exchange reproduces the communication column of the
// paper's Table II (see trainsim tests): 10 Gb/s links, 45% single-stream
// goodput, 1.1 µs per-packet software cost, 30 µs hop latency, 8 GB/s
// summation.
func Default10GbE() Params {
	return Params{
		LineRate:         1.25e9,
		StreamEfficiency: 0.45,
		PerPacketTime:    1.1e-6,
		Latency:          30e-6,
		SumRate:          8e9,
		SwitchSumRate:    1.25e9,
		SwitchMemBytes:   1 << 20,
	}
}

// switchSumRate resolves the switch combine rate (0 = line rate).
func (p Params) switchSumRate() float64 {
	if p.SwitchSumRate > 0 {
		return p.SwitchSumRate
	}
	return p.LineRate
}

// switchMemBytes resolves the on-switch buffer bound (0 = 1 MiB).
func (p Params) switchMemBytes() int64 {
	if p.SwitchMemBytes > 0 {
		return p.SwitchMemBytes
	}
	return 1 << 20
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.LineRate <= 0 || p.SumRate <= 0 {
		return fmt.Errorf("netsim: non-positive rate in %+v", p)
	}
	if p.StreamEfficiency <= 0 || p.StreamEfficiency > 1 {
		return fmt.Errorf("netsim: stream efficiency %g out of (0,1]", p.StreamEfficiency)
	}
	if p.PerPacketTime < 0 || p.Latency < 0 {
		return fmt.Errorf("netsim: negative overhead in %+v", p)
	}
	if p.SwitchSumRate < 0 || p.SwitchMemBytes < 0 {
		return fmt.Errorf("netsim: negative switch parameter in %+v", p)
	}
	return nil
}

// Traffic describes one logical message on the wire.
type Traffic struct {
	WireBytes int64 // payload after any compression, plus packet headers
	Packets   int64 // packet count (unchanged by in-NIC compression)
}

// Plain returns the traffic for n uncompressed payload bytes.
func Plain(n int64) Traffic {
	packets := (n + comm.MSS - 1) / comm.MSS
	if packets == 0 {
		packets = 1
	}
	return Traffic{WireBytes: n + packets*comm.HeaderBytes, Packets: packets}
}

// NICCompressed returns the traffic for n raw payload bytes compressed in
// the NIC by the given ratio. The packet count stays that of the RAW
// payload: the engine shrinks each packet's payload in place.
func NICCompressed(n int64, ratio float64) Traffic {
	if ratio < 1 {
		ratio = 1
	}
	packets := (n + comm.MSS - 1) / comm.MSS
	if packets == 0 {
		packets = 1
	}
	payload := int64(float64(n) / ratio)
	return Traffic{WireBytes: payload + packets*comm.HeaderBytes, Packets: packets}
}

// SoftwareCompressed returns the traffic for n raw bytes compressed in
// software: the payload is packetized after compression, so the packet
// count does shrink — but the caller must separately account the codec's
// CPU time (see trainsim).
func SoftwareCompressed(n int64, ratio float64) Traffic {
	if ratio < 1 {
		ratio = 1
	}
	return Plain(int64(float64(n) / ratio))
}

// StreamTime returns the time for one stream to push t over a link it
// shares with `sharing` concurrent streams (including itself): the
// bandwidth term is bounded by both the per-stream goodput ceiling and the
// fair share of line rate, and the per-packet software cost provides the
// floor.
func (p Params) StreamTime(t Traffic, sharing int) float64 {
	if sharing < 1 {
		sharing = 1
	}
	rate := p.StreamEfficiency * p.LineRate
	if share := p.LineRate / float64(sharing); share < rate {
		rate = share
	}
	wire := float64(t.WireBytes) / rate
	stack := float64(t.Packets) * p.PerPacketTime
	if stack > wire {
		return stack
	}
	return wire
}

// SumTime returns the time to sum-reduce n bytes of float32 data once.
func (p Params) SumTime(n int64) float64 { return float64(n) / p.SumRate }

// Exchange is a timed breakdown of one gradient/weight exchange.
type Exchange struct {
	Transfer float64 // serialization + stack time on the critical path
	Sum      float64 // summation time on the critical path
	Latency  float64 // propagation on the critical path
}

// Total returns the critical-path exchange time.
func (e Exchange) Total() float64 { return e.Transfer + e.Sum + e.Latency }

// WorkerAggregator simulates one iteration of the conventional exchange
// (paper Fig. 2) with p workers and one aggregator: all workers send their
// gradient (gradUp traffic each) concurrently into the aggregator's link,
// the aggregator sums p vectors of modelBytes, then broadcasts the updated
// weights (weightDown traffic each) from its single uplink.
func (p Params) WorkerAggregator(workers int, modelBytes int64, gradUp, weightDown Traffic) Exchange {
	if workers < 1 {
		return Exchange{}
	}
	// Incast: p streams share the aggregator's downlink.
	up := p.StreamTime(gradUp, workers)
	// Aggregation of p vectors: (p-1) pairwise adds over modelBytes.
	sum := float64(workers-1) * p.SumTime(modelBytes)
	// Broadcast: p streams share the aggregator's uplink.
	down := p.StreamTime(weightDown, workers)
	return Exchange{
		Transfer: up + down,
		Sum:      sum,
		Latency:  4 * p.Latency, // two worker↔switch↔aggregator traversals
	}
}

// Broadcast returns the time for one node to send t to fanout receivers
// concurrently: its uplink is the shared resource.
func (p Params) Broadcast(t Traffic, fanout int) float64 {
	if fanout < 1 {
		return 0
	}
	// Aggregate limited by the uplink; each stream also bounded by the
	// per-stream ceiling and the per-packet floor.
	aggregate := float64(int64(fanout)*t.WireBytes) / p.LineRate
	perStream := p.StreamTime(t, fanout)
	if perStream > aggregate {
		return perStream
	}
	return aggregate
}

// Hierarchical simulates one exchange of the paper's Fig. 1b/1c
// organizations: groups×groupSize workers run intra-group rings in
// parallel (level 1), the group leaders exchange the group sums (level 2
// — an aggregator tree when tree is true, a ring of leaders otherwise),
// and each leader broadcasts the global result inside its group (level 3).
// blockTraffic is one intra-group ring block; leaderTraffic is the whole
// model as sent between leaders (or leader blocks for the leader ring);
// resultDown is the whole model sent down to group members.
func (p Params) Hierarchical(groups, groupSize int, modelBytes int64, tree bool,
	blockTraffic, leaderTraffic, resultDown Traffic) Exchange {

	level1 := p.Ring(groupSize, modelBytes, blockTraffic)
	var level2 Exchange
	if tree {
		level2 = p.WorkerAggregator(groups, modelBytes, leaderTraffic, resultDown)
	} else {
		level2 = p.Ring(groups, modelBytes, leaderTraffic)
	}
	level3 := p.Broadcast(resultDown, groupSize-1)
	return Exchange{
		Transfer: level1.Transfer + level2.Transfer + level3,
		Sum:      level1.Sum + level2.Sum,
		Latency:  level1.Latency + level2.Latency + 2*p.Latency,
	}
}

// Ring simulates one iteration of the gradient-centric exchange
// (Algorithm 1) with p workers: 2(p−1) pipeline steps, each moving one
// block of blockTraffic over every ring link simultaneously (one stream
// per link), with a per-block sum in the first p−1 steps.
func (p Params) Ring(workers int, modelBytes int64, blockTraffic Traffic) Exchange {
	if workers < 2 {
		return Exchange{}
	}
	// Exact per-block sizing: when the model does not divide evenly, the
	// block partition (internal/ring's blockBounds) gives the first
	// modelBytes mod workers blocks one extra byte. Every reduce-scatter
	// step sums the largest block somewhere on the ring, so the lockstep
	// critical path carries ceil(modelBytes/workers) per step — truncating
	// division would silently drop the remainder bytes from the summation
	// term (and disagree with the blockTraffic the caller packetized).
	step := p.StreamTime(blockTraffic, 1)
	steps := float64(2 * (workers - 1))
	sum := float64(workers-1) * p.SumTime(RingBlockBytes(modelBytes, workers))
	return Exchange{
		Transfer: steps * step,
		Sum:      sum,
		Latency:  steps * 2 * p.Latency, // each step crosses the switch
	}
}

// RingBlockBytes returns the largest ring-block size of a modelBytes
// gradient split across workers — ceil division, matching the byte
// footprint of the partition the real collective uses (the first
// modelBytes mod workers blocks carry one extra byte). It is the block
// size on the lockstep critical path, and the size callers should
// packetize as blockTraffic.
func RingBlockBytes(modelBytes int64, workers int) int64 {
	if workers < 1 {
		return modelBytes
	}
	return (modelBytes + int64(workers) - 1) / int64(workers)
}

// SwitchAllReduce simulates one in-network all-reduce (NetReduce-style,
// arXiv:2009.09736): every worker streams its modelBytes gradient up its
// own dedicated switch port in chunks of at most SwitchMemBytes, the
// switch's per-port reduction unit combines each chunk at SwitchSumRate,
// and the combined chunk is multicast back down every port (each egress
// port carries exactly one copy — no incast on either leg, which is what
// distinguishes this from the worker-aggregator exchange). Consecutive
// chunks pipeline through the upload/combine/multicast stages, so the
// steady state runs at the slowest stage. traffic maps a chunk's raw
// byte count to wire traffic (Plain, or NICCompressed for a compressing
// NIC below the switch); nil means Plain.
func (p Params) SwitchAllReduce(workers int, modelBytes int64, traffic func(int64) Traffic) Exchange {
	if workers < 1 || modelBytes <= 0 {
		return Exchange{}
	}
	if traffic == nil {
		traffic = Plain
	}
	mem := p.switchMemBytes()
	chunks := (modelBytes + mem - 1) / mem
	tail := modelBytes - (chunks-1)*mem

	stage := func(bytes int64) (u, s float64) {
		return p.StreamTime(traffic(bytes), 1), float64(bytes) / p.switchSumRate()
	}
	uFull, sFull := stage(mem)
	uTail, sTail := stage(tail)
	if chunks == 1 {
		uFull, sFull = uTail, sTail
	}

	// Fill-and-drain pipeline over the three stages (upload, combine,
	// multicast; multicast time equals upload time — one stream per port
	// in both directions): first chunk's upload, then chunks 2..K at the
	// bottleneck stage, then the last chunk's combine and multicast.
	ex := Exchange{
		Transfer: uFull + uTail,
		Sum:      sTail,
		Latency:  2 * p.Latency, // one worker→switch→worker traversal
	}
	for k := int64(1); k < chunks; k++ {
		u, s := uFull, sFull
		if k == chunks-1 {
			u, s = uTail, sTail
		}
		// Steady-state slot: attribute it to the stage that gates it.
		if s >= u {
			ex.Sum += s
		} else {
			ex.Transfer += u
		}
	}
	return ex
}
