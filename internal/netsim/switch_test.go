package netsim

import (
	"math"
	"testing"

	"inceptionn/internal/models"
)

// TestSwitchAllReduceBeatsWAIncast: with aggregation at the port there is
// no incast leg, so the in-network reduction must beat the
// worker-aggregator exchange, and the gap must widen with the worker
// count (WA's incast and serial summation both scale with p; the switch
// pipeline does not).
func TestSwitchAllReduceBeatsWAIncast(t *testing.T) {
	p := Default10GbE()
	n := models.AlexNet.ParamBytes
	prevGap := 0.0
	for _, w := range []int{4, 8, 16} {
		sw := p.SwitchAllReduce(w, n, nil).Total()
		wa := p.WorkerAggregator(w, n, Plain(n), Plain(n)).Total()
		if sw >= wa {
			t.Errorf("workers=%d: switch %gs >= WA %gs", w, sw, wa)
		}
		if gap := wa - sw; gap <= prevGap {
			t.Errorf("workers=%d: switch advantage %gs did not grow (prev %gs)", w, gap, prevGap)
		} else {
			prevGap = gap
		}
	}
}

// TestSwitchAllReduceSingleChunk: with on-switch memory covering the whole
// gradient there is no pipelining — the exchange is exactly one upload,
// one combine, one multicast, one round trip.
func TestSwitchAllReduceSingleChunk(t *testing.T) {
	p := Default10GbE()
	n := int64(10 << 20)
	p.SwitchMemBytes = n
	ex := p.SwitchAllReduce(8, n, nil)
	u := p.StreamTime(Plain(n), 1)
	if math.Abs(ex.Transfer-2*u) > 1e-12 {
		t.Errorf("Transfer = %g, want up+down = %g", ex.Transfer, 2*u)
	}
	if want := float64(n) / p.SwitchSumRate; math.Abs(ex.Sum-want) > 1e-12 {
		t.Errorf("Sum = %g, want %g", ex.Sum, want)
	}
	if ex.Latency != 2*p.Latency {
		t.Errorf("Latency = %g, want %g", ex.Latency, 2*p.Latency)
	}
}

// TestSwitchAllReduceThrottledSumRate: a combine engine slower than the
// link must surface in the Sum term and gate the steady state.
func TestSwitchAllReduceThrottledSumRate(t *testing.T) {
	p := Default10GbE()
	n := models.AlexNet.ParamBytes
	base := p.SwitchAllReduce(16, n, nil)
	p.SwitchSumRate = p.LineRate / 20
	slow := p.SwitchAllReduce(16, n, nil)
	if slow.Total() <= base.Total() {
		t.Errorf("throttled switch %gs not slower than default %gs", slow.Total(), base.Total())
	}
	if slow.Sum <= slow.Transfer {
		t.Errorf("throttled switch not combine-bound: Sum %gs vs Transfer %gs", slow.Sum, slow.Transfer)
	}
	// The combine engine touches every byte once, serially (tolerance for
	// per-chunk float accumulation).
	if want := float64(n) / p.SwitchSumRate; slow.Sum < want*(1-1e-9) {
		t.Errorf("Sum = %gs, below the serial combine floor %gs", slow.Sum, want)
	}
}

// TestSwitchAllReduceChunkingBounds: memory-bounded chunking pipelines the
// stages, so a chunked exchange can never beat the slowest single stage
// run over the full gradient, and never exceed the unpipelined sum of all
// three stages.
func TestSwitchAllReduceChunkingBounds(t *testing.T) {
	p := Default10GbE()
	n := models.AlexNet.ParamBytes
	for _, mem := range []int64{1 << 18, 1 << 20, 8 << 20} {
		p.SwitchMemBytes = mem
		total := p.SwitchAllReduce(8, n, nil).Total()
		chunks := (n + mem - 1) / mem
		// Stage floors computed chunk-by-chunk (per-chunk packetization
		// overhead counts against the pipeline too).
		var uAll float64
		for rem := n; rem > 0; rem -= mem {
			c := mem
			if rem < mem {
				c = rem
			}
			uAll += p.StreamTime(Plain(c), 1)
		}
		sAll := float64(n) / p.SwitchSumRate
		floor := math.Max(uAll, sAll)
		ceil := 2*uAll + sAll + 2*p.Latency
		if total < floor {
			t.Errorf("mem=%d (%d chunks): total %gs below slowest-stage floor %gs", mem, chunks, total, floor)
		}
		if total > ceil+1e-12 {
			t.Errorf("mem=%d (%d chunks): total %gs above unpipelined ceiling %gs", mem, chunks, total, ceil)
		}
	}
}

// TestSwitchParamDefaultsAndValidation: zero switch params fall back to
// the link rate / 1 MiB defaults; negatives are rejected.
func TestSwitchParamDefaultsAndValidation(t *testing.T) {
	p := Default10GbE()
	p.SwitchSumRate = 0
	zeroRate := p.SwitchAllReduce(8, 1<<24, nil)
	p.SwitchSumRate = p.LineRate
	explicit := p.SwitchAllReduce(8, 1<<24, nil)
	if zeroRate != explicit {
		t.Errorf("SwitchSumRate=0 (%+v) does not default to LineRate (%+v)", zeroRate, explicit)
	}
	for _, mutate := range []func(*Params){
		func(p *Params) { p.SwitchSumRate = -1 },
		func(p *Params) { p.SwitchMemBytes = -1 },
	} {
		bad := Default10GbE()
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

// TestRingNonDivisibleSumRegression is the satellite bugfix lock-in: when
// the model size does not divide by the worker count, the summation term
// must carry the largest block of the real partition (ceil), not the
// truncated quotient — cross-checked against a brute-force walk of the
// per-block sizes the collective actually uses.
func TestRingNonDivisibleSumRegression(t *testing.T) {
	p := Default10GbE()
	for _, tc := range []struct {
		workers int
		bytes   int64
	}{
		{7, 1_000_003},
		{4, 233_000_001},
		{3, 5},
	} {
		// Brute force the partition internal/ring's blockBounds produces:
		// block b gets per (+1 for the first rem blocks). Every
		// reduce-scatter step sums each block once somewhere on the ring,
		// so the lockstep critical path carries the largest block per step.
		per := tc.bytes / int64(tc.workers)
		rem := tc.bytes % int64(tc.workers)
		var covered, maxBlk int64
		for b := int64(0); b < int64(tc.workers); b++ {
			size := per
			if b < rem {
				size++
			}
			covered += size
			if size > maxBlk {
				maxBlk = size
			}
		}
		if covered != tc.bytes {
			t.Fatalf("partition brute force dropped bytes: %d != %d", covered, tc.bytes)
		}
		if got := RingBlockBytes(tc.bytes, tc.workers); got != maxBlk {
			t.Fatalf("RingBlockBytes(%d,%d) = %d, brute force says %d", tc.bytes, tc.workers, got, maxBlk)
		}
		ex := p.Ring(tc.workers, tc.bytes, Plain(maxBlk))
		want := float64(tc.workers-1) * p.SumTime(maxBlk)
		if math.Abs(ex.Sum-want) > 1e-15 {
			t.Errorf("workers=%d bytes=%d: Sum = %g, want %g", tc.workers, tc.bytes, ex.Sum, want)
		}
		if rem != 0 {
			truncated := float64(tc.workers-1) * p.SumTime(per)
			if ex.Sum <= truncated {
				t.Errorf("workers=%d bytes=%d: Sum %g does not exceed the truncating model's %g",
					tc.workers, tc.bytes, ex.Sum, truncated)
			}
		}
	}
}

// TestDegenerateTopologyGuards: collapsed topologies must produce
// physically sensible exchanges — finite, non-negative, no NaN — rather
// than relying on implicit behavior.
func TestDegenerateTopologyGuards(t *testing.T) {
	p := Default10GbE()
	n := int64(1 << 20)
	check := func(name string, ex Exchange) {
		t.Helper()
		for _, v := range []float64{ex.Transfer, ex.Sum, ex.Latency, ex.Total()} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("%s: unphysical exchange %+v", name, ex)
				return
			}
		}
	}
	check("Ring workers=0", p.Ring(0, n, Plain(n)))
	check("Ring workers=1", p.Ring(1, n, Plain(n)))
	check("WA workers=0", p.WorkerAggregator(0, n, Plain(n), Plain(n)))
	check("Switch workers=0", p.SwitchAllReduce(0, n, nil))
	check("Switch bytes=0", p.SwitchAllReduce(4, 0, nil))
	check("Hierarchical groups=1 tree", p.Hierarchical(1, 4, n, true, Plain(n/4), Plain(n), Plain(n)))
	check("Hierarchical groups=1 rings", p.Hierarchical(1, 4, n, false, Plain(n/4), Plain(n/4), Plain(n)))
	check("Hierarchical groupSize=1 tree", p.Hierarchical(4, 1, n, true, Plain(n), Plain(n), Plain(n)))
	check("Hierarchical groupSize=1 rings", p.Hierarchical(4, 1, n, false, Plain(n), Plain(n/4), Plain(n)))
	if got := p.Broadcast(Plain(n), 0); got != 0 {
		t.Errorf("Broadcast fanout=0 = %g, want 0", got)
	}
	if got := p.Broadcast(Plain(n), -3); got != 0 {
		t.Errorf("Broadcast fanout=-3 = %g, want 0", got)
	}
	// Single-node "rings" move no data and the guard must say so exactly.
	if total := p.Ring(1, n, Plain(n)).Total(); total != 0 {
		t.Errorf("1-worker ring total = %g, want 0", total)
	}
}
