package netsim

import (
	"inceptionn/internal/obs"
)

// Emit records the exchange as virtual-time spans in the shared obs
// schema, one set per worker starting at startNs on the trace timeline:
// the transfer leg as a send span, the summation as a reduce span, and
// the propagation as a recv span (the time a node spends waiting on the
// wire rather than pushing bytes). Returns the timeline position after
// the exchange, so closed-form iterations chain: start of iteration k+1
// = Emit(...) of iteration k. A nil recorder records nothing but still
// advances the clock.
func (e Exchange) Emit(rec *obs.Recorder, workers, iter int, startNs int64) int64 {
	transfer := int64(e.Transfer * 1e9)
	sum := int64(e.Sum * 1e9)
	latency := int64(e.Latency * 1e9)
	for node := 0; node < workers; node++ {
		t := startNs
		rec.RecordRaw(node, iter, obs.PhaseSend, t, transfer)
		t += transfer
		rec.RecordRaw(node, iter, obs.PhaseReduce, t, sum)
		t += sum
		rec.RecordRaw(node, iter, obs.PhaseRecv, t, latency)
	}
	rec.Counter("netsim_exchanges").Add(1)
	return startNs + transfer + sum + latency
}
