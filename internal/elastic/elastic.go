// Package elastic provides the membership and recovery layer that lets a
// distributed training run survive node failure: heartbeat-based failure
// detection over the fabric, epoch-numbered membership views, and the
// coordination primitives (epoch contexts, rendezvous gathers) survivors
// use to abort an in-flight step, agree on the shrunken ring, and replay
// the exchange from retained local state.
//
// The Coordinator is the agreement abstraction. In this in-process
// simulation it is a shared object; in a real deployment it stands in for
// a consensus or gossip service (etcd lease, SWIM, the job scheduler).
// Everything that must be *agreed* — who is alive, which epoch is
// current, the common replay iteration — flows through it, so the
// workers themselves never have to reconcile conflicting views.
//
// Failure evidence comes in three grades:
//
//   - Hard self-reports (ReportDead): a node whose transport returns a
//     crash error for its own operations declares itself dead, the way a
//     real process would by exiting and dropping its lease.
//   - Heartbeat staleness: workers Beat every iteration; a node silent
//     for longer than Config.SuspectAfter is declared dead by the
//     detector goroutine.
//   - Soft anomalies (ReportAnomaly, WatchErrors, and the LinkStats
//     timeout scan): retry exhaustion, torn frames, and receive-deadline
//     expiries observed *about* a peer. These are recorded for
//     observability and wake waiting survivors, but never evict a node
//     on their own — a straggler is not a corpse.
package elastic

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/obs"
)

// Errors returned by coordination primitives.
var (
	// ErrEpochChanged reports that the membership view advanced while the
	// caller was blocked in (or about to join) an epoch-scoped operation.
	// The caller should re-read the view and restart its protocol.
	ErrEpochChanged = errors.New("elastic: membership epoch changed")
	// ErrClosed reports that the coordinator has been shut down.
	ErrClosed = errors.New("elastic: coordinator closed")
	// ErrEvicted reports that the calling node is no longer a member of
	// the current view.
	ErrEvicted = errors.New("elastic: node evicted from membership")
)

// Membership is the coordination surface the elastic training loop runs
// against: liveness reporting, epoch-numbered views, epoch-scoped
// rendezvous, and membership changes in both directions (eviction and
// join). The in-process *Coordinator implements it directly; *Client
// implements it over the TCP control channel, so the same worker loop
// runs unchanged on the in-process fabric and on tcpfabric.
type Membership interface {
	Beat(id int)
	View() View
	EpochContext(epoch int) context.Context
	AwaitEpoch(ctx context.Context, id, after int) (View, error)
	Gather(ctx context.Context, id, epoch int, key string, value interface{}) (map[int]interface{}, error)
	ReportDead(id int, cause error)
	ReportAnomaly(node int, err error)
	Depart(id int)
	ProposeHalt(ownIter int) int
	HaltIter() int
	Join(id int) (View, error)
}

// Item is the gather value the training loop exchanges through the
// membership layer — a single wire-serializable shape covering both
// rendezvous (Iter, Joining) and checkpoint assembly (Cursor, Residual),
// so the TCP control channel can marshal it without reflection.
type Item struct {
	Iter     int64
	Joining  bool
	Cursor   uint64
	Residual []float32
}

// View is one epoch of the membership: the sorted fabric ids of the live
// nodes. Epoch 0 is the full initial membership; every eviction bumps the
// epoch by one. All survivors observe identical views (the coordinator is
// the single source of truth), which is what makes the rebuilt ring and
// the renormalized average deterministic across replicas.
type View struct {
	Epoch   int
	Members []int
}

// Contains reports whether id is a member of the view.
func (v View) Contains(id int) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Leader returns the lowest live id — the member that assumes designated
// duties (evaluation, checkpoint writing) for this epoch.
func (v View) Leader() int {
	if len(v.Members) == 0 {
		return -1
	}
	return v.Members[0]
}

// clone returns a deep copy so callers can hold views across lock drops.
func (v View) clone() View {
	return View{Epoch: v.Epoch, Members: append([]int(nil), v.Members...)}
}

// Anomaly is one soft-evidence observation about a node.
type Anomaly struct {
	Node int
	Time time.Time
	Err  error
}

// Config tunes failure detection.
type Config struct {
	// SuspectAfter declares a node dead when it has not Beat for this
	// long (after beating at least once). 0 disables the heartbeat
	// detector; deaths then come only from ReportDead.
	//
	// Coordination waits (Gather, AwaitEpoch) heartbeat automatically on
	// the caller's behalf, but compute phases and the ring exchange do
	// not: workers beat only at iteration boundaries while training.
	// SuspectAfter must therefore exceed the worst-case local-gradient +
	// exchange + evaluation latency of one iteration, or healthy members
	// are spuriously evicted.
	SuspectAfter time.Duration
	// ScanEvery is the detector's polling period. Defaults to
	// SuspectAfter/4 (minimum 1ms) when zero.
	ScanEvery time.Duration
	// Obs, if non-nil, records the membership layer's counters
	// (elastic_heartbeats, elastic_suspects, elastic_evictions,
	// elastic_departs) and the live elastic_epoch / elastic_members
	// gauges.
	Obs *obs.Recorder
}

// gather is one in-progress epoch-scoped all-to-all rendezvous.
type gather struct {
	epoch  int
	values map[int]interface{}
	done   chan struct{}
	err    error
}

// linkScan remembers the last observed per-link timeout counters so the
// detector can attribute *new* expiries between scans.
type linkScan struct {
	fabric *comm.Fabric
	last   [][]int64
}

// Coordinator tracks liveness for a fixed fabric universe of n nodes and
// publishes epoch-numbered membership views.
type Coordinator struct {
	mu       sync.Mutex
	universe int
	view     View
	dead     map[int]error // id -> evidence
	lastBeat []time.Time
	started  []bool // a node must beat once before staleness applies
	// linkDown grades heartbeat silence: the control-channel server marks
	// a node here when its TCP connection drops, so the detector can
	// distinguish "link partition suspected" from "process hang suspected"
	// in the death evidence it records.
	linkDown map[int]error
	// deathEpochs records every epoch created by a death (as opposed to a
	// departure or join), in ascending order. A death dooms the superseded
	// epoch's in-flight collectives; a departure or join does not. Remote
	// clients replay this classification to decide whether to cancel
	// their local epoch context.
	deathEpochs []int

	epochCtx    context.Context
	epochCancel context.CancelFunc
	changed     chan struct{} // closed and replaced on every view change
	gathers     map[string]*gather
	anomalies   []Anomaly
	closed      bool

	haltIter int // agreed graceful-stop iteration; -1 = none proposed

	cfg   Config
	scans []*linkScan
	stop  chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup // WatchErrors consumers

	// Metric handles (nil-safe no-ops when cfg.Obs is nil).
	obsHeartbeats *obs.Counter
	obsSuspects   *obs.Counter
	obsEvictions  *obs.Counter
	obsDeparts    *obs.Counter
	obsJoins      *obs.Counter
	obsEpoch      *obs.Gauge
	obsMembers    *obs.Gauge
}

var _ Membership = (*Coordinator)(nil)

// NewCoordinator creates a coordinator over a universe of n nodes, all
// initially live (epoch 0). If cfg.SuspectAfter is positive a detector
// goroutine runs until Close.
func NewCoordinator(n int, cfg Config) *Coordinator {
	if n < 1 {
		panic("elastic: coordinator needs at least one node")
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		universe:    n,
		haltIter:    -1,
		view:        View{Epoch: 0, Members: members},
		dead:        make(map[int]error),
		lastBeat:    make([]time.Time, n),
		started:     make([]bool, n),
		linkDown:    make(map[int]error),
		epochCtx:    ctx,
		epochCancel: cancel,
		changed:     make(chan struct{}),
		gathers:     make(map[string]*gather),
		cfg:         cfg,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),

		obsHeartbeats: cfg.Obs.Counter("elastic_heartbeats"),
		obsSuspects:   cfg.Obs.Counter("elastic_suspects"),
		obsEvictions:  cfg.Obs.Counter("elastic_evictions"),
		obsDeparts:    cfg.Obs.Counter("elastic_departs"),
		obsJoins:      cfg.Obs.Counter("elastic_joins"),
		obsEpoch:      cfg.Obs.Gauge("elastic_epoch"),
		obsMembers:    cfg.Obs.Gauge("elastic_members"),
	}
	c.obsEpoch.Set(0)
	c.obsMembers.Set(float64(n))
	if cfg.SuspectAfter > 0 {
		go c.detect(c.beatEvery())
	} else {
		close(c.done)
	}
	return c
}

// Close shuts the coordinator down: the detector stops, the current epoch
// context is cancelled, and pending gathers fail with ErrClosed.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	c.epochCancel()
	for k, g := range c.gathers {
		g.err = ErrClosed
		close(g.done)
		delete(c.gathers, k)
	}
	close(c.changed)
	c.changed = make(chan struct{})
	c.mu.Unlock()
	<-c.done
	c.wg.Wait()
}

// View returns the current membership view.
func (c *Coordinator) View() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.clone()
}

// EpochContext returns a context that is cancelled the moment the given
// epoch is superseded by a death (or the coordinator closes). Running a
// collective under it turns an eviction into immediate cancellation of
// the in-flight step on every survivor. A graceful departure (Depart)
// advances the epoch without cancelling: the departed worker owes no
// further traffic, so in-flight collectives of the superseded epoch can
// still complete. A stale epoch yields an already-cancelled context.
func (c *Coordinator) EpochContext(epoch int) context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed && c.view.Epoch == epoch {
		return c.epochCtx
	}
	return canceledCtx
}

var canceledCtx = func() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}()

// beatEvery is the shared cadence for the detector's staleness scan and
// for the automatic heartbeats emitted while a member is blocked inside
// Gather or AwaitEpoch: ScanEvery, defaulting to SuspectAfter/4 with a
// 1ms floor. cfg is immutable after construction, so no lock is needed.
func (c *Coordinator) beatEvery() time.Duration {
	every := c.cfg.ScanEvery
	if every <= 0 {
		every = c.cfg.SuspectAfter / 4
		if every < time.Millisecond {
			every = time.Millisecond
		}
	}
	return every
}

// Beat records a liveness heartbeat from id. Workers call it at every
// iteration boundary and while waiting in recovery.
func (c *Coordinator) Beat(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= 0 && id < c.universe {
		c.lastBeat[id] = time.Now()
		c.started[id] = true
		c.obsHeartbeats.Add(1)
	}
}

// ReportDead declares id dead on hard evidence (a crash self-report, a
// dropped lease), advancing the membership epoch. Declaring an
// already-dead or unknown node is a no-op.
func (c *Coordinator) ReportDead(id int, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.declareDeadLocked(id, cause)
}

// declareDeadLocked performs the eviction under c.mu.
func (c *Coordinator) declareDeadLocked(id int, cause error) {
	if c.closed || !c.view.Contains(id) {
		return
	}
	if cause == nil {
		cause = errors.New("elastic: declared dead")
	}
	c.dead[id] = cause
	c.obsEvictions.Add(1)
	// A death dooms the superseded epoch's in-flight collectives — the
	// dead node will never send the frames they are waiting on — so cancel
	// the epoch context before publishing the new view.
	c.epochCancel()
	c.epochCtx, c.epochCancel = context.WithCancel(context.Background())
	c.removeLocked(id)
	c.deathEpochs = append(c.deathEpochs, c.view.Epoch)
}

// Depart removes id from the membership on graceful completion: a worker
// that finished (or halted) its run leaves the view so the remaining
// members never block on it again. Like an eviction it advances the
// epoch and fails pending gathers with ErrEpochChanged — a survivor still
// mid-rendezvous re-resolves against the shrunken view instead of waiting
// forever on the exited worker. Unlike an eviction it records no death
// cause and does NOT cancel the superseded epoch's context: a departed
// worker has already fulfilled all its exchange obligations (its frames
// sit buffered in the fabric), so siblings' in-flight collectives can
// still run to completion. Departing an unknown or already-removed node
// is a no-op.
func (c *Coordinator) Depart(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || !c.view.Contains(id) {
		return
	}
	c.obsDeparts.Add(1)
	c.removeLocked(id)
}

// removeLocked drops id from the view and publishes the new epoch: the
// superseded epoch's pending gathers fail with ErrEpochChanged, so every
// remaining member restarts its barrier protocol under the new view.
// Cancelling the superseded epoch context is the caller's decision (death
// yes, departure no).
func (c *Coordinator) removeLocked(id int) {
	members := make([]int, 0, len(c.view.Members)-1)
	for _, m := range c.view.Members {
		if m != id {
			members = append(members, m)
		}
	}
	sort.Ints(members)
	c.view = View{Epoch: c.view.Epoch + 1, Members: members}
	c.obsEpoch.Set(float64(c.view.Epoch))
	c.obsMembers.Set(float64(len(members)))
	for k, g := range c.gathers {
		g.err = ErrEpochChanged
		close(g.done)
		delete(c.gathers, k)
	}
	close(c.changed)
	c.changed = make(chan struct{})
}

// Join re-admits (or admits) node id to the membership, the dual of the
// eviction path: the view grows by one member under an epoch bump. Any
// recorded death evidence for the node is cleared and its heartbeat state
// reset (it must beat once before staleness applies again, like at
// startup). Unlike a death, a join does NOT cancel the superseded epoch's
// context: every old member still owes its in-flight frames, so the old
// epoch's collectives can run to completion; the survivors pick up the
// joiner at their next rendezvous. Joining a current member is an
// idempotent no-op returning the current view. Because joins and
// evictions both mutate the view under c.mu, a join racing an eviction
// serializes through the epoch sequence — there is exactly one membership
// history, never two concurrent views.
func (c *Coordinator) Join(id int) (View, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return View{}, ErrClosed
	}
	if id < 0 || id >= c.universe {
		return View{}, fmt.Errorf("elastic: join of node %d outside universe %d", id, c.universe)
	}
	if c.view.Contains(id) {
		return c.view.clone(), nil
	}
	delete(c.dead, id)
	delete(c.linkDown, id)
	c.started[id] = false
	c.lastBeat[id] = time.Time{}
	c.obsJoins.Add(1)
	members := append(append([]int(nil), c.view.Members...), id)
	sort.Ints(members)
	c.view = View{Epoch: c.view.Epoch + 1, Members: members}
	c.obsEpoch.Set(float64(c.view.Epoch))
	c.obsMembers.Set(float64(len(members)))
	for k, g := range c.gathers {
		g.err = ErrEpochChanged
		close(g.done)
		delete(c.gathers, k)
	}
	close(c.changed)
	c.changed = make(chan struct{})
	return c.view.clone(), nil
}

// DeathCause returns the recorded evidence for a dead node (nil if live).
func (c *Coordinator) DeathCause(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[id]
}

// SetLinkDown grades a node's heartbeat silence: the control-channel
// server calls it when the node's TCP connection drops (err non-nil) or
// is re-established (err nil). A down link never evicts on its own —
// eviction still requires heartbeat staleness or hard evidence — but the
// death cause the detector records distinguishes a suspected partition
// from a suspected process hang.
func (c *Coordinator) SetLinkDown(id int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		delete(c.linkDown, id)
		return
	}
	c.obsSuspects.Add(1)
	c.linkDown[id] = err
}

// FatalSince reports whether any epoch after `after` (up to the current
// one) was created by a death. Remote membership clients use it to mirror
// the coordinator's cancel-on-death / survive-on-departure-or-join epoch
// context semantics.
func (c *Coordinator) FatalSince(after int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.deathEpochs) - 1; i >= 0; i-- {
		if c.deathEpochs[i] <= after {
			return false
		}
		if c.deathEpochs[i] <= c.view.Epoch {
			return true
		}
	}
	return false
}

// WaitEvent blocks like AwaitEpoch but additionally classifies the
// transition: fatal is true when any epoch in (after, current] was
// created by a death. It never beats on the caller's behalf (pass the
// view through AwaitEpoch with a real id for that) — the control-channel
// watch goroutine must not keep a hung worker looking alive.
func (c *Coordinator) WaitEvent(ctx context.Context, after int) (View, bool, error) {
	v, err := c.AwaitEpoch(ctx, -1, after)
	if err != nil {
		return View{}, false, err
	}
	return v, c.FatalSince(after), nil
}

// ReportAnomaly records soft evidence about a node: a transport error, a
// straggling link. Anomalies never evict on their own but are kept for
// observability (and surface in test assertions).
func (c *Coordinator) ReportAnomaly(node int, err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obsSuspects.Add(1)
	const keep = 64
	c.anomalies = append(c.anomalies, Anomaly{Node: node, Time: time.Now(), Err: err})
	if len(c.anomalies) > keep {
		c.anomalies = c.anomalies[len(c.anomalies)-keep:]
	}
}

// Anomalies returns a copy of the retained anomaly log.
func (c *Coordinator) Anomalies() []Anomaly {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Anomaly(nil), c.anomalies...)
}

// WatchErrors consumes a transport anomaly channel (tcpfabric
// Node.Errors, or any error feed) attributed to node id. Errors for
// which fatal returns true are hard evidence and evict the node; all
// others are recorded as anomalies. A nil fatal treats everything as
// soft. The consumer goroutine exits when ch closes or the coordinator
// does.
func (c *Coordinator) WatchErrors(id int, ch <-chan error, fatal func(error) bool) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case err, ok := <-ch:
				if !ok {
					return
				}
				if fatal != nil && fatal(err) {
					c.ReportDead(id, err)
				} else {
					c.ReportAnomaly(id, err)
				}
			case <-c.stop:
				return
			}
		}
	}()
}

// WatchFabric registers an in-process fabric's LinkStats with the
// detector: new receive-timeout expiries observed between scans are
// reported as anomalies against the link's source node (the peer being
// waited on). Requires a running detector (Config.SuspectAfter > 0).
func (c *Coordinator) WatchFabric(f *comm.Fabric) {
	n := f.N()
	last := make([][]int64, n)
	for i := range last {
		last[i] = make([]int64, n)
	}
	c.mu.Lock()
	c.scans = append(c.scans, &linkScan{fabric: f, last: last})
	c.mu.Unlock()
}

// detect is the failure-detector loop: heartbeat staleness evicts, link
// timeout growth raises anomalies.
func (c *Coordinator) detect(every time.Duration) {
	defer close(c.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		for _, id := range append([]int(nil), c.view.Members...) {
			if c.started[id] && now.Sub(c.lastBeat[id]) > c.cfg.SuspectAfter {
				// Grade the silence: a dropped control connection points at a
				// link partition, heartbeats stopping on a live link point at
				// a hung or dead process. Either way the node is evicted —
				// the grade is evidence, not a different outcome.
				grade := "link up: process hang or crash suspected"
				if lerr, down := c.linkDown[id]; down {
					grade = fmt.Sprintf("control link down (%v): partition suspected", lerr)
				}
				c.declareDeadLocked(id, fmt.Errorf(
					"elastic: node %d heartbeat stale for %v (limit %v; %s)",
					id, now.Sub(c.lastBeat[id]).Round(time.Millisecond), c.cfg.SuspectAfter, grade))
			}
		}
		scans := c.scans
		c.mu.Unlock()
		for _, sc := range scans {
			n := sc.fabric.N()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					cur := sc.fabric.Stats(src, dst).Timeouts.Load()
					if d := cur - sc.last[src][dst]; d > 0 {
						c.ReportAnomaly(src, fmt.Errorf(
							"elastic: %d new receive timeouts on link %d->%d", d, src, dst))
					}
					sc.last[src][dst] = cur
				}
			}
		}
	}
}

// ProposeHalt requests a graceful stop: the first proposer fixes the halt
// at its own iteration + 1 (set-once; later proposals are ignored) and
// every worker stops before exchanging any iteration ≥ the agreed value.
// Because workers can be at most one iteration apart (a ring exchange
// cannot complete without every member engaging), ownIter+1 is ≥ every
// worker's current iteration — nobody has already exchanged it, so all
// survivors halt at the same boundary with identical weights. Returns the
// agreed halt iteration.
func (c *Coordinator) ProposeHalt(ownIter int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.haltIter < 0 {
		c.haltIter = ownIter + 1
		close(c.changed)
		c.changed = make(chan struct{})
	}
	return c.haltIter
}

// HaltIter returns the agreed halt iteration, or -1 when no stop has been
// proposed.
func (c *Coordinator) HaltIter() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.haltIter
}

// AwaitEpoch blocks until the membership epoch exceeds after (returning
// the new view), the context is done, or the coordinator closes. It is
// how a survivor that aborted an exchange on soft evidence waits for the
// verdict: either someone is declared dead (view advances, recovery
// proceeds) or nobody is and the caller's deadline fires (the fault was
// not a membership event — escalate). id is the calling member, beaten
// periodically while it waits so the detector does not mistake the wait
// for death; an outside observer passes a negative id.
func (c *Coordinator) AwaitEpoch(ctx context.Context, id, after int) (View, error) {
	var beat <-chan time.Time
	if c.cfg.SuspectAfter > 0 && id >= 0 {
		t := time.NewTicker(c.beatEvery())
		defer t.Stop()
		beat = t.C
	}
	for {
		c.mu.Lock()
		if c.view.Epoch > after {
			v := c.view.clone()
			c.mu.Unlock()
			return v, nil
		}
		if c.closed {
			c.mu.Unlock()
			return View{}, ErrClosed
		}
		ch := c.changed
		c.mu.Unlock()
		select {
		case <-ch:
		case <-beat:
			c.Beat(id)
		case <-ctx.Done():
			return View{}, ctx.Err()
		}
	}
}

// Gather is the epoch-scoped rendezvous barrier: every member of the
// given epoch's view calls it with the same key and its own value; all
// callers block until the last member arrives, then all receive the full
// id→value map. If the epoch advances (another death) while any caller
// waits, every caller gets ErrEpochChanged and must restart under the
// new view. Keys are caller-scoped (include the epoch or iteration in
// the key); a completed gather's key is immediately reusable.
//
// Recovery uses it to agree on the common replay iteration (values are
// the survivors' current iterations; the minimum wins) while doubling as
// the barrier that guarantees no survivor emits new-epoch traffic before
// everyone abandoned the old epoch. Checkpointing uses it to assemble
// per-member state at the writer.
func (c *Coordinator) Gather(ctx context.Context, id, epoch int, key string, value interface{}) (map[int]interface{}, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.view.Epoch != epoch {
		c.mu.Unlock()
		return nil, ErrEpochChanged
	}
	if !c.view.Contains(id) {
		c.mu.Unlock()
		return nil, ErrEvicted
	}
	g := c.gathers[key]
	if g == nil {
		g = &gather{epoch: epoch, values: make(map[int]interface{}), done: make(chan struct{})}
		c.gathers[key] = g
	}
	g.values[id] = value
	if len(g.values) == len(c.view.Members) {
		delete(c.gathers, key)
		close(g.done)
	}
	c.mu.Unlock()

	// Keep beating while blocked at the barrier: a member waiting on a
	// straggling sibling must not look dead to the staleness detector.
	var beat <-chan time.Time
	if c.cfg.SuspectAfter > 0 {
		t := time.NewTicker(c.beatEvery())
		defer t.Stop()
		beat = t.C
	}
	for {
		select {
		case <-g.done:
			if g.err != nil {
				return nil, g.err
			}
			return g.values, nil
		case <-beat:
			c.Beat(id)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// MinIter extracts the minimum int value from a Gather result — the
// common replay iteration during recovery.
func MinIter(values map[int]interface{}) int {
	first := true
	m := 0
	for _, v := range values {
		it := v.(int)
		if first || it < m {
			m = it
			first = false
		}
	}
	return m
}
