package elastic

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"inceptionn/internal/fault"
)

func dialTest(t *testing.T, srv *CtrlServer, id int, opts CtrlOptions) *Client {
	t.Helper()
	cl, err := DialCtrl(srv.Addr(), id, opts)
	if err != nil {
		t.Fatalf("dial ctrl for node %d: %v", id, err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestCtrlGatherAndViews drives a full rendezvous over the TCP control
// channel and checks every client sees identical values and views.
func TestCtrlGatherAndViews(t *testing.T) {
	coord := NewCoordinator(3, Config{})
	defer coord.Close()
	srv, err := ServeCtrl("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clients := make([]*Client, 3)
	for id := range clients {
		clients[id] = dialTest(t, srv, id, CtrlOptions{})
	}
	for id, cl := range clients {
		v := cl.View()
		if v.Epoch != 0 || len(v.Members) != 3 {
			t.Fatalf("client %d view = %+v, want epoch 0 with 3 members", id, v)
		}
		cl.Beat(id)
	}

	type res struct {
		vals map[int]interface{}
		err  error
	}
	ch := make(chan res, 3)
	for id, cl := range clients {
		go func(id int, cl *Client) {
			vals, err := cl.Gather(context.Background(), id, 0, "recover@1", Item{Iter: int64(10 + id), Cursor: uint64(id)})
			ch <- res{vals, err}
		}(id, cl)
	}
	for i := 0; i < 3; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatalf("gather: %v", r.err)
		}
		if len(r.vals) != 3 {
			t.Fatalf("gather returned %d values, want 3", len(r.vals))
		}
		for m, v := range r.vals {
			it, ok := v.(Item)
			if !ok {
				t.Fatalf("gather value for %d is %T, want Item", m, v)
			}
			if it.Iter != int64(10+m) || it.Cursor != uint64(m) {
				t.Fatalf("gather item for %d = %+v", m, it)
			}
		}
	}

	// A retransmitted gather request (same key) must replay the cached
	// result instead of parking a second barrier.
	vals, err := clients[1].Gather(context.Background(), 1, 0, "recover@1", Item{Iter: 11, Cursor: 1})
	if err != nil || len(vals) != 3 {
		t.Fatalf("replayed gather = (%d values, %v), want 3 cached values", len(vals), err)
	}
}

// TestCtrlJoinAfterDepart exercises the membership churn RPCs: a depart
// bumps the epoch for the survivors, and a join splices the node back in
// at the next epoch.
func TestCtrlJoinAfterDepart(t *testing.T) {
	coord := NewCoordinator(3, Config{})
	defer coord.Close()
	srv, err := ServeCtrl("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c0 := dialTest(t, srv, 0, CtrlOptions{})
	c2 := dialTest(t, srv, 2, CtrlOptions{})

	c2.Depart(2)
	v, err := c0.AwaitEpoch(context.Background(), 0, 0)
	if err != nil {
		t.Fatalf("await epoch after depart: %v", err)
	}
	if v.Epoch != 1 || v.Contains(2) {
		t.Fatalf("post-depart view = %+v, want epoch 1 without node 2", v)
	}
	if v.Leader() != 0 {
		t.Fatalf("post-depart leader = %d, want 0", v.Leader())
	}

	jv, err := c2.Join(2)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if jv.Epoch != 2 || !jv.Contains(2) {
		t.Fatalf("post-join view = %+v, want epoch 2 containing node 2", jv)
	}
	if got := c0.View(); got.Epoch != 2 || len(got.Members) != 3 {
		t.Fatalf("survivor view after join = %+v", got)
	}
}

// TestCtrlPartitionFailsClosed cuts one worker's control link with the
// chaos injector and checks both sides of the minority-halt rule: the
// client declares itself partitioned (view without self, collectives
// refused) and the coordinator's failure detector evicts it with a
// partition-graded cause.
func TestCtrlPartitionFailsClosed(t *testing.T) {
	coord := NewCoordinator(2, Config{SuspectAfter: 300 * time.Millisecond})
	defer coord.Close()
	srv, err := ServeCtrl("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inj := fault.NewInjector(2, fault.Config{
		Seed: 11,
		Links: map[fault.Link]fault.LinkFaults{
			{Src: 1, Dst: CtrlPeer}: {DropRate: 1, From: 4},
		},
	})
	c0 := dialTest(t, srv, 0, CtrlOptions{})
	c1 := dialTest(t, srv, 1, CtrlOptions{Chaos: inj, PartitionAfter: 250 * time.Millisecond})
	c0.Beat(0)
	c1.Beat(1)

	deadline := time.Now().Add(5 * time.Second)
	for !c1.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("client 1 never declared partition")
		}
		c1.Beat(1)
		time.Sleep(20 * time.Millisecond)
	}
	if v := c1.View(); v.Contains(1) {
		t.Fatalf("partitioned client still sees itself in view %+v", v)
	}
	if _, err := c1.Gather(context.Background(), 1, 0, "x", Item{}); !errors.Is(err, ErrEvicted) {
		t.Fatalf("partitioned gather error = %v, want ErrEvicted", err)
	}
	if _, err := c1.Join(1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned join error = %v, want ErrPartitioned", err)
	}

	// The majority side: node 0 keeps beating, node 1 goes silent and is
	// evicted; its cause should carry the link-partition grade (its
	// control connection dropped when the chaos window opened).
	evictDeadline := time.Now().Add(5 * time.Second)
	for {
		c0.Beat(0)
		v := c0.View()
		if !v.Contains(1) {
			break
		}
		if time.Now().After(evictDeadline) {
			t.Fatal("coordinator never evicted the partitioned node")
		}
		time.Sleep(20 * time.Millisecond)
	}
	cause := coord.DeathCause(1)
	if cause == nil {
		t.Fatal("no death cause recorded for partitioned node")
	}
	if got := cause.Error(); !contains(got, "partition suspected") {
		t.Fatalf("death cause %q lacks partition grade", got)
	}
}

// TestCtrlSeqPersistsAcrossClients verifies that a shared chaos sequence
// counter lets a windowed control-link fault heal across client
// generations: a fresh client dialled after the window closes gets
// through even though its own attempt count restarts.
func TestCtrlSeqPersistsAcrossClients(t *testing.T) {
	coord := NewCoordinator(2, Config{})
	defer coord.Close()
	srv, err := ServeCtrl("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inj := fault.NewInjector(2, fault.Config{
		Seed: 3,
		Links: map[fault.Link]fault.LinkFaults{
			{Src: 1, Dst: CtrlPeer}: {DropRate: 1, From: 0, Until: 6},
		},
	})
	seq := new(atomic.Uint64)
	// First generation: dialled inside the window, every frame dropped
	// until the shared counter passes the Until bound, after which the
	// retransmit loop succeeds.
	c1, err := DialCtrl(srv.Addr(), 1, CtrlOptions{Chaos: inj, Seq: seq, PartitionAfter: 10 * time.Second})
	if err != nil {
		t.Fatalf("dial through healing window: %v", err)
	}
	c1.Close()
	if seq.Load() < 6 {
		t.Fatalf("shared seq = %d, want past the fault window", seq.Load())
	}
	// Second generation reuses the counter: it is already past the
	// window, so the dial succeeds on the first attempt.
	before := seq.Load()
	c1b := dialTest(t, srv, 1, CtrlOptions{Chaos: inj, Seq: seq, PartitionAfter: 10 * time.Second})
	if c1b.Partitioned() {
		t.Fatal("healed client should not be partitioned")
	}
	if seq.Load() < before {
		t.Fatal("shared seq went backwards")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
