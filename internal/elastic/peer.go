// The epoch-tagged transport wrapper: message tags are partitioned into
// per-epoch bands so a replayed exchange after a ring reconfiguration can
// never confuse its traffic with stale in-flight frames from the aborted
// attempt.
package elastic

import (
	"context"
	"fmt"

	"inceptionn/internal/comm"
)

// EpochTagStride partitions the tag space into per-epoch bands: every
// collective of membership epoch e runs with ring.Options.TagOffset =
// TagBase(e), so its tags fall in [e·stride, (e+1)·stride). All existing
// tag bases (ring ≤ ~2e4, mpi ≤ 7e3, hierarchy ≤ 2.4e4) fit far below
// one stride.
const EpochTagStride = 1 << 20

// TagBase returns the tag offset collectives of membership epoch e must
// use (assign it to ring.Options.TagOffset).
func TagBase(epoch int) int { return epoch * EpochTagStride }

// tagEpoch recovers the epoch band a tag belongs to.
func tagEpoch(tag int) int { return tag / EpochTagStride }

// Transport is the fabric surface the elastic peer requires: context
// send/recv plus the untagged demultiplexing receive used to inspect and
// discard stale frames. Both comm.Endpoint and fault.Peer implement it.
type Transport interface {
	comm.CtxPeer
	RecvMessageCtx(ctx context.Context, src int) ([]float32, int, error)
}

// Peer filters receives by epoch band: a frame tagged with an *older*
// epoch than the one the caller expects is residue of an aborted
// exchange — logged by count and silently discarded — while a frame from
// an unexpected band at or above the expected epoch is a protocol error.
// Sends pass through untouched (the collective's TagOffset already
// stamps them).
//
// Peer is safe for the same concurrent use pattern as the underlying
// transport (one logical receiver per link).
type Peer struct {
	t       Transport
	dropped int64
}

// NewPeer wraps t with epoch filtering.
func NewPeer(t Transport) *Peer { return &Peer{t: t} }

var _ comm.CtxPeer = (*Peer)(nil)

// ID implements comm.Peer.
func (p *Peer) ID() int { return p.t.ID() }

// N implements comm.Peer.
func (p *Peer) N() int { return p.t.N() }

// Send implements comm.Peer (blocking wrapper).
func (p *Peer) Send(dst int, payload []float32, tos uint8, tag int) {
	if err := p.SendCtx(context.Background(), dst, payload, tos, tag); err != nil {
		panic(err.Error())
	}
}

// Recv implements comm.Peer (blocking wrapper).
func (p *Peer) Recv(src int, tag int) []float32 {
	b, err := p.RecvCtx(context.Background(), src, tag)
	if err != nil {
		panic(err.Error())
	}
	return b
}

// SendCtx implements comm.CtxPeer.
func (p *Peer) SendCtx(ctx context.Context, dst int, payload []float32, tos uint8, tag int) error {
	return p.t.SendCtx(ctx, dst, payload, tos, tag)
}

// RecvCtx implements comm.CtxPeer: it returns the next frame from src
// carrying exactly tag, discarding any frames from earlier epoch bands
// along the way.
func (p *Peer) RecvCtx(ctx context.Context, src int, tag int) ([]float32, error) {
	want := tagEpoch(tag)
	for {
		payload, got, err := p.t.RecvMessageCtx(ctx, src)
		if err != nil {
			return nil, err
		}
		if got == tag {
			return payload, nil
		}
		if tagEpoch(got) < want {
			p.dropped++
			continue
		}
		return nil, fmt.Errorf("elastic: node %d expected tag %d (epoch %d) from %d, got %d (epoch %d)",
			p.ID(), tag, want, src, got, tagEpoch(got))
	}
}

// Dropped returns how many stale-epoch frames this peer has discarded.
// Only meaningful between exchanges (the counter is unsynchronised).
func (p *Peer) Dropped() int64 { return p.dropped }
