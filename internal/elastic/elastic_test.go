package elastic

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/ring"
)

func TestEvictionAdvancesEpochAndCancelsContext(t *testing.T) {
	c := NewCoordinator(4, Config{})
	defer c.Close()

	v := c.View()
	if v.Epoch != 0 || len(v.Members) != 4 {
		t.Fatalf("initial view = %+v", v)
	}
	ctx0 := c.EpochContext(0)
	if ctx0.Err() != nil {
		t.Fatal("fresh epoch context already cancelled")
	}

	cause := errors.New("injected crash")
	c.ReportDead(2, cause)

	v = c.View()
	if v.Epoch != 1 {
		t.Fatalf("epoch after eviction = %d, want 1", v.Epoch)
	}
	want := []int{0, 1, 3}
	if len(v.Members) != 3 || v.Members[0] != 0 || v.Members[1] != 1 || v.Members[2] != 3 {
		t.Fatalf("members after eviction = %v, want %v", v.Members, want)
	}
	if v.Contains(2) {
		t.Fatal("evicted node still in view")
	}
	if v.Leader() != 0 {
		t.Fatalf("leader = %d, want 0", v.Leader())
	}
	if ctx0.Err() == nil {
		t.Fatal("old epoch context not cancelled by eviction")
	}
	if c.EpochContext(0).Err() == nil {
		t.Fatal("stale EpochContext not pre-cancelled")
	}
	if c.EpochContext(1).Err() != nil {
		t.Fatal("current epoch context cancelled")
	}
	if got := c.DeathCause(2); !errors.Is(got, cause) {
		t.Fatalf("death cause = %v, want %v", got, cause)
	}

	// Double eviction is a no-op.
	c.ReportDead(2, errors.New("again"))
	if got := c.View().Epoch; got != 1 {
		t.Fatalf("epoch after duplicate eviction = %d, want 1", got)
	}
}

func TestHeartbeatDetectorEvictsSilentNode(t *testing.T) {
	c := NewCoordinator(3, Config{SuspectAfter: 50 * time.Millisecond, ScanEvery: 5 * time.Millisecond})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Nodes 0 and 1 beat continuously; node 2 beats once and goes silent.
	c.Beat(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range []int{0, 1} {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			t := time.NewTicker(5 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					c.Beat(id)
				}
			}
		}(id)
	}

	v, err := c.AwaitEpoch(ctx, -1, 0)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("AwaitEpoch: %v", err)
	}
	if v.Contains(2) || !v.Contains(0) || !v.Contains(1) {
		t.Fatalf("view after staleness eviction = %v", v.Members)
	}
	if cause := c.DeathCause(2); cause == nil || !strings.Contains(cause.Error(), "heartbeat stale") {
		t.Fatalf("death cause = %v, want heartbeat staleness", cause)
	}
}

func TestDetectorIgnoresUnstartedNodes(t *testing.T) {
	// A node that never beat is not evicted: startup grace.
	c := NewCoordinator(2, Config{SuspectAfter: 20 * time.Millisecond, ScanEvery: 2 * time.Millisecond})
	defer c.Close()
	time.Sleep(80 * time.Millisecond)
	if v := c.View(); v.Epoch != 0 {
		t.Fatalf("unstarted nodes evicted: view %+v", v)
	}
}

// TestDepartAdvancesEpochWithoutKillingExchanges covers the graceful-exit
// half of reconfiguration: a departure must unblock members waiting at a
// barrier (epoch bump + ErrEpochChanged) exactly like an eviction, but —
// unlike an eviction — must neither record a death cause nor cancel the
// superseded epoch context, because a departed member owes no further
// traffic and siblings' in-flight collectives can still complete.
func TestDepartAdvancesEpochWithoutKillingExchanges(t *testing.T) {
	c := NewCoordinator(3, Config{})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	ctx0 := c.EpochContext(0)
	got := make(chan error, 2)
	for _, id := range []int{0, 1} {
		go func(id int) {
			_, err := c.Gather(ctx, id, 0, "recover", id)
			got <- err
		}(id)
	}
	time.Sleep(10 * time.Millisecond)
	c.Depart(2) // node 2 finished its run and leaves
	for i := 0; i < 2; i++ {
		if err := <-got; !errors.Is(err, ErrEpochChanged) {
			t.Fatalf("gather error after departure = %v, want ErrEpochChanged", err)
		}
	}
	v := c.View()
	if v.Epoch != 1 || v.Contains(2) || len(v.Members) != 2 {
		t.Fatalf("view after departure = %+v", v)
	}
	if cause := c.DeathCause(2); cause != nil {
		t.Fatalf("departure recorded a death cause: %v", cause)
	}
	if ctx0.Err() != nil {
		t.Fatal("departure cancelled the epoch-0 context; in-flight exchanges would abort")
	}
	// The survivors re-rendezvous under the shrunken view.
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, id := range []int{0, 1} {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			_, errs[i] = c.Gather(ctx, id, 1, "recover", id)
		}(i, id)
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("post-departure gather: %v %v", errs[0], errs[1])
	}
	// A death, by contrast, still cancels promptly.
	c.ReportDead(1, errors.New("boom"))
	if ctx0.Err() == nil {
		t.Fatal("eviction did not cancel the live epoch context")
	}
	// Departing the last member empties the view.
	c.Depart(0)
	if v := c.View(); len(v.Members) != 0 || v.Leader() != -1 {
		t.Fatalf("view after all departures = %+v", v)
	}
	// Departing an unknown or already-gone node is a no-op.
	before := c.View().Epoch
	c.Depart(0)
	c.Depart(7)
	if got := c.View().Epoch; got != before {
		t.Fatalf("no-op departure advanced the epoch: %d -> %d", before, got)
	}
}

// TestGatherBeatsWhileBlocked pins the liveness contract of the barrier
// primitives: a member parked inside Gather far longer than SuspectAfter
// must keep heartbeating on its own behalf, or the detector would evict
// healthy members whenever a checkpoint or recovery barrier outlasts the
// staleness limit (and, since barriers block everyone, cascade).
func TestGatherBeatsWhileBlocked(t *testing.T) {
	c := NewCoordinator(2, Config{SuspectAfter: 40 * time.Millisecond, ScanEvery: 4 * time.Millisecond})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	c.Beat(0)
	c.Beat(1)
	res := make(chan error, 1)
	go func() {
		_, err := c.Gather(ctx, 0, 0, "ckpt", nil)
		res <- err
	}()
	// Node 1 stays healthy (beating) but takes 5x SuspectAfter to reach
	// the barrier; node 0 is blocked inside Gather the whole time.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		c.Beat(1)
		time.Sleep(4 * time.Millisecond)
	}
	if _, err := c.Gather(ctx, 1, 0, "ckpt", nil); err != nil {
		t.Fatalf("late member's gather: %v", err)
	}
	if err := <-res; err != nil {
		t.Fatalf("blocked member's gather: %v (evicted while waiting?)", err)
	}
	if v := c.View(); v.Epoch != 0 {
		t.Fatalf("epoch advanced to %d: a blocked-but-live member was evicted", v.Epoch)
	}
}

func TestGatherRendezvous(t *testing.T) {
	c := NewCoordinator(3, Config{})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	results := make([]map[int]interface{}, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = c.Gather(ctx, id, 0, "iter@0", 10+id)
		}(id)
	}
	wg.Wait()
	for id := 0; id < 3; id++ {
		if errs[id] != nil {
			t.Fatalf("gather on %d: %v", id, errs[id])
		}
		if len(results[id]) != 3 {
			t.Fatalf("gather on %d returned %d values", id, len(results[id]))
		}
	}
	if m := MinIter(results[0]); m != 10 {
		t.Fatalf("MinIter = %d, want 10", m)
	}
}

func TestGatherAbortsOnEpochChange(t *testing.T) {
	c := NewCoordinator(3, Config{})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	got := make(chan error, 2)
	for _, id := range []int{0, 1} {
		go func(id int) {
			_, err := c.Gather(ctx, id, 0, "r", id)
			got <- err
		}(id)
	}
	// Node 2 never arrives; it dies instead.
	time.Sleep(10 * time.Millisecond)
	c.ReportDead(2, errors.New("boom"))
	for i := 0; i < 2; i++ {
		if err := <-got; !errors.Is(err, ErrEpochChanged) {
			t.Fatalf("gather error = %v, want ErrEpochChanged", err)
		}
	}
	// Under the new epoch the two survivors can rendezvous.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, id := range []int{0, 1} {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			_, errs[i] = c.Gather(ctx, id, 1, "r", id)
		}(i, id)
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("post-eviction gather: %v %v", errs[0], errs[1])
	}
	// Stale-epoch and evicted callers are rejected immediately.
	if _, err := c.Gather(ctx, 0, 0, "r", 0); !errors.Is(err, ErrEpochChanged) {
		t.Fatalf("stale-epoch gather error = %v", err)
	}
	if _, err := c.Gather(ctx, 2, 1, "r", 0); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted gather error = %v", err)
	}
}

func TestWatchErrorsClassifiesEvidence(t *testing.T) {
	c := NewCoordinator(2, Config{})
	defer c.Close()
	crash := errors.New("crashed")
	ch := make(chan error, 2)
	ch <- fmt.Errorf("soft: torn frame")
	ch <- fmt.Errorf("node down: %w", crash)
	close(ch)
	c.WatchErrors(1, ch, func(err error) bool { return errors.Is(err, crash) })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := c.AwaitEpoch(ctx, -1, 0)
	if err != nil {
		t.Fatalf("AwaitEpoch: %v", err)
	}
	if v.Contains(1) {
		t.Fatal("fatal transport error did not evict")
	}
	anoms := c.Anomalies()
	if len(anoms) != 1 || anoms[0].Node != 1 {
		t.Fatalf("anomaly log = %+v, want one soft entry for node 1", anoms)
	}
}

func TestPeerDiscardsStaleEpochFrames(t *testing.T) {
	f := comm.NewFabric(2, nil)
	sender, receiver := f.Endpoint(0), NewPeer(f.Endpoint(1))
	ctx := context.Background()

	// Residue from an aborted epoch-0 exchange, then the epoch-1 frame.
	sender.Send(1, []float32{1}, 0, TagBase(0)+1001)
	sender.Send(1, []float32{2}, 0, TagBase(0)+2003)
	sender.Send(1, []float32{42}, 0, TagBase(1)+1001)

	got, err := receiver.RecvCtx(ctx, 0, TagBase(1)+1001)
	if err != nil {
		t.Fatalf("RecvCtx: %v", err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("payload = %v, want [42]", got)
	}
	if receiver.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", receiver.Dropped())
	}

	// A same-epoch tag mismatch is a protocol error, not a discard.
	sender.Send(1, []float32{7}, 0, TagBase(1)+2000)
	if _, err := receiver.RecvCtx(ctx, 0, TagBase(1)+1002); err == nil {
		t.Fatal("same-epoch tag mismatch not reported")
	}
}

func TestReconfiguredRingOverEpochTags(t *testing.T) {
	// Survivors {0,1,3} of a 4-node fabric replay an all-reduce under
	// epoch 1 tags while stale epoch-0 residue sits in their links.
	f := comm.NewFabric(4, nil)
	members := []int{0, 1, 3}
	peers := map[int]*Peer{}
	for _, id := range members {
		peers[id] = NewPeer(f.Endpoint(id))
	}
	// Stale epoch-0 frames on every ring link of the new membership.
	f.Endpoint(3).Send(0, []float32{9, 9, 9}, 0, TagBase(0)+1001)
	f.Endpoint(0).Send(1, []float32{9, 9, 9}, 0, TagBase(0)+1001)
	f.Endpoint(1).Send(3, []float32{9, 9, 9}, 0, TagBase(0)+1002)

	opt := ring.Options{TagOffset: TagBase(1), StepTimeout: 5 * time.Second}
	vecs := map[int][]float32{
		0: {1, 2, 3},
		1: {10, 20, 30},
		3: {100, 200, 300},
	}
	var wg sync.WaitGroup
	errs := map[int]error{}
	var mu sync.Mutex
	for _, id := range members {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			err := ring.AllReduceGroupCtx(context.Background(), peers[id], members, vecs[id], 0, nil, opt)
			mu.Lock()
			errs[id] = err
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	want := []float32{111, 222, 333}
	for _, id := range members {
		if errs[id] != nil {
			t.Fatalf("node %d: %v", id, errs[id])
		}
		for i, v := range vecs[id] {
			if v != want[i] {
				t.Fatalf("node %d result %v, want %v", id, vecs[id], want)
			}
		}
	}
	total := peers[0].Dropped() + peers[1].Dropped() + peers[3].Dropped()
	if total != 3 {
		t.Fatalf("dropped %d stale frames, want 3", total)
	}
}
